//===- bench_campaign.cpp - Cold vs warm result-cache sweeps --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the campaign layer (docs/campaigns.md) buys a repeated
/// sweep: the same diy corpus is judged three times —
///
///   plain:  runStreamed without hooks, the pre-campaign baseline;
///   cold:   cache hooks over an empty directory (all misses, so the
///           measured overhead is hashing + serializing every entry);
///   warm:   the same directory again (all hits, no judging at all).
///
/// It prints the three wall times, the warm speedup, and the cache
/// hit/miss counters, and exits 1 when the campaign invariants do not
/// hold: the warm run must be pure hits and both cached runs must render
/// byte-identically to the plain baseline modulo wall times — the same
/// property CI's warm-cache job asserts end to end with the binaries.
///
///   bench_campaign [--jobs N] [--arch power|arm|tso] [--size N]
///
//===----------------------------------------------------------------------===//

#include "campaign/Merge.h"
#include "campaign/ResultCache.h"
#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "sweep/ReportIO.h"
#include "sweep/SweepEngine.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point From) {
  return std::chrono::duration<double>(Clock::now() - From).count();
}

TestSource vectorSource(std::shared_ptr<std::vector<LitmusTest>> Vec) {
  auto Idx = std::make_shared<size_t>(0);
  return [Vec, Idx](LitmusTest &Out) -> bool {
    if (*Idx >= Vec->size())
      return false;
    Out = (*Vec)[(*Idx)++];
    return true;
  };
}

std::string scrubbed(const SweepReport &Report) {
  JsonValue Doc = zeroWallTimes(sweepReportToJson(Report));
  // The cache stanza legitimately differs between the three runs.
  JsonValue Out = JsonValue::object();
  for (const auto &Member : Doc.members())
    if (Member.first != "cache")
      Out.set(Member.first, Member.second);
  return Out.dump();
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 0, Size = 6;
  const char *ArchName = "power";
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--jobs") == 0 && I + 1 < argc)
      Jobs = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (std::strcmp(argv[I], "--size") == 0 && I + 1 < argc)
      Size = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
    else if (std::strcmp(argv[I], "--arch") == 0 && I + 1 < argc)
      ArchName = argv[++I];
    else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--arch power|arm|tso] [--size N]\n",
                   argv[0]);
      return 2;
    }
  }

  Arch A;
  if (!parseArch(ArchName, A)) {
    std::fprintf(stderr, "unknown architecture '%s'\n", ArchName);
    return 2;
  }

  // The corpus: every canonical critical cycle up to --size edges, like
  // a `cats_diy --sweep` campaign would judge — materialized up front so
  // all three measured runs pay judging, not synthesis.
  EnumerateOptions Opts;
  Opts.Target = A;
  Opts.MaxEdges = Size;
  auto Source = makeDiyTestSource(Opts);
  if (!Source) {
    std::fprintf(stderr, "enumeration failed: %s\n",
                 Source.message().c_str());
    return 2;
  }
  auto Tests = std::make_shared<std::vector<LitmusTest>>();
  for (LitmusTest T; (*Source)(T);)
    Tests->push_back(std::move(T));
  std::vector<const Model *> Models = resolveModels({}).take();

  const std::string CacheDir =
      (std::filesystem::temp_directory_path() / "cats_bench_campaign_cache")
          .string();
  std::filesystem::remove_all(CacheDir);

  SweepEngine Engine({Jobs});
  auto T0 = Clock::now();
  SweepReport Plain = Engine.runStreamed(vectorSource(Tests), Models, 64);
  const double PlainSec = elapsed(T0);

  auto Cache = ResultCache::open(CacheDir);
  if (!Cache) {
    std::fprintf(stderr, "cannot open cache: %s\n", Cache.message().c_str());
    return 2;
  }
  T0 = Clock::now();
  SweepReport Cold = Engine.runStreamed(vectorSource(Tests), Models, 64,
                                        Cache->hooks(Models));
  const double ColdSec = elapsed(T0);
  T0 = Clock::now();
  SweepReport Warm = Engine.runStreamed(vectorSource(Tests), Models, 64,
                                        Cache->hooks(Models));
  const double WarmSec = elapsed(T0);

  std::printf("campaign cache: %s size<=%u, %zu test(s), %zu model(s), "
              "%u worker(s)\n\n",
              ArchName, Size, Tests->size(), Models.size(),
              Engine.workerCount());
  std::printf("  %-28s %10.3fs\n", "plain (no hooks)", PlainSec);
  std::printf("  %-28s %10.3fs  (%llu miss(es), overhead %+.1f%%)\n",
              "cold cache", ColdSec, Cold.CacheMisses,
              PlainSec > 0 ? (ColdSec / PlainSec - 1.0) * 100.0 : 0.0);
  std::printf("  %-28s %10.3fs  (%llu hit(s), %.1fx faster than plain)\n",
              "warm cache", WarmSec, Warm.CacheHits,
              WarmSec > 0 ? PlainSec / WarmSec : 0.0);

  // The invariants the campaign docs promise.
  bool Ok = true;
  if (Warm.CacheHits != Tests->size() || Warm.CacheMisses != 0) {
    std::fprintf(stderr, "FAIL: warm run was not pure hits (%llu/%llu)\n",
                 Warm.CacheHits, Warm.CacheMisses);
    Ok = false;
  }
  const std::string Baseline = scrubbed(Plain);
  if (scrubbed(Cold) != Baseline || scrubbed(Warm) != Baseline) {
    std::fprintf(stderr,
                 "FAIL: cached reports differ from the plain baseline\n");
    Ok = false;
  }
  std::filesystem::remove_all(CacheDir);
  return Ok ? 0 : 1;
}
