//===- bench_cat_vs_native.cpp - Fig. 38 model file vs native Power --------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the herd design point: the Fig. 38 cat file (models/power.cat)
/// must decide exactly like the hand-coded Power model over the full
/// battery, and the interpreter's overhead is reported. Same for the other
/// shipped models.
///
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"
#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "model/Registry.h"

#include <chrono>
#include <cstdio>

using namespace cats;
using cats::cat::CatModel;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

} // namespace

int main() {
  struct Pair {
    const char *Stem;
    const char *Native;
    Arch Battery;
  };
  const Pair Pairs[] = {
      {"sc", "SC", Arch::Power},     {"tso", "TSO", Arch::TSO},
      {"power", "Power", Arch::Power}, {"arm", "ARM", Arch::ARM},
      {"arm-llh", "ARM llh", Arch::ARM},
  };

  std::printf("== cat interpreter vs native models ==\n\n");
  std::printf("%-10s %-10s %12s %12s %12s %10s\n", "cat file", "native",
              "candidates", "agree", "cat time", "native time");
  bool AllAgree = true;
  for (const Pair &P : Pairs) {
    auto Cat = CatModel::builtin(P.Stem);
    if (!Cat) {
      std::printf("%-10s failed to load: %s\n", P.Stem,
                  Cat.message().c_str());
      return 1;
    }
    const Model *Native = modelByName(P.Native);
    std::vector<LitmusTest> Battery = generateBattery(P.Battery, 12);

    uint64_t Candidates = 0, Agreement = 0;
    double CatTime = 0, NativeTime = 0;
    for (const LitmusTest &Test : Battery) {
      auto Compiled = CompiledTest::compile(Test);
      if (!Compiled)
        continue;
      forEachCandidate(*Compiled, [&](const Candidate &Cand) {
        if (!Cand.Consistent)
          return true;
        ++Candidates;
        auto Start = Clock::now();
        bool CatSays = Cat->allows(Cand.Exe);
        CatTime += secondsSince(Start);
        Start = Clock::now();
        bool NativeSays = Native->allows(Cand.Exe);
        NativeTime += secondsSince(Start);
        Agreement += CatSays == NativeSays;
        return true;
      });
    }
    AllAgree &= Agreement == Candidates;
    std::printf("%-10s %-10s %12llu %12llu %10.3fs %9.3fs\n", P.Stem,
                P.Native, static_cast<unsigned long long>(Candidates),
                static_cast<unsigned long long>(Agreement), CatTime,
                NativeTime);
  }
  std::printf("\nFull agreement: %s (the Fig. 38 text is the model).\n",
              AllAgree ? "yes" : "NO");
  return AllAgree ? 0 : 1;
}
