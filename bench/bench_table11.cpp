//===- bench_table11.cpp - Table XI: multi-event vs present model in BMC ---===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table XI: reachability of litmus final states inside the
/// verifier with the CAV'12 multi-event model vs the present single-event
/// model. Paper: 4450 tests, 1944 s vs 1041 s — same verdicts, roughly 2x.
///
//===----------------------------------------------------------------------===//

#include "bmc/Verify.h"
#include "diy/Diy.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

int main() {
  const Model &Power = *modelByName("Power");
  // Both architectures' batteries, as the paper mixes Power and ARM.
  std::vector<LitmusTest> Battery = generateBattery(Arch::Power);
  for (LitmusTest &Test : generateBattery(Arch::ARM))
    Battery.push_back(std::move(Test));

  double MultiTime = 0, SingleTime = 0;
  unsigned Agree = 0;
  for (const LitmusTest &Test : Battery) {
    VerifyResult Multi = verifyMultiEvent(Test, Power);
    VerifyResult Single = verifyAxiomatic(Test, Power);
    MultiTime += Multi.Seconds;
    SingleTime += Single.Seconds;
    Agree += Multi.Reachable == Single.Reachable;
  }

  std::printf("== Table XI: verification with multi-event vs present "
              "model ==\n\n");
  std::printf("%-16s %-26s %10s %12s\n", "tool", "model", "# of tests",
              "time (s)");
  std::printf("%-16s %-26s %10zu %12.2f   (paper: 4450, 1944 s)\n",
              "verifier", "multi-event (CAV'12)", Battery.size(),
              MultiTime);
  std::printf("%-16s %-26s %10zu %12.2f   (paper: 4450, 1041 s)\n",
              "verifier", "present (single-event)", Battery.size(),
              SingleTime);
  std::printf("\nVerdict agreement: %u/%zu. Ratio: %.2fx "
              "(paper: 1.9x).\n",
              Agree, Battery.size(),
              MultiTime / (SingleTime > 0 ? SingleTime : 1));
  return 0;
}
