//===- bench_model_compare.cpp - Sec. 8.2: model-vs-model comparison -------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the Sec. 8.2 experiments: where our Power model differs from
/// the prior models. The PLDI'11 and CAV'12 models are represented by
/// their documented divergences:
///
///  * PLDI'11 wrongly forbids mp+lwsync+addr-po-detour (observed on
///    hardware); our model allows it (Fig. 36);
///  * CAV'12 forbids mp+lwsync+addr-bigdetour-addr; ours allows it
///    (Fig. 37);
///  * PLDI'11 forbids the ARM fri-rfi behaviours (Fig. 32) that the
///    designers want allowed; our ARM model allows them (the Power-ARM
///    configuration plays the PLDI'11-shape role there).
///
/// Additionally sweeps the Power battery with the rdw/detour-free ppo
/// variant discussed at the end of Sec. 8.2 (a "more static" ppo),
/// counting how many verdicts change (paper: 24 tests on Power).
///
/// The battery runs on the sweep engine with a two-model set {Power,
/// static-ppo Power} per test: both verdicts come out of one shared
/// candidate enumeration instead of two independent simulate() passes.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/HwModel.h"
#include "model/Registry.h"
#include "sweep/SweepEngine.h"

#include <cstdio>

using namespace cats;

int main() {
  std::printf("== Sec. 8.2: experimental comparison of models ==\n\n");

  struct Delta {
    const char *Test;
    const char *Rival;
    const char *RivalVerdict;
    bool OursAllows;
  };
  const Delta Deltas[] = {
      {"mp+lwsync+addr-po-detour", "PLDI'11 (Sarkar et al.)", "Forbid",
       true},
      {"mp+lwsync+addr-bigdetour-addr", "CAV'12 (Mador-Haim et al.)",
       "Forbid", true},
      {"mp+dmb+fri-rfi-ctrlisb", "PLDI'11 applied to ARM", "Forbid",
       true},
  };

  std::printf("%-32s %-28s %-8s %-8s\n", "test", "rival model", "rival",
              "ours");
  bool AllMatch = true;
  for (const Delta &D : Deltas) {
    const CatalogEntry *Entry = catalogEntry(D.Test);
    if (!Entry)
      continue;
    const Model &Ours = modelFor(Entry->Test.TargetArch);
    bool Allowed = allowedBy(Entry->Test, Ours);
    AllMatch &= Allowed == D.OursAllows;
    std::printf("%-32s %-28s %-8s %-8s %s\n", D.Test, D.Rival,
                D.RivalVerdict, Allowed ? "Allow" : "Forbid",
                Allowed == D.OursAllows ? "" : "UNEXPECTED");
  }

  // The static-ppo variant (no rdw, no detour), swept against the full
  // model in one shared-enumeration pass per battery test.
  HwConfig StaticConfig = HwConfig::power();
  StaticConfig.Name = "Power (static ppo)";
  StaticConfig.PpoUsesRdwDetour = false;
  HwModel StaticPower(StaticConfig);
  const Model &Power = *modelByName("Power");

  SweepReport Report = SweepEngine().run(
      makeJobs(generateBattery(Arch::Power), {&Power, &StaticPower}));

  unsigned Changed = 0, Total = 0;
  std::vector<std::string> ChangedNames;
  for (const SweepTestResult &T : Report.Tests) {
    ++Total;
    if (!T.Error.empty())
      continue;
    bool Full = T.Result.PerModel[0].ConditionReachable;
    bool Static = T.Result.PerModel[1].ConditionReachable;
    if (Full != Static) {
      ++Changed;
      if (ChangedNames.size() < 10)
        ChangedNames.push_back(T.TestName);
    }
  }
  std::printf("\nDropping rdw/detour from ppo changes %u/%u battery "
              "verdicts (paper: 24/8117, i.e. 0.3%%; the shapes that "
              "depend on rdw/detour need three same-location accesses "
              "per thread, which our two-access battery lacks; %u "
              "workers, %.3fs).\n",
              Changed, Total, Report.Jobs, Report.WallSeconds);
  for (const std::string &Name : ChangedNames)
    std::printf("  e.g. %s\n", Name.c_str());

  std::printf("\nAll documented divergences reproduced: %s\n",
              AllMatch ? "yes" : "NO");
  return AllMatch ? 0 : 1;
}
