//===- bench_diy.cpp - Enumeration/synthesis cost vs sweep cost -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generation benchmark behind BENCH_diy.json and the CI perf gate:
/// enumerate a fixed Power slice (size 5, every mechanism), synthesize
/// its tests, and stream them through the sweep engine. Generation must
/// stay a small fraction of judging — the gated metric is
///
///   normalized_gen_cost = (enumerate + synthesize) / sweep_1_worker
///
/// measured in the same run, so runner speed cancels out. The multi-worker
/// streamed sweep is reported for information. Modes:
///
///   bench_diy                      print the table
///   bench_diy --out FILE           write the cats-bench-diy/1 snapshot
///   bench_diy --check FILE         re-measure and fail (exit 1) when
///                                  normalized_gen_cost regressed more
///                                  than --tolerance (default 0.25) over
///                                  the committed baseline, or when the
///                                  enumeration stops being deterministic.
///
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"
#include "sweep/SweepEngine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point From) {
  return std::chrono::duration<double>(Clock::now() - From).count();
}

EnumerateOptions sliceOptions() {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  return Opts;
}

struct Measurement {
  uint64_t Cycles = 0;
  unsigned Tests = 0;
  double EnumerateSeconds = 0;
  double SynthesizeSeconds = 0;
  double SweepSecondsJ1 = 0;
  double SweepSeconds = 0;
  /// The 1-worker streamed sweep with metrics collection enabled, gated
  /// at --obs-tolerance in --check.
  double SweepSecondsJ1Obs = 0;
  bool Deterministic = true;
  /// Headline counters from the metrics-enabled pass.
  unsigned long long ClosuresTried = 0;
  unsigned long long TestsSynthesized = 0;
  unsigned long long CandidatesTotal = 0;
  unsigned long long CandidatesConsistent = 0;
};

Measurement measure(unsigned Jobs, unsigned Repeats) {
  const EnumerateOptions Opts = sliceOptions();
  const std::vector<const Model *> &Models = allModels();

  Measurement M;
  M.EnumerateSeconds = 1e300;
  M.SynthesizeSeconds = 1e300;
  M.SweepSecondsJ1 = 1e300;
  M.SweepSeconds = 1e300;
  M.SweepSecondsJ1Obs = 1e300;

  std::vector<std::string> Reference;
  for (unsigned R = 0; R < Repeats; ++R) {
    // Enumeration alone.
    std::vector<std::string> Names;
    auto Start = Clock::now();
    enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
      Names.push_back(C.Name);
      return true;
    });
    M.EnumerateSeconds = std::min(M.EnumerateSeconds, elapsed(Start));
    M.Cycles = Names.size();
    if (Reference.empty())
      Reference = Names;
    else if (Names != Reference)
      M.Deterministic = false;

    // Synthesis of the whole slice.
    Start = Clock::now();
    unsigned Tests = 0;
    enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
      if (synthesizeTest(C.Cycle, Opts.Target))
        ++Tests;
      return true;
    });
    M.SynthesizeSeconds = std::min(M.SynthesizeSeconds, elapsed(Start));
    M.Tests = Tests;

    // Streamed sweeps: 1 worker always, --jobs workers when distinct
    // (with --jobs 1 the multi-worker case *is* the 1-worker case).
    std::vector<unsigned> WorkerCounts = {1};
    if (Jobs > 1)
      WorkerCounts.push_back(Jobs);
    for (unsigned W : WorkerCounts) {
      auto Source = makeDiyTestSource(Opts);
      if (!Source) {
        std::fprintf(stderr, "bench_diy: %s\n", Source.message().c_str());
        std::exit(1);
      }
      SweepEngine Engine(SweepOptions{W});
      Start = Clock::now();
      SweepReport Report = Engine.runStreamed(*Source, Models, 32);
      const double Wall = elapsed(Start);
      if (Report.Tests.size() != Tests)
        M.Deterministic = false;
      if (W == 1)
        M.SweepSecondsJ1 = std::min(M.SweepSecondsJ1, Wall);
      else
        M.SweepSeconds = std::min(M.SweepSeconds, Wall);
    }
    if (Jobs == 1)
      M.SweepSeconds = M.SweepSecondsJ1;

    // The same 1-worker streamed sweep with the metrics registry live.
    // The source is created inside the enabled window so the enumeration
    // counters (diy.closures_tried, diy.tests_synthesized) register; the
    // clock still covers runStreamed only, like the passes above.
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    auto ObsSource = makeDiyTestSource(Opts);
    if (!ObsSource) {
      std::fprintf(stderr, "bench_diy: %s\n", ObsSource.message().c_str());
      std::exit(1);
    }
    SweepEngine ObsEngine(SweepOptions{1});
    Start = Clock::now();
    SweepReport ObsReport = ObsEngine.runStreamed(*ObsSource, Models, 32);
    M.SweepSecondsJ1Obs = std::min(M.SweepSecondsJ1Obs, elapsed(Start));
    obs::setMetricsEnabled(false);
    if (ObsReport.Tests.size() != Tests)
      M.Deterministic = false;
    M.ClosuresTried = obs::counter("diy.closures_tried").value();
    M.TestsSynthesized = obs::counter("diy.tests_synthesized").value();
    M.CandidatesTotal = obs::counter("judge.candidates_total").value();
    M.CandidatesConsistent =
        obs::counter("judge.candidates_consistent").value();
  }
  return M;
}

JsonValue toJson(const Measurement &M, unsigned Jobs, unsigned Repeats) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-bench-diy/1");
  Root.set("arch", "Power");
  Root.set("max_size", sliceOptions().MaxEdges);
  Root.set("cycles", static_cast<unsigned long long>(M.Cycles));
  Root.set("tests", M.Tests);
  Root.set("jobs", Jobs);
  Root.set("repeats", Repeats);
  Root.set("enumerate_seconds", M.EnumerateSeconds);
  Root.set("synthesize_seconds", M.SynthesizeSeconds);
  Root.set("sweep_seconds_j1", M.SweepSecondsJ1);
  Root.set("sweep_seconds", M.SweepSeconds);
  Root.set("normalized_gen_cost",
           (M.EnumerateSeconds + M.SynthesizeSeconds) / M.SweepSecondsJ1);
  Root.set("deterministic", M.Deterministic);
  Root.set("sweep_seconds_j1_obs", M.SweepSecondsJ1Obs);
  Root.set("obs_overhead", M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0);
  JsonValue Counters = JsonValue::object();
  Counters.set("closures_tried", M.ClosuresTried);
  Counters.set("tests_synthesized", M.TestsSynthesized);
  Counters.set("candidates_total", M.CandidatesTotal);
  Counters.set("candidates_consistent", M.CandidatesConsistent);
  Counters.set("prune_rate",
               M.CandidatesTotal
                   ? 1.0 - static_cast<double>(M.CandidatesConsistent) /
                               static_cast<double>(M.CandidatesTotal)
                   : 0.0);
  Root.set("counters", std::move(Counters));
  return Root;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--repeats N] [--out FILE]\n"
               "          [--check FILE] [--tolerance F] [--obs-tolerance F]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 4, Repeats = 5;
  double Tolerance = 0.25, ObsTolerance = 0.05;
  std::string OutPath, CheckPath;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--jobs") {
      const char *V = Value();
      if (!V || !parseUnsignedArg(V, Jobs))
        return usage(argv[0]);
    } else if (Arg == "--repeats") {
      const char *V = Value();
      if (!V || !parseUnsignedArg(V, Repeats))
        return usage(argv[0]);
    } else if (Arg == "--out") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else if (Arg == "--check") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      CheckPath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      char *End = nullptr;
      Tolerance = V ? std::strtod(V, &End) : 0;
      if (!V || !End || *End != '\0' || Tolerance < 0)
        return usage(argv[0]);
    } else if (Arg == "--obs-tolerance") {
      const char *V = Value();
      char *End = nullptr;
      ObsTolerance = V ? std::strtod(V, &End) : 0;
      if (!V || !End || *End != '\0' || ObsTolerance < 0)
        return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (Jobs == 0 || Repeats == 0)
    return usage(argv[0]);

  std::printf("== diy enumeration + synthesis vs streamed sweep ==\n");
  Measurement M = measure(Jobs, Repeats);
  std::printf("slice: Power size <= %u, %llu canonical cycles, %u tests, "
              "best of %u repeats\n\n",
              sliceOptions().MaxEdges,
              static_cast<unsigned long long>(M.Cycles), M.Tests, Repeats);
  std::printf("%-38s %10.4fs\n", "enumerate (canonical cycles)",
              M.EnumerateSeconds);
  std::printf("%-38s %10.4fs\n", "synthesize (all tests)",
              M.SynthesizeSeconds);
  std::printf("%-38s %10.4fs\n", "streamed sweep, 1 worker",
              M.SweepSecondsJ1);
  char Label[64];
  std::snprintf(Label, sizeof(Label), "streamed sweep, %u workers", Jobs);
  std::printf("%-38s %10.4fs  (%.2fx)\n", Label, M.SweepSeconds,
              M.SweepSecondsJ1 / M.SweepSeconds);
  std::printf("%-38s %10.4fs  (+%.1f%% vs metrics off)\n",
              "streamed sweep, 1 worker, metrics on", M.SweepSecondsJ1Obs,
              (M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0) * 100);
  std::printf("counters: %llu closures tried, %llu tests synthesized, "
              "%llu candidates (%.1f%% pruned)\n",
              M.ClosuresTried, M.TestsSynthesized, M.CandidatesTotal,
              M.CandidatesTotal
                  ? 100.0 * (1.0 - static_cast<double>(M.CandidatesConsistent) /
                                       static_cast<double>(M.CandidatesTotal))
                  : 0.0);
  const double GenCost =
      (M.EnumerateSeconds + M.SynthesizeSeconds) / M.SweepSecondsJ1;
  std::printf("normalized generation cost: %.4f\n", GenCost);
  std::printf("deterministic: %s\n", M.Deterministic ? "yes" : "NO");

  if (!M.Deterministic) {
    std::fprintf(stderr, "FAIL: enumeration is not deterministic\n");
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << toJson(M, Jobs, Repeats).dump();
    std::printf("wrote %s\n", OutPath.c_str());
  }

  if (!CheckPath.empty()) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "cannot read baseline %s\n", CheckPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Baseline = JsonValue::parse(Buf.str());
    if (!Baseline) {
      std::fprintf(stderr, "bad baseline %s: %s\n", CheckPath.c_str(),
                   Baseline.message().c_str());
      return 1;
    }
    const JsonValue *Cost = Baseline->get("normalized_gen_cost");
    if (!Cost || !Cost->isNumber()) {
      std::fprintf(stderr, "baseline %s lacks normalized_gen_cost\n",
                   CheckPath.c_str());
      return 1;
    }
    const JsonValue *Cycles = Baseline->get("cycles");
    if (Cycles && Cycles->isNumber() &&
        static_cast<uint64_t>(Cycles->asNumber()) != M.Cycles) {
      std::fprintf(stderr,
                   "FAIL: slice changed (%llu cycles vs baseline %.0f); "
                   "refresh BENCH_diy.json with --out\n",
                   static_cast<unsigned long long>(M.Cycles),
                   Cycles->asNumber());
      return 1;
    }
    // Generation is a small fraction of judging, so the ratio is noisy in
    // absolute terms; allow the relative tolerance plus a small absolute
    // floor.
    const double Allowed =
        std::max(Cost->asNumber() * (1.0 + Tolerance),
                 Cost->asNumber() + 0.005);
    std::printf("\nperf gate: normalized generation cost %.4f "
                "(baseline %.4f, allowed <= %.4f)\n",
                GenCost, Cost->asNumber(), Allowed);
    if (GenCost > Allowed) {
      std::fprintf(stderr,
                   "FAIL: generation cost regressed more than %.0f%% vs "
                   "the committed baseline\n",
                   Tolerance * 100);
      return 1;
    }

    // Observability gate, measured in-run (baselines committed before the
    // metrics fields existed still validate): the metrics-enabled sweep
    // must stay within --obs-tolerance of the disabled one, with a 2ms
    // absolute slack floor against timer noise.
    const double ObsOverhead = M.SweepSecondsJ1Obs - M.SweepSecondsJ1;
    const double ObsAllowed =
        std::max(M.SweepSecondsJ1 * ObsTolerance, 0.002);
    std::printf("obs gate: metrics-enabled sweep +%.4fs over %.4fs "
                "(allowed <= +%.4fs)\n",
                ObsOverhead, M.SweepSecondsJ1, ObsAllowed);
    if (ObsOverhead > ObsAllowed) {
      std::fprintf(stderr,
                   "FAIL: enabling metrics costs more than %.0f%% of the "
                   "sweep wall time\n",
                   ObsTolerance * 100);
      return 1;
    }
    std::printf("perf gate passed\n");
  }

  return 0;
}
