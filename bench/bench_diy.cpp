//===- bench_diy.cpp - Enumeration/synthesis cost vs sweep cost -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generation benchmark behind BENCH_diy.json and the CI perf gate:
/// enumerate a fixed Power slice (size 5, every mechanism), synthesize
/// its tests, and stream them through the sweep engine. Generation must
/// stay a small fraction of judging — the gated metric is
///
///   normalized_gen_cost = (enumerate + synthesize) / sweep_1_worker
///
/// measured in the same run, so runner speed cancels out. The multi-worker
/// streamed sweep is reported for information. Modes:
///
///   bench_diy                      print the table
///   bench_diy --out FILE           write the cats-bench-diy/1 snapshot
///   bench_diy --check FILE         re-measure and fail (exit 1) when
///                                  normalized_gen_cost regressed more
///                                  than --tolerance (default 0.25) over
///                                  the committed baseline, when the
///                                  enumeration stops being deterministic,
///                                  when the pruned backend is less than
///                                  --min-backend-speedup (default 3x)
///                                  faster than naive on the size-6
///                                  corpus, or when the internal-com
///                                  slice reports a zero prune rate.
///
/// Two extra corpora quantify the incremental enumerator
/// (docs/enumeration.md): a size-6 slice judged under both backends (the
/// speedup measurement), and an internal-communication slice whose
/// same-location po pairs make the partial-assignment cut actually fire
/// (the prune-rate measurement).
///
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"
#include "sweep/SweepEngine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point From) {
  return std::chrono::duration<double>(Clock::now() - From).count();
}

EnumerateOptions sliceOptions() {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  return Opts;
}

/// The backend-speedup corpus: every six-event Power cycle, capped so the
/// naive reference pass stays in benchmark territory.
EnumerateOptions size6Options() {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MinEdges = 6;
  Opts.MaxEdges = 6;
  Opts.Limit = 400;
  return Opts;
}

/// The prune-rate corpus: internal-communication detours put several
/// same-location accesses on one thread, so po-loc is non-empty and the
/// enumerator's partial cut has something to do.
EnumerateOptions internalComOptions() {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  Opts.InternalCom = true;
  Opts.Limit = 300;
  return Opts;
}

struct Measurement {
  uint64_t Cycles = 0;
  unsigned Tests = 0;
  double EnumerateSeconds = 0;
  double SynthesizeSeconds = 0;
  double SweepSecondsJ1 = 0;
  double SweepSeconds = 0;
  /// The 1-worker streamed sweep with metrics collection enabled, gated
  /// at --obs-tolerance in --check.
  double SweepSecondsJ1Obs = 0;
  bool Deterministic = true;
  /// Headline counters from the metrics-enabled pass.
  unsigned long long ClosuresTried = 0;
  unsigned long long TestsSynthesized = 0;
  unsigned long long CandidatesTotal = 0;
  unsigned long long CandidatesConsistent = 0;
  /// Size-6 backend comparison: the same corpus streamed through the
  /// naive and the pruned backend at 1 worker.
  unsigned Size6Tests = 0;
  double Size6NaiveSeconds = 0;
  double Size6PrunedSeconds = 0;
  /// Internal-com slice counters from a metrics-enabled pruned pass; the
  /// prune rate is PrunedCandidates / CandidatesTotal.
  unsigned long long IcCandidatesTotal = 0;
  unsigned long long IcPrunedCandidates = 0;
  unsigned long long IcPartialCuts = 0;
  unsigned long long IcSymmetryReused = 0;
};

/// Materializes a slice's tests up front, so backend passes time judging
/// only (synthesis is backend-independent and would dilute the ratio).
std::vector<SweepJob> materializeJobs(const EnumerateOptions &Opts) {
  auto Source = makeDiyTestSource(Opts);
  if (!Source) {
    std::fprintf(stderr, "bench_diy: %s\n", Source.message().c_str());
    std::exit(1);
  }
  std::vector<LitmusTest> Tests;
  LitmusTest Test;
  while ((*Source)(Test))
    Tests.push_back(Test);
  return makeJobs(Tests, allModels());
}

/// One 1-worker judging pass over pre-materialized jobs under \p Backend.
double runBackendPass(const std::vector<SweepJob> &Jobs,
                      JudgeBackend Backend) {
  SweepOptions EngineOpts;
  EngineOpts.Jobs = 1;
  EngineOpts.Backend = Backend;
  SweepEngine Engine(EngineOpts);
  const auto Start = Clock::now();
  SweepReport Report = Engine.run(Jobs);
  const double Wall = elapsed(Start);
  if (!Report.allOk()) {
    std::fprintf(stderr, "bench_diy: backend pass failed\n");
    std::exit(1);
  }
  return Wall;
}

Measurement measure(unsigned Jobs, unsigned Repeats) {
  const EnumerateOptions Opts = sliceOptions();
  const std::vector<const Model *> &Models = allModels();

  Measurement M;
  M.EnumerateSeconds = 1e300;
  M.SynthesizeSeconds = 1e300;
  M.SweepSecondsJ1 = 1e300;
  M.SweepSeconds = 1e300;
  M.SweepSecondsJ1Obs = 1e300;

  std::vector<std::string> Reference;
  for (unsigned R = 0; R < Repeats; ++R) {
    // Enumeration alone.
    std::vector<std::string> Names;
    auto Start = Clock::now();
    enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
      Names.push_back(C.Name);
      return true;
    });
    M.EnumerateSeconds = std::min(M.EnumerateSeconds, elapsed(Start));
    M.Cycles = Names.size();
    if (Reference.empty())
      Reference = Names;
    else if (Names != Reference)
      M.Deterministic = false;

    // Synthesis of the whole slice.
    Start = Clock::now();
    unsigned Tests = 0;
    enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
      if (synthesizeTest(C.Cycle, Opts.Target))
        ++Tests;
      return true;
    });
    M.SynthesizeSeconds = std::min(M.SynthesizeSeconds, elapsed(Start));
    M.Tests = Tests;

    // Streamed sweeps: 1 worker always, --jobs workers when distinct
    // (with --jobs 1 the multi-worker case *is* the 1-worker case).
    std::vector<unsigned> WorkerCounts = {1};
    if (Jobs > 1)
      WorkerCounts.push_back(Jobs);
    for (unsigned W : WorkerCounts) {
      auto Source = makeDiyTestSource(Opts);
      if (!Source) {
        std::fprintf(stderr, "bench_diy: %s\n", Source.message().c_str());
        std::exit(1);
      }
      SweepEngine Engine(SweepOptions{W});
      Start = Clock::now();
      SweepReport Report = Engine.runStreamed(*Source, Models, 32);
      const double Wall = elapsed(Start);
      if (Report.Tests.size() != Tests)
        M.Deterministic = false;
      if (W == 1)
        M.SweepSecondsJ1 = std::min(M.SweepSecondsJ1, Wall);
      else
        M.SweepSeconds = std::min(M.SweepSeconds, Wall);
    }
    if (Jobs == 1)
      M.SweepSeconds = M.SweepSecondsJ1;

    // The same 1-worker streamed sweep with the metrics registry live.
    // The source is created inside the enabled window so the enumeration
    // counters (diy.closures_tried, diy.tests_synthesized) register; the
    // clock still covers runStreamed only, like the passes above.
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    auto ObsSource = makeDiyTestSource(Opts);
    if (!ObsSource) {
      std::fprintf(stderr, "bench_diy: %s\n", ObsSource.message().c_str());
      std::exit(1);
    }
    SweepEngine ObsEngine(SweepOptions{1});
    Start = Clock::now();
    SweepReport ObsReport = ObsEngine.runStreamed(*ObsSource, Models, 32);
    M.SweepSecondsJ1Obs = std::min(M.SweepSecondsJ1Obs, elapsed(Start));
    obs::setMetricsEnabled(false);
    if (ObsReport.Tests.size() != Tests)
      M.Deterministic = false;
    M.ClosuresTried = obs::counter("diy.closures_tried").value();
    M.TestsSynthesized = obs::counter("diy.tests_synthesized").value();
    M.CandidatesTotal = obs::counter("judge.candidates_total").value();
    M.CandidatesConsistent =
        obs::counter("judge.candidates_consistent").value();
  }

  // Backend comparison on the size-6 corpus: pre-materialized tests,
  // judging wall time only, best of the same repeats.
  const std::vector<SweepJob> Size6Jobs = materializeJobs(size6Options());
  M.Size6Tests = static_cast<unsigned>(Size6Jobs.size());
  M.Size6NaiveSeconds = 1e300;
  M.Size6PrunedSeconds = 1e300;
  for (unsigned R = 0; R < Repeats; ++R) {
    M.Size6NaiveSeconds =
        std::min(M.Size6NaiveSeconds,
                 runBackendPass(Size6Jobs, JudgeBackend::Naive));
    M.Size6PrunedSeconds =
        std::min(M.Size6PrunedSeconds,
                 runBackendPass(Size6Jobs, JudgeBackend::Pruned));
  }

  // Prune-rate measurement: one metrics-enabled pruned pass over the
  // internal-com slice (the counters are deterministic, one pass is
  // exact).
  obs::resetMetrics();
  obs::setMetricsEnabled(true);
  runBackendPass(materializeJobs(internalComOptions()),
                 JudgeBackend::Pruned);
  obs::setMetricsEnabled(false);
  M.IcCandidatesTotal = obs::counter("judge.candidates_total").value();
  M.IcPrunedCandidates = obs::counter("judge.pruned.candidates").value();
  M.IcPartialCuts = obs::counter("judge.pruned.partial").value();
  M.IcSymmetryReused = obs::counter("judge.symmetry.reused").value();
  return M;
}

JsonValue toJson(const Measurement &M, unsigned Jobs, unsigned Repeats) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-bench-diy/1");
  Root.set("arch", "Power");
  Root.set("max_size", sliceOptions().MaxEdges);
  Root.set("cycles", static_cast<unsigned long long>(M.Cycles));
  Root.set("tests", M.Tests);
  Root.set("jobs", Jobs);
  Root.set("repeats", Repeats);
  Root.set("enumerate_seconds", M.EnumerateSeconds);
  Root.set("synthesize_seconds", M.SynthesizeSeconds);
  Root.set("sweep_seconds_j1", M.SweepSecondsJ1);
  Root.set("sweep_seconds", M.SweepSeconds);
  Root.set("normalized_gen_cost",
           (M.EnumerateSeconds + M.SynthesizeSeconds) / M.SweepSecondsJ1);
  Root.set("deterministic", M.Deterministic);
  Root.set("sweep_seconds_j1_obs", M.SweepSecondsJ1Obs);
  Root.set("obs_overhead", M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0);
  JsonValue Counters = JsonValue::object();
  Counters.set("closures_tried", M.ClosuresTried);
  Counters.set("tests_synthesized", M.TestsSynthesized);
  Counters.set("candidates_total", M.CandidatesTotal);
  Counters.set("candidates_consistent", M.CandidatesConsistent);
  // The value-consistency rate kept its historical slot under an honest
  // name; prune_rate now reports actual partial-assignment pruning,
  // measured on the internal-com slice where the cut can fire.
  Counters.set("inconsistent_rate",
               M.CandidatesTotal
                   ? 1.0 - static_cast<double>(M.CandidatesConsistent) /
                               static_cast<double>(M.CandidatesTotal)
                   : 0.0);
  Root.set("counters", std::move(Counters));
  JsonValue Size6 = JsonValue::object();
  Size6.set("tests", M.Size6Tests);
  Size6.set("naive_seconds_j1", M.Size6NaiveSeconds);
  Size6.set("pruned_seconds_j1", M.Size6PrunedSeconds);
  Size6.set("backend_speedup", M.Size6NaiveSeconds / M.Size6PrunedSeconds);
  Root.set("size6", std::move(Size6));
  JsonValue Ic = JsonValue::object();
  Ic.set("candidates_total", M.IcCandidatesTotal);
  Ic.set("pruned_candidates", M.IcPrunedCandidates);
  Ic.set("pruned_partial_cuts", M.IcPartialCuts);
  Ic.set("symmetry_reused", M.IcSymmetryReused);
  Ic.set("prune_rate",
         M.IcCandidatesTotal
             ? static_cast<double>(M.IcPrunedCandidates) /
                   static_cast<double>(M.IcCandidatesTotal)
             : 0.0);
  Root.set("internal_com", std::move(Ic));
  return Root;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--repeats N] [--out FILE]\n"
               "          [--check FILE] [--tolerance F] [--obs-tolerance F]\n"
               "          [--min-backend-speedup F]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 4, Repeats = 5;
  double Tolerance = 0.25, ObsTolerance = 0.05, MinBackendSpeedup = 3.0;
  std::string OutPath, CheckPath;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--jobs") {
      const char *V = Value();
      if (!V || !parseUnsignedArg(V, Jobs))
        return usage(argv[0]);
    } else if (Arg == "--repeats") {
      const char *V = Value();
      if (!V || !parseUnsignedArg(V, Repeats))
        return usage(argv[0]);
    } else if (Arg == "--out") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else if (Arg == "--check") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      CheckPath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      char *End = nullptr;
      Tolerance = V ? std::strtod(V, &End) : 0;
      if (!V || !End || *End != '\0' || Tolerance < 0)
        return usage(argv[0]);
    } else if (Arg == "--obs-tolerance") {
      const char *V = Value();
      char *End = nullptr;
      ObsTolerance = V ? std::strtod(V, &End) : 0;
      if (!V || !End || *End != '\0' || ObsTolerance < 0)
        return usage(argv[0]);
    } else if (Arg == "--min-backend-speedup") {
      const char *V = Value();
      char *End = nullptr;
      MinBackendSpeedup = V ? std::strtod(V, &End) : 0;
      if (!V || !End || *End != '\0' || MinBackendSpeedup < 0)
        return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (Jobs == 0 || Repeats == 0)
    return usage(argv[0]);

  std::printf("== diy enumeration + synthesis vs streamed sweep ==\n");
  Measurement M = measure(Jobs, Repeats);
  std::printf("slice: Power size <= %u, %llu canonical cycles, %u tests, "
              "best of %u repeats\n\n",
              sliceOptions().MaxEdges,
              static_cast<unsigned long long>(M.Cycles), M.Tests, Repeats);
  std::printf("%-38s %10.4fs\n", "enumerate (canonical cycles)",
              M.EnumerateSeconds);
  std::printf("%-38s %10.4fs\n", "synthesize (all tests)",
              M.SynthesizeSeconds);
  std::printf("%-38s %10.4fs\n", "streamed sweep, 1 worker",
              M.SweepSecondsJ1);
  char Label[64];
  std::snprintf(Label, sizeof(Label), "streamed sweep, %u workers", Jobs);
  std::printf("%-38s %10.4fs  (%.2fx)\n", Label, M.SweepSeconds,
              M.SweepSecondsJ1 / M.SweepSeconds);
  std::printf("%-38s %10.4fs  (+%.1f%% vs metrics off)\n",
              "streamed sweep, 1 worker, metrics on", M.SweepSecondsJ1Obs,
              (M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0) * 100);
  std::printf("counters: %llu closures tried, %llu tests synthesized, "
              "%llu candidates (%.1f%% pruned)\n",
              M.ClosuresTried, M.TestsSynthesized, M.CandidatesTotal,
              M.CandidatesTotal
                  ? 100.0 * (1.0 - static_cast<double>(M.CandidatesConsistent) /
                                       static_cast<double>(M.CandidatesTotal))
                  : 0.0);
  const double GenCost =
      (M.EnumerateSeconds + M.SynthesizeSeconds) / M.SweepSecondsJ1;
  std::printf("normalized generation cost: %.4f\n", GenCost);

  const double BackendSpeedup = M.Size6NaiveSeconds / M.Size6PrunedSeconds;
  std::printf("\nsize-6 corpus (%u tests, 1 worker):\n", M.Size6Tests);
  std::printf("%-38s %10.4fs\n", "  naive backend", M.Size6NaiveSeconds);
  std::printf("%-38s %10.4fs  (%.2fx)\n", "  pruned backend",
              M.Size6PrunedSeconds, BackendSpeedup);
  const double PruneRate =
      M.IcCandidatesTotal
          ? static_cast<double>(M.IcPrunedCandidates) /
                static_cast<double>(M.IcCandidatesTotal)
          : 0.0;
  std::printf("internal-com slice: %llu candidates, %llu pruned on "
              "partial assignments (%.1f%% prune rate, %llu cuts), "
              "%llu restituted by symmetry\n",
              M.IcCandidatesTotal, M.IcPrunedCandidates, 100.0 * PruneRate,
              M.IcPartialCuts, M.IcSymmetryReused);
  std::printf("deterministic: %s\n", M.Deterministic ? "yes" : "NO");

  if (!M.Deterministic) {
    std::fprintf(stderr, "FAIL: enumeration is not deterministic\n");
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << toJson(M, Jobs, Repeats).dump();
    std::printf("wrote %s\n", OutPath.c_str());
  }

  if (!CheckPath.empty()) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "cannot read baseline %s\n", CheckPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Baseline = JsonValue::parse(Buf.str());
    if (!Baseline) {
      std::fprintf(stderr, "bad baseline %s: %s\n", CheckPath.c_str(),
                   Baseline.message().c_str());
      return 1;
    }
    const JsonValue *Cost = Baseline->get("normalized_gen_cost");
    if (!Cost || !Cost->isNumber()) {
      std::fprintf(stderr, "baseline %s lacks normalized_gen_cost\n",
                   CheckPath.c_str());
      return 1;
    }
    const JsonValue *Cycles = Baseline->get("cycles");
    if (Cycles && Cycles->isNumber() &&
        static_cast<uint64_t>(Cycles->asNumber()) != M.Cycles) {
      std::fprintf(stderr,
                   "FAIL: slice changed (%llu cycles vs baseline %.0f); "
                   "refresh BENCH_diy.json with --out\n",
                   static_cast<unsigned long long>(M.Cycles),
                   Cycles->asNumber());
      return 1;
    }
    // Generation is a small fraction of judging, so the ratio is noisy in
    // absolute terms; allow the relative tolerance plus a small absolute
    // floor.
    const double Allowed =
        std::max(Cost->asNumber() * (1.0 + Tolerance),
                 Cost->asNumber() + 0.005);
    std::printf("\nperf gate: normalized generation cost %.4f "
                "(baseline %.4f, allowed <= %.4f)\n",
                GenCost, Cost->asNumber(), Allowed);
    if (GenCost > Allowed) {
      std::fprintf(stderr,
                   "FAIL: generation cost regressed more than %.0f%% vs "
                   "the committed baseline\n",
                   Tolerance * 100);
      return 1;
    }

    // Observability gate, measured in-run (baselines committed before the
    // metrics fields existed still validate): the metrics-enabled sweep
    // must stay within --obs-tolerance of the disabled one, with a 2ms
    // absolute slack floor against timer noise.
    const double ObsOverhead = M.SweepSecondsJ1Obs - M.SweepSecondsJ1;
    const double ObsAllowed =
        std::max(M.SweepSecondsJ1 * ObsTolerance, 0.002);
    std::printf("obs gate: metrics-enabled sweep +%.4fs over %.4fs "
                "(allowed <= +%.4fs)\n",
                ObsOverhead, M.SweepSecondsJ1, ObsAllowed);
    if (ObsOverhead > ObsAllowed) {
      std::fprintf(stderr,
                   "FAIL: enabling metrics costs more than %.0f%% of the "
                   "sweep wall time\n",
                   ObsTolerance * 100);
      return 1;
    }
    // Backend gate, measured in-run: the incremental pruned enumerator
    // must beat the naive reference by --min-backend-speedup on the
    // size-6 corpus.
    std::printf("backend gate: pruned %.2fx over naive on size-6 "
                "(required >= %.2f)\n",
                BackendSpeedup, MinBackendSpeedup);
    if (BackendSpeedup < MinBackendSpeedup) {
      std::fprintf(stderr,
                   "FAIL: pruned backend speedup %.2fx on the size-6 "
                   "corpus is below the required %.2fx\n",
                   BackendSpeedup, MinBackendSpeedup);
      return 1;
    }

    // Prune-rate gate: the internal-com slice must actually exercise the
    // partial-assignment cut; a zero rate means the pruning leg of the
    // enumerator went dead.
    std::printf("prune gate: internal-com prune rate %.4f (required > 0)\n",
                PruneRate);
    if (!(PruneRate > 0.0)) {
      std::fprintf(stderr, "FAIL: internal-com slice reports a zero prune "
                           "rate\n");
      return 1;
    }
    std::printf("perf gate passed\n");
  }

  return 0;
}
