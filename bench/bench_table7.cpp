//===- bench_table7.cpp - Table VII: the three ARM models ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table VII: the Power-ARM / ARM / ARM-llh model family. We
/// print the structural differences and compare the models' allowed sets
/// over the ARM battery plus the anomaly tests: Power-ARM ⊊ ARM ⊊ ARM llh.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <cstdio>
#include <vector>

using namespace cats;

int main() {
  std::printf("== Table VII: summary of ARM models ==\n\n");
  std::printf("%-12s %-34s %s\n", "model", "sc-per-location", "cc0");
  std::printf("%-12s %-34s %s\n", "Power-ARM", "acyclic(po-loc|com)",
              "dp|po-loc|ctrl|(addr;po)");
  std::printf("%-12s %-34s %s\n", "ARM", "acyclic(po-loc|com)",
              "dp|ctrl|(addr;po)");
  std::printf("%-12s %-34s %s\n", "ARM llh",
              "acyclic(po-loc\\RR|com)", "dp|ctrl|(addr;po)");

  std::vector<LitmusTest> Battery = generateBattery(Arch::ARM);
  for (const char *Name :
       {"coRR", "coRSDWI", "mp+dmb+fri-rfi-ctrlisb",
        "lb+data+fri-rfi-ctrl", "s+dmb+fri-rfi-data",
        "lb+data+data-wsi-rfi-addr", "mp+dmb+pos-ctrlisb+bis"})
    if (const CatalogEntry *Entry = catalogEntry(Name))
      Battery.push_back(Entry->Test);

  const Model &PowerArm = *modelByName("Power-ARM");
  const Model &Arm = *modelByName("ARM");
  const Model &ArmLlh = *modelByName("ARM llh");

  unsigned AllowedPA = 0, AllowedArm = 0, AllowedLlh = 0;
  unsigned Monotone = 0;
  std::vector<std::string> ArmOnly, LlhOnly;
  for (const LitmusTest &Test : Battery) {
    bool PA = allowedBy(Test, PowerArm);
    bool A = allowedBy(Test, Arm);
    bool L = allowedBy(Test, ArmLlh);
    AllowedPA += PA;
    AllowedArm += A;
    AllowedLlh += L;
    if ((!PA || A) && (!A || L))
      ++Monotone;
    if (A && !PA)
      ArmOnly.push_back(Test.Name);
    if (L && !A)
      LlhOnly.push_back(Test.Name);
  }

  std::printf("\nAllowed final states over %zu ARM tests:\n",
              Battery.size());
  std::printf("  Power-ARM: %u\n  ARM:       %u\n  ARM llh:   %u\n",
              AllowedPA, AllowedArm, AllowedLlh);
  std::printf("Weakening is monotone on %u/%zu tests (expected all).\n",
              Monotone, Battery.size());

  std::printf("\nAllowed by ARM but not Power-ARM (early commit):\n");
  for (const std::string &Name : ArmOnly)
    std::printf("  %s\n", Name.c_str());
  std::printf("Allowed by ARM llh but not ARM (load-load hazards):\n");
  for (const std::string &Name : LlhOnly)
    std::printf("  %s\n", Name.c_str());
  return 0;
}
