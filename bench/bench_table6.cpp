//===- bench_table6.cpp - Table VI: invalid observations on ARM ------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table VI: the counts of model-forbidden observations on the
/// ARM machines for the six anomaly tests. The paper reports e.g.
/// coRR "Forbid / Ok, 10M/95G"; we report the model verdict and the
/// observation frequency per chip fleet.
///
//===----------------------------------------------------------------------===//

#include "hardware/Hardware.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace cats;

int main() {
  std::printf("== Table VI: invalid observations on ARM machines ==\n\n");
  const uint64_t Samples = 50000;
  const Model &Arm = *modelByName("ARM");

  struct Row {
    const char *Test;
    const char *Paper;
  };
  const Row Rows[] = {
      {"coRR", "Forbid / Ok, 10M/95G"},
      {"coRSDWI", "Forbid / Ok, 409k/18G"},
      {"mp+dmb+fri-rfi-ctrlisb", "Forbid / Ok, 153k/178G"},
      {"lb+data+fri-rfi-ctrl", "Forbid / Ok, 19k/11G"},
      {"moredetour0052", "Forbid / Ok, 9/17G"},
      {"mp+dmb+pos-ctrlisb+bis", "Forbid / Ok, 81/32G"},
  };

  std::printf("%-26s %-12s %-22s %s\n", "test", "Power-ARM model",
              "observed (hits/samples)", "paper");
  for (const Row &R : Rows) {
    const CatalogEntry *Entry = catalogEntry(R.Test);
    if (!Entry) {
      std::printf("%-26s missing from catalogue\n", R.Test);
      continue;
    }
    // The paper's "model" column is the Power-ARM model (which forbids all
    // six); our proposed ARM model deliberately allows the fri-rfi pair.
    bool PowerArmForbids =
        !allowedBy(Entry->Test, *modelByName("Power-ARM"));
    uint64_t Hits = 0, Total = 0;
    for (const HardwareProfile &Chip : HardwareProfile::armFleet()) {
      HardwareRun Run = runOnHardware(Entry->Test, Chip, Samples);
      Total += Run.Samples;
      for (const auto &[Out, Count] : Run.Observed)
        if (Out.satisfies(Entry->Test.Final))
          Hits += Count;
    }
    std::printf("%-26s %-12s %10llu/%-11llu %s\n", R.Test,
                PowerArmForbids ? "Forbid" : "Allow",
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Total), R.Paper);
    (void)Arm;
  }
  std::printf("\nShape: every row Forbid under Power-ARM, observed > 0 "
              "except moredetour0052 (kept as a bug, not a feature).\n");
  return 0;
}
