//===- bench_table5.cpp - Table V: model vs hardware campaigns -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table V: run a diy-generated battery against the simulated
/// Power and ARM fleets, then count
///
///   invalid — tests the model forbids but some chip exhibits;
///   unseen  — tests the model allows but no chip exhibits.
///
/// Expected shape (paper: Power 8117 tests / 0 invalid / 1182 unseen;
/// ARM 9761 / 1500 / 1820): Power shows zero invalid, ARM's invalid rows
/// are exactly the injected anomalies, both architectures have nonzero
/// unseen.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "hardware/Hardware.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

namespace {

struct CampaignResult {
  unsigned Tests = 0;
  unsigned Invalid = 0;
  unsigned Unseen = 0;
};

CampaignResult campaign(Arch Target, const Model &M,
                        const std::vector<HardwareProfile> &Fleet,
                        const std::vector<LitmusTest> &ExtraTests,
                        uint64_t Samples) {
  CampaignResult Result;
  std::vector<LitmusTest> Battery = generateBattery(Target);
  Battery.insert(Battery.end(), ExtraTests.begin(), ExtraTests.end());
  for (const LitmusTest &Test : Battery) {
    ++Result.Tests;
    bool ModelAllows = allowedBy(Test, M);
    bool Observed = false;
    for (const HardwareProfile &Chip : Fleet)
      if (runOnHardware(Test, Chip, Samples).ConditionObserved)
        Observed = true;
    if (Observed && !ModelAllows)
      ++Result.Invalid;
    if (!Observed && ModelAllows)
      ++Result.Unseen;
  }
  return Result;
}

/// ARM catalogue tests exercising the anomalies (the battery generator
/// does not emit fri-rfi shapes).
std::vector<LitmusTest> armAnomalyTests() {
  std::vector<LitmusTest> Out;
  for (const char *Name :
       {"coRR", "coRSDWI", "mp+dmb+fri-rfi-ctrlisb",
        "lb+data+fri-rfi-ctrl", "mp+dmb+pos-ctrlisb+bis"})
    if (const CatalogEntry *Entry = catalogEntry(Name))
      Out.push_back(Entry->Test);
  return Out;
}

} // namespace

int main() {
  std::printf("== Table V: summary of experiments on Power and ARM ==\n\n");
  std::printf("(simulated fleets; see DESIGN.md for the substitution)\n\n");

  CampaignResult Power =
      campaign(Arch::Power, *modelByName("Power"),
               HardwareProfile::powerFleet(), {}, 400);
  CampaignResult Arm =
      campaign(Arch::ARM, *modelByName("ARM"),
               HardwareProfile::armFleet(), armAnomalyTests(), 400);

  std::printf("%-12s %10s %10s\n", "", "Power", "ARM");
  std::printf("%-12s %10u %10u   (paper: 8117 / 9761)\n", "# tests",
              Power.Tests, Arm.Tests);
  std::printf("%-12s %10u %10u   (paper: 0 / 1500)\n", "invalid",
              Power.Invalid, Arm.Invalid);
  std::printf("%-12s %10u %10u   (paper: 1182 / 1820)\n", "unseen",
              Power.Unseen, Arm.Unseen);

  std::printf("\nShape checks: Power invalid == 0: %s; ARM invalid > 0: "
              "%s; both unseen > 0: %s\n",
              Power.Invalid == 0 ? "yes" : "NO",
              Arm.Invalid > 0 ? "yes" : "NO",
              (Power.Unseen > 0 && Arm.Unseen > 0) ? "yes" : "NO");
  return 0;
}
