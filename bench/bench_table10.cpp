//===- bench_table10.cpp - Table X: operational vs axiomatic in BMC --------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table X: verifying litmus programs by instrumenting an
/// operational model (goto-instrument + CBMC in SC mode) vs implementing
/// the axiomatic model inside the verifier (CBMC in Power mode).
/// Paper: 555 tests, 2511.6 s vs 14.3 s.
///
//===----------------------------------------------------------------------===//

#include "bmc/Verify.h"
#include "diy/Diy.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

int main() {
  const Model &Power = *modelByName("Power");
  // A 555-ish slice of the Power battery, as in the paper.
  std::vector<LitmusTest> Battery = generateBattery(Arch::Power);
  if (Battery.size() > 555)
    Battery.resize(555);

  double OpTime = 0, AxTime = 0;
  unsigned Agree = 0;
  for (const LitmusTest &Test : Battery) {
    VerifyResult Op = verifyOperational(Test, Power);
    VerifyResult Ax = verifyAxiomatic(Test, Power);
    OpTime += Op.Seconds;
    AxTime += Ax.Seconds;
    Agree += Op.Reachable == Ax.Reachable;
  }

  std::printf("== Table X: operational vs axiomatic verification ==\n\n");
  std::printf("%-36s %-22s %10s %12s\n", "tool", "model", "# of tests",
              "time (s)");
  std::printf("%-36s %-22s %10zu %12.2f   (paper: 555, 2511.6 s)\n",
              "goto-instrument+verifier (machine)", "operational",
              Battery.size(), OpTime);
  std::printf("%-36s %-22s %10zu %12.2f   (paper: 555, 14.3 s)\n",
              "verifier w/ axiomatic model", "this model",
              Battery.size(), AxTime);
  std::printf("\nVerdict agreement: %u/%zu. Speedup: %.1fx "
              "(paper: ~176x).\n",
              Agree, Battery.size(), OpTime / (AxTime > 0 ? AxTime : 1));
  return 0;
}
