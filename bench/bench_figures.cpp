//===- bench_figures.cpp - Every figure's verdict, paper vs measured -------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the allowed/forbidden verdict of every litmus figure in the
/// paper (Figs. 6-20, 27-37, 39) under every model the paper documents a
/// verdict for, and prints paper-vs-measured.
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace cats;

int main() {
  std::printf("== Figure verdicts: paper vs this implementation ==\n\n");
  std::printf("%-34s %-18s %-10s %-7s %-7s %s\n", "test", "figure", "model",
              "paper", "ours", "match");
  unsigned Total = 0, Matches = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    for (const auto &[ModelName, Expected] : Entry.Expected) {
      const Model *M = modelByName(ModelName);
      if (!M)
        continue;
      SimulationResult R = simulate(Entry.Test, *M);
      bool Match = R.ConditionReachable == Expected;
      ++Total;
      Matches += Match;
      std::printf("%-34s %-18s %-10s %-7s %-7s %s\n",
                  Entry.Test.Name.c_str(), Entry.Figure.c_str(),
                  ModelName.c_str(), Expected ? "Allow" : "Forbid",
                  R.verdict(), Match ? "yes" : "NO");
    }
  }
  std::printf("\n%u/%u verdicts match the paper.\n", Matches, Total);
  return Matches == Total ? 0 : 1;
}
