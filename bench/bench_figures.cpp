//===- bench_figures.cpp - Every figure's verdict, paper vs measured -------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates the allowed/forbidden verdict of every litmus figure in the
/// paper (Figs. 6-20, 27-37, 39) under every model the paper documents a
/// verdict for, and prints paper-vs-measured.
///
/// Runs on the sweep engine: one job per figure carrying the documented
/// model set, so each test's candidate space is enumerated once for all its
/// models and the jobs spread across the worker pool.
///
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "sweep/SweepEngine.h"

#include <cstdio>

using namespace cats;

int main() {
  std::printf("== Figure verdicts: paper vs this implementation ==\n\n");

  // One sweep job per catalogue entry, judging exactly the models the
  // paper documents a verdict for.
  const auto &Catalog = figureCatalog();
  std::vector<SweepJob> Jobs;
  Jobs.reserve(Catalog.size());
  for (const CatalogEntry &Entry : Catalog) {
    SweepJob Job;
    Job.Test = Entry.Test;
    for (const auto &[ModelName, Expected] : Entry.Expected) {
      (void)Expected;
      if (const Model *M = modelByName(ModelName))
        Job.Models.push_back(M);
    }
    Jobs.push_back(std::move(Job));
  }

  SweepReport Report = SweepEngine().run(Jobs);

  std::printf("%-34s %-18s %-10s %-7s %-7s %s\n", "test", "figure", "model",
              "paper", "ours", "match");
  unsigned Total = 0, Matches = 0;
  for (size_t I = 0; I < Catalog.size(); ++I) {
    const CatalogEntry &Entry = Catalog[I];
    const SweepTestResult &T = Report.Tests[I];
    if (!T.Error.empty()) {
      std::printf("%-34s %-18s ERROR: %s\n", Entry.Test.Name.c_str(),
                  Entry.Figure.c_str(), T.Error.c_str());
      ++Total;
      continue;
    }
    for (const auto &[ModelName, Expected] : Entry.Expected) {
      const SimulationResult *R = T.Result.forModel(ModelName);
      if (!R)
        continue;
      bool Match = R->ConditionReachable == Expected;
      ++Total;
      Matches += Match;
      std::printf("%-34s %-18s %-10s %-7s %-7s %s\n",
                  Entry.Test.Name.c_str(), Entry.Figure.c_str(),
                  ModelName.c_str(), Expected ? "Allow" : "Forbid",
                  R->verdict(), Match ? "yes" : "NO");
    }
  }
  std::printf("\n%u/%u verdicts match the paper (%u workers, %.3fs).\n",
              Matches, Total, Report.Jobs, Report.WallSeconds);
  return Matches == Total ? 0 : 1;
}
