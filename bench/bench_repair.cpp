//===- bench_repair.cpp - Batched repair campaign vs legacy path ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair benchmark behind BENCH_repair.json and the CI perf gate:
/// repair the classic families (Power and ARM, SC-equivalence goal, so
/// every mutant is judged under two models) twice —
///
///   legacy:  one simulate() per (mutant, model), sequential;
///   batched: the RepairEngine's sweep-backed judging, each mutant's
///            models sharing one candidate enumeration, at 1 worker and
///            at --jobs.
///
/// Each measurement repeats --repeats times and keeps the best wall time.
/// Modes:
///
///   bench_repair                     print the comparison table
///   bench_repair --out FILE          also write the cats-bench-repair/1
///                                    snapshot (the committed baseline)
///   bench_repair --check FILE        re-measure and fail (exit 1) when
///                                    the batched path regressed: its
///                                    1-worker normalized cost
///                                    (batched_j1/legacy, same run, so
///                                    both runner speed and core count
///                                    cancel out) more than --tolerance
///                                    (default 0.25) above the committed
///                                    baseline, or the 1-worker
///                                    shared-enumeration speedup below
///                                    --min-speedup (default 1.1).
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "repair/RepairEngine.h"
#include "sweep/Json.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

std::vector<LitmusTest> corpus() {
  std::vector<LitmusTest> Tests;
  for (Arch A : {Arch::Power, Arch::ARM})
    for (const auto &[Family, Cycle] : classicFamilies()) {
      auto Test = synthesizeTest(Cycle, A, Family + "-" + archName(A));
      if (Test)
        Tests.push_back(Test.take());
    }
  return Tests;
}

/// The minimal-repair names of a report, for the equivalence check.
std::vector<std::string> repairNames(const RepairReport &Report) {
  std::vector<std::string> Names;
  for (const TestRepairResult &T : Report.Tests) {
    Names.push_back(T.TestName + ":" + T.verdict());
    for (const RepairSet &Set : T.MinimalRepairs)
      Names.push_back(Set.name());
  }
  return Names;
}

double runCampaign(const std::vector<LitmusTest> &Tests, unsigned Jobs,
                   bool Legacy, std::vector<std::string> &Names,
                   unsigned long long &Mutants) {
  RepairOptions Opts;
  Opts.Goal = RepairGoal::ScEquivalence;
  Opts.Jobs = Jobs;
  Opts.LegacyEvaluation = Legacy;
  RepairEngine Engine(Opts);
  const auto Start = Clock::now();
  RepairReport Report = Engine.run(Tests);
  const double Wall =
      std::chrono::duration<double>(Clock::now() - Start).count();
  Names = repairNames(Report);
  Mutants = Report.MutantsEvaluated;
  return Wall;
}

struct Measurement {
  double LegacySeconds = 1e300;
  double BatchedSecondsJ1 = 1e300;
  double BatchedSeconds = 1e300;
  unsigned Tests = 0;
  unsigned long long Mutants = 0;
  bool RepairsMatch = true;
};

Measurement measure(unsigned Jobs, unsigned Repeats) {
  const std::vector<LitmusTest> Tests = corpus();
  Measurement M;
  M.Tests = static_cast<unsigned>(Tests.size());
  std::vector<std::string> Legacy, BatchedJ1, Batched;
  for (unsigned R = 0; R < Repeats; ++R) {
    unsigned long long Mutants = 0;
    M.LegacySeconds = std::min(
        M.LegacySeconds, runCampaign(Tests, 1, true, Legacy, Mutants));
    M.BatchedSecondsJ1 =
        std::min(M.BatchedSecondsJ1,
                 runCampaign(Tests, 1, false, BatchedJ1, Mutants));
    M.BatchedSeconds = std::min(
        M.BatchedSeconds, runCampaign(Tests, Jobs, false, Batched, Mutants));
    M.Mutants = Mutants;
    if (Legacy != Batched || Legacy != BatchedJ1)
      M.RepairsMatch = false;
  }
  return M;
}

JsonValue toJson(const Measurement &M, unsigned Jobs, unsigned Repeats) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-bench-repair/1");
  Root.set("tests", M.Tests);
  Root.set("mutants", M.Mutants);
  Root.set("jobs", Jobs);
  Root.set("repeats", Repeats);
  Root.set("legacy_seconds", M.LegacySeconds);
  Root.set("batched_seconds_j1", M.BatchedSecondsJ1);
  Root.set("batched_seconds", M.BatchedSeconds);
  Root.set("speedup_shared", M.LegacySeconds / M.BatchedSecondsJ1);
  Root.set("speedup_total", M.LegacySeconds / M.BatchedSeconds);
  // The gated ratio: 1 batched worker over sequential legacy, so it is
  // invariant to the runner's core count and isolates the
  // shared-enumeration win from parallelism.
  Root.set("normalized_repair_cost_j1",
           M.BatchedSecondsJ1 / M.LegacySeconds);
  Root.set("normalized_repair_cost", M.BatchedSeconds / M.LegacySeconds);
  Root.set("repairs_match_legacy", M.RepairsMatch);
  return Root;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--repeats N] [--out FILE]\n"
               "          [--check FILE] [--tolerance F] [--min-speedup F]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 4, Repeats = 5;
  double Tolerance = 0.25, MinSpeedup = 1.1;
  std::string OutPath, CheckPath;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--jobs") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--repeats") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Repeats = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--out") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else if (Arg == "--check") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      CheckPath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Tolerance = std::strtod(V, nullptr);
    } else if (Arg == "--min-speedup") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      MinSpeedup = std::strtod(V, nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (Jobs == 0 || Repeats == 0)
    return usage(argv[0]);

  std::printf("== Batched repair campaign vs legacy per-mutant simulate ==\n");
  std::printf("classic families, Power + ARM, SC-equivalence goal, "
              "best of %u repeats\n\n", Repeats);

  Measurement M = measure(Jobs, Repeats);

  std::printf("mutants judged per campaign: %llu\n\n", M.Mutants);
  std::printf("%-42s %10.4fs\n", "legacy (simulate per mutant x model)",
              M.LegacySeconds);
  std::printf("%-42s %10.4fs  (%.2fx)\n",
              "batched, shared enumeration, 1 worker", M.BatchedSecondsJ1,
              M.LegacySeconds / M.BatchedSecondsJ1);
  char Label[64];
  std::snprintf(Label, sizeof(Label),
                "batched, shared enumeration, %u workers", Jobs);
  std::printf("%-42s %10.4fs  (%.2fx)\n", Label, M.BatchedSeconds,
              M.LegacySeconds / M.BatchedSeconds);
  std::printf("repairs identical to legacy: %s\n",
              M.RepairsMatch ? "yes" : "NO");

  if (!M.RepairsMatch) {
    std::fprintf(stderr,
                 "FAIL: batched repairs differ from the legacy path\n");
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << toJson(M, Jobs, Repeats).dump();
    std::printf("wrote %s\n", OutPath.c_str());
  }

  if (!CheckPath.empty()) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "cannot read baseline %s\n", CheckPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Baseline = JsonValue::parse(Buf.str());
    if (!Baseline) {
      std::fprintf(stderr, "bad baseline %s: %s\n", CheckPath.c_str(),
                   Baseline.message().c_str());
      return 1;
    }
    const JsonValue *Cost = Baseline->get("normalized_repair_cost_j1");
    if (!Cost || !Cost->isNumber()) {
      std::fprintf(stderr, "baseline %s lacks normalized_repair_cost_j1\n",
                   CheckPath.c_str());
      return 1;
    }

    // As in bench_sweep the gate normalizes by the legacy path measured
    // in the same run, so runner speed cancels out — but at 1 batched
    // worker, so the runner's core count cancels too and the gate
    // watches exactly the shared-enumeration win (a regression there
    // cannot hide behind multi-worker parallelism).
    const double Fresh = M.BatchedSecondsJ1 / M.LegacySeconds;
    const double Allowed = Cost->asNumber() * (1.0 + Tolerance);
    const double SpeedupShared = M.LegacySeconds / M.BatchedSecondsJ1;
    std::printf("\nperf gate: normalized 1-worker repair cost %.4f "
                "(baseline %.4f, allowed <= %.4f), shared-enumeration "
                "speedup %.2fx (required >= %.2f)\n",
                Fresh, Cost->asNumber(), Allowed, SpeedupShared, MinSpeedup);
    if (Fresh > Allowed) {
      std::fprintf(stderr,
                   "FAIL: batched repair wall time regressed more than "
                   "%.0f%% vs the committed baseline\n",
                   Tolerance * 100);
      return 1;
    }
    if (SpeedupShared < MinSpeedup) {
      std::fprintf(stderr,
                   "FAIL: shared-enumeration speedup %.2fx is below the "
                   "required %.2fx\n", SpeedupShared, MinSpeedup);
      return 1;
    }
    std::printf("perf gate passed\n");
  }

  return 0;
}
