//===- bench_table9.cpp - Table IX: simulation tool comparison -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table IX: operational simulation (the intermediate machine
/// in explore-all mode, standing in for ppcmem's full behaviour
/// enumeration) vs multi-event axiomatic (CAV'12 style) vs single-event
/// axiomatic (herd). All three tools judge the same pre-materialised
/// candidate executions of a Power battery, so the comparison isolates the
/// per-execution simulation cost. The operational tool runs under a state
/// budget (ppcmem ran out of 40 GB on 42% of the paper's tests); tests
/// that blow the budget count as unprocessed.
///
/// Paper: ppcmem 4704/8117 tests, 14.9M s; multi-event 8117, 2846 s;
/// single-event 8117, 321 s. Shape to reproduce: single-event processes
/// everything fastest; multi-event costs several times more; operational
/// is orders of magnitude slower and/or incomplete.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/MultiEvent.h"
#include "herd/Simulator.h"
#include "machine/IntermediateMachine.h"
#include "model/Registry.h"

#include <chrono>
#include <cstdio>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

} // namespace

int main() {
  const Model &Power = *modelByName("Power");
  std::vector<LitmusTest> Battery = generateBattery(Arch::Power);

  // Materialise every consistent candidate of every test once; the three
  // tools then pay only their own judgement cost.
  std::vector<std::vector<Execution>> PerTest;
  size_t TotalCandidates = 0;
  for (const LitmusTest &Test : Battery) {
    auto Compiled = CompiledTest::compile(Test);
    PerTest.emplace_back();
    if (!Compiled)
      continue;
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (Cand.Consistent)
        PerTest.back().push_back(Cand.Exe);
      return true;
    });
    TotalCandidates += PerTest.back().size();
  }

  std::printf("== Table IX: comparison of simulation tools ==\n\n");
  std::printf("battery: %zu Power tests, %zu candidate executions\n\n",
              Battery.size(), TotalCandidates);

  // Single-event axiomatic (herd).
  auto Start = Clock::now();
  unsigned SingleProcessed = 0;
  for (const auto &Candidates : PerTest) {
    for (const Execution &Exe : Candidates)
      Power.allows(Exe);
    ++SingleProcessed;
  }
  double SingleTime = secondsSince(Start);

  // Multi-event axiomatic (CAV'12 cost).
  Start = Clock::now();
  unsigned MultiProcessed = 0;
  for (const auto &Candidates : PerTest) {
    for (const Execution &Exe : Candidates)
      multiEventCheck(Exe, Power);
    ++MultiProcessed;
  }
  double MultiTime = secondsSince(Start);

  // Operational (full behaviour enumeration) with a state budget per
  // candidate.
  const uint64_t StateBudget = 200000;
  Start = Clock::now();
  unsigned OpProcessed = 0;
  for (const auto &Candidates : PerTest) {
    bool Complete = true;
    for (const Execution &Exe : Candidates) {
      MachineResult R = machineAccepts(Exe, Power, StateBudget,
                                       /*ExploreAll=*/true);
      if (R.HitLimit) {
        Complete = false;
        break;
      }
    }
    if (Complete)
      ++OpProcessed;
  }
  double OpTime = secondsSince(Start);

  std::printf("%-28s %-24s %10s %12s\n", "tool", "model style",
              "# of tests", "time (s)");
  std::printf("%-28s %-24s %7u/%-3zu %12.2f   (paper: 4704/8117, "
              "14922996 s)\n",
              "intermediate machine", "operational", OpProcessed,
              Battery.size(), OpTime);
  std::printf("%-28s %-24s %7u/%-3zu %12.2f   (paper: 8117, 2846 s)\n",
              "herd (blow-up)", "multi-event axiomatic", MultiProcessed,
              Battery.size(), MultiTime);
  std::printf("%-28s %-24s %7u/%-3zu %12.2f   (paper: 8117, 321 s)\n",
              "herd (this model)", "single-event axiomatic",
              SingleProcessed, Battery.size(), SingleTime);

  std::printf("\nShape: single-event fastest (%0.1fx vs multi-event, "
              "%0.1fx vs operational); operational completes %u/%zu "
              "within its state budget. (Our battery caps at 4 threads "
              "and 2 accesses per thread, so the operational state spaces "
              "stay well under the budget; the paper's larger tests are "
              "where ppcmem exhausts 40 GB.)\n",
              MultiTime / SingleTime, OpTime / SingleTime, OpProcessed,
              Battery.size());
  return 0;
}
