//===- bench_sweep.cpp - Shared-enumeration sweep vs legacy path ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The catalogue benchmark behind BENCH_sweep.json and the CI perf gate:
/// run the full figure catalogue against every registry model twice —
///
///   legacy: one simulate() per (test, model), i.e. the candidate space of
///           each test is re-enumerated once per model;
///   sweep:  SweepEngine jobs, one shared enumeration per test with all
///           models checked per candidate, at 1 worker and at --jobs.
///
/// Each measurement repeats --repeats times and keeps the best wall time.
/// Modes:
///
///   bench_sweep                      print the comparison table
///   bench_sweep --out FILE           also write the cats-bench-sweep/1
///                                    snapshot (the committed baseline)
///   bench_sweep --check FILE         re-measure and fail (exit 1) when the
///                                    sweep path regressed: normalized cost
///                                    (sweep/legacy, same run) more than
///                                    --tolerance (default 0.25) above the
///                                    committed baseline, or total speedup
///                                    below 2x.
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "litmus/Compiler.h"
#include "model/Registry.h"
#include "obs/Metrics.h"
#include "sweep/SweepEngine.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point From) {
  return std::chrono::duration<double>(Clock::now() - From).count();
}

/// One full legacy pass: per-model simulate over every test, collecting
/// the reachability bit per (test, model) for the equivalence check.
double runLegacy(const std::vector<LitmusTest> &Tests,
                 const std::vector<const Model *> &Models,
                 std::vector<bool> &Verdicts) {
  Verdicts.clear();
  const auto Start = Clock::now();
  for (const LitmusTest &Test : Tests) {
    auto Compiled = CompiledTest::compile(Test);
    for (const Model *M : Models)
      Verdicts.push_back(simulate(*Compiled, *M).ConditionReachable);
  }
  return elapsed(Start);
}

/// One sweep pass at \p Jobs workers under \p Backend.
double runSweep(const std::vector<SweepJob> &JobsIn, unsigned Jobs,
                std::vector<bool> &Verdicts,
                JudgeBackend Backend = JudgeBackend::Pruned) {
  Verdicts.clear();
  SweepOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Backend = Backend;
  SweepEngine Engine(Opts);
  const auto Start = Clock::now();
  SweepReport Report = Engine.run(JobsIn);
  const double Wall = elapsed(Start);
  for (const SweepTestResult &T : Report.Tests)
    for (const SimulationResult &R : T.Result.PerModel)
      Verdicts.push_back(R.ConditionReachable);
  return Wall;
}

struct Measurement {
  double LegacySeconds = 0;
  double SweepSecondsJ1 = 0;
  double SweepSeconds = 0;
  /// The 1-worker sweep forced onto the naive backend — the reference the
  /// incremental enumerator's speedup is measured against
  /// (docs/enumeration.md); gated at --min-backend-speedup in --check.
  double NaiveSecondsJ1 = 0;
  /// The 1-worker sweep with metrics collection enabled — the "cheap
  /// enough to leave on" claim, gated at --obs-tolerance in --check.
  double SweepSecondsJ1Obs = 0;
  bool VerdictsMatch = true;
  /// Headline counters from the metrics-enabled pass (identical every
  /// repeat — the sweep is deterministic).
  unsigned long long CandidatesTotal = 0;
  unsigned long long CandidatesConsistent = 0;
  unsigned long long MemoHits = 0;
  unsigned long long MemoMisses = 0;
  /// Incremental-enumerator counters (judge.pruned.* / judge.symmetry.*):
  /// the real prune rate is PrunedCandidates / CandidatesTotal — the
  /// fraction of the candidate space whose rejection was proven on a
  /// partial assignment and never materialized.
  unsigned long long PartialCuts = 0;
  unsigned long long PrunedCandidates = 0;
  unsigned long long CandidatesJudged = 0;
  unsigned long long SymmetryReused = 0;
};

Measurement measure(unsigned Jobs, unsigned Repeats) {
  std::vector<LitmusTest> Tests;
  for (const CatalogEntry &Entry : figureCatalog())
    Tests.push_back(Entry.Test);
  const std::vector<const Model *> &Models = allModels();
  const std::vector<SweepJob> JobsIn = makeJobs(Tests, Models);

  Measurement M;
  M.LegacySeconds = 1e300;
  M.SweepSecondsJ1 = 1e300;
  M.SweepSeconds = 1e300;
  M.SweepSecondsJ1Obs = 1e300;
  M.NaiveSecondsJ1 = 1e300;
  std::vector<bool> Legacy, Shared, SharedJ1, SharedNaive, SharedObs;
  for (unsigned R = 0; R < Repeats; ++R) {
    M.LegacySeconds =
        std::min(M.LegacySeconds, runLegacy(Tests, Models, Legacy));
    M.SweepSecondsJ1 =
        std::min(M.SweepSecondsJ1, runSweep(JobsIn, 1, SharedJ1));
    M.SweepSeconds = std::min(M.SweepSeconds, runSweep(JobsIn, Jobs, Shared));
    M.NaiveSecondsJ1 = std::min(
        M.NaiveSecondsJ1,
        runSweep(JobsIn, 1, SharedNaive, JudgeBackend::Naive));

    // The same 1-worker pass with the metrics registry live: verdicts and
    // counters must not depend on observability being on.
    obs::resetMetrics();
    obs::setMetricsEnabled(true);
    M.SweepSecondsJ1Obs =
        std::min(M.SweepSecondsJ1Obs, runSweep(JobsIn, 1, SharedObs));
    obs::setMetricsEnabled(false);
    M.CandidatesTotal = obs::counter("judge.candidates_total").value();
    M.CandidatesConsistent =
        obs::counter("judge.candidates_consistent").value();
    M.MemoHits = obs::counter("memo.model_hits").value();
    M.MemoMisses = obs::counter("memo.model_misses").value();
    M.PartialCuts = obs::counter("judge.pruned.partial").value();
    M.PrunedCandidates = obs::counter("judge.pruned.candidates").value();
    M.CandidatesJudged = obs::counter("judge.candidates_judged").value();
    M.SymmetryReused = obs::counter("judge.symmetry.reused").value();

    if (Legacy != Shared || Legacy != SharedJ1 || Legacy != SharedNaive ||
        Legacy != SharedObs)
      M.VerdictsMatch = false;
  }
  return M;
}

JsonValue toJson(const Measurement &M, unsigned Jobs, unsigned Repeats) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-bench-sweep/1");
  Root.set("tests", static_cast<unsigned>(figureCatalog().size()));
  Root.set("models", static_cast<unsigned>(allModels().size()));
  Root.set("jobs", Jobs);
  Root.set("repeats", Repeats);
  Root.set("legacy_seconds", M.LegacySeconds);
  Root.set("sweep_seconds_j1", M.SweepSecondsJ1);
  Root.set("sweep_seconds", M.SweepSeconds);
  Root.set("speedup_shared", M.LegacySeconds / M.SweepSecondsJ1);
  Root.set("speedup_total", M.LegacySeconds / M.SweepSeconds);
  Root.set("normalized_sweep_cost", M.SweepSeconds / M.LegacySeconds);
  Root.set("verdicts_match_legacy", M.VerdictsMatch);
  Root.set("naive_seconds_j1", M.NaiveSecondsJ1);
  Root.set("backend_speedup", M.NaiveSecondsJ1 / M.SweepSecondsJ1);
  Root.set("sweep_seconds_j1_obs", M.SweepSecondsJ1Obs);
  Root.set("obs_overhead", M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0);
  JsonValue Counters = JsonValue::object();
  Counters.set("candidates_total", M.CandidatesTotal);
  Counters.set("candidates_consistent", M.CandidatesConsistent);
  // The fraction of the raw candidate space dismissed on a partial
  // assignment (judge.pruned.candidates) — zero would mean the cut never
  // fired. The historical field computed 1 - consistent/total, which is
  // the value-consistency rate, not pruning; that ratio keeps its own
  // name below.
  Counters.set("prune_rate",
               M.CandidatesTotal
                   ? static_cast<double>(M.PrunedCandidates) /
                         static_cast<double>(M.CandidatesTotal)
                   : 0.0);
  Counters.set("inconsistent_rate",
               M.CandidatesTotal
                   ? 1.0 - static_cast<double>(M.CandidatesConsistent) /
                               static_cast<double>(M.CandidatesTotal)
                   : 0.0);
  Counters.set("pruned_partial_cuts", M.PartialCuts);
  Counters.set("pruned_candidates", M.PrunedCandidates);
  Counters.set("candidates_judged", M.CandidatesJudged);
  Counters.set("symmetry_reused", M.SymmetryReused);
  Counters.set("memo_hits", M.MemoHits);
  Counters.set("memo_misses", M.MemoMisses);
  Root.set("counters", std::move(Counters));
  return Root;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--jobs N] [--repeats N] [--out FILE]\n"
               "          [--check FILE] [--tolerance F] [--min-speedup F]\n"
               "          [--obs-tolerance F] [--min-backend-speedup F]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 4, Repeats = 10;
  double Tolerance = 0.25, MinSpeedup = 2.0, ObsTolerance = 0.05;
  double MinBackendSpeedup = 1.0;
  std::string OutPath, CheckPath;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--jobs") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--repeats") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Repeats = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--out") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else if (Arg == "--check") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      CheckPath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Tolerance = std::strtod(V, nullptr);
    } else if (Arg == "--min-speedup") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      MinSpeedup = std::strtod(V, nullptr);
    } else if (Arg == "--obs-tolerance") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      ObsTolerance = std::strtod(V, nullptr);
    } else if (Arg == "--min-backend-speedup") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      MinBackendSpeedup = std::strtod(V, nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (Jobs == 0 || Repeats == 0)
    return usage(argv[0]);

  std::printf("== Shared-enumeration sweep vs legacy per-model simulate ==\n");
  std::printf("catalogue: %zu tests x %zu models, best of %u repeats\n\n",
              figureCatalog().size(), allModels().size(), Repeats);

  Measurement M = measure(Jobs, Repeats);

  std::printf("%-38s %10.4fs\n", "legacy (enumerate once per model)",
              M.LegacySeconds);
  std::printf("%-38s %10.4fs  (%.2fx)\n",
              "sweep, shared enumeration, 1 worker", M.SweepSecondsJ1,
              M.LegacySeconds / M.SweepSecondsJ1);
  char Label[64];
  std::snprintf(Label, sizeof(Label), "sweep, shared enumeration, %u workers",
                Jobs);
  std::printf("%-38s %10.4fs  (%.2fx)\n", Label, M.SweepSeconds,
              M.LegacySeconds / M.SweepSeconds);
  std::printf("%-38s %10.4fs  (pruned is %.2fx)\n",
              "sweep, naive backend, 1 worker", M.NaiveSecondsJ1,
              M.NaiveSecondsJ1 / M.SweepSecondsJ1);
  std::printf("%-38s %10.4fs  (+%.1f%% vs metrics off)\n",
              "sweep, 1 worker, metrics enabled", M.SweepSecondsJ1Obs,
              (M.SweepSecondsJ1Obs / M.SweepSecondsJ1 - 1.0) * 100);
  std::printf("candidates: %llu enumerated, %llu consistent, "
              "%llu pruned on partial assignments (%.1f%% prune rate, "
              "%llu cuts), %llu judged, %llu restituted by symmetry; "
              "memo: %llu hits / %llu misses\n",
              M.CandidatesTotal, M.CandidatesConsistent, M.PrunedCandidates,
              M.CandidatesTotal
                  ? 100.0 * static_cast<double>(M.PrunedCandidates) /
                        static_cast<double>(M.CandidatesTotal)
                  : 0.0,
              M.PartialCuts, M.CandidatesJudged, M.SymmetryReused,
              M.MemoHits, M.MemoMisses);
  std::printf("verdicts identical to legacy: %s\n",
              M.VerdictsMatch ? "yes" : "NO");

  if (!M.VerdictsMatch) {
    std::fprintf(stderr, "FAIL: sweep verdicts differ from the legacy path\n");
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << toJson(M, Jobs, Repeats).dump();
    std::printf("wrote %s\n", OutPath.c_str());
  }

  if (!CheckPath.empty()) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "cannot read baseline %s\n", CheckPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Baseline = JsonValue::parse(Buf.str());
    if (!Baseline) {
      std::fprintf(stderr, "bad baseline %s: %s\n", CheckPath.c_str(),
                   Baseline.message().c_str());
      return 1;
    }
    const JsonValue *Cost = Baseline->get("normalized_sweep_cost");
    if (!Cost || !Cost->isNumber()) {
      std::fprintf(stderr, "baseline %s lacks normalized_sweep_cost\n",
                   CheckPath.c_str());
      return 1;
    }

    // The gate compares the normalized cost of the sweep path (sweep wall
    // time over legacy wall time, both measured in this run) against the
    // committed baseline: an algorithmic or build regression moves this
    // ratio even though absolute wall times differ per runner.
    const double Fresh = M.SweepSeconds / M.LegacySeconds;
    const double Allowed = Cost->asNumber() * (1.0 + Tolerance);
    const double SpeedupTotal = M.LegacySeconds / M.SweepSeconds;
    std::printf("\nperf gate: normalized sweep cost %.4f (baseline %.4f, "
                "allowed <= %.4f), total speedup %.2fx (required >= %.2f)\n",
                Fresh, Cost->asNumber(), Allowed, SpeedupTotal, MinSpeedup);
    if (Fresh > Allowed) {
      std::fprintf(stderr,
                   "FAIL: sweep wall time regressed more than %.0f%% vs the "
                   "committed baseline\n",
                   Tolerance * 100);
      return 1;
    }
    if (SpeedupTotal < MinSpeedup) {
      std::fprintf(stderr, "FAIL: sweep speedup %.2fx is below the required "
                   "%.2fx\n", SpeedupTotal, MinSpeedup);
      return 1;
    }

    // Backend gate, measured in-run: the default pruned enumerator must
    // not lose to the naive reference it replaced. The catalogue tests
    // are small, so the bar is deliberately modest here; the 3x bar on a
    // generated corpus lives in bench_diy.
    const double BackendSpeedup = M.NaiveSecondsJ1 / M.SweepSecondsJ1;
    std::printf("backend gate: pruned %.2fx over naive (required >= %.2f)\n",
                BackendSpeedup, MinBackendSpeedup);
    if (BackendSpeedup < MinBackendSpeedup) {
      std::fprintf(stderr,
                   "FAIL: pruned backend speedup %.2fx is below the "
                   "required %.2fx\n",
                   BackendSpeedup, MinBackendSpeedup);
      return 1;
    }

    // Observability gate, measured in-run (so baselines committed before
    // the metrics fields existed still validate): the metrics-enabled
    // 1-worker sweep must stay within --obs-tolerance of the disabled
    // one. An absolute 2ms slack floor damps timer noise on the ~15ms
    // catalogue runs.
    const double ObsOverhead = M.SweepSecondsJ1Obs - M.SweepSecondsJ1;
    const double ObsAllowed =
        std::max(M.SweepSecondsJ1 * ObsTolerance, 0.002);
    std::printf("obs gate: metrics-enabled sweep +%.4fs over %.4fs "
                "(allowed <= +%.4fs)\n",
                ObsOverhead, M.SweepSecondsJ1, ObsAllowed);
    if (ObsOverhead > ObsAllowed) {
      std::fprintf(stderr,
                   "FAIL: enabling metrics costs more than %.0f%% of the "
                   "sweep wall time\n",
                   ObsTolerance * 100);
      return 1;
    }
    std::printf("perf gate passed\n");
  }

  return 0;
}
