//===- bench_table13.cpp - Table XIII: mole on PostgreSQL ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table XIII: the static critical cycles mole finds in the
/// PostgreSQL case study, by pattern. The paper reports 22 patterns over
/// 463 cycles from the full source tree; our mini-IR carries the latch
/// idiom only, so the absolute counts are smaller while the pattern
/// spread (mp/sb/coherence shapes dominating) is the shape to reproduce.
///
//===----------------------------------------------------------------------===//

#include "mole/Mole.h"

#include <cstdio>

using namespace cats;

int main() {
  MoleReport Report = analyzeProgram(postgresProgram());
  std::printf("== Table XIII: mole patterns in PostgreSQL ==\n\n");
  std::printf("groups: %zu, cycles: %zu\n\n", Report.Groups.size(),
              Report.Cycles.size());
  std::printf("%-14s %8s\n", "pattern", "cycles");
  unsigned Total = 0;
  for (const auto &[Pattern, Count] : Report.patternCounts()) {
    std::printf("%-14s %8u\n", Pattern.c_str(), Count);
    Total += Count;
  }
  std::printf("%-14s %8u   (paper: 22 patterns, 463 cycles over the "
              "full tree)\n",
              "total", Total);

  std::printf("\nBy axiom class:\n");
  for (const auto &[Class, Count] : Report.axiomCounts())
    std::printf("  %-4s %8u\n", Class.c_str(), Count);
  std::printf("\nShape: several distinct patterns; sb present (the latch "
              "bug); OBSERVATION and PROPAGATION classes both "
              "populated.\n");
  return 0;
}
