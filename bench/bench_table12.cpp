//===- bench_table12.cpp - Table XII: PgSQL / RCU / Apache -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table XII: verifying the three full-fledged examples under
/// the multi-event and the present model. The examples are the litmus
/// cores of the case studies (Sec. 8.4):
///
///  * PgSQL — the pgsql-hackers latch bug, a store-buffering shape: with
///    full fences the stuck state is unreachable, without them it is;
///  * RCU — Fig. 40's update/read paths, a message-passing shape with
///    lwsync + address dependency: stale-data read unreachable;
///  * Apache — the fdqueue push/pop idiom, an mp shape with sync.
///
/// Paper times (s): PgSQL 1.6/1.6, RCU 0.5/0.5, Apache 2.0/2.0 — i.e. the
/// two axiomatic models cost the same on real code; verdicts agree.
///
//===----------------------------------------------------------------------===//

#include "bmc/Verify.h"
#include "litmus/Parser.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

namespace {

struct Example {
  const char *Name;
  const char *Source;
  bool AssertionViolationReachable;
};

const Example Examples[] = {
    {"PgSQL", R"(
Power pgsql-latch
P0:
  st work0, #1
  st latch1, #1
  sync
  ld r1, latch0
P1:
  st work1, #1
  st latch0, #1
  sync
  ld r1, latch1
exists (0:r1=0 /\ 1:r1=0)
)",
     false},
    {"PgSQL-buggy", R"(
Power pgsql-latch-nofence
P0:
  st work0, #1
  st latch1, #1
  ld r1, latch0
P1:
  st work1, #1
  st latch0, #1
  ld r1, latch1
exists (0:r1=0 /\ 1:r1=0)
)",
     true},
    {"RCU", R"(
Power rcu-update-read
P0:
  st foo2, #1
  lwsync
  st gblfoo, #2
P1:
  ld r1, gblfoo
  xor r2, r1, r1
  ld r3, foo2[r2]
exists (1:r1=2 /\ 1:r3=0)
)",
     false},
    {"Apache", R"(
Power apache-fdqueue
P0:
  st slot, #1
  sync
  st count, #1
P1:
  ld r1, count
  beq r1
  isync
  ld r2, slot
exists (1:r1=1 /\ 1:r2=0)
)",
     false},
};

} // namespace

int main() {
  const Model &Power = *modelByName("Power");
  std::printf("== Table XII: verification of the case studies ==\n\n");
  std::printf("%-14s %-10s %-10s %14s %14s\n", "example", "expected",
              "verdicts", "multi-ev (s)", "present (s)");
  bool AllMatch = true;
  for (const Example &Ex : Examples) {
    auto Test = parseLitmus(Ex.Source);
    if (!Test) {
      std::printf("%-14s parse error: %s\n", Ex.Name,
                  Test.message().c_str());
      return 1;
    }
    VerifyResult Multi = verifyMultiEvent(*Test, Power);
    VerifyResult Single = verifyAxiomatic(*Test, Power);
    bool Match = Multi.Reachable == Single.Reachable &&
                 Single.Reachable == Ex.AssertionViolationReachable;
    AllMatch &= Match;
    std::printf("%-14s %-10s %-10s %14.4f %14.4f   %s\n", Ex.Name,
                Ex.AssertionViolationReachable ? "reachable"
                                               : "safe",
                Single.Reachable ? "reachable" : "safe", Multi.Seconds,
                Single.Seconds, Match ? "" : "MISMATCH");
  }
  std::printf("\nShape: verdicts agree between models and match the "
              "ground truth: %s.\n",
              AllMatch ? "yes" : "NO");
  return AllMatch ? 0 : 1;
}
