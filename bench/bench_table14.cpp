//===- bench_table14.cpp - Table XIV: mole on RCU --------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table XIV: mole's findings in the RCU example of Fig. 40.
/// Paper: 9 patterns over 23 critical cycles plus one SC-per-location
/// cycle. Also prints the Apache row used in the text (5 patterns / 75
/// cycles: 4 mp, 1 s, 28 coRW2, 25 coWR, 17 coRW1).
///
//===----------------------------------------------------------------------===//

#include "mole/Mole.h"

#include <cstdio>

using namespace cats;

namespace {

void report(const MoleProgram &Program, const char *PaperLine) {
  MoleReport Report = analyzeProgram(Program);
  std::printf("-- %s --\n", Report.ProgramName.c_str());
  std::printf("%-14s %8s\n", "pattern", "cycles");
  unsigned Total = 0, ScLoc = 0;
  for (const auto &[Pattern, Count] : Report.patternCounts()) {
    std::printf("%-14s %8u\n", Pattern.c_str(), Count);
    Total += Count;
  }
  for (const MoleCycle &C : Report.Cycles)
    if (C.AxiomClass == "S")
      ++ScLoc;
  std::printf("%-14s %8u  (of which %u SC-per-location)\n", "total",
              Total, ScLoc);
  std::printf("paper: %s\n\n", PaperLine);
}

} // namespace

int main() {
  std::printf("== Table XIV: mole patterns in RCU (and Apache) ==\n\n");
  report(rcuProgram(),
         "9 patterns in 23 critical cycles + 1 SC-per-location");
  report(apacheProgram(),
         "5 patterns / 75 cycles: 4 mp, 1 s, 28 coRW2, 25 coWR, "
         "17 coRW1");
  std::printf("Shape: mp present in both (the RCU publish idiom); Apache "
              "dominated by same-location shapes.\n");
  return 0;
}
