//===- bench_run.cpp - Native harness throughput vs replay floor ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark behind BENCH_run.json and the CI perf gate for the run
/// subsystem: execute the classic two-thread families (mp, sb, lb)
/// natively and compare —
///
///   replay:  the same lowered code run single-threaded (init, threads in
///            order, collect) — the interpreter's cost floor per outcome;
///   harness: the full RunEngine (batched instances, barriers, seeded
///            shuffle, affinity, histogram folding).
///
/// The gated metric is the normalized harness cost — harness wall time
/// over replay wall time for the same iteration count, measured in the
/// same run so machine speed cancels. The gate also re-checks that the
/// schedule is deterministic per seed and that the run is sound against
/// the host reference model.
///
///   bench_run                        print the table
///   bench_run --out FILE             write the cats-bench-run/1 snapshot
///   bench_run --check FILE           fail (exit 1) when the normalized
///                                    cost regressed more than --tolerance
///                                    (default 0.25) vs the baseline, the
///                                    schedule went nondeterministic, or a
///                                    soundness violation was observed
///
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"
#include "run/Codegen.h"
#include "run/RunEngine.h"
#include "run/Verdict.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double elapsed(Clock::time_point From) {
  return std::chrono::duration<double>(Clock::now() - From).count();
}

const char *const BenchTests[] = {"mp", "sb", "lb"};

/// Sequential replay of \p Iterations outcomes over preallocated state —
/// the interpreter floor the harness overhead is normalized against.
double runReplay(const NativeTest &Native, unsigned long long Iterations) {
  const unsigned Locs = std::max(Native.numLocations(), 1u);
  std::vector<PaddedCell> Cells(Locs);
  std::vector<std::vector<Value>> Banks(Native.numThreads());
  std::vector<const Value *> BankPtrs(Native.numThreads());
  for (unsigned T = 0; T < Native.numThreads(); ++T) {
    Banks[T].assign(std::max(Native.numRegisters(T), 1u), 0);
    BankPtrs[T] = Banks[T].data();
  }
  unsigned long long Distinct = 0;
  const auto Start = Clock::now();
  for (unsigned long long I = 0; I < Iterations; ++I) {
    Native.initializeCells(Cells.data());
    for (unsigned T = 0; T < Native.numThreads(); ++T)
      Native.runThread(T, Cells.data(), Banks[T].data());
    Outcome Out = Native.collectOutcome(Cells.data(), BankPtrs.data());
    Distinct += Out.Memory.size(); // Keep the collect from being elided.
  }
  double Wall = elapsed(Start);
  if (Distinct == 0)
    std::fprintf(stderr, "impossible: empty outcomes\n");
  return Wall;
}

struct Measurement {
  double ReplaySeconds = 0;
  double HarnessSeconds = 0;
  unsigned long long Iterations = 0;
  bool Deterministic = true;
  bool Sound = true;
};

Measurement measure(unsigned long long Iterations, unsigned Batch,
                    unsigned Jobs, unsigned Repeats) {
  RunOptions Opts;
  Opts.Iterations = Iterations;
  Opts.BatchSize = Batch;
  Opts.Jobs = Jobs;
  Opts.Seed = 42;
  RunEngine Engine(Opts);
  const Model &Reference = hostReferenceModel();

  Measurement M;
  M.Iterations = Iterations;
  M.ReplaySeconds = 1e300;
  M.HarnessSeconds = 1e300;
  for (unsigned R = 0; R < Repeats; ++R) {
    double Replay = 0, Harness = 0;
    for (const char *Name : BenchTests) {
      const CatalogEntry *Entry = catalogEntry(Name);
      if (!Entry) {
        std::fprintf(stderr, "catalogue lost %s\n", Name);
        std::exit(1);
      }
      auto Native = NativeTest::compile(Entry->Test);
      if (!Native) {
        std::fprintf(stderr, "%s: %s\n", Name, Native.message().c_str());
        std::exit(1);
      }
      Replay += runReplay(*Native, Iterations);
      RunTestResult First = Engine.runTest(Entry->Test, Reference);
      RunTestResult Second = Engine.runTest(Entry->Test, Reference);
      if (!First.Error.empty()) {
        std::fprintf(stderr, "%s: %s\n", Name, First.Error.c_str());
        std::exit(1);
      }
      Harness += First.WallSeconds + Second.WallSeconds;
      if (First.ScheduleHash != Second.ScheduleHash)
        M.Deterministic = false;
      if (!First.sound() || !Second.sound())
        M.Sound = false;
    }
    M.ReplaySeconds = std::min(M.ReplaySeconds, Replay);
    // Two harness runs per test above (for the determinism check); halve
    // so both sides of the ratio cover the same iteration count.
    M.HarnessSeconds = std::min(M.HarnessSeconds, Harness / 2);
  }
  return M;
}

JsonValue toJson(const Measurement &M, unsigned Batch, unsigned Jobs,
                 unsigned Repeats) {
  const unsigned long long Outcomes =
      M.Iterations * (sizeof(BenchTests) / sizeof(BenchTests[0]));
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-bench-run/1");
  JsonValue Tests = JsonValue::array();
  for (const char *Name : BenchTests)
    Tests.push(Name);
  Root.set("tests", std::move(Tests));
  Root.set("iterations", M.Iterations);
  Root.set("batch", Batch);
  Root.set("jobs", Jobs);
  Root.set("repeats", Repeats);
  Root.set("replay_seconds", M.ReplaySeconds);
  Root.set("harness_seconds", M.HarnessSeconds);
  Root.set("replay_outcomes_per_sec", Outcomes / M.ReplaySeconds);
  Root.set("harness_outcomes_per_sec", Outcomes / M.HarnessSeconds);
  Root.set("normalized_harness_cost", M.HarnessSeconds / M.ReplaySeconds);
  Root.set("deterministic", M.Deterministic);
  Root.set("sound", M.Sound);
  return Root;
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--iterations N] [--batch N] [--jobs N]\n"
               "          [--repeats N] [--out FILE] [--check FILE]\n"
               "          [--tolerance F]\n",
               Argv0);
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  unsigned long long Iterations = 100000;
  unsigned Batch = 512, Jobs = 0, Repeats = 3;
  double Tolerance = 0.25;
  std::string OutPath, CheckPath;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto Value = [&]() -> const char * {
      return I + 1 < argc ? argv[++I] : nullptr;
    };
    if (Arg == "--iterations") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Iterations = std::strtoull(V, nullptr, 10);
    } else if (Arg == "--batch") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Batch = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--jobs") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Jobs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--repeats") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Repeats = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (Arg == "--out") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      OutPath = V;
    } else if (Arg == "--check") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      CheckPath = V;
    } else if (Arg == "--tolerance") {
      const char *V = Value();
      if (!V)
        return usage(argv[0]);
      Tolerance = std::strtod(V, nullptr);
    } else {
      return usage(argv[0]);
    }
  }
  if (Iterations == 0 || Batch == 0 || Repeats == 0)
    return usage(argv[0]);

  std::printf("== Native harness throughput vs sequential replay floor ==\n");
  std::printf("tests: mp, sb, lb x %llu iterations, batch %u, best of %u "
              "repeats, host %s, model %s\n\n",
              Iterations, Batch, Repeats, hostArchName(),
              hostReferenceModel().name().c_str());

  Measurement M = measure(Iterations, Batch, Jobs, Repeats);
  const unsigned long long Outcomes = Iterations * 3;

  std::printf("%-38s %10.4fs  (%.0f outcomes/s)\n",
              "replay (single-thread floor)", M.ReplaySeconds,
              Outcomes / M.ReplaySeconds);
  std::printf("%-38s %10.4fs  (%.0f outcomes/s)\n",
              "harness (batched, barriers, shuffle)", M.HarnessSeconds,
              Outcomes / M.HarnessSeconds);
  std::printf("normalized harness cost: %.4f\n",
              M.HarnessSeconds / M.ReplaySeconds);
  std::printf("schedule deterministic per seed: %s\n",
              M.Deterministic ? "yes" : "NO");
  std::printf("sound vs %s: %s\n", hostReferenceModel().name().c_str(),
              M.Sound ? "yes" : "NO");

  if (!M.Deterministic) {
    std::fprintf(stderr, "FAIL: schedule hash differs across same-seed "
                         "runs\n");
    return 1;
  }
  if (!M.Sound) {
    std::fprintf(stderr, "FAIL: observed an outcome the host reference "
                         "model forbids\n");
    return 1;
  }

  if (!OutPath.empty()) {
    std::ofstream Out(OutPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
      return 1;
    }
    Out << toJson(M, Batch, Jobs, Repeats).dump();
    std::printf("wrote %s\n", OutPath.c_str());
  }

  if (!CheckPath.empty()) {
    std::ifstream In(CheckPath);
    if (!In) {
      std::fprintf(stderr, "cannot read baseline %s\n", CheckPath.c_str());
      return 1;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Baseline = JsonValue::parse(Buf.str());
    if (!Baseline) {
      std::fprintf(stderr, "bad baseline %s: %s\n", CheckPath.c_str(),
                   Baseline.message().c_str());
      return 1;
    }
    const JsonValue *Cost = Baseline->get("normalized_harness_cost");
    if (!Cost || !Cost->isNumber()) {
      std::fprintf(stderr, "baseline %s lacks normalized_harness_cost\n",
                   CheckPath.c_str());
      return 1;
    }
    // Harness and replay are measured in the same run, so machine speed
    // cancels; extra cores only lower the harness side, so a baseline
    // committed on a small machine stays a valid upper bound.
    const double Fresh = M.HarnessSeconds / M.ReplaySeconds;
    const double Allowed = Cost->asNumber() * (1.0 + Tolerance);
    std::printf("\nperf gate: normalized harness cost %.4f (baseline "
                "%.4f, allowed <= %.4f)\n",
                Fresh, Cost->asNumber(), Allowed);
    if (Fresh > Allowed) {
      std::fprintf(stderr,
                   "FAIL: harness cost regressed more than %.0f%% vs the "
                   "committed baseline\n",
                   Tolerance * 100);
      return 1;
    }
    std::printf("perf gate passed\n");
  }

  return 0;
}
