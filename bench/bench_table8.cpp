//===- bench_table8.cpp - Table VIII: anomaly classification ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table VIII: classify, per model, the executions observed on
/// the ARM fleet yet forbidden by the model, by the set of violated axioms
/// (S = SC PER LOCATION, T = NO THIN AIR, O = OBSERVATION,
/// P = PROPAGATION). The paper's headline: moving from the Power-ARM model
/// to ARM llh shrinks the invalid count from 37907 executions (1500 tests)
/// to 1121 (31 tests), the survivors being genuine chip anomalies.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "hardware/Hardware.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <cstdio>
#include <map>

using namespace cats;

namespace {

std::map<std::string, unsigned> classifyFleet(const Model &M) {
  std::map<std::string, unsigned> Counts;
  std::vector<LitmusTest> Battery = generateBattery(Arch::ARM);
  for (const char *Name :
       {"coRR", "coRSDWI", "mp+dmb+fri-rfi-ctrlisb",
        "lb+data+fri-rfi-ctrl", "s+dmb+fri-rfi-data",
        "lb+data+data-wsi-rfi-addr", "mp+dmb+pos-ctrlisb+bis"})
    if (const CatalogEntry *Entry = catalogEntry(Name))
      Battery.push_back(Entry->Test);

  for (const LitmusTest &Test : Battery) {
    auto Compiled = CompiledTest::compile(Test);
    if (!Compiled)
      continue;
    // Every candidate producible by some chip but forbidden by the model
    // counts once per (candidate, test) as an invalid execution.
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (!Cand.Consistent)
        return true;
      bool Producible = false;
      for (const HardwareProfile &Chip : HardwareProfile::armFleet())
        if (chipCanProduce(Chip, Cand, Test.Name))
          Producible = true;
      if (!Producible)
        return true;
      Verdict V = M.check(Cand.Exe);
      if (!V.Allowed)
        ++Counts[V.letters()];
      return true;
    });
  }
  return Counts;
}

} // namespace

int main() {
  std::printf("== Table VIII: classification of ARM anomalies ==\n\n");
  const char *Columns[] = {"S",  "T",  "O",  "P",   "ST",  "SO",
                           "SP", "OP", "TO", "TP",  "STO", "SOP",
                           "STP", "TOP", "STOP"};

  for (const char *ModelName : {"Power-ARM", "ARM llh"}) {
    auto Counts = classifyFleet(*modelByName(ModelName));
    unsigned Total = 0;
    for (const auto &[Class, Count] : Counts)
      Total += Count;
    std::printf("%-10s ALL=%-6u", ModelName, Total);
    for (const char *Col : Columns) {
      auto It = Counts.find(Col);
      if (It != Counts.end())
        std::printf(" %s=%u", Col, It->second);
    }
    std::printf("\n");
  }
  std::printf("\nPaper (executions): Power-ARM ALL=37907, ARM llh "
              "ALL=1121.\nShape: ARM llh total must be far below "
              "Power-ARM's, and dominated by observation-class (O*/SOP) "
              "anomalies.\n");
  return 0;
}
