//===- bench_micro.cpp - google-benchmark microbenchmarks ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the kernels everything rests on: relation closures,
/// the Power ppo fixpoint, full model checks, cat interpretation and the
/// operational machine — the per-candidate costs behind Table IX.
///
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"
#include "herd/MultiEvent.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "machine/IntermediateMachine.h"
#include "model/Registry.h"
#include "support/Rng.h"

#include <benchmark/benchmark.h>

using namespace cats;

namespace {

Relation randomRelation(unsigned N, unsigned Pairs, uint64_t Seed) {
  Rng R(Seed);
  Relation Out(N);
  for (unsigned I = 0; I < Pairs; ++I)
    Out.set(static_cast<EventId>(R.nextBelow(N)),
            static_cast<EventId>(R.nextBelow(N)));
  return Out;
}

const Execution &witness(const char *Name) {
  static std::map<std::string, Execution> Cache;
  auto It = Cache.find(Name);
  if (It != Cache.end())
    return It->second;
  const CatalogEntry *Entry = catalogEntry(Name);
  assert(Entry && "unknown catalogue test");
  auto Compiled = CompiledTest::compile(Entry->Test);
  assert(Compiled);
  Execution Result;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (Cand.Consistent && Cand.Out.satisfies(Entry->Test.Final)) {
      Result = Cand.Exe;
      return false;
    }
    return true;
  });
  return Cache.emplace(Name, std::move(Result)).first->second;
}

void BM_TransitiveClosure(benchmark::State &State) {
  Relation R = randomRelation(static_cast<unsigned>(State.range(0)),
                              static_cast<unsigned>(State.range(0)) * 2,
                              42);
  for (auto _ : State)
    benchmark::DoNotOptimize(R.transitiveClosure());
}
BENCHMARK(BM_TransitiveClosure)->Arg(16)->Arg(64)->Arg(128);

void BM_Compose(benchmark::State &State) {
  unsigned N = static_cast<unsigned>(State.range(0));
  Relation A = randomRelation(N, N * 2, 1);
  Relation B = randomRelation(N, N * 2, 2);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.compose(B));
}
BENCHMARK(BM_Compose)->Arg(16)->Arg(64)->Arg(128);

void BM_PowerPpoFixpoint(benchmark::State &State) {
  const Execution &Exe = witness("mp+lwsync+addr");
  const Model &Power = *modelByName("Power");
  for (auto _ : State)
    benchmark::DoNotOptimize(Power.ppo(Exe));
}
BENCHMARK(BM_PowerPpoFixpoint);

void BM_PowerFullCheck(benchmark::State &State) {
  const Execution &Exe = witness("iriw+syncs");
  const Model &Power = *modelByName("Power");
  for (auto _ : State)
    benchmark::DoNotOptimize(Power.check(Exe).Allowed);
}
BENCHMARK(BM_PowerFullCheck);

void BM_MultiEventCheck(benchmark::State &State) {
  const Execution &Exe = witness("iriw+syncs");
  const Model &Power = *modelByName("Power");
  for (auto _ : State)
    benchmark::DoNotOptimize(multiEventCheck(Exe, Power).Allowed);
}
BENCHMARK(BM_MultiEventCheck);

void BM_MachineExploration(benchmark::State &State) {
  const Execution &Exe = witness("iriw+syncs");
  const Model &Power = *modelByName("Power");
  for (auto _ : State)
    benchmark::DoNotOptimize(machineAccepts(Exe, Power).Accepted);
}
BENCHMARK(BM_MachineExploration);

void BM_CatPowerCheck(benchmark::State &State) {
  static auto Cat = cats::cat::CatModel::builtin("power");
  assert(Cat);
  const Execution &Exe = witness("mp+lwsync+addr");
  for (auto _ : State)
    benchmark::DoNotOptimize(Cat->allows(Exe));
}
BENCHMARK(BM_CatPowerCheck);

void BM_SimulateWholeTest(benchmark::State &State) {
  const CatalogEntry *Entry = catalogEntry("iriw+lwsyncs");
  const Model &Power = *modelByName("Power");
  for (auto _ : State)
    benchmark::DoNotOptimize(
        simulate(Entry->Test, Power).CandidatesAllowed);
}
BENCHMARK(BM_SimulateWholeTest);

} // namespace

BENCHMARK_MAIN();
