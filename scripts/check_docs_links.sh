#!/bin/sh
# check_docs_links.sh - fail when an intra-repo markdown link is broken.
#
# Scans every tracked *.md file for inline links [text](target), skips
# external schemes (http/https/mailto) and pure #fragments, resolves the
# rest relative to the linking file, and checks the target exists. CI
# runs this in the docs job; run it locally from the repository root.

set -u
cd "$(dirname "$0")/.." || exit 2

fail=0
# Tracked plus untracked-but-not-ignored markdown files when git is
# available (so a freshly written doc is checked before 'git add'), else
# a find fallback.
if git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  files=$(git ls-files --cached --others --exclude-standard '*.md')
else
  files=$(find . -name '*.md' -not -path './build/*' | sed 's|^\./||')
fi

for file in $files; do
  dir=$(dirname "$file")
  # Inline links: "](target)" — one per line via grep -o; strip the
  # wrappers and any 'title' part after the first whitespace, so
  # [text](file.md "Title") checks file.md.
  links=$(grep -o ']([^)]*)' "$file" 2>/dev/null |
          sed 's/^](//; s/)$//; s/[[:space:]].*//')
  [ -z "$links" ] && continue
  for link in $links; do
    case "$link" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    target=${link%%#*}
    [ -z "$target" ] && continue
    if [ ! -e "$dir/$target" ]; then
      echo "BROKEN: $file -> $link"
      fail=1
    fi
  done
done

if [ "$fail" -ne 0 ]; then
  echo "docs link check failed"
  exit 1
fi
echo "docs link check passed"
