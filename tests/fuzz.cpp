//===- fuzz.cpp - Randomised cross-validation of all engines -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property-based sweeps over randomly generated litmus tests. Every
/// engine the repository ships must agree where theory says it must:
///
///  * the cat-interpreted models == the native models (Fig. 38 is the
///    model);
///  * the intermediate machine == the axiomatic model (Thm. 7.1);
///  * multi-event == single-event (the blow-up is verdict-preserving);
///  * the micro-event dependency derivation == the compiler's taints;
///  * SC ⊆ TSO ⊆ Power on fence-free programs (model weakening).
///
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"
#include "herd/MultiEvent.h"
#include "herd/Simulator.h"
#include "litmus/MicroSemantics.h"
#include "machine/IntermediateMachine.h"
#include "model/Registry.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

/// Generates a random well-formed litmus test: 2-3 threads, 2-4
/// instructions each, over 2-3 locations, with random fences and
/// dependency idioms.
LitmusTest randomTest(uint64_t Seed, Arch Target) {
  Rng R(Seed);
  LitmusTest Test;
  Test.TargetArch = Target;
  Test.Name = "fuzz" + std::to_string(Seed);
  const char *Locs[] = {"x", "y", "z"};
  unsigned NumLocs = 2 + static_cast<unsigned>(R.nextBelow(2));
  unsigned NumThreads = 2 + static_cast<unsigned>(R.nextBelow(2));

  std::vector<std::string> Fences;
  if (Target == Arch::Power)
    Fences = {"sync", "lwsync", "eieio"};
  else if (Target == Arch::ARM)
    Fences = {"dmb", "dmb.st"};
  else if (Target == Arch::TSO)
    Fences = {"mfence"};

  for (unsigned T = 0; T < NumThreads; ++T) {
    ThreadCode Code;
    Register NextReg = 1;
    int LastLoad = -1;
    unsigned Len = 2 + static_cast<unsigned>(R.nextBelow(3));
    for (unsigned I = 0; I < Len; ++I) {
      unsigned Kind = static_cast<unsigned>(R.nextBelow(6));
      const char *Loc = Locs[R.nextBelow(NumLocs)];
      switch (Kind) {
      case 0:
      case 1: { // Load, possibly with a false address dependency.
        Register Dst = NextReg++;
        Register AddrDep = -1;
        if (LastLoad >= 0 && R.chance(1, 2)) {
          AddrDep = NextReg++;
          Code.push_back(Instruction::xorOp(
              AddrDep, static_cast<Register>(LastLoad),
              static_cast<Register>(LastLoad)));
        }
        Code.push_back(Instruction::load(Dst, Loc, AddrDep));
        LastLoad = Dst;
        break;
      }
      case 2:
      case 3: { // Store of a constant or of a loaded value.
        if (LastLoad >= 0 && R.chance(1, 3)) {
          Code.push_back(Instruction::store(
              Loc, Operand::reg(static_cast<Register>(LastLoad))));
        } else {
          Code.push_back(Instruction::store(
              Loc, Operand::imm(1 + static_cast<int>(R.nextBelow(2)))));
        }
        break;
      }
      case 4: // Fence, when the architecture has one.
        if (!Fences.empty()) {
          Code.push_back(Instruction::fenceNamed(
              Fences[R.nextBelow(Fences.size())]));
        }
        break;
      case 5: // Control dependency on the last load.
        if (LastLoad >= 0) {
          Code.push_back(
              Instruction::cmpBranch(static_cast<Register>(LastLoad)));
          // Control fences exist on Power (isync) and ARM (isb) only.
          bool HasCfence =
              Target == Arch::Power || Target == Arch::ARM;
          if (HasCfence && R.chance(1, 2))
            Code.push_back(Instruction::fenceNamed(
                Target == Arch::ARM ? "isb" : "isync"));
        }
        break;
      }
    }
    // Ensure the thread touches memory at all.
    if (Code.empty())
      Code.push_back(Instruction::store(Locs[0], Operand::imm(1)));
    Test.Threads.push_back(std::move(Code));
  }
  return Test;
}

/// Applies \p Fn to every consistent candidate of \p Test.
void forEachConsistent(const LitmusTest &Test,
                       const std::function<void(const Candidate &)> &Fn) {
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  // Cap the candidate count so pathological fuzz programs stay fast.
  if (Compiled->candidateCount() > 3000)
    return;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (Cand.Consistent)
      Fn(Cand);
    return true;
  });
}

} // namespace

class FuzzPower : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzPower, CatAgreesWithNative) {
  static auto Cat = cats::cat::CatModel::builtin("power");
  ASSERT_TRUE(static_cast<bool>(Cat)) << Cat.message();
  const Model &Native = *modelByName("Power");
  LitmusTest Test = randomTest(GetParam(), Arch::Power);
  forEachConsistent(Test, [&](const Candidate &Cand) {
    EXPECT_EQ(Cat->allows(Cand.Exe), Native.allows(Cand.Exe))
        << Test.toString() << Cand.Exe.toString();
  });
}

TEST_P(FuzzPower, MachineAgreesWithAxioms) {
  const Model &Power = *modelByName("Power");
  LitmusTest Test = randomTest(GetParam(), Arch::Power);
  forEachConsistent(Test, [&](const Candidate &Cand) {
    MachineResult R = machineAccepts(Cand.Exe, Power, 500000);
    if (R.HitLimit)
      return;
    EXPECT_EQ(R.Accepted, Power.allows(Cand.Exe))
        << Test.toString() << Cand.Exe.toString();
  });
}

TEST_P(FuzzPower, MultiEventAgreesWithSingle) {
  const Model &Power = *modelByName("Power");
  LitmusTest Test = randomTest(GetParam(), Arch::Power);
  forEachConsistent(Test, [&](const Candidate &Cand) {
    EXPECT_EQ(multiEventCheck(Cand.Exe, Power).Allowed,
              Power.allows(Cand.Exe))
        << Test.toString();
  });
}

TEST_P(FuzzPower, MicroDepsAgreeWithTaints) {
  LitmusTest Test = randomTest(GetParam(), Arch::Power);
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  MicroDeps Deps = deriveDependencies(*Compiled);
  EXPECT_EQ(Deps.Addr, Compiled->skeleton().Addr) << Test.toString();
  EXPECT_EQ(Deps.Data, Compiled->skeleton().Data) << Test.toString();
  EXPECT_EQ(Deps.Ctrl, Compiled->skeleton().Ctrl) << Test.toString();
  EXPECT_EQ(Deps.CtrlCfence, Compiled->skeleton().CtrlCfence)
      << Test.toString();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPower,
                         ::testing::Range<uint64_t>(0, 60));

class FuzzHierarchy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzHierarchy, WeakeningIsMonotoneWithoutFences) {
  // On SC-architecture programs (no fences at all), SC-allowed implies
  // TSO-allowed implies Power-allowed, per candidate.
  LitmusTest Test = randomTest(GetParam(), Arch::SC);
  const Model &Sc = *modelByName("SC");
  const Model &Tso = *modelByName("TSO");
  const Model &Power = *modelByName("Power");
  const Model &Arm = *modelByName("ARM");
  const Model &ArmLlh = *modelByName("ARM llh");
  forEachConsistent(Test, [&](const Candidate &Cand) {
    if (Sc.allows(Cand.Exe)) {
      EXPECT_TRUE(Tso.allows(Cand.Exe)) << Test.toString();
    }
    if (Tso.allows(Cand.Exe)) {
      EXPECT_TRUE(Power.allows(Cand.Exe)) << Test.toString();
    }
    if (Arm.allows(Cand.Exe)) {
      EXPECT_TRUE(ArmLlh.allows(Cand.Exe)) << Test.toString();
    }
  });
}

TEST_P(FuzzHierarchy, VerdictLettersConsistent) {
  LitmusTest Test = randomTest(GetParam(), Arch::SC);
  const Model &Power = *modelByName("Power");
  forEachConsistent(Test, [&](const Candidate &Cand) {
    Verdict V = Power.check(Cand.Exe);
    EXPECT_EQ(V.Allowed, V.Violated.empty());
    EXPECT_EQ(V.letters().size(), V.Violated.size());
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzHierarchy,
                         ::testing::Range<uint64_t>(100, 140));

class FuzzArm : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzArm, CatAgreesWithNative) {
  static auto Cat = cats::cat::CatModel::builtin("arm");
  ASSERT_TRUE(static_cast<bool>(Cat)) << Cat.message();
  const Model &Native = *modelByName("ARM");
  LitmusTest Test = randomTest(GetParam(), Arch::ARM);
  forEachConsistent(Test, [&](const Candidate &Cand) {
    EXPECT_EQ(Cat->allows(Cand.Exe), Native.allows(Cand.Exe))
        << Test.toString() << Cand.Exe.toString();
  });
}

TEST_P(FuzzArm, ArmWeakerThanPowerArm) {
  // Power-ARM (cc0 with po-loc) is stronger than the proposed ARM model.
  LitmusTest Test = randomTest(GetParam(), Arch::ARM);
  const Model &Arm = *modelByName("ARM");
  const Model &PowerArm = *modelByName("Power-ARM");
  forEachConsistent(Test, [&](const Candidate &Cand) {
    if (PowerArm.allows(Cand.Exe)) {
      EXPECT_TRUE(Arm.allows(Cand.Exe)) << Test.toString();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzArm,
                         ::testing::Range<uint64_t>(200, 240));

//===--------------------------------------------------------------------===//
// Differential fuzzing of the judging backends (docs/enumeration.md): the
// incremental pruned enumerator must be byte-identical to the naive
// reference on arbitrary well-formed programs, not just the curated
// corpora of tests/differential.cpp. A mismatch is shrunk to a minimal
// reproducing program before failing, so the report is actionable.
//===--------------------------------------------------------------------===//

namespace {

/// Full equality of the two backends' results (shared counts, outcome
/// sets, every per-model tally and verdict).
bool sameResults(const MultiSimulationResult &A,
                 const MultiSimulationResult &B) {
  if (A.CandidatesTotal != B.CandidatesTotal ||
      A.CandidatesConsistent != B.CandidatesConsistent ||
      A.ConsistentOutcomes != B.ConsistentOutcomes ||
      A.PerModel.size() != B.PerModel.size())
    return false;
  for (size_t I = 0; I < A.PerModel.size(); ++I) {
    if (A.PerModel[I].CandidatesAllowed != B.PerModel[I].CandidatesAllowed ||
        A.PerModel[I].AllowedOutcomes != B.PerModel[I].AllowedOutcomes ||
        A.PerModel[I].ConditionReachable !=
            B.PerModel[I].ConditionReachable)
      return false;
  }
  return true;
}

/// True when naive and pruned disagree on \p Test under every registry
/// model. Uncompilable or oversized programs count as agreement (they
/// are outside the property's domain, and the shrinker must not wander
/// into them).
bool backendsDisagree(const LitmusTest &Test) {
  if (!Test.validate().empty())
    return false;
  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled || Compiled->candidateCount() > 3000)
    return false;
  return !sameResults(simulateAll(*Compiled, allModels(), JudgeBackend::Naive),
                      simulateAll(*Compiled, allModels(),
                                  JudgeBackend::Pruned));
}

/// Greedily shrinks a disagreeing test: drop whole threads, then single
/// instructions, keeping every mutation that still disagrees, until a
/// fixpoint. The result is the minimal program to debug.
LitmusTest shrinkMismatch(LitmusTest Test) {
  bool Progress = true;
  while (Progress) {
    Progress = false;
    for (size_t T = 0; T < Test.Threads.size() && Test.Threads.size() > 1;
         ++T) {
      LitmusTest Smaller = Test;
      Smaller.Threads.erase(Smaller.Threads.begin() + T);
      Smaller.Final = Condition(); // Thread indices shifted; drop the query.
      if (backendsDisagree(Smaller)) {
        Test = std::move(Smaller);
        Progress = true;
        break;
      }
    }
    if (Progress)
      continue;
    for (size_t T = 0; T < Test.Threads.size(); ++T) {
      for (size_t I = 0; I < Test.Threads[T].size(); ++I) {
        LitmusTest Smaller = Test;
        Smaller.Threads[T].erase(Smaller.Threads[T].begin() + I);
        if (backendsDisagree(Smaller)) {
          Test = std::move(Smaller);
          Progress = true;
          break;
        }
      }
      if (Progress)
        break;
    }
  }
  return Test;
}

/// The property: if the backends disagree, shrink and fail with the
/// minimal reproducer.
void expectBackendsAgree(const LitmusTest &Test) {
  if (!backendsDisagree(Test))
    return;
  LitmusTest Minimal = shrinkMismatch(Test);
  ADD_FAILURE() << "naive and pruned backends disagree; minimal "
                   "reproducer:\n"
                << Minimal.toString();
}

} // namespace

class FuzzDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzDifferential, PrunedMatchesNaive) {
  for (Arch Target : {Arch::Power, Arch::ARM, Arch::TSO})
    expectBackendsAgree(randomTest(GetParam(), Target));
}

TEST_P(FuzzDifferential, PrunedMatchesNaiveWithDuplicatedThread) {
  // Duplicating a thread forces a non-trivial symmetry group, so this
  // variant stresses the canonical-orbit accounting specifically.
  for (Arch Target : {Arch::Power, Arch::ARM}) {
    LitmusTest Test = randomTest(GetParam(), Target);
    Test.Threads.push_back(Test.Threads[0]);
    Test.Name += "+dup";
    expectBackendsAgree(Test);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzDifferential,
                         ::testing::Range<uint64_t>(300, 340));
