//===- differential.cpp - Naive vs pruned vs bmc backend equivalence ---------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential harness behind the incremental enumerator
/// (src/herd/Enumerator.cpp, docs/enumeration.md). The pruned backend is
/// the default judging engine of the whole sweep path, so its safety is
/// not argued — it is pinned: every litmus test of the paper catalogue and
/// two generated diy corpora (the size-6 Power slice and an internal-com
/// slice that actually exercises the po-loc pruning) run through all three
/// backends under all nine registry models, and the results must agree:
///
///  * Naive vs Pruned: byte-identical MultiSimulationResults — candidate
///    totals (multiplicity-adjusted across symmetry orbits), consistent
///    counts, consistent/allowed outcome sets, per-model allowed counts
///    and verdicts.
///  * Bmc vs Naive: identical verdicts and outcome sets; CandidatesAllowed
///    is a documented lower bound (the outcome memo stops counting proofs
///    of facts it already knows).
///
//===----------------------------------------------------------------------===//

#include "bmc/Judge.h"
#include "diy/Enumerate.h"
#include "herd/Enumerator.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "obs/FlightRecorder.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace cats;

namespace {

/// Renders an outcome set as sorted keys, for readable mismatch output.
std::vector<std::string> keysOf(const std::set<Outcome> &Outcomes) {
  std::vector<std::string> Keys;
  Keys.reserve(Outcomes.size());
  for (const Outcome &O : Outcomes)
    Keys.push_back(O.key());
  return Keys;
}

/// Full equality of two multi-model results (the Naive vs Pruned
/// contract: every shared and per-model field, including the counts).
void expectIdentical(const MultiSimulationResult &A,
                     const MultiSimulationResult &B, const std::string &What) {
  EXPECT_EQ(A.TestName, B.TestName) << What;
  EXPECT_EQ(A.CandidatesTotal, B.CandidatesTotal) << What;
  EXPECT_EQ(A.CandidatesConsistent, B.CandidatesConsistent) << What;
  EXPECT_EQ(keysOf(A.ConsistentOutcomes), keysOf(B.ConsistentOutcomes))
      << What;
  ASSERT_EQ(A.PerModel.size(), B.PerModel.size()) << What;
  for (size_t I = 0; I < A.PerModel.size(); ++I) {
    const SimulationResult &MA = A.PerModel[I];
    const SimulationResult &MB = B.PerModel[I];
    const std::string Where = What + " [" + MA.ModelName + "]";
    EXPECT_EQ(MA.ModelName, MB.ModelName) << Where;
    EXPECT_EQ(MA.CandidatesAllowed, MB.CandidatesAllowed) << Where;
    EXPECT_EQ(keysOf(MA.AllowedOutcomes), keysOf(MB.AllowedOutcomes))
        << Where;
    EXPECT_EQ(MA.ConditionReachable, MB.ConditionReachable) << Where;
  }
}

/// The weaker Bmc contract: exact verdicts and outcome sets, allowed
/// counts bounded above by the exhaustive count.
void expectBmcAgrees(const MultiSimulationResult &Bmc,
                     const MultiSimulationResult &Ref,
                     const std::string &What) {
  EXPECT_EQ(Bmc.CandidatesTotal, Ref.CandidatesTotal) << What;
  EXPECT_EQ(Bmc.CandidatesConsistent, Ref.CandidatesConsistent) << What;
  EXPECT_EQ(keysOf(Bmc.ConsistentOutcomes), keysOf(Ref.ConsistentOutcomes))
      << What;
  ASSERT_EQ(Bmc.PerModel.size(), Ref.PerModel.size()) << What;
  for (size_t I = 0; I < Bmc.PerModel.size(); ++I) {
    const SimulationResult &MB = Bmc.PerModel[I];
    const SimulationResult &MR = Ref.PerModel[I];
    const std::string Where = What + " [" + MB.ModelName + "]";
    EXPECT_EQ(MB.ConditionReachable, MR.ConditionReachable) << Where;
    EXPECT_EQ(keysOf(MB.AllowedOutcomes), keysOf(MR.AllowedOutcomes))
        << Where;
    EXPECT_LE(MB.CandidatesAllowed, MR.CandidatesAllowed) << Where;
    EXPECT_EQ(MB.CandidatesAllowed > 0, MR.CandidatesAllowed > 0) << Where;
  }
}

/// On a cross-check failure, freezes the evidence: a witness-mode rerun
/// of the test dumps its verdict explanations (and the prune cut, if one
/// fired) into the flight-recorder directory, so the mismatch is
/// debuggable after CI tore the workspace down.
void flightRecordMismatch(const LitmusTest &Test,
                          const CompiledTest &Compiled,
                          const std::string &What) {
  SimulateOptions Opts;
  Opts.Backend = JudgeBackend::Pruned;
  Opts.Witness = true;
  MultiSimulationResult Explained =
      simulateAll(Compiled, allModels(), Opts);
  obs::FlightRecorder Recorder;
  auto Saved = Recorder.record("backend-mismatch-" + Test.Name,
                               Test.toString(),
                               "backend cross-check mismatch: " + What + "\n",
                               Explained.Witnesses);
  if (Saved && !Saved->empty())
    std::fprintf(stderr, "flight recorder: dumped %s\n", Saved->c_str());
}

/// Runs one test through all three backends under every registry model
/// and checks the pairwise contracts plus the closed-form candidate count.
void differentialCheck(const LitmusTest &Test) {
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled))
      << Test.Name << ": " << Compiled.message();
  const std::vector<const Model *> &Models = allModels();
  MultiSimulationResult Naive =
      simulateAll(*Compiled, Models, JudgeBackend::Naive);
  MultiSimulationResult Pruned =
      simulateAll(*Compiled, Models, JudgeBackend::Pruned);
  MultiSimulationResult Bmc = simulateAll(*Compiled, Models, JudgeBackend::Bmc);
  const bool FailedBefore = ::testing::Test::HasNonfatalFailure();
  expectIdentical(Naive, Pruned, Test.Name + " naive-vs-pruned");
  expectBmcAgrees(Bmc, Naive, Test.Name + " bmc-vs-naive");
  EXPECT_EQ(Naive.CandidatesTotal, Compiled->candidateCount()) << Test.Name;
  EXPECT_EQ(Pruned.CandidatesTotal, Compiled->candidateCount()) << Test.Name;
  if (!FailedBefore && ::testing::Test::HasNonfatalFailure())
    flightRecordMismatch(Test, *Compiled, Test.Name);
}

/// Pulls up to \p Cap tests from a diy slice, skipping candidate spaces
/// too large for a three-backend unit-test pass.
std::vector<LitmusTest> diySlice(const EnumerateOptions &Opts, unsigned Cap,
                                 unsigned long long MaxCandidates = 20000) {
  auto Source = makeDiyTestSource(Opts);
  EXPECT_TRUE(static_cast<bool>(Source)) << Source.message();
  std::vector<LitmusTest> Tests;
  if (!Source)
    return Tests;
  LitmusTest Test;
  while (Tests.size() < Cap && (*Source)(Test)) {
    auto Compiled = CompiledTest::compile(Test);
    if (Compiled && Compiled->candidateCount() <= MaxCandidates)
      Tests.push_back(Test);
  }
  return Tests;
}

} // namespace

TEST(Differential, NineModels) {
  // The equivalence claims below quantify over "all nine models"; pin the
  // registry so a model added later joins the harness automatically.
  EXPECT_EQ(allModels().size(), 9u);
}

TEST(Differential, BackendNames) {
  EXPECT_STREQ(judgeBackendName(JudgeBackend::Naive), "naive");
  EXPECT_STREQ(judgeBackendName(JudgeBackend::Pruned), "pruned");
  EXPECT_STREQ(judgeBackendName(JudgeBackend::Bmc), "bmc");
  JudgeBackend B = JudgeBackend::Naive;
  EXPECT_TRUE(parseJudgeBackend("bmc", B));
  EXPECT_EQ(B, JudgeBackend::Bmc);
  EXPECT_TRUE(parseJudgeBackend("pruned", B));
  EXPECT_EQ(B, JudgeBackend::Pruned);
  EXPECT_TRUE(parseJudgeBackend("naive", B));
  EXPECT_EQ(B, JudgeBackend::Naive);
  EXPECT_FALSE(parseJudgeBackend("exhaustive", B));
}

/// Every figure of the paper, all three backends, all nine models.
class DifferentialCatalog : public ::testing::TestWithParam<size_t> {};

TEST_P(DifferentialCatalog, BackendsAgree) {
  differentialCheck(figureCatalog()[GetParam()].Test);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DifferentialCatalog,
    ::testing::Range<size_t>(0, figureCatalog().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = figureCatalog()[Info.param].Test.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

/// The acceptance corpus: a size-6 Power diy slice (six-event critical
/// cycles with dependencies and fences). Basic critical cycles have empty
/// po-loc, so this leg mostly exercises the incremental search, symmetry
/// accounting and closed-form outcome assembly rather than the cycle cut.
TEST(Differential, DiySize6Power) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MinEdges = 6;
  Opts.MaxEdges = 6;
  Opts.Limit = 200;
  std::vector<LitmusTest> Tests = diySlice(Opts, 200);
  ASSERT_GE(Tests.size(), 100u);
  for (const LitmusTest &Test : Tests)
    differentialCheck(Test);
}

/// Internal-communication slice (rfi/fri/wsi detours): these cycles put
/// several same-location accesses on one thread, so po-loc is non-empty
/// and the partial-assignment cut actually fires. The test additionally
/// asserts that it fires — a slice where PartialCuts stayed zero would
/// leave the pruning leg of the harness vacuous.
TEST(Differential, DiyInternalComPower) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MinEdges = 4;
  Opts.MaxEdges = 5;
  Opts.InternalCom = true;
  Opts.Limit = 150;
  std::vector<LitmusTest> Tests = diySlice(Opts, 150);
  ASSERT_GE(Tests.size(), 50u);
  unsigned long long TotalCuts = 0, TotalPruned = 0;
  for (const LitmusTest &Test : Tests) {
    differentialCheck(Test);
    auto Compiled = CompiledTest::compile(Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    MultiModelChecker Checker(*Compiled, allModels());
    EnumerationStats Stats = enumerateIncremental(*Compiled, Checker);
    TotalCuts += Stats.PartialCuts;
    TotalPruned += Stats.PrunedCandidates;
  }
  EXPECT_GT(TotalCuts, 0u);
  EXPECT_GT(TotalPruned, 0u);
}

/// An ARM slice keeps the llh-flavoured models (ARM llh, RMO relaxations)
/// honest about the load-load-hazard carve-out in the pruning relation.
TEST(Differential, DiyInternalComArm) {
  EnumerateOptions Opts;
  Opts.Target = Arch::ARM;
  Opts.MinEdges = 4;
  Opts.MaxEdges = 5;
  Opts.InternalCom = true;
  Opts.Limit = 100;
  std::vector<LitmusTest> Tests = diySlice(Opts, 100);
  ASSERT_GE(Tests.size(), 30u);
  for (const LitmusTest &Test : Tests)
    differentialCheck(Test);
}

/// The sweep engine threads the backend through verbatim: a catalogue
/// sweep under each backend produces the same per-test reports (modulo
/// wall times and the bmc lower bound).
TEST(Differential, SweepEngineBackends) {
  std::vector<LitmusTest> Tests;
  for (const CatalogEntry &Entry : figureCatalog())
    Tests.push_back(Entry.Test);
  const std::vector<const Model *> &Models = allModels();
  std::vector<SweepJob> Jobs = makeJobs(Tests, Models);

  SweepOptions NaiveOpts;
  NaiveOpts.Jobs = 2;
  NaiveOpts.Backend = JudgeBackend::Naive;
  SweepReport Naive = SweepEngine(NaiveOpts).run(Jobs);

  SweepOptions PrunedOpts;
  PrunedOpts.Jobs = 2;
  PrunedOpts.Backend = JudgeBackend::Pruned;
  SweepReport Pruned = SweepEngine(PrunedOpts).run(Jobs);

  ASSERT_TRUE(Naive.allOk());
  ASSERT_TRUE(Pruned.allOk());
  ASSERT_EQ(Naive.Tests.size(), Pruned.Tests.size());
  for (size_t I = 0; I < Naive.Tests.size(); ++I)
    expectIdentical(Naive.Tests[I].Result, Pruned.Tests[I].Result,
                    "sweep " + Naive.Tests[I].TestName);
}

/// judgeBmc and verifyAxiomaticBmc answer the same reachability question
/// as the exhaustive simulator.
TEST(Differential, BmcFacade) {
  const Model &Power = *modelByName("Power");
  for (const CatalogEntry &Entry : figureCatalog()) {
    SimulationResult Ref = simulate(Entry.Test, Power);
    VerifyResult V = verifyAxiomaticBmc(Entry.Test, Power);
    EXPECT_EQ(V.Reachable, Ref.ConditionReachable) << Entry.Test.Name;
    EXPECT_EQ(V.Method, "axiomatic-bmc");
    EXPECT_FALSE(V.Incomplete) << Entry.Test.Name;
  }
}

/// The pruned backend's subtree cuts carry sound provenance: every
/// prune-cut witness captured over the catalogue names a real axiom of
/// the framework (always SC PER LOCATION — the partial po-loc | com
/// graph is exactly the Lemma 4.1 argument), draws its cycle from the
/// base-relation vocabulary, and closes it.
TEST(Differential, PruneCutWitnessesSound) {
  const std::set<std::string> AxiomNames = {
      axiomName(Axiom::ScPerLocation), axiomName(Axiom::NoThinAir),
      axiomName(Axiom::Observation), axiomName(Axiom::Propagation)};
  const std::set<std::string> CutEdgeLabels = {"rf", "po-loc", "co", "fr"};
  SimulateOptions Opts;
  Opts.Backend = JudgeBackend::Pruned;
  Opts.Witness = true;
  const std::vector<const Model *> &Models = allModels();
  size_t Cuts = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Entry.Test.Name;
    MultiSimulationResult Result = simulateAll(*Compiled, Models, Opts);
    for (const obs::Witness &W : Result.Witnesses) {
      if (W.Kind != obs::WitnessKind::PruneCut)
        continue;
      ++Cuts;
      EXPECT_EQ(W.Model, "*") << Entry.Test.Name;
      EXPECT_TRUE(AxiomNames.count(W.Axiom))
          << Entry.Test.Name << ": cut reason '" << W.Axiom
          << "' is not an axiom of the framework";
      EXPECT_EQ(W.Axiom, axiomName(Axiom::ScPerLocation)) << Entry.Test.Name;
      ASSERT_GE(W.Cycle.size(), 2u) << Entry.Test.Name;
      for (const LabeledEdge &E : W.Cycle)
        EXPECT_TRUE(CutEdgeLabels.count(E.Label))
            << Entry.Test.Name << ": edge label '" << E.Label << "'";
      // A closed walk: edges chain and return to the start.
      for (size_t I = 0; I + 1 < W.Cycle.size(); ++I)
        EXPECT_EQ(W.Cycle[I].To, W.Cycle[I + 1].From) << Entry.Test.Name;
      EXPECT_EQ(W.Cycle.back().To, W.Cycle.front().From) << Entry.Test.Name;
    }
  }
  // The coherence figures (coWW, coRW1, ...) make the po-loc pruning
  // fire, so the catalogue is a real corpus for this property.
  EXPECT_GT(Cuts, 0u);
}
