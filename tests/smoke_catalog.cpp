//===- smoke_catalog.cpp - Catalogue-wide smoke test --------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loads every litmus test shipped in the figure catalogue and asserts the
/// cheap invariants the rest of the pipeline relies on: each entry validates,
/// compiles into an execution skeleton, and round-trips through the textual
/// litmus format. Deliberately avoids running the simulators so the suite
/// stays fast; verdict checks live in model.cpp and corpus.cpp.
///
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"
#include "litmus/Compiler.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

#include <cctype>
#include <set>

using namespace cats;

namespace {

std::vector<std::string> catalogNames() {
  std::vector<std::string> Names;
  for (const CatalogEntry &Entry : figureCatalog())
    Names.push_back(Entry.Test.Name);
  return Names;
}

} // namespace

TEST(SmokeCatalog, CatalogueIsNonEmptyWithUniqueNames) {
  const auto &Catalog = figureCatalog();
  ASSERT_FALSE(Catalog.empty());
  std::set<std::string> Seen;
  for (const CatalogEntry &Entry : Catalog) {
    EXPECT_FALSE(Entry.Test.Name.empty()) << Entry.Figure;
    EXPECT_TRUE(Seen.insert(Entry.Test.Name).second)
        << "duplicate test name " << Entry.Test.Name;
    EXPECT_NE(catalogEntry(Entry.Test.Name), nullptr) << Entry.Test.Name;
  }
}

class SmokeCatalogTest : public ::testing::TestWithParam<std::string> {
protected:
  void SetUp() override {
    Entry = catalogEntry(GetParam());
    ASSERT_NE(Entry, nullptr) << GetParam();
  }

  const CatalogEntry &entry() const { return *Entry; }

private:
  const CatalogEntry *Entry = nullptr;
};

TEST_P(SmokeCatalogTest, Validates) {
  EXPECT_EQ(entry().Test.validate(), "") << entry().Figure;
}

TEST_P(SmokeCatalogTest, Compiles) {
  auto Compiled = CompiledTest::compile(entry().Test);
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  EXPECT_GT(Compiled->skeleton().numEvents(), 0u);
  EXPECT_GT(Compiled->candidateCount(), 0ull);
}

TEST_P(SmokeCatalogTest, RoundTripsThroughText) {
  const LitmusTest &Test = entry().Test;
  auto Reparsed = parseLitmus(Test.toString());
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_EQ(Reparsed->Name, Test.Name);
  EXPECT_EQ(Reparsed->TargetArch, Test.TargetArch);
  EXPECT_EQ(Reparsed->Threads.size(), Test.Threads.size());
  EXPECT_EQ(Reparsed->Final.toString(), Test.Final.toString());
}

INSTANTIATE_TEST_SUITE_P(AllFigures, SmokeCatalogTest,
                         ::testing::ValuesIn(catalogNames()),
                         [](const ::testing::TestParamInfo<std::string> &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (!std::isalnum(static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });
