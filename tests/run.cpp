//===- run.cpp - Tests for the native litmus runner -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "litmus/Compiler.h"
#include "litmus/Parser.h"
#include "model/Registry.h"
#include "run/Codegen.h"
#include "run/RunEngine.h"
#include "run/Verdict.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <set>

using namespace cats;

namespace {

LitmusTest parseOrDie(const std::string &Text) {
  auto Test = parseLitmus(Text);
  EXPECT_TRUE(static_cast<bool>(Test)) << Test.message();
  return Test.take();
}

std::set<std::string> outcomeKeys(const std::set<Outcome> &Outcomes) {
  std::set<std::string> Keys;
  for (const Outcome &O : Outcomes)
    Keys.insert(O.key());
  return Keys;
}

} // namespace

//===----------------------------------------------------------------------===//
// Codegen
//===----------------------------------------------------------------------===//

TEST(Codegen, WholeCatalogueLowers) {
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Native = NativeTest::compile(Entry.Test);
    EXPECT_TRUE(static_cast<bool>(Native))
        << Entry.Test.Name << ": " << Native.message();
  }
}

TEST(Codegen, FenceClassification) {
  EXPECT_EQ(classifyFence("sync"), HostFence::Full);
  EXPECT_EQ(classifyFence("dmb"), HostFence::Full);
  EXPECT_EQ(classifyFence("dsb"), HostFence::Full);
  EXPECT_EQ(classifyFence("mfence"), HostFence::Full);
  EXPECT_EQ(classifyFence("lwsync"), HostFence::Light);
  EXPECT_EQ(classifyFence("eieio"), HostFence::Light);
  EXPECT_EQ(classifyFence("dmb.st"), HostFence::Light);
  EXPECT_EQ(classifyFence("dsb.st"), HostFence::Light);
  EXPECT_EQ(classifyFence("isync"), HostFence::Control);
  EXPECT_EQ(classifyFence("isb"), HostFence::Control);
  EXPECT_EQ(classifyFence("nonesuch"), HostFence::None);
}

TEST(Codegen, SingleThreadReplayMatchesSimulator) {
  // Single-threaded programs have exactly one SC outcome; the native
  // replay (which exercises loads, stores, mov/xor/add, branches, fences
  // and dependent addressing) must land on it, key for key.
  const char *Programs[] = {
      // Straight-line value flow through registers and memory.
      "TSO seq-1\n"
      "{ x=0; y=0 }\n"
      "P0:\n"
      "  mov r1, #3\n"
      "  st x, r1\n"
      "  ld r2, x\n"
      "  add r3, r2, r2\n"
      "  st y, r3\n"
      "exists (0:r3=6 /\\ y=6)",
      // False address dependency: x[r2] with r2 = r1^r1 still reads x.
      "Power seq-2\n"
      "{ x=7; y=1 }\n"
      "P0:\n"
      "  ld r1, y\n"
      "  xor r2, r1, r1\n"
      "  ld r3, x[r2]\n"
      "exists (0:r3=7)",
      // Branch + control fence + overwrite; the final register file keeps
      // the last value.
      "Power seq-3\n"
      "{ x=0 }\n"
      "P0:\n"
      "  ld r1, x\n"
      "  beq r1\n"
      "  isync\n"
      "  mov r1, #5\n"
      "  st x, r1\n"
      "  sync\n"
      "  ld r4, x\n"
      "exists (0:r1=5 /\\ 0:r4=5)",
      // Init-only and condition-only locations appear in the outcome.
      "TSO seq-4\n"
      "{ a=9 }\n"
      "P0:\n"
      "  ld r1, a\n"
      "  st b, r1\n"
      "exists (b=9 /\\ c=0)",
  };
  for (const char *Text : Programs) {
    LitmusTest Test = parseOrDie(Text);
    auto Native = NativeTest::compile(Test);
    ASSERT_TRUE(static_cast<bool>(Native)) << Native.message();
    SimulationResult Sim = simulate(Test, *modelByName("SC"));
    ASSERT_EQ(Sim.AllowedOutcomes.size(), 1u) << Test.Name;
    EXPECT_EQ(Native->replay().key(), Sim.AllowedOutcomes.begin()->key())
        << Test.Name;
    EXPECT_TRUE(Native->replay().satisfies(Test.Final)) << Test.Name;
  }
}

TEST(Codegen, CatalogueReplaysAreScExecutions) {
  // Running threads to completion in index order is one SC interleaving,
  // so every replayed outcome must be in the SC allowed set — this pins
  // the value semantics (rf through real memory) of the whole catalogue
  // against MicroSemantics-derived simulation.
  const Model *Sc = modelByName("SC");
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
    if (Compiled->candidateCount() > 200000)
      continue; // Keep the suite fast; the big detour tests cost minutes.
    auto Native = NativeTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Native)) << Native.message();
    SimulationResult Sim = simulate(*Compiled, *Sc);
    std::set<std::string> Allowed = outcomeKeys(Sim.AllowedOutcomes);
    EXPECT_TRUE(Allowed.count(Native->replay().key()))
        << Entry.Test.Name << ": replay outcome "
        << Native->replay().key() << " is not SC-allowed";
  }
}

TEST(Codegen, OutcomeShapeMatchesSimulator) {
  // The register/memory sets of a native outcome must equal the
  // simulator's, or histogram keys would never match the allowed sets.
  LitmusTest Test = parseOrDie("Power mp-shape\n"
                               "{ x=0; y=0 }\n"
                               "P0:\n"
                               "  st x, #1\n"
                               "  st y, #1\n"
                               "P1:\n"
                               "  ld r1, y\n"
                               "  xor r2, r1, r1\n"
                               "  ld r3, x[r2]\n"
                               "exists (1:r1=1 /\\ 1:r3=0)");
  auto Native = NativeTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Native));
  ASSERT_EQ(Native->numThreads(), 2u);
  EXPECT_TRUE(Native->outcomeRegisters(0).empty());
  // P1 writes r1, r2, r3 — all three are outcome registers.
  EXPECT_EQ(Native->outcomeRegisters(1).size(), 3u);
  Outcome Replay = Native->replay();
  EXPECT_EQ(Replay.Regs.size(), 2u);
  EXPECT_EQ(Replay.Memory.size(), 2u);
  EXPECT_EQ(Replay.reg(1, 1), 1);
  EXPECT_EQ(Replay.reg(1, 3), 1);
}

//===----------------------------------------------------------------------===//
// Harness
//===----------------------------------------------------------------------===//

TEST(RunEngine, HistogramCountsAndOrder) {
  RunOptions Opts;
  Opts.Iterations = 20000;
  Opts.BatchSize = 128;
  Opts.Seed = 1;
  RunEngine Engine(Opts);
  const CatalogEntry *Mp = catalogEntry("mp");
  ASSERT_NE(Mp, nullptr);
  RunTestResult R = Engine.runTest(Mp->Test, hostReferenceModel());
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  unsigned long long Total = 0;
  for (const RunBucket &B : R.Histogram)
    Total += B.Count;
  EXPECT_EQ(Total, Opts.Iterations);
  for (size_t I = 1; I < R.Histogram.size(); ++I)
    EXPECT_LT(R.Histogram[I - 1].Key, R.Histogram[I].Key);
  // Every observed outcome is explained by the candidate enumeration —
  // true on any hardware, or the codegen value semantics are wrong.
  EXPECT_EQ(R.OutsideEnumeration, 0ull);
}

TEST(RunEngine, ObservedOutcomesAreModelAllowedOnThisHost) {
#if defined(__x86_64__)
  // On x86 the host reference model is TSO, and TSO soundness over the
  // classic families is the CI acceptance gate.
  RunOptions Opts;
  Opts.Iterations = 30000;
  Opts.Seed = 3;
  RunEngine Engine(Opts);
  const Model &Reference = hostReferenceModel();
  EXPECT_EQ(Reference.name(), "TSO");
  for (const char *Name : {"mp", "sb", "lb+addrs", "wrc+addrs"}) {
    const CatalogEntry *Entry = catalogEntry(Name);
    ASSERT_NE(Entry, nullptr) << Name;
    RunTestResult R = Engine.runTest(Entry->Test, Reference);
    ASSERT_TRUE(R.Error.empty()) << R.Error;
    EXPECT_TRUE(R.sound())
        << Name << ": " << R.OutsideModel << " outcome(s) outside TSO";
  }
#else
  GTEST_SKIP() << "host reference soundness is asserted on x86 only";
#endif
}

TEST(RunEngine, ScheduleIsDeterministicPerSeed) {
  const CatalogEntry *Sb = catalogEntry("sb");
  ASSERT_NE(Sb, nullptr);
  RunOptions Opts;
  Opts.Iterations = 5000;
  Opts.BatchSize = 64;
  Opts.Seed = 7;
  const Model &Reference = hostReferenceModel();
  for (ScheduleKind Kind : {ScheduleKind::Shuffle, ScheduleKind::Stride,
                            ScheduleKind::Sequential}) {
    Opts.Schedule = Kind;
    RunEngine Engine(Opts);
    RunTestResult A = Engine.runTest(Sb->Test, Reference);
    RunTestResult B = Engine.runTest(Sb->Test, Reference);
    ASSERT_TRUE(A.Error.empty()) << A.Error;
    EXPECT_EQ(A.ScheduleHash, B.ScheduleHash) << scheduleName(Kind);
    Opts.Seed = 8;
    RunEngine Other(Opts);
    RunTestResult C = Other.runTest(Sb->Test, Reference);
    if (Kind != ScheduleKind::Sequential) {
      EXPECT_NE(A.ScheduleHash, C.ScheduleHash) << scheduleName(Kind);
    }
    Opts.Seed = 7;
  }
}

TEST(RunEngine, DistinctTestsDrawDistinctSchedules) {
  RunOptions Opts;
  Opts.Iterations = 2000;
  Opts.BatchSize = 64;
  RunEngine Engine(Opts);
  const Model &Reference = hostReferenceModel();
  RunTestResult A = Engine.runTest(catalogEntry("mp")->Test, Reference);
  RunTestResult B = Engine.runTest(catalogEntry("sb")->Test, Reference);
  EXPECT_NE(A.ScheduleHash, B.ScheduleHash);
}

TEST(RunEngine, ReportShapeAndJson) {
  RunOptions Opts;
  Opts.Iterations = 1000;
  Opts.Seed = 11;
  RunEngine Engine(Opts);
  std::vector<LitmusTest> Tests{catalogEntry("mp")->Test,
                                catalogEntry("sb")->Test};
  RunReport Report = Engine.run(Tests, hostReferenceModel());
  ASSERT_EQ(Report.Tests.size(), 2u);
  EXPECT_EQ(Report.Host, hostArchName());
  JsonValue Json = runReportToJson(Report);
  EXPECT_EQ(Json.get("schema")->asString(), "cats-run-report/1");
  EXPECT_EQ(Json.get("tests")->elements().size(), 2u);
  // Round-trips through the parser.
  auto Back = JsonValue::parse(Json.dump());
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(*Back, Json);
}

TEST(RunEngine, CompileErrorIsReportedNotFatal) {
  LitmusTest Bad;
  Bad.Name = "bad";
  Bad.TargetArch = Arch::TSO;
  Bad.Threads.push_back({Instruction::fenceNamed("sync")}); // not on TSO
  RunEngine Engine;
  RunTestResult R = Engine.runTest(Bad, hostReferenceModel());
  EXPECT_FALSE(R.Error.empty());
  EXPECT_FALSE(R.sound());
}

//===----------------------------------------------------------------------===//
// Verdict layer
//===----------------------------------------------------------------------===//

TEST(Verdict, SyntheticUnsoundHistogramIsFlagged) {
  // Judge a hand-built histogram for mp containing the sc-forbidden (and
  // even TSO-forbidden) outcome r1=1, r3=0: the soundness check must
  // fire even though no real x86 run would produce it.
  const CatalogEntry *Mp = catalogEntry("mp");
  ASSERT_NE(Mp, nullptr);
  RunTestResult R;
  R.TestName = "mp";
  R.Iterations = 2;

  RunBucket Good; // The observable SC outcome r1=0, r2=0.
  Good.Out.Regs.resize(2);
  Good.Out.Regs[1][1] = 0;
  Good.Out.Regs[1][2] = 0;
  Good.Out.Memory = {{"x", 1}, {"y", 1}};
  Good.Key = Good.Out.key();
  Good.Count = 1;

  RunBucket Bad = Good; // The mp relaxation: saw y=1 but x stale.
  Bad.Out.Regs[1][1] = 1;
  Bad.Key = Bad.Out.key();
  Bad.Count = 1;

  R.Histogram = {Good, Bad};
  judgeHistogram(Mp->Test, *modelByName("TSO"), R);
  ASSERT_TRUE(R.Error.empty()) << R.Error;
  EXPECT_TRUE(R.ConditionObserved); // Bad matches the exists-clause.
  EXPECT_FALSE(R.ConditionAllowedByModel);
  EXPECT_EQ(R.OutsideModel, 1ull);
  EXPECT_FALSE(R.sound());

  // The same histogram judged under Power (which allows mp) is sound.
  RunTestResult Relaxed = R;
  judgeHistogram(Mp->Test, *modelByName("Power"), Relaxed);
  EXPECT_TRUE(Relaxed.ConditionAllowedByModel);
  EXPECT_EQ(Relaxed.OutsideModel, 0ull);
  EXPECT_TRUE(Relaxed.sound());
  EXPECT_EQ(Relaxed.OutsideSc, 1ull); // Still a relaxation beyond SC.
}

TEST(Verdict, OutcomeOutsideEnumerationIsACodegenBug) {
  const CatalogEntry *Mp = catalogEntry("mp");
  RunTestResult R;
  R.Iterations = 1;
  RunBucket Phantom; // A value no candidate execution can produce.
  Phantom.Out.Regs.resize(2);
  Phantom.Out.Regs[1][1] = 99;
  Phantom.Out.Regs[1][2] = 0;
  Phantom.Out.Regs[1][3] = 0;
  Phantom.Out.Memory = {{"x", 1}, {"y", 1}};
  Phantom.Key = Phantom.Out.key();
  Phantom.Count = 1;
  R.Histogram = {Phantom};
  judgeHistogram(Mp->Test, *modelByName("Power"), R);
  EXPECT_EQ(R.OutsideEnumeration, 1ull);
  // Disjoint counters: the phantom execution counts once, not also as
  // model-forbidden (allowed outcomes are a subset of consistent ones).
  EXPECT_EQ(R.OutsideModel, 0ull);
  EXPECT_EQ(R.OutsideSc, 0ull);
  EXPECT_FALSE(R.sound());
}

TEST(Verdict, JudgingFromASweptSimulationMatchesFreshJudging) {
  // The cats_mine --run path judges from the sweep's already-computed
  // simulation; both paths must agree bucket for bucket.
  const CatalogEntry *Sb = catalogEntry("sb");
  ASSERT_NE(Sb, nullptr);
  RunOptions Opts;
  Opts.Iterations = 5000;
  RunEngine Engine(Opts);
  const Model *Tso = modelByName("TSO");
  MultiSimulationResult Sim =
      simulateAll(Sb->Test, {Tso, modelByName("SC")});
  RunTestResult Fresh = Engine.runTest(Sb->Test, *Tso);
  RunTestResult Memoed = Engine.runTest(
      Sb->Test, *Tso,
      [&Sim](const std::string &) { return &Sim; });
  ASSERT_TRUE(Fresh.Error.empty()) << Fresh.Error;
  ASSERT_TRUE(Memoed.Error.empty()) << Memoed.Error;
  EXPECT_EQ(Fresh.ConditionAllowedByModel, Memoed.ConditionAllowedByModel);
  EXPECT_EQ(Fresh.ConditionAllowedBySc, Memoed.ConditionAllowedBySc);
  EXPECT_EQ(Fresh.OutsideModel, 0ull);
  EXPECT_EQ(Memoed.OutsideModel, 0ull);
  // A memo lacking the needed models falls back to fresh judging.
  MultiSimulationResult PowerOnly =
      simulateAll(Sb->Test, {modelByName("Power")});
  RunTestResult Fallback = Engine.runTest(
      Sb->Test, *Tso,
      [&PowerOnly](const std::string &) { return &PowerOnly; });
  EXPECT_EQ(Fallback.ModelName, "TSO");
  EXPECT_TRUE(Fallback.sound());
}

TEST(Verdict, AttachEmpiricalFillsTheFamilyColumn) {
  // Sweep mp variants so the mine report has an mp family, then attach a
  // fake run report and check the empirical column.
  std::vector<LitmusTest> Tests{catalogEntry("mp")->Test,
                                catalogEntry("mp+lwsync+addr")->Test};
  SweepEngine Engine(SweepOptions{1});
  SweepReport Swept =
      Engine.run(makeJobs(Tests, {modelByName("TSO")}));
  MineReport Mined = mineSweepReport(Swept);
  ASSERT_NE(Mined.family("mp"), nullptr);

  RunReport Run;
  Run.ModelName = "TSO";
  Run.Host = "x86_64";
  RunTestResult A;
  A.TestName = "mp";
  A.Iterations = 1000;
  A.ConditionObserved = false;
  RunTestResult B;
  B.TestName = "mp+lwsync+addr";
  B.Iterations = 1000;
  B.ConditionObserved = true;
  Run.Tests = {A, B};

  attachEmpirical(Mined, Run);
  EXPECT_TRUE(Mined.HasEmpirical);
  EXPECT_EQ(Mined.EmpiricalModel, "TSO");
  const FamilyVerdicts *F = Mined.family("mp");
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->HasEmpirical);
  EXPECT_EQ(F->Empirical.Tests, 2u);
  EXPECT_EQ(F->Empirical.Observed, 1u);
  EXPECT_EQ(F->Empirical.Iterations, 2000ull);
  EXPECT_EQ(F->Empirical.OutsideModel, 0ull);

  // The JSON rendering carries the column.
  JsonValue Json = mineReportToJson(Mined);
  const JsonValue *Corpus = Json.get("corpus");
  ASSERT_NE(Corpus, nullptr);
  EXPECT_EQ(Corpus->get("empirical_model")->asString(), "TSO");
  bool FoundEmpirical = false;
  for (const JsonValue &Family : Corpus->get("families")->elements())
    if (Family.get("family")->asString() == "mp") {
      ASSERT_NE(Family.get("empirical"), nullptr);
      EXPECT_EQ(Family.get("empirical")->get("observed")->asNumber(), 1);
      FoundEmpirical = true;
    }
  EXPECT_TRUE(FoundEmpirical);
}

TEST(Verdict, HostReferenceModelMatchesHost) {
  const Model &M = hostReferenceModel();
#if defined(__x86_64__)
  EXPECT_EQ(M.name(), "TSO");
  EXPECT_STREQ(hostArchName(), "x86_64");
#else
  EXPECT_FALSE(M.name().empty());
#endif
}
