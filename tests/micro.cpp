//===- micro.cpp - Tests for the Sec. 5 micro-event semantics ----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validates the explicit instruction semantics: iico shapes for every
/// instruction kind (the Sec. 5 diagrams), rf-reg, dd-reg, and — the
/// headline — that the micro-event derivation of addr/data/ctrl/ctrl+cfence
/// (Fig. 22) agrees with the compiler's taint analysis on the entire
/// figure catalogue and generated batteries.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "litmus/Catalog.h"
#include "litmus/MicroSemantics.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

LitmusTest parseOrDie(const char *Text) {
  auto Test = parseLitmus(Text);
  EXPECT_TRUE(static_cast<bool>(Test)) << Test.message();
  return Test.take();
}

unsigned countKind(const MicroGraph &Graph, MicroKind Kind) {
  unsigned Count = 0;
  for (const MicroEvent &E : Graph.events())
    Count += E.Kind == Kind;
  return Count;
}

const MicroEvent *findKind(const MicroGraph &Graph, MicroKind Kind) {
  for (const MicroEvent &E : Graph.events())
    if (E.Kind == Kind)
      return &E;
  return nullptr;
}

} // namespace

//===----------------------------------------------------------------------===//
// Per-instruction expansions (the Sec. 5 diagrams).
//===----------------------------------------------------------------------===//

TEST(Micro, LoadExpansion) {
  // "lwz r2,0(r1)": address register read -> memory read -> register
  // write.
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  ld r2, x[r1]
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  EXPECT_EQ(Graph.events().size(), 3u);
  const MicroEvent *Mem = findKind(Graph, MicroKind::MemRead);
  const MicroEvent *AddrIn = findKind(Graph, MicroKind::RegRead);
  const MicroEvent *Out = findKind(Graph, MicroKind::RegWrite);
  ASSERT_TRUE(Mem && AddrIn && Out);
  EXPECT_EQ(AddrIn->Port, MicroPort::Address);
  EXPECT_TRUE(Graph.iico().test(AddrIn->Id, Mem->Id));
  EXPECT_TRUE(Graph.iico().test(Mem->Id, Out->Id));
  EXPECT_EQ(Out->Reg, 2);
}

TEST(Micro, StoreExpansion) {
  // "stw r1,0(r2)": value and address reads feed the memory write.
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  st x[r2], r1
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  EXPECT_EQ(Graph.events().size(), 3u);
  const MicroEvent *Mem = findKind(Graph, MicroKind::MemWrite);
  ASSERT_TRUE(Mem);
  unsigned IntoMem = 0;
  for (const MicroEvent &E : Graph.events())
    if (Graph.iico().test(E.Id, Mem->Id))
      ++IntoMem;
  EXPECT_EQ(IntoMem, 2u) << "both register reads feed the write";
}

TEST(Micro, XorExpansion) {
  // "xor r9,r1,r1": two reads of r1, one write of r9.
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  xor r9, r1, r1
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  EXPECT_EQ(countKind(Graph, MicroKind::RegRead), 2u);
  EXPECT_EQ(countKind(Graph, MicroKind::RegWrite), 1u);
}

TEST(Micro, BranchExpandsThroughConditionRegister) {
  // "cmpwi r1; bne": the comparison writes CR0, the branch reads it.
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  beq r1
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  EXPECT_EQ(Graph.events().size(), 4u);
  const MicroEvent *Branch = findKind(Graph, MicroKind::Branch);
  ASSERT_TRUE(Branch);
  // CR0 write rf-regs into the CR0 read.
  bool FoundCr0Edge = false;
  for (auto [From, To] : Graph.rfReg().pairs()) {
    if (Graph.events()[From].Reg == ConditionRegister &&
        Graph.events()[To].Reg == ConditionRegister)
      FoundCr0Edge = true;
  }
  EXPECT_TRUE(FoundCr0Edge);
  // dd-reg reaches the branch from the condition input.
  Relation Dd = Graph.ddReg();
  const MicroEvent *CondIn = nullptr;
  for (const MicroEvent &E : Graph.events())
    if (E.Kind == MicroKind::RegRead && E.Reg == 1)
      CondIn = &E;
  ASSERT_TRUE(CondIn);
  EXPECT_TRUE(Dd.test(CondIn->Id, Branch->Id));
}

TEST(Micro, RfRegTakesLatestWrite) {
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  mov r1, #1
  mov r1, #2
  mov r2, r1
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  // The read of r1 (instruction 2) must take from the second mov.
  const MicroEvent *Read = nullptr;
  for (const MicroEvent &E : Graph.events())
    if (E.Kind == MicroKind::RegRead && E.Reg == 1)
      Read = &E;
  ASSERT_TRUE(Read);
  unsigned Sources = 0;
  for (auto [From, To] : Graph.rfReg().pairs())
    if (To == Read->Id) {
      ++Sources;
      EXPECT_EQ(Graph.events()[From].InstrIndex, 1)
          << "must read from the po-latest write";
    }
  EXPECT_EQ(Sources, 1u);
}

TEST(Micro, InitialRegisterReadHasNoSource) {
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  mov r2, r1
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  EXPECT_TRUE(Graph.rfReg().empty());
}

TEST(Micro, DdRegCutsAtMemory) {
  // Sec. 5.2: dd-reg flows through registers and ALU ops but not through
  // memory: a load's output depends on the load, not on what fed the
  // load's address.
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  ld r1, x
  xor r2, r1, r1
  ld r3, y[r2]
  st z, r3
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  MicroDeps Deps = deriveDependencies(*Compiled);
  const Execution &Skel = Compiled->skeleton();
  auto T0 = Skel.threadEvents(0);
  ASSERT_EQ(T0.size(), 3u);
  EXPECT_TRUE(Deps.Addr.test(T0[0], T0[1])) << "Rx addr-> Ry";
  EXPECT_TRUE(Deps.Data.test(T0[1], T0[2])) << "Ry data-> Wz";
  EXPECT_FALSE(Deps.Data.test(T0[0], T0[2]))
      << "dd-reg must not pass through the second load";
}

TEST(Micro, ToStringRendersDiagram) {
  LitmusTest Test = parseOrDie(R"(
Power t
P0:
  ld r2, x[r1]
)");
  MicroGraph Graph = MicroGraph::build(Test, 0);
  std::string Text = Graph.toString();
  EXPECT_NE(Text.find("Rx"), std::string::npos);
  EXPECT_NE(Text.find("Wr2"), std::string::npos);
  EXPECT_NE(Text.find("iico"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Fig. 22 reference vs the compiler's taint analysis.
//===----------------------------------------------------------------------===//

class MicroVsTaintTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MicroVsTaintTest, CatalogueAgreement) {
  const CatalogEntry &Entry = figureCatalog()[GetParam()];
  auto Compiled = CompiledTest::compile(Entry.Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  MicroDeps Deps = deriveDependencies(*Compiled);
  const Execution &Skel = Compiled->skeleton();
  EXPECT_EQ(Deps.Addr, Skel.Addr) << Entry.Test.Name;
  EXPECT_EQ(Deps.Data, Skel.Data) << Entry.Test.Name;
  EXPECT_EQ(Deps.Ctrl, Skel.Ctrl) << Entry.Test.Name;
  EXPECT_EQ(Deps.CtrlCfence, Skel.CtrlCfence) << Entry.Test.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Figures, MicroVsTaintTest,
    ::testing::Range<size_t>(0, figureCatalog().size()));

TEST(MicroVsTaint, PowerBatteryAgreement) {
  for (const LitmusTest &Test : generateBattery(Arch::Power, 20)) {
    auto Compiled = CompiledTest::compile(Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Test.Name;
    MicroDeps Deps = deriveDependencies(*Compiled);
    const Execution &Skel = Compiled->skeleton();
    EXPECT_EQ(Deps.Addr, Skel.Addr) << Test.Name;
    EXPECT_EQ(Deps.Data, Skel.Data) << Test.Name;
    EXPECT_EQ(Deps.Ctrl, Skel.Ctrl) << Test.Name;
    EXPECT_EQ(Deps.CtrlCfence, Skel.CtrlCfence) << Test.Name;
  }
}

TEST(MicroVsTaint, ArmBatteryAgreement) {
  for (const LitmusTest &Test : generateBattery(Arch::ARM, 20)) {
    auto Compiled = CompiledTest::compile(Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Test.Name;
    MicroDeps Deps = deriveDependencies(*Compiled);
    const Execution &Skel = Compiled->skeleton();
    EXPECT_EQ(Deps.Addr, Skel.Addr) << Test.Name;
    EXPECT_EQ(Deps.Ctrl, Skel.Ctrl) << Test.Name;
    EXPECT_EQ(Deps.CtrlCfence, Skel.CtrlCfence) << Test.Name;
  }
}
