//===- model.cpp - Tests for the axiomatic models ---------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The heart of the reproduction: every documented verdict of the paper's
/// figure catalogue must be reproduced by the corresponding model, Lemma 4.1
/// must hold against the reference SC/TSO formulations, and the ppo/prop
/// building blocks must behave as Figs. 17/18/25 prescribe.
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "litmus/Parser.h"
#include "model/HwModel.h"
#include "model/Registry.h"
#include "model/SimpleModels.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

LitmusTest parseOrDie(const char *Text) {
  auto Test = parseLitmus(Text);
  EXPECT_TRUE(static_cast<bool>(Test)) << Test.message();
  return Test.take();
}

} // namespace

//===----------------------------------------------------------------------===//
// The figure catalogue: one parameterised test per (entry, model) pair.
//===----------------------------------------------------------------------===//

struct CatalogCase {
  size_t EntryIndex;
  std::string ModelName;
  bool ExpectedAllowed;
};

class CatalogVerdictTest : public ::testing::TestWithParam<CatalogCase> {};

TEST_P(CatalogVerdictTest, MatchesPaper) {
  const CatalogCase &Case = GetParam();
  const CatalogEntry &Entry = figureCatalog()[Case.EntryIndex];
  const Model *M = modelByName(Case.ModelName);
  ASSERT_NE(M, nullptr) << "unknown model " << Case.ModelName;
  SimulationResult Result = simulate(Entry.Test, *M);
  EXPECT_EQ(Result.ConditionReachable, Case.ExpectedAllowed)
      << Entry.Test.Name << " under " << Case.ModelName << " ("
      << Entry.Figure << ": " << Entry.PaperVerdict << ")";
}

static std::vector<CatalogCase> allCatalogCases() {
  std::vector<CatalogCase> Cases;
  const auto &Catalog = figureCatalog();
  for (size_t I = 0; I < Catalog.size(); ++I)
    for (const auto &[ModelName, Allowed] : Catalog[I].Expected)
      Cases.push_back({I, ModelName, Allowed});
  return Cases;
}

static std::string catalogCaseName(
    const ::testing::TestParamInfo<CatalogCase> &Info) {
  const CatalogEntry &Entry = figureCatalog()[Info.param.EntryIndex];
  std::string Name = Entry.Test.Name + "_" + Info.param.ModelName;
  for (char &C : Name)
    if (!std::isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(Figures, CatalogVerdictTest,
                         ::testing::ValuesIn(allCatalogCases()),
                         catalogCaseName);

//===----------------------------------------------------------------------===//
// Lemma 4.1: the SC and TSO instances agree with the reference definitions
// on every candidate execution of the catalogue tests.
//===----------------------------------------------------------------------===//

class Lemma41Test : public ::testing::TestWithParam<size_t> {};

TEST_P(Lemma41Test, ScAndTsoMatchReferences) {
  const CatalogEntry &Entry = figureCatalog()[GetParam()];
  auto Compiled = CompiledTest::compile(Entry.Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  ScModel Sc;
  TsoModel Tso;
  unsigned Checked = 0;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    EXPECT_EQ(Sc.allows(Cand.Exe), isScReference(Cand.Exe))
        << "SC disagreement on " << Entry.Test.Name << "\n"
        << Cand.Exe.toString();
    EXPECT_EQ(Tso.allows(Cand.Exe), isTsoReference(Cand.Exe))
        << "TSO disagreement on " << Entry.Test.Name << "\n"
        << Cand.Exe.toString();
    ++Checked;
    return true;
  });
  EXPECT_GT(Checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Figures, Lemma41Test,
    ::testing::Range<size_t>(0, figureCatalog().size()));

//===----------------------------------------------------------------------===//
// Model hierarchy properties over the whole catalogue.
//===----------------------------------------------------------------------===//

class HierarchyTest : public ::testing::TestWithParam<size_t> {};

namespace {

/// True when the test only uses fences TSO understands (mfence): only then
/// is "TSO-allowed implies Power-allowed" meaningful, since TSO ignores
/// Power/ARM fences and would under-constrain fenced tests.
bool usesOnlyTsoFences(const LitmusTest &Test) {
  for (const ThreadCode &Thread : Test.Threads)
    for (const Instruction &Instr : Thread)
      if (Instr.Op == Opcode::Fence && Instr.FenceName != fence::MFence)
        return false;
  return true;
}

} // namespace

TEST_P(HierarchyTest, ScStrongerThanTsoStrongerThanPower) {
  const CatalogEntry &Entry = figureCatalog()[GetParam()];
  auto Compiled = CompiledTest::compile(Entry.Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Model &Sc = *modelByName("SC");
  const Model &Tso = *modelByName("TSO");
  const Model &Power = *modelByName("Power");
  const Model &ArmLlh = *modelByName("ARM llh");
  const Model &Arm = *modelByName("ARM");
  bool TsoComparable = usesOnlyTsoFences(Entry.Test);
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    // SC-allowed => TSO-allowed => Power-allowed: the models weaken.
    if (Sc.allows(Cand.Exe)) {
      EXPECT_TRUE(Tso.allows(Cand.Exe)) << Entry.Test.Name;
    }
    if (TsoComparable && Tso.allows(Cand.Exe)) {
      EXPECT_TRUE(Power.allows(Cand.Exe)) << Entry.Test.Name;
    }
    // ARM weakens ARM's SC-per-location into llh.
    if (Arm.allows(Cand.Exe)) {
      EXPECT_TRUE(ArmLlh.allows(Cand.Exe)) << Entry.Test.Name;
    }
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Figures, HierarchyTest,
    ::testing::Range<size_t>(0, figureCatalog().size()));

//===----------------------------------------------------------------------===//
// ppo building blocks (Fig. 25).
//===----------------------------------------------------------------------===//

namespace {

/// Compiles and returns the unique candidate matching the exists-condition,
/// to inspect relations on the paper's intended execution witness.
Candidate witnessOf(const LitmusTest &Test) {
  auto Compiled = CompiledTest::compile(Test);
  EXPECT_TRUE(static_cast<bool>(Compiled));
  Candidate Witness;
  bool Found = false;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (Cand.Consistent && Cand.Out.satisfies(Test.Final) && !Found) {
      Witness = Cand;
      Found = true;
    }
    return true;
  });
  EXPECT_TRUE(Found) << "no witness candidate for " << Test.Name;
  return Witness;
}

} // namespace

TEST(Ppo, AddressDependencyPreservesReadReadOnPower) {
  LitmusTest Test = parseOrDie(R"(
Power addrppo
P0:
  st x, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=0 /\ 1:r3=1)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Ppo = Power.ppo(Witness.Exe);
  auto T1 = Witness.Exe.threadEvents(1);
  ASSERT_EQ(T1.size(), 2u);
  EXPECT_TRUE(Ppo.test(T1[0], T1[1]));
}

TEST(Ppo, PlainPoReadReadNotPreservedOnPower) {
  LitmusTest Test = parseOrDie(R"(
Power noppo
P0:
  st x, #1
P1:
  ld r1, y
  ld r3, x
exists (1:r1=0 /\ 1:r3=1)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Ppo = Power.ppo(Witness.Exe);
  auto T1 = Witness.Exe.threadEvents(1);
  EXPECT_FALSE(Ppo.test(T1[0], T1[1]));
}

TEST(Ppo, CtrlPreservesReadWriteButNotReadRead) {
  LitmusTest Test = parseOrDie(R"(
Power ctrlppo
P0:
  ld r1, y
  beq r1
  st x, #1
  ld r2, z
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Ppo = Power.ppo(Witness.Exe);
  auto T0 = Witness.Exe.threadEvents(0);
  ASSERT_EQ(T0.size(), 3u);
  EXPECT_TRUE(Ppo.test(T0[0], T0[1]))
      << "ctrl to a write must be preserved";
  EXPECT_FALSE(Ppo.test(T0[0], T0[2]))
      << "ctrl to a read needs a control fence";
}

TEST(Ppo, CtrlIsyncPreservesReadRead) {
  LitmusTest Test = parseOrDie(R"(
Power ctrlisyncppo
P0:
  ld r1, y
  beq r1
  isync
  ld r2, z
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Ppo = Power.ppo(Witness.Exe);
  auto T0 = Witness.Exe.threadEvents(0);
  EXPECT_TRUE(Ppo.test(T0[0], T0[1]));
}

TEST(Ppo, PpoOnlyRelatesReadsToAnything) {
  // ppo = RR(ii) | RW(ic): sources are always reads.
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    HwModel Power(HwConfig::power());
    const Execution &Skel = Compiled->skeleton();
    // ppo needs rf/co to evaluate rdw/detour; use the first candidate.
    bool Done = false;
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (Done || !Cand.Consistent)
        return true;
      Done = true;
      for (auto [From, To] : Power.ppo(Cand.Exe).pairs()) {
        EXPECT_TRUE(Cand.Exe.event(From).isRead())
            << Entry.Test.Name << ": ppo source must be a read";
        EXPECT_EQ(Cand.Exe.event(From).Thread, Cand.Exe.event(To).Thread)
            << Entry.Test.Name << ": ppo is per-thread";
      }
      return true;
    });
    (void)Skel;
  }
}

//===----------------------------------------------------------------------===//
// Fence semantics (Fig. 17).
//===----------------------------------------------------------------------===//

TEST(Fences, LwsyncExcludesWriteReadPairs) {
  LitmusTest Test = parseOrDie(R"(
Power lwsyncwr
P0:
  st x, #1
  lwsync
  ld r1, y
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Light = Power.lightFence(Witness.Exe);
  auto T0 = Witness.Exe.threadEvents(0);
  EXPECT_FALSE(Light.test(T0[0], T0[1]))
      << "lwsync does not order write->read";
  // But the raw fence relation still records the pair (footnote 2).
  EXPECT_TRUE(Witness.Exe.fenceRelation("lwsync").test(T0[0], T0[1]));
}

TEST(Fences, SyncOrdersEverything) {
  LitmusTest Test = parseOrDie(R"(
Power syncwr
P0:
  st x, #1
  sync
  ld r1, y
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  auto T0 = Witness.Exe.threadEvents(0);
  EXPECT_TRUE(Power.fullFence(Witness.Exe).test(T0[0], T0[1]));
}

TEST(Fences, EieioOnlyOrdersWriteWrite) {
  LitmusTest Test = parseOrDie(R"(
Power eieiomixed
P0:
  st x, #1
  eieio
  st y, #1
  eieio
  ld r1, z
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Power(HwConfig::power());
  Relation Light = Power.lightFence(Witness.Exe);
  auto T0 = Witness.Exe.threadEvents(0);
  ASSERT_EQ(T0.size(), 3u);
  EXPECT_TRUE(Light.test(T0[0], T0[1])) << "eieio orders write->write";
  EXPECT_FALSE(Light.test(T0[1], T0[2])) << "eieio ignores write->read";
  EXPECT_FALSE(Light.test(T0[0], T0[2]));
}

TEST(Fences, DmbStOnlyOrdersWriteWrite) {
  LitmusTest Test = parseOrDie(R"(
ARM dmbst
P0:
  st x, #1
  dmb.st
  st y, #1
  dmb.st
  ld r1, z
exists (0:r1=0)
)");
  Candidate Witness = witnessOf(Test);
  HwModel Arm(HwConfig::arm());
  Relation Full = Arm.fullFence(Witness.Exe);
  auto T0 = Witness.Exe.threadEvents(0);
  EXPECT_TRUE(Full.test(T0[0], T0[1]));
  EXPECT_FALSE(Full.test(T0[1], T0[2]));
}

//===----------------------------------------------------------------------===//
// Axiom classification (Verdict::letters, used by Table VIII).
//===----------------------------------------------------------------------===//

TEST(Verdicts, LettersNameViolatedAxioms) {
  // An mp witness under TSO violates OBSERVATION and/or PROPAGATION but
  // not SC PER LOCATION.
  LitmusTest Test = parseOrDie(R"(
TSO mp
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)");
  Candidate Witness = witnessOf(Test);
  Verdict V = modelByName("TSO")->check(Witness.Exe);
  EXPECT_FALSE(V.Allowed);
  EXPECT_FALSE(V.violates(Axiom::ScPerLocation));
  EXPECT_FALSE(V.letters().empty());
}

TEST(Verdicts, AllowedHasNoLetters) {
  LitmusTest Test = parseOrDie(R"(
Power mp
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)");
  Candidate Witness = witnessOf(Test);
  Verdict V = modelByName("Power")->check(Witness.Exe);
  EXPECT_TRUE(V.Allowed);
  EXPECT_EQ(V.letters(), "");
}

//===----------------------------------------------------------------------===//
// Registry.
//===----------------------------------------------------------------------===//

TEST(Registry, AllModelsPresent) {
  EXPECT_EQ(allModels().size(), 9u);
  for (const char *Name : {"SC", "TSO", "PSO", "RMO", "C++RA", "Power",
                           "ARM", "Power-ARM", "ARM llh"})
    EXPECT_NE(modelByName(Name), nullptr) << Name;
  EXPECT_EQ(modelByName("bogus"), nullptr);
}

TEST(Registry, DefaultModelPerArch) {
  EXPECT_EQ(modelFor(Arch::SC).name(), "SC");
  EXPECT_EQ(modelFor(Arch::TSO).name(), "TSO");
  EXPECT_EQ(modelFor(Arch::Power).name(), "Power");
  EXPECT_EQ(modelFor(Arch::ARM).name(), "ARM");
  EXPECT_EQ(modelFor(Arch::CppRA).name(), "C++RA");
}

//===----------------------------------------------------------------------===//
// Simulator bookkeeping.
//===----------------------------------------------------------------------===//

TEST(Simulator, CandidateCountsAreConsistent) {
  const CatalogEntry *Entry = catalogEntry("mp+lwsync+addr");
  ASSERT_NE(Entry, nullptr);
  SimulationResult R = simulate(Entry->Test, *modelByName("Power"));
  EXPECT_EQ(R.CandidatesTotal, 4ull);
  EXPECT_LE(R.CandidatesAllowed, R.CandidatesConsistent);
  EXPECT_LE(R.CandidatesConsistent, R.CandidatesTotal);
  EXPECT_FALSE(R.AllowedOutcomes.empty());
  EXPECT_STREQ(R.verdict(), "Forbid");
}

TEST(Simulator, ScAllowsOnlyInterleavings) {
  // On sb, SC allows exactly 3 of the 4 outcomes (both-zero excluded).
  const CatalogEntry *Entry = catalogEntry("sb");
  ASSERT_NE(Entry, nullptr);
  SimulationResult R = simulate(Entry->Test, *modelByName("SC"));
  EXPECT_EQ(R.AllowedOutcomes.size(), 3u);
  SimulationResult RTso = simulate(Entry->Test, *modelByName("TSO"));
  EXPECT_EQ(RTso.AllowedOutcomes.size(), 4u);
}

//===----------------------------------------------------------------------===//
// The Sparc siblings (Sec. 4.9 instantiation exercise).
//===----------------------------------------------------------------------===//

TEST(SparcSiblings, Registered) {
  ASSERT_NE(modelByName("PSO"), nullptr);
  ASSERT_NE(modelByName("RMO"), nullptr);
  EXPECT_EQ(allModels().size(), 9u);
}

TEST(SparcSiblings, PsoAllowsStoreReorderingButKeepsMpReads) {
  // 2+2w (write-write reordering) is allowed on PSO, forbidden on TSO.
  const CatalogEntry *TwoW = catalogEntry("2+2w");
  ASSERT_NE(TwoW, nullptr);
  EXPECT_TRUE(allowedBy(TwoW->Test, *modelByName("PSO")));
  EXPECT_FALSE(allowedBy(TwoW->Test, *modelByName("TSO")));
  // mp is allowed on PSO too (the writes race ahead) but read pairs stay
  // ordered: lb is still forbidden.
  const CatalogEntry *Mp = catalogEntry("mp");
  ASSERT_NE(Mp, nullptr);
  EXPECT_TRUE(allowedBy(Mp->Test, *modelByName("PSO")));
  const CatalogEntry *Lb = catalogEntry("lb");
  ASSERT_NE(Lb, nullptr);
  EXPECT_FALSE(allowedBy(Lb->Test, *modelByName("PSO")));
}

TEST(SparcSiblings, RmoKeepsOnlyDependencies) {
  // Bare lb is allowed on RMO; with dependencies it is forbidden.
  EXPECT_TRUE(allowedBy(catalogEntry("lb")->Test, *modelByName("RMO")));
  EXPECT_FALSE(
      allowedBy(catalogEntry("lb+addrs")->Test, *modelByName("RMO")));
  // RMO officially allows load-load hazards (Sec. 4.9).
  EXPECT_TRUE(allowedBy(catalogEntry("coRR")->Test, *modelByName("RMO")));
}

TEST(SparcSiblings, WeakeningChain) {
  // Per candidate: TSO-allowed => PSO-allowed => RMO-allowed, on
  // fence-free catalogue tests.
  for (const CatalogEntry &Entry : figureCatalog()) {
    bool HasFences = false;
    for (const ThreadCode &Thread : Entry.Test.Threads)
      for (const Instruction &Instr : Thread)
        if (Instr.Op == Opcode::Fence)
          HasFences = true;
    if (HasFences)
      continue;
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (!Cand.Consistent)
        return true;
      if (modelByName("TSO")->allows(Cand.Exe)) {
        EXPECT_TRUE(modelByName("PSO")->allows(Cand.Exe))
            << Entry.Test.Name;
      }
      if (modelByName("PSO")->allows(Cand.Exe)) {
        EXPECT_TRUE(modelByName("RMO")->allows(Cand.Exe))
            << Entry.Test.Name;
      }
      return true;
    });
  }
}
