//===- witness.cpp - Witness/provenance layer tests -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the witness layer (docs/explain.md): every verdict a witness
/// backs must re-validate against a genuinely reconstructed execution, the
/// serializations must round-trip, and sweep reports must stay
/// byte-identical when capture is off.
///
//===----------------------------------------------------------------------===//

#include "campaign/Merge.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "litmus/Compiler.h"
#include "model/Model.h"
#include "model/Registry.h"
#include "obs/Witness.h"
#include "sweep/ReportIO.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <map>
#include <regex>
#include <set>
#include <string>
#include <vector>

using namespace cats;

namespace {

/// Rebuilds the concrete execution a witness snapshotted: the consistent
/// candidate with the witness's outcome whose rf and co agree with every
/// rf/co edge the witness drew. The rf edges pin the full read-from map
/// (rf is a function on reads and the witness lists all of it) and the
/// reduced co edges pin each per-location total order by its successor
/// chain, so at most one candidate matches.
bool reconstructExecution(const CompiledTest &Compiled, const obs::Witness &W,
                          Execution &ExeOut, Outcome &OutOut) {
  std::vector<LabeledEdge> RfEdges, CoEdges;
  for (const LabeledEdge &E : W.Edges) {
    if (E.Label == "rf")
      RfEdges.push_back(E);
    else if (E.Label == "co")
      CoEdges.push_back(E);
  }
  bool Found = false;
  forEachCandidate(Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent || Cand.Out.key() != W.Outcome)
      return true;
    for (const LabeledEdge &E : RfEdges)
      if (!Cand.Exe.Rf.test(E.From, E.To))
        return true;
    for (const LabeledEdge &E : CoEdges)
      if (!Cand.Exe.Co.test(E.From, E.To))
        return true;
    ExeOut = Cand.Exe;
    OutOut = Cand.Out;
    Found = true;
    return false;
  });
  return Found;
}

/// Does the derived relation named by \p Label contain (From, To) on
/// \p Exe under \p M? Unknown labels fail the test.
bool labelHolds(const std::string &Label, EventId From, EventId To,
                const Execution &Exe, const Model &M) {
  if (Label == "rf")
    return Exe.Rf.test(From, To);
  if (Label == "co")
    return Exe.Co.test(From, To);
  if (Label == "fr")
    return Exe.fr().test(From, To);
  if (Label == "po")
    return Exe.Po.test(From, To);
  if (Label == "po-loc")
    return Exe.poLoc().test(From, To);
  if (Label == "ppo")
    return M.ppo(Exe).test(From, To);
  if (Label == "prop")
    return M.prop(Exe).test(From, To);
  if (Label == "fence")
    return M.fences(Exe).test(From, To);
  if (Label.rfind("fence:", 0) == 0)
    return Exe.fenceRelation(Label.substr(6)).test(From, To) &&
           M.fences(Exe).test(From, To);
  ADD_FAILURE() << "unknown cycle edge label '" << Label << "'";
  return false;
}

/// Checks that every cycle edge lies in the relation the named axiom
/// constrains: po-loc | com for SC PER LOCATION (minus read-read pairs
/// under llh), hb for NO THIN AIR, the fre; prop; hb* shape for
/// OBSERVATION, co | prop for PROPAGATION.
void expectCycleInAxiomRelation(const obs::Witness &W, const Execution &Exe,
                                const Model &M) {
  const std::string Where = W.Test + " @ " + W.Model;
  if (W.Axiom == "sc-per-location") {
    const Relation PoLoc = Exe.poLoc();
    const Relation Com = Exe.com();
    const bool Llh = M.style().AllowLoadLoadHazard;
    for (const LabeledEdge &E : W.Cycle) {
      const bool InPoLoc =
          PoLoc.test(E.From, E.To) &&
          !(Llh && Exe.event(E.From).isRead() && Exe.event(E.To).isRead());
      EXPECT_TRUE(InPoLoc || Com.test(E.From, E.To))
          << Where << ": " << E.Label << " edge outside po-loc | com";
    }
  } else if (W.Axiom == "no-thin-air") {
    const Relation Hb = M.happensBefore(Exe);
    for (const LabeledEdge &E : W.Cycle)
      EXPECT_TRUE(Hb.test(E.From, E.To))
          << Where << ": " << E.Label << " edge outside hb";
  } else if (W.Axiom == "observation") {
    // fre; prop; hb* — the builder emits the decomposition in order.
    ASSERT_GE(W.Cycle.size(), 2u) << Where;
    EXPECT_TRUE(Exe.fre().test(W.Cycle[0].From, W.Cycle[0].To))
        << Where << ": first edge outside fre";
    EXPECT_TRUE(M.prop(Exe).test(W.Cycle[1].From, W.Cycle[1].To))
        << Where << ": second edge outside prop";
    const Relation Hb = M.happensBefore(Exe);
    for (size_t I = 2; I < W.Cycle.size(); ++I)
      EXPECT_TRUE(Hb.test(W.Cycle[I].From, W.Cycle[I].To))
          << Where << ": hb* leg edge outside hb";
  } else if (W.Axiom == "propagation") {
    const Relation Prop = M.prop(Exe);
    for (const LabeledEdge &E : W.Cycle)
      EXPECT_TRUE(Exe.Co.test(E.From, E.To) || Prop.test(E.From, E.To))
          << Where << ": " << E.Label << " edge outside co | prop";
  } else {
    ADD_FAILURE() << Where << ": unknown axiom '" << W.Axiom << "'";
  }
}

/// The cycle must be a closed labeled walk E0 -> ... -> E0. A single
/// self-loop edge is legal: prop can be reflexive, which alone makes
/// acyclic(co | prop) fail.
void expectClosedWalk(const obs::Witness &W) {
  ASSERT_GE(W.Cycle.size(), 1u) << W.Test << " @ " << W.Model;
  for (size_t I = 0; I + 1 < W.Cycle.size(); ++I)
    EXPECT_EQ(W.Cycle[I].To, W.Cycle[I + 1].From)
        << W.Test << " @ " << W.Model << ": cycle not chained at edge " << I;
  EXPECT_EQ(W.Cycle.back().To, W.Cycle.front().From)
      << W.Test << " @ " << W.Model << ": cycle not closed";
}

/// Collects witnesses for a handful of catalogue tests under every model
/// (shared by the serialization tests).
std::vector<obs::Witness> sampleWitnesses() {
  SimulateOptions Opts;
  Opts.Witness = true;
  std::vector<obs::Witness> All;
  size_t Taken = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    if (Taken++ >= 4)
      break;
    auto Compiled = CompiledTest::compile(Entry.Test);
    if (!Compiled)
      continue;
    MultiSimulationResult R = simulateAll(*Compiled, allModels(), Opts);
    for (obs::Witness &W : R.Witnesses)
      All.push_back(std::move(W));
  }
  return All;
}

} // namespace

//===----------------------------------------------------------------------===//
// Evidence re-validation over the figure catalogue
//===----------------------------------------------------------------------===//

// Every (catalogue test, model) pair gets exactly one witness backing the
// judge's verdict; forbidden pairs carry the killing axiom with a cycle
// that re-validates on a reconstructed execution, allowed pairs a
// replayable consistent execution realizing the final condition.
TEST(Witness, CatalogueEvidenceRevalidates) {
  SimulateOptions Opts;
  Opts.Witness = true;
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(Compiled) << Entry.Test.Name << ": " << Compiled.message();
    MultiSimulationResult Result = simulateAll(*Compiled, allModels(), Opts);

    // One witness per model, in some order, plus at most one
    // model-independent prune-cut.
    std::map<std::string, const obs::Witness *> ByModel;
    for (const obs::Witness &W : Result.Witnesses) {
      if (W.Kind == obs::WitnessKind::PruneCut) {
        EXPECT_EQ(W.Model, "*") << Entry.Test.Name;
        continue;
      }
      EXPECT_EQ(W.Test, Entry.Test.Name);
      EXPECT_TRUE(ByModel.emplace(W.Model, &W).second)
          << Entry.Test.Name << ": duplicate witness for " << W.Model;
    }
    for (const Model *M : allModels())
      ASSERT_TRUE(ByModel.count(M->name()))
          << Entry.Test.Name << ": no witness for " << M->name();

    for (const auto &[Name, W] : ByModel) {
      const Model *M = modelByName(Name);
      ASSERT_NE(M, nullptr) << Name;
      const SimulationResult *R = Result.forModel(Name);
      ASSERT_NE(R, nullptr) << Entry.Test.Name << " @ " << Name;

      // The witness backs exactly the judge's verdict.
      EXPECT_EQ(W->Verdict, R->verdict()) << Entry.Test.Name << " @ " << Name;

      switch (W->Kind) {
      case obs::WitnessKind::AllowedExecution: {
        EXPECT_EQ(W->Verdict, "Allow");
        EXPECT_TRUE(W->Axiom.empty());
        Execution Exe;
        Outcome Out;
        ASSERT_TRUE(reconstructExecution(*Compiled, *W, Exe, Out))
            << Entry.Test.Name << " @ " << Name
            << ": allowed witness does not match any consistent candidate";
        Exe.enableDerivedCache();
        // Replay: the execution is model-allowed and realizes the final
        // condition.
        EXPECT_TRUE(M->check(Exe).Allowed) << Entry.Test.Name << " @ " << Name;
        EXPECT_TRUE(Out.satisfies(Entry.Test.Final))
            << Entry.Test.Name << " @ " << Name;
        break;
      }
      case obs::WitnessKind::AxiomCycle: {
        EXPECT_EQ(W->Verdict, "Forbid");
        Execution Exe;
        Outcome Out;
        ASSERT_TRUE(reconstructExecution(*Compiled, *W, Exe, Out))
            << Entry.Test.Name << " @ " << Name
            << ": kill witness does not match any consistent candidate";
        Exe.enableDerivedCache();
        // The shown execution satisfies the final condition and the
        // named axiom is genuinely its first failing one.
        EXPECT_TRUE(Out.satisfies(Entry.Test.Final))
            << Entry.Test.Name << " @ " << Name;
        const Verdict V = M->check(Exe);
        ASSERT_FALSE(V.Allowed) << Entry.Test.Name << " @ " << Name;
        ASSERT_FALSE(V.Violated.empty());
        EXPECT_EQ(axiomName(V.Violated.front()), W->Axiom)
            << Entry.Test.Name << " @ " << Name;
        // The cycle is closed, every edge holds under its own label, and
        // the whole walk stays inside the axiom's relation.
        expectClosedWalk(*W);
        for (const LabeledEdge &E : W->Cycle)
          EXPECT_TRUE(labelHolds(E.Label, E.From, E.To, Exe, *M))
              << Entry.Test.Name << " @ " << Name << ": edge " << E.From
              << " -" << E.Label << "-> " << E.To << " not in its relation";
        expectCycleInAxiomRelation(*W, Exe, *M);
        break;
      }
      case obs::WitnessKind::UnreachableOutcome: {
        EXPECT_EQ(W->Verdict, "Forbid");
        EXPECT_TRUE(W->Cycle.empty());
        // Genuinely unreachable: no consistent outcome satisfies the
        // final condition, under any model.
        for (const Outcome &O : Result.ConsistentOutcomes)
          EXPECT_FALSE(O.satisfies(Entry.Test.Final))
              << Entry.Test.Name << ": outcome " << O.key()
              << " satisfies the condition, unreachable witness is wrong";
        break;
      }
      case obs::WitnessKind::PruneCut:
        FAIL() << "prune-cut witness escaped the model map";
      }
    }
  }
}

// The per-model results must agree with a plain witness-off sweep —
// capture must not change what the judge says.
TEST(Witness, CaptureDoesNotChangeVerdicts) {
  SimulateOptions On, Off;
  On.Witness = true;
  size_t Taken = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    if (Taken++ >= 8)
      break;
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(Compiled) << Entry.Test.Name;
    MultiSimulationResult A = simulateAll(*Compiled, allModels(), On);
    MultiSimulationResult B = simulateAll(*Compiled, allModels(), Off);
    ASSERT_EQ(A.PerModel.size(), B.PerModel.size());
    EXPECT_EQ(A.CandidatesTotal, B.CandidatesTotal);
    EXPECT_EQ(A.CandidatesConsistent, B.CandidatesConsistent);
    for (size_t I = 0; I < A.PerModel.size(); ++I) {
      EXPECT_EQ(A.PerModel[I].ConditionReachable,
                B.PerModel[I].ConditionReachable)
          << Entry.Test.Name << " @ " << A.PerModel[I].ModelName;
      EXPECT_EQ(A.PerModel[I].CandidatesAllowed,
                B.PerModel[I].CandidatesAllowed)
          << Entry.Test.Name << " @ " << A.PerModel[I].ModelName;
      EXPECT_EQ(A.PerModel[I].AllowedOutcomes, B.PerModel[I].AllowedOutcomes)
          << Entry.Test.Name << " @ " << A.PerModel[I].ModelName;
    }
    EXPECT_TRUE(B.Witnesses.empty()) << Entry.Test.Name;
  }
}

//===----------------------------------------------------------------------===//
// JSON round-trip (cats-witness/1)
//===----------------------------------------------------------------------===//

TEST(Witness, JsonRoundTrip) {
  const std::vector<obs::Witness> All = sampleWitnesses();
  ASSERT_FALSE(All.empty());
  for (const obs::Witness &W : All) {
    auto Back = obs::witnessFromJson(obs::witnessToJson(W));
    ASSERT_TRUE(Back) << W.Test << " @ " << W.Model << ": " << Back.message();
    EXPECT_EQ(Back->Test, W.Test);
    EXPECT_EQ(Back->Model, W.Model);
    EXPECT_EQ(Back->Verdict, W.Verdict);
    EXPECT_EQ(Back->Kind, W.Kind);
    EXPECT_EQ(Back->Axiom, W.Axiom);
    EXPECT_EQ(Back->Outcome, W.Outcome);
    ASSERT_EQ(Back->Events.size(), W.Events.size());
    for (size_t I = 0; I < W.Events.size(); ++I) {
      EXPECT_EQ(Back->Events[I].Id, W.Events[I].Id);
      EXPECT_EQ(Back->Events[I].Thread, W.Events[I].Thread);
      EXPECT_EQ(Back->Events[I].Desc, W.Events[I].Desc);
      EXPECT_EQ(Back->Events[I].Init, W.Events[I].Init);
    }
    EXPECT_EQ(Back->Edges, W.Edges);
    EXPECT_EQ(Back->Cycle, W.Cycle);
    // Serializing the round-tripped witness reproduces the document.
    EXPECT_EQ(obs::witnessToJson(*Back).dump(), obs::witnessToJson(W).dump());
  }

  // Section round-trip, schema tag included.
  JsonValue Section = obs::witnessSectionToJson(All);
  const JsonValue *Schema = Section.get("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), obs::WitnessSchema);
  auto BackAll = obs::witnessSectionFromJson(Section);
  ASSERT_TRUE(BackAll) << BackAll.message();
  ASSERT_EQ(BackAll->size(), All.size());
  for (size_t I = 0; I < All.size(); ++I)
    EXPECT_EQ(obs::witnessToJson((*BackAll)[I]).dump(),
              obs::witnessToJson(All[I]).dump());

  // A wrong schema tag is rejected.
  JsonValue Bad = obs::witnessSectionToJson(All);
  Bad.set("schema", "cats-witness/999");
  EXPECT_FALSE(obs::witnessSectionFromJson(Bad));
}

//===----------------------------------------------------------------------===//
// DOT structural validity
//===----------------------------------------------------------------------===//

// Balanced braces, and every edge endpoint is a declared node.
TEST(Witness, DotStructurallyValid) {
  const std::vector<obs::Witness> All = sampleWitnesses();
  ASSERT_FALSE(All.empty());
  const std::regex NodeDecl(R"re(\be(\d+)\s*\[label=)re");
  const std::regex EdgeDecl(R"re(\be(\d+)\s*->\s*e(\d+)\b)re");
  for (const obs::Witness &W : All) {
    const std::string Dot = obs::witnessToDot(W);
    SCOPED_TRACE(W.Test + " @ " + W.Model);
    ASSERT_EQ(Dot.rfind("digraph", 0), 0u);

    long Depth = 0;
    for (char C : Dot) {
      if (C == '{')
        ++Depth;
      else if (C == '}') {
        --Depth;
        EXPECT_GE(Depth, 0);
      }
    }
    EXPECT_EQ(Depth, 0) << "unbalanced braces";

    std::set<std::string> Declared;
    for (std::sregex_iterator It(Dot.begin(), Dot.end(), NodeDecl), End;
         It != End; ++It)
      Declared.insert((*It)[1].str());
    size_t EdgeCount = 0;
    for (std::sregex_iterator It(Dot.begin(), Dot.end(), EdgeDecl), End;
         It != End; ++It) {
      ++EdgeCount;
      EXPECT_TRUE(Declared.count((*It)[1].str()))
          << "edge tail e" << (*It)[1].str() << " undeclared";
      EXPECT_TRUE(Declared.count((*It)[2].str()))
          << "edge head e" << (*It)[2].str() << " undeclared";
    }
    // Every witness with events draws them; ones with edges draw edges.
    EXPECT_EQ(Declared.size(), W.Events.size());
    if (!W.Edges.empty() || !W.Cycle.empty())
      EXPECT_GT(EdgeCount, 0u);
    // The file stem is filesystem-safe.
    const std::string Stem = obs::witnessFileStem(W);
    EXPECT_FALSE(Stem.empty());
    EXPECT_EQ(Stem.find('/'), std::string::npos);
  }
}

//===----------------------------------------------------------------------===//
// Report byte-identity when capture is off
//===----------------------------------------------------------------------===//

TEST(Witness, ReportByteIdenticalWhenOff) {
  std::vector<LitmusTest> Tests;
  for (const CatalogEntry &Entry : figureCatalog()) {
    if (Tests.size() >= 6)
      break;
    Tests.push_back(Entry.Test);
  }
  const std::vector<SweepJob> Jobs = makeJobs(Tests, allModels());

  SweepOptions Off;
  Off.Jobs = 1;
  SweepOptions On = Off;
  On.Witness = true;

  const JsonValue JOff1 =
      zeroWallTimes(sweepReportToJson(SweepEngine(Off).run(Jobs)));
  const JsonValue JOff2 =
      zeroWallTimes(sweepReportToJson(SweepEngine(Off).run(Jobs)));
  // Deterministic, and no witness member at all when capture is off.
  EXPECT_EQ(JOff1.dump(), JOff2.dump());
  EXPECT_EQ(JOff1.get("witness"), nullptr);
  EXPECT_EQ(JOff1.dump().find("cats-witness"), std::string::npos);

  const JsonValue JOn =
      zeroWallTimes(sweepReportToJson(SweepEngine(On).run(Jobs)));
  const JsonValue *Section = JOn.get("witness");
  ASSERT_NE(Section, nullptr);
  const JsonValue *Schema = Section->get("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), obs::WitnessSchema);

  // The witness section is purely additive: dropping it recovers the
  // witness-off report byte for byte.
  JsonValue Stripped = JsonValue::object();
  for (const auto &[Key, Value] : JOn.members())
    if (Key != "witness")
      Stripped.set(Key, Value);
  EXPECT_EQ(Stripped.dump(), JOff1.dump());
}
