//===- sweep.cpp - The parallel shared-enumeration sweep engine ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the sweep subsystem: the shared-enumeration multi-model path must
/// agree exactly with a naive per-model reference on the whole catalogue,
/// results must be byte-identical for any worker count, and the JSON
/// report must round-trip through its own parser.
///
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"
#include "litmus/Compiler.h"
#include "model/Registry.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <thread>

using namespace cats;

namespace {

/// The legacy per-model algorithm, re-implemented here as an independent
/// reference: one full candidate enumeration per model, exactly what
/// simulate() did before the shared MultiModelChecker path existed.
SimulationResult naiveSimulate(const CompiledTest &Compiled, const Model &M) {
  SimulationResult Result;
  Result.TestName = Compiled.test().Name;
  Result.ModelName = M.name();
  const Condition &Final = Compiled.test().Final;
  forEachCandidate(Compiled, [&](const Candidate &Cand) {
    ++Result.CandidatesTotal;
    if (!Cand.Consistent)
      return true;
    ++Result.CandidatesConsistent;
    Result.ConsistentOutcomes.insert(Cand.Out);
    if (!M.allows(Cand.Exe))
      return true;
    ++Result.CandidatesAllowed;
    Result.AllowedOutcomes.insert(Cand.Out);
    if (Cand.Out.satisfies(Final))
      Result.ConditionReachable = true;
    return true;
  });
  return Result;
}

void expectSameResult(const SimulationResult &A, const SimulationResult &B,
                      const std::string &Context,
                      bool CompareConsistentOutcomes = true) {
  EXPECT_EQ(A.TestName, B.TestName) << Context;
  EXPECT_EQ(A.ModelName, B.ModelName) << Context;
  EXPECT_EQ(A.CandidatesTotal, B.CandidatesTotal) << Context;
  EXPECT_EQ(A.CandidatesConsistent, B.CandidatesConsistent) << Context;
  EXPECT_EQ(A.CandidatesAllowed, B.CandidatesAllowed) << Context;
  EXPECT_EQ(A.AllowedOutcomes, B.AllowedOutcomes) << Context;
  // Per-model entries of a multi-model sweep do not carry the shared
  // ConsistentOutcomes set; callers with such entries compare the shared
  // set on the MultiSimulationResult themselves.
  if (CompareConsistentOutcomes)
    EXPECT_EQ(A.ConsistentOutcomes, B.ConsistentOutcomes) << Context;
  EXPECT_EQ(A.ConditionReachable, B.ConditionReachable) << Context;
}

std::vector<LitmusTest> catalogueTests() {
  std::vector<LitmusTest> Out;
  for (const CatalogEntry &Entry : figureCatalog())
    Out.push_back(Entry.Test);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shared enumeration vs the legacy per-model reference
//===----------------------------------------------------------------------===//

TEST(MultiModel, MatchesNaivePerModelOnFullCatalogue) {
  const auto &Models = allModels();
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Entry.Test.Name;
    MultiSimulationResult Multi = simulateAll(*Compiled, Models);
    ASSERT_EQ(Multi.PerModel.size(), Models.size());
    for (size_t I = 0; I < Models.size(); ++I) {
      SimulationResult Ref = naiveSimulate(*Compiled, *Models[I]);
      EXPECT_EQ(Ref.ConsistentOutcomes, Multi.ConsistentOutcomes)
          << Entry.Test.Name;
      expectSameResult(Ref, Multi.PerModel[I],
                       Entry.Test.Name + " under " + Models[I]->name(),
                       /*CompareConsistentOutcomes=*/false);
    }
  }
}

TEST(MultiModel, SingleModelSimulateStillMatchesReference) {
  const Model &Power = *modelByName("Power");
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled)) << Entry.Test.Name;
    expectSameResult(naiveSimulate(*Compiled, Power),
                     simulate(*Compiled, Power), Entry.Test.Name);
  }
}

TEST(MultiModel, SharedFieldsComputedOnceAndMirrored) {
  const CatalogEntry *Entry = catalogEntry("mp");
  ASSERT_NE(Entry, nullptr);
  MultiSimulationResult Multi = simulateAll(Entry->Test, allModels());
  for (const SimulationResult &R : Multi.PerModel) {
    EXPECT_EQ(R.CandidatesTotal, Multi.CandidatesTotal);
    EXPECT_EQ(R.CandidatesConsistent, Multi.CandidatesConsistent);
    // The shared outcome set is NOT mirrored in a multi-model sweep:
    // copying it into every entry dominated take() on wide model lists.
    EXPECT_TRUE(R.ConsistentOutcomes.empty());
  }
  EXPECT_FALSE(Multi.ConsistentOutcomes.empty());
}

TEST(MultiModel, ForModelLookup) {
  const CatalogEntry *Entry = catalogEntry("sb");
  ASSERT_NE(Entry, nullptr);
  MultiSimulationResult Multi =
      simulateAll(Entry->Test, {modelByName("SC"), modelByName("TSO")});
  ASSERT_NE(Multi.forModel("TSO"), nullptr);
  EXPECT_EQ(Multi.forModel("TSO")->ModelName, "TSO");
  // sb is the classic TSO/SC separator: store buffering is visible on TSO.
  EXPECT_FALSE(Multi.forModel("SC")->ConditionReachable);
  EXPECT_TRUE(Multi.forModel("TSO")->ConditionReachable);
  EXPECT_EQ(Multi.forModel("Power"), nullptr);
}

//===----------------------------------------------------------------------===//
// Engine: determinism and error handling
//===----------------------------------------------------------------------===//

namespace {

/// Everything observable about a report except wall-clock times.
std::string reportSignature(const SweepReport &Report) {
  // Zero the timing fields so the JSON rendering is comparable across
  // runs and worker counts.
  SweepReport Scrubbed = Report;
  Scrubbed.WallSeconds = 0;
  Scrubbed.Jobs = 1;
  for (SweepTestResult &T : Scrubbed.Tests)
    T.WallSeconds = 0;
  return sweepReportToJson(Scrubbed).dump();
}

} // namespace

TEST(SweepEngine, DeterministicAcrossWorkerCounts) {
  const std::vector<SweepJob> Jobs = makeJobs(catalogueTests(), allModels());
  unsigned MaxWorkers = std::thread::hardware_concurrency();
  if (MaxWorkers == 0)
    MaxWorkers = 1;

  const std::string Baseline = reportSignature(SweepEngine({1}).run(Jobs));
  for (unsigned N : {2u, MaxWorkers}) {
    SweepEngine Engine(SweepOptions{N});
    EXPECT_EQ(reportSignature(Engine.run(Jobs)), Baseline)
        << "with " << N << " workers";
  }
}

TEST(SweepEngine, ResultsInSubmissionOrder) {
  std::vector<LitmusTest> Tests = catalogueTests();
  SweepReport Report =
      SweepEngine({4}).run(makeJobs(Tests, {modelByName("SC")}));
  ASSERT_EQ(Report.Tests.size(), Tests.size());
  for (size_t I = 0; I < Tests.size(); ++I)
    EXPECT_EQ(Report.Tests[I].TestName, Tests[I].Name);
}

TEST(SweepEngine, WorkerCountDefaultsToHardwareAndClamps) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  EXPECT_EQ(SweepEngine().workerCount(), Hw);
  EXPECT_EQ(SweepEngine({3}).workerCount(), std::min(3u, Hw));
  // CPU-bound sweeps never benefit from more workers than cores.
  EXPECT_EQ(SweepEngine({1000}).workerCount(), Hw);
}

TEST(SweepEngine, InvalidTestReportsErrorWithoutPoisoningTheBatch) {
  std::vector<LitmusTest> Tests = catalogueTests();
  // An x86 fence on a Power test fails validation.
  LitmusTest Bad = Tests.front();
  Bad.Name = "bad-fence";
  Bad.TargetArch = Arch::Power;
  Instruction Fence;
  Fence.Op = Opcode::Fence;
  Fence.FenceName = "mfence";
  Bad.Threads[0].push_back(Fence);
  Tests.insert(Tests.begin() + 1, Bad);

  SweepReport Report =
      SweepEngine({2}).run(makeJobs(Tests, {modelByName("Power")}));
  ASSERT_EQ(Report.Tests.size(), Tests.size());
  EXPECT_FALSE(Report.Tests[1].Error.empty());
  EXPECT_FALSE(Report.allOk());
  // Neighbours are unaffected.
  EXPECT_TRUE(Report.Tests[0].Error.empty());
  EXPECT_TRUE(Report.Tests[2].Error.empty());
  EXPECT_GT(Report.Tests[2].Result.CandidatesTotal, 0u);
}

//===----------------------------------------------------------------------===//
// JSON report schema round-trip
//===----------------------------------------------------------------------===//

TEST(SweepReportJson, SchemaRoundTrip) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(8);
  SweepReport Report = SweepEngine({2}).run(
      makeJobs(Tests, {modelByName("SC"), modelByName("Power")}));

  JsonValue Root = sweepReportToJson(Report);
  const std::string Text = Root.dump();
  auto Reparsed = JsonValue::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  // Value-level and byte-level round-trip.
  EXPECT_EQ(*Reparsed, Root);
  EXPECT_EQ(Reparsed->dump(), Text);

  // Schema spot checks against the in-memory report.
  ASSERT_NE(Root.get("schema"), nullptr);
  EXPECT_EQ(Root.get("schema")->asString(), "cats-sweep-report/1");
  EXPECT_EQ(Root.get("jobs")->asNumber(), Report.Jobs);
  const auto &TestsJson = Root.get("tests")->elements();
  ASSERT_EQ(TestsJson.size(), Report.Tests.size());
  for (size_t I = 0; I < TestsJson.size(); ++I) {
    const JsonValue &Entry = TestsJson[I];
    const SweepTestResult &T = Report.Tests[I];
    EXPECT_EQ(Entry.get("name")->asString(), T.TestName);
    EXPECT_EQ(Entry.get("candidates_total")->asNumber(),
              static_cast<double>(T.Result.CandidatesTotal));
    EXPECT_EQ(Entry.get("consistent_states")->elements().size(),
              T.Result.ConsistentOutcomes.size());
    const auto &ModelsJson = Entry.get("models")->elements();
    ASSERT_EQ(ModelsJson.size(), T.Result.PerModel.size());
    for (size_t J = 0; J < ModelsJson.size(); ++J) {
      const SimulationResult &R = T.Result.PerModel[J];
      EXPECT_EQ(ModelsJson[J].get("model")->asString(), R.ModelName);
      EXPECT_EQ(ModelsJson[J].get("verdict")->asString(), R.verdict());
      EXPECT_EQ(ModelsJson[J].get("allowed_states")->elements().size(),
                R.AllowedOutcomes.size());
    }
  }
}

TEST(SweepReportJson, ErrorEntriesCarryTheMessage) {
  // An x86 fence on a Power test fails validation.
  LitmusTest Bad = figureCatalog().front().Test;
  Bad.Name = "bad-fence";
  Bad.TargetArch = Arch::Power;
  Instruction Fence;
  Fence.Op = Opcode::Fence;
  Fence.FenceName = "mfence";
  Bad.Threads[0].push_back(Fence);
  SweepReport Report =
      SweepEngine({1}).run(makeJobs({Bad}, {modelByName("SC")}));
  ASSERT_EQ(Report.Tests.size(), 1u);
  ASSERT_FALSE(Report.Tests[0].Error.empty());
  JsonValue Root = sweepReportToJson(Report);
  const JsonValue *Entry = &Root.get("tests")->elements()[0];
  ASSERT_NE(Entry->get("error"), nullptr);
  EXPECT_EQ(Entry->get("error")->asString(), Report.Tests[0].Error);
  EXPECT_EQ(Entry->get("models"), nullptr);
}

//===----------------------------------------------------------------------===//
// The JSON library itself
//===----------------------------------------------------------------------===//

TEST(Json, ScalarsAndNesting) {
  auto V = JsonValue::parse(
      R"({"a": [1, -2.5, true, false, null], "b": {"c": "x\ny\"z\\"}})");
  ASSERT_TRUE(static_cast<bool>(V)) << V.message();
  ASSERT_TRUE(V->isObject());
  const auto &A = V->get("a")->elements();
  ASSERT_EQ(A.size(), 5u);
  EXPECT_EQ(A[0].asNumber(), 1);
  EXPECT_EQ(A[1].asNumber(), -2.5);
  EXPECT_TRUE(A[2].asBool());
  EXPECT_FALSE(A[3].asBool());
  EXPECT_TRUE(A[4].isNull());
  EXPECT_EQ(V->get("b")->get("c")->asString(), "x\ny\"z\\");
}

TEST(Json, DumpParsesBackEqual) {
  JsonValue Root = JsonValue::object();
  Root.set("name", "sweep");
  Root.set("count", 42u);
  Root.set("ratio", 0.125);
  Root.set("big", 123456789012345ull);
  Root.set("flag", true);
  JsonValue Arr = JsonValue::array();
  Arr.push(JsonValue());
  Arr.push("tab\there");
  Root.set("list", std::move(Arr));
  Root.set("empty_obj", JsonValue::object());
  Root.set("empty_arr", JsonValue::array());

  for (unsigned Indent : {0u, 2u, 4u}) {
    auto Back = JsonValue::parse(Root.dump(Indent));
    ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
    EXPECT_EQ(*Back, Root) << "indent " << Indent;
  }
  // Integral numbers print without a decimal point.
  EXPECT_NE(Root.dump(0).find("\"count\":42"), std::string::npos);
}

TEST(Json, ObjectPreservesInsertionOrderAndReplaces) {
  JsonValue Obj = JsonValue::object();
  Obj.set("z", 1);
  Obj.set("a", 2);
  Obj.set("z", 3);
  ASSERT_EQ(Obj.members().size(), 2u);
  EXPECT_EQ(Obj.members()[0].first, "z");
  EXPECT_EQ(Obj.members()[0].second.asNumber(), 3);
  EXPECT_EQ(Obj.members()[1].first, "a");
}

TEST(Json, ParseErrors) {
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("{\"a\": 1,}")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("[1, 2")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("\"unterminated")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("{\"a\" 1}")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("nul")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("1 2")));
  EXPECT_FALSE(static_cast<bool>(JsonValue::parse("\"bad \\q escape\"")));
  // Errors carry an offset.
  auto E = JsonValue::parse("[1, 2");
  EXPECT_NE(E.message().find("offset"), std::string::npos);
}
