//===- cat.cpp - Tests for the cat DSL interpreter ---------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser/evaluator unit tests, plus the headline cross-validation: the
/// shipped .cat files must agree with the native C++ models on every
/// candidate execution of the figure catalogue (Fig. 38 is exactly our
/// Power model).
///
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"
#include "cat/CatParser.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/HwModel.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;
using namespace cats::cat;

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(CatParser, ParsesFig38Skeleton) {
  auto File = parseCat(R"(
(* sc per location *) acyclic po-loc|rf|fr|co
let dp = addr|data
let rdw = po-loc & (fre;rfe)
let rec ii = ii0|ci|(ic;ci)|(ii;ii)
and ic = ic0|ii|cc|(ic;cc)|(ii;ic)
and ci = ci0|(ci;ii)|(cc;ci)
and cc = cc0|ci|(ci;ic)|(cc;cc)
let ii0 = dp
let ic0 = 0
let ci0 = ctrlisync
let cc0 = dp|po-loc|ctrl|(addr;po)
)",
                       "fig38");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  ASSERT_EQ(File->Statements.size(), 8u);
  EXPECT_EQ(File->Statements[0].Kind, StmtKind::Acyclic);
  EXPECT_EQ(File->Statements[3].Kind, StmtKind::LetRec);
  EXPECT_EQ(File->Statements[3].Bindings.size(), 4u);
}

TEST(CatParser, NestedComments) {
  auto File = parseCat("(* a (* nested *) comment *)\nlet x = po\n", "m");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  EXPECT_EQ(File->Statements.size(), 1u);
}

TEST(CatParser, UnterminatedCommentFails) {
  auto File = parseCat("(* oops\nlet x = po\n", "m");
  EXPECT_FALSE(static_cast<bool>(File));
}

TEST(CatParser, PostfixBindsTighterThanSeq) {
  auto File = parseCat("irreflexive fre;prop;hb* as obs\nlet prop = po\n"
                       "let hb = po\n",
                       "m");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  // fre;(prop;(hb*)): the check must be a Seq whose rightmost child is a
  // Star.
  const Expr &Check = *File->Statements[0].Check;
  EXPECT_EQ(Check.Kind, ExprKind::Seq);
  EXPECT_EQ(Check.Rhs->Kind, ExprKind::Star);
}

TEST(CatParser, PrecedenceUnionLoosest) {
  auto File = parseCat("let x = po-loc & fre;rfe | addr\n", "m");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  const Expr &Body = *File->Statements[0].Bindings[0].Body;
  // (po-loc & (fre;rfe)) | addr
  EXPECT_EQ(Body.Kind, ExprKind::Union);
  EXPECT_EQ(Body.Lhs->Kind, ExprKind::Inter);
  EXPECT_EQ(Body.Lhs->Rhs->Kind, ExprKind::Seq);
}

TEST(CatParser, AsLabels) {
  auto File = parseCat("acyclic po as my-check\n", "m");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  EXPECT_EQ(File->Statements[0].CheckName, "my-check");
}

TEST(CatParser, DirFilterParses) {
  auto File = parseCat("let ppo = RR(po)|RW(po)\n", "m");
  ASSERT_TRUE(static_cast<bool>(File)) << File.message();
  EXPECT_EQ(File->Statements[0].Bindings[0].Body->Kind, ExprKind::Union);
  EXPECT_EQ(File->Statements[0].Bindings[0].Body->Lhs->Kind,
            ExprKind::DirFilter);
}

TEST(CatParser, RejectsGarbage) {
  EXPECT_FALSE(static_cast<bool>(parseCat("let = po\n", "m")));
  EXPECT_FALSE(static_cast<bool>(parseCat("let x po\n", "m")));
  EXPECT_FALSE(static_cast<bool>(parseCat("acyclic (po\n", "m")));
  EXPECT_FALSE(static_cast<bool>(parseCat("frob po\n", "m")));
}

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

TEST(CatValidate, UnknownNameRejected) {
  auto M = CatModel::fromSource("let x = nonsense\n", "m");
  EXPECT_FALSE(static_cast<bool>(M));
  EXPECT_NE(M.message().find("nonsense"), std::string::npos);
}

TEST(CatValidate, RecGroupMembersVisible) {
  auto M = CatModel::fromSource(
      "let rec a = b|po\nand b = a|rf\nacyclic a\n", "m");
  EXPECT_TRUE(static_cast<bool>(M)) << M.message();
}

TEST(CatValidate, ForwardReferenceOutsideRecRejected) {
  auto M = CatModel::fromSource("let a = b\nlet b = po\n", "m");
  EXPECT_FALSE(static_cast<bool>(M));
}

//===----------------------------------------------------------------------===//
// Evaluation on a known execution
//===----------------------------------------------------------------------===//

namespace {

/// First consistent candidate of a catalogue test that satisfies its
/// final condition.
Candidate witnessOf(const char *TestName) {
  const CatalogEntry *Entry = catalogEntry(TestName);
  EXPECT_NE(Entry, nullptr) << TestName;
  auto Compiled = CompiledTest::compile(Entry->Test);
  EXPECT_TRUE(static_cast<bool>(Compiled));
  Candidate Witness;
  bool Found = false;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Found && Cand.Consistent &&
        Cand.Out.satisfies(Entry->Test.Final)) {
      Witness = Cand;
      Found = true;
    }
    return true;
  });
  EXPECT_TRUE(Found);
  return Witness;
}

} // namespace

TEST(CatEval, FixpointMatchesClosure) {
  // let rec r = po | (r;r) computes po+.
  auto M = CatModel::fromSource("let rec r = po|(r;r)\nacyclic r\n", "m");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  Candidate Witness = witnessOf("mp");
  auto R = M->evaluate("r", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(R)) << R.message();
  EXPECT_EQ(*R, Witness.Exe.Po.transitiveClosure());
}

TEST(CatEval, DirFilterSemantics) {
  auto M = CatModel::fromSource("let wr = WR(po)\nlet rr = RR(po)\n", "m");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  Candidate Witness = witnessOf("sb");
  auto Wr = M->evaluate("wr", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(Wr));
  EXPECT_EQ(*Wr, Witness.Exe.Po.restrict(Witness.Exe.writes(),
                                         Witness.Exe.reads()));
  auto Rr = M->evaluate("rr", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(Rr));
  EXPECT_TRUE(Rr->empty()) << "sb has no read-read po pairs";
}

TEST(CatEval, InverseAndDifference) {
  auto M = CatModel::fromSource(
      "let back = rf~\nlet fr2 = rf~;co\nlet nothing = po \\ po\n", "m");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  Candidate Witness = witnessOf("mp");
  auto Back = M->evaluate("back", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(Back));
  EXPECT_EQ(*Back, Witness.Exe.Rf.inverse());
  auto Fr2 = M->evaluate("fr2", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(Fr2));
  EXPECT_EQ(*Fr2, Witness.Exe.fr());
  auto Nothing = M->evaluate("nothing", Witness.Exe);
  ASSERT_TRUE(static_cast<bool>(Nothing));
  EXPECT_TRUE(Nothing->empty());
}

TEST(CatEval, ChecksReportNames) {
  auto M = CatModel::fromSource(
      "acyclic po as order\nirreflexive po;rf as silly\n", "m");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  Candidate Witness = witnessOf("mp");
  auto Results = M->check(Witness.Exe);
  ASSERT_EQ(Results.size(), 2u);
  EXPECT_EQ(Results[0].Name, "order");
  EXPECT_TRUE(Results[0].Holds);
  EXPECT_EQ(Results[1].Name, "silly");
}

TEST(CatEval, EmptyCheck) {
  auto M = CatModel::fromSource("empty po \\ po as nothing\n", "m");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  Candidate Witness = witnessOf("mp");
  auto Results = M->check(Witness.Exe);
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_TRUE(Results[0].Holds);
}

//===----------------------------------------------------------------------===//
// The shipped models agree with the native models on the whole catalogue.
//===----------------------------------------------------------------------===//

struct CrossCase {
  const char *Stem;       ///< models/<stem>.cat
  const char *NativeName; ///< registry name
};

class CatCrossValidation : public ::testing::TestWithParam<CrossCase> {};

TEST_P(CatCrossValidation, AgreesWithNativeModelOnCatalog) {
  auto Cat = CatModel::builtin(GetParam().Stem);
  ASSERT_TRUE(static_cast<bool>(Cat)) << Cat.message();
  const Model *Native = modelByName(GetParam().NativeName);
  ASSERT_NE(Native, nullptr);
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (!Cand.Consistent)
        return true;
      EXPECT_EQ(Cat->allows(Cand.Exe), Native->allows(Cand.Exe))
          << GetParam().Stem << " vs " << GetParam().NativeName << " on "
          << Entry.Test.Name << "\n"
          << Cand.Exe.toString();
      return true;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, CatCrossValidation,
    ::testing::Values(CrossCase{"sc", "SC"}, CrossCase{"tso", "TSO"},
                      CrossCase{"cxx-ra", "C++RA"},
                      CrossCase{"power", "Power"}, CrossCase{"arm", "ARM"},
                      CrossCase{"arm-llh", "ARM llh"}),
    [](const ::testing::TestParamInfo<CrossCase> &Info) {
      std::string Name = Info.param.Stem;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

TEST(CatBuiltin, MissingModelFileFails) {
  auto M = CatModel::builtin("no-such-model");
  EXPECT_FALSE(static_cast<bool>(M));
}

TEST(CatVariants, NoDetourMatchesStaticConfig) {
  // models/power-nodetour.cat is the Sec. 8.2 static-ppo variant; it must
  // agree with the native HwModel configured without rdw/detour.
  auto Cat = CatModel::builtin("power-nodetour");
  ASSERT_TRUE(static_cast<bool>(Cat)) << Cat.message();
  HwConfig Config = HwConfig::power();
  Config.PpoUsesRdwDetour = false;
  HwModel Native(Config);
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (!Cand.Consistent)
        return true;
      EXPECT_EQ(Cat->allows(Cand.Exe), Native.allows(Cand.Exe))
          << Entry.Test.Name << "\n" << Cand.Exe.toString();
      return true;
    });
  }
}

TEST(CatVariants, NoDetourWeakerThanPower) {
  auto Cat = CatModel::builtin("power-nodetour");
  ASSERT_TRUE(static_cast<bool>(Cat));
  const Model &Power = *modelByName("Power");
  for (const CatalogEntry &Entry : figureCatalog()) {
    auto Compiled = CompiledTest::compile(Entry.Test);
    ASSERT_TRUE(static_cast<bool>(Compiled));
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (!Cand.Consistent)
        return true;
      // Removing ppo edges only weakens: Power-allowed => variant-allowed.
      // (Braces: EXPECT_TRUE expands to an if/else and would otherwise
      // bind to the outer if under -Wdangling-else.)
      if (Power.allows(Cand.Exe)) {
        EXPECT_TRUE(Cat->allows(Cand.Exe)) << Entry.Test.Name;
      }
      return true;
    });
  }
}

TEST(Herd, HerdStyleReportFormat) {
  const CatalogEntry *Entry = catalogEntry("mp");
  ASSERT_NE(Entry, nullptr);
  SimulationResult R = simulate(Entry->Test, *modelByName("Power"));
  std::string Report = herdStyleReport(R, Entry->Test.Final);
  EXPECT_NE(Report.find("Test mp Allowed"), std::string::npos) << Report;
  EXPECT_NE(Report.find("States 4"), std::string::npos) << Report;
  EXPECT_NE(Report.find("Ok"), std::string::npos);
  EXPECT_NE(Report.find("Condition exists"), std::string::npos);
  SimulationResult RSc = simulate(Entry->Test, *modelByName("SC"));
  std::string ReportSc = herdStyleReport(RSc, Entry->Test.Final);
  EXPECT_NE(ReportSc.find("Test mp Forbidden"), std::string::npos);
  EXPECT_NE(ReportSc.find("No"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Sec. 4.9: the axioms are bricks — disable or weaken them in cat text.
//===----------------------------------------------------------------------===//

TEST(CatAdaptability, DroppingNoThinAirAllowsLb) {
  // A Power model whose NO THIN AIR check is simply deleted (the Sec. 4.9
  // "one can very simply disable the NO THIN AIR check" claim) must allow
  // lb+addrs while keeping mp+lwsync+addr forbidden.
  auto M = CatModel::fromSource(R"(
acyclic po-loc|rf|fr|co as sc-per-location
let dp = addr|data
let rdw = po-loc & (fre;rfe)
let detour = po-loc & (coe;rfe)
let ii0 = dp|rdw|rfi
let ic0 = 0
let ci0 = ctrlisync|detour
let cc0 = dp|po-loc|ctrl|(addr;po)
let rec ii = ii0|ci|(ic;ci)|(ii;ii)
and ic = ic0|ii|cc|(ic;cc)|(ii;ic)
and ci = ci0|(ci;ii)|(cc;ci)
and cc = cc0|ci|(ci;ic)|(cc;cc)
let ppo = RR(ii)|RW(ic)
let fence = RM(lwsync)|WW(lwsync)|sync
let hb = ppo|fence|rfe
let prop-base = (fence|(rfe;fence));hb*
let prop = WW(prop-base)|(com*;prop-base*;sync;hb*)
irreflexive fre;prop;hb* as observation
acyclic co|prop as propagation
)",
                                "power-no-thin-air");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();

  auto CheckReachable = [&](const char *TestName) {
    const CatalogEntry *Entry = catalogEntry(TestName);
    EXPECT_NE(Entry, nullptr);
    auto Compiled = CompiledTest::compile(Entry->Test);
    EXPECT_TRUE(static_cast<bool>(Compiled));
    bool Reachable = false;
    forEachCandidate(*Compiled, [&](const Candidate &Cand) {
      if (Cand.Consistent && Cand.Out.satisfies(Entry->Test.Final) &&
          M->allows(Cand.Exe))
        Reachable = true;
      return true;
    });
    return Reachable;
  };

  EXPECT_TRUE(CheckReachable("lb+addrs"))
      << "without NO THIN AIR, lb becomes allowed (the Java/C++ stance)";
  EXPECT_FALSE(CheckReachable("mp+lwsync+addr"))
      << "OBSERVATION still forbids mp";
}

TEST(CatAdaptability, RestrictingScPerLocationAllowsCoRR) {
  // The Sec. 4.9 load-load-hazard weakening, as one line of cat.
  auto M = CatModel::fromSource(R"(
let po-loc-llh = po-loc \ RR(po-loc)
acyclic po-loc-llh|rf|fr|co as sc-per-location
)",
                                "llh-only");
  ASSERT_TRUE(static_cast<bool>(M)) << M.message();
  const CatalogEntry *CoRR = catalogEntry("coRR");
  ASSERT_NE(CoRR, nullptr);
  bool Reachable = false;
  auto Compiled = CompiledTest::compile(CoRR->Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (Cand.Consistent && Cand.Out.satisfies(CoRR->Test.Final) &&
        M->allows(Cand.Exe))
      Reachable = true;
    return true;
  });
  EXPECT_TRUE(Reachable);
}
