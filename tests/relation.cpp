//===- relation.cpp - Tests for the relation algebra ------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "relation/Relation.h"

#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

Relation chain(unsigned N) {
  Relation R(N);
  for (EventId I = 0; I + 1 < N; ++I)
    R.set(I, I + 1);
  return R;
}

} // namespace

TEST(EventSet, InsertContainsErase) {
  EventSet S(70);
  EXPECT_TRUE(S.empty());
  S.insert(0);
  S.insert(63);
  S.insert(64);
  S.insert(69);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_TRUE(S.contains(63));
  EXPECT_TRUE(S.contains(64));
  EXPECT_FALSE(S.contains(1));
  S.erase(63);
  EXPECT_FALSE(S.contains(63));
  EXPECT_EQ(S.count(), 3u);
}

TEST(EventSet, SetAlgebra) {
  EventSet A(10), B(10);
  A.insert(1);
  A.insert(2);
  B.insert(2);
  B.insert(3);
  EXPECT_EQ((A | B).count(), 3u);
  EXPECT_EQ((A & B).count(), 1u);
  EXPECT_TRUE((A & B).contains(2));
  EXPECT_EQ((A - B).count(), 1u);
  EXPECT_TRUE((A - B).contains(1));
}

TEST(EventSet, ComplementMasksUniverse) {
  EventSet A(67);
  A.insert(5);
  EventSet C = A.complement();
  EXPECT_EQ(C.count(), 66u);
  EXPECT_FALSE(C.contains(5));
  EXPECT_TRUE(C.contains(66));
}

TEST(EventSet, ToVectorOrdered) {
  EventSet S(100);
  S.insert(99);
  S.insert(0);
  S.insert(64);
  auto V = S.toVector();
  ASSERT_EQ(V.size(), 3u);
  EXPECT_EQ(V[0], 0u);
  EXPECT_EQ(V[1], 64u);
  EXPECT_EQ(V[2], 99u);
}

TEST(Relation, SetTestClear) {
  Relation R(80);
  R.set(3, 70);
  EXPECT_TRUE(R.test(3, 70));
  EXPECT_FALSE(R.test(70, 3));
  EXPECT_EQ(R.countPairs(), 1u);
  R.clear(3, 70);
  EXPECT_TRUE(R.empty());
}

TEST(Relation, Compose) {
  Relation A(5), B(5);
  A.set(0, 1);
  A.set(0, 2);
  B.set(1, 3);
  B.set(2, 4);
  Relation C = A.compose(B);
  EXPECT_TRUE(C.test(0, 3));
  EXPECT_TRUE(C.test(0, 4));
  EXPECT_EQ(C.countPairs(), 2u);
}

TEST(Relation, ComposeEmptyIsEmpty) {
  Relation A(4), B(4);
  A.set(1, 2);
  EXPECT_TRUE(A.compose(B).empty());
  EXPECT_TRUE(B.compose(A).empty());
}

TEST(Relation, Inverse) {
  Relation A(5);
  A.set(0, 4);
  A.set(2, 3);
  Relation Inv = A.inverse();
  EXPECT_TRUE(Inv.test(4, 0));
  EXPECT_TRUE(Inv.test(3, 2));
  EXPECT_EQ(Inv.countPairs(), 2u);
  EXPECT_EQ(Inv.inverse(), A);
}

TEST(Relation, TransitiveClosureChain) {
  Relation R = chain(6);
  Relation Plus = R.transitiveClosure();
  EXPECT_TRUE(Plus.test(0, 5));
  EXPECT_TRUE(Plus.test(2, 4));
  EXPECT_FALSE(Plus.test(4, 2));
  EXPECT_FALSE(Plus.test(0, 0));
  EXPECT_EQ(Plus.countPairs(), 15u); // 5+4+3+2+1
}

TEST(Relation, ReflexiveTransitiveClosure) {
  Relation R = chain(4);
  Relation Star = R.reflexiveTransitiveClosure();
  EXPECT_TRUE(Star.test(0, 0));
  EXPECT_TRUE(Star.test(3, 3));
  EXPECT_TRUE(Star.test(0, 3));
  EXPECT_EQ(Star.countPairs(), 6u + 4u);
}

TEST(Relation, ClosureOfCycleIsReflexive) {
  Relation R(3);
  R.set(0, 1);
  R.set(1, 2);
  R.set(2, 0);
  Relation Plus = R.transitiveClosure();
  EXPECT_TRUE(Plus.test(0, 0));
  EXPECT_TRUE(Plus.test(1, 1));
  EXPECT_EQ(Plus.countPairs(), 9u);
}

TEST(Relation, AcyclicityChainVsCycle) {
  EXPECT_TRUE(chain(10).isAcyclic());
  Relation R = chain(10);
  R.set(9, 0);
  EXPECT_FALSE(R.isAcyclic());
}

TEST(Relation, SelfLoopIsCycle) {
  Relation R(4);
  R.set(2, 2);
  EXPECT_FALSE(R.isAcyclic());
  EXPECT_FALSE(R.isIrreflexive());
  R.clear(2, 2);
  EXPECT_TRUE(R.isIrreflexive());
}

TEST(Relation, EmptyRelationIsAcyclic) {
  EXPECT_TRUE(Relation(0).isAcyclic());
  EXPECT_TRUE(Relation(5).isAcyclic());
}

TEST(Relation, Restrict) {
  Relation R(6);
  R.set(0, 1);
  R.set(1, 2);
  R.set(2, 3);
  EventSet Dom(6), Rng(6);
  Dom.insert(0);
  Dom.insert(2);
  Rng.insert(1);
  Rng.insert(3);
  Relation Cut = R.restrict(Dom, Rng);
  EXPECT_TRUE(Cut.test(0, 1));
  EXPECT_TRUE(Cut.test(2, 3));
  EXPECT_EQ(Cut.countPairs(), 2u);
}

TEST(Relation, DomainRange) {
  Relation R(5);
  R.set(1, 3);
  R.set(1, 4);
  R.set(2, 3);
  EventSet Dom = R.domain();
  EventSet Rng = R.range();
  EXPECT_EQ(Dom.count(), 2u);
  EXPECT_TRUE(Dom.contains(1));
  EXPECT_TRUE(Dom.contains(2));
  EXPECT_EQ(Rng.count(), 2u);
  EXPECT_TRUE(Rng.contains(3));
  EXPECT_TRUE(Rng.contains(4));
}

TEST(Relation, CrossProduct) {
  EventSet A(4), B(4);
  A.insert(0);
  A.insert(1);
  B.insert(2);
  B.insert(3);
  Relation X = Relation::cross(A, B);
  EXPECT_EQ(X.countPairs(), 4u);
  EXPECT_TRUE(X.test(0, 2));
  EXPECT_TRUE(X.test(1, 3));
  EXPECT_FALSE(X.test(2, 0));
}

TEST(Relation, IdentityAndFromPairs) {
  Relation Id = Relation::identity(3);
  EXPECT_EQ(Id.countPairs(), 3u);
  EXPECT_FALSE(Id.isIrreflexive());

  Relation R = Relation::fromPairs(4, {{0, 1}, {1, 0}});
  EXPECT_FALSE(R.isAcyclic());
}

TEST(Relation, FindCycleWitness) {
  Relation R(5);
  R.set(0, 1);
  R.set(1, 2);
  R.set(2, 1);
  auto Cycle = R.findCycle();
  ASSERT_GE(Cycle.size(), 3u);
  EXPECT_EQ(Cycle.front(), Cycle.back());
  // Each consecutive pair must be an edge.
  for (size_t I = 0; I + 1 < Cycle.size(); ++I)
    EXPECT_TRUE(R.test(Cycle[I], Cycle[I + 1]));
}

TEST(Relation, FindCycleEmptyWhenAcyclic) {
  EXPECT_TRUE(chain(8).findCycle().empty());
}

TEST(Relation, SuccessorsView) {
  Relation R(5);
  R.set(2, 0);
  R.set(2, 4);
  EventSet Succ = R.successors(2);
  EXPECT_EQ(Succ.count(), 2u);
  EXPECT_TRUE(Succ.contains(0));
  EXPECT_TRUE(Succ.contains(4));
}

// Property-style sweep: on random relations, check algebraic identities that
// the model code relies on.
class RelationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelationPropertyTest, AlgebraicIdentities) {
  Rng R(GetParam());
  unsigned N = 2 + static_cast<unsigned>(R.nextBelow(30));
  auto Random = [&]() {
    Relation Rel(N);
    unsigned Pairs = static_cast<unsigned>(R.nextBelow(N * 2));
    for (unsigned I = 0; I < Pairs; ++I)
      Rel.set(static_cast<EventId>(R.nextBelow(N)),
              static_cast<EventId>(R.nextBelow(N)));
    return Rel;
  };

  Relation A = Random(), B = Random(), C = Random();

  // Composition distributes over union.
  EXPECT_EQ(A.compose(B | C), A.compose(B) | A.compose(C));
  // (A;B)^-1 == B^-1;A^-1.
  EXPECT_EQ(A.compose(B).inverse(), B.inverse().compose(A.inverse()));
  // Closure is idempotent.
  Relation Plus = A.transitiveClosure();
  EXPECT_EQ(Plus.transitiveClosure(), Plus);
  // r+ acyclic iff r acyclic.
  EXPECT_EQ(Plus.isIrreflexive(), A.isAcyclic());
  // r* contains identity and r.
  Relation Star = A.reflexiveTransitiveClosure();
  EXPECT_EQ(Star & Relation::identity(N), Relation::identity(N));
  EXPECT_EQ(Star & A, A);
  // Inverse is an involution.
  EXPECT_EQ(A.inverse().inverse(), A);
  // Domain/range swap under inversion.
  EXPECT_EQ(A.inverse().domain(), A.range());
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, RelationPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));
