//===- diy.cpp - Tests for the diy test generator ----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

using namespace cats;

namespace {

DiyCycle familyCycle(const std::string &Name) {
  for (const auto &[Family, Cycle] : classicFamilies())
    if (Family == Name)
      return Cycle;
  ADD_FAILURE() << "unknown family " << Name;
  return {};
}

} // namespace

/// Substitutes mechanisms on the po edges, in order.
#define WITH_MECHS(Cycle, ...)                                              \
  [&] {                                                                     \
    DiyCycle C = Cycle;                                                     \
    std::vector<std::pair<PoMech, std::string>> M = __VA_ARGS__;            \
    size_t K = 0;                                                           \
    for (DiyEdge &E : C)                                                    \
      if (E.Kind == EdgeKind::Po && K < M.size()) {                         \
        E.Mech = M[K].first;                                                \
        E.FenceName = M[K].second;                                          \
        ++K;                                                                \
      }                                                                     \
    return C;                                                               \
  }()

TEST(Diy, EdgeNames) {
  EXPECT_EQ(DiyEdge::rfe().toString(), "Rfe");
  EXPECT_EQ(DiyEdge::fre().toString(), "Fre");
  EXPECT_EQ(DiyEdge::wse().toString(), "Wse");
  EXPECT_EQ(DiyEdge::po(Dir::R, Dir::W).toString(), "PodRW");
  EXPECT_EQ(DiyEdge::po(Dir::R, Dir::R, PoMech::Addr).toString(),
            "DpAddrdR");
  EXPECT_EQ(
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "sync").toString(),
      "FencedWW:sync");
}

TEST(Diy, ClassicFamilyNames) {
  for (const auto &[Family, Cycle] : classicFamilies())
    EXPECT_EQ(cycleName(Cycle), Family);
}

TEST(Diy, MpSynthesis) {
  auto Test = synthesizeTest(familyCycle("mp"), Arch::Power);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  EXPECT_EQ(Test->Name, "mp");
  EXPECT_EQ(Test->numThreads(), 2u);
  // Same verdicts as the hand-written catalogue mp.
  EXPECT_TRUE(allowedBy(*Test, *modelByName("Power")));
  EXPECT_FALSE(allowedBy(*Test, *modelByName("TSO")));
  EXPECT_FALSE(allowedBy(*Test, *modelByName("SC")));
}

TEST(Diy, MpLwsyncAddrSynthesis) {
  DiyCycle Cycle = WITH_MECHS(
      familyCycle("mp"),
      {{PoMech::Fence, "lwsync"}, {PoMech::Addr, ""}});
  auto Test = synthesizeTest(Cycle, Arch::Power);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  EXPECT_EQ(Test->Name, "mp+lwsync+addr");
  EXPECT_FALSE(allowedBy(*Test, *modelByName("Power")));
}

TEST(Diy, EveryFamilyMatchesCatalogueVerdicts) {
  // Bare families must agree with the catalogue's bare entries on Power.
  struct Pair {
    const char *Family;
    const char *CatalogName;
  };
  for (const Pair &P :
       {Pair{"mp", "mp"}, Pair{"sb", "sb"}, Pair{"lb", "lb"},
        Pair{"s", "s"}, Pair{"2+2w", "2+2w"}, Pair{"isa2", "isa2"},
        Pair{"w+rw+2w", "w+rw+2w"}, Pair{"wrc", "wrc+addrs"}}) {
    auto Test = synthesizeTest(familyCycle(P.Family), Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << P.Family;
    const CatalogEntry *Entry = catalogEntry(P.CatalogName);
    ASSERT_NE(Entry, nullptr) << P.CatalogName;
    auto It = Entry->Expected.find("Power");
    if (It == Entry->Expected.end())
      continue;
    // A bare diy test is at least as weak as any fenced catalogue variant:
    // when the catalogue bare test is allowed, so is ours.
    EXPECT_EQ(allowedBy(*Test, *modelByName("Power")), It->second)
        << P.Family;
  }
}

TEST(Diy, SyncedFamiliesForbiddenOnPower) {
  // Full fences everywhere forbid every classic family.
  for (const auto &[Family, Base] : classicFamilies()) {
    DiyCycle Cycle = Base;
    for (DiyEdge &E : Cycle)
      if (E.Kind == EdgeKind::Po) {
        E.Mech = PoMech::Fence;
        E.FenceName = "sync";
      }
    auto Test = synthesizeTest(Cycle, Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << Family;
    EXPECT_FALSE(allowedBy(*Test, *modelByName("Power")))
        << Family << " with syncs must be forbidden";
  }
}

TEST(Diy, LwsyncClassifiesFamilies) {
  // lwsync everywhere forbids mp/wrc/isa2/2+2w/w+rw+2w/s/lb but not
  // sb/rwc/r/iriw (Sec. 4.7 fence-placement rules).
  std::map<std::string, bool> LwsyncForbids = {
      {"mp", true},      {"wrc", true},  {"isa2", true},
      {"2+2w", true},    {"w+rw+2w", true}, {"s", true},
      {"lb", true},      {"sb", false},  {"rwc", false},
      {"r", false},      {"iriw", false}};
  for (const auto &[Family, Base] : classicFamilies()) {
    DiyCycle Cycle = Base;
    for (DiyEdge &E : Cycle)
      if (E.Kind == EdgeKind::Po) {
        E.Mech = PoMech::Fence;
        E.FenceName = "lwsync";
      }
    auto Test = synthesizeTest(Cycle, Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << Family;
    bool Allowed = allowedBy(*Test, *modelByName("Power"));
    EXPECT_EQ(!Allowed, LwsyncForbids[Family]) << Family << "+lwsyncs";
  }
}

TEST(Diy, RejectsMalformedCycles) {
  // Direction mismatch.
  DiyCycle Bad = {DiyEdge::rfe(), DiyEdge::rfe()};
  EXPECT_FALSE(static_cast<bool>(synthesizeTest(Bad, Arch::Power)));
  // Data dependency to a read.
  DiyCycle BadData = {DiyEdge::po(Dir::R, Dir::R, PoMech::Data),
                      DiyEdge::rfe(), DiyEdge::po(Dir::R, Dir::W),
                      DiyEdge::rfe()};
  EXPECT_FALSE(static_cast<bool>(synthesizeTest(BadData, Arch::Power)));
  // Single-thread cycle.
  DiyCycle OneThread = {DiyEdge::po(Dir::W, Dir::W)};
  EXPECT_FALSE(static_cast<bool>(synthesizeTest(OneThread, Arch::Power)));
  // Wrong fence for the architecture.
  DiyCycle BadFence = WITH_MECHS(
      familyCycle("mp"),
      {{PoMech::Fence, "dmb"}, {PoMech::None, ""}});
  EXPECT_FALSE(static_cast<bool>(synthesizeTest(BadFence, Arch::Power)));
}

TEST(Diy, ValidatesFenceVocabularyUpFront) {
  // A fence mechanism with no name is a malformed cycle, not a silently
  // emitted unknown fence.
  DiyCycle NoName = WITH_MECHS(
      familyCycle("mp"), {{PoMech::Fence, ""}, {PoMech::None, ""}});
  auto Unnamed = synthesizeTest(NoName, Arch::Power);
  ASSERT_FALSE(static_cast<bool>(Unnamed));
  EXPECT_NE(Unnamed.message().find("no fence name"), std::string::npos)
      << Unnamed.message();
  // A fence from another architecture names the vocabulary in the error.
  DiyCycle Wrong = WITH_MECHS(
      familyCycle("mp"), {{PoMech::Fence, "mfence"}, {PoMech::None, ""}});
  auto Foreign = synthesizeTest(Wrong, Arch::Power);
  ASSERT_FALSE(static_cast<bool>(Foreign));
  EXPECT_NE(Foreign.message().find("fence vocabulary"), std::string::npos)
      << Foreign.message();
  // ctrl+cfence needs the architecture to have a control fence at all.
  DiyCycle Cfence = WITH_MECHS(
      familyCycle("mp"), {{PoMech::None, ""}, {PoMech::CtrlCfence, ""}});
  auto NoCfence = synthesizeTest(Cfence, Arch::TSO);
  ASSERT_FALSE(static_cast<bool>(NoCfence));
  EXPECT_NE(NoCfence.message().find("ctrl+cfence"), std::string::npos)
      << NoCfence.message();
  // The same cycle is fine where the control fence exists.
  EXPECT_TRUE(static_cast<bool>(synthesizeTest(Cfence, Arch::Power)));
  EXPECT_TRUE(static_cast<bool>(synthesizeTest(Cfence, Arch::ARM)));
}

TEST(Diy, BatteryIsDeterministic) {
  for (Arch A : {Arch::Power, Arch::ARM, Arch::TSO}) {
    auto First = generateBattery(A, 6);
    auto Second = generateBattery(A, 6);
    ASSERT_EQ(First.size(), Second.size()) << archName(A);
    for (size_t I = 0; I < First.size(); ++I) {
      EXPECT_EQ(First[I].Name, Second[I].Name);
      EXPECT_EQ(First[I].toString(), Second[I].toString());
    }
  }
}

TEST(Diy, CycleNameRoundTripsOnClassicFamilies) {
  // The family name is rotation-invariant, and the synthesized test's
  // name round-trips through cycleName for every classic family.
  for (const auto &[Family, Cycle] : classicFamilies()) {
    DiyCycle Rotated = Cycle;
    for (size_t R = 0; R < Cycle.size(); ++R) {
      EXPECT_EQ(cycleName(Rotated), Family) << "rotation " << R;
      std::rotate(Rotated.begin(), Rotated.begin() + 1, Rotated.end());
    }
    auto Test = synthesizeTest(Cycle, Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << Family;
    EXPECT_EQ(Test->Name, cycleName(Cycle)) << Family;
  }
}

TEST(Diy, CycleNameCanonicalSuffixOrder) {
  // Mechanism suffixes follow the family's conventional rotation. For
  // rotation-asymmetric families the first po edge of the hand-coded
  // cycle keeps its leading position; rotation-symmetric families (sb,
  // lb, 2+2w, iriw) canonicalize to the lexicographically-least rotation,
  // so "lwsync" sorts ahead of "sync" regardless of assignment order.
  std::map<std::string, std::string> Expected = {
      {"mp", "mp+sync+lwsync"},       {"wrc", "wrc+sync+lwsync"},
      {"rwc", "rwc+sync+lwsync"},     {"r", "r+sync+lwsync"},
      {"s", "s+sync+lwsync"},         {"sb", "sb+lwsync+sync"},
      {"lb", "lb+lwsync+sync"},       {"2+2w", "2+2w+lwsync+sync"},
      {"iriw", "iriw+lwsync+sync"}};
  for (const auto &[Family, Name] : Expected) {
    DiyCycle Cycle = familyCycle(Family);
    unsigned PoEdges = 0;
    for (DiyEdge &E : Cycle)
      if (E.Kind == EdgeKind::Po) {
        E.Mech = PoMech::Fence;
        E.FenceName = PoEdges++ ? "lwsync" : "sync";
      }
    EXPECT_EQ(cycleName(Cycle), Name) << Family;
  }
}

TEST(Diy, CycleNameIsRotationInvariantWithMechanisms) {
  // The canonicalization contract: every rotation of a cycle — including
  // mechanism-carrying ones — maps to the same canonical cycle and name.
  for (const auto &[Family, Base] : classicFamilies()) {
    DiyCycle Cycle = Base;
    unsigned PoEdges = 0;
    for (DiyEdge &E : Cycle)
      if (E.Kind == EdgeKind::Po) {
        E.Mech = PoEdges % 2 ? PoMech::Fence : PoMech::None;
        E.FenceName = PoEdges % 2 ? "lwsync" : "";
        ++PoEdges;
      }
    const std::string Name = cycleName(Cycle);
    const DiyCycle Canonical = canonicalCycle(Cycle);
    DiyCycle Rotated = Cycle;
    for (size_t R = 0; R < Cycle.size(); ++R) {
      EXPECT_EQ(cycleName(Rotated), Name) << Family << " rotation " << R;
      const DiyCycle RotCanonical = canonicalCycle(Rotated);
      ASSERT_EQ(RotCanonical.size(), Canonical.size());
      for (size_t I = 0; I < Canonical.size(); ++I)
        EXPECT_EQ(RotCanonical[I].toString(), Canonical[I].toString())
            << Family << " rotation " << R << " edge " << I;
      std::rotate(Rotated.begin(), Rotated.begin() + 1, Rotated.end());
    }
  }
}

TEST(Diy, DataDependencyKeepsValues) {
  DiyCycle Cycle = WITH_MECHS(
      familyCycle("lb"), {{PoMech::Data, ""}, {PoMech::Data, ""}});
  auto Test = synthesizeTest(Cycle, Arch::Power);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  // The stored values must still be the assigned constants: the witness
  // candidate (both reads see 1) must exist and be forbidden by NO THIN
  // AIR on Power.
  SimulationResult R = simulate(*Test, *modelByName("Power"));
  EXPECT_FALSE(R.ConditionReachable) << "lb+datas is forbidden";
  bool WitnessExists = false;
  for (const Outcome &Out : R.ConsistentOutcomes)
    if (Out.satisfies(Test->Final))
      WitnessExists = true;
  EXPECT_TRUE(WitnessExists)
      << "the data-dependency synthesis must preserve written values";
}

TEST(Diy, BatterySizesAndValidity) {
  auto Battery = generateBattery(Arch::Power);
  EXPECT_GT(Battery.size(), 300u);
  std::set<std::string> Names;
  for (const LitmusTest &Test : Battery) {
    EXPECT_EQ(Test.validate(), "") << Test.Name;
    Names.insert(Test.Name);
  }
  // Names are unique across the battery.
  EXPECT_EQ(Names.size(), Battery.size());
}

TEST(Diy, TsoBatteryUsesMfenceOnly) {
  auto Battery = generateBattery(Arch::TSO);
  EXPECT_GT(Battery.size(), 10u);
  for (const LitmusTest &Test : Battery)
    for (const ThreadCode &Thread : Test.Threads)
      for (const Instruction &Instr : Thread)
        if (Instr.Op == Opcode::Fence) {
          EXPECT_EQ(Instr.FenceName, "mfence") << Test.Name;
        }
}

TEST(Diy, BatteryCapRespected) {
  auto Battery = generateBattery(Arch::Power, 3);
  EXPECT_EQ(Battery.size(), 3u * classicFamilies().size());
}

TEST(Diy, ArmBatteryCompiles) {
  auto Battery = generateBattery(Arch::ARM, 8);
  for (const LitmusTest &Test : Battery) {
    auto Compiled = CompiledTest::compile(Test);
    EXPECT_TRUE(static_cast<bool>(Compiled)) << Test.Name;
  }
}

//===----------------------------------------------------------------------===//
// Internal communication edges (fri-rfi and friends, Figs. 32/33).
//===----------------------------------------------------------------------===//

TEST(DiyInternal, EdgeNames) {
  EXPECT_EQ(DiyEdge::rfi().toString(), "Rfi");
  EXPECT_EQ(DiyEdge::fri().toString(), "Fri");
  EXPECT_EQ(DiyEdge::wsi().toString(), "Wsi");
  EXPECT_TRUE(isInternalComEdge(EdgeKind::Rfi));
  EXPECT_FALSE(isInternalComEdge(EdgeKind::Rfe));
  EXPECT_TRUE(isExternalEdge(EdgeKind::Wse));
  EXPECT_FALSE(isExternalEdge(EdgeKind::Wsi));
}

TEST(DiyInternal, FriRfiSynthesisMatchesFig32) {
  // mp+dmb+fri-rfi-ctrlisb as a cycle: W -dmb- W -rfe- R -fri- W -rfi- R
  // -ctrlisb- R -fre- back.
  DiyCycle Cycle = {
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "dmb"),
      DiyEdge::rfe(),
      DiyEdge::fri(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::R, PoMech::CtrlCfence),
      DiyEdge::fre(),
  };
  auto Test = synthesizeTest(Cycle, Arch::ARM, "mp+dmb+fri-rfi-ctrlisb");
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  EXPECT_EQ(Test->numThreads(), 2u);
  // Same split as the catalogue entry: the proposed ARM model allows the
  // early-commit behaviour, Power-ARM forbids it.
  EXPECT_TRUE(allowedBy(*Test, *modelByName("ARM")))
      << "proposed ARM allows fri-rfi early commit";
  EXPECT_FALSE(allowedBy(*Test, *modelByName("Power-ARM")))
      << "the Power shape of cc0 forbids it";
}

TEST(DiyInternal, SDmbFriRfiData) {
  // s+dmb+fri-rfi-data (Fig. 33) via the generator.
  DiyCycle Cycle = {
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "dmb"),
      DiyEdge::rfe(),
      DiyEdge::fri(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::W, PoMech::Data),
      DiyEdge::wse(),
  };
  auto Test = synthesizeTest(Cycle, Arch::ARM);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  EXPECT_TRUE(allowedBy(*Test, *modelByName("ARM")));
  EXPECT_FALSE(allowedBy(*Test, *modelByName("Power-ARM")));
}

TEST(DiyInternal, WsiRfiShape) {
  // lb+data+data-wsi-rfi-addr-like: a wsi-rfi detour inside a thread.
  DiyCycle Cycle = {
      DiyEdge::po(Dir::R, Dir::W, PoMech::Data),
      DiyEdge::rfe(),
      DiyEdge::po(Dir::R, Dir::W, PoMech::Data),
      DiyEdge::wsi(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::W, PoMech::Addr),
      DiyEdge::rfe(),
  };
  auto Test = synthesizeTest(Cycle, Arch::ARM);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  EXPECT_TRUE(allowedBy(*Test, *modelByName("ARM")));
  EXPECT_FALSE(allowedBy(*Test, *modelByName("Power-ARM")));
}

TEST(DiyInternal, CoherenceRespectsRfThenFr) {
  // In fri-rfi shapes the rfe source must be co-before the fri target;
  // the generated condition pins that (final y = value of the fri
  // target).
  DiyCycle Cycle = {
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "dmb"),
      DiyEdge::rfe(),
      DiyEdge::fri(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::R, PoMech::CtrlCfence),
      DiyEdge::fre(),
  };
  auto Test = synthesizeTest(Cycle, Arch::ARM);
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  // The condition must be satisfiable by some consistent candidate.
  auto Compiled = CompiledTest::compile(*Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  bool Witness = false;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (Cand.Consistent && Cand.Out.satisfies(Test->Final))
      Witness = true;
    return true;
  });
  EXPECT_TRUE(Witness) << Test->toString();
}

TEST(DiyInternal, DetourChainsKeepNamesInjective) {
  // An rfi detour and a fri detour share per-thread direction strings
  // ("wrw" threads both ways) but are different cycles; the suffix
  // chains spell the internal edges, so the names differ.
  DiyCycle RfiDetour = {DiyEdge::rfi(), DiyEdge::po(Dir::R, Dir::W),
                        DiyEdge::wse(), DiyEdge::po(Dir::W, Dir::W),
                        DiyEdge::wse()};
  DiyCycle FriDetour = {DiyEdge::po(Dir::W, Dir::R), DiyEdge::fri(),
                        DiyEdge::wse(), DiyEdge::po(Dir::W, Dir::W),
                        DiyEdge::wse()};
  const std::string RfiName = cycleName(RfiDetour);
  const std::string FriName = cycleName(FriDetour);
  EXPECT_NE(RfiName, FriName);
  EXPECT_NE(RfiName.find("rfi"), std::string::npos) << RfiName;
  EXPECT_NE(FriName.find("fri"), std::string::npos) << FriName;
  // The paper's chain notation: a thread's internal edges and its po
  // mechanism hyphen-join into one suffix.
  DiyCycle Fig32 = {
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "dmb"),
      DiyEdge::rfe(),
      DiyEdge::fri(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::R, PoMech::CtrlCfence),
      DiyEdge::fre(),
  };
  EXPECT_NE(cycleName(Fig32, Arch::ARM).find("fri-rfi-ctrlisb"),
            std::string::npos)
      << cycleName(Fig32, Arch::ARM);
}

TEST(DiyInternal, SystematicNamesCountInternalAccesses) {
  DiyCycle Cycle = {
      DiyEdge::po(Dir::W, Dir::W, PoMech::Fence, "dmb"),
      DiyEdge::rfe(),
      DiyEdge::fri(),
      DiyEdge::rfi(),
      DiyEdge::po(Dir::R, Dir::R, PoMech::CtrlCfence),
      DiyEdge::fre(),
  };
  std::string Name = cycleName(Cycle);
  // T0 contributes "ww", T1 "rwrr" (read, fri write, rfi read, read).
  EXPECT_NE(Name.find("ww"), std::string::npos) << Name;
  EXPECT_NE(Name.find("rwrr"), std::string::npos) << Name;
}
