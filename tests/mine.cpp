//===- mine.cpp - Tests for corpus data-mining ----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "mole/Mine.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

using namespace cats;

TEST(Mine, CycleFamilyOfStripsMechanismSuffixes) {
  EXPECT_EQ(cycleFamilyOf("mp"), "mp");
  EXPECT_EQ(cycleFamilyOf("mp+lwsync+addr"), "mp");
  EXPECT_EQ(cycleFamilyOf("sb+syncs"), "sb");
  EXPECT_EQ(cycleFamilyOf("iriw+dmbs"), "iriw");
  EXPECT_EQ(cycleFamilyOf("2+2w"), "2+2w");
  EXPECT_EQ(cycleFamilyOf("2+2w+lwsyncs"), "2+2w");
  EXPECT_EQ(cycleFamilyOf("w+rw+2w+lwsyncs"), "w+rw+2w");
  EXPECT_EQ(cycleFamilyOf("mp+dmb+fri-rfi-ctrlisb"), "mp");
  EXPECT_EQ(cycleFamilyOf("mp+lwsync+addr-po-detour"), "mp");
  EXPECT_EQ(cycleFamilyOf("mp+dmb+pos-ctrlisb+bis"), "mp");
  EXPECT_EQ(cycleFamilyOf("lb+data+data-wsi-rfi-addr"), "lb");
  EXPECT_EQ(cycleFamilyOf("w+rwc+eieio+addr+sync"), "w+rwc");
  // Direction strings and family fragments are not mechanisms.
  EXPECT_EQ(cycleFamilyOf("ww+rw+r"), "ww+rw+r");
  EXPECT_EQ(cycleFamilyOf("w+rr+wr"), "w+rr+wr");
  EXPECT_EQ(cycleFamilyOf("moredetour0052"), "moredetour0052");
  // Names never fold to nothing.
  EXPECT_EQ(cycleFamilyOf("sync"), "sync");
}

namespace {

/// Sweeps the plain-po Power enumeration at \p MaxEdges under SC + Power.
SweepReport sweepPlainSlice(unsigned MaxEdges) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = MaxEdges;
  Opts.Dependencies = false;
  Opts.Fences = false;
  auto Source = makeDiyTestSource(Opts);
  EXPECT_TRUE(static_cast<bool>(Source)) << Source.message();
  SweepEngine Engine(SweepOptions{2});
  return Engine.runStreamed(
      *Source, {modelByName("SC"), modelByName("Power")}, 16);
}

} // namespace

TEST(Mine, ClassicFamiliesObservedOnPowerForbiddenUnderSc) {
  // The acceptance criterion: mining a generated slice reproduces the
  // classic-family verdicts — mp/sb/lb/wrc/iriw observable on Power,
  // forbidden under SC.
  MineReport Mined = mineSweepReport(sweepPlainSlice(6));
  EXPECT_EQ(Mined.CorpusTests, 47u);
  EXPECT_EQ(Mined.CorpusErrors, 0u);
  ASSERT_EQ(Mined.Models,
            (std::vector<std::string>{"SC", "Power"}));
  for (const char *Family : {"mp", "sb", "lb", "wrc", "iriw"}) {
    const FamilyVerdicts *F = Mined.family(Family);
    ASSERT_NE(F, nullptr) << Family;
    EXPECT_EQ(F->Tests, 1u) << Family;
    EXPECT_TRUE(F->observedOn("Power")) << Family;
    EXPECT_TRUE(F->forbiddenUnder("SC")) << Family;
  }
  // Every plain critical cycle is an SC violation by construction.
  for (const FamilyVerdicts &F : Mined.Families)
    EXPECT_TRUE(F.forbiddenUnder("SC")) << F.Family;
}

TEST(Mine, FamiliesAggregateMechanismVariants) {
  // A fenced slice folds onto its family: mp variants split between
  // observed (bare, weak fences) and forbidden (sync/lwsync+addr) but
  // all land under "mp".
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 4;
  auto Source = makeDiyTestSource(Opts, "^mp");
  ASSERT_TRUE(static_cast<bool>(Source));
  SweepEngine Engine(SweepOptions{2});
  SweepReport Report = Engine.runStreamed(
      *Source, {modelByName("Power")}, 16);
  MineReport Mined = mineSweepReport(Report);
  ASSERT_EQ(Mined.Families.size(), 1u);
  const FamilyVerdicts &Mp = Mined.Families[0];
  EXPECT_EQ(Mp.Family, "mp");
  EXPECT_GT(Mp.Tests, 10u);
  const FamilyModelStats *Power = Mp.forModel("Power");
  ASSERT_NE(Power, nullptr);
  EXPECT_GT(Power->Allowed, 0u);
  EXPECT_GT(Power->Forbidden, 0u);
  EXPECT_EQ(Power->Allowed + Power->Forbidden, Mp.Tests);
}

TEST(Mine, JsonReportRoundTripsAndCrossReferences) {
  MineReport Mined = mineSweepReport(sweepPlainSlice(4));
  // A static program that relies on message passing: the writer writes
  // the payload then the flag, the reader reads the flag then the
  // payload — mole names the mp idiom.
  MoleProgram Program;
  Program.Name = "mp-idiom";
  Program.Functions.push_back(
      {"writer", {MoleAccess::write("data"), MoleAccess::write("flag")}});
  Program.Functions.push_back(
      {"reader", {MoleAccess::read("flag"), MoleAccess::read("data")}});
  MoleReport Static = analyzeProgram(Program);
  EXPECT_GT(Static.patternCounts().count("mp"), 0u);
  Mined.StaticReports.push_back(Static);

  JsonValue Json = mineReportToJson(Mined);
  EXPECT_EQ(Json.get("schema")->asString(), "cats-mine-report/1");
  auto Parsed = JsonValue::parse(Json.dump());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(*Parsed, Json);

  const JsonValue *Corpus = Json.get("corpus");
  ASSERT_NE(Corpus, nullptr);
  EXPECT_EQ(Corpus->get("tests")->asNumber(), 6);
  ASSERT_NE(Corpus->get("families"), nullptr);
  EXPECT_EQ(Corpus->get("families")->elements().size(), 6u);

  // The static mp pattern cross-references the corpus verdicts.
  const JsonValue *Static2 = Json.get("static");
  ASSERT_NE(Static2, nullptr);
  ASSERT_EQ(Static2->elements().size(), 1u);
  const JsonValue *Patterns = Static2->elements()[0].get("patterns");
  ASSERT_NE(Patterns, nullptr);
  bool FoundMp = false;
  for (const JsonValue &P : Patterns->elements()) {
    if (P.get("pattern")->asString() != "mp")
      continue;
    FoundMp = true;
    ASSERT_NE(P.get("observed_on"), nullptr);
    bool PowerObserved = false;
    for (const JsonValue &M : P.get("observed_on")->elements())
      if (M.asString() == "Power")
        PowerObserved = true;
    EXPECT_TRUE(PowerObserved);
  }
  EXPECT_TRUE(FoundMp);
}

TEST(Mine, StreamedFileCorpusMines) {
  // streamCampaignTests over the on-disk corpus feeds the miner the same
  // way the generated corpus does.
  std::vector<std::string> Errors;
  auto Source =
      streamCampaignTests({CATS_LITMUS_DIR}, false, "^(mp|sb)", &Errors);
  ASSERT_TRUE(static_cast<bool>(Source)) << Source.message();
  SweepEngine Engine(SweepOptions{2});
  SweepReport Report = Engine.runStreamed(
      *Source, {modelByName("SC"), modelByName("Power")}, 8);
  EXPECT_TRUE(Errors.empty());
  MineReport Mined = mineSweepReport(Report);
  const FamilyVerdicts *Mp = Mined.family("mp");
  ASSERT_NE(Mp, nullptr);
  EXPECT_GT(Mp->Tests, 5u);
  EXPECT_TRUE(Mp->observedOn("Power"));
  EXPECT_TRUE(Mp->forbiddenUnder("SC"));
  const FamilyVerdicts *Sb = Mined.family("sb");
  ASSERT_NE(Sb, nullptr);
  EXPECT_TRUE(Sb->forbiddenUnder("SC"));
}
