//===- enumerate.cpp - Tests for exhaustive cycle enumeration -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <set>

using namespace cats;

namespace {

/// Plain-po options: no fences, no dependencies — the structural kernel
/// whose cycle counts have closed forms.
EnumerateOptions plainOptions(unsigned MaxEdges) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = MaxEdges;
  Opts.Dependencies = false;
  Opts.Fences = false;
  return Opts;
}

std::set<std::string> namesOf(const std::vector<EnumeratedCycle> &Cycles) {
  std::set<std::string> Names;
  for (const EnumeratedCycle &C : Cycles)
    Names.insert(C.Name);
  return Names;
}

} // namespace

TEST(Enumerate, PlainSizeFourIsTheClassicKernel) {
  // Closed form: 4-edge cycles are [po,com,po,com] with direction tuples
  // (a,b,c,d) such that the two communications exist ((b,c) and (d,a)
  // cannot both be reads): 16 - 4 - 4 + 1 = 9 tuples, which the rotation
  // by two folds into 6 canonical cycles — exactly the two-thread
  // classics of Tab. III.
  auto Cycles = enumerateAll(plainOptions(4));
  EXPECT_EQ(Cycles.size(), 6u);
  EXPECT_EQ(namesOf(Cycles),
            (std::set<std::string>{"mp", "sb", "lb", "2+2w", "r", "s"}));
}

TEST(Enumerate, PlainSizeFiveClosedFormCount) {
  // 5-edge cycles are [po,com,po,com,com] (one single-access thread):
  // inclusion-exclusion over the three communication constraints gives
  // 32 - 24 + 8 - 1 = 15, each with a unique boundary rotation, so 15
  // canonical cycles on top of the 6 four-edge ones.
  auto Cycles = enumerateAll(plainOptions(5));
  EXPECT_EQ(Cycles.size(), 21u);
  std::set<std::string> Names = namesOf(Cycles);
  EXPECT_EQ(Names.size(), 21u);
  // The three-thread classics are in the five-edge slice.
  EXPECT_TRUE(Names.count("wrc"));
  EXPECT_TRUE(Names.count("rwc"));
  EXPECT_TRUE(Names.count("w+rw+2w"));
}

TEST(Enumerate, PlainSizeSixClosedFormCount) {
  // 6-edge cycles split by po count: three po edges ([po,com]^3: 27
  // direction tuples, rotation by two fixes 3, so 8 orbits + 3 = 11) and
  // two po edges in the [po,com,com,po,com,com] shape (25 tuples, 5
  // fixed under the half-rotation: 15). The [po,com,po,com,com,com]
  // shape puts four accesses on one location and is not critical. Total:
  // 21 + 11 + 15 = 47.
  auto Cycles = enumerateAll(plainOptions(6));
  EXPECT_EQ(Cycles.size(), 47u);
  std::set<std::string> Names = namesOf(Cycles);
  EXPECT_EQ(Names.size(), 47u);
  EXPECT_TRUE(Names.count("isa2"));
  EXPECT_TRUE(Names.count("iriw"));
}

TEST(Enumerate, CanonicalNamesAreUniqueAndRotationInvariant) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  auto Cycles = enumerateAll(Opts);
  std::set<std::string> Names;
  for (const EnumeratedCycle &C : Cycles) {
    EXPECT_TRUE(Names.insert(C.Name).second) << "duplicate " << C.Name;
    // The emitted cycle is its own canonical rotation, and every rotation
    // names back to it.
    DiyCycle Rotated = C.Cycle;
    for (size_t R = 0; R < Rotated.size(); ++R) {
      EXPECT_EQ(cycleName(Rotated), C.Name) << "rotation " << R;
      std::rotate(Rotated.begin(), Rotated.begin() + 1, Rotated.end());
    }
  }
}

TEST(Enumerate, PowerSizeSixMeetsTheAcceptanceBar) {
  // The acceptance criterion: the full Power vocabulary at size 6 yields
  // at least 500 canonical cycles with no duplicate names.
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 6;
  uint64_t Count = 0;
  std::set<std::string> Names;
  enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
    ++Count;
    EXPECT_TRUE(Names.insert(C.Name).second) << "duplicate " << C.Name;
    return true;
  });
  EXPECT_GE(Count, 500u);
  EXPECT_EQ(Names.size(), Count);
}

TEST(Enumerate, DeterministicAcrossRuns) {
  EnumerateOptions Opts;
  Opts.Target = Arch::ARM;
  Opts.MaxEdges = 5;
  auto First = enumerateAll(Opts);
  auto Second = enumerateAll(Opts);
  ASSERT_EQ(First.size(), Second.size());
  for (size_t I = 0; I < First.size(); ++I)
    EXPECT_EQ(First[I].Name, Second[I].Name);
}

TEST(Enumerate, LimitIsAPrefixOfTheFullEnumeration) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  auto Full = enumerateAll(Opts);
  Opts.Limit = 10;
  auto Limited = enumerateAll(Opts);
  ASSERT_EQ(Limited.size(), 10u);
  for (size_t I = 0; I < Limited.size(); ++I)
    EXPECT_EQ(Limited[I].Name, Full[I].Name);
}

TEST(Enumerate, InternalComEdgesExtendTheVocabulary) {
  // With rfi/fri/wsi enabled, the Fig. 32 fri-rfi detour shape appears;
  // names stay unique by construction.
  EnumerateOptions Opts;
  Opts.Target = Arch::ARM;
  Opts.MaxEdges = 6;
  Opts.Dependencies = false;
  Opts.Fences = false;
  auto Plain = enumerateAll(Opts);
  Opts.InternalCom = true;
  auto Extended = enumerateAll(Opts);
  EXPECT_GT(Extended.size(), Plain.size());
  std::set<std::string> Names = namesOf(Extended);
  EXPECT_EQ(Names.size(), Extended.size());
}

TEST(Enumerate, PerThreadCapsHoldOnEveryRotation) {
  // Criticality must not depend on which rotation the DFS happened to
  // close: walking any emitted cycle from a thread boundary, no thread
  // exceeds the cap (2 accesses external-only, 4 with internal detours).
  for (bool Internal : {false, true}) {
    EnumerateOptions Opts;
    Opts.Target = Arch::ARM;
    Opts.MaxEdges = 6;
    Opts.Dependencies = false;
    Opts.Fences = false;
    Opts.InternalCom = Internal;
    const unsigned Cap = Internal ? 4 : 2;
    enumerateCycles(Opts, [&](const EnumeratedCycle &C) {
      // The canonical rotation starts on a thread boundary; count the
      // run lengths between external edges, including the wrap.
      unsigned Run = 0;
      for (const DiyEdge &E : C.Cycle) {
        ++Run;
        if (isExternalEdge(E.Kind)) {
          EXPECT_LE(Run, Cap) << C.Name;
          Run = 0;
        }
      }
      EXPECT_EQ(Run, 0u) << C.Name
                         << " canonical rotation must end on a boundary";
      return true;
    });
  }
}

TEST(Enumerate, SynthesisSucceedsOnTheSizeFourVocabulary) {
  // Every enumerated size-4 Power cycle synthesizes, the test validates,
  // and the name round-trips.
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 4;
  auto Cycles = enumerateAll(Opts);
  EXPECT_GT(Cycles.size(), 100u);
  for (const EnumeratedCycle &C : Cycles) {
    auto Test = synthesizeTest(C.Cycle, Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << C.Name << ": " << Test.message();
    EXPECT_EQ(Test->Name, C.Name);
    EXPECT_EQ(Test->validate(), "") << C.Name;
  }
}

TEST(Enumerate, DiySourceStreamsSynthesizedTests) {
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 4;
  Opts.Dependencies = false;
  Opts.Fences = false;
  std::vector<std::string> Errors;
  auto Source = makeDiyTestSource(Opts, "", &Errors);
  ASSERT_TRUE(static_cast<bool>(Source)) << Source.message();
  std::vector<std::string> Names;
  LitmusTest Test;
  while ((*Source)(Test))
    Names.push_back(Test.Name);
  EXPECT_EQ(Names.size(), 6u);
  EXPECT_TRUE(Errors.empty());
  // A filtered source yields the matching subset.
  auto Filtered = makeDiyTestSource(Opts, "^(mp|sb)$");
  ASSERT_TRUE(static_cast<bool>(Filtered));
  unsigned Matched = 0;
  while ((*Filtered)(Test))
    ++Matched;
  EXPECT_EQ(Matched, 2u);
  EXPECT_FALSE(static_cast<bool>(makeDiyTestSource(Opts, "(unclosed")));
}

TEST(Enumerate, StreamedSweepMatchesMaterializedSweep) {
  // runStreamed in small batches produces the same results as one
  // materialized run().
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 5;
  Opts.Dependencies = false;
  Opts.Fences = false;
  std::vector<const Model *> Models = {modelByName("SC"),
                                       modelByName("Power")};
  std::vector<LitmusTest> Tests;
  {
    auto Source = makeDiyTestSource(Opts);
    ASSERT_TRUE(static_cast<bool>(Source));
    LitmusTest Test;
    while ((*Source)(Test))
      Tests.push_back(Test);
  }
  ASSERT_EQ(Tests.size(), 21u);

  SweepEngine Engine(SweepOptions{2});
  SweepReport Materialized = Engine.run(makeJobs(Tests, Models));
  auto Source = makeDiyTestSource(Opts);
  ASSERT_TRUE(static_cast<bool>(Source));
  SweepReport Streamed = Engine.runStreamed(*Source, Models, 4);

  ASSERT_EQ(Streamed.Tests.size(), Materialized.Tests.size());
  for (size_t I = 0; I < Streamed.Tests.size(); ++I) {
    EXPECT_EQ(Streamed.Tests[I].TestName, Materialized.Tests[I].TestName);
    ASSERT_EQ(Streamed.Tests[I].Result.PerModel.size(),
              Materialized.Tests[I].Result.PerModel.size());
    for (size_t M = 0; M < Streamed.Tests[I].Result.PerModel.size(); ++M)
      EXPECT_EQ(Streamed.Tests[I].Result.PerModel[M].ConditionReachable,
                Materialized.Tests[I].Result.PerModel[M].ConditionReachable);
  }
}

TEST(Enumerate, RoundTripAgreesWithTheHandWrittenCatalogue) {
  // Where an enumerated test's canonical name matches a catalogue entry,
  // the swept verdicts must reproduce the documented ones.
  EnumerateOptions Opts;
  Opts.Target = Arch::Power;
  Opts.MaxEdges = 4;
  auto Source = makeDiyTestSource(Opts);
  ASSERT_TRUE(static_cast<bool>(Source));
  SweepEngine Engine(SweepOptions{2});
  SweepReport Report = Engine.runStreamed(*Source, allModels(), 32);

  unsigned Overlap = 0;
  for (const SweepTestResult &T : Report.Tests) {
    const CatalogEntry *Entry = catalogEntry(T.TestName);
    if (!Entry)
      continue;
    ++Overlap;
    for (const auto &[Model, Allowed] : Entry->Expected) {
      const SimulationResult *R = T.Result.forModel(Model);
      if (!R)
        continue;
      EXPECT_EQ(R->ConditionReachable, Allowed)
          << T.TestName << " under " << Model;
    }
  }
  // mp, sb, lb, s, 2+2w and the fenced variants the catalogue names
  // canonically (e.g. mp+lwsync+addr) must overlap.
  EXPECT_GE(Overlap, 5u);
}
