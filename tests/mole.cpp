//===- mole.cpp - Tests for the mole cycle miner ------------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "mole/Mole.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

/// Two-function program exhibiting exactly one idiom.
MoleProgram twoFunctions(std::vector<MoleAccess> A,
                         std::vector<MoleAccess> B) {
  MoleProgram P;
  P.Name = "synthetic";
  P.Functions.push_back({"f0", std::move(A)});
  P.Functions.push_back({"f1", std::move(B)});
  return P;
}

bool hasPattern(const MoleReport &Report, const std::string &Pattern) {
  return Report.patternCounts().count(Pattern) > 0;
}

} // namespace

TEST(Mole, FindsMp) {
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::write("data"), MoleAccess::write("flag")},
      {MoleAccess::read("flag"), MoleAccess::read("data")}));
  EXPECT_TRUE(hasPattern(Report, "mp")) << "message passing expected";
  // mp classifies as OBSERVATION (one fr, rest rf/po).
  for (const MoleCycle &C : Report.Cycles)
    if (C.Pattern == "mp") {
      EXPECT_EQ(C.AxiomClass, "O");
    }
}

TEST(Mole, FindsSb) {
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::write("x"), MoleAccess::read("y")},
      {MoleAccess::write("y"), MoleAccess::read("x")}));
  EXPECT_TRUE(hasPattern(Report, "sb"));
  for (const MoleCycle &C : Report.Cycles)
    if (C.Pattern == "sb") {
      EXPECT_EQ(C.AxiomClass, "P") << "two fr steps need PROPAGATION";
    }
}

TEST(Mole, FindsLbAsThinAir) {
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::read("x"), MoleAccess::write("y")},
      {MoleAccess::read("y"), MoleAccess::write("x")}));
  EXPECT_TRUE(hasPattern(Report, "lb"));
  for (const MoleCycle &C : Report.Cycles)
    if (C.Pattern == "lb") {
      EXPECT_EQ(C.AxiomClass, "T") << "rf-only cycles are NO THIN AIR";
    }
}

TEST(Mole, Finds2p2w) {
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::write("x"), MoleAccess::write("y")},
      {MoleAccess::write("y"), MoleAccess::write("x")}));
  EXPECT_TRUE(hasPattern(Report, "2+2w"));
  for (const MoleCycle &C : Report.Cycles)
    if (C.Pattern == "2+2w") {
      EXPECT_EQ(C.AxiomClass, "P");
    }
}

TEST(Mole, FindsCoherenceShapes) {
  // One function writing then reading x, another writing x.
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::write("x"), MoleAccess::read("x")},
      {MoleAccess::write("x")}));
  EXPECT_TRUE(hasPattern(Report, "coWR"));
  // Same-thread write-write pairs.
  MoleReport Report2 = analyzeProgram(twoFunctions(
      {MoleAccess::write("x"), MoleAccess::write("x")},
      {MoleAccess::read("x")}));
  EXPECT_TRUE(hasPattern(Report2, "coWW"));
}

TEST(Mole, SelfParallelSingleFunction) {
  // A single function still races against a second copy of itself.
  MoleProgram P;
  P.Name = "solo";
  P.Functions.push_back({"f",
                         {MoleAccess::write("x"), MoleAccess::read("y"),
                          MoleAccess::write("y"), MoleAccess::read("x")}});
  MoleReport Report = analyzeProgram(P);
  EXPECT_FALSE(Report.Cycles.empty());
  ASSERT_EQ(Report.Groups.size(), 1u);
  EXPECT_EQ(Report.Groups[0].size(), 1u);
}

TEST(Mole, GroupingSeparatesDisjointFunctions) {
  MoleProgram P;
  P.Name = "disjoint";
  P.Functions.push_back({"a", {MoleAccess::write("x")}});
  P.Functions.push_back({"b", {MoleAccess::read("x")}});
  P.Functions.push_back({"c", {MoleAccess::write("unrelated")}});
  MoleReport Report = analyzeProgram(P);
  EXPECT_EQ(Report.Groups.size(), 2u);
}

TEST(Mole, FencesDoNotBreakCycleStructure) {
  // Static cycles ignore fences: an mp with sync is still an mp cycle
  // (mole reports idioms, not verdicts).
  MoleReport Report = analyzeProgram(twoFunctions(
      {MoleAccess::write("data"), MoleAccess::fence("sync"),
       MoleAccess::write("flag")},
      {MoleAccess::read("flag"), MoleAccess::read("data")}));
  EXPECT_TRUE(hasPattern(Report, "mp"));
}

TEST(Mole, ReductionCollapsesReaderThread) {
  // Fig. 39: a write thread, a reader of that write, and the s shape:
  // rf;fr composes to co, turning ww+rw+r into s.
  MoleProgram P;
  P.Name = "reduce";
  P.Functions.push_back(
      {"t0", {MoleAccess::write("x"), MoleAccess::write("y")}});
  P.Functions.push_back(
      {"t1", {MoleAccess::read("y"), MoleAccess::write("x")}});
  P.Functions.push_back({"t2", {MoleAccess::read("x")}});
  MoleReport Report = analyzeProgram(P);
  // Both the collapsed s and two-thread cycles must be present.
  EXPECT_TRUE(hasPattern(Report, "s"));
}

TEST(Mole, PerLocationLimitRespected) {
  // Four threads all hitting one variable cannot form a critical cycle
  // with four accesses to it.
  MoleProgram P;
  P.Name = "fourhit";
  for (int I = 0; I < 4; ++I)
    P.Functions.push_back(
        {"f" + std::to_string(I),
         {MoleAccess::write("x"), MoleAccess::read("y")}});
  MoleReport Report = analyzeProgram(P);
  for (const MoleCycle &C : Report.Cycles)
    EXPECT_LE(C.Threads, 3u) << C.Pattern << " " << C.Edges;
}

TEST(Mole, RcuReportShape) {
  MoleReport Report = analyzeProgram(rcuProgram());
  EXPECT_FALSE(Report.Cycles.empty());
  // The RCU idiom's heart: message passing over gbl_foo/foo2_a.
  EXPECT_TRUE(hasPattern(Report, "mp"));
  // All functions share state, so a single group.
  EXPECT_EQ(Report.Groups.size(), 1u);
}

TEST(Mole, PostgresReportShape) {
  MoleReport Report = analyzeProgram(postgresProgram());
  EXPECT_TRUE(hasPattern(Report, "mp"));
  EXPECT_TRUE(hasPattern(Report, "sb"))
      << "the pgsql latch bug is a store-buffering shape";
  EXPECT_GT(Report.patternCounts().size(), 5u);
}

TEST(Mole, ApacheReportShape) {
  MoleReport Report = analyzeProgram(apacheProgram());
  EXPECT_TRUE(hasPattern(Report, "mp"));
  auto Axioms = Report.axiomCounts();
  EXPECT_GT(Axioms["S"], 0u) << "SC-per-location shapes on the slot";
}

TEST(Mole, CountsAreStable) {
  // Determinism: two runs agree exactly.
  MoleReport A = analyzeProgram(postgresProgram());
  MoleReport B = analyzeProgram(postgresProgram());
  EXPECT_EQ(A.patternCounts(), B.patternCounts());
  EXPECT_EQ(A.axiomCounts(), B.axiomCounts());
}

//===----------------------------------------------------------------------===//
// The mini-IR text format.
//===----------------------------------------------------------------------===//

#include "mole/MoleParser.h"

TEST(MoleParser, ParsesProgram) {
  auto Program = parseMoleProgram(R"(
program demo
fn writer {
  write data
  fence sync   // publish
  write flag
}
fn reader {
  read flag
  read data
}
)");
  ASSERT_TRUE(static_cast<bool>(Program)) << Program.message();
  EXPECT_EQ(Program->Name, "demo");
  ASSERT_EQ(Program->Functions.size(), 2u);
  EXPECT_EQ(Program->Functions[0].Body.size(), 3u);
  EXPECT_EQ(Program->Functions[0].Body[1].AccessKind,
            MoleAccess::Kind::Fence);
  MoleReport Report = analyzeProgram(*Program);
  EXPECT_GT(Report.patternCounts().count("mp"), 0u);
}

TEST(MoleParser, RejectsMalformed) {
  EXPECT_FALSE(static_cast<bool>(parseMoleProgram("read x\n")));
  EXPECT_FALSE(static_cast<bool>(parseMoleProgram("fn f {\nread x\n")));
  EXPECT_FALSE(static_cast<bool>(
      parseMoleProgram("fn f {\nfrob x\n}\n")));
  EXPECT_FALSE(static_cast<bool>(parseMoleProgram("program x\n")));
  EXPECT_FALSE(static_cast<bool>(
      parseMoleProgram("fn f {\nread\n}\n")));
}

TEST(MoleParser, RoundTrips) {
  MoleProgram Program = rcuProgram();
  auto Again = parseMoleProgram(moleProgramToString(Program));
  ASSERT_TRUE(static_cast<bool>(Again)) << Again.message();
  EXPECT_EQ(Again->Name, Program.Name);
  ASSERT_EQ(Again->Functions.size(), Program.Functions.size());
  // Analysis of the round-trip agrees exactly.
  EXPECT_EQ(analyzeProgram(*Again).patternCounts(),
            analyzeProgram(Program).patternCounts());
}
