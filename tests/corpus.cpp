//===- corpus.cpp - The committed .litmus corpus ------------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The litmus/ directory ships every catalogue test as a standalone
/// .litmus file (the form herd/diy users exchange tests in). Each file
/// must parse, match its catalogue twin, and reproduce the documented
/// verdicts when loaded from disk.
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "litmus/Parser.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace cats;

namespace {

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Out;
  for (const auto &Entry :
       std::filesystem::directory_iterator(CATS_LITMUS_DIR))
    if (Entry.path().extension() == ".litmus")
      Out.push_back(Entry.path().string());
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Corpus, OneFilePerCatalogueEntry) {
  EXPECT_EQ(corpusFiles().size(), figureCatalog().size());
}

class CorpusFileTest : public ::testing::TestWithParam<std::string> {};

TEST_P(CorpusFileTest, ParsesAndMatchesCatalogue) {
  auto Test = parseLitmusFile(GetParam());
  ASSERT_TRUE(static_cast<bool>(Test)) << Test.message();
  const CatalogEntry *Entry = catalogEntry(Test->Name);
  ASSERT_NE(Entry, nullptr) << "no catalogue twin for " << Test->Name;
  EXPECT_EQ(Test->TargetArch, Entry->Test.TargetArch);
  EXPECT_EQ(Test->Threads.size(), Entry->Test.Threads.size());
  EXPECT_EQ(Test->Final.toString(), Entry->Test.Final.toString());
  // Verdicts from disk match the documented ones.
  for (const auto &[ModelName, Expected] : Entry->Expected) {
    const Model *M = modelByName(ModelName);
    ASSERT_NE(M, nullptr);
    EXPECT_EQ(allowedBy(*Test, *M), Expected)
        << Test->Name << " under " << ModelName;
  }
}

INSTANTIATE_TEST_SUITE_P(Files, CorpusFileTest,
                         ::testing::ValuesIn(corpusFiles()),
                         [](const ::testing::TestParamInfo<std::string> &I) {
                           std::string Name =
                               std::filesystem::path(I.param).stem();
                           for (char &C : Name)
                             if (!std::isalnum(
                                     static_cast<unsigned char>(C)))
                               C = '_';
                           return Name;
                         });
