//===- machine.cpp - Tests for the intermediate machine ----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Theorem 7.1, empirically: the intermediate machine accepts exactly the
/// candidate executions the axiomatic model allows, over the entire figure
/// catalogue, for SC, TSO and Power. Plus multi-event agreement (the
/// Table IX comparison point must be verdict-identical to single-event).
///
//===----------------------------------------------------------------------===//

#include "herd/MultiEvent.h"
#include "herd/Simulator.h"
#include "litmus/Catalog.h"
#include "machine/IntermediateMachine.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;

//===----------------------------------------------------------------------===//
// Theorem 7.1 sweep.
//===----------------------------------------------------------------------===//

struct EquivCase {
  size_t EntryIndex;
  const char *ModelName;
};

class MachineEquivalenceTest : public ::testing::TestWithParam<EquivCase> {
};

TEST_P(MachineEquivalenceTest, MachineMatchesAxioms) {
  const CatalogEntry &Entry = figureCatalog()[GetParam().EntryIndex];
  const Model *M = modelByName(GetParam().ModelName);
  ASSERT_NE(M, nullptr);
  auto Compiled = CompiledTest::compile(Entry.Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    bool Axiomatic = M->allows(Cand.Exe);
    MachineResult Machine = machineAccepts(Cand.Exe, *M);
    EXPECT_FALSE(Machine.HitLimit);
    EXPECT_EQ(Machine.Accepted, Axiomatic)
        << Entry.Test.Name << " under " << M->name() << "\n"
        << Cand.Exe.toString();
    return true;
  });
}

static std::vector<EquivCase> equivCases() {
  std::vector<EquivCase> Cases;
  for (size_t I = 0; I < figureCatalog().size(); ++I)
    for (const char *Name : {"SC", "TSO", "Power"})
      Cases.push_back({I, Name});
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(
    Figures, MachineEquivalenceTest, ::testing::ValuesIn(equivCases()),
    [](const ::testing::TestParamInfo<EquivCase> &Info) {
      std::string Name =
          figureCatalog()[Info.param.EntryIndex].Test.Name +
          std::string("_") + Info.param.ModelName;
      for (char &C : Name)
        if (!std::isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

//===----------------------------------------------------------------------===//
// Targeted machine behaviours.
//===----------------------------------------------------------------------===//

namespace {

Candidate witnessOf(const char *TestName) {
  const CatalogEntry *Entry = catalogEntry(TestName);
  EXPECT_NE(Entry, nullptr) << TestName;
  auto Compiled = CompiledTest::compile(Entry->Test);
  EXPECT_TRUE(static_cast<bool>(Compiled));
  Candidate Witness;
  bool Found = false;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Found && Cand.Consistent &&
        Cand.Out.satisfies(Entry->Test.Final)) {
      Witness = Cand;
      Found = true;
    }
    return true;
  });
  EXPECT_TRUE(Found);
  return Witness;
}

} // namespace

TEST(Machine, RejectsMpWitnessUnderPowerWithFences) {
  Candidate Witness = witnessOf("mp+lwsync+addr");
  MachineResult R = machineAccepts(Witness.Exe, *modelByName("Power"));
  EXPECT_FALSE(R.Accepted);
  EXPECT_GT(R.StatesVisited, 0u);
}

TEST(Machine, AcceptsMpWitnessUnderPowerWithoutFences) {
  Candidate Witness = witnessOf("mp");
  MachineResult R = machineAccepts(Witness.Exe, *modelByName("Power"));
  EXPECT_TRUE(R.Accepted);
}

TEST(Machine, AcceptsSbWitnessUnderTso) {
  Candidate Witness = witnessOf("sb");
  EXPECT_TRUE(machineAccepts(Witness.Exe, *modelByName("TSO")).Accepted);
  EXPECT_FALSE(machineAccepts(Witness.Exe, *modelByName("SC")).Accepted);
}

TEST(Machine, StateLimitReported) {
  Candidate Witness = witnessOf("iriw+lwsyncs");
  MachineResult R = machineAccepts(Witness.Exe, *modelByName("Power"), 2);
  EXPECT_TRUE(R.HitLimit || R.StatesVisited <= 2);
}

TEST(Machine, OperationalCostExceedsAxiomatic) {
  // The Table IX story in miniature: the machine visits many states where
  // the axiomatic check is a handful of closures.
  Candidate Witness = witnessOf("iriw+syncs");
  MachineResult R = machineAccepts(Witness.Exe, *modelByName("Power"));
  EXPECT_FALSE(R.Accepted);
  EXPECT_GT(R.StatesVisited, 20u);
}

//===----------------------------------------------------------------------===//
// Multi-event agreement and cost.
//===----------------------------------------------------------------------===//

class MultiEventTest : public ::testing::TestWithParam<size_t> {};

TEST_P(MultiEventTest, VerdictMatchesSingleEvent) {
  const CatalogEntry &Entry = figureCatalog()[GetParam()];
  const Model &Power = *modelByName("Power");
  auto Compiled = CompiledTest::compile(Entry.Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    MultiEventResult Multi = multiEventCheck(Cand.Exe, Power);
    EXPECT_EQ(Multi.Allowed, Power.allows(Cand.Exe)) << Entry.Test.Name;
    EXPECT_GT(Multi.ExpandedEvents, Cand.Exe.numEvents());
    return true;
  });
}

INSTANTIATE_TEST_SUITE_P(
    Figures, MultiEventTest,
    ::testing::Range<size_t>(0, figureCatalog().size()));

TEST(MultiEvent, ExpansionCountsThreads) {
  Candidate Witness = witnessOf("mp");
  MultiEventResult R =
      multiEventCheck(Witness.Exe, *modelByName("Power"));
  // 4 writes (2 init + 2 program) gain 2 copies each (2 threads), reads
  // stay single: 6 + 4*2 = 14.
  EXPECT_EQ(R.ExpandedEvents, 14u);
}
