//===- obs.cpp - The observability subsystem ------------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the observability subsystem: counters must count exactly under the
/// sweep thread pool, trace output must be valid Chrome trace JSON with
/// balanced B/E events, the cats-metrics/1 section must merge by
/// summation through the campaign merger, and — the contract every other
/// test relies on — enabling observability must not change any report.
///
//===----------------------------------------------------------------------===//

#include "campaign/Merge.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "sweep/ReportIO.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

using namespace cats;

namespace {

/// RAII guard: every test leaves observability off and the registry/trace
/// buffers clean, whatever its own toggling did.
struct ObsSandbox {
  ObsSandbox() {
    obs::setMetricsEnabled(false);
    obs::setTraceEnabled(false);
    obs::resetMetrics();
    obs::resetTrace();
  }
  ~ObsSandbox() {
    obs::setMetricsEnabled(false);
    obs::setTraceEnabled(false);
    obs::resetMetrics();
    obs::resetTrace();
  }
};

std::vector<LitmusTest> catalogueSlice(size_t N) {
  std::vector<LitmusTest> Tests;
  for (const CatalogEntry &Entry : figureCatalog()) {
    Tests.push_back(Entry.Test);
    if (Tests.size() >= N)
      break;
  }
  return Tests;
}

unsigned long long counterIn(const JsonValue &Metrics,
                             const std::string &Name) {
  const JsonValue *Counters = Metrics.get("counters");
  if (!Counters)
    return 0;
  const JsonValue *V = Counters->get(Name);
  return V && V->isNumber() ? static_cast<unsigned long long>(V->asNumber())
                            : 0;
}

} // namespace

//===----------------------------------------------------------------------===//
// Counters and histograms
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterExactUnderConcurrentIncrements) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);
  obs::Counter &C = obs::counter("test.concurrent");
  constexpr unsigned NumThreads = 8;
  constexpr unsigned long long PerThread = 50000;
  std::vector<std::thread> Pool;
  for (unsigned T = 0; T < NumThreads; ++T)
    Pool.emplace_back([&C] {
      for (unsigned long long I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * PerThread);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo) {
  ObsSandbox Sandbox;
  obs::Histogram &H = obs::histogram("test.hist");
  H.record(0);  // bucket 0
  H.record(1);  // bucket 1
  H.record(2);  // bucket 2
  H.record(3);  // bucket 2
  H.record(4);  // bucket 3
  H.record(1000); // bucket 10
  EXPECT_EQ(H.count(), 6u);
  EXPECT_EQ(H.sum(), 1010u);
  EXPECT_EQ(H.bucket(0), 1u);
  EXPECT_EQ(H.bucket(1), 1u);
  EXPECT_EQ(H.bucket(2), 2u);
  EXPECT_EQ(H.bucket(3), 1u);
  EXPECT_EQ(H.bucket(10), 1u);
}

TEST(Metrics, DisabledTicksDoNotCount) {
  ObsSandbox Sandbox;
  obs::tick("test.disabled");
  EXPECT_EQ(obs::counter("test.disabled").value(), 0u);
  obs::setMetricsEnabled(true);
  obs::tick("test.disabled");
  EXPECT_EQ(obs::counter("test.disabled").value(), 1u);
}

TEST(Metrics, SweepCountsCandidatesAndPerAxiomKills) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);

  // Sweep a catalogue slice under SC: the kill counters must account for
  // every rejected consistent candidate, and candidates_total must match
  // the per-test counts the report already carries.
  std::vector<const Model *> Models{modelByName("SC")};
  ASSERT_NE(Models[0], nullptr);
  SweepEngine Engine(SweepOptions{2});
  SweepReport Report = Engine.run(makeJobs(catalogueSlice(12), Models));

  unsigned long long WantTotal = 0, WantConsistent = 0,
                     WantAllowed = 0;
  for (const SweepTestResult &T : Report.Tests) {
    WantTotal += T.Result.CandidatesTotal;
    WantConsistent += T.Result.CandidatesConsistent;
    WantAllowed += T.Result.PerModel[0].CandidatesAllowed;
  }

  JsonValue Metrics = obs::metricsToJson();
  EXPECT_EQ(counterIn(Metrics, "judge.tests"), Report.Tests.size());
  EXPECT_EQ(counterIn(Metrics, "judge.candidates_total"), WantTotal);
  EXPECT_EQ(counterIn(Metrics, "judge.candidates_consistent"),
            WantConsistent);
  EXPECT_EQ(counterIn(Metrics, "judge.allowed.SC"), WantAllowed);

  // Every consistent-but-rejected candidate violates at least one axiom,
  // and (unique to SC) SC PER LOCATION + NO THIN AIR + PROPAGATION style
  // kills sum to at least the rejected count.
  unsigned long long Kills = 0;
  const JsonValue *Counters = Metrics.get("counters");
  ASSERT_NE(Counters, nullptr);
  for (const auto &[Name, V] : Counters->members())
    if (Name.rfind("judge.kill.SC.", 0) == 0)
      Kills += static_cast<unsigned long long>(V.asNumber());
  EXPECT_GE(Kills, WantConsistent - WantAllowed);
}

//===----------------------------------------------------------------------===//
// Trace
//===----------------------------------------------------------------------===//

TEST(Trace, BalancedEventsParseableAndPerThreadOrdered) {
  ObsSandbox Sandbox;
  obs::setTraceEnabled(true);

  {
    obs::Span Outer("outer");
    obs::Span Inner("inner");
  }
  std::thread Worker([] {
    obs::Span T("worker span");
  });
  Worker.join();

  // Valid JSON through the bundled reader.
  const std::string Text = obs::traceToJson().dump();
  auto Parsed = JsonValue::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();

  const JsonValue *Events = Parsed->get("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_TRUE(Events->isArray());
  EXPECT_EQ(Events->elements().size(), 6u); // 3 spans x B+E

  // Balanced per tid: every E closes the innermost open B of that thread
  // with the same name, and timestamps never run backwards per thread.
  std::map<double, std::vector<std::pair<std::string, char>>> PerTid;
  std::map<double, double> LastTs;
  for (const JsonValue &E : Events->elements()) {
    ASSERT_TRUE(E.get("name") && E.get("ph") && E.get("ts") &&
                E.get("pid") && E.get("tid"));
    const double Tid = E.get("tid")->asNumber();
    const std::string Ph = E.get("ph")->asString();
    ASSERT_TRUE(Ph == "B" || Ph == "E");
    const double Ts = E.get("ts")->asNumber();
    EXPECT_GE(Ts, LastTs[Tid]);
    LastTs[Tid] = Ts;
    auto &Stack = PerTid[Tid];
    if (Ph == "B") {
      Stack.push_back({E.get("name")->asString(), 'B'});
    } else {
      ASSERT_FALSE(Stack.empty()) << "E without a matching B";
      EXPECT_EQ(Stack.back().first, E.get("name")->asString());
      Stack.pop_back();
    }
  }
  for (const auto &[Tid, Stack] : PerTid)
    EXPECT_TRUE(Stack.empty()) << "unclosed B events on tid " << Tid;
}

TEST(Trace, DisabledSpansEmitNothing) {
  ObsSandbox Sandbox;
  {
    obs::Span S("invisible");
  }
  auto Parsed = JsonValue::parse(obs::traceToJson().dump());
  ASSERT_TRUE(static_cast<bool>(Parsed));
  EXPECT_TRUE(Parsed->get("traceEvents")->elements().empty());
}

TEST(Trace, SweepEmitsJudgeSpans) {
  ObsSandbox Sandbox;
  obs::setTraceEnabled(true);
  std::vector<const Model *> Models{modelByName("SC")};
  SweepEngine Engine(SweepOptions{2});
  Engine.run(makeJobs(catalogueSlice(4), Models));
  obs::setTraceEnabled(false);

  unsigned JudgeSpans = 0;
  JsonValue Trace = obs::traceToJson();
  for (const JsonValue &E : Trace.get("traceEvents")->elements())
    if (E.get("ph")->asString() == "B" &&
        E.get("name")->asString().rfind("judge ", 0) == 0)
      ++JudgeSpans;
  EXPECT_EQ(JudgeSpans, 4u);
}

//===----------------------------------------------------------------------===//
// Metrics JSON: round-trip and merge summation
//===----------------------------------------------------------------------===//

TEST(MetricsJson, SnapshotRoundTripsThroughTheJsonReader) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);
  obs::counter("rt.a").add(3);
  obs::counter("rt.b").add(40);
  obs::histogram("rt.h").record(7);
  obs::histogram("rt.h").record(900);

  JsonValue Snapshot = obs::metricsToJson();
  auto Reparsed = JsonValue::parse(Snapshot.dump());
  ASSERT_TRUE(static_cast<bool>(Reparsed)) << Reparsed.message();
  EXPECT_TRUE(*Reparsed == Snapshot);
  EXPECT_EQ(counterIn(*Reparsed, "rt.a"), 3u);
  EXPECT_EQ(counterIn(*Reparsed, "rt.b"), 40u);
  const JsonValue *H = Reparsed->get("histograms")->get("rt.h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->get("count")->asNumber(), 2);
  EXPECT_EQ(H->get("sum")->asNumber(), 907);
}

TEST(MetricsJson, MergeSumsCountersAndHistograms) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);
  obs::counter("m.a").add(5);
  obs::counter("m.b").add(2);
  obs::histogram("m.h").record(3);
  JsonValue A = obs::metricsToJson();

  obs::resetMetrics();
  obs::counter("m.a").add(10);
  obs::counter("m.c").add(1);
  obs::histogram("m.h").record(3);
  obs::histogram("m.h").record(64);
  JsonValue B = obs::metricsToJson();

  std::string Error;
  ASSERT_TRUE(obs::mergeMetricsJson(A, B, Error)) << Error;
  EXPECT_EQ(counterIn(A, "m.a"), 15u);
  EXPECT_EQ(counterIn(A, "m.b"), 2u);
  EXPECT_EQ(counterIn(A, "m.c"), 1u);
  const JsonValue *H = A.get("histograms")->get("m.h");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->get("count")->asNumber(), 3);
  EXPECT_EQ(H->get("sum")->asNumber(), 70);
  // Bucket 2 (value 3, twice) and bucket 7 (value 64, once).
  unsigned long long Bucket2 = 0, Bucket7 = 0;
  for (const JsonValue &Pair : H->get("buckets")->elements()) {
    if (Pair.elements()[0].asNumber() == 2)
      Bucket2 = static_cast<unsigned long long>(
          Pair.elements()[1].asNumber());
    if (Pair.elements()[0].asNumber() == 7)
      Bucket7 = static_cast<unsigned long long>(
          Pair.elements()[1].asNumber());
  }
  EXPECT_EQ(Bucket2, 2u);
  EXPECT_EQ(Bucket7, 1u);
}

TEST(MetricsJson, MergeRejectsForeignDocuments) {
  ObsSandbox Sandbox;
  JsonValue A = obs::metricsToJson();
  JsonValue B = JsonValue::object();
  B.set("schema", "cats-sweep-report/1");
  std::string Error;
  EXPECT_FALSE(obs::mergeMetricsJson(A, B, Error));
  EXPECT_FALSE(Error.empty());
}

TEST(MetricsJson, SweepReportMergeFoldsMetricsSections) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);

  // Two one-test sweep reports, each carrying its own metrics section, as
  // two campaign shards would produce under --metrics.
  std::vector<const Model *> Models{modelByName("SC")};
  SweepEngine Engine(SweepOptions{1});
  std::vector<JsonValue> Shards;
  unsigned long long TotalCandidates = 0;
  for (size_t I = 0; I < 2; ++I) {
    obs::resetMetrics();
    SweepReport Report =
        Engine.run(makeJobs({figureCatalog()[I].Test}, Models));
    JsonValue Doc = sweepReportToJson(Report);
    JsonValue Metrics = obs::metricsToJson();
    TotalCandidates += counterIn(Metrics, "judge.candidates_total");
    Doc.set("metrics", std::move(Metrics));
    Shards.push_back(std::move(Doc));
  }

  auto Merged = mergeReports(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged)) << Merged.message();
  const JsonValue *Metrics = Merged->get("metrics");
  ASSERT_NE(Metrics, nullptr) << "merged report dropped the metrics";
  EXPECT_EQ(counterIn(*Metrics, "judge.candidates_total"),
            TotalCandidates);
  EXPECT_EQ(counterIn(*Metrics, "judge.tests"), 2u);

  // Reports without metrics still merge to a metrics-free document.
  std::vector<JsonValue> Bare;
  for (const JsonValue &Doc : Shards) {
    JsonValue Copy = JsonValue::object();
    for (const auto &[Key, Member] : Doc.members())
      if (Key != "metrics")
        Copy.set(Key, Member);
    Bare.push_back(std::move(Copy));
  }
  auto MergedBare = mergeReports(Bare);
  ASSERT_TRUE(static_cast<bool>(MergedBare)) << MergedBare.message();
  EXPECT_EQ(MergedBare->get("metrics"), nullptr);
}

TEST(MetricsJson, ReportReaderIgnoresTheMetricsSection) {
  ObsSandbox Sandbox;
  obs::setMetricsEnabled(true);
  std::vector<const Model *> Models{modelByName("SC")};
  SweepEngine Engine(SweepOptions{1});
  SweepReport Report =
      Engine.run(makeJobs(catalogueSlice(2), Models));
  JsonValue Doc = sweepReportToJson(Report);
  JsonValue Plain = Doc; // before attaching metrics
  Doc.set("metrics", obs::metricsToJson());

  // The cats-sweep-report/1 reader treats metrics as an unknown member:
  // parsing the augmented document yields the same report as the plain
  // one (forward compatibility of the additive section).
  auto FromAugmented = sweepReportFromJson(Doc);
  auto FromPlain = sweepReportFromJson(Plain);
  ASSERT_TRUE(static_cast<bool>(FromAugmented)) << FromAugmented.message();
  ASSERT_TRUE(static_cast<bool>(FromPlain)) << FromPlain.message();
  EXPECT_TRUE(sweepReportToJson(*FromAugmented) ==
              sweepReportToJson(*FromPlain));
}

//===----------------------------------------------------------------------===//
// Determinism: observability must never change a report
//===----------------------------------------------------------------------===//

TEST(ObsDeterminism, ReportsUnaffectedByEnablingObservability) {
  ObsSandbox Sandbox;
  std::vector<const Model *> Models{modelByName("SC"),
                                    modelByName("Power")};
  SweepEngine Engine(SweepOptions{2});
  const std::vector<SweepJob> Jobs = makeJobs(catalogueSlice(8), Models);

  SweepReport Plain = Engine.run(Jobs);

  obs::setMetricsEnabled(true);
  obs::setTraceEnabled(true);
  SweepReport Observed = Engine.run(Jobs);
  obs::setMetricsEnabled(false);
  obs::setTraceEnabled(false);

  // Identical up to wall time: compare the normalized JSON renderings.
  EXPECT_TRUE(zeroWallTimes(sweepReportToJson(Plain)) ==
              zeroWallTimes(sweepReportToJson(Observed)));
}

//===----------------------------------------------------------------------===//
// Progress
//===----------------------------------------------------------------------===//

TEST(Progress, DisabledReporterIsSilentAndSafe) {
  ObsSandbox Sandbox;
  obs::ProgressReporter Reporter("test", 100, /*Enabled=*/false);
  Reporter.update(10);
  Reporter.update(100, 5, 5);
  Reporter.finish(); // and again via the destructor
  SUCCEED();
}

TEST(Progress, EnabledReporterSurvivesManyUpdates) {
  ObsSandbox Sandbox;
  // Writes go to stderr (gtest swallows them); this pins rate-limiting
  // and the unknown-total path against crashes and division by zero.
  obs::ProgressReporter Reporter("test", 0, /*Enabled=*/true);
  for (unsigned I = 1; I <= 1000; ++I)
    Reporter.update(I, I / 2, I - I / 2);
  Reporter.finish();
  SUCCEED();
}
