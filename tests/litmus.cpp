//===- litmus.cpp - Tests for the litmus library ----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/Compiler.h"
#include "litmus/LitmusTest.h"
#include "litmus/Parser.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

const char *MpLwsyncAddr = R"(
Power mp+lwsync+addr
{ x=0; y=0 }
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)";

const char *SbFfences = R"(
TSO sb+mfences
{ x=0; y=0 }
P0:
  st x, #1
  mfence
  ld r1, y
P1:
  st y, #1
  mfence
  ld r1, x
exists (0:r1=0 /\ 1:r1=0)
)";

LitmusTest parseOrDie(const char *Text) {
  auto Test = parseLitmus(Text);
  EXPECT_TRUE(static_cast<bool>(Test)) << Test.message();
  return Test.take();
}

/// Finds the memory event of thread \p T, program position \p Nth among
/// memory events of that thread.
EventId nthMemEvent(const Execution &Exe, ThreadId T, unsigned Nth) {
  auto Events = Exe.threadEvents(T);
  EXPECT_LT(Nth, Events.size());
  return Events[Nth];
}

} // namespace

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, HeaderAndInit) {
  LitmusTest Test = parseOrDie(MpLwsyncAddr);
  EXPECT_EQ(Test.Name, "mp+lwsync+addr");
  EXPECT_EQ(Test.TargetArch, Arch::Power);
  EXPECT_EQ(Test.Init.at("x"), 0);
  EXPECT_EQ(Test.Init.at("y"), 0);
  ASSERT_EQ(Test.numThreads(), 2u);
  EXPECT_EQ(Test.Threads[0].size(), 3u);
  EXPECT_EQ(Test.Threads[1].size(), 3u);
}

TEST(Parser, FinalCondition) {
  LitmusTest Test = parseOrDie(MpLwsyncAddr);
  ASSERT_EQ(Test.Final.Disjuncts.size(), 1u);
  ASSERT_EQ(Test.Final.Disjuncts[0].size(), 2u);
  const ConditionAtom &A = Test.Final.Disjuncts[0][0];
  EXPECT_EQ(A.AtomKind, ConditionAtom::Kind::RegEquals);
  EXPECT_EQ(A.Thread, 1);
  EXPECT_EQ(A.Reg, 1);
  EXPECT_EQ(A.Val, 1);
}

TEST(Parser, Disjunction) {
  LitmusTest Test = parseOrDie(R"(
SC two
P0:
  st x, #1
exists (x=1 \/ x=0)
)");
  EXPECT_EQ(Test.Final.Disjuncts.size(), 2u);
}

TEST(Parser, MemoryAtom) {
  LitmusTest Test = parseOrDie(R"(
SC memcond
P0:
  st x, #2
exists (x=2)
)");
  const ConditionAtom &A = Test.Final.Disjuncts[0][0];
  EXPECT_EQ(A.AtomKind, ConditionAtom::Kind::MemEquals);
  EXPECT_EQ(A.Loc, "x");
  EXPECT_EQ(A.Val, 2);
}

TEST(Parser, RejectsUnknownArch) {
  auto Test = parseLitmus("Alpha t\nP0:\n st x, #1\n");
  EXPECT_FALSE(static_cast<bool>(Test));
  EXPECT_NE(Test.message().find("architecture"), std::string::npos);
}

TEST(Parser, RejectsWrongFenceForArch) {
  auto Test = parseLitmus(R"(
TSO bad
P0:
  st x, #1
  lwsync
  st y, #1
)");
  EXPECT_FALSE(static_cast<bool>(Test));
}

TEST(Parser, RejectsMalformedInstruction) {
  auto Test = parseLitmus(R"(
SC bad
P0:
  ld x
)");
  EXPECT_FALSE(static_cast<bool>(Test));
  EXPECT_NE(Test.message().find("line"), std::string::npos);
}

TEST(Parser, CommentsIgnored) {
  LitmusTest Test = parseOrDie(R"(
SC c // trailing
// whole line
P0:
  st x, #1 // after instruction
exists (x=1)
)");
  EXPECT_EQ(Test.Threads[0].size(), 1u);
}

TEST(Parser, RoundTripThroughToString) {
  LitmusTest Test = parseOrDie(MpLwsyncAddr);
  auto Again = parseLitmus(Test.toString());
  ASSERT_TRUE(static_cast<bool>(Again)) << Again.message();
  EXPECT_EQ(Again->Name, Test.Name);
  EXPECT_EQ(Again->Threads.size(), Test.Threads.size());
  EXPECT_EQ(Again->Threads[1][2].toString(), Test.Threads[1][2].toString());
  EXPECT_EQ(Again->Final.toString(), Test.Final.toString());
}

TEST(Parser, InitSectionValueForms) {
  // Signs, interior whitespace, a multi-line section, and immediates the
  // native codegen replays into cells verbatim.
  LitmusTest Test = parseOrDie(R"(
SC inits
{ x = -1 ; y=+2;
  z = 0 }
P0:
  ld r1, x
exists (0:r1=-1)
)");
  EXPECT_EQ(Test.Init.at("x"), -1);
  EXPECT_EQ(Test.Init.at("y"), 2);
  EXPECT_EQ(Test.Init.at("z"), 0);
  EXPECT_EQ(Test.Final.Disjuncts[0][0].Val, -1);
}

TEST(Parser, EmptyInitSection) {
  LitmusTest Test = parseOrDie("SC empty\n{ }\nP0:\n  st x, #1\n");
  EXPECT_TRUE(Test.Init.empty());
}

TEST(Parser, RejectsMalformedInitValues) {
  // The stdlib conversions used to throw (crashing the CLI) instead of
  // reporting a parse error on these.
  for (const char *Init :
       {"{ x=banana }", "{ x=1abc }", "{ =1 }", "{ x=--2 }",
        "{ x=99999999999999999999 }", "{ x=1=2 }"}) {
    std::string Text = std::string("SC bad\n") + Init + "\nP0:\n st x, #1\n";
    auto Test = parseLitmus(Text);
    EXPECT_FALSE(static_cast<bool>(Test)) << Init;
    EXPECT_NE(Test.message().find("line"), std::string::npos) << Init;
  }
}

TEST(Parser, SharedLocationDeclarations) {
  // Locations appear by use, by init-only declaration, and by
  // condition-only mention; all take part in outcomes, in first-use
  // order (code, then init, then condition).
  LitmusTest Test = parseOrDie(R"(
SC locs
{ b=5; a=1 }
P0:
  ld r1, a
  st c, r1
exists (c=1 /\ b=5 /\ d=0)
)");
  std::vector<std::string> Locs = Test.locations();
  ASSERT_EQ(Locs.size(), 4u);
  EXPECT_EQ(Locs[0], "a");
  EXPECT_EQ(Locs[1], "c");
  EXPECT_EQ(Locs[2], "b");
  EXPECT_EQ(Locs[3], "d");
  // The compiler interns the same set, so init-only/condition-only
  // locations get initial writes and final-memory entries.
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  EXPECT_EQ(Compiled->skeleton().LocationNames.size(), 4u);
}

TEST(Parser, RegisterNaming) {
  // Multi-digit registers parse; junk and overflowing names are errors,
  // not crashes.
  LitmusTest Test = parseOrDie("SC regs\nP0:\n  ld r12, x\n  mov r0, r12\n"
                               "exists (0:r12=0)");
  EXPECT_EQ(Test.Threads[0][0].Dst, 12);
  for (const char *Line :
       {"ld r, x", "ld rx, x", "ld r1x, x", "ld r99999999999999, x",
        "ld x, x"}) {
    std::string Text = std::string("SC bad\nP0:\n  ") + Line + "\n";
    auto Bad = parseLitmus(Text);
    EXPECT_FALSE(static_cast<bool>(Bad)) << Line;
    EXPECT_NE(Bad.message().find("line"), std::string::npos) << Line;
  }
}

TEST(Parser, RejectsMalformedImmediates) {
  for (const char *Line : {"st x, #beef", "st x, #", "st x, #1x",
                           "mov r1, #12345678901234567890"}) {
    std::string Text = std::string("SC bad\nP0:\n  ") + Line + "\n";
    auto Bad = parseLitmus(Text);
    EXPECT_FALSE(static_cast<bool>(Bad)) << Line;
  }
}

TEST(Parser, RejectsMalformedConditionAtoms) {
  for (const char *Cond :
       {"exists (0:r1=x)", "exists (abc:r1=0)", "exists (0:rx=0)",
        "exists (=3)", "exists (99999999999:r1=0)"}) {
    std::string Text = std::string("SC bad\nP0:\n  st x, #1\n") + Cond +
                       "\n";
    auto Bad = parseLitmus(Text);
    EXPECT_FALSE(static_cast<bool>(Bad)) << Cond;
  }
}

TEST(Parser, RejectsMalformedThreadHeader) {
  auto Bad = parseLitmus("SC bad\nP1x:\n  st x, #1\n");
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("thread"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Compiler: events, po, fences
//===----------------------------------------------------------------------===//

TEST(Compiler, EventLayout) {
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  const Execution &Exe = Compiled->skeleton();
  // 2 init writes + 2 stores + 2 loads.
  EXPECT_EQ(Exe.numEvents(), 6u);
  EXPECT_EQ(Exe.initWrites().count(), 2u);
  EXPECT_EQ(Exe.reads().count(), 2u);
  EXPECT_EQ(Exe.writes().count(), 4u);
}

TEST(Compiler, FenceRelation) {
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  Relation Lwsync = Exe.fenceRelation("lwsync");
  EventId Wx = nthMemEvent(Exe, 0, 0);
  EventId Wy = nthMemEvent(Exe, 0, 1);
  EXPECT_TRUE(Lwsync.test(Wx, Wy));
  EXPECT_EQ(Lwsync.countPairs(), 1u);
  EXPECT_TRUE(Exe.fenceRelation("sync").empty());
}

TEST(Compiler, AddressDependencyViaXor) {
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EventId Ry = nthMemEvent(Exe, 1, 0);
  EventId Rx = nthMemEvent(Exe, 1, 1);
  EXPECT_TRUE(Exe.Addr.test(Ry, Rx)) << "false dep through xor must count";
  EXPECT_TRUE(Exe.Data.empty());
  EXPECT_TRUE(Exe.Ctrl.empty());
}

TEST(Compiler, DataDependency) {
  LitmusTest Test = parseOrDie(R"(
Power lb+datas
P0:
  ld r1, x
  st y, r1
P1:
  ld r1, y
  st x, r1
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EXPECT_TRUE(Exe.Data.test(nthMemEvent(Exe, 0, 0), nthMemEvent(Exe, 0, 1)));
  EXPECT_TRUE(Exe.Data.test(nthMemEvent(Exe, 1, 0), nthMemEvent(Exe, 1, 1)));
  EXPECT_TRUE(Exe.Addr.empty());
}

TEST(Compiler, ControlDependency) {
  LitmusTest Test = parseOrDie(R"(
Power mp+lwsync+ctrl
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  beq r1
  ld r2, x
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EventId Ry = nthMemEvent(Exe, 1, 0);
  EventId Rx = nthMemEvent(Exe, 1, 1);
  EXPECT_TRUE(Exe.Ctrl.test(Ry, Rx));
  EXPECT_FALSE(Exe.CtrlCfence.test(Ry, Rx)) << "no isync after branch";
}

TEST(Compiler, ControlCfenceDependency) {
  LitmusTest Test = parseOrDie(R"(
Power mp+lwsync+ctrlisync
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  beq r1
  isync
  ld r2, x
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EventId Ry = nthMemEvent(Exe, 1, 0);
  EventId Rx = nthMemEvent(Exe, 1, 1);
  EXPECT_TRUE(Exe.Ctrl.test(Ry, Rx));
  EXPECT_TRUE(Exe.CtrlCfence.test(Ry, Rx));
}

TEST(Compiler, CfenceBeforeBranchDoesNotCount) {
  LitmusTest Test = parseOrDie(R"(
Power wrongorder
P0:
  ld r1, y
  isync
  beq r1
  ld r2, x
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EXPECT_TRUE(Exe.CtrlCfence.empty())
      << "isync must be po-after the branch to form ctrl+cfence";
  EXPECT_FALSE(Exe.Ctrl.empty());
}

TEST(Compiler, DependencyChainsThroughMoves) {
  LitmusTest Test = parseOrDie(R"(
Power chain
P0:
  ld r1, x
  mov r2, r1
  add r3, r2, r2
  st y, r3
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EXPECT_TRUE(Exe.Data.test(nthMemEvent(Exe, 0, 0), nthMemEvent(Exe, 0, 1)));
}

TEST(Compiler, LoadBreaksDependencyChain) {
  // dd-reg does not pass through memory: r2's taint is the second load,
  // not the first.
  LitmusTest Test = parseOrDie(R"(
Power cutchain
P0:
  ld r1, x
  ld r2, y
  st z, r2
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Exe = Compiled->skeleton();
  EventId Rx = nthMemEvent(Exe, 0, 0);
  EventId Ry = nthMemEvent(Exe, 0, 1);
  EventId Wz = nthMemEvent(Exe, 0, 2);
  EXPECT_TRUE(Exe.Data.test(Ry, Wz));
  EXPECT_FALSE(Exe.Data.test(Rx, Wz));
}

//===----------------------------------------------------------------------===//
// Compiler: candidates and concretisation
//===----------------------------------------------------------------------===//

TEST(Compiler, CandidateCountsMp) {
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled));
  // Each of the two reads has 2 candidate writes; one co order per
  // location (single program write each).
  EXPECT_EQ(Compiled->reads().size(), 2u);
  EXPECT_EQ(Compiled->candidateCount(), 4ull);
  EXPECT_EQ(Compiled->allCoherenceOrders().size(), 1u);
}

TEST(Compiler, CoherenceEnumerationCounts2p2w) {
  LitmusTest Test = parseOrDie(R"(
Power 2+2w
P0:
  st x, #2
  st y, #1
P1:
  st y, #2
  st x, #1
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  // Two writes per location -> 2 permutations each -> 4 coherence orders.
  EXPECT_EQ(Compiled->allCoherenceOrders().size(), 4u);
}

TEST(Compiler, CoherenceKeepsInitFirst) {
  LitmusTest Test = parseOrDie(R"(
SC co
P0:
  st x, #1
  st x, #2
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  for (const Relation &Co : Compiled->allCoherenceOrders()) {
    const Execution &Exe = Compiled->skeleton();
    int Init = Exe.initWriteOf(0);
    ASSERT_GE(Init, 0);
    for (EventId W : Exe.writesTo(0))
      if (!Exe.event(W).IsInit) {
        EXPECT_TRUE(Co.test(static_cast<EventId>(Init), W));
      }
  }
}

TEST(Compiler, ConcretizeComputesValues) {
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Skel = Compiled->skeleton();
  EventId Wy = nthMemEvent(Skel, 0, 1);
  EventId InitX = static_cast<EventId>(Skel.initWriteOf(
      0 /* x interned first */));
  // Read y from T0's write (value 1); read x from init (value 0).
  std::vector<EventId> Rf;
  for (size_t I = 0; I < Compiled->reads().size(); ++I) {
    const Event &Read = Skel.event(Compiled->reads()[I]);
    Rf.push_back(Read.Loc == Skel.event(Wy).Loc ? Wy : InitX);
  }
  Candidate Cand =
      Compiled->concretize(Rf, Compiled->allCoherenceOrders()[0]);
  EXPECT_TRUE(Cand.Consistent);
  EXPECT_EQ(Cand.Out.reg(1, 1), 1); // r1 = y = 1
  EXPECT_EQ(Cand.Out.reg(1, 3), 0); // r3 = x = 0
  EXPECT_TRUE(Cand.Out.satisfies(Compiled->test().Final));
}

TEST(Compiler, ConcretizeFinalMemory) {
  LitmusTest Test = parseOrDie(R"(
SC wseq
P0:
  st x, #1
  st x, #2
exists (x=2)
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  auto Cos = Compiled->allCoherenceOrders();
  ASSERT_EQ(Cos.size(), 2u);
  std::vector<Value> Finals;
  for (const Relation &Co : Cos) {
    Candidate Cand = Compiled->concretize({}, Co);
    Finals.push_back(Cand.Out.mem("x"));
  }
  std::sort(Finals.begin(), Finals.end());
  EXPECT_EQ(Finals, (std::vector<Value>{1, 2}));
}

TEST(Compiler, ValueFlowsThroughDataDependency) {
  LitmusTest Test = parseOrDie(R"(
Power passval
{ x=7 }
P0:
  ld r1, x
  st y, r1
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Skel = Compiled->skeleton();
  EventId InitX = static_cast<EventId>(
      Skel.initWriteOf(Skel.event(Compiled->reads()[0]).Loc));
  Candidate Cand = Compiled->concretize({InitX},
                                        Compiled->allCoherenceOrders()[0]);
  EXPECT_TRUE(Cand.Consistent);
  EXPECT_EQ(Cand.Out.mem("y"), 7);
}

TEST(Compiler, LbSatisfactionCycleStabilisesAtZero) {
  // lb+datas with each read feeding the other thread's write: reading the
  // other write is a consistent candidate only with value 0 (no thin air).
  LitmusTest Test = parseOrDie(R"(
Power lb+datas
P0:
  ld r1, x
  st y, r1
P1:
  ld r1, y
  st x, r1
)");
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Skel = Compiled->skeleton();
  EventId Wy = nthMemEvent(Skel, 0, 1);
  EventId Wx = nthMemEvent(Skel, 1, 1);
  // Read of x (T0) from Wx; read of y (T1) from Wy.
  std::vector<EventId> Rf(2);
  for (size_t I = 0; I < Compiled->reads().size(); ++I) {
    const Event &Read = Skel.event(Compiled->reads()[I]);
    Rf[I] = Read.Thread == 0 ? Wx : Wy;
  }
  Candidate Cand =
      Compiled->concretize(Rf, Compiled->allCoherenceOrders()[0]);
  EXPECT_TRUE(Cand.Consistent);
  EXPECT_EQ(Cand.Out.reg(0, 1), 0);
  EXPECT_EQ(Cand.Out.reg(1, 1), 0);
}

TEST(Compiler, XorFalseDependencyValueIsZeroOffset) {
  // The xor'ed index register must not change the loaded location/value.
  auto Compiled = CompiledTest::compile(parseOrDie(MpLwsyncAddr));
  ASSERT_TRUE(static_cast<bool>(Compiled));
  const Execution &Skel = Compiled->skeleton();
  EventId Wy = nthMemEvent(Skel, 0, 1);
  EventId Wx = nthMemEvent(Skel, 0, 0);
  std::vector<EventId> Rf;
  for (size_t I = 0; I < Compiled->reads().size(); ++I) {
    const Event &Read = Skel.event(Compiled->reads()[I]);
    Rf.push_back(Read.Loc == Skel.event(Wy).Loc ? Wy : Wx);
  }
  Candidate Cand =
      Compiled->concretize(Rf, Compiled->allCoherenceOrders()[0]);
  EXPECT_EQ(Cand.Out.reg(1, 3), 1) << "r3 must read x's value";
}

TEST(Compiler, OutcomeKeysDistinguishStates) {
  LitmusTest Test = parseOrDie(SbFfences);
  auto Compiled = CompiledTest::compile(Test);
  ASSERT_TRUE(static_cast<bool>(Compiled));
  EXPECT_EQ(Compiled->candidateCount(), 4ull);
}
