//===- repair.cpp - Tests for the fence-synthesis subsystem ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair acceptance suite: the mutation layer produces well-formed
/// mutants, and the search engine reproduces the paper's known repairs on
/// the classic families under the Power and ARM models. Every reported
/// minimal repair is re-simulated from scratch: the goal outcome must be
/// forbidden, and removing any single insertion must re-allow it.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "repair/RepairEngine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace cats;

namespace {

LitmusTest familyTest(const std::string &Name, Arch A) {
  for (const auto &[Family, Cycle] : classicFamilies())
    if (Family == Name) {
      auto Test = synthesizeTest(Cycle, A);
      EXPECT_TRUE(static_cast<bool>(Test)) << Test.message();
      return Test.take();
    }
  ADD_FAILURE() << "unknown family " << Name;
  return {};
}

/// The mechanism tags of a repair set, site-ordered, e.g. {"lwsync","addr"}.
std::vector<std::string> mechTags(const RepairSet &Set) {
  std::vector<std::string> Tags;
  for (const RepairAction &Act : Set.Actions)
    Tags.push_back(Act.Mech == RepairMech::Fence ? Act.FenceName
                                                 : repairMechName(Act.Mech));
  return Tags;
}

bool setHasTags(const RepairSet &Set,
                const std::vector<std::string> &Expected) {
  return mechTags(Set) == Expected;
}

/// The acceptance check: re-simulate the repaired test (the goal outcome
/// must be unobservable) and every single-deletion weakening (each must
/// re-allow it).
void expectMinimal(const LitmusTest &Test, const RepairSet &Set,
                   const Model &M) {
  auto Mutant = applyRepair(Test, Set.Actions);
  ASSERT_TRUE(static_cast<bool>(Mutant)) << Mutant.message();
  EXPECT_FALSE(allowedBy(*Mutant, M))
      << Set.name() << " must forbid " << Test.Name;
  for (size_t Drop = 0; Drop < Set.Actions.size(); ++Drop) {
    std::vector<RepairAction> Weaker = Set.Actions;
    Weaker.erase(Weaker.begin() + Drop);
    auto Partial = applyRepair(Test, Weaker);
    ASSERT_TRUE(static_cast<bool>(Partial)) << Partial.message();
    EXPECT_TRUE(allowedBy(*Partial, M))
        << "dropping " << Set.Actions[Drop].toString() << " from "
        << Set.name() << " must re-allow " << Test.Name;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Mutation layer
//===----------------------------------------------------------------------===//

TEST(Mutation, SitesOnMp) {
  // diy lays the mp cycle out reader-first: P0 is the R->R thread, P1 the
  // W->W one.
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Sites = enumerateSites(Mp);
  ASSERT_EQ(Sites.size(), 2u);
  EXPECT_EQ(Sites[0].Thread, 0);
  EXPECT_TRUE(Sites[0].PrevIsRead);
  EXPECT_TRUE(Sites[0].NextIsRead);
  EXPECT_GE(Sites[0].PrevLoadReg, 0);
  EXPECT_EQ(Sites[1].Thread, 1);
  EXPECT_FALSE(Sites[1].PrevIsRead);
  EXPECT_FALSE(Sites[1].NextIsRead);
  EXPECT_EQ(Sites[1].PrevLoadReg, -1);
  EXPECT_EQ(Sites[0].toString(), "P0");
  EXPECT_EQ(Sites[1].toString(), "P1");
}

TEST(Mutation, ActionsRespectDirections) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  // P0 (R->R): fences + addr/ctrl/ctrl+cfence (no data: the target is a
  // read). P1 (W->W): fences only.
  std::set<std::string> Tags;
  for (const RepairAction &Act : Actions)
    Tags.insert(Act.toString());
  EXPECT_TRUE(Tags.count("P1:lwsync"));
  EXPECT_TRUE(Tags.count("P1:sync"));
  EXPECT_FALSE(Tags.count("P1:addr"));
  EXPECT_TRUE(Tags.count("P0:addr"));
  EXPECT_TRUE(Tags.count("P0:ctrl"));
  EXPECT_TRUE(Tags.count("P0:ctrl+cfence"));
  EXPECT_FALSE(Tags.count("P0:data"));
}

TEST(Mutation, DataActionNeedsImmediateStore) {
  LitmusTest Lb = familyTest("lb", Arch::Power);
  auto Actions = enumerateActions(Lb);
  unsigned DataActions = 0;
  for (const RepairAction &Act : Actions)
    DataActions += Act.Mech == RepairMech::Data;
  // Both lb gaps are R->W with immediate stores.
  EXPECT_EQ(DataActions, 2u);
}

TEST(Mutation, AppliedFenceMutantIsWellFormed) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  auto Lwsync = std::find_if(Actions.begin(), Actions.end(),
                             [](const RepairAction &A) {
                               return A.toString() == "P1:lwsync";
                             });
  ASSERT_NE(Lwsync, Actions.end());
  auto Mutant = applyRepair(Mp, {*Lwsync});
  ASSERT_TRUE(static_cast<bool>(Mutant)) << Mutant.message();
  EXPECT_EQ(Mutant->validate(), "");
  EXPECT_EQ(Mutant->Name, "mp+repair[P1:lwsync]");
  EXPECT_NE(Mutant->toString().find("lwsync"), std::string::npos);
}

TEST(Mutation, AppliedAddrMutantThreadsTheDependency) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  auto Addr = std::find_if(Actions.begin(), Actions.end(),
                           [](const RepairAction &A) {
                             return A.toString() == "P0:addr";
                           });
  ASSERT_NE(Addr, Actions.end());
  auto Mutant = applyRepair(Mp, {*Addr});
  ASSERT_TRUE(static_cast<bool>(Mutant)) << Mutant.message();
  // The second load now carries an address dependency via a fresh xor.
  const ThreadCode &T1 = Mutant->Threads[0];
  unsigned Xors = 0;
  bool DepLoad = false;
  for (const Instruction &I : T1) {
    Xors += I.Op == Opcode::Xor;
    DepLoad |= I.Op == Opcode::Load && I.AddrDep != -1;
  }
  EXPECT_EQ(Xors, 1u);
  EXPECT_TRUE(DepLoad);
  ASSERT_TRUE(static_cast<bool>(CompiledTest::compile(*Mutant)));
}

TEST(Mutation, DataMutantPreservesStoredValues) {
  LitmusTest Lb = familyTest("lb", Arch::Power);
  auto Actions = enumerateActions(Lb);
  std::vector<RepairAction> Datas;
  for (const RepairAction &Act : Actions)
    if (Act.Mech == RepairMech::Data)
      Datas.push_back(Act);
  ASSERT_EQ(Datas.size(), 2u);
  auto Mutant = applyRepair(Lb, Datas);
  ASSERT_TRUE(static_cast<bool>(Mutant)) << Mutant.message();
  // The witness outcome must still exist among consistent candidates.
  SimulationResult R = simulate(*Mutant, *modelByName("Power"));
  bool Witness = false;
  for (const Outcome &Out : R.ConsistentOutcomes)
    Witness |= Out.satisfies(Mutant->Final);
  EXPECT_TRUE(Witness);
}

TEST(Mutation, RejectsDoubleInsertionAtOneSite) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  std::vector<RepairAction> Two;
  for (const RepairAction &Act : Actions)
    if (Act.Site.Thread == 0 && Act.Mech == RepairMech::Fence)
      Two.push_back(Act);
  ASSERT_GE(Two.size(), 2u);
  Two.resize(2);
  EXPECT_FALSE(static_cast<bool>(applyRepair(Mp, Two)));
}

TEST(Mutation, DedupSkipsImpliedFences) {
  // mp with lwsync already on P0: inserting lwsync there again is
  // pointless, but sync still strengthens.
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  auto Lwsync = std::find_if(Actions.begin(), Actions.end(),
                             [](const RepairAction &A) {
                               return A.toString() == "P0:lwsync";
                             });
  ASSERT_NE(Lwsync, Actions.end());
  auto Mutant = applyRepair(Mp, {*Lwsync});
  ASSERT_TRUE(static_cast<bool>(Mutant));
  std::set<std::string> Tags;
  for (const RepairAction &Act : enumerateActions(*Mutant))
    Tags.insert(Act.toString());
  EXPECT_FALSE(Tags.count("P0:lwsync"));
  EXPECT_TRUE(Tags.count("P0:sync"));
}

TEST(Mutation, StrengthOrder) {
  RepairSite S;
  auto Act = [&](RepairMech M, std::string F = "") {
    RepairAction A;
    A.Site = S;
    A.Mech = M;
    A.FenceName = std::move(F);
    return A;
  };
  auto Fence = [&](const char *F) { return Act(RepairMech::Fence, F); };
  EXPECT_TRUE(repairActionLeq(Fence("lwsync"), Fence("sync")));
  EXPECT_FALSE(repairActionLeq(Fence("sync"), Fence("lwsync")));
  EXPECT_TRUE(repairActionLeq(Fence("eieio"), Fence("lwsync")));
  EXPECT_TRUE(repairActionLeq(Fence("dmb.st"), Fence("dmb")));
  EXPECT_FALSE(repairActionLeq(Fence("lwsync"), Fence("dmb.st")));
  EXPECT_TRUE(repairActionLeq(Act(RepairMech::Ctrl),
                              Act(RepairMech::CtrlCfence)));
  EXPECT_FALSE(repairActionLeq(Act(RepairMech::CtrlCfence),
                               Act(RepairMech::Ctrl)));
  EXPECT_FALSE(repairActionLeq(Act(RepairMech::Addr),
                               Act(RepairMech::CtrlCfence)));
  // A dependency is below lwsync/sync but not below a WW-only fence.
  EXPECT_TRUE(repairActionLeq(Act(RepairMech::Addr), Fence("lwsync")));
  EXPECT_TRUE(repairActionLeq(Act(RepairMech::Ctrl), Fence("sync")));
  EXPECT_FALSE(repairActionLeq(Act(RepairMech::Addr), Fence("eieio")));
  EXPECT_FALSE(repairActionLeq(Fence("lwsync"), Act(RepairMech::Addr)));
  // Different sites never compare.
  RepairAction Other = Fence("sync");
  Other.Site.Thread = 1;
  EXPECT_FALSE(repairActionLeq(Fence("lwsync"), Other));
}

TEST(Mutation, CostsFollowTheArchTables) {
  RepairSite S;
  RepairAction Lwsync;
  Lwsync.Site = S;
  Lwsync.FenceName = "lwsync";
  RepairAction Sync = Lwsync;
  Sync.FenceName = "sync";
  EXPECT_LT(repairActionCost(Arch::Power, Lwsync),
            repairActionCost(Arch::Power, Sync));
  RepairAction Addr;
  Addr.Site = S;
  Addr.Mech = RepairMech::Addr;
  EXPECT_EQ(repairActionCost(Arch::Power, Addr), 1u);
  RepairAction CtrlCfence;
  CtrlCfence.Site = S;
  CtrlCfence.Mech = RepairMech::CtrlCfence;
  EXPECT_GT(repairActionCost(Arch::Power, CtrlCfence), 1u);
  RepairAction DmbSt;
  DmbSt.Site = S;
  DmbSt.FenceName = "dmb.st";
  RepairAction Dmb = DmbSt;
  Dmb.FenceName = "dmb";
  EXPECT_LT(repairActionCost(Arch::ARM, DmbSt),
            repairActionCost(Arch::ARM, Dmb));
}

//===----------------------------------------------------------------------===//
// The paper's known repairs (Sec. 7 flavour), with minimality verified by
// re-simulation.
//===----------------------------------------------------------------------===//

TEST(Repair, MpPowerNeedsLwsyncPlusReaderDep) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(Mp);
  ASSERT_EQ(R.Error, "");
  EXPECT_TRUE(R.Repairable);
  EXPECT_FALSE(R.AlreadyMeetsGoal);
  ASSERT_FALSE(R.MinimalRepairs.empty());

  // Cheapest: addr on the reader (P0 in diy's layout), lwsync on the
  // writer.
  EXPECT_TRUE(setHasTags(*R.cheapest(), {"addr", "lwsync"}))
      << R.cheapest()->name();
  // ctrl+cfence on the reader is the other minimal reader mechanism; bare
  // ctrl must not appear (it does not order read-read pairs).
  bool HasCtrlCfence = false;
  for (const RepairSet &Set : R.MinimalRepairs) {
    HasCtrlCfence |= setHasTags(Set, {"ctrl+cfence", "lwsync"});
    for (const std::string &Tag : mechTags(Set)) {
      EXPECT_NE(Tag, "ctrl") << Set.name();
      EXPECT_NE(Tag, "sync") << "sync is never minimal for mp: "
                             << Set.name();
    }
  }
  EXPECT_TRUE(HasCtrlCfence);

  const Model &Power = *modelByName("Power");
  for (const RepairSet &Set : R.MinimalRepairs)
    expectMinimal(Mp, Set, Power);
}

TEST(Repair, SbNeedsFullFencesBothSides) {
  for (Arch A : {Arch::Power, Arch::ARM}) {
    LitmusTest Sb = familyTest("sb", A);
    RepairEngine Engine;
    TestRepairResult R = Engine.repairOne(Sb);
    ASSERT_EQ(R.Error, "");
    ASSERT_TRUE(R.Repairable) << archName(A);
    const char *Full = A == Arch::Power ? "sync" : "dmb";
    // The one and only minimal repair: the full fence on both sides.
    ASSERT_EQ(R.MinimalRepairs.size(), 1u) << archName(A);
    EXPECT_TRUE(setHasTags(*R.cheapest(), {Full, Full}))
        << R.cheapest()->name();
    expectMinimal(Sb, *R.cheapest(), modelFor(A));
  }
}

TEST(Repair, LbRepairsWithDependenciesAlone) {
  LitmusTest Lb = familyTest("lb", Arch::Power);
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(Lb);
  ASSERT_EQ(R.Error, "");
  ASSERT_TRUE(R.Repairable);
  // Both gaps are R->W: a dependency on each side suffices, so the
  // cheapest repair costs 2 and no minimal repair contains any fence.
  EXPECT_EQ(R.cheapest()->Cost, 2u) << R.cheapest()->name();
  const Model &Power = *modelByName("Power");
  for (const RepairSet &Set : R.MinimalRepairs) {
    for (const RepairAction &Act : Set.Actions)
      EXPECT_NE(Act.Mech, RepairMech::Fence) << Set.name();
    expectMinimal(Lb, Set, Power);
  }
}

TEST(Repair, WrcNeedsCumulativeLightFence) {
  LitmusTest Wrc = familyTest("wrc", Arch::Power);
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(Wrc);
  ASSERT_EQ(R.Error, "");
  ASSERT_TRUE(R.Repairable);
  // Dependencies on both threads do not restore wrc (Power is not
  // multi-copy atomic): every minimal repair carries a fence on the
  // rfe-target thread, and the cheapest is lwsync there plus addr.
  EXPECT_TRUE(setHasTags(*R.cheapest(), {"lwsync", "addr"}))
      << R.cheapest()->name();
  const Model &Power = *modelByName("Power");
  for (const RepairSet &Set : R.MinimalRepairs) {
    EXPECT_EQ(Set.Actions.front().Mech, RepairMech::Fence) << Set.name();
    expectMinimal(Wrc, Set, Power);
  }
}

TEST(Repair, IriwNeedsFullFencesOnBothReaders) {
  for (Arch A : {Arch::Power, Arch::ARM}) {
    LitmusTest Iriw = familyTest("iriw", A);
    RepairEngine Engine;
    TestRepairResult R = Engine.repairOne(Iriw);
    ASSERT_EQ(R.Error, "");
    ASSERT_TRUE(R.Repairable) << archName(A);
    const char *Full = A == Arch::Power ? "sync" : "dmb";
    ASSERT_EQ(R.MinimalRepairs.size(), 1u) << archName(A);
    EXPECT_TRUE(setHasTags(*R.cheapest(), {Full, Full}))
        << R.cheapest()->name();
    expectMinimal(Iriw, *R.cheapest(), modelFor(A));
  }
}

TEST(Repair, MpArmUsesDmbAndIsb) {
  LitmusTest Mp = familyTest("mp", Arch::ARM);
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(Mp);
  ASSERT_EQ(R.Error, "");
  ASSERT_TRUE(R.Repairable);
  // ARM has no lightweight fence: dmb on the writer, a dependency or
  // ctrl+isb on the reader (P0 in diy's layout).
  EXPECT_TRUE(setHasTags(*R.cheapest(), {"addr", "dmb"}))
      << R.cheapest()->name();
  const Model &Arm = *modelByName("ARM");
  for (const RepairSet &Set : R.MinimalRepairs)
    expectMinimal(Mp, Set, Arm);
}

//===----------------------------------------------------------------------===//
// Goals, determinism and the campaign pipeline
//===----------------------------------------------------------------------===//

TEST(Repair, AlreadyForbiddenTestNeedsNothing) {
  // mp with syncs everywhere is already forbidden on Power.
  LitmusTest Mp = familyTest("mp", Arch::Power);
  auto Actions = enumerateActions(Mp);
  std::vector<RepairAction> Syncs;
  for (const RepairAction &Act : Actions)
    if (Act.Mech == RepairMech::Fence && Act.FenceName == "sync")
      Syncs.push_back(Act);
  ASSERT_EQ(Syncs.size(), 2u);
  auto Fixed = applyRepair(Mp, Syncs);
  ASSERT_TRUE(static_cast<bool>(Fixed));
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(*Fixed);
  EXPECT_TRUE(R.AlreadyMeetsGoal);
  EXPECT_TRUE(R.Repairable);
  EXPECT_TRUE(R.MinimalRepairs.empty());
  EXPECT_STREQ(R.verdict(), "AlreadyOk");
  EXPECT_EQ(R.MutantsEvaluated, 1u);
}

TEST(Repair, ScEquivalenceGoalOnMp) {
  LitmusTest Mp = familyTest("mp", Arch::Power);
  RepairOptions Opts;
  Opts.Goal = RepairGoal::ScEquivalence;
  RepairEngine Engine(Opts);
  TestRepairResult R = Engine.repairOne(Mp);
  ASSERT_EQ(R.Error, "");
  ASSERT_TRUE(R.Repairable);
  const Model &Power = *modelByName("Power");
  const Model &Sc = *modelByName("SC");
  for (const RepairSet &Set : R.MinimalRepairs) {
    auto Mutant = applyRepair(Mp, Set.Actions);
    ASSERT_TRUE(static_cast<bool>(Mutant));
    MultiSimulationResult Multi = simulateAll(*Mutant, {&Power, &Sc});
    EXPECT_EQ(Multi.PerModel[0].AllowedOutcomes,
              Multi.PerModel[1].AllowedOutcomes)
        << Set.name();
  }
}

TEST(Repair, ScEquivalenceIsAtLeastAsStrongAsForbid) {
  // An SC-equivalent repair in particular forbids the exists-clause of a
  // critical-cycle test; on mp the two goals coincide.
  LitmusTest Mp = familyTest("mp", Arch::Power);
  RepairOptions Sc;
  Sc.Goal = RepairGoal::ScEquivalence;
  TestRepairResult RSc = RepairEngine(Sc).repairOne(Mp);
  TestRepairResult RForbid = RepairEngine().repairOne(Mp);
  ASSERT_FALSE(RSc.MinimalRepairs.empty());
  ASSERT_FALSE(RForbid.MinimalRepairs.empty());
  EXPECT_EQ(RSc.MinimalRepairs.size(), RForbid.MinimalRepairs.size());
  EXPECT_EQ(RSc.cheapest()->name(), RForbid.cheapest()->name());
}

TEST(Repair, DeterministicAcrossWorkerCounts) {
  std::vector<LitmusTest> Battery = {familyTest("mp", Arch::Power),
                                     familyTest("sb", Arch::Power),
                                     familyTest("lb", Arch::Power),
                                     familyTest("wrc", Arch::Power)};
  RepairOptions One;
  One.Jobs = 1;
  RepairOptions Many;
  Many.Jobs = 4;
  RepairReport A = RepairEngine(One).run(Battery);
  RepairReport B = RepairEngine(Many).run(Battery);
  ASSERT_EQ(A.Tests.size(), B.Tests.size());
  for (size_t I = 0; I < A.Tests.size(); ++I) {
    EXPECT_EQ(A.Tests[I].TestName, B.Tests[I].TestName);
    EXPECT_EQ(A.Tests[I].MutantsEvaluated, B.Tests[I].MutantsEvaluated);
    ASSERT_EQ(A.Tests[I].MinimalRepairs.size(),
              B.Tests[I].MinimalRepairs.size());
    for (size_t J = 0; J < A.Tests[I].MinimalRepairs.size(); ++J)
      EXPECT_EQ(A.Tests[I].MinimalRepairs[J].name(),
                B.Tests[I].MinimalRepairs[J].name());
  }
}

TEST(Repair, LegacyEvaluationMatchesBatched) {
  std::vector<LitmusTest> Battery = {familyTest("mp", Arch::Power),
                                     familyTest("r", Arch::Power)};
  RepairOptions Legacy;
  Legacy.LegacyEvaluation = true;
  Legacy.Goal = RepairGoal::ScEquivalence;
  RepairOptions Batched;
  Batched.Goal = RepairGoal::ScEquivalence;
  RepairReport A = RepairEngine(Legacy).run(Battery);
  RepairReport B = RepairEngine(Batched).run(Battery);
  ASSERT_EQ(A.Tests.size(), B.Tests.size());
  for (size_t I = 0; I < A.Tests.size(); ++I) {
    ASSERT_EQ(A.Tests[I].MinimalRepairs.size(),
              B.Tests[I].MinimalRepairs.size());
    for (size_t J = 0; J < A.Tests[I].MinimalRepairs.size(); ++J)
      EXPECT_EQ(A.Tests[I].MinimalRepairs[J].name(),
                B.Tests[I].MinimalRepairs[J].name());
  }
}

TEST(Repair, BatteryCampaignRepairsEveryAllowedFamily) {
  // The battery -> repair pipeline: every classic family on Power either
  // already meets the goal or is repairable; none errors.
  std::vector<LitmusTest> Battery;
  for (const auto &[Family, Cycle] : classicFamilies()) {
    auto Test = synthesizeTest(Cycle, Arch::Power);
    ASSERT_TRUE(static_cast<bool>(Test)) << Family;
    Battery.push_back(Test.take());
  }
  RepairEngine Engine;
  RepairReport Report = Engine.run(Battery);
  EXPECT_TRUE(Report.allOk());
  EXPECT_GT(Report.MutantsEvaluated, Battery.size());
  for (const TestRepairResult &T : Report.Tests) {
    EXPECT_TRUE(T.Repairable) << T.TestName;
    EXPECT_FALSE(T.Truncated) << T.TestName;
  }
}

TEST(Repair, JsonReportRoundTrips) {
  RepairEngine Engine;
  RepairReport Report = Engine.run({familyTest("mp", Arch::Power)});
  JsonValue Json = repairReportToJson(Report);
  EXPECT_EQ(Json.get("schema")->asString(), "cats-repair-report/1");
  auto Parsed = JsonValue::parse(Json.dump());
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(*Parsed, Json);
  const JsonValue *Tests = Json.get("tests");
  ASSERT_NE(Tests, nullptr);
  ASSERT_EQ(Tests->elements().size(), 1u);
  const JsonValue &Entry = Tests->elements()[0];
  EXPECT_EQ(Entry.get("name")->asString(), "mp");
  EXPECT_EQ(Entry.get("verdict")->asString(), "Repairable");
  EXPECT_FALSE(Entry.get("minimal_repairs")->elements().empty());
  EXPECT_EQ(Entry.get("cheapest")->asString(),
            Report.Tests[0].cheapest()->name());
}

TEST(Repair, TextReportShape) {
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(familyTest("mp", Arch::Power));
  std::string Text = repairTextReport(R);
  EXPECT_NE(Text.find("Test mp Repairable"), std::string::npos) << Text;
  EXPECT_NE(Text.find("Model Power goal forbid"), std::string::npos);
  EXPECT_NE(Text.find("Cheapest {P0:addr, P1:lwsync}"), std::string::npos)
      << Text;
}

TEST(Repair, UnrepairableWhenNoSitesHelp) {
  // A test whose condition is SC-reachable can never be forbidden by
  // fences: two unrelated stores with a trivially true condition.
  LitmusTest T;
  T.Name = "sc-reachable";
  T.TargetArch = Arch::Power;
  T.Threads.resize(2);
  T.Threads[0].push_back(Instruction::store("x", Operand::imm(1)));
  T.Threads[0].push_back(Instruction::store("y", Operand::imm(1)));
  T.Threads[1].push_back(Instruction::load(1, "y"));
  T.Threads[1].push_back(Instruction::load(2, "x"));
  T.Final.addConjunction({ConditionAtom::regEquals(1, 1, 1),
                          ConditionAtom::regEquals(1, 2, 1)});
  RepairEngine Engine;
  TestRepairResult R = Engine.repairOne(T);
  EXPECT_EQ(R.Error, "");
  EXPECT_FALSE(R.Repairable);
  EXPECT_STREQ(R.verdict(), "Unrepairable");
  EXPECT_TRUE(R.MinimalRepairs.empty());
}

//===----------------------------------------------------------------------===//
// Test filtering (shared by cats_sweep/cats_repair --filter)
//===----------------------------------------------------------------------===//

TEST(TestFilter, SelectsByRegex) {
  std::vector<LitmusTest> Tests = {familyTest("mp", Arch::Power),
                                   familyTest("sb", Arch::Power),
                                   familyTest("iriw", Arch::Power)};
  auto All = filterTestsByName(Tests, "");
  ASSERT_TRUE(static_cast<bool>(All));
  EXPECT_EQ(All->size(), 3u);
  auto Exact = filterTestsByName(Tests, "^mp$");
  ASSERT_TRUE(static_cast<bool>(Exact));
  ASSERT_EQ(Exact->size(), 1u);
  EXPECT_EQ((*Exact)[0].Name, "mp");
  auto Family = filterTestsByName(Tests, "^(sb|iriw)$");
  ASSERT_TRUE(static_cast<bool>(Family));
  EXPECT_EQ(Family->size(), 2u);
  auto Partial = filterTestsByName(Tests, "b");
  ASSERT_TRUE(static_cast<bool>(Partial));
  EXPECT_EQ(Partial->size(), 1u);
}

TEST(TestFilter, RejectsMalformedRegex) {
  std::vector<LitmusTest> Tests = {familyTest("mp", Arch::Power)};
  auto Bad = filterTestsByName(Tests, "([");
  EXPECT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("bad filter regex"), std::string::npos);
}
