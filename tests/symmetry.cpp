//===- symmetry.cpp - Thread-symmetry reduction correctness ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the thread-symmetry layer of the incremental enumerator
/// (src/herd/Enumerator.cpp): tests whose threads are exactly identical
/// are enumerated by canonical orbit representatives only, with the
/// orbit's remaining images restituted by multiplicity accounting. The
/// hand-counted examples below pin the exact arithmetic — judged leaves,
/// reused images, pruned mass — against numbers derived on paper, and the
/// permutation-invariance tests pin the semantic claim the reduction
/// rests on: renaming identical threads cannot change any verdict.
///
//===----------------------------------------------------------------------===//

#include "herd/Enumerator.h"
#include "herd/Simulator.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

/// Runs the incremental enumerator on \p Test and returns its counters
/// plus the finished result through \p Out.
EnumerationStats enumerate(const LitmusTest &Test,
                           MultiSimulationResult &Out) {
  auto Compiled = CompiledTest::compile(Test);
  EXPECT_TRUE(static_cast<bool>(Compiled)) << Compiled.message();
  MultiModelChecker Checker(*Compiled, allModels());
  EnumerationStats Stats = enumerateIncremental(*Compiled, Checker);
  Checker.setEnumerationStats(Stats);
  Out = Checker.take();
  return Stats;
}

/// Naive reference result for the same test.
MultiSimulationResult naive(const LitmusTest &Test) {
  return simulateAll(Test, allModels(), JudgeBackend::Naive);
}

/// Full-equality check of the shared fields and every per-model entry.
void expectSameResult(const MultiSimulationResult &A,
                      const MultiSimulationResult &B) {
  EXPECT_EQ(A.CandidatesTotal, B.CandidatesTotal);
  EXPECT_EQ(A.CandidatesConsistent, B.CandidatesConsistent);
  EXPECT_EQ(A.ConsistentOutcomes, B.ConsistentOutcomes);
  ASSERT_EQ(A.PerModel.size(), B.PerModel.size());
  for (size_t I = 0; I < A.PerModel.size(); ++I) {
    EXPECT_EQ(A.PerModel[I].CandidatesAllowed,
              B.PerModel[I].CandidatesAllowed)
        << A.PerModel[I].ModelName;
    EXPECT_EQ(A.PerModel[I].AllowedOutcomes, B.PerModel[I].AllowedOutcomes)
        << A.PerModel[I].ModelName;
    EXPECT_EQ(A.PerModel[I].ConditionReachable,
              B.PerModel[I].ConditionReachable)
        << A.PerModel[I].ModelName;
  }
}

} // namespace

/// Three identical single-store threads. Hand count: three writes to x,
/// no reads, so the candidate space is exactly the 3! = 6 coherence
/// orders, all value-consistent. The symmetry group is the full S3 on
/// the three threads and acts freely on the orders: one orbit, one
/// canonical leaf judged, five images restituted. No same-thread
/// same-location pair exists, so the partial cut never arms.
TEST(Symmetry, ThreeIdenticalWriters) {
  LitmusTest Test;
  Test.Name = "sym-w-w-w";
  Test.TargetArch = Arch::Power;
  for (int T = 0; T < 3; ++T)
    Test.Threads.push_back({Instruction::store("x", Operand::imm(1))});

  MultiSimulationResult Result;
  EnumerationStats Stats = enumerate(Test, Result);
  EXPECT_EQ(Result.CandidatesTotal, 6u);
  EXPECT_EQ(Result.CandidatesConsistent, 6u);
  EXPECT_EQ(Stats.JudgedCandidates, 1u);
  EXPECT_EQ(Stats.SymmetryReused, 5u);
  EXPECT_EQ(Stats.PrunedCandidates, 0u);
  EXPECT_EQ(Stats.PartialCuts, 0u);
  expectSameResult(Result, naive(Test));
}

/// Two identical store-then-load threads on one location. Hand count:
/// two program writes w0/w1 plus init gives each read 3 rf sources and
/// the writes 2 coherence orders — 18 raw candidates, all 18
/// value-consistent (a load's value is whatever it reads). SC PER
/// LOCATION then kills every candidate where a read sees a write
/// coherence-before its own thread's po-earlier store (the classic coWR
/// shape), leaving 2 survivors per coherence order = 4. The swap of the
/// two threads pairs them into 2 orbits of size 2: 2 canonical leaves
/// judged, 2 images reused, and 18 - 4 = 14 candidates pruned without
/// materialization.
TEST(Symmetry, TwoIdenticalStoreLoadThreads) {
  LitmusTest Test;
  Test.Name = "sym-sl-sl";
  Test.TargetArch = Arch::Power;
  for (int T = 0; T < 2; ++T)
    Test.Threads.push_back({Instruction::store("x", Operand::imm(1)),
                            Instruction::load(1, "x")});

  MultiSimulationResult Result;
  EnumerationStats Stats = enumerate(Test, Result);
  EXPECT_EQ(Result.CandidatesTotal, 18u);
  EXPECT_EQ(Result.CandidatesConsistent, 18u);
  EXPECT_EQ(Stats.JudgedCandidates, 2u);
  EXPECT_EQ(Stats.SymmetryReused, 2u);
  EXPECT_EQ(Stats.PrunedCandidates, 14u);
  EXPECT_GT(Stats.PartialCuts, 0u);
  expectSameResult(Result, naive(Test));
}

/// The sum rule the two counts above instantiate: judged leaves plus
/// reused images plus pruned mass exactly covers the consistent space.
/// Checked here on a 3-thread mixed example (two identical writers plus
/// a distinct reader) where the group is the S2 on the writer pair.
TEST(Symmetry, AccountingCoversConsistentSpace) {
  LitmusTest Test;
  Test.Name = "sym-w-w-r";
  Test.TargetArch = Arch::Power;
  Test.Threads.push_back({Instruction::store("x", Operand::imm(1))});
  Test.Threads.push_back({Instruction::store("x", Operand::imm(1))});
  Test.Threads.push_back(
      {Instruction::load(1, "x"), Instruction::load(2, "x")});

  MultiSimulationResult Result;
  EnumerationStats Stats = enumerate(Test, Result);
  // 2 writes + init per read: 3 * 3 rf choices, 2 coherence orders.
  EXPECT_EQ(Result.CandidatesTotal, 18u);
  EXPECT_EQ(Stats.JudgedCandidates + Stats.SymmetryReused +
                Stats.PrunedCandidates,
            Result.CandidatesConsistent);
  EXPECT_GT(Stats.SymmetryReused, 0u);
  expectSameResult(Result, naive(Test));
}

/// No symmetry without identical code: perturbing one thread's stored
/// value dissolves the group and the enumerator must fall back to
/// one-leaf-per-candidate with zero reuse.
TEST(Symmetry, DistinctThreadsHaveNoGroup) {
  LitmusTest Test;
  Test.Name = "asym-w-w";
  Test.TargetArch = Arch::Power;
  Test.Threads.push_back({Instruction::store("x", Operand::imm(1))});
  Test.Threads.push_back({Instruction::store("x", Operand::imm(2))});

  MultiSimulationResult Result;
  EnumerationStats Stats = enumerate(Test, Result);
  EXPECT_EQ(Result.CandidatesTotal, 2u);
  EXPECT_EQ(Stats.JudgedCandidates, 2u);
  EXPECT_EQ(Stats.SymmetryReused, 0u);
  expectSameResult(Result, naive(Test));
}

/// Renaming identical threads is a no-op on the program text, so only
/// the final condition can tell them apart. Asking the same question of
/// thread 1 and of thread 2 of an identical pair must get the same
/// answer under every model — this is the invariance the orbit-image
/// outcome transform (Regs'[sigma(t)] = Regs[t]) relies on.
TEST(Symmetry, ConditionInvariantUnderThreadRenaming) {
  LitmusTest Test;
  Test.Name = "sym-rename";
  Test.TargetArch = Arch::Power;
  Test.Threads.push_back({Instruction::store("x", Operand::imm(1)),
                          Instruction::load(1, "y")});
  Test.Threads.push_back({Instruction::store("y", Operand::imm(1)),
                          Instruction::load(1, "x")});
  // Threads 1 and 2 are the identical pair; thread 0 is their sibling.
  Test.Threads.push_back(Test.Threads[1]);

  LitmusTest OnT1 = Test;
  OnT1.Final.addConjunction({ConditionAtom::regEquals(1, 1, 0),
                             ConditionAtom::regEquals(0, 1, 1)});
  LitmusTest OnT2 = Test;
  OnT2.Final.addConjunction({ConditionAtom::regEquals(2, 1, 0),
                             ConditionAtom::regEquals(0, 1, 1)});

  MultiSimulationResult R1 = simulateAll(OnT1, allModels());
  MultiSimulationResult R2 = simulateAll(OnT2, allModels());
  ASSERT_EQ(R1.PerModel.size(), R2.PerModel.size());
  EXPECT_EQ(R1.CandidatesTotal, R2.CandidatesTotal);
  EXPECT_EQ(R1.CandidatesConsistent, R2.CandidatesConsistent);
  for (size_t I = 0; I < R1.PerModel.size(); ++I) {
    EXPECT_EQ(R1.PerModel[I].ConditionReachable,
              R2.PerModel[I].ConditionReachable)
        << R1.PerModel[I].ModelName;
    EXPECT_EQ(R1.PerModel[I].CandidatesAllowed,
              R2.PerModel[I].CandidatesAllowed)
        << R1.PerModel[I].ModelName;
  }
  expectSameResult(R1, naive(OnT1));
  expectSameResult(R2, naive(OnT2));
}

/// Same invariance at the message-passing scale with a fence: the
/// identical pair are two receivers, and the condition asks whether one
/// specific receiver can see the stale value.
TEST(Symmetry, TwoIdenticalReceiversPower) {
  LitmusTest Test;
  Test.Name = "sym-mp-2r";
  Test.TargetArch = Arch::Power;
  Test.Threads.push_back({Instruction::store("x", Operand::imm(1)),
                          Instruction::fenceNamed("sync"),
                          Instruction::store("y", Operand::imm(1))});
  ThreadCode Receiver = {Instruction::load(1, "y"),
                         Instruction::load(2, "x")};
  Test.Threads.push_back(Receiver);
  Test.Threads.push_back(Receiver);

  for (int Receiver : {1, 2}) {
    LitmusTest Q = Test;
    Q.Final.addConjunction({ConditionAtom::regEquals(Receiver, 1, 1),
                            ConditionAtom::regEquals(Receiver, 2, 0)});
    MultiSimulationResult Pruned = simulateAll(Q, allModels());
    expectSameResult(Pruned, naive(Q));
    // The receivers are unfenced, so Power allows the stale read while
    // SC forbids it — a verdict split the symmetry layer must preserve.
    EXPECT_TRUE(Pruned.forModel("Power")->ConditionReachable);
    EXPECT_FALSE(Pruned.forModel("SC")->ConditionReachable);
  }
}
