//===- event.cpp - Tests for executions and derived relations --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "event/Execution.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

/// Builds the canonical message-passing execution of Fig. 4:
///   T0: a: Wx=1 ; b: Wy=1        T1: c: Ry=1 ; d: Rx=0
/// with rf = {(b,c), (ix,d)} and co per location init-before-update.
struct MpFixture {
  Execution Exe;
  EventId Ix, Iy, A, B, C, D;

  MpFixture() {
    Location X = Exe.internLocation("x");
    Location Y = Exe.internLocation("y");
    Ix = Exe.addEvent({.Thread = InitThread,
                       .Kind = EventKind::Write,
                       .Loc = X,
                       .Val = 0,
                       .IsInit = true});
    Iy = Exe.addEvent({.Thread = InitThread,
                       .Kind = EventKind::Write,
                       .Loc = Y,
                       .Val = 0,
                       .IsInit = true});
    A = Exe.addEvent(
        {.Thread = 0, .InstrIndex = 0, .Kind = EventKind::Write, .Loc = X,
         .Val = 1});
    B = Exe.addEvent(
        {.Thread = 0, .InstrIndex = 1, .Kind = EventKind::Write, .Loc = Y,
         .Val = 1});
    C = Exe.addEvent(
        {.Thread = 1, .InstrIndex = 0, .Kind = EventKind::Read, .Loc = Y,
         .Val = 1});
    D = Exe.addEvent(
        {.Thread = 1, .InstrIndex = 1, .Kind = EventKind::Read, .Loc = X,
         .Val = 0});
    Exe.finalizeStructure(2);
    Exe.Rf.set(B, C);
    Exe.Rf.set(Ix, D);
    Exe.Co.set(Ix, A);
    Exe.Co.set(Iy, B);
  }
};

} // namespace

TEST(Execution, ProgramOrderPerThread) {
  MpFixture F;
  EXPECT_TRUE(F.Exe.Po.test(F.A, F.B));
  EXPECT_TRUE(F.Exe.Po.test(F.C, F.D));
  EXPECT_FALSE(F.Exe.Po.test(F.B, F.A));
  // No po across threads, none involving init writes.
  EXPECT_FALSE(F.Exe.Po.test(F.A, F.C));
  EXPECT_FALSE(F.Exe.Po.test(F.Ix, F.A));
}

TEST(Execution, EventSets) {
  MpFixture F;
  EXPECT_EQ(F.Exe.reads().count(), 2u);
  EXPECT_EQ(F.Exe.writes().count(), 4u);
  EXPECT_EQ(F.Exe.initWrites().count(), 2u);
  EXPECT_TRUE(F.Exe.reads().contains(F.C));
  EXPECT_TRUE(F.Exe.writes().contains(F.Ix));
}

TEST(Execution, FromReadDerivation) {
  MpFixture F;
  // d reads from init x, which is co-before a => (d, a) in fr.
  Relation Fr = F.Exe.fr();
  EXPECT_TRUE(Fr.test(F.D, F.A));
  EXPECT_EQ(Fr.countPairs(), 1u);
}

TEST(Execution, CommunicationsUnion) {
  MpFixture F;
  Relation Com = F.Exe.com();
  EXPECT_TRUE(Com.test(F.B, F.C));  // rf
  EXPECT_TRUE(Com.test(F.Ix, F.A)); // co
  EXPECT_TRUE(Com.test(F.D, F.A));  // fr
}

TEST(Execution, InternalExternalSplit) {
  MpFixture F;
  // rf(b, c) crosses threads => external.
  EXPECT_TRUE(F.Exe.rfe().test(F.B, F.C));
  EXPECT_TRUE(F.Exe.rfi().empty());
  // Init writes count as external sources.
  EXPECT_TRUE(F.Exe.rfe().test(F.Ix, F.D));
  EXPECT_TRUE(F.Exe.fre().test(F.D, F.A));
}

TEST(Execution, PoLocOnlySameLocation) {
  MpFixture F;
  // a:Wx, b:Wy touch different locations: po-loc empty on T0.
  EXPECT_TRUE(F.Exe.poLoc().empty());
}

TEST(Execution, PoLocDetectsSameLocation) {
  Execution Exe;
  Location X = Exe.internLocation("x");
  EventId E0 = Exe.addEvent(
      {.Thread = 0, .InstrIndex = 0, .Kind = EventKind::Write, .Loc = X,
       .Val = 1});
  EventId E1 = Exe.addEvent(
      {.Thread = 0, .InstrIndex = 1, .Kind = EventKind::Read, .Loc = X,
       .Val = 1});
  Exe.finalizeStructure(1);
  EXPECT_TRUE(Exe.poLoc().test(E0, E1));
}

TEST(Execution, InternLocationIsIdempotent) {
  Execution Exe;
  Location X1 = Exe.internLocation("x");
  Location X2 = Exe.internLocation("x");
  Location Y = Exe.internLocation("y");
  EXPECT_EQ(X1, X2);
  EXPECT_NE(X1, Y);
  EXPECT_EQ(Exe.LocationNames.size(), 2u);
}

TEST(Execution, WritesToAndInitLookup) {
  MpFixture F;
  auto WritesX = F.Exe.writesTo(0);
  ASSERT_EQ(WritesX.size(), 2u);
  EXPECT_EQ(F.Exe.initWriteOf(0), static_cast<int>(F.Ix));
  EXPECT_EQ(F.Exe.initWriteOf(1), static_cast<int>(F.Iy));
}

TEST(Execution, RdwRelation) {
  // Fig. 27: T0: a: Wx=2. T1: b: Rx=1 (from init... actually from an external
  // write co-before a); c: Rx=2 (from a). Build with an extra writer thread.
  Execution Exe;
  Location X = Exe.internLocation("x");
  EventId Init = Exe.addEvent({.Thread = InitThread,
                               .Kind = EventKind::Write,
                               .Loc = X,
                               .Val = 0,
                               .IsInit = true});
  EventId A = Exe.addEvent(
      {.Thread = 0, .InstrIndex = 0, .Kind = EventKind::Write, .Loc = X,
       .Val = 2});
  EventId B = Exe.addEvent(
      {.Thread = 1, .InstrIndex = 0, .Kind = EventKind::Read, .Loc = X,
       .Val = 0});
  EventId C = Exe.addEvent(
      {.Thread = 1, .InstrIndex = 1, .Kind = EventKind::Read, .Loc = X,
       .Val = 2});
  Exe.finalizeStructure(2);
  Exe.Rf.set(Init, B);
  Exe.Rf.set(A, C);
  Exe.Co.set(Init, A);
  // b fr-before a (external), c reads a externally, b po-loc-before c.
  EXPECT_TRUE(Exe.rdw().test(B, C));
}

TEST(Execution, DetourRelation) {
  // Fig. 28: T0: b: Wx=1 then c: Rx=2; T1: a: Wx=2 with b co-before a.
  Execution Exe;
  Location X = Exe.internLocation("x");
  EventId Init = Exe.addEvent({.Thread = InitThread,
                               .Kind = EventKind::Write,
                               .Loc = X,
                               .Val = 0,
                               .IsInit = true});
  EventId B = Exe.addEvent(
      {.Thread = 0, .InstrIndex = 0, .Kind = EventKind::Write, .Loc = X,
       .Val = 1});
  EventId C = Exe.addEvent(
      {.Thread = 0, .InstrIndex = 1, .Kind = EventKind::Read, .Loc = X,
       .Val = 2});
  EventId A = Exe.addEvent(
      {.Thread = 1, .InstrIndex = 0, .Kind = EventKind::Write, .Loc = X,
       .Val = 2});
  Exe.finalizeStructure(2);
  Exe.Rf.set(A, C);
  Exe.Co.set(Init, B);
  Exe.Co.set(B, A);
  Exe.Co.set(Init, A);
  EXPECT_TRUE(Exe.detour().test(B, C));
}

TEST(Execution, FenceRelationLookupMissing) {
  MpFixture F;
  EXPECT_TRUE(F.Exe.fenceRelation("sync").empty());
}

TEST(Event, ToStringRendersPaperStyle) {
  MpFixture F;
  std::string S = F.Exe.event(F.A).toString(F.Exe.LocationNames);
  EXPECT_NE(S.find("Wx=1"), std::string::npos);
  EXPECT_NE(S.find("T0"), std::string::npos);
}
