//===- campaign.cpp - Sharding, caching, checkpointing, merging ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the campaign layer (docs/campaigns.md): round-robin shards must
/// partition a stream completely and disjointly, a merged shard set must
/// reproduce the single-process report byte-for-byte (modulo wall
/// times), cache hits must be byte-identical to fresh judgements while
/// any test mutation misses, and resuming an interrupted checkpoint must
/// equal the uninterrupted run. Also covers the cats-sweep-report/1
/// reader (outcome keys included) and the mine-report shard merge.
///
//===----------------------------------------------------------------------===//

#include "campaign/Checkpoint.h"
#include "campaign/Merge.h"
#include "campaign/ResultCache.h"
#include "campaign/Shard.h"
#include "cat/CatAdapter.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"
#include "mole/Mine.h"
#include "sweep/ReportIO.h"
#include "sweep/SweepEngine.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <set>

using namespace cats;

namespace {

std::vector<LitmusTest> catalogueTests() {
  std::vector<LitmusTest> Out;
  for (const CatalogEntry &Entry : figureCatalog())
    Out.push_back(Entry.Test);
  return Out;
}

/// A single-pass source over a materialized vector, sharing its cursor
/// across std::function copies like every real source does.
TestSource vectorSource(std::vector<LitmusTest> Tests) {
  auto Vec = std::make_shared<std::vector<LitmusTest>>(std::move(Tests));
  auto Idx = std::make_shared<size_t>(0);
  return [Vec, Idx](LitmusTest &Out) -> bool {
    if (*Idx >= Vec->size())
      return false;
    Out = (*Vec)[(*Idx)++];
    return true;
  };
}

/// The report's JSON with every wall_seconds zeroed — the determinism
/// contract of docs/sweep.md, byte-comparable across runs.
std::string scrubbedDump(const SweepReport &Report) {
  return zeroWallTimes(sweepReportToJson(Report)).dump();
}

/// A fresh scratch directory under the test temp root.
std::string scratchDir(const std::string &Name) {
  std::string Dir = ::testing::TempDir() + "cats_campaign_" + Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir;
}

} // namespace

//===----------------------------------------------------------------------===//
// Shard specs and partitioning
//===----------------------------------------------------------------------===//

TEST(Shard, ParsesAndRejects) {
  auto Ok = parseShardSpec("2/4");
  ASSERT_TRUE(static_cast<bool>(Ok)) << Ok.message();
  EXPECT_EQ(Ok->Index, 2u);
  EXPECT_EQ(Ok->Count, 4u);
  EXPECT_TRUE(Ok->active());
  EXPECT_EQ(Ok->toString(), "2/4");

  auto Whole = parseShardSpec("1/1");
  ASSERT_TRUE(static_cast<bool>(Whole));
  EXPECT_FALSE(Whole->active());

  for (const char *Bad : {"0/4", "5/4", "4", "x/y", "2/", "/4", "2/4/8", ""})
    EXPECT_FALSE(static_cast<bool>(parseShardSpec(Bad))) << Bad;
}

TEST(Shard, RoundRobinOwnership) {
  ShardSpec Spec{2, 3};
  // Shard 2 of 3 owns positions 1, 4, 7, ...
  EXPECT_FALSE(Spec.owns(0));
  EXPECT_TRUE(Spec.owns(1));
  EXPECT_FALSE(Spec.owns(2));
  EXPECT_TRUE(Spec.owns(4));
}

TEST(Shard, SourcePartitionIsCompleteDisjointAndDeterministic) {
  const std::vector<LitmusTest> Tests = catalogueTests();
  const unsigned N = 3;

  auto ShardNames = [&](unsigned K) {
    std::vector<std::string> Names;
    TestSource Src = shardTestSource(vectorSource(Tests), ShardSpec{K, N});
    LitmusTest T;
    while (Src(T))
      Names.push_back(T.Name);
    return Names;
  };

  std::vector<std::string> Interleaved;
  std::set<std::string> Seen;
  std::vector<std::vector<std::string>> PerShard;
  for (unsigned K = 1; K <= N; ++K) {
    PerShard.push_back(ShardNames(K));
    // Deterministic: a second pass yields the same slice.
    EXPECT_EQ(ShardNames(K), PerShard.back());
    for (const std::string &Name : PerShard.back()) {
      EXPECT_TRUE(Seen.insert(Name).second) << Name << " in two shards";
    }
  }
  EXPECT_EQ(Seen.size(), Tests.size());

  // Shards are balanced to within one test and interleave back to the
  // source order.
  for (unsigned K = 0; K < N; ++K)
    EXPECT_LE(PerShard[0].size() - PerShard[K].size(), 1u);
  for (size_t Offset = 0;; ++Offset) {
    bool Any = false;
    for (unsigned K = 0; K < N; ++K)
      if (Offset < PerShard[K].size()) {
        Interleaved.push_back(PerShard[K][Offset]);
        Any = true;
      }
    if (!Any)
      break;
  }
  ASSERT_EQ(Interleaved.size(), Tests.size());
  for (size_t I = 0; I < Tests.size(); ++I)
    EXPECT_EQ(Interleaved[I], Tests[I].Name);
}

TEST(Shard, StanzaRoundTrip) {
  ShardSpec Spec{3, 8};
  auto Back = shardFromJson(shardToJson(Spec));
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(Back->Index, 3u);
  EXPECT_EQ(Back->Count, 8u);
  EXPECT_FALSE(static_cast<bool>(shardFromJson(JsonValue(1))));
}

//===----------------------------------------------------------------------===//
// Report IO: outcome keys and the sweep-report reader
//===----------------------------------------------------------------------===//

TEST(ReportIO, OutcomeKeyRoundTripsEveryCatalogueState) {
  const CatalogEntry *Entry = catalogEntry("mp");
  ASSERT_NE(Entry, nullptr);
  SweepReport Report = SweepEngine({1}).run(
      makeJobs({Entry->Test}, {modelByName("SC"), modelByName("Power")}));
  ASSERT_EQ(Report.Tests.size(), 1u);
  unsigned Checked = 0;
  for (const Outcome &O : Report.Tests[0].Result.ConsistentOutcomes) {
    auto Back = outcomeFromKey(O.key());
    ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
    EXPECT_EQ(Back->key(), O.key());
    EXPECT_EQ(*Back == O, true);
    ++Checked;
  }
  EXPECT_GT(Checked, 0u);
}

TEST(ReportIO, OutcomeKeyRejectsGarbage) {
  for (const char *Bad :
       {"0:r0=1", "novalue;", "=1;", "0:q0=1;", "x:r0=1;", "0:r0=z;"})
    EXPECT_FALSE(static_cast<bool>(outcomeFromKey(Bad))) << Bad;
  // The empty outcome is legal (a test with no observed locations).
  EXPECT_TRUE(static_cast<bool>(outcomeFromKey("")));
}

TEST(ReportIO, SweepReportRoundTripsByteIdentically) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(6);
  SweepReport Report = SweepEngine({2}).run(
      makeJobs(Tests, {modelByName("SC"), modelByName("TSO")}));
  JsonValue Root = sweepReportToJson(Report);

  auto Parsed = sweepReportFromJson(Root);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(sweepReportToJson(*Parsed).dump(), Root.dump());
}

TEST(ReportIO, ReaderRejectsWrongSchema) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-run-report/1");
  Root.set("tests", JsonValue::array());
  EXPECT_FALSE(static_cast<bool>(sweepReportFromJson(Root)));
}

//===----------------------------------------------------------------------===//
// Result cache
//===----------------------------------------------------------------------===//

TEST(ResultCache, HitsAreByteIdenticalAndMutationsMiss) {
  const std::string Dir = scratchDir("cache");
  auto Cache = ResultCache::open(Dir);
  ASSERT_TRUE(static_cast<bool>(Cache)) << Cache.message();

  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(8);
  std::vector<const Model *> Models = {modelByName("SC"),
                                       modelByName("Power")};
  SweepEngine Engine({2});

  // Cold run: everything misses and populates the cache.
  SweepReport Cold = Engine.runStreamed(vectorSource(Tests), Models, 4,
                                        Cache->hooks(Models));
  EXPECT_TRUE(Cold.CacheUsed);
  EXPECT_EQ(Cold.CacheHits, 0ull);
  EXPECT_EQ(Cold.CacheMisses, Tests.size());

  // Warm run: everything hits, and the per-test entries are
  // byte-identical to the freshly judged ones (modulo wall times).
  SweepReport Warm = Engine.runStreamed(vectorSource(Tests), Models, 4,
                                        Cache->hooks(Models));
  EXPECT_EQ(Warm.CacheHits, Tests.size());
  EXPECT_EQ(Warm.CacheMisses, 0ull);
  ASSERT_EQ(Warm.Tests.size(), Cold.Tests.size());
  for (size_t I = 0; I < Cold.Tests.size(); ++I) {
    JsonValue A = sweepTestResultToJson(Cold.Tests[I]);
    JsonValue B = sweepTestResultToJson(Warm.Tests[I]);
    EXPECT_EQ(zeroWallTimes(A).dump(), zeroWallTimes(B).dump())
        << Cold.Tests[I].TestName;
  }

  // Any mutation of the concretized test text keys differently.
  LitmusTest Mutated = Tests[0];
  Mutated.Init["x"] = 7;
  EXPECT_NE(resultCacheKey(Tests[0], Models), resultCacheKey(Mutated, Models));
  SweepTestResult Out;
  EXPECT_FALSE(Cache->lookup(Mutated, Models, Out));

  // So does the model set and its order.
  std::vector<const Model *> Reordered = {Models[1], Models[0]};
  EXPECT_NE(resultCacheKey(Tests[0], Models),
            resultCacheKey(Tests[0], Reordered));
  EXPECT_FALSE(Cache->lookup(Tests[0], Reordered, Out));
  EXPECT_TRUE(Cache->lookup(Tests[0], Models, Out));
}

TEST(ResultCache, ModelDefinitionEditsMiss) {
  // The key covers Model::definitionFingerprint(), so editing a model's
  // *definition* — not just its display name — invalidates its entries.
  const std::string Dir = scratchDir("cache_model_edit");
  auto Cache = ResultCache::open(Dir);
  ASSERT_TRUE(static_cast<bool>(Cache));

  const std::string SourceV1 = "let hb = po | rfe\n"
                               "let prop = po | rf | fr\n"
                               "acyclic po-loc | com as sc-per-location\n"
                               "acyclic hb as no-thin-air\n"
                               "irreflexive fre; prop; hb* as observation\n"
                               "acyclic co | prop as propagation\n";
  // Same checks, weaker hb: a semantic edit under an unchanged name.
  const std::string SourceV2 = "let hb = rfe\n"
                               "let prop = rf | fr\n"
                               "acyclic po-loc | com as sc-per-location\n"
                               "acyclic hb as no-thin-air\n"
                               "irreflexive fre; prop; hb* as observation\n"
                               "acyclic co | prop as propagation\n";
  auto V1 = CatAdapterModel::fromSource(SourceV1, "edited");
  auto V2 = CatAdapterModel::fromSource(SourceV2, "edited");
  ASSERT_TRUE(static_cast<bool>(V1)) << V1.message();
  ASSERT_TRUE(static_cast<bool>(V2)) << V2.message();
  EXPECT_EQ(V1->name(), V2->name());
  EXPECT_NE(V1->definitionFingerprint(), V2->definitionFingerprint());

  const LitmusTest Test = catalogueTests().front();
  const std::vector<const Model *> WithV1 = {modelByName("SC"), &*V1};
  const std::vector<const Model *> WithV2 = {modelByName("SC"), &*V2};
  EXPECT_NE(resultCacheKey(Test, WithV1), resultCacheKey(Test, WithV2));

  // Store under the v1 definition; the same name with the v2 definition
  // must miss, and v1 must still hit.
  SweepTestResult Stored;
  Stored.TestName = Test.Name;
  ASSERT_FALSE(Cache->store(Test, WithV1, Stored).failed());
  SweepTestResult Out;
  EXPECT_TRUE(Cache->lookup(Test, WithV1, Out));
  EXPECT_FALSE(Cache->lookup(Test, WithV2, Out));

  // Native models key on their architecture configuration, not just the
  // display name either.
  EXPECT_NE(modelByName("Power")->definitionFingerprint(),
            modelByName("ARM")->definitionFingerprint());
}

TEST(ResultCache, CollisionGuardRejectsForeignEntries) {
  const std::string Dir = scratchDir("cache_collide");
  auto Cache = ResultCache::open(Dir);
  ASSERT_TRUE(static_cast<bool>(Cache));
  std::vector<const Model *> Models = {modelByName("SC")};

  std::vector<LitmusTest> Tests = catalogueTests();
  SweepReport Report =
      SweepEngine({1}).run(makeJobs({Tests[0]}, Models));
  ASSERT_TRUE(Cache->store(Tests[0], Models, Report.Tests[0]));

  // Hand-plant Tests[0]'s entry under Tests[1]'s key: a (hypothetical)
  // hash collision. The stored name no longer matches, so lookup treats
  // it as a miss instead of serving a wrong verdict.
  const std::string From =
      Dir + "/" + resultCacheKey(Tests[0], Models).substr(0, 2) + "/" +
      resultCacheKey(Tests[0], Models) + ".json";
  const std::string ToKey = resultCacheKey(Tests[1], Models);
  std::filesystem::create_directories(Dir + "/" + ToKey.substr(0, 2));
  std::filesystem::copy_file(From, Dir + "/" + ToKey.substr(0, 2) + "/" +
                                       ToKey + ".json");
  SweepTestResult Out;
  EXPECT_FALSE(Cache->lookup(Tests[1], Models, Out));
}

TEST(ResultCache, ErroredResultsAreNotCached) {
  const std::string Dir = scratchDir("cache_error");
  auto Cache = ResultCache::open(Dir);
  ASSERT_TRUE(static_cast<bool>(Cache));
  std::vector<const Model *> Models = {modelByName("SC")};
  LitmusTest Test = catalogueTests()[0];
  SweepTestResult Errored;
  Errored.TestName = Test.Name;
  Errored.Error = "synthetic failure";
  ASSERT_TRUE(Cache->store(Test, Models, Errored));
  SweepTestResult Out;
  EXPECT_FALSE(Cache->lookup(Test, Models, Out));
}

//===----------------------------------------------------------------------===//
// Checkpoint / resume
//===----------------------------------------------------------------------===//

TEST(Checkpoint, ResumeAfterKillEqualsUninterrupted) {
  const std::string Dir = scratchDir("checkpoint");
  const std::string Path = Dir + "/campaign.jsonl";
  const std::string Id = campaignId("tool=test;models=SC,TSO");

  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(12);
  std::vector<const Model *> Models = {modelByName("SC"),
                                       modelByName("TSO")};
  SweepEngine Engine({2});

  const std::string Reference =
      scrubbedDump(Engine.runStreamed(vectorSource(Tests), Models, 4));

  // Phase A: the "killed" run covers only the first 7 tests (batches of
  // 4: progress lines at 4 and 7).
  {
    auto Writer = CheckpointWriter::create(Path, Id);
    ASSERT_TRUE(static_cast<bool>(Writer)) << Writer.message();
    size_t LastWritten = 0;
    StreamHooks Hooks;
    Hooks.OnBatch = [&](const SweepReport &SoFar,
                        unsigned long long Consumed) {
      std::vector<SweepTestResult> Slice(SoFar.Tests.begin() + LastWritten,
                                         SoFar.Tests.end());
      LastWritten = SoFar.Tests.size();
      ASSERT_TRUE(Writer->appendBatch(Slice, Consumed, SoFar.CacheHits,
                                      SoFar.CacheMisses));
    };
    std::vector<LitmusTest> Partial(Tests.begin(), Tests.begin() + 7);
    Engine.runStreamed(vectorSource(Partial), Models, 4, Hooks);
  }
  // The kill also tore the file mid-append: two entries of the next
  // batch landed without their progress line, the last one cut short.
  {
    std::ofstream Tail(Path, std::ios::app);
    JsonValue Line = JsonValue::object();
    Line.set("entry", sweepTestResultToJson(SweepTestResult{
                          "orphan", "", MultiSimulationResult{}, 0}));
    Tail << Line.dump(0) << "\n";
    Tail << "{\"entry\":{\"name\":\"torn";
  }

  // Phase B: load, trim to the last completed batch, resume.
  auto State = loadCheckpoint(Path, Id);
  ASSERT_TRUE(static_cast<bool>(State)) << State.message();
  EXPECT_EQ(State->Consumed, 7ull);
  ASSERT_EQ(State->Tests.size(), 7u);

  StreamHooks Hooks;
  Hooks.SkipTests = State->Consumed;
  SweepReport Resumed =
      Engine.runStreamed(vectorSource(Tests), Models, 4, Hooks);
  Resumed.Tests.insert(Resumed.Tests.begin(),
                       std::make_move_iterator(State->Tests.begin()),
                       std::make_move_iterator(State->Tests.end()));
  EXPECT_EQ(scrubbedDump(Resumed), Reference);
}

TEST(Checkpoint, RefusesForeignCampaigns) {
  const std::string Dir = scratchDir("checkpoint_id");
  const std::string Path = Dir + "/c.jsonl";
  {
    auto Writer = CheckpointWriter::create(Path, campaignId("spec-a"));
    ASSERT_TRUE(static_cast<bool>(Writer));
  }
  EXPECT_TRUE(static_cast<bool>(loadCheckpoint(Path, campaignId("spec-a"))));
  auto Foreign = loadCheckpoint(Path, campaignId("spec-b"));
  EXPECT_FALSE(static_cast<bool>(Foreign));
  EXPECT_NE(Foreign.message().find("different campaign"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Merging
//===----------------------------------------------------------------------===//

namespace {

/// Runs one shard of the catalogue campaign and returns its report
/// document with the shard stanza, exactly as cats_sweep --shard writes.
JsonValue shardReportDoc(const std::vector<LitmusTest> &Tests,
                         const std::vector<const Model *> &Models,
                         unsigned K, unsigned N) {
  SweepReport Report = SweepEngine({2}).runStreamed(
      shardTestSource(vectorSource(Tests), ShardSpec{K, N}), Models, 8);
  JsonValue Doc = sweepReportToJson(Report);
  Doc.set("shard", shardToJson(ShardSpec{K, N}));
  return Doc;
}

} // namespace

TEST(Merge, ShardedSweepMergesByteIdenticallyToSingleRun) {
  const std::vector<LitmusTest> Tests = catalogueTests();
  std::vector<const Model *> Models = {modelByName("SC"),
                                       modelByName("Power")};
  const unsigned N = 3;

  const std::string Reference = scrubbedDump(
      SweepEngine({2}).runStreamed(vectorSource(Tests), Models, 8));

  std::vector<JsonValue> Shards;
  for (unsigned K = 1; K <= N; ++K)
    Shards.push_back(shardReportDoc(Tests, Models, K, N));

  auto Merged = mergeSweepReports(Shards);
  ASSERT_TRUE(static_cast<bool>(Merged)) << Merged.message();
  EXPECT_EQ(zeroWallTimes(*Merged).dump(), Reference);
  // Shard order on the command line must not matter.
  std::swap(Shards[0], Shards[2]);
  auto Shuffled = mergeSweepReports(Shards);
  ASSERT_TRUE(static_cast<bool>(Shuffled));
  EXPECT_EQ(zeroWallTimes(*Shuffled).dump(), Reference);
}

TEST(Merge, SingleInputPassesThrough) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(5);
  std::vector<const Model *> Models = {modelByName("SC")};
  JsonValue Doc =
      sweepReportToJson(SweepEngine({1}).runStreamed(
          vectorSource(Tests), Models, 8));
  auto Merged = mergeSweepReports({Doc});
  ASSERT_TRUE(static_cast<bool>(Merged)) << Merged.message();
  EXPECT_EQ(Merged->dump(), Doc.dump());
}

TEST(Merge, RejectsBrokenShardSets) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(6);
  std::vector<const Model *> Models = {modelByName("SC")};

  // Incomplete: 2 of 3 shards.
  auto Incomplete = mergeSweepReports({shardReportDoc(Tests, Models, 1, 3),
                                       shardReportDoc(Tests, Models, 2, 3)});
  EXPECT_FALSE(static_cast<bool>(Incomplete));
  EXPECT_NE(Incomplete.message().find("incomplete"), std::string::npos);

  // Duplicate index.
  auto Duplicate = mergeSweepReports({shardReportDoc(Tests, Models, 1, 2),
                                      shardReportDoc(Tests, Models, 1, 2)});
  EXPECT_FALSE(static_cast<bool>(Duplicate));

  // Sharded mixed with unsharded.
  JsonValue Plain = sweepReportToJson(
      SweepEngine({1}).runStreamed(vectorSource(Tests), Models, 8));
  auto Mixed =
      mergeSweepReports({shardReportDoc(Tests, Models, 1, 2), Plain});
  EXPECT_FALSE(static_cast<bool>(Mixed));
}

TEST(Merge, CacheCountersSumAcrossShards) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(6);
  std::vector<const Model *> Models = {modelByName("SC")};
  const std::string Dir = scratchDir("merge_cache");
  auto Cache = ResultCache::open(Dir);
  ASSERT_TRUE(static_cast<bool>(Cache));

  std::vector<JsonValue> Docs;
  for (unsigned K = 1; K <= 2; ++K) {
    SweepReport R = SweepEngine({1}).runStreamed(
        shardTestSource(vectorSource(Tests), ShardSpec{K, 2}), Models, 4,
        Cache->hooks(Models));
    JsonValue Doc = sweepReportToJson(R);
    Doc.set("shard", shardToJson(ShardSpec{K, 2}));
    Docs.push_back(Doc);
  }
  auto Merged = mergeSweepReports(Docs);
  ASSERT_TRUE(static_cast<bool>(Merged)) << Merged.message();
  const JsonValue *CacheStanza = Merged->get("cache");
  ASSERT_NE(CacheStanza, nullptr);
  EXPECT_EQ(CacheStanza->get("hits")->asNumber() +
                CacheStanza->get("misses")->asNumber(),
            static_cast<double>(Tests.size()));
}

TEST(Merge, DispatchRejectsMixedAndUnknownSchemas) {
  JsonValue Sweep = JsonValue::object();
  Sweep.set("schema", "cats-sweep-report/1");
  Sweep.set("tests", JsonValue::array());
  JsonValue Mine = JsonValue::object();
  Mine.set("schema", "cats-mine-report/1");
  EXPECT_FALSE(static_cast<bool>(mergeReports({Sweep, Mine})));

  JsonValue Run = JsonValue::object();
  Run.set("schema", "cats-run-report/1");
  auto Unknown = mergeReports({Run});
  EXPECT_FALSE(static_cast<bool>(Unknown));
  EXPECT_NE(Unknown.message().find("not mergeable"), std::string::npos);
}

TEST(Merge, ZeroWallTimesOnlyTouchesNumericWallFields) {
  auto Doc = JsonValue::parse(
      R"({"wall_seconds": 1.5, "nested": [{"wall_seconds": 2}],)"
      R"( "wall_seconds_str": "keep", "other": 3})");
  ASSERT_TRUE(static_cast<bool>(Doc));
  JsonValue Zeroed = zeroWallTimes(*Doc);
  EXPECT_EQ(Zeroed.get("wall_seconds")->asNumber(), 0);
  EXPECT_EQ(Zeroed.get("nested")->elements()[0].get("wall_seconds")
                ->asNumber(),
            0);
  EXPECT_EQ(Zeroed.get("other")->asNumber(), 3);
}

//===----------------------------------------------------------------------===//
// Mine-report merging
//===----------------------------------------------------------------------===//

TEST(MineMerge, ShardAggregatesEqualTheFullMine) {
  const std::vector<LitmusTest> Tests = catalogueTests();
  std::vector<const Model *> Models = {modelByName("SC"),
                                       modelByName("Power")};
  SweepEngine Engine({2});

  MineReport Full = mineSweepReport(
      Engine.runStreamed(vectorSource(Tests), Models, 16));

  std::vector<MineReport> Parts;
  for (unsigned K = 1; K <= 3; ++K)
    Parts.push_back(mineSweepReport(Engine.runStreamed(
        shardTestSource(vectorSource(Tests), ShardSpec{K, 3}), Models, 16)));
  auto Merged = mergeMineReports(Parts);
  ASSERT_TRUE(static_cast<bool>(Merged)) << Merged.message();

  EXPECT_EQ(Merged->CorpusTests, Full.CorpusTests);
  EXPECT_EQ(Merged->CorpusErrors, Full.CorpusErrors);
  EXPECT_EQ(Merged->Models, Full.Models);
  ASSERT_EQ(Merged->Families.size(), Full.Families.size());
  for (size_t I = 0; I < Full.Families.size(); ++I) {
    const FamilyVerdicts &A = Full.Families[I];
    const FamilyVerdicts &B = Merged->Families[I];
    EXPECT_EQ(A.Family, B.Family);
    EXPECT_EQ(A.Tests, B.Tests);
    ASSERT_EQ(A.PerModel.size(), B.PerModel.size());
    for (size_t J = 0; J < A.PerModel.size(); ++J) {
      EXPECT_EQ(A.PerModel[J].Model, B.PerModel[J].Model);
      EXPECT_EQ(A.PerModel[J].Allowed, B.PerModel[J].Allowed);
      EXPECT_EQ(A.PerModel[J].Forbidden, B.PerModel[J].Forbidden);
    }
    // Merged test_names are the sorted normal form.
    std::vector<std::string> Sorted = A.TestNames;
    std::sort(Sorted.begin(), Sorted.end());
    EXPECT_EQ(B.TestNames, Sorted) << A.Family;
  }
}

TEST(MineMerge, JsonRoundTripAndStaticRefusal) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(10);
  std::vector<const Model *> Models = {modelByName("SC")};
  MineReport Mined = mineSweepReport(
      SweepEngine({1}).runStreamed(vectorSource(Tests), Models, 8));

  JsonValue Doc = mineReportToJson(Mined);
  auto Back = mineReportFromJson(Doc);
  ASSERT_TRUE(static_cast<bool>(Back)) << Back.message();
  EXPECT_EQ(mineReportToJson(*Back).dump(), Doc.dump());

  // Reports carrying static analyses cannot be merged shard-wise.
  Mined.StaticReports.push_back(MoleReport{});
  auto Refused = mineReportFromJson(mineReportToJson(Mined));
  EXPECT_FALSE(static_cast<bool>(Refused));
  EXPECT_NE(Refused.message().find("static"), std::string::npos);
}

TEST(MineMerge, JsonLevelMergeMatchesStructMerge) {
  std::vector<LitmusTest> Tests = catalogueTests();
  Tests.resize(12);
  std::vector<const Model *> Models = {modelByName("SC")};
  SweepEngine Engine({1});

  std::vector<JsonValue> Docs;
  std::vector<MineReport> Parts;
  for (unsigned K = 1; K <= 2; ++K) {
    MineReport Part = mineSweepReport(Engine.runStreamed(
        shardTestSource(vectorSource(Tests), ShardSpec{K, 2}), Models, 8));
    Docs.push_back(mineReportToJson(Part));
    Parts.push_back(std::move(Part));
  }
  auto ViaJson = mergeMineReports(Docs);
  ASSERT_TRUE(static_cast<bool>(ViaJson)) << ViaJson.message();
  auto ViaStructs = mergeMineReports(Parts);
  ASSERT_TRUE(static_cast<bool>(ViaStructs));
  EXPECT_EQ(ViaJson->dump(), mineReportToJson(*ViaStructs).dump());
}
