//===- support.cpp - Tests for the support library -------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

#include <set>

using namespace cats;

TEST(StringUtils, SplitKeepsEmptyFields) {
  auto Parts = splitString("a,,b,", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "");
  EXPECT_EQ(Parts[2], "b");
  EXPECT_EQ(Parts[3], "");
}

TEST(StringUtils, SplitSingleField) {
  auto Parts = splitString("abc", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "abc");
}

TEST(StringUtils, SplitWhitespaceDropsEmpties) {
  auto Parts = splitWhitespace("  foo \t bar\nbaz  ");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "foo");
  EXPECT_EQ(Parts[1], "bar");
  EXPECT_EQ(Parts[2], "baz");
}

TEST(StringUtils, SplitWhitespaceAllBlank) {
  EXPECT_TRUE(splitWhitespace(" \t\n ").empty());
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trimString("  x y  "), "x y");
  EXPECT_EQ(trimString(""), "");
  EXPECT_EQ(trimString("   "), "");
  EXPECT_EQ(trimString("abc"), "abc");
}

TEST(StringUtils, StartsEndsWith) {
  EXPECT_TRUE(startsWith("mp+lwsync+addr", "mp"));
  EXPECT_FALSE(startsWith("mp", "mp+"));
  EXPECT_TRUE(endsWith("mp+lwsync+addr", "addr"));
  EXPECT_FALSE(endsWith("addr", "+addr"));
}

TEST(StringUtils, Format) {
  EXPECT_EQ(strFormat("%d %s", 42, "x"), "42 x");
  EXPECT_EQ(strFormat("%s", ""), "");
}

TEST(StringUtils, Join) {
  EXPECT_EQ(joinStrings({"a", "b", "c"}, "+"), "a+b+c");
  EXPECT_EQ(joinStrings({}, "+"), "");
  EXPECT_EQ(joinStrings({"solo"}, "+"), "solo");
}

TEST(StringUtils, Padding) {
  EXPECT_EQ(padRight("ab", 5), "ab   ");
  EXPECT_EQ(padLeft("ab", 5), "   ab");
  EXPECT_EQ(padRight("abcdef", 3), "abcdef");
}

TEST(Status, SuccessAndError) {
  Status Ok = Status::success();
  EXPECT_TRUE(static_cast<bool>(Ok));
  EXPECT_FALSE(Ok.failed());

  Status Err = Status::error("boom");
  EXPECT_FALSE(static_cast<bool>(Err));
  EXPECT_TRUE(Err.failed());
  EXPECT_EQ(Err.message(), "boom");
}

TEST(Expected, Roundtrip) {
  Expected<int> Ok(7);
  ASSERT_TRUE(static_cast<bool>(Ok));
  EXPECT_EQ(*Ok, 7);

  auto Err = Expected<int>::error("bad");
  EXPECT_FALSE(static_cast<bool>(Err));
  EXPECT_EQ(Err.message(), "bad");
}

TEST(Rng, DeterministicForSeed) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  bool AnyDifferent = false;
  for (int I = 0; I < 10; ++I)
    AnyDifferent |= (A.next() != B.next());
  EXPECT_TRUE(AnyDifferent);
}

TEST(Rng, BoundRespected) {
  Rng R(99);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = R.nextBelow(7);
    EXPECT_LT(V, 7u);
    Seen.insert(V);
  }
  // With 1000 draws every residue should appear.
  EXPECT_EQ(Seen.size(), 7u);
}
