//===- bmc.cpp - Tests for the verification substrate -------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "bmc/Judge.h"
#include "bmc/Verify.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

const LitmusTest &catalogTest(const char *Name) {
  const CatalogEntry *Entry = catalogEntry(Name);
  EXPECT_NE(Entry, nullptr) << Name;
  return Entry->Test;
}

} // namespace

TEST(Verify, MethodsAgreeOnReachability) {
  const Model &Power = *modelByName("Power");
  for (const char *Name : {"mp", "mp+lwsync+addr", "sb+syncs", "sb",
                           "2+2w", "iriw+lwsyncs", "r+lwsync+sync"}) {
    const LitmusTest &Test = catalogTest(Name);
    VerifyResult Ax = verifyAxiomatic(Test, Power);
    VerifyResult Multi = verifyMultiEvent(Test, Power);
    VerifyResult Op = verifyOperational(Test, Power);
    EXPECT_EQ(Ax.Reachable, Multi.Reachable) << Name;
    EXPECT_EQ(Ax.Reachable, Op.Reachable) << Name;
    EXPECT_FALSE(Op.Incomplete) << Name;
  }
}

TEST(Verify, ReachabilityMatchesCatalogue) {
  const Model &Power = *modelByName("Power");
  EXPECT_TRUE(verifyAxiomatic(catalogTest("mp"), Power).Reachable);
  EXPECT_FALSE(
      verifyAxiomatic(catalogTest("mp+lwsync+addr"), Power).Reachable);
}

TEST(Verify, OperationalCostsMore) {
  // The Table X/XI story: operational work (machine states) dwarfs the
  // axiomatic work (candidates) on forbidden tests.
  const Model &Power = *modelByName("Power");
  const LitmusTest &Test = catalogTest("iriw+syncs");
  VerifyResult Ax = verifyAxiomatic(Test, Power);
  VerifyResult Op = verifyOperational(Test, Power);
  EXPECT_FALSE(Ax.Reachable);
  EXPECT_GT(Op.Work, Ax.Work);
}

TEST(Verify, StateLimitMarksIncomplete) {
  const Model &Power = *modelByName("Power");
  VerifyResult Op =
      verifyOperational(catalogTest("iriw+syncs"), Power, 3);
  EXPECT_TRUE(Op.Incomplete);
}

TEST(Verify, WorkCountsCandidates) {
  const Model &Sc = *modelByName("SC");
  VerifyResult Ax = verifyAxiomatic(catalogTest("mp"), Sc);
  // mp has 4 candidates; an early witness may cut the walk short.
  EXPECT_GE(Ax.Work, 1u);
  EXPECT_LE(Ax.Work, 4u);
}

TEST(Verify, TimingsAreRecorded) {
  const Model &Power = *modelByName("Power");
  VerifyResult Ax = verifyAxiomatic(catalogTest("iriw+syncs"), Power);
  EXPECT_GE(Ax.Seconds, 0.0);
}

//===--------------------------------------------------------------------===//
// Catalogue-scope agreement of the bmc judging backend (bmc/Judge.h):
// every figure of the paper, judged under SC, TSO and Power. The backend
// must reproduce the enumerator's reachability verdict and outcome sets
// exactly; its allowed counts are documented lower bounds. This suite is
// the bmc leg of the differential harness (tests/differential.cpp runs
// the same backend under all nine models).
//===--------------------------------------------------------------------===//

class BmcCatalog : public ::testing::TestWithParam<size_t> {};

TEST_P(BmcCatalog, AgreesWithEnumerator) {
  const CatalogEntry &Entry = figureCatalog()[GetParam()];
  std::vector<const Model *> Models = {
      modelByName("SC"), modelByName("TSO"), modelByName("Power")};

  MultiSimulationResult Naive =
      simulateAll(Entry.Test, Models, JudgeBackend::Naive);
  MultiSimulationResult Bmc = judgeBmc(Entry.Test, Models);

  EXPECT_EQ(Bmc.CandidatesTotal, Naive.CandidatesTotal);
  EXPECT_EQ(Bmc.CandidatesConsistent, Naive.CandidatesConsistent);
  EXPECT_EQ(Bmc.ConsistentOutcomes, Naive.ConsistentOutcomes);
  ASSERT_EQ(Bmc.PerModel.size(), Naive.PerModel.size());
  for (size_t I = 0; I < Models.size(); ++I) {
    const SimulationResult &B = Bmc.PerModel[I];
    const SimulationResult &N = Naive.PerModel[I];
    EXPECT_EQ(B.ConditionReachable, N.ConditionReachable) << B.ModelName;
    EXPECT_EQ(B.AllowedOutcomes, N.AllowedOutcomes) << B.ModelName;
    EXPECT_LE(B.CandidatesAllowed, N.CandidatesAllowed) << B.ModelName;
    EXPECT_EQ(B.CandidatesAllowed > 0, N.CandidatesAllowed > 0)
        << B.ModelName;
  }

  // The verify facade answers the same reachability question, and its
  // work counter (judged canonical leaves) never exceeds the exhaustive
  // consistent-candidate count.
  for (const Model *M : Models) {
    VerifyResult V = verifyAxiomaticBmc(Entry.Test, *M);
    EXPECT_EQ(V.Reachable,
              Naive.forModel(M->name())->ConditionReachable)
        << M->name();
    EXPECT_LE(V.Work, Naive.CandidatesConsistent) << M->name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFigures, BmcCatalog,
    ::testing::Range<size_t>(0, figureCatalog().size()),
    [](const ::testing::TestParamInfo<size_t> &Info) {
      std::string Name = figureCatalog()[Info.param].Test.Name;
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });
