//===- bmc.cpp - Tests for the verification substrate -------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "bmc/Verify.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

const LitmusTest &catalogTest(const char *Name) {
  const CatalogEntry *Entry = catalogEntry(Name);
  EXPECT_NE(Entry, nullptr) << Name;
  return Entry->Test;
}

} // namespace

TEST(Verify, MethodsAgreeOnReachability) {
  const Model &Power = *modelByName("Power");
  for (const char *Name : {"mp", "mp+lwsync+addr", "sb+syncs", "sb",
                           "2+2w", "iriw+lwsyncs", "r+lwsync+sync"}) {
    const LitmusTest &Test = catalogTest(Name);
    VerifyResult Ax = verifyAxiomatic(Test, Power);
    VerifyResult Multi = verifyMultiEvent(Test, Power);
    VerifyResult Op = verifyOperational(Test, Power);
    EXPECT_EQ(Ax.Reachable, Multi.Reachable) << Name;
    EXPECT_EQ(Ax.Reachable, Op.Reachable) << Name;
    EXPECT_FALSE(Op.Incomplete) << Name;
  }
}

TEST(Verify, ReachabilityMatchesCatalogue) {
  const Model &Power = *modelByName("Power");
  EXPECT_TRUE(verifyAxiomatic(catalogTest("mp"), Power).Reachable);
  EXPECT_FALSE(
      verifyAxiomatic(catalogTest("mp+lwsync+addr"), Power).Reachable);
}

TEST(Verify, OperationalCostsMore) {
  // The Table X/XI story: operational work (machine states) dwarfs the
  // axiomatic work (candidates) on forbidden tests.
  const Model &Power = *modelByName("Power");
  const LitmusTest &Test = catalogTest("iriw+syncs");
  VerifyResult Ax = verifyAxiomatic(Test, Power);
  VerifyResult Op = verifyOperational(Test, Power);
  EXPECT_FALSE(Ax.Reachable);
  EXPECT_GT(Op.Work, Ax.Work);
}

TEST(Verify, StateLimitMarksIncomplete) {
  const Model &Power = *modelByName("Power");
  VerifyResult Op =
      verifyOperational(catalogTest("iriw+syncs"), Power, 3);
  EXPECT_TRUE(Op.Incomplete);
}

TEST(Verify, WorkCountsCandidates) {
  const Model &Sc = *modelByName("SC");
  VerifyResult Ax = verifyAxiomatic(catalogTest("mp"), Sc);
  // mp has 4 candidates; an early witness may cut the walk short.
  EXPECT_GE(Ax.Work, 1u);
  EXPECT_LE(Ax.Work, 4u);
}

TEST(Verify, TimingsAreRecorded) {
  const Model &Power = *modelByName("Power");
  VerifyResult Ax = verifyAxiomatic(catalogTest("iriw+syncs"), Power);
  EXPECT_GE(Ax.Seconds, 0.0);
}
