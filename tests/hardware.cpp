//===- hardware.cpp - Tests for the simulated-hardware substrate -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "hardware/Hardware.h"
#include "litmus/Catalog.h"
#include "model/Registry.h"

#include <gtest/gtest.h>

using namespace cats;

namespace {

const LitmusTest &catalogTest(const char *Name) {
  const CatalogEntry *Entry = catalogEntry(Name);
  EXPECT_NE(Entry, nullptr) << Name;
  return Entry->Test;
}

} // namespace

TEST(Hardware, FleetsAreComplete) {
  EXPECT_EQ(HardwareProfile::powerFleet().size(), 3u);
  EXPECT_EQ(HardwareProfile::armFleet().size(), 7u);
  for (const HardwareProfile &Chip : HardwareProfile::armFleet())
    EXPECT_TRUE(Chip.LoadLoadHazard)
        << Chip.ChipName << ": all tested ARM chips have the coRR bug";
  for (const HardwareProfile &Chip : HardwareProfile::powerFleet()) {
    EXPECT_FALSE(Chip.LoadLoadHazard) << Chip.ChipName;
    EXPECT_FALSE(Chip.ImplementsLoadBuffering)
        << Chip.ChipName << ": lb is unimplemented on Power";
  }
}

TEST(Hardware, PowerChipNeverProducesForbidden) {
  // The Power model is sound w.r.t. our Power chips (Table V: invalid=0):
  // anything a Power chip produces is model-allowed.
  const Model &Power = *modelByName("Power");
  HardwareProfile Chip = HardwareProfile::power7();
  for (const char *Name :
       {"mp+lwsync+addr", "sb+syncs", "iriw+syncs", "2+2w+lwsyncs"}) {
    HardwareRun Run = runOnHardware(catalogTest(Name), Chip, 2000);
    EXPECT_FALSE(Run.ConditionObserved)
        << Name << " observed on Power7 but forbidden by the model";
    (void)Power;
  }
}

TEST(Hardware, PowerChipDoesNotImplementLb) {
  HardwareRun Run =
      runOnHardware(catalogTest("lb"), HardwareProfile::power7(), 4000);
  EXPECT_FALSE(Run.ConditionObserved)
      << "lb is architecturally allowed but unseen on Power hardware";
  EXPECT_GT(Run.Samples, 0u);
}

TEST(Hardware, PowerChipShowsWeakBehaviours) {
  // mp without fences is allowed and must actually show up.
  HardwareRun Run =
      runOnHardware(catalogTest("mp"), HardwareProfile::power7(), 4000);
  EXPECT_TRUE(Run.ConditionObserved);
}

TEST(Hardware, ArmChipShowsCoRRHazard) {
  // The load-load hazard bug: coRR observed on every ARM chip.
  for (const HardwareProfile &Chip : HardwareProfile::armFleet()) {
    HardwareRun Run = runOnHardware(catalogTest("coRR"), Chip, 20000);
    EXPECT_TRUE(Run.ConditionObserved)
        << Chip.ChipName << " must exhibit the coRR anomaly";
  }
}

TEST(Hardware, PowerChipNeverShowsCoRR) {
  HardwareRun Run =
      runOnHardware(catalogTest("coRR"), HardwareProfile::power6(), 20000);
  EXPECT_FALSE(Run.ConditionObserved);
}

TEST(Hardware, EarlyCommitOnlyOnQualcomm) {
  const LitmusTest &Test = catalogTest("mp+dmb+fri-rfi-ctrlisb");
  HardwareRun Apq = runOnHardware(Test, HardwareProfile::apq8060(), 20000);
  EXPECT_TRUE(Apq.ConditionObserved)
      << "APQ8060 exhibits the early-commit behaviour (Fig. 32)";
  HardwareRun Tegra =
      runOnHardware(Test, HardwareProfile::tegra2(), 20000);
  EXPECT_FALSE(Tegra.ConditionObserved)
      << "Tegra2 does not exhibit fri-rfi early commit";
}

TEST(Hardware, ObservationAnomalyOnlyOnTegra3) {
  const LitmusTest &Test = catalogTest("mp+dmb+pos-ctrlisb+bis");
  HardwareRun Tegra3 =
      runOnHardware(Test, HardwareProfile::tegra3(), 40000);
  EXPECT_TRUE(Tegra3.ConditionObserved)
      << "the Fig. 35 anomaly was observed on Tegra3";
  HardwareRun Exynos =
      runOnHardware(Test, HardwareProfile::exynos4412(), 40000);
  EXPECT_FALSE(Exynos.ConditionObserved);
}

TEST(Hardware, MoredetourNeverObserved) {
  // coRW2 violations are not produced even by buggy chips: the llh bug
  // only tolerates read-read hazards. (The paper did observe it on two
  // chips and classifies it as a further bug; our profiles keep the two
  // documented anomaly classes only.)
  HardwareRun Run = runOnHardware(catalogTest("moredetour0052"),
                                  HardwareProfile::tegra3(), 20000);
  EXPECT_FALSE(Run.ConditionObserved);
}

TEST(Hardware, RunsAreDeterministic) {
  const LitmusTest &Test = catalogTest("mp");
  HardwareRun A = runOnHardware(Test, HardwareProfile::power7(), 500);
  HardwareRun B = runOnHardware(Test, HardwareProfile::power7(), 500);
  ASSERT_EQ(A.Observed.size(), B.Observed.size());
  auto ItA = A.Observed.begin();
  auto ItB = B.Observed.begin();
  for (; ItA != A.Observed.end(); ++ItA, ++ItB) {
    EXPECT_EQ(ItA->first.key(), ItB->first.key());
    EXPECT_EQ(ItA->second, ItB->second);
  }
}

TEST(Hardware, WitnessesAccompanyObservations) {
  HardwareRun Run = runOnHardware(catalogTest("coRR"),
                                  HardwareProfile::tegra2(), 20000);
  ASSERT_TRUE(Run.ConditionObserved);
  ASSERT_FALSE(Run.ConditionWitnesses.empty());
  // The witness violates the ARM model's SC PER LOCATION only.
  Verdict V = modelByName("ARM")->check(Run.ConditionWitnesses.front());
  EXPECT_FALSE(V.Allowed);
  EXPECT_EQ(V.letters(), "S");
}

TEST(Hardware, SampleCountsAddUp) {
  HardwareRun Run =
      runOnHardware(catalogTest("sb"), HardwareProfile::power7(), 1000);
  uint64_t Total = 0;
  for (const auto &[Out, Count] : Run.Observed)
    Total += Count;
  EXPECT_EQ(Total, Run.Samples);
  EXPECT_EQ(Run.Samples, 1000u);
}
