//===- mole_cli.cpp - mole as a command-line tool ----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mole workflow (Sec. 9) on user programs:
///
///   mole_cli [program.mole | rcu | postgres | apache]
///
/// Prints the function groups, every static critical cycle with its
/// pattern name and axiom class, and the summary tables. Defaults to the
/// bundled RCU program of Fig. 40.
///
//===----------------------------------------------------------------------===//

#include "mole/Mole.h"
#include "mole/MoleParser.h"

#include <cstdio>

using namespace cats;

int main(int Argc, char **Argv) {
  MoleProgram Program;
  std::string Arg = Argc > 1 ? Argv[1] : "rcu";
  if (Arg == "rcu") {
    Program = rcuProgram();
  } else if (Arg == "postgres") {
    Program = postgresProgram();
  } else if (Arg == "apache") {
    Program = apacheProgram();
  } else {
    auto Parsed = parseMoleFile(Arg);
    if (!Parsed) {
      std::fprintf(stderr, "%s\n", Parsed.message().c_str());
      return 1;
    }
    Program = Parsed.take();
  }

  MoleReport Report = analyzeProgram(Program);
  std::printf("program %s: %zu function groups, %zu cycles\n\n",
              Report.ProgramName.c_str(), Report.Groups.size(),
              Report.Cycles.size());
  for (const auto &Group : Report.Groups) {
    std::printf("group:");
    for (const auto &Name : Group)
      std::printf(" %s", Name.c_str());
    std::printf("\n");
  }

  std::printf("\n%-14s %-6s %-8s %s\n", "pattern", "axiom", "threads",
              "edges");
  for (const MoleCycle &Cycle : Report.Cycles)
    std::printf("%-14s %-6s %-8u %s\n", Cycle.Pattern.c_str(),
                Cycle.AxiomClass.c_str(), Cycle.Threads,
                Cycle.Edges.c_str());

  std::printf("\nby pattern:\n");
  for (const auto &[Pattern, Count] : Report.patternCounts())
    std::printf("  %-14s %u\n", Pattern.c_str(), Count);
  std::printf("by axiom:\n");
  for (const auto &[Class, Count] : Report.axiomCounts())
    std::printf("  %-4s %u\n", Class.c_str(), Count);
  return 0;
}
