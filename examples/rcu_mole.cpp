//===- rcu_mole.cpp - Mining and verifying the RCU idiom --------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Sec. 9 workflow end to end on the RCU example of Fig. 40:
///
///  1. run mole on the program to discover its weak-memory idioms;
///  2. take the central mp cycle (publish pointer, read pointer then
///     data);
///  3. verify with the Power model that the idiom as written — lwsync on
///     the update side, address dependency on the read side — is safe,
///     and that removing the fence breaks it.
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Parser.h"
#include "model/Registry.h"
#include "mole/Mole.h"

#include <cstdio>

using namespace cats;

int main() {
  // Step 1: mine.
  MoleReport Report = analyzeProgram(rcuProgram());
  std::printf("== mole on RCU (Fig. 40) ==\n\n");
  std::printf("function groups:\n");
  for (const auto &Group : Report.Groups) {
    std::printf(" ");
    for (const auto &Name : Group)
      std::printf(" %s", Name.c_str());
    std::printf("\n");
  }
  std::printf("\npatterns found:\n");
  for (const auto &[Pattern, Count] : Report.patternCounts())
    std::printf("  %-12s x%u\n", Pattern.c_str(), Count);

  // Step 2+3: the mp idiom at RCU's heart, as litmus tests.
  const char *Safe = R"(
Power rcu-publish
P0:
  st foo2, #1
  lwsync
  st gblfoo, #2
P1:
  ld r1, gblfoo
  xor r2, r1, r1
  ld r3, foo2[r2]
exists (1:r1=2 /\ 1:r3=0)
)";
  const char *Broken = R"(
Power rcu-publish-nofence
P0:
  st foo2, #1
  st gblfoo, #2
P1:
  ld r1, gblfoo
  xor r2, r1, r1
  ld r3, foo2[r2]
exists (1:r1=2 /\ 1:r3=0)
)";

  const Model &Power = *modelByName("Power");
  auto SafeTest = parseLitmus(Safe);
  auto BrokenTest = parseLitmus(Broken);
  if (!SafeTest || !BrokenTest) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  std::printf("\nwith lwsync + addr dependency: stale read %s\n",
              allowedBy(*SafeTest, Power) ? "REACHABLE (bug!)"
                                          : "unreachable (safe)");
  std::printf("without the lwsync:             stale read %s\n",
              allowedBy(*BrokenTest, Power) ? "reachable (as expected)"
                                            : "unreachable?");
  return 0;
}
