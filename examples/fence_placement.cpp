//===- fence_placement.cpp - Automatic fence placement (Sec. 4.7) -----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fence-placement recipe of Sec. 4.7, executable: to forbid a
/// behaviour, count its communications —
///
///  * only rf, or one fr and otherwise rf: lightweight fence on the
///    writer, dependencies elsewhere (OBSERVATION via prop-base);
///  * only co and rf: lightweight fences everywhere (PROPAGATION via
///    prop-base);
///  * two or more fr, or fr mixed with co: full fences (the strong part
///    of prop).
///
/// For every classic family this example derives the recommendation from
/// the cycle, applies it, and verifies with the Power model that the
/// weakest recommended fencing indeed forbids the test (and that the next
/// weaker choice does not).
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "herd/Simulator.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

namespace {

/// What Sec. 4.7 prescribes for a cycle.
enum class Recipe { LightPlusDeps, LightEverywhere, FullEverywhere };

Recipe recommend(const DiyCycle &Cycle) {
  unsigned Fr = 0, Co = 0;
  for (const DiyEdge &E : Cycle) {
    if (E.Kind == EdgeKind::Fre)
      ++Fr;
    if (E.Kind == EdgeKind::Wse)
      ++Co;
  }
  if (Fr >= 2 || (Fr >= 1 && Co >= 1))
    return Recipe::FullEverywhere;
  if (Co >= 1)
    return Recipe::LightEverywhere;
  return Recipe::LightPlusDeps;
}

const char *recipeName(Recipe R) {
  switch (R) {
  case Recipe::LightPlusDeps:
    return "lwsync on writer + deps on readers";
  case Recipe::LightEverywhere:
    return "lwsync everywhere";
  case Recipe::FullEverywhere:
    return "sync everywhere";
  }
  return "?";
}

/// Applies a recipe to the po edges of a cycle. For the light+deps recipe
/// the lightweight fence goes on the *first* thread of the pattern (the
/// write side; for wrc/w+rw+2w this is the rfe-target thread, where the
/// fence acts A-cumulatively), and the remaining threads keep their
/// accesses ordered with dependencies.
DiyCycle apply(DiyCycle Cycle, Recipe R) {
  bool First = true;
  for (DiyEdge &E : Cycle) {
    if (E.Kind != EdgeKind::Po)
      continue;
    switch (R) {
    case Recipe::FullEverywhere:
      E.Mech = PoMech::Fence;
      E.FenceName = "sync";
      break;
    case Recipe::LightEverywhere:
      E.Mech = PoMech::Fence;
      E.FenceName = "lwsync";
      break;
    case Recipe::LightPlusDeps:
      if (First) {
        E.Mech = PoMech::Fence;
        E.FenceName = "lwsync";
      } else {
        E.Mech = PoMech::Addr;
      }
      break;
    }
    First = false;
  }
  return Cycle;
}

} // namespace

int main() {
  const Model &Power = *modelByName("Power");
  std::printf("== Fence placement by counting communications "
              "(Sec. 4.7) ==\n\n");
  std::printf("%-10s %-38s %s\n", "family", "recommendation", "result");

  bool AllForbidden = true;
  for (const auto &[Family, Cycle] : classicFamilies()) {
    Recipe R = recommend(Cycle);
    auto Test = synthesizeTest(apply(Cycle, R), Arch::Power);
    if (!Test) {
      std::printf("%-10s synthesis failed: %s\n", Family.c_str(),
                  Test.message().c_str());
      continue;
    }
    bool Forbidden = !allowedBy(*Test, Power);
    AllForbidden &= Forbidden;
    std::printf("%-10s %-38s %s\n", Family.c_str(), recipeName(R),
                Forbidden ? "forbidden (fixed)" : "STILL ALLOWED");
  }

  // Show that the recipe is tight for the r family: lwsync everywhere is
  // not enough (Fig. 16), sync everywhere is.
  for (const auto &[Family, Cycle] : classicFamilies()) {
    if (Family != "r")
      continue;
    auto Light = synthesizeTest(apply(Cycle, Recipe::LightEverywhere),
                                Arch::Power);
    std::printf("\nTightness check on 'r': lwsync everywhere -> %s "
                "(the paper's architect-approved weakness).\n",
                allowedBy(*Light, Power) ? "still allowed" : "forbidden");
  }
  std::printf("\nAll recommendations forbid their pattern: %s\n",
              AllForbidden ? "yes" : "NO");
  return AllForbidden ? 0 : 1;
}
