//===- cat_explorer.cpp - herd in miniature: cat file + litmus file ---------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The herd workflow (Sec. 8.3): the user specifies a model as a cat text
/// file; the tool becomes a simulator for that model.
///
///   cat_explorer [model.cat [test.litmus]]
///
/// Without arguments it runs the bundled Fig. 38 Power model on
/// mp+lwsync+addr and prints every candidate execution with its verdict
/// and the per-check results.
///
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"
#include "herd/Simulator.h"
#include "litmus/Parser.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace cats;
using cats::cat::CatModel;
using cats::cat::CheckResult;

namespace {

const char *DefaultTest = R"(
Power mp+lwsync+addr
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)";

} // namespace

int main(int Argc, char **Argv) {
  auto Model = Argc > 1 ? CatModel::fromFile(Argv[1])
                        : CatModel::builtin("power");
  if (!Model) {
    std::fprintf(stderr, "cat error: %s\n", Model.message().c_str());
    return 1;
  }
  auto Test = Argc > 2 ? parseLitmusFile(Argv[2])
                       : parseLitmus(DefaultTest);
  if (!Test) {
    std::fprintf(stderr, "litmus error: %s\n", Test.message().c_str());
    return 1;
  }

  std::printf("model: %s\ntest: %s\n\n", Model->name().c_str(),
              Test->Name.c_str());

  auto Compiled = CompiledTest::compile(*Test);
  if (!Compiled) {
    std::fprintf(stderr, "compile error: %s\n", Compiled.message().c_str());
    return 1;
  }

  unsigned Index = 0;
  bool Reachable = false;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    std::vector<CheckResult> Checks = Model->check(Cand.Exe);
    bool Allowed = true;
    for (const CheckResult &C : Checks)
      Allowed &= C.Holds;
    std::printf("candidate %u: %s", Index++,
                Allowed ? "allowed" : "forbidden by");
    if (!Allowed)
      for (const CheckResult &C : Checks)
        if (!C.Holds)
          std::printf(" [%s]", C.Name.c_str());
    std::printf("\n");
    if (Allowed && Cand.Out.satisfies(Test->Final)) {
      Reachable = true;
      std::printf("  ^ satisfies the final condition:\n");
      for (const auto &Line :
           splitString(Cand.Exe.toString(), '\n'))
        if (!Line.empty())
          std::printf("    %s\n", Line.c_str());
    }
    return true;
  });

  std::printf("\nfinal condition %s: %s\n",
              Test->Final.toString().c_str(),
              Reachable ? "Allow" : "Forbid");
  return 0;
}
