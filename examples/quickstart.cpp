//===- quickstart.cpp - First steps with the cats library -------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: write a litmus test, simulate it under several models, and
/// inspect the outcomes — the message-passing example of Fig. 1/4.
///
/// Build and run:
///   cmake -B build -G Ninja && cmake --build build
///   ./build/examples/quickstart
///
//===----------------------------------------------------------------------===//

#include "herd/Simulator.h"
#include "litmus/Parser.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

int main() {
  // The message-passing idiom: T0 publishes data (x) then a flag (y);
  // T1 reads the flag then the data. The "bad" outcome is seeing the
  // flag but stale data: r1=1 && r2=0.
  const char *Source = R"(
Power mp
{ x=0; y=0 }
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)";

  auto Test = parseLitmus(Source);
  if (!Test) {
    std::fprintf(stderr, "parse error: %s\n", Test.message().c_str());
    return 1;
  }

  std::printf("Test:\n%s\n", Test->toString().c_str());

  // Ask every built-in model whether the bad outcome is reachable.
  for (const char *ModelName : {"SC", "TSO", "Power", "ARM", "C++RA"}) {
    const Model *M = modelByName(ModelName);
    SimulationResult R = simulate(*Test, *M);
    std::printf("%-6s: %s  (%llu/%llu candidate executions allowed, "
                "%zu distinct outcomes)\n",
                ModelName, R.verdict(),
                static_cast<unsigned long long>(R.CandidatesAllowed),
                static_cast<unsigned long long>(R.CandidatesConsistent),
                R.AllowedOutcomes.size());
  }

  // On Power the fix is a lightweight fence plus an address dependency
  // (Fig. 8); show that it indeed forbids the behaviour.
  const char *Fixed = R"(
Power mp+lwsync+addr
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)";
  auto FixedTest = parseLitmus(Fixed);
  if (!FixedTest) {
    std::fprintf(stderr, "parse error: %s\n", FixedTest.message().c_str());
    return 1;
  }
  SimulationResult R = simulate(*FixedTest, *modelByName("Power"));
  std::printf("\nAfter adding lwsync + addr (Fig. 8): Power says %s.\n",
              R.verdict());
  return 0;
}
