//===- diy_gen.cpp - The diy generator as a command-line tool ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a litmus battery to disk, one .litmus file per test — the diy
/// workflow of Sec. 8.1.
///
///   diy_gen [arch] [output-dir] [max-per-family]
///
/// Defaults: Power, ./litmus-out, unlimited.
///
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"
#include "litmus/Parser.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace cats;

int main(int Argc, char **Argv) {
  Arch Target = Arch::Power;
  if (Argc > 1 && !parseArch(Argv[1], Target)) {
    std::fprintf(stderr, "unknown architecture '%s'\n", Argv[1]);
    return 1;
  }
  std::string OutDir = Argc > 2 ? Argv[2] : "litmus-out";
  unsigned MaxPerFamily =
      Argc > 3 ? static_cast<unsigned>(std::stoul(Argv[3])) : 0;

  std::error_code Ec;
  std::filesystem::create_directories(OutDir, Ec);
  if (Ec) {
    std::fprintf(stderr, "cannot create %s: %s\n", OutDir.c_str(),
                 Ec.message().c_str());
    return 1;
  }

  unsigned Written = 0;
  for (const LitmusTest &Test : generateBattery(Target, MaxPerFamily)) {
    // File names: replace the characters that annoy shells.
    std::string FileName = Test.Name;
    for (char &C : FileName)
      if (C == '+' || C == '/' || C == '.')
        C = '_';
    std::ofstream Out(OutDir + "/" + FileName + ".litmus");
    Out << Test.toString();
    // Round-trip check: everything we write must parse back.
    auto Again = parseLitmus(Test.toString());
    if (!Again) {
      std::fprintf(stderr, "%s does not round-trip: %s\n",
                   Test.Name.c_str(), Again.message().c_str());
      return 1;
    }
    ++Written;
  }
  std::printf("wrote %u %s tests to %s/\n", Written,
              archName(Target).c_str(), OutDir.c_str());
  return 0;
}
