//===- litmus_run.cpp - Run a litmus test on the simulated fleet ------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The litmus workflow of Sec. 8.1: run one test on every chip of the
/// architecture's simulated fleet, print the observation histogram, and
/// compare with the model's verdict — the raw ingredient of Table V.
///
///   litmus_run [test.litmus [samples]]
///
/// Without arguments it runs the coRR hazard test on the ARM fleet,
/// showing the acknowledged Cortex-A9 bug.
///
//===----------------------------------------------------------------------===//

#include "hardware/Hardware.h"
#include "herd/Simulator.h"
#include "litmus/Parser.h"
#include "model/Registry.h"

#include <cstdio>

using namespace cats;

namespace {

const char *DefaultTest = R"(
ARM coRR
P0:
  ld r1, x
  ld r2, x
P1:
  st x, #1
exists (0:r1=1 /\ 0:r2=0)
)";

} // namespace

int main(int Argc, char **Argv) {
  auto Test =
      Argc > 1 ? parseLitmusFile(Argv[1]) : parseLitmus(DefaultTest);
  if (!Test) {
    std::fprintf(stderr, "litmus error: %s\n", Test.message().c_str());
    return 1;
  }
  uint64_t Samples = Argc > 2 ? std::stoull(Argv[2]) : 20000;

  const Model &M = modelFor(Test->TargetArch);
  SimulationResult Sim = simulate(*Test, M);
  std::printf("%s", herdStyleReport(Sim, Test->Final).c_str());

  std::vector<HardwareProfile> Fleet =
      Test->TargetArch == Arch::Power ? HardwareProfile::powerFleet()
                                      : HardwareProfile::armFleet();
  std::printf("\nHardware (%llu samples per chip):\n",
              static_cast<unsigned long long>(Samples));
  bool AnyObserved = false;
  for (const HardwareProfile &Chip : Fleet) {
    HardwareRun Run = runOnHardware(*Test, Chip, Samples);
    uint64_t Hits = 0;
    for (const auto &[Out, Count] : Run.Observed)
      if (Out.satisfies(Test->Final))
        Hits += Count;
    std::printf("  %-12s %s (%llu/%llu)\n", Chip.ChipName.c_str(),
                Run.ConditionObserved ? "Ok " : "No ",
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Run.Samples));
    AnyObserved |= Run.ConditionObserved;
  }

  if (AnyObserved && !Sim.ConditionReachable)
    std::printf("\nINVALID: observed on hardware but forbidden by %s — "
                "a chip anomaly or a model bug.\n",
                M.name().c_str());
  else if (!AnyObserved && Sim.ConditionReachable)
    std::printf("\nUNSEEN: allowed by %s but not exhibited by this "
                "fleet.\n",
                M.name().c_str());
  else
    std::printf("\nModel and fleet agree.\n");
  return 0;
}
