//===- cats_merge.cpp - Fold shard reports into one -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reduce step of a sharded campaign (docs/campaigns.md): read N
/// per-shard JSON reports and emit one merged document of the same
/// schema. Sweep reports (cats-sweep-report/1) interleave back into
/// single-process source order via their "shard" stanzas; mine reports
/// (cats-mine-report/1) sum their per-family aggregates. With --zero-wall
/// the wall-clock fields are normalized to 0, which makes a merged report
/// byte-comparable against a single-process reference run — the form CI's
/// campaign job asserts with a plain cmp.
///
///   cats_merge shard-1.json shard-2.json ... -o merged.json
///   cats_merge report.json --zero-wall -o normalized.json
///
//===----------------------------------------------------------------------===//

#include "CampaignCli.h"
#include "CliCommon.h"
#include "campaign/Merge.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"-o FILE", "write the merged report to FILE (default: stdout)"},
      {"--zero-wall", "zero every wall_seconds field, so two runs of\n"
                      "the same campaign compare byte-identically"},
      {"--quiet", "do not print the summary line"}};
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options] <report.json>...",
      "Folds shard reports into one document of the same schema.\n"
      "Sweep reports carrying \"shard\" stanzas must form a complete\n"
      "1..N set and interleave back into single-process source order;\n"
      "reports without stanzas concatenate in argument order. Mine\n"
      "reports merge by summing per-family aggregates (their merged\n"
      "test_names are sorted; static sections are refused). Input\n"
      "\"metrics\" sections fold too: counters sum, histograms merge.\n"
      "\n"
      "A single input passes through, which with --zero-wall makes this\n"
      "tool the normalizer for byte-comparing reports.",
      Flags);
}

} // namespace

int main(int argc, char **argv) {
  std::string OutPath;
  bool ZeroWall = false, Quiet = false;
  std::vector<std::string> Paths;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_merge", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int TookObs = cli::parseObsFlag(Args, "cats_merge", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("-o") || Args.is("--output")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      OutPath = V;
    } else if (Args.is("--zero-wall")) {
      ZeroWall = true;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "cats_merge: no input reports\n");
    return usage(argv[0]);
  }

  cli::applyObsFlags(Obs);
  obs::ProgressReporter Progress("cats_merge", Paths.size(), Obs.Progress);

  std::vector<JsonValue> Inputs;
  for (const std::string &Path : Paths) {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "cats_merge: cannot read %s\n", Path.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    auto Doc = JsonValue::parse(Buf.str());
    if (!Doc) {
      std::fprintf(stderr, "cats_merge: %s: %s\n", Path.c_str(),
                   Doc.message().c_str());
      return 2;
    }
    Inputs.push_back(Doc.take());
    obs::tick("merge.reports");
    Progress.update(Inputs.size());
  }
  Progress.finish();

  auto Merged = mergeReports(Inputs);
  if (!Merged) {
    std::fprintf(stderr, "cats_merge: %s\n", Merged.message().c_str());
    return 1;
  }
  JsonValue Out = ZeroWall ? zeroWallTimes(*Merged) : Merged.take();

  const std::string Text = Out.dump();
  if (OutPath.empty()) {
    std::printf("%s\n", Text.c_str());
  } else {
    std::ofstream OutFile(OutPath);
    if (!OutFile) {
      std::fprintf(stderr, "cats_merge: cannot write %s\n", OutPath.c_str());
      return 1;
    }
    OutFile << Text;
    if (!Quiet)
      std::fprintf(stderr, "cats_merge: merged %zu report(s) into %s\n",
                   Paths.size(), OutPath.c_str());
  }
  // Note: the merged document's "metrics" section is the fold of the
  // inputs' sections (src/campaign/Merge.cpp), never this process's own
  // registry — finishObs only writes the --trace/--metrics artifacts.
  return cli::finishObs("cats_merge", Obs, Quiet);
}
