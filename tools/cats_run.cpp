//===- cats_run.cpp - Native litmus runner CLI ----------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-testing CLI over src/run (docs/running.md): execute
/// litmus tests as real concurrent code — relaxed std::atomic accesses,
/// genuine host fences and dependency chains, a litmus7-style batched
/// harness — and cross-check every observed outcome against a reference
/// model. A nonzero exit means a load failure or a soundness violation
/// (an outcome the model forbids was observed), which is what the CI
/// smoke job gates on.
///
///   cats_run litmus/                      # whole corpus, host model
///   cats_run --filter 'sb|mp|lb' --iterations 200000 litmus/
///   cats_run --catalogue --model TSO --seed 7 --json report.json
///
//===----------------------------------------------------------------------===//

#include "CliCommon.h"
#include "cat/CatAdapter.h"
#include "litmus/Compiler.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "obs/FlightRecorder.h"
#include "obs/Witness.h"
#include "run/RunEngine.h"
#include "run/Verdict.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--iterations N", "executions sampled per test (default: 100000)"},
      {"--jobs N", "cores used for pinning (default: hardware)"},
      {"--seed N", "schedule seed (default: 42); fixed seed =>\n"
                   "identical schedules and histogram bucket order"},
      {"--batch N", "preallocated test instances per round (512)"},
      {"--schedule S", "shuffle | stride | seq (default: shuffle)"},
      {"--no-pin", "do not pin worker threads by affinity"},
      {"--model NAME", "reference model (default: the host's — TSO on\n"
                       "x86, ARM on aarch64, else Power)"},
      {"--cat FILE.cat", "use a .cat file as the reference model instead\n"
                         "of a registry name"},
      {"--filter REGEX", "keep only tests whose name matches"},
      {"--catalogue", "add the built-in figure catalogue to the inputs"},
      {"--histogram", "print each test's outcome histogram"},
      {"--json FILE", "write the cats-run-report/1 JSON report"},
      {"--witness", "arm the flight recorder: a soundness violation dumps\n"
                    "the test, a summary, and witness graphs per offending\n"
                    "outcome into $CATS_FLIGHT_DIR (default:\n"
                    "cats-flight-records/); see docs/explain.md"},
      {"--witness-dir DIR", "arm the flight recorder rooted at DIR"},
      {"--quiet", "suppress the summary table"}};
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options] [<file.litmus>|<dir>]...",
      "Executes litmus tests as native concurrent code (relaxed atomics,\n"
      "real host fences, preserved dependency chains) and checks that\n"
      "every outcome observed on this machine is allowed by a reference\n"
      "model. Exit status 1 reports a soundness violation.\n"
      "\n"
      "Inputs: .litmus files, directories (scanned for *.litmus), and/or\n"
      "the built-in figure catalogue. With no input, the catalogue runs.",
      Flags);
}

} // namespace

int main(int argc, char **argv) {
  RunOptions Opts;
  bool UseCatalogue = false, Histogram = false, Quiet = false;
  bool Witness = false;
  std::string Filter, JsonPath, ModelName, CatFile, WitnessDir;
  std::vector<std::string> Paths;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_run", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int TookObs = cli::parseObsFlag(Args, "cats_run", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--iterations")) {
      if (!Args.unsignedValue(Opts.Iterations))
        return 2;
    } else if (Args.is("--jobs")) {
      if (!Args.unsignedValue(Opts.Jobs))
        return 2;
    } else if (Args.is("--seed")) {
      unsigned long long Seed = 0;
      if (!Args.unsignedValue(Seed, /*AllowZero=*/true))
        return 2;
      Opts.Seed = Seed;
    } else if (Args.is("--batch")) {
      if (!Args.unsignedValue(Opts.BatchSize))
        return 2;
    } else if (Args.is("--schedule")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      if (!parseScheduleKind(V, Opts.Schedule)) {
        std::fprintf(stderr,
                     "cats_run: unknown schedule '%s' (shuffle, stride, "
                     "seq)\n",
                     V);
        return 2;
      }
    } else if (Args.is("--no-pin")) {
      Opts.Pin = false;
    } else if (Args.is("--model")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      ModelName = V;
    } else if (Args.is("--cat")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      CatFile = V;
    } else if (Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--catalogue") || Args.is("--catalog")) {
      UseCatalogue = true;
    } else if (Args.is("--histogram")) {
      Histogram = true;
    } else if (Args.is("--witness")) {
      Witness = true;
    } else if (Args.is("--witness-dir")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Witness = true;
      WitnessDir = V;
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }

  // Resolve the reference model: a .cat file wins over a registry name,
  // and the adapter must outlive the run.
  const Model *Reference = nullptr;
  std::unique_ptr<CatAdapterModel> CatReference;
  if (!CatFile.empty()) {
    if (!ModelName.empty()) {
      std::fprintf(stderr, "cats_run: --model and --cat are exclusive\n");
      return 2;
    }
    auto Adapted = CatAdapterModel::fromFile(CatFile);
    if (!Adapted) {
      std::fprintf(stderr, "cats_run: %s\n", Adapted.message().c_str());
      return 2;
    }
    CatReference = std::make_unique<CatAdapterModel>(Adapted.take());
    Reference = CatReference.get();
  } else if (ModelName.empty()) {
    Reference = &hostReferenceModel();
  } else {
    Reference = modelByName(ModelName);
    if (!Reference) {
      std::fprintf(stderr, "cats_run: unknown model '%s'\n",
                   ModelName.c_str());
      return 2;
    }
  }

  // Gather the tests.
  if (Paths.empty() && !UseCatalogue)
    UseCatalogue = true;
  auto Loaded = loadCampaignTests(Paths, UseCatalogue, Filter);
  if (!Loaded) {
    std::fprintf(stderr, "cats_run: %s\n", Loaded.message().c_str());
    return 2;
  }
  for (const std::string &Problem : Loaded->Errors)
    std::fprintf(stderr, "cats_run: %s\n", Problem.c_str());
  const bool LoadFailed = !Loaded->Errors.empty();
  std::vector<LitmusTest> Tests = std::move(Loaded->Tests);
  if (Tests.empty()) {
    std::fprintf(stderr, "cats_run: no tests to run\n");
    return 2;
  }

  // Run.
  cli::applyObsFlags(Obs);
  obs::ProgressReporter Progress("cats_run", Tests.size(), Obs.Progress);
  Opts.OnTest = [&Progress](size_t Done, size_t) { Progress.update(Done); };
  RunEngine Engine(Opts);
  RunReport Report = Engine.run(Tests, *Reference);
  Progress.finish();

  if (!Quiet) {
    std::printf("%-34s %10s %8s %-7s %-9s %8s %8s\n", "test", "iters",
                "distinct", Reference->name().c_str(), "observed",
                "relaxed", "unsound");
    for (const RunTestResult &T : Report.Tests) {
      if (!T.Error.empty()) {
        std::printf("%-34s  ERROR: %s\n", T.TestName.c_str(),
                    T.Error.c_str());
        continue;
      }
      std::printf("%-34s %10llu %8zu %-7s %-9s %8llu %8llu\n",
                  T.TestName.c_str(), T.Iterations, T.Histogram.size(),
                  T.ConditionAllowedByModel ? "Allow" : "Forbid",
                  T.ConditionObserved ? "yes" : "no", T.OutsideSc,
                  T.OutsideModel + T.OutsideEnumeration);
    }
    std::printf("\n%zu test(s) x %llu iteration(s), host %s, model %s, "
                "%u core(s), seed %llu, %s schedule, %.3fs\n",
                Report.Tests.size(), Report.Iterations,
                Report.Host.c_str(), Report.ModelName.c_str(), Report.Jobs,
                static_cast<unsigned long long>(Report.Seed),
                scheduleName(Report.Schedule), Report.WallSeconds);
    std::printf("soundness: %s\n",
                Report.allSound()
                    ? "every observed outcome is model-allowed"
                    : "VIOLATION — outcomes outside the model observed");
  }

  if (Histogram) {
    for (const RunTestResult &T : Report.Tests) {
      if (!T.Error.empty())
        continue;
      std::printf("\n%s (%zu distinct outcome(s)):\n", T.TestName.c_str(),
                  T.Histogram.size());
      for (const RunBucket &B : T.Histogram)
        std::printf("  %10llu  %s%s%s%s\n", B.Count, B.Key.c_str(),
                    B.MatchesFinal ? "  <- exists-clause" : "",
                    !B.AllowedBySc && B.AllowedByModel ? "  (relaxed)" : "",
                    !B.AllowedByModel ? "  (FORBIDDEN by model)" : "");
    }
  }

  // Flight recorder: a soundness violation freezes its evidence on disk —
  // the litmus source, a summary of the offending buckets, and a kill
  // witness (model axiom + cycle) per forbidden-but-observed outcome the
  // enumeration can reproduce. Armed but silent runs leave no trace.
  if (Witness && !Report.allSound()) {
    obs::FlightRecorder Recorder(
        WitnessDir.empty() ? obs::FlightRecorder::defaultDir() : WitnessDir);
    for (const RunTestResult &T : Report.Tests) {
      if (T.sound())
        continue;
      const LitmusTest *Test = nullptr;
      for (const LitmusTest &Candidate : Tests)
        if (Candidate.Name == T.TestName) {
          Test = &Candidate;
          break;
        }
      std::string Summary =
          "soundness violation: test " + T.TestName + " under model " +
          Reference->name() + "\n" + std::to_string(T.OutsideModel) +
          " model-forbidden iteration(s), " +
          std::to_string(T.OutsideEnumeration) +
          " outside the candidate enumeration\noffending outcomes:\n";
      std::vector<obs::Witness> Witnesses;
      for (const RunBucket &B : T.Histogram) {
        if (B.AllowedByModel && B.Consistent)
          continue;
        Summary += "  " + B.Key + " x" + std::to_string(B.Count) +
                   (B.Consistent ? " (forbidden by model)"
                                 : " (outside the enumeration)") +
                   "\n";
        if (!B.Consistent || !Test)
          continue;
        // Re-derive the evidence: the first consistent execution with
        // this outcome, judged by the reference model.
        auto Compiled = CompiledTest::compile(*Test);
        if (!Compiled)
          continue;
        forEachCandidate(*Compiled, [&](const Candidate &Cand) {
          if (!Cand.Consistent || Cand.Out.key() != B.Key)
            return true;
          Cand.Exe.enableDerivedCache();
          const Verdict V = Reference->check(Cand.Exe);
          if (!V.Allowed && !V.Violated.empty())
            Witnesses.push_back(obs::makeKillWitness(
                T.TestName, *Reference, V.Violated.front(), Cand.Exe,
                Cand.Out));
          return false;
        });
      }
      auto Saved = Recorder.record("unsound-" + T.TestName,
                                   Test ? Test->toString() : std::string(),
                                   Summary, Witnesses);
      if (!Saved)
        std::fprintf(stderr, "cats_run: %s\n", Saved.message().c_str());
      else if (!Quiet)
        std::printf("flight recorder: dumped %s\n", Saved->c_str());
    }
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_run: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    JsonValue Root = runReportToJson(Report);
    cli::attachMetrics(Root, Obs);
    Out << Root.dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  const int ObsFailed = cli::finishObs("cats_run", Obs, Quiet);
  return (LoadFailed || !Report.allSound() || ObsFailed) ? 1 : 0;
}
