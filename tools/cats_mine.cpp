//===- cats_mine.cpp - Data-mining CLI over corpora and programs ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mining CLI fronting src/mole: sweep a litmus corpus — on-disk
/// files, the figure catalogue, and/or a diy-enumerated slice — under a
/// model set and aggregate the observed-vs-forbidden verdicts per cycle
/// family; optionally mine static critical cycles out of .mole programs
/// and cross-reference the two. Emits the cats-mine-report/1 JSON schema
/// (docs/mining.md).
///
///   cats_mine litmus/                        # mine the on-disk corpus
///   cats_mine --diy power --size 4 --limit 200 --mole rcu
///   cats_mine --catalogue --models SC,Power --json mine.json
///   cats_mine litmus/ --run --models TSO     # + observed-on-hardware
///
//===----------------------------------------------------------------------===//

#include "CampaignCli.h"
#include "CliCommon.h"
#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "mole/Mine.h"
#include "mole/MoleParser.h"
#include "run/RunEngine.h"
#include "run/Verdict.h"
#include "sweep/SweepEngine.h"

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--models A,B,C", "comma-separated model names (default: all)"},
      {"--jobs N", "sweep worker threads (default: hardware)"},
      {"--batch N", "streaming batch size (default: 64)"},
      {"--filter REGEX", "keep tests whose name matches"},
      {"--catalogue", "add the built-in figure catalogue"},
      {"--diy ARCH", "add a diy-enumerated slice for ARCH"},
      {"--size N", "max cycle size for --diy (default: 4)"},
      {"--limit N", "cap the --diy slice (default: 500)"},
      {"--internal", "include rfi/fri/wsi edges in --diy"},
      {"--mole X", "static-mine X: a .mole file or one of\n"
                   "rcu | postgres | apache (repeatable)"},
      {"--run", "also execute the corpus natively (src/run) and\n"
                "add the observed-on-hardware column; exits 1 on\n"
                "a soundness violation"},
      {"--iterations N", "native executions per test for --run (100000)"},
      {"--seed N", "native-run schedule seed (default: 42)"},
      {"--run-model M", "reference model for --run (default: the host's\n"
                        "— TSO on x86)"},
      {"--json FILE", "write the cats-mine-report/1 JSON report"},
      {"--quiet", "suppress the family table"}};
  for (const cli::FlagDoc &F :
       cli::campaignFlagDocs(/*WithCheckpoint=*/false))
    Flags.push_back(F);
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options] [<file.litmus>|<dir>]...",
      "Mines observed-vs-forbidden outcome patterns: sweeps a corpus\n"
      "under a model set, folds test names to their cycle family, and\n"
      "aggregates the per-model verdicts. Static critical cycles mined\n"
      "from .mole programs are cross-referenced against the corpus.\n"
      "\n"
      "corpus inputs: .litmus files, directories, --catalogue, and/or a\n"
      "--diy enumerated slice. With no corpus input and no --mole, the\n"
      "catalogue is mined.\n"
      "\n"
      "--shard partitions each corpus source; shard reports (without\n"
      "static analyses) merge with cats_merge. See docs/campaigns.md.",
      Flags);
}


} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 0, Batch = 64;
  bool UseCatalogue = false, Quiet = false, RunNative = false;
  std::string Filter, JsonPath, DiyArch, RunModelName;
  EnumerateOptions DiyOpts;
  DiyOpts.MaxEdges = 4;
  DiyOpts.Limit = 500;
  RunOptions RunOpts;
  std::vector<std::string> ModelNames, Paths, MolePrograms;
  cli::CampaignFlags Campaign;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_mine", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int Took = cli::parseCampaignFlag(Args, "cats_mine",
                                          /*WithCheckpoint=*/false,
                                          Campaign)) {
      if (Took < 0)
        return 2;
    } else if (int TookObs = cli::parseObsFlag(Args, "cats_mine", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--models")) {
      if (!Args.commaList(ModelNames))
        return 2;
    } else if (Args.is("--jobs")) {
      if (!Args.unsignedValue(Jobs))
        return 2;
    } else if (Args.is("--batch")) {
      if (!Args.unsignedValue(Batch))
        return 2;
    } else if (Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--catalogue") || Args.is("--catalog")) {
      UseCatalogue = true;
    } else if (Args.is("--diy")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      DiyArch = V;
    } else if (Args.is("--size")) {
      if (!Args.unsignedValue(DiyOpts.MaxEdges))
        return 2;
    } else if (Args.is("--limit")) {
      unsigned long long Limit = 0; // 0 = unlimited.
      if (!Args.unsignedValue(Limit, /*AllowZero=*/true))
        return 2;
      DiyOpts.Limit = Limit;
    } else if (Args.is("--internal")) {
      DiyOpts.InternalCom = true;
    } else if (Args.is("--mole")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      MolePrograms.push_back(V);
    } else if (Args.is("--run")) {
      RunNative = true;
    } else if (Args.is("--iterations")) {
      if (!Args.unsignedValue(RunOpts.Iterations))
        return 2;
    } else if (Args.is("--seed")) {
      unsigned long long Seed = 0;
      if (!Args.unsignedValue(Seed, /*AllowZero=*/true))
        return 2;
      RunOpts.Seed = Seed;
    } else if (Args.is("--run-model")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      RunModelName = V;
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }

  // Resolve the --run reference model up front.
  const Model *RunModel = nullptr;
  if (RunNative) {
    RunModel = RunModelName.empty() ? &hostReferenceModel()
                                    : modelByName(RunModelName);
    if (!RunModel) {
      std::fprintf(stderr, "cats_mine: unknown model '%s'\n",
                   RunModelName.c_str());
      return 2;
    }
  }

  // Resolve the model set.
  auto Resolved = resolveModels(ModelNames);
  if (!Resolved) {
    std::fprintf(stderr, "cats_mine: %s\n", Resolved.message().c_str());
    return 2;
  }
  std::vector<const Model *> Models = Resolved.take();

  // Resolve the --mole programs up front: a typo must fail before the
  // (potentially long) corpus sweep, not after it.
  std::vector<MoleProgram> Programs;
  for (const std::string &Name : MolePrograms) {
    if (Name == "rcu") {
      Programs.push_back(rcuProgram());
    } else if (Name == "postgres") {
      Programs.push_back(postgresProgram());
    } else if (Name == "apache") {
      Programs.push_back(apacheProgram());
    } else {
      auto Parsed = parseMoleFile(Name);
      if (!Parsed) {
        std::fprintf(stderr, "cats_mine: %s\n", Parsed.message().c_str());
        return 2;
      }
      Programs.push_back(Parsed.take());
    }
  }

  const bool HasCorpus =
      !Paths.empty() || UseCatalogue || !DiyArch.empty();
  if (!HasCorpus && MolePrograms.empty())
    UseCatalogue = true;

  // Sweep the corpus: files/catalogue first, then the diy slice, both
  // streamed in batches. With --run, the streamed tests are teed into a
  // corpus for the native execution pass (the only place the whole
  // corpus materializes, which --run implies anyway).
  cli::applyObsFlags(Obs);
  obs::ProgressReporter Progress("cats_mine", 0, Obs.Progress);

  SweepEngine Engine(SweepOptions{Jobs});
  SweepReport Report;
  std::vector<std::string> LoadErrors;
  std::vector<LitmusTest> RunCorpus;
  std::optional<ResultCache> Cache;
  if (!Campaign.CacheDir.empty()) {
    auto Opened = ResultCache::open(Campaign.CacheDir);
    if (!Opened) {
      std::fprintf(stderr, "cats_mine: %s\n", Opened.message().c_str());
      return 2;
    }
    Cache.emplace(Opened.take());
  }
  auto SweepInto = [&](const TestSource &Source) {
    // Shard first, then tee: a shard natively runs (and mines) only the
    // tests it owns, and the shards' unions cover each source exactly.
    TestSource Sharded = shardTestSource(Source, Campaign.Shard);
    TestSource Teed = Sharded;
    if (RunNative)
      Teed = [&RunCorpus, Sharded](LitmusTest &Out) -> bool {
        if (!Sharded(Out))
          return false;
        RunCorpus.push_back(Out);
        return true;
      };
    StreamHooks Hooks = Cache ? Cache->hooks(Models) : StreamHooks{};
    if (Progress.enabled())
      // Cumulative over the earlier sources: the accumulated Report holds
      // everything swept before this one.
      Hooks.OnBatch = [&Progress, &Report](const SweepReport &SoFar,
                                           unsigned long long Consumed) {
        Progress.update(Report.Tests.size() + Consumed,
                        Report.CacheHits + SoFar.CacheHits,
                        Report.CacheMisses + SoFar.CacheMisses);
      };
    SweepReport Part = Engine.runStreamed(Teed, Models, Batch, Hooks);
    for (SweepTestResult &T : Part.Tests)
      Report.Tests.push_back(std::move(T));
    Report.Jobs = std::max(Report.Jobs, Part.Jobs);
    Report.WallSeconds += Part.WallSeconds;
    Report.CacheUsed = Report.CacheUsed || Part.CacheUsed;
    Report.CacheHits += Part.CacheHits;
    Report.CacheMisses += Part.CacheMisses;
  };
  if (!Paths.empty() || UseCatalogue) {
    auto Source =
        streamCampaignTests(Paths, UseCatalogue, Filter, &LoadErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_mine: %s\n", Source.message().c_str());
      return 2;
    }
    SweepInto(*Source);
  }
  if (!DiyArch.empty()) {
    if (!parseArch(DiyArch, DiyOpts.Target)) {
      std::fprintf(stderr, "cats_mine: unknown architecture '%s'\n",
                   DiyArch.c_str());
      return 2;
    }
    auto Source = makeDiyTestSource(DiyOpts, Filter, &LoadErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_mine: %s\n", Source.message().c_str());
      return 2;
    }
    SweepInto(*Source);
  }
  Progress.finish();
  for (const std::string &Problem : LoadErrors)
    std::fprintf(stderr, "cats_mine: %s\n", Problem.c_str());

  // Fold the sweep into per-family statistics.
  MineReport Mined = mineSweepReport(Report);

  // Static mole analyses (programs were resolved before the sweep).
  for (const MoleProgram &Program : Programs)
    Mined.StaticReports.push_back(analyzeProgram(Program));

  // The native execution pass: run the teed corpus on this machine and
  // attach the observed-on-hardware column next to the model verdicts.
  // The sweep above already enumerated every test's candidate space, so
  // when it covered the run model and SC the judge reuses its results
  // instead of enumerating a second time.
  bool RunUnsound = false;
  if (RunNative) {
    std::map<std::string, const MultiSimulationResult *> Swept;
    for (const SweepTestResult &T : Report.Tests)
      if (T.Error.empty())
        Swept.emplace(T.TestName, &T.Result);
    obs::ProgressReporter RunProgress("cats_mine run", RunCorpus.size(),
                                      Obs.Progress);
    RunOpts.OnTest = [&RunProgress](size_t Done, size_t) {
      RunProgress.update(Done);
    };
    RunEngine NativeEngine(RunOpts);
    RunReport Run = NativeEngine.run(
        RunCorpus, *RunModel,
        [&Swept](const std::string &Name) -> const MultiSimulationResult * {
          auto It = Swept.find(Name);
          return It == Swept.end() ? nullptr : It->second;
        });
    RunProgress.finish();
    attachEmpirical(Mined, Run);
    for (const RunTestResult &T : Run.Tests) {
      if (!T.Error.empty())
        std::fprintf(stderr, "cats_mine: native run: %s: %s\n",
                     T.TestName.c_str(), T.Error.c_str());
      else if (!T.sound())
        std::fprintf(stderr,
                     "cats_mine: SOUNDNESS: %s observed %llu outcome(s) "
                     "outside %s\n",
                     T.TestName.c_str(),
                     T.OutsideModel + T.OutsideEnumeration,
                     Run.ModelName.c_str());
      if (!T.sound())
        RunUnsound = true;
    }
  }

  // The family table.
  if (!Quiet) {
    if (!Mined.Families.empty()) {
      std::printf("%-16s %6s", "family", "tests");
      for (const std::string &Model : Mined.Models)
        std::printf(" %16s", Model.c_str());
      if (Mined.HasEmpirical)
        std::printf(" %16s", "observed(hw)");
      std::printf("\n");
      for (const FamilyVerdicts &F : Mined.Families) {
        std::printf("%-16s %6u", F.Family.c_str(), F.Tests);
        for (const FamilyModelStats &S : F.PerModel)
          std::printf(" %8u/%-7u", S.Allowed, S.Forbidden);
        if (Mined.HasEmpirical) {
          if (F.HasEmpirical)
            std::printf(" %8u/%-7u", F.Empirical.Observed,
                        F.Empirical.Tests);
          else
            std::printf(" %16s", "-");
        }
        std::printf("\n");
      }
      std::printf("(columns are allowed/forbidden test counts");
      if (Mined.HasEmpirical)
        std::printf("; observed(hw) is exists-clause-seen/run on %s vs %s",
                    Mined.EmpiricalHost.c_str(),
                    Mined.EmpiricalModel.c_str());
      std::printf(")\n");
    }
    for (const MoleReport &Static : Mined.StaticReports) {
      std::printf("\nstatic %s: %zu group(s), %zu cycle(s)\n",
                  Static.ProgramName.c_str(), Static.Groups.size(),
                  Static.Cycles.size());
      for (const auto &[Pattern, Count] : Static.patternCounts()) {
        std::printf("  %-14s %3u", Pattern.c_str(), Count);
        if (const FamilyVerdicts *F = Mined.family(Pattern)) {
          std::printf("  corpus:");
          for (const FamilyModelStats &S : F->PerModel)
            if (S.Allowed > 0)
              std::printf(" %s", S.Model.c_str());
          std::printf(" observe it");
        }
        std::printf("\n");
      }
    }
    std::printf("\n%u corpus test(s), %zu model(s), %zu famil(ies), "
                "%zu static program(s)\n",
                Mined.CorpusTests, Mined.Models.size(),
                Mined.Families.size(), Mined.StaticReports.size());
    if (Report.CacheUsed)
      std::printf("cache: %llu hit(s), %llu miss(es)\n", Report.CacheHits,
                  Report.CacheMisses);
  }

  // JSON report.
  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_mine: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    JsonValue Root = mineReportToJson(Mined);
    cli::attachMetrics(Root, Obs);
    Out << Root.dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  const int ObsFailed = cli::finishObs("cats_mine", Obs, Quiet);
  return (!LoadErrors.empty() || Mined.CorpusErrors || RunUnsound ||
          ObsFailed)
             ? 1
             : 0;
}
