//===- cats_mine.cpp - Data-mining CLI over corpora and programs ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mining CLI fronting src/mole: sweep a litmus corpus — on-disk
/// files, the figure catalogue, and/or a diy-enumerated slice — under a
/// model set and aggregate the observed-vs-forbidden verdicts per cycle
/// family; optionally mine static critical cycles out of .mole programs
/// and cross-reference the two. Emits the cats-mine-report/1 JSON schema
/// (docs/mining.md).
///
///   cats_mine litmus/                        # mine the on-disk corpus
///   cats_mine --diy power --size 4 --limit 200 --mole rcu
///   cats_mine --catalogue --models SC,Power --json mine.json
///
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "mole/Mine.h"
#include "mole/MoleParser.h"
#include "support/StringUtils.h"
#include "sweep/SweepEngine.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] [<file.litmus>|<dir>]...\n"
      "\n"
      "Mines observed-vs-forbidden outcome patterns: sweeps a corpus\n"
      "under a model set, folds test names to their cycle family, and\n"
      "aggregates the per-model verdicts. Static critical cycles mined\n"
      "from .mole programs are cross-referenced against the corpus.\n"
      "\n"
      "corpus inputs: .litmus files, directories, --catalogue, and/or a\n"
      "--diy enumerated slice. With no corpus input and no --mole, the\n"
      "catalogue is mined.\n"
      "\n"
      "options:\n"
      "  --models A,B,C  comma-separated model names (default: all)\n"
      "  --jobs N        sweep worker threads (default: hardware)\n"
      "  --batch N       streaming batch size (default: 64)\n"
      "  --filter REGEX  keep tests whose name matches\n"
      "  --catalogue     add the built-in figure catalogue\n"
      "  --diy ARCH      add a diy-enumerated slice for ARCH\n"
      "  --size N        max cycle size for --diy (default: 4)\n"
      "  --limit N       cap the --diy slice (default: 500)\n"
      "  --internal      include rfi/fri/wsi edges in --diy\n"
      "  --mole X        static-mine X: a .mole file or one of\n"
      "                  rcu | postgres | apache (repeatable)\n"
      "  --json FILE     write the cats-mine-report/1 JSON report\n"
      "  --quiet         suppress the family table\n"
      "  --help          this message\n",
      Argv0);
  return 2;
}


} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 0, Batch = 64;
  bool UseCatalogue = false, Quiet = false;
  std::string Filter, JsonPath, DiyArch;
  EnumerateOptions DiyOpts;
  DiyOpts.MaxEdges = 4;
  DiyOpts.Limit = 500;
  std::vector<std::string> ModelNames, Paths, MolePrograms;

  for (int I = 1; I < argc; ++I) {
    const std::string Arg = argv[I];
    auto NeedsValue = [&](const char *Flag) -> const char * {
      if (I + 1 >= argc) {
        std::fprintf(stderr, "cats_mine: %s needs a value\n", Flag);
        return nullptr;
      }
      return argv[++I];
    };
    unsigned long long N = 0;
    unsigned U = 0;
    if (Arg == "--help" || Arg == "-h")
      return usage(argv[0]);
    if (Arg == "--models") {
      const char *V = NeedsValue("--models");
      if (!V)
        return 2;
      for (std::string &Name : splitTrimmedNonEmpty(V, ','))
        ModelNames.push_back(std::move(Name));
    } else if (Arg == "--jobs") {
      const char *V = NeedsValue("--jobs");
      if (!V || !parseUnsignedArg(V, U) || U == 0) {
        std::fprintf(stderr, "cats_mine: bad --jobs value\n");
        return 2;
      }
      Jobs = U;
    } else if (Arg == "--batch") {
      const char *V = NeedsValue("--batch");
      if (!V || !parseUnsignedArg(V, U) || U == 0) {
        std::fprintf(stderr, "cats_mine: bad --batch value\n");
        return 2;
      }
      Batch = U;
    } else if (Arg == "--filter") {
      const char *V = NeedsValue("--filter");
      if (!V)
        return 2;
      Filter = V;
    } else if (Arg == "--catalogue" || Arg == "--catalog") {
      UseCatalogue = true;
    } else if (Arg == "--diy") {
      const char *V = NeedsValue("--diy");
      if (!V)
        return 2;
      DiyArch = V;
    } else if (Arg == "--size") {
      const char *V = NeedsValue("--size");
      if (!V || !parseUnsignedArg(V, U) || U == 0) {
        std::fprintf(stderr, "cats_mine: bad --size value\n");
        return 2;
      }
      DiyOpts.MaxEdges = U;
    } else if (Arg == "--limit") {
      const char *V = NeedsValue("--limit");
      if (!V || !parseUnsignedArg(V, N)) {
        std::fprintf(stderr, "cats_mine: bad --limit value\n");
        return 2;
      }
      DiyOpts.Limit = N;
    } else if (Arg == "--internal") {
      DiyOpts.InternalCom = true;
    } else if (Arg == "--mole") {
      const char *V = NeedsValue("--mole");
      if (!V)
        return 2;
      MolePrograms.push_back(V);
    } else if (Arg == "--json") {
      const char *V = NeedsValue("--json");
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Arg == "--quiet") {
      Quiet = true;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "cats_mine: unknown option %s\n", Arg.c_str());
      return usage(argv[0]);
    } else {
      Paths.push_back(Arg);
    }
  }

  // Resolve the model set.
  auto Resolved = resolveModels(ModelNames);
  if (!Resolved) {
    std::fprintf(stderr, "cats_mine: %s\n", Resolved.message().c_str());
    return 2;
  }
  std::vector<const Model *> Models = Resolved.take();

  // Resolve the --mole programs up front: a typo must fail before the
  // (potentially long) corpus sweep, not after it.
  std::vector<MoleProgram> Programs;
  for (const std::string &Name : MolePrograms) {
    if (Name == "rcu") {
      Programs.push_back(rcuProgram());
    } else if (Name == "postgres") {
      Programs.push_back(postgresProgram());
    } else if (Name == "apache") {
      Programs.push_back(apacheProgram());
    } else {
      auto Parsed = parseMoleFile(Name);
      if (!Parsed) {
        std::fprintf(stderr, "cats_mine: %s\n", Parsed.message().c_str());
        return 2;
      }
      Programs.push_back(Parsed.take());
    }
  }

  const bool HasCorpus =
      !Paths.empty() || UseCatalogue || !DiyArch.empty();
  if (!HasCorpus && MolePrograms.empty())
    UseCatalogue = true;

  // Sweep the corpus: files/catalogue first, then the diy slice, both
  // streamed in batches.
  SweepEngine Engine(SweepOptions{Jobs});
  SweepReport Report;
  std::vector<std::string> LoadErrors;
  auto SweepInto = [&](const TestSource &Source) {
    SweepReport Part = Engine.runStreamed(Source, Models, Batch);
    for (SweepTestResult &T : Part.Tests)
      Report.Tests.push_back(std::move(T));
    Report.Jobs = std::max(Report.Jobs, Part.Jobs);
    Report.WallSeconds += Part.WallSeconds;
  };
  if (!Paths.empty() || UseCatalogue) {
    auto Source =
        streamCampaignTests(Paths, UseCatalogue, Filter, &LoadErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_mine: %s\n", Source.message().c_str());
      return 2;
    }
    SweepInto(*Source);
  }
  if (!DiyArch.empty()) {
    if (!parseArch(DiyArch, DiyOpts.Target)) {
      std::fprintf(stderr, "cats_mine: unknown architecture '%s'\n",
                   DiyArch.c_str());
      return 2;
    }
    auto Source = makeDiyTestSource(DiyOpts, Filter, &LoadErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_mine: %s\n", Source.message().c_str());
      return 2;
    }
    SweepInto(*Source);
  }
  for (const std::string &Problem : LoadErrors)
    std::fprintf(stderr, "cats_mine: %s\n", Problem.c_str());

  // Fold the sweep into per-family statistics.
  MineReport Mined = mineSweepReport(Report);

  // Static mole analyses (programs were resolved before the sweep).
  for (const MoleProgram &Program : Programs)
    Mined.StaticReports.push_back(analyzeProgram(Program));

  // The family table.
  if (!Quiet) {
    if (!Mined.Families.empty()) {
      std::printf("%-16s %6s", "family", "tests");
      for (const std::string &Model : Mined.Models)
        std::printf(" %16s", Model.c_str());
      std::printf("\n");
      for (const FamilyVerdicts &F : Mined.Families) {
        std::printf("%-16s %6u", F.Family.c_str(), F.Tests);
        for (const FamilyModelStats &S : F.PerModel)
          std::printf(" %8u/%-7u", S.Allowed, S.Forbidden);
        std::printf("\n");
      }
      std::printf("(columns are allowed/forbidden test counts)\n");
    }
    for (const MoleReport &Static : Mined.StaticReports) {
      std::printf("\nstatic %s: %zu group(s), %zu cycle(s)\n",
                  Static.ProgramName.c_str(), Static.Groups.size(),
                  Static.Cycles.size());
      for (const auto &[Pattern, Count] : Static.patternCounts()) {
        std::printf("  %-14s %3u", Pattern.c_str(), Count);
        if (const FamilyVerdicts *F = Mined.family(Pattern)) {
          std::printf("  corpus:");
          for (const FamilyModelStats &S : F->PerModel)
            if (S.Allowed > 0)
              std::printf(" %s", S.Model.c_str());
          std::printf(" observe it");
        }
        std::printf("\n");
      }
    }
    std::printf("\n%u corpus test(s), %zu model(s), %zu famil(ies), "
                "%zu static program(s)\n",
                Mined.CorpusTests, Mined.Models.size(),
                Mined.Families.size(), Mined.StaticReports.size());
  }

  // JSON report.
  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_mine: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    Out << mineReportToJson(Mined).dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  return (!LoadErrors.empty() || Mined.CorpusErrors) ? 1 : 0;
}
