//===- cats_diy.cpp - Exhaustive cycle enumeration CLI (diycross) ---------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diycross CLI over src/diy/Enumerate: exhaustively enumerate the
/// canonical critical cycles of an architecture's edge vocabulary, and
/// optionally synthesize the tests, export them as .litmus files, or
/// stream them through the sweep engine in batches.
///
///   cats_diy --arch power --size 6                # enumerate, print names
///   cats_diy --size 4 --filter '^mp' --synthesize # synthesis check
///   cats_diy --size 4 --export out/               # write .litmus files
///   cats_diy --size 5 --sweep --models SC,Power --json report.json
///
//===----------------------------------------------------------------------===//

#include "CampaignCli.h"
#include "CliCommon.h"
#include "diy/Enumerate.h"
#include "model/Registry.h"
#include "support/StringUtils.h"
#include "sweep/SweepEngine.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--arch A", "sc | tso | power | arm | c++ra (default: power)"},
      {"--size N", "maximum cycle length in edges (default: 4)"},
      {"--min-size N", "minimum cycle length (default: 3)"},
      {"--limit N", "stop after N matching cycles (default: all)"},
      {"--filter REGEX", "keep cycles whose canonical name matches"},
      {"--no-deps", "drop dependency mechanisms from the vocabulary"},
      {"--no-fences", "drop fences from the vocabulary"},
      {"--internal", "add the internal rfi/fri/wsi detour edges"},
      {"--synthesize", "synthesize each test and report failures"},
      {"--export DIR", "write each synthesized test to DIR/<name>.litmus"},
      {"--sweep", "sweep the synthesized corpus (implies synthesis)"},
      {"--models A,B,C", "models for --sweep (default: all)"},
      {"--jobs N", "sweep worker threads (default: hardware)"},
      {"--batch N", "streaming batch size (default: 64)"},
      {"--json FILE", "write the cats-diy-report/1 JSON report"},
      {"--sweep-json FILE", "also write the sweep leg as a\n"
                            "cats-sweep-report/1 (mergeable by cats_merge)"},
      {"--quiet", "suppress the per-cycle listing"}};
  for (const cli::FlagDoc &F : cli::campaignFlagDocs(/*WithCheckpoint=*/true))
    Flags.push_back(F);
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options]",
      "Exhaustively enumerates the well-formed critical cycles of an\n"
      "architecture's edge vocabulary (po/fence/dependency mechanisms x\n"
      "R/W directions x communications), canonicalized modulo rotation,\n"
      "and synthesizes, exports or sweeps the resulting litmus tests.\n"
      "\n"
      "The campaign flags (--shard/--cache/--checkpoint/--resume) apply\n"
      "to the --sweep leg; see docs/campaigns.md for the workflow.",
      Flags);
}

/// Per-cycle record accumulated across the phases.
struct CycleRecord {
  EnumeratedCycle Cycle;
  bool Synthesized = false;
  std::string Error;
  /// Model name -> verdict string, in sweep model order.
  std::vector<std::pair<std::string, std::string>> Verdicts;
};

} // namespace

int main(int argc, char **argv) {
  EnumerateOptions Opts;
  Opts.MaxEdges = 4;
  std::string ArchName = "power", Filter, ExportDir, JsonPath, SweepJsonPath;
  std::vector<std::string> ModelNames;
  bool Synthesize = false, Sweep = false, Quiet = false;
  unsigned Jobs = 0, Batch = 64;
  cli::CampaignFlags Campaign;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_diy", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int Took = cli::parseCampaignFlag(Args, "cats_diy",
                                          /*WithCheckpoint=*/true, Campaign)) {
      if (Took < 0)
        return 2;
    } else if (int TookObs = cli::parseObsFlag(Args, "cats_diy", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--arch")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      ArchName = V;
    } else if (Args.is("--size")) {
      if (!Args.unsignedValue(Opts.MaxEdges))
        return 2;
    } else if (Args.is("--min-size")) {
      if (!Args.unsignedValue(Opts.MinEdges))
        return 2;
    } else if (Args.is("--limit")) {
      unsigned long long Limit = 0; // 0 = unlimited.
      if (!Args.unsignedValue(Limit, /*AllowZero=*/true))
        return 2;
      Opts.Limit = Limit;
    } else if (Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--no-deps")) {
      Opts.Dependencies = false;
    } else if (Args.is("--no-fences")) {
      Opts.Fences = false;
    } else if (Args.is("--internal")) {
      Opts.InternalCom = true;
    } else if (Args.is("--synthesize")) {
      Synthesize = true;
    } else if (Args.is("--export")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      ExportDir = V;
    } else if (Args.is("--sweep")) {
      Sweep = true;
    } else if (Args.is("--models")) {
      if (!Args.commaList(ModelNames))
        return 2;
    } else if (Args.is("--jobs")) {
      if (!Args.unsignedValue(Jobs))
        return 2;
    } else if (Args.is("--batch")) {
      if (!Args.unsignedValue(Batch))
        return 2;
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--sweep-json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      SweepJsonPath = V;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else {
      Args.unknownOption();
      return usage(argv[0]);
    }
  }
  if (Status S = cli::validateCampaignFlags(Campaign); S.failed()) {
    std::fprintf(stderr, "cats_diy: %s\n", S.message().c_str());
    return 2;
  }
  if ((Campaign.active() || !SweepJsonPath.empty()) && !Sweep) {
    std::fprintf(stderr, "cats_diy: the campaign flags and --sweep-json "
                         "need --sweep\n");
    return 2;
  }

  if (!parseArch(ArchName, Opts.Target)) {
    std::fprintf(stderr, "cats_diy: unknown architecture '%s'\n",
                 ArchName.c_str());
    return 2;
  }
  if (Opts.MinEdges > Opts.MaxEdges) {
    std::fprintf(stderr,
                 "cats_diy: --min-size %u exceeds --size %u — nothing to "
                 "enumerate\n",
                 Opts.MinEdges, Opts.MaxEdges);
    return 2;
  }
  const bool NeedTests = Synthesize || Sweep || !ExportDir.empty();
  cli::applyObsFlags(Obs);

  // Phase 1: enumerate the matching cycles (a bad --filter fails here).
  std::vector<CycleRecord> Records;
  {
    auto Matching = enumerateMatching(Opts, Filter);
    if (!Matching) {
      std::fprintf(stderr, "cats_diy: %s\n", Matching.message().c_str());
      return 2;
    }
    Records.reserve(Matching->size());
    for (EnumeratedCycle &Cycle : *Matching) {
      CycleRecord R;
      R.Cycle = std::move(Cycle);
      Records.push_back(std::move(R));
    }
  }

  if (!ExportDir.empty()) {
    std::error_code Ec;
    std::filesystem::create_directories(ExportDir, Ec);
    if (Ec) {
      std::fprintf(stderr, "cats_diy: cannot create %s: %s\n",
                   ExportDir.c_str(), Ec.message().c_str());
      return 1;
    }
  }
  unsigned SynthesisErrors = 0;
  bool ExportFailed = false;
  auto ExportTest = [&](const LitmusTest &Test) {
    const std::string Path = ExportDir + "/" + Test.Name + ".litmus";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cats_diy: cannot write %s\n", Path.c_str());
      ExportFailed = true;
      return;
    }
    Out << Test.toString();
  };

  // The enumeration is done, so the total is known either way.
  obs::ProgressReporter Progress("cats_diy", Records.size(), Obs.Progress);

  // Phase 2: explicit synthesis / export. Skipped when sweeping — the
  // sweep source below synthesizes (and exports) on demand, so each
  // cycle is synthesized exactly once either way.
  if ((Synthesize || !ExportDir.empty()) && !Sweep) {
    for (size_t I = 0; I < Records.size(); ++I) {
      CycleRecord &R = Records[I];
      auto Test = synthesizeTest(R.Cycle.Cycle, Opts.Target);
      Progress.update(I + 1);
      if (!Test) {
        R.Error = Test.message();
        ++SynthesisErrors;
        continue;
      }
      R.Synthesized = true;
      if (!ExportDir.empty())
        ExportTest(*Test);
    }
  }

  // Phase 3: batched sweep over a source that synthesizes the already
  // enumerated records on demand (no second enumeration pass).
  std::vector<const Model *> Models;
  SweepReport Report;
  bool SweepFailed = false;
  if (Sweep) {
    auto Resolved = resolveModels(ModelNames);
    if (!Resolved) {
      std::fprintf(stderr, "cats_diy: %s\n", Resolved.message().c_str());
      return 2;
    }
    Models = Resolved.take();
    size_t Cursor = 0;
    TestSource Source = [&](LitmusTest &Out) -> bool {
      while (Cursor < Records.size()) {
        CycleRecord &R = Records[Cursor++];
        auto Test = synthesizeTest(R.Cycle.Cycle, Opts.Target);
        if (!Test) {
          R.Error = Test.message();
          ++SynthesisErrors;
          continue;
        }
        R.Synthesized = true;
        if (!ExportDir.empty())
          ExportTest(*Test);
        Out = Test.take();
        return true;
      }
      return false;
    };
    SweepEngine Engine(SweepOptions{Jobs});
    const std::string Spec =
        "tool=cats_diy;arch=" + archName(Opts.Target) +
        strFormat(";min=%u;max=%u;limit=%llu", Opts.MinEdges, Opts.MaxEdges,
                  static_cast<unsigned long long>(Opts.Limit)) +
        ";filter=" + Filter +
        strFormat(";deps=%d;fences=%d;internal=%d", Opts.Dependencies,
                  Opts.Fences, Opts.InternalCom) +
        ";models=" + joinStrings(cli::modelNamesOf(Models), ",") +
        ";shard=" + Campaign.Shard.toString();
    auto Swept = cli::runCampaignSweep("cats_diy", Engine, Source, Models,
                                       Batch, Campaign, Spec, &Progress);
    if (!Swept) {
      std::fprintf(stderr, "cats_diy: %s\n", Swept.message().c_str());
      return 2;
    }
    Report = Swept.take();
    SweepFailed = !Report.allOk();
    for (const SweepTestResult &T : Report.Tests)
      if (!T.Error.empty())
        std::fprintf(stderr, "cats_diy: %s: %s\n", T.TestName.c_str(),
                     T.Error.c_str());
    // Attach the verdicts — and any sweep-time validate/compile error —
    // to the records by name (the source skips synthesis failures, so
    // indices need not line up).
    std::map<std::string, const SweepTestResult *> ByName;
    for (const SweepTestResult &T : Report.Tests)
      ByName[T.TestName] = &T;
    for (CycleRecord &R : Records) {
      auto It = ByName.find(R.Cycle.Name);
      if (It == ByName.end())
        continue;
      if (!It->second->Error.empty()) {
        R.Error = It->second->Error;
        continue;
      }
      for (const SimulationResult &M : It->second->Result.PerModel)
        R.Verdicts.push_back({M.ModelName, M.verdict()});
    }
  }

  Progress.finish();

  // Listing.
  if (!Quiet) {
    std::printf("%-40s %5s %8s", "cycle", "size", "threads");
    if (Sweep)
      for (const Model *M : Models)
        std::printf(" %-10s", M->name().c_str());
    std::printf("\n");
    for (const CycleRecord &R : Records) {
      std::printf("%-40s %5zu %8u", R.Cycle.Name.c_str(),
                  R.Cycle.Cycle.size(), [&] {
                    unsigned External = 0;
                    for (const DiyEdge &E : R.Cycle.Cycle)
                      if (isExternalEdge(E.Kind))
                        ++External;
                    return External;
                  }());
      if (!R.Error.empty())
        std::printf("  SYNTHESIS ERROR: %s", R.Error.c_str());
      for (const auto &[Model, Verdict] : R.Verdicts)
        std::printf(" %-10s", Verdict.c_str());
      std::printf("\n");
    }
  }
  std::printf("%zu canonical cycle(s), arch %s, size %u-%u%s\n",
              Records.size(), archName(Opts.Target).c_str(), Opts.MinEdges,
              Opts.MaxEdges,
              SynthesisErrors
                  ? strFormat(", %u synthesis error(s)", SynthesisErrors)
                        .c_str()
                  : "");
  if (Sweep) {
    std::printf("swept %zu test(s) x %zu model(s), %u worker(s), %.3fs\n",
                Report.Tests.size(), Models.size(), Report.Jobs,
                Report.WallSeconds);
    if (Report.CacheUsed)
      std::printf("cache: %llu hit(s), %llu miss(es)\n", Report.CacheHits,
                  Report.CacheMisses);
  }

  // JSON report.
  if (!JsonPath.empty()) {
    JsonValue Root = JsonValue::object();
    Root.set("schema", "cats-diy-report/1");
    Root.set("arch", archName(Opts.Target));
    Root.set("min_size", Opts.MinEdges);
    Root.set("max_size", Opts.MaxEdges);
    Root.set("limit", static_cast<unsigned long long>(Opts.Limit));
    Root.set("filter", Filter);
    Root.set("internal_com", Opts.InternalCom);
    Root.set("enumerated", static_cast<unsigned>(Records.size()));
    Root.set("synthesis_errors", SynthesisErrors);
    JsonValue Cycles = JsonValue::array();
    for (const CycleRecord &R : Records) {
      JsonValue Entry = JsonValue::object();
      Entry.set("name", R.Cycle.Name);
      JsonValue Edges = JsonValue::array();
      for (const DiyEdge &E : R.Cycle.Cycle)
        Edges.push(E.toString());
      Entry.set("edges", std::move(Edges));
      Entry.set("size", static_cast<unsigned>(R.Cycle.Cycle.size()));
      if (NeedTests)
        Entry.set("synthesized", R.Synthesized);
      if (!R.Error.empty())
        Entry.set("error", R.Error);
      if (!R.Verdicts.empty()) {
        JsonValue Verdicts = JsonValue::object();
        for (const auto &[Model, Verdict] : R.Verdicts)
          Verdicts.set(Model, Verdict);
        Entry.set("verdicts", std::move(Verdicts));
      }
      Cycles.push(std::move(Entry));
    }
    Root.set("cycles", std::move(Cycles));
    cli::attachMetrics(Root, Obs);
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_diy: cannot write %s\n", JsonPath.c_str());
      return 1;
    }
    Out << Root.dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  // The sweep leg as a mergeable cats-sweep-report/1: what a sharded
  // campaign feeds cats_merge (the per-cycle diy report above is keyed by
  // cycle, not stream position, and does not merge).
  if (!SweepJsonPath.empty()) {
    std::ofstream Out(SweepJsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_diy: cannot write %s\n",
                   SweepJsonPath.c_str());
      return 1;
    }
    JsonValue SweepRoot = cli::campaignSweepJson(Report, Campaign);
    cli::attachMetrics(SweepRoot, Obs);
    Out << SweepRoot.dump();
    if (!Quiet)
      std::printf("wrote %s\n", SweepJsonPath.c_str());
  }

  const int ObsFailed = cli::finishObs("cats_diy", Obs, Quiet);
  return (SynthesisErrors || SweepFailed || ExportFailed || ObsFailed) ? 1
                                                                       : 0;
}
