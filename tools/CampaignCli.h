//===- CampaignCli.h - Shared campaign flags for the sweep CLIs -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign-scale flag vocabulary shared by cats_sweep, cats_diy and
/// cats_mine (docs/campaigns.md): --shard K/N partitioning, a --cache
/// result directory, and --checkpoint/--resume progress files. Each tool
/// parses its own vocabulary; the campaign flags parse, validate and run
/// identically everywhere, so they live here — a thin layer gluing
/// src/campaign/ onto cli::ArgCursor and SweepEngine::runStreamed.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_TOOLS_CAMPAIGNCLI_H
#define CATS_TOOLS_CAMPAIGNCLI_H

#include "CliCommon.h"
#include "campaign/Checkpoint.h"
#include "campaign/Merge.h"
#include "campaign/ResultCache.h"
#include "campaign/Shard.h"
#include "obs/Progress.h"
#include "sweep/ReportIO.h"
#include "sweep/SweepEngine.h"

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

namespace cats {
namespace cli {

/// The campaign flags a sweep-capable tool accepted.
struct CampaignFlags {
  ShardSpec Shard;
  std::string CacheDir;
  std::string CheckpointPath;
  bool Resume = false;

  /// True when any campaign behaviour is requested (the tools use this
  /// to pick the streamed code path).
  bool active() const {
    return Shard.active() || !CacheDir.empty() || !CheckpointPath.empty();
  }
};

/// The FlagDoc rows of the campaign vocabulary, for the tools' usage
/// tables. \p WithCheckpoint drops the --checkpoint/--resume rows for
/// tools (cats_mine) that only take --shard/--cache.
inline std::vector<FlagDoc> campaignFlagDocs(bool WithCheckpoint) {
  std::vector<FlagDoc> Docs = {
      {"--shard K/N", "run shard K of an N-way campaign: round-robin by\n"
                      "stream position, merged back with cats_merge"},
      {"--cache DIR", "content-addressed result cache; verdicts already\n"
                      "in DIR are reused instead of re-judged"}};
  if (WithCheckpoint) {
    Docs.push_back({"--checkpoint FILE",
                    "append per-batch progress to FILE (JSONL)"});
    Docs.push_back({"--resume", "skip the tests FILE already covers\n"
                                "(requires --checkpoint)"});
  }
  return Docs;
}

/// Parses the campaign flag under the cursor, if it is one. Returns 1
/// when consumed, 0 when the argument is not a campaign flag, -1 on a
/// diagnosed bad value. \p WithCheckpoint must match the docs call.
inline int parseCampaignFlag(ArgCursor &Args, const char *Tool,
                             bool WithCheckpoint, CampaignFlags &Out) {
  if (Args.is("--shard")) {
    const char *V = Args.value();
    if (!V)
      return -1;
    auto Spec = parseShardSpec(V);
    if (!Spec) {
      std::fprintf(stderr, "%s: %s\n", Tool, Spec.message().c_str());
      return -1;
    }
    Out.Shard = Spec.take();
    return 1;
  }
  if (Args.is("--cache")) {
    const char *V = Args.value();
    if (!V)
      return -1;
    Out.CacheDir = V;
    return 1;
  }
  if (WithCheckpoint && Args.is("--checkpoint")) {
    const char *V = Args.value();
    if (!V)
      return -1;
    Out.CheckpointPath = V;
    return 1;
  }
  if (WithCheckpoint && Args.is("--resume")) {
    Out.Resume = true;
    return 1;
  }
  return 0;
}

/// The display names of \p Models, for campaign-identity strings and
/// diagnostics.
inline std::vector<std::string>
modelNamesOf(const std::vector<const Model *> &Models) {
  std::vector<std::string> Names;
  Names.reserve(Models.size());
  for (const Model *M : Models)
    Names.push_back(M->name());
  return Names;
}

/// The flag combinations that cannot work, diagnosed before any sweeping.
inline Status validateCampaignFlags(const CampaignFlags &Flags) {
  if (Flags.Resume && Flags.CheckpointPath.empty())
    return Status::error("--resume needs --checkpoint FILE");
  return Status::success();
}

/// Runs \p Source through the engine with the campaign behaviours
/// attached: the source is shard-filtered, cache hooks wrap every test,
/// and each completed batch is appended to the checkpoint. With --resume
/// the checkpoint's completed prefix is skipped at the source and spliced
/// back into the returned report, so the result equals an uninterrupted
/// run. \p Spec is the campaign-identity string (every flag that shapes
/// the stream) the checkpoint is keyed on. An enabled \p Progress
/// reporter is fed from the same per-batch hook (cumulative over a
/// resumed prefix) and finished before returning.
inline Expected<SweepReport>
runCampaignSweep(const char *Tool, const SweepEngine &Engine,
                 TestSource Source, const std::vector<const Model *> &Models,
                 unsigned Batch, const CampaignFlags &Flags,
                 const std::string &Spec,
                 obs::ProgressReporter *Progress = nullptr) {
  using Ret = Expected<SweepReport>;

  Source = shardTestSource(std::move(Source), Flags.Shard);

  std::optional<ResultCache> Cache;
  StreamHooks Hooks;
  if (!Flags.CacheDir.empty()) {
    auto Opened = ResultCache::open(Flags.CacheDir);
    if (!Opened)
      return Ret::error(Opened.message());
    Cache.emplace(Opened.take());
    Hooks = Cache->hooks(Models);
  }

  CheckpointState Prefix;
  std::optional<CheckpointWriter> Writer;
  size_t LastWritten = 0;
  if (!Flags.CheckpointPath.empty()) {
    const std::string Id = campaignId(Spec);
    if (Flags.Resume && std::filesystem::exists(Flags.CheckpointPath)) {
      auto State = loadCheckpoint(Flags.CheckpointPath, Id);
      if (!State)
        return Ret::error(State.message());
      Prefix = State.take();
      Hooks.SkipTests = Prefix.Consumed;
      auto Reopened = CheckpointWriter::append(Flags.CheckpointPath);
      if (!Reopened)
        return Ret::error(Reopened.message());
      Writer.emplace(Reopened.take());
    } else {
      auto Created = CheckpointWriter::create(Flags.CheckpointPath, Id);
      if (!Created)
        return Ret::error(Created.message());
      Writer.emplace(Created.take());
    }
    Hooks.OnBatch = [&Writer, &Prefix, &LastWritten,
                     Tool](const SweepReport &SoFar,
                           unsigned long long Consumed) {
      std::vector<SweepTestResult> Slice(SoFar.Tests.begin() + LastWritten,
                                         SoFar.Tests.end());
      LastWritten = SoFar.Tests.size();
      Status S = Writer->appendBatch(Slice, Prefix.Consumed + Consumed,
                                     Prefix.CacheHits + SoFar.CacheHits,
                                     Prefix.CacheMisses + SoFar.CacheMisses);
      if (S.failed())
        std::fprintf(stderr, "%s: %s\n", Tool, S.message().c_str());
    };
  }

  if (Progress && Progress->enabled()) {
    auto Prev = Hooks.OnBatch;
    const CheckpointState *Pre = &Prefix;
    Hooks.OnBatch = [Prev, Progress, Pre](const SweepReport &SoFar,
                                          unsigned long long Consumed) {
      if (Prev)
        Prev(SoFar, Consumed);
      Progress->update(Pre->Consumed + Consumed,
                       Pre->CacheHits + SoFar.CacheHits,
                       Pre->CacheMisses + SoFar.CacheMisses);
    };
  }

  SweepReport Report = Engine.runStreamed(Source, Models, Batch, Hooks);
  if (Progress)
    Progress->finish();

  // Splice the resumed prefix back in front: the report reads exactly as
  // an uninterrupted campaign's would.
  if (!Prefix.Tests.empty())
    Report.Tests.insert(Report.Tests.begin(),
                        std::make_move_iterator(Prefix.Tests.begin()),
                        std::make_move_iterator(Prefix.Tests.end()));
  Report.CacheHits += Prefix.CacheHits;
  Report.CacheMisses += Prefix.CacheMisses;
  if (Prefix.CacheHits || Prefix.CacheMisses)
    Report.CacheUsed = true;
  return Report;
}

/// The JSON document of a campaign sweep: cats-sweep-report/1 plus, on a
/// real shard, the "shard" stanza cats_merge interleaves on.
inline JsonValue campaignSweepJson(const SweepReport &Report,
                                   const CampaignFlags &Flags) {
  JsonValue Root = sweepReportToJson(Report);
  if (Flags.Shard.active())
    Root.set("shard", shardToJson(Flags.Shard));
  return Root;
}

} // namespace cli
} // namespace cats

#endif // CATS_TOOLS_CAMPAIGNCLI_H
