//===- cats_explain.cpp - Why did the judge say that? ---------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The witness CLI over the provenance layer (docs/explain.md): judge
/// litmus tests — from files, directories, the built-in figure catalogue,
/// or the diy cycle enumeration — under a model set with witness capture
/// on, and render the evidence behind each verdict. For a forbidden
/// (test, model) pair that is the first failing axiom with its minimal
/// violating cycle, every edge labeled by the relation it came from; for
/// an allowed pair, one consistent execution realizing the final
/// condition.
///
///   cats_explain --test mp                      # catalogue, all models
///   cats_explain --models Power mp.litmus --dot graphs/
///   cats_explain --catalogue --json witnesses.json
///   cats_explain --diy 'PodWW.*' --models TSO
///   cats_explain --backend pruned --test sb     # shows the prune cut
///
//===----------------------------------------------------------------------===//

#include "CliCommon.h"
#include "cat/CatAdapter.h"
#include "diy/Enumerate.h"
#include "herd/Simulator.h"
#include "litmus/Compiler.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "obs/Witness.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--test REGEX", "keep only tests whose name matches"},
      {"--models A,B,C", "comma-separated registry model names\n"
                         "(default: all). Known: SC, TSO, PSO, RMO,\n"
                         "C++RA, Power, ARM, Power-ARM, ARM llh"},
      {"--cat FILE.cat", "add a .cat model file to the set (repeatable)"},
      {"--catalogue", "add the built-in figure catalogue to the inputs"},
      {"--diy REGEX", "add diy-synthesized tests whose canonical cycle\n"
                      "name matches (see cats_diy)"},
      {"--backend B", "judging backend: pruned (default), naive, or bmc.\n"
                      "pruned also records its first subtree cut as a\n"
                      "model-independent prune-cut witness"},
      {"--dot DIR", "write one DOT execution graph per witness into DIR"},
      {"--json FILE", "write the cats-witness/1 section ('-' = stdout)"},
      {"--quiet", "suppress the human-readable explanations"}};
  return cli::printUsage(
      Argv0, "[options] [<file.litmus>|<dir>]...",
      "Judges every (test, model) pair with witness capture on and\n"
      "renders the evidence behind each verdict: the first failing axiom\n"
      "and its minimal violating cycle for forbidden pairs, a concrete\n"
      "consistent execution for allowed ones (docs/explain.md).\n"
      "\n"
      "Inputs: .litmus files, directories (scanned for *.litmus), the\n"
      "built-in figure catalogue, and/or --diy synthesized tests. With\n"
      "no input, the catalogue runs.",
      Flags);
}

/// Event id -> rendered description, for cycle pretty-printing.
std::map<EventId, std::string> descIndex(const obs::Witness &W) {
  std::map<EventId, std::string> Index;
  for (const obs::WitnessEvent &E : W.Events)
    Index[E.Id] = E.Desc;
  return Index;
}

std::string renderCycle(const obs::Witness &W) {
  const std::map<EventId, std::string> Desc = descIndex(W);
  std::string Out;
  for (size_t I = 0; I < W.Cycle.size(); ++I) {
    const LabeledEdge &E = W.Cycle[I];
    auto Name = [&](EventId Id) {
      auto It = Desc.find(Id);
      return It == Desc.end() ? "#" + std::to_string(Id) : It->second;
    };
    if (I == 0)
      Out += "[" + Name(E.From) + "]";
    Out += " -" + E.Label + "-> [" + Name(E.To) + "]";
  }
  return Out;
}

void printWitness(const obs::Witness &W) {
  std::printf("%s @ %s: %s", W.Test.c_str(), W.Model.c_str(),
              W.Verdict.c_str());
  switch (W.Kind) {
  case obs::WitnessKind::AllowedExecution:
    std::printf(" — consistent execution reaches %s\n", W.Outcome.c_str());
    break;
  case obs::WitnessKind::AxiomCycle:
    std::printf(" — %s kills %s\n    %s\n", W.Axiom.c_str(),
                W.Outcome.c_str(), renderCycle(W).c_str());
    break;
  case obs::WitnessKind::PruneCut:
    std::printf(" — first enumerator subtree cut (%s) on the partial "
                "graph\n    %s\n",
                W.Axiom.c_str(), renderCycle(W).c_str());
    break;
  case obs::WitnessKind::UnreachableOutcome:
    std::printf(" — no consistent execution satisfies the final "
                "condition\n");
    break;
  }
}

} // namespace

int main(int argc, char **argv) {
  JudgeBackend Backend = JudgeBackend::Pruned;
  bool UseCatalogue = false, Quiet = false, UseDiy = false;
  std::string Filter, DotDir, JsonPath, DiyFilter;
  std::vector<std::string> ModelNames, CatFiles, Paths;

  cli::ArgCursor Args("cats_explain", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (Args.is("--test") || Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--models")) {
      if (!Args.commaList(ModelNames))
        return 2;
    } else if (Args.is("--cat")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      CatFiles.push_back(V);
    } else if (Args.is("--catalogue") || Args.is("--catalog")) {
      UseCatalogue = true;
    } else if (Args.is("--diy")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      UseDiy = true;
      DiyFilter = V;
    } else if (Args.is("--backend")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      if (!parseJudgeBackend(V, Backend)) {
        std::fprintf(stderr,
                     "cats_explain: unknown backend '%s' (expected "
                     "naive, pruned, or bmc)\n",
                     V);
        return 2;
      }
    } else if (Args.is("--dot")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      DotDir = V;
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }

  // Resolve the model set: registry names plus any --cat files, which
  // must outlive the sweep.
  auto Resolved = resolveModels(ModelNames);
  if (!Resolved) {
    std::fprintf(stderr, "cats_explain: %s\n", Resolved.message().c_str());
    return 2;
  }
  std::vector<const Model *> Models = Resolved.take();
  std::vector<std::unique_ptr<CatAdapterModel>> CatModels;
  for (const std::string &File : CatFiles) {
    auto Adapted = CatAdapterModel::fromFile(File);
    if (!Adapted) {
      std::fprintf(stderr, "cats_explain: %s\n", Adapted.message().c_str());
      return 2;
    }
    CatModels.push_back(
        std::make_unique<CatAdapterModel>(std::move(Adapted.take())));
    Models.push_back(CatModels.back().get());
  }

  if (Paths.empty() && !UseCatalogue && !UseDiy)
    UseCatalogue = true;

  // Gather the tests: files and the catalogue first, diy synthesis after.
  std::vector<LitmusTest> Tests;
  bool LoadFailed = false;
  if (!Paths.empty() || UseCatalogue) {
    auto Loaded = loadCampaignTests(Paths, UseCatalogue, Filter);
    if (!Loaded) {
      std::fprintf(stderr, "cats_explain: %s\n", Loaded.message().c_str());
      return 2;
    }
    for (const std::string &Problem : Loaded->Errors)
      std::fprintf(stderr, "cats_explain: %s\n", Problem.c_str());
    LoadFailed = !Loaded->Errors.empty();
    Tests = std::move(Loaded->Tests);
  }
  if (UseDiy) {
    std::vector<std::string> SynthesisErrors;
    auto Source = makeDiyTestSource(EnumerateOptions(), DiyFilter,
                                    &SynthesisErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_explain: %s\n", Source.message().c_str());
      return 2;
    }
    auto Compiled = compileFilterRegex(Filter);
    if (!Compiled) {
      std::fprintf(stderr, "cats_explain: %s\n", Compiled.message().c_str());
      return 2;
    }
    LitmusTest Synth;
    while ((*Source)(Synth))
      if (Filter.empty() || std::regex_search(Synth.Name, *Compiled))
        Tests.push_back(std::move(Synth));
    for (const std::string &Problem : SynthesisErrors)
      std::fprintf(stderr, "cats_explain: %s\n", Problem.c_str());
    LoadFailed = LoadFailed || !SynthesisErrors.empty();
  }
  if (Tests.empty()) {
    std::fprintf(stderr, "cats_explain: no tests to explain\n");
    return 2;
  }

  if (!DotDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(DotDir, EC);
    if (EC) {
      std::fprintf(stderr, "cats_explain: cannot create %s: %s\n",
                   DotDir.c_str(), EC.message().c_str());
      return 1;
    }
  }

  // Judge each test with capture on and collect every witness.
  SimulateOptions Opts;
  Opts.Backend = Backend;
  Opts.Witness = true;
  std::vector<obs::Witness> All;
  bool JudgeFailed = false;
  for (const LitmusTest &Test : Tests) {
    std::string Invalid = Test.validate();
    if (!Invalid.empty()) {
      std::fprintf(stderr, "cats_explain: %s: %s\n", Test.Name.c_str(),
                   Invalid.c_str());
      JudgeFailed = true;
      continue;
    }
    auto Compiled = CompiledTest::compile(Test);
    if (!Compiled) {
      std::fprintf(stderr, "cats_explain: %s: %s\n", Test.Name.c_str(),
                   Compiled.message().c_str());
      JudgeFailed = true;
      continue;
    }
    MultiSimulationResult Result = simulateAll(*Compiled, Models, Opts);
    for (obs::Witness &W : Result.Witnesses) {
      if (!Quiet)
        printWitness(W);
      if (!DotDir.empty()) {
        const std::string Path =
            DotDir + "/" + obs::witnessFileStem(W) + ".dot";
        std::ofstream Out(Path);
        if (Out)
          Out << obs::witnessToDot(W);
        if (!Out) {
          std::fprintf(stderr, "cats_explain: cannot write %s\n",
                       Path.c_str());
          return 1;
        }
      }
      All.push_back(std::move(W));
    }
  }

  if (!JsonPath.empty()) {
    const std::string Doc = obs::witnessSectionToJson(All).dump() + "\n";
    if (JsonPath == "-") {
      std::fwrite(Doc.data(), 1, Doc.size(), stdout);
    } else {
      std::ofstream Out(JsonPath);
      if (Out)
        Out << Doc;
      if (!Out) {
        std::fprintf(stderr, "cats_explain: cannot write %s\n",
                     JsonPath.c_str());
        return 1;
      }
      if (!Quiet)
        std::printf("wrote %s\n", JsonPath.c_str());
    }
  }
  if (!Quiet)
    std::printf("%zu witness(es) over %zu test(s) x %zu model(s)\n",
                All.size(), Tests.size(), Models.size());
  return (LoadFailed || JudgeFailed) ? 1 : 0;
}
