//===- CliCommon.h - Shared argument parsing for the cats CLIs -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The argv-walking boilerplate every cats CLI (cats_sweep, cats_repair,
/// cats_mine, cats_diy, cats_run, cats_merge, export_corpus) used to
/// duplicate: a cursor over the arguments with uniform "<tool>: ..."
/// diagnostics for missing values, malformed numbers and unknown
/// options, plus a shared --help renderer fed by per-tool flag tables.
/// Tools keep their own flag dispatch (each vocabulary is different);
/// the cursor owns the error-prone part, and each flag's documentation
/// lives in exactly one FlagDoc row.
///
/// Typical shape:
///
/// \code
///   cli::ArgCursor Args("cats_foo", argc, argv);
///   while (Args.next()) {
///     if (Args.isHelp())
///       return usage(argv[0]);
///     if (Args.is("--jobs")) {
///       if (!Args.unsignedValue(Jobs))
///         return 2;
///     } else if (Args.is("--models")) {
///       if (!Args.commaList(ModelNames))
///         return 2;
///     } else if (Args.isFlag()) {
///       Args.unknownOption();
///       return usage(argv[0]);
///     } else {
///       Paths.push_back(Args.arg());
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef CATS_TOOLS_CLICOMMON_H
#define CATS_TOOLS_CLICOMMON_H

#include "obs/Metrics.h"
#include "obs/Progress.h"
#include "obs/Trace.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace cats {
namespace cli {

/// One documented option of a tool: the flag with its value placeholder
/// ("--jobs N") and a one-line description. Embedded newlines in the
/// description become aligned continuation lines. Every tool declares its
/// vocabulary once as a vector of these; printUsage renders it, so the
/// --help text can never drift from the table.
struct FlagDoc {
  const char *Flag;
  const char *Doc;
};

/// Renders the uniform usage block to stderr:
///
///   usage: <argv0> <operands>
///
///   <about>
///
///   options:
///     <flag>  <doc>
///     ...
///
/// and returns the exit status for a usage error (2), so tools can write
/// `return cli::printUsage(...)` from both --help and bad-flag paths.
inline int printUsage(const char *Argv0, const char *Operands,
                      const char *About, const std::vector<FlagDoc> &Flags) {
  std::fprintf(stderr, "usage: %s%s%s\n\n%s\n\noptions:\n", Argv0,
               *Operands ? " " : "", Operands, About);
  size_t Width = std::strlen("--help");
  for (const FlagDoc &F : Flags)
    Width = std::max(Width, std::strlen(F.Flag));
  auto Row = [&](const char *Flag, const char *Doc) {
    bool First = true;
    for (const std::string &Line : splitString(Doc, '\n')) {
      std::fprintf(stderr, "  %-*s  %s\n", static_cast<int>(Width),
                   First ? Flag : "", Line.c_str());
      First = false;
    }
  };
  for (const FlagDoc &F : Flags)
    Row(F.Flag, F.Doc);
  Row("--help", "this message");
  return 2;
}

/// A cursor over argv with the cats tools' uniform error reporting.
class ArgCursor {
public:
  ArgCursor(const char *Tool, int Argc, char **Argv)
      : Tool(Tool), Argc(Argc), Argv(Argv) {}

  /// Advances to the next argument; false at the end.
  bool next() {
    if (++Index >= Argc)
      return false;
    Current = Argv[Index];
    return true;
  }

  /// The current argument.
  const std::string &arg() const { return Current; }

  bool is(const char *Flag) const { return Current == Flag; }
  bool isHelp() const { return is("--help") || is("-h"); }

  /// True when the current argument looks like an option rather than a
  /// positional.
  bool isFlag() const { return !Current.empty() && Current[0] == '-'; }

  /// Consumes and returns the value of the current "--flag VALUE" pair;
  /// nullptr (with a diagnostic) when argv is exhausted.
  const char *value() {
    Flag = Current;
    if (Index + 1 >= Argc) {
      std::fprintf(stderr, "%s: %s needs a value\n", Tool.c_str(),
                   Flag.c_str());
      return nullptr;
    }
    Current = Argv[++Index];
    return Argv[Index];
  }

  /// Parses the current flag's value as an unsigned. Rejects zero unless
  /// \p AllowZero; diagnoses and returns false on bad input.
  bool unsignedValue(unsigned &Out, bool AllowZero = false) {
    const char *V = value();
    if (!V || !parseUnsignedArg(V, Out) || (!AllowZero && Out == 0)) {
      if (V)
        badValue(V);
      return false;
    }
    return true;
  }

  /// The wide variant (counts, limits, seeds). Same zero policy as the
  /// narrow overload — the two must not differ, or changing an option
  /// variable's width would silently flip whether '--flag 0' parses.
  bool unsignedValue(unsigned long long &Out, bool AllowZero = false) {
    const char *V = value();
    if (!V || !parseUnsignedArg(V, Out) || (!AllowZero && Out == 0)) {
      if (V)
        badValue(V);
      return false;
    }
    return true;
  }

  /// Splits the current flag's value on commas (trimmed, empties
  /// dropped) and appends the fields to \p Out.
  bool commaList(std::vector<std::string> &Out) {
    const char *V = value();
    if (!V)
      return false;
    for (std::string &Item : splitTrimmedNonEmpty(V, ','))
      Out.push_back(std::move(Item));
    return true;
  }

  /// Diagnoses the current argument as an unknown option.
  void unknownOption() const {
    std::fprintf(stderr, "%s: unknown option %s\n", Tool.c_str(),
                 Current.c_str());
  }

private:
  void badValue(const char *V) const {
    std::fprintf(stderr, "%s: bad %s value '%s'\n", Tool.c_str(),
                 Flag.c_str(), V);
  }

  std::string Tool;
  int Argc;
  char **Argv;
  int Index = 0;
  std::string Current;
  /// The flag a value() call belongs to, for diagnostics.
  std::string Flag;
};

/// The observability flags (docs/observability.md) every cats CLI
/// accepts with the same spelling: --metrics[=FILE], --trace FILE and
/// --progress. Parsed by parseObsFlag, enabled by applyObsFlags before
/// the engines run, and flushed by finishObs after the reports are out.
struct ObsFlags {
  /// --metrics seen (with or without =FILE): collect counters and
  /// histograms, and embed the cats-metrics/1 section in JSON reports.
  bool Metrics = false;
  /// Non-empty with --metrics=FILE: write the snapshot there instead of
  /// dumping text to stderr.
  std::string MetricsPath;
  /// Non-empty with --trace FILE: write the Chrome trace-event JSON.
  std::string TracePath;
  /// --progress: live stderr progress line.
  bool Progress = false;
};

/// The FlagDoc rows of the observability vocabulary, for the tools'
/// usage tables.
inline std::vector<FlagDoc> obsFlagDocs() {
  return {
      {"--metrics[=FILE]", "collect counters and histograms; dump as text\n"
                           "to stderr, or as cats-metrics/1 JSON to FILE.\n"
                           "JSON reports gain a \"metrics\" section"},
      {"--trace FILE", "write a Chrome trace-event JSON of the run's\n"
                       "phases (loads in Perfetto / chrome://tracing)"},
      {"--progress", "live progress line on stderr: rate, ETA and the\n"
                     "cache hit rate (silenced by --quiet)"}};
}

/// Parses the observability flag under the cursor, if it is one. Returns
/// 1 when consumed, 0 when the argument is not an observability flag, -1
/// on a diagnosed bad value.
inline int parseObsFlag(ArgCursor &Args, const char *Tool, ObsFlags &Out) {
  if (Args.is("--metrics")) {
    Out.Metrics = true;
    return 1;
  }
  const std::string &Arg = Args.arg();
  if (Arg.rfind("--metrics=", 0) == 0) {
    Out.Metrics = true;
    Out.MetricsPath = Arg.substr(std::strlen("--metrics="));
    if (Out.MetricsPath.empty()) {
      std::fprintf(stderr, "%s: --metrics= needs a file name\n", Tool);
      return -1;
    }
    return 1;
  }
  if (Args.is("--trace")) {
    const char *V = Args.value();
    if (!V)
      return -1;
    Out.TracePath = V;
    return 1;
  }
  if (Args.is("--progress")) {
    Out.Progress = true;
    return 1;
  }
  return 0;
}

/// Flips the process-global observability switches the flags ask for.
/// Call once, after argument parsing and before any engine runs, so the
/// instrumented paths see the final state.
inline void applyObsFlags(const ObsFlags &Flags) {
  if (Flags.Metrics)
    obs::setMetricsEnabled(true);
  if (!Flags.TracePath.empty())
    obs::setTraceEnabled(true);
}

/// Embeds the metrics snapshot as the additive "metrics" section of a
/// JSON report (readers ignore it; cats_merge folds it across shards).
/// No-op unless --metrics was given.
inline void attachMetrics(JsonValue &Root, const ObsFlags &Flags) {
  if (Flags.Metrics)
    Root.set("metrics", obs::metricsToJson());
}

/// Writes the trace and metrics artifacts the flags requested: the trace
/// file, the metrics JSON file, or (bare --metrics without a file, and
/// not \p Quiet) the text dump to stderr. Returns 1 on an I/O failure,
/// else 0 — fold it into the tool's exit status.
inline int finishObs(const char *Tool, const ObsFlags &Flags, bool Quiet) {
  int Failed = 0;
  if (!Flags.TracePath.empty()) {
    std::string Error;
    if (!obs::writeTrace(Flags.TracePath, Error)) {
      std::fprintf(stderr, "%s: %s\n", Tool, Error.c_str());
      Failed = 1;
    }
  }
  if (!Flags.MetricsPath.empty()) {
    std::ofstream Out(Flags.MetricsPath);
    if (Out)
      Out << obs::metricsToJson().dump();
    if (!Out) {
      std::fprintf(stderr, "%s: cannot write %s\n", Tool,
                   Flags.MetricsPath.c_str());
      Failed = 1;
    }
  } else if (Flags.Metrics && !Quiet) {
    std::fprintf(stderr, "%s", obs::metricsToText().c_str());
  }
  return Failed;
}

} // namespace cli
} // namespace cats

#endif // CATS_TOOLS_CLICOMMON_H
