//===- export_corpus.cpp - Regenerate the .litmus corpus ----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes every figure-catalogue entry to <output-dir>/<name>.litmus in the
/// textual format understood by parseLitmusFile. tests/corpus.cpp asserts the
/// committed litmus/ directory stays in sync with the catalogue; rerun
///
///   build/export_corpus litmus
///
/// from the repository root after changing src/litmus/Catalog.cpp.
///
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"
#include "litmus/Parser.h"

#include <cstdio>
#include <fstream>

using namespace cats;

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>\n", argv[0]);
    return 1;
  }
  const std::string OutDir = argv[1];
  unsigned Written = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    std::string Text = Entry.Test.toString();
    // Refuse to write anything the parser cannot read back.
    auto Reparsed = parseLitmus(Text);
    if (!Reparsed) {
      std::fprintf(stderr, "%s does not round-trip: %s\n",
                   Entry.Test.Name.c_str(), Reparsed.message().c_str());
      return 1;
    }
    std::string Path = OutDir + "/" + Entry.Test.Name + ".litmus";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return 1;
    }
    Out << Text;
    ++Written;
  }
  std::printf("wrote %u litmus files to %s\n", Written, OutDir.c_str());
  return 0;
}
