//===- export_corpus.cpp - Regenerate or verify the .litmus corpus ------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Writes every figure-catalogue entry to <dir>/<name>.litmus in the
/// textual format understood by parseLitmusFile. tests/corpus.cpp asserts the
/// committed litmus/ directory stays in sync with the catalogue; rerun
///
///   build/export_corpus litmus
///
/// from the repository root after changing src/litmus/Catalog.cpp.
///
/// With --check, nothing is written: the tool diffs the directory against
/// the catalogue (missing, stale and orphaned .litmus files) and exits
/// non-zero on any mismatch. CI uses this for its corpus-sync gate so the
/// checkout is never mutated.
///
//===----------------------------------------------------------------------===//

#include "CliCommon.h"
#include "litmus/Catalog.h"
#include "litmus/Parser.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

/// Reads a whole file; empty optional-style flag via OK.
std::string readFile(const std::string &Path, bool &Ok) {
  std::ifstream In(Path);
  if (!In) {
    Ok = false;
    return "";
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  Ok = true;
  return Buf.str();
}

int checkCorpus(const std::string &Dir, bool Quiet) {
  unsigned Problems = 0;
  std::set<std::string> Expected;
  for (const CatalogEntry &Entry : figureCatalog()) {
    const std::string Path = Dir + "/" + Entry.Test.Name + ".litmus";
    Expected.insert(Entry.Test.Name + ".litmus");
    bool Ok = false;
    const std::string OnDisk = readFile(Path, Ok);
    if (!Ok) {
      std::fprintf(stderr, "MISSING %s\n", Path.c_str());
      ++Problems;
      continue;
    }
    if (OnDisk != Entry.Test.toString()) {
      std::fprintf(stderr, "STALE   %s (differs from the catalogue)\n",
                   Path.c_str());
      ++Problems;
    }
  }
  // Files with no catalogue twin.
  std::error_code Ec;
  for (const auto &DirEntry : std::filesystem::directory_iterator(Dir, Ec)) {
    if (DirEntry.path().extension() != ".litmus")
      continue;
    if (!Expected.count(DirEntry.path().filename().string())) {
      std::fprintf(stderr, "ORPHAN  %s (no catalogue entry)\n",
                   DirEntry.path().string().c_str());
      ++Problems;
    }
  }
  if (Problems) {
    std::fprintf(stderr,
                 "%u problem(s); rerun `export_corpus %s` to resync\n",
                 Problems, Dir.c_str());
    return 1;
  }
  if (!Quiet)
    std::printf("corpus in sync: %zu files match the catalogue\n",
                figureCatalog().size());
  return 0;
}

} // namespace

int usage(const char *Argv0) {
  std::vector<cats::cli::FlagDoc> Flags = {
      {"--check", "diff <dir> against the catalogue (missing, stale,\n"
                  "orphaned files) without writing; exit 1 on mismatch"},
      {"--quiet", "suppress the summary line"}};
  for (const cats::cli::FlagDoc &F : cats::cli::obsFlagDocs())
    Flags.push_back(F);
  return cats::cli::printUsage(
      Argv0, "[options] <dir>",
      "Writes every figure-catalogue entry to <dir>/<name>.litmus.\n"
      "tests/corpus.cpp asserts the committed litmus/ directory stays in\n"
      "sync with the catalogue; rerun after changing Catalog.cpp.",
      Flags);
}

int main(int argc, char **argv) {
  bool Check = false, Quiet = false;
  std::vector<std::string> Dirs;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("export_corpus", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int TookObs = cli::parseObsFlag(Args, "export_corpus", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--check")) {
      Check = true;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Dirs.push_back(Args.arg());
    }
  }
  if (Dirs.size() != 1)
    return usage(argv[0]);
  const std::string &Dir = Dirs.front();

  cli::applyObsFlags(Obs);
  if (Check) {
    const int Rc = checkCorpus(Dir, Quiet);
    const int ObsFailed = cli::finishObs("export_corpus", Obs, Quiet);
    return Rc ? Rc : ObsFailed;
  }

  obs::ProgressReporter Progress("export_corpus", figureCatalog().size(),
                                 Obs.Progress);
  unsigned Written = 0;
  for (const CatalogEntry &Entry : figureCatalog()) {
    std::string Text = Entry.Test.toString();
    // Refuse to write anything the parser cannot read back.
    auto Reparsed = parseLitmus(Text);
    if (!Reparsed) {
      std::fprintf(stderr, "%s does not round-trip: %s\n",
                   Entry.Test.Name.c_str(), Reparsed.message().c_str());
      return 1;
    }
    std::string Path = Dir + "/" + Entry.Test.Name + ".litmus";
    std::ofstream Out(Path);
    if (!Out) {
      std::fprintf(stderr, "cannot write %s\n", Path.c_str());
      return 1;
    }
    Out << Text;
    obs::tick("export.files_written");
    Progress.update(++Written);
  }
  Progress.finish();
  if (!Quiet)
    std::printf("wrote %u litmus files to %s\n", Written, Dir.c_str());
  return cli::finishObs("export_corpus", Obs, Quiet);
}
