//===- cats_repair.cpp - Search-based fence synthesis CLI -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The repair CLI over src/repair: load litmus tests from files,
/// directories, the built-in figure catalogue and/or a freshly generated
/// diy battery, then compute the minimal fence/dependency insertions that
/// restore the goal (forbid the exists-clause, or full SC equivalence) on
/// the target model. Candidate mutants are judged batch-wise on the sweep
/// engine: one shared candidate enumeration per mutant covers every model,
/// and a whole battery advances through the insertion lattice in lock-step
/// rounds distributed over a worker pool.
///
///   cats_repair --catalogue --filter '^mp$'
///   cats_repair --model Power --all-minimal litmus/mp.litmus
///   cats_repair --battery power --goal sc --jobs 8 --json report.json
///
//===----------------------------------------------------------------------===//

#include "CliCommon.h"
#include "diy/Diy.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "repair/RepairEngine.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--model NAME", "target model for every test (default: each\n"
                       "test's architecture default)"},
      {"--goal G", "forbid: make the exists-clause unobservable\n"
                   "(default); sc: match the native SC outcomes"},
      {"--jobs N", "worker threads (default: hardware concurrency)"},
      {"--filter REGEX", "keep only tests whose name matches"},
      {"--all-minimal", "print every minimal repair (default: cheapest)"},
      {"--catalogue", "add the built-in figure catalogue to the inputs"},
      {"--battery ARCH", "add the diy battery for ARCH (power, arm, tso)"},
      {"--max-per-family N", "cap the battery size per family (default 16,\n"
                             "0 = unlimited)"},
      {"--ww-fences", "include write-write-only fences (eieio, dmb.st)"},
      {"--json FILE", "write the cats-repair-report/1 JSON report"},
      {"--quiet", "suppress the per-test text blocks"}};
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options] [<file.litmus>|<dir>]...",
      "Computes minimal fence/dependency insertions restoring a goal on a\n"
      "weak model (Sec. 7 of the paper): every candidate mutant battery is\n"
      "judged in batched shared-enumeration sweeps.\n"
      "\n"
      "Inputs: .litmus files, directories (scanned for *.litmus), the\n"
      "built-in figure catalogue, and/or a generated diy battery. With no\n"
      "input, the catalogue runs.",
      Flags);
}

} // namespace

int main(int argc, char **argv) {
  RepairOptions Opts;
  bool UseCatalogue = false, AllMinimal = false, Quiet = false;
  unsigned MaxPerFamily = 16;
  std::string JsonPath, Filter, ModelName, BatteryArch;
  std::vector<std::string> Paths;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_repair", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int TookObs = cli::parseObsFlag(Args, "cats_repair", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--jobs")) {
      if (!Args.unsignedValue(Opts.Jobs))
        return 2;
    } else if (Args.is("--model")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      ModelName = V;
    } else if (Args.is("--goal")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      if (std::strcmp(V, "forbid") == 0) {
        Opts.Goal = RepairGoal::ForbidFinal;
      } else if (std::strcmp(V, "sc") == 0) {
        Opts.Goal = RepairGoal::ScEquivalence;
      } else {
        std::fprintf(stderr, "cats_repair: unknown goal '%s' "
                             "(forbid or sc)\n", V);
        return 2;
      }
    } else if (Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--battery")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      BatteryArch = V;
    } else if (Args.is("--max-per-family")) {
      if (!Args.unsignedValue(MaxPerFamily, /*AllowZero=*/true))
        return 2;
    } else if (Args.is("--all-minimal")) {
      AllMinimal = true;
    } else if (Args.is("--ww-fences")) {
      Opts.IncludeWWOnlyFences = true;
    } else if (Args.is("--catalogue") || Args.is("--catalog")) {
      UseCatalogue = true;
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }

  if (!ModelName.empty()) {
    Opts.TargetModel = modelByName(ModelName);
    if (!Opts.TargetModel) {
      std::fprintf(stderr, "cats_repair: unknown model '%s'\n",
                   ModelName.c_str());
      return 2;
    }
  }

  // Gather the tests: files first (sorted per directory), catalogue, then
  // the battery pipeline.
  if (Paths.empty() && !UseCatalogue && BatteryArch.empty())
    UseCatalogue = true;
  std::vector<LitmusTest> Battery;
  if (!BatteryArch.empty()) {
    Arch A;
    if (!parseArch(BatteryArch, A)) {
      std::fprintf(stderr, "cats_repair: unknown architecture '%s'\n",
                   BatteryArch.c_str());
      return 2;
    }
    Battery = generateBattery(A, MaxPerFamily);
  }

  auto Loaded =
      loadCampaignTests(Paths, UseCatalogue, Filter, std::move(Battery));
  if (!Loaded) {
    std::fprintf(stderr, "cats_repair: %s\n", Loaded.message().c_str());
    return 2;
  }
  for (const std::string &Problem : Loaded->Errors)
    std::fprintf(stderr, "cats_repair: %s\n", Problem.c_str());
  const bool LoadFailed = !Loaded->Errors.empty();
  std::vector<LitmusTest> Tests = std::move(Loaded->Tests);
  if (Tests.empty()) {
    std::fprintf(stderr, "cats_repair: no tests to repair\n");
    return 2;
  }

  // Run the campaign. Repair work is mutants judged, not tests, so the
  // progress line counts mutants (the total is the lattice's to know).
  cli::applyObsFlags(Obs);
  obs::ProgressReporter Progress("cats_repair mutants", 0, Obs.Progress);
  Opts.OnRound = [&Progress](unsigned, unsigned long long Mutants, size_t) {
    Progress.update(Mutants);
  };
  RepairEngine Engine(Opts);
  RepairReport Report = Engine.run(Tests);
  Progress.finish();

  if (!Quiet) {
    for (const TestRepairResult &T : Report.Tests) {
      if (AllMinimal) {
        std::printf("%s\n", repairTextReport(T).c_str());
        continue;
      }
      // Compact line: verdict plus the cheapest repair.
      std::printf("%-34s %-14s", T.TestName.c_str(), T.verdict());
      if (!T.Error.empty())
        std::printf(" %s", T.Error.c_str());
      else if (const RepairSet *Best = T.cheapest())
        std::printf(" %s cost %u", Best->name().c_str(), Best->Cost);
      std::printf("\n");
    }
    std::printf("\n%zu tests, %llu mutants judged in %u rounds, "
                "%u worker(s), %.3fs\n",
                Report.Tests.size(), Report.MutantsEvaluated, Report.Rounds,
                Report.Jobs, Report.WallSeconds);
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_repair: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    JsonValue Root = repairReportToJson(Report);
    cli::attachMetrics(Root, Obs);
    Out << Root.dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  const int ObsFailed = cli::finishObs("cats_repair", Obs, Quiet);
  return (LoadFailed || !Report.allOk() || ObsFailed) ? 1 : 0;
}
