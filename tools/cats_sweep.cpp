//===- cats_sweep.cpp - Parallel litmus campaign runner -------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign CLI over src/sweep: load litmus tests from files,
/// directories and/or the built-in figure catalogue, run every test against
/// a model set with one shared candidate enumeration per test, distributed
/// over a worker pool, and report as a summary table, classic herd text,
/// and/or a machine-readable JSON report (docs/sweep.md). The campaign
/// flags (--shard, --cache, --checkpoint/--resume; docs/campaigns.md)
/// switch to the streamed engine so corpora far beyond memory can run in
/// cooperating resumable shards.
///
///   cats_sweep                          # built-in catalogue, all models
///   cats_sweep --jobs 4 litmus/         # a directory of .litmus files
///   cats_sweep --models SC,TSO mp.litmus --herd
///   cats_sweep --catalogue --json report.json
///   cats_sweep corpus/ --shard 2/4 --cache .cats-cache --json shard-2.json
///
//===----------------------------------------------------------------------===//

#include "CampaignCli.h"
#include "CliCommon.h"
#include "litmus/TestFilter.h"
#include "model/Registry.h"
#include "sweep/SweepEngine.h"

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

using namespace cats;

namespace {

int usage(const char *Argv0) {
  std::vector<cli::FlagDoc> Flags = {
      {"--jobs N", "worker threads (default: hardware concurrency)"},
      {"--models A,B,C", "comma-separated model names (default: all).\n"
                         "Known: SC, TSO, PSO, RMO, C++RA, Power, ARM,\n"
                         "Power-ARM, ARM llh"},
      {"--filter REGEX", "keep only tests whose name matches"},
      {"--catalogue", "add the built-in figure catalogue to the inputs"},
      {"--batch N", "streaming batch size for campaign runs (default: 64)"},
      {"--backend B", "judging backend: pruned (default), naive, or bmc\n"
                      "(bmc reports lower-bound allowed counts; see\n"
                      "docs/enumeration.md)"},
      {"--json FILE", "write the cats-sweep-report/1 JSON report"},
      {"--witness", "capture per-(test, model) witnesses into the JSON\n"
                    "report's cats-witness/1 section (docs/explain.md)"},
      {"--herd", "print the classic herd block per test x model"},
      {"--quiet", "suppress the summary table"}};
  for (const cli::FlagDoc &F : cli::campaignFlagDocs(/*WithCheckpoint=*/true))
    Flags.push_back(F);
  for (const cli::FlagDoc &F : cli::obsFlagDocs())
    Flags.push_back(F);
  return cli::printUsage(
      Argv0, "[options] [<file.litmus>|<dir>]...",
      "Runs a parallel shared-enumeration sweep: every test is compiled\n"
      "and its candidate space enumerated once, with all selected models\n"
      "checked against each candidate in the same pass.\n"
      "\n"
      "Inputs: .litmus files, directories (scanned for *.litmus), and/or\n"
      "the built-in figure catalogue. With no input, the catalogue runs.\n"
      "\n"
      "The campaign flags (--shard/--cache/--checkpoint/--resume) stream\n"
      "the corpus in batches; see docs/campaigns.md for the workflow.",
      Flags);
}

} // namespace

int main(int argc, char **argv) {
  unsigned Jobs = 0, Batch = 64;
  JudgeBackend Backend = JudgeBackend::Pruned;
  bool UseCatalogue = false, Herd = false, Quiet = false, Witness = false;
  std::string JsonPath, Filter;
  std::vector<std::string> ModelNames;
  std::vector<std::string> Paths;
  cli::CampaignFlags Campaign;
  cli::ObsFlags Obs;

  cli::ArgCursor Args("cats_sweep", argc, argv);
  while (Args.next()) {
    if (Args.isHelp())
      return usage(argv[0]);
    if (int Took = cli::parseCampaignFlag(Args, "cats_sweep",
                                          /*WithCheckpoint=*/true, Campaign)) {
      if (Took < 0)
        return 2;
    } else if (int TookObs = cli::parseObsFlag(Args, "cats_sweep", Obs)) {
      if (TookObs < 0)
        return 2;
    } else if (Args.is("--jobs")) {
      if (!Args.unsignedValue(Jobs))
        return 2;
    } else if (Args.is("--models")) {
      if (!Args.commaList(ModelNames))
        return 2;
    } else if (Args.is("--filter")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      Filter = V;
    } else if (Args.is("--catalogue") || Args.is("--catalog")) {
      UseCatalogue = true;
    } else if (Args.is("--batch")) {
      if (!Args.unsignedValue(Batch))
        return 2;
    } else if (Args.is("--backend")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      if (!parseJudgeBackend(V, Backend)) {
        std::fprintf(stderr,
                     "cats_sweep: unknown backend '%s' (expected "
                     "naive, pruned, or bmc)\n",
                     V);
        return 2;
      }
    } else if (Args.is("--json")) {
      const char *V = Args.value();
      if (!V)
        return 2;
      JsonPath = V;
    } else if (Args.is("--witness")) {
      Witness = true;
    } else if (Args.is("--herd")) {
      Herd = true;
    } else if (Args.is("--quiet")) {
      Quiet = true;
    } else if (Args.isFlag()) {
      Args.unknownOption();
      return usage(argv[0]);
    } else {
      Paths.push_back(Args.arg());
    }
  }
  if (Status S = cli::validateCampaignFlags(Campaign); S.failed()) {
    std::fprintf(stderr, "cats_sweep: %s\n", S.message().c_str());
    return 2;
  }
  if (Campaign.active() && Herd) {
    // The herd blocks need each test's final condition, which the
    // streamed path deliberately does not materialize.
    std::fprintf(stderr, "cats_sweep: --herd does not combine with the "
                         "campaign flags\n");
    return 2;
  }

  // Resolve the model set.
  auto Resolved = resolveModels(ModelNames);
  if (!Resolved) {
    std::fprintf(stderr, "cats_sweep: %s\n", Resolved.message().c_str());
    return 2;
  }
  std::vector<const Model *> Models = Resolved.take();

  if (Paths.empty() && !UseCatalogue)
    UseCatalogue = true;

  cli::applyObsFlags(Obs);
  obs::ProgressReporter Progress("cats_sweep", 0, Obs.Progress);

  SweepOptions EngineOpts;
  EngineOpts.Jobs = Jobs;
  EngineOpts.Backend = Backend;
  EngineOpts.Witness = Witness;
  SweepEngine Engine(EngineOpts);
  SweepReport Report;
  std::vector<LitmusTest> Tests; // materialized path only, for --herd
  bool LoadFailed = false;

  // --progress reports per streamed batch, so on its own (no campaign
  // flags) it routes through the streamed engine too — identical report,
  // live pulse. --herd keeps the materialized path.
  if (Campaign.active() || (Obs.Progress && !Herd)) {
    // Streamed campaign: tests parse lazily at pull time, flow through
    // the shard filter and the result cache, and checkpoint per batch.
    std::vector<std::string> LoadErrors;
    auto Source = streamCampaignTests(Paths, UseCatalogue, Filter,
                                      &LoadErrors);
    if (!Source) {
      std::fprintf(stderr, "cats_sweep: %s\n", Source.message().c_str());
      return 2;
    }
    const std::string Spec =
        "tool=cats_sweep;paths=" + joinStrings(Paths, ",") +
        ";catalogue=" + (UseCatalogue ? "1" : "0") + ";filter=" + Filter +
        ";models=" + joinStrings(cli::modelNamesOf(Models), ",") +
        ";shard=" + Campaign.Shard.toString();
    auto Swept = cli::runCampaignSweep("cats_sweep", Engine, Source.take(),
                                       Models, Batch, Campaign, Spec,
                                       &Progress);
    for (const std::string &Problem : LoadErrors)
      std::fprintf(stderr, "cats_sweep: %s\n", Problem.c_str());
    LoadFailed = !LoadErrors.empty();
    if (!Swept) {
      std::fprintf(stderr, "cats_sweep: %s\n", Swept.message().c_str());
      return 2;
    }
    Report = Swept.take();
  } else {
    // Gather the tests: files first (sorted per directory), catalogue
    // after.
    auto Loaded = loadCampaignTests(Paths, UseCatalogue, Filter);
    if (!Loaded) {
      std::fprintf(stderr, "cats_sweep: %s\n", Loaded.message().c_str());
      return 2;
    }
    for (const std::string &Problem : Loaded->Errors)
      std::fprintf(stderr, "cats_sweep: %s\n", Problem.c_str());
    LoadFailed = !Loaded->Errors.empty();
    Tests = std::move(Loaded->Tests);
    if (Tests.empty()) {
      std::fprintf(stderr, "cats_sweep: no tests to run\n");
      return 2;
    }
    Report = Engine.run(makeJobs(Tests, Models));
  }
  Progress.finish();

  // Summary table: one row per test, one verdict column per model.
  if (!Quiet) {
    std::printf("%-34s %10s %10s", "test", "cands", "consist");
    for (const Model *M : Models)
      std::printf(" %-10s", M->name().c_str());
    std::printf("\n");
    for (const SweepTestResult &T : Report.Tests) {
      std::printf("%-34s", T.TestName.c_str());
      if (!T.Error.empty()) {
        std::printf("  ERROR: %s\n", T.Error.c_str());
        continue;
      }
      std::printf(" %10llu %10llu", T.Result.CandidatesTotal,
                  T.Result.CandidatesConsistent);
      for (const SimulationResult &R : T.Result.PerModel)
        std::printf(" %-10s", R.verdict());
      std::printf("\n");
    }
    std::printf("\n%zu tests x %zu models, %u worker(s), %.3fs\n",
                Report.Tests.size(), Models.size(), Report.Jobs,
                Report.WallSeconds);
    if (Report.CacheUsed)
      std::printf("cache: %llu hit(s), %llu miss(es)\n", Report.CacheHits,
                  Report.CacheMisses);
  }

  // Classic herd blocks.
  if (Herd) {
    for (size_t I = 0; I < Report.Tests.size(); ++I) {
      const SweepTestResult &T = Report.Tests[I];
      if (!T.Error.empty())
        continue;
      for (const SimulationResult &R : T.Result.PerModel)
        std::printf("\n%s", herdStyleReport(R, Tests[I].Final).c_str());
    }
  }

  // JSON report.
  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath);
    if (!Out) {
      std::fprintf(stderr, "cats_sweep: cannot write %s\n",
                   JsonPath.c_str());
      return 1;
    }
    JsonValue Root = cli::campaignSweepJson(Report, Campaign);
    cli::attachMetrics(Root, Obs);
    Out << Root.dump();
    if (!Quiet)
      std::printf("wrote %s\n", JsonPath.c_str());
  }

  const int ObsFailed = cli::finishObs("cats_sweep", Obs, Quiet);
  return (LoadFailed || !Report.allOk() || ObsFailed) ? 1 : 0;
}
