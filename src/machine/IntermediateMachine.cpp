//===- IntermediateMachine.cpp - The operational machine of Sec. 7 --------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "machine/IntermediateMachine.h"

#include <unordered_set>
#include <vector>

using namespace cats;

namespace {

/// One exploration of the machine for a fixed candidate execution.
class Explorer {
public:
  Explorer(const Execution &Exe, const Model &M, uint64_t StateLimit,
           bool ExploreAll)
      : Exe(Exe), StateLimit(StateLimit), ExploreAll(ExploreAll) {
    // Static relations; the machine consults them in every premise.
    PoLoc = Exe.poLoc();
    Co = Exe.Co;
    Prop = M.prop(Exe);
    PpoFences = M.ppo(Exe) | M.fences(Exe);
    FencesRel = M.fences(Exe);
    Relation HbStar = M.happensBefore(Exe).reflexiveTransitiveClosure();
    PropHbStar = Prop.compose(HbStar);

    // Label layout: program writes get commit + coherence-point labels,
    // reads get satisfy + commit labels.
    for (const Event &E : Exe.events()) {
      if (E.isWrite() && !E.IsInit)
        Writes.push_back(E.Id);
      else if (E.isRead())
        Reads.push_back(E.Id);
    }
    NumLabels = 2 * Writes.size() + 2 * Reads.size();
    assert(NumLabels <= 64 && "machine exploration limited to 64 labels");

    // rf is a function of the read.
    RfOf.assign(Exe.numEvents(), -1);
    for (auto [W, R] : Exe.Rf.pairs())
      RfOf[R] = static_cast<int>(W);
  }

  MachineResult run() {
    MachineResult Result;
    search(0, Result);
    return Result;
  }

private:
  //===--------------------------------------------------------------------===//
  // Label/state bookkeeping
  //===--------------------------------------------------------------------===//

  size_t cwLabel(size_t WriteIdx) const { return WriteIdx; }
  size_t cpwLabel(size_t WriteIdx) const {
    return Writes.size() + WriteIdx;
  }
  size_t srLabel(size_t ReadIdx) const {
    return 2 * Writes.size() + ReadIdx;
  }
  size_t crLabel(size_t ReadIdx) const {
    return 2 * Writes.size() + Reads.size() + ReadIdx;
  }

  static bool fired(uint64_t State, size_t Label) {
    return (State >> Label) & 1;
  }

  /// Committed-writes test: initial writes are always committed.
  bool inCw(uint64_t State, EventId W) const {
    if (Exe.event(W).IsInit)
      return true;
    for (size_t I = 0; I < Writes.size(); ++I)
      if (Writes[I] == W)
        return fired(State, cwLabel(I));
    return false;
  }

  bool inCpw(uint64_t State, EventId W) const {
    if (Exe.event(W).IsInit)
      return true;
    for (size_t I = 0; I < Writes.size(); ++I)
      if (Writes[I] == W)
        return fired(State, cpwLabel(I));
    return false;
  }

  bool inSr(uint64_t State, EventId R) const {
    for (size_t I = 0; I < Reads.size(); ++I)
      if (Reads[I] == R)
        return fired(State, srLabel(I));
    return false;
  }

  bool inCr(uint64_t State, EventId R) const {
    for (size_t I = 0; I < Reads.size(); ++I)
      if (Reads[I] == R)
        return fired(State, crLabel(I));
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Premises (Fig. 30)
  //===--------------------------------------------------------------------===//

  bool canCommitWrite(uint64_t State, EventId W) const {
    // (CW: SC PER LOCATION/coWW) and (CW: PROPAGATION): no po-loc- or
    // prop-later write already committed.
    for (EventId Other : Exe.writes().toVector()) {
      if (Other == W || !inCw(State, Other))
        continue;
      if (PoLoc.test(W, Other) || Prop.test(W, Other))
        return false;
    }
    // (CW: fences & WR): no fences-later read already satisfied.
    for (EventId R : Reads)
      if (inSr(State, R) && FencesRel.test(W, R))
        return false;
    return true;
  }

  bool canReachCoherencePoint(uint64_t State, EventId W) const {
    // (CPW: WRITE IS COMMITTED).
    if (!inCw(State, W))
      return false;
    for (EventId Other : Exe.writes().toVector()) {
      if (Other == W || !inCpw(State, Other))
        continue;
      // (CPW: po-loc AND cpw IN ACCORD) and (CPW: PROPAGATION); the path
      // must also agree with the candidate's coherence order, since
      // co(E, p) is read off the cp labels.
      if (PoLoc.test(W, Other) || Prop.test(W, Other) ||
          Co.test(W, Other))
        return false;
    }
    // PROPAGATION linearisation: prop orders propagation points, which for
    // a write is its coherence point and for a read its satisfaction.
    // Every prop-predecessor of W must already have propagated: writes at
    // coherence point, reads satisfied. This is how cycles of co | prop
    // that thread through read events (strong A-cumulativity: sb+ffences,
    // rwc+ffences, ...) are rejected operationally.
    for (EventId Other : Exe.writes().toVector())
      if (Other != W && Prop.test(Other, W) && !inCpw(State, Other))
        return false;
    for (EventId R : Reads)
      if (Prop.test(R, W) && !inSr(State, R))
        return false;
    return true;
  }

  bool canSatisfyRead(uint64_t State, EventId R) const {
    EventId W = static_cast<EventId>(RfOf[R]);
    // (SR: WRITE IS EITHER LOCAL OR COMMITTED).
    bool Local = PoLoc.test(W, R);
    if (!Local && !inCw(State, W))
      return false;
    // (SR: PPO/ii0 & RR): no ppo/fences-later read already satisfied.
    for (EventId Other : Reads)
      if (Other != R && inSr(State, Other) && PpoFences.test(R, Other))
        return false;
    // PROPAGATION linearisation at the read's satisfaction point (see
    // canReachCoherencePoint): all prop-predecessors must have propagated.
    for (EventId Other : Exe.writes().toVector())
      if (Prop.test(Other, R) && !inCpw(State, Other))
        return false;
    for (EventId Other : Reads)
      if (Other != R && Prop.test(Other, R) && !inSr(State, Other))
        return false;
    // (SR: OBSERVATION): no write co-after W that is prop;hb*-before R.
    for (EventId Other : Exe.writes().toVector())
      if (Co.test(W, Other) && PropHbStar.test(Other, R))
        return false;
    return true;
  }

  bool visible(uint64_t State, EventId W, EventId R) const {
    // Last same-location write po-loc-before R (wb) and first po-loc-after
    // (wa); the thread's po order is the event-id order within the thread.
    int Wb = -1, Wa = -1;
    for (EventId Other : Exe.writesTo(Exe.event(R).Loc)) {
      if (PoLoc.test(Other, R) && (Wb < 0 || PoLoc.test(
                                                  static_cast<EventId>(Wb),
                                                  Other)))
        Wb = static_cast<int>(Other);
      if (PoLoc.test(R, Other) && (Wa < 0 || PoLoc.test(
                                                  Other,
                                                  static_cast<EventId>(Wa))))
        Wa = static_cast<int>(Other);
    }
    // W equal to or co-after wb.
    if (Wb >= 0 && W != static_cast<EventId>(Wb) &&
        !Co.test(static_cast<EventId>(Wb), W))
      return false;
    // W po-loc-before R, or co-before wa.
    if (Wa >= 0 && !PoLoc.test(W, R) && !Co.test(W, static_cast<EventId>(Wa)))
      return false;
    // coRR refinement (end of Sec. 7.1): cr records (write, read) pairs and
    // visibility consults them. We apply it in both po-loc directions —
    // a committed po-loc-earlier read must not have seen a co-later write,
    // and a committed po-loc-later read must not have seen a co-earlier
    // write — since reads may commit out of po-loc order.
    for (EventId Other : Reads) {
      if (!inCr(State, Other))
        continue;
      EventId OtherW = static_cast<EventId>(RfOf[Other]);
      if (PoLoc.test(Other, R) && Co.test(W, OtherW))
        return false;
      if (PoLoc.test(R, Other) && Co.test(OtherW, W))
        return false;
    }
    return true;
  }

  bool canCommitRead(uint64_t State, EventId R) const {
    // (CR: READ IS SATISFIED).
    if (!inSr(State, R))
      return false;
    // (CR: SC PER LOCATION / coWR, coRW{1,2}, coRR).
    if (!visible(State, static_cast<EventId>(RfOf[R]), R))
      return false;
    // (CR: PPO/cc0 & RW): no ppo/fences-later committed write.
    for (EventId W : Writes)
      if (inCw(State, W) && PpoFences.test(R, W))
        return false;
    // (CR: PPO/(ci0|cc0) & RR): no ppo/fences-later satisfied read.
    for (EventId Other : Reads)
      if (Other != R && inSr(State, Other) && PpoFences.test(R, Other))
        return false;
    return true;
  }

  //===--------------------------------------------------------------------===//
  // Search
  //===--------------------------------------------------------------------===//

  bool search(uint64_t State, MachineResult &Result) {
    if (State == (NumLabels == 64 ? ~uint64_t{0}
                                  : ((uint64_t{1} << NumLabels) - 1))) {
      Result.Accepted = true;
      return true;
    }
    if (Failed.count(State))
      return false;
    ++Result.StatesVisited;
    if (StateLimit && Result.StatesVisited > StateLimit) {
      Result.HitLimit = true;
      return false;
    }
    bool Found = false;
    for (size_t Label = 0; Label < NumLabels; ++Label) {
      if (fired(State, Label))
        continue;
      bool Enabled;
      if (Label < Writes.size())
        Enabled = canCommitWrite(State, Writes[Label]);
      else if (Label < 2 * Writes.size())
        Enabled =
            canReachCoherencePoint(State, Writes[Label - Writes.size()]);
      else if (Label < 2 * Writes.size() + Reads.size())
        Enabled = canSatisfyRead(State, Reads[Label - 2 * Writes.size()]);
      else
        Enabled = canCommitRead(
            State, Reads[Label - 2 * Writes.size() - Reads.size()]);
      if (!Enabled)
        continue;
      if (search(State | (uint64_t{1} << Label), Result)) {
        if (!ExploreAll)
          return true;
        Found = true;
      }
      if (Result.HitLimit)
        return Found;
    }
    // In explore-all mode every state is memoised once; in witness mode
    // only dead states are, so re-entry can still succeed elsewhere.
    if (ExploreAll || !Found)
      Failed.insert(State);
    return Found;
  }

  const Execution &Exe;
  uint64_t StateLimit;
  bool ExploreAll;
  Relation PoLoc, Co, Prop, PpoFences, FencesRel, PropHbStar;
  std::vector<EventId> Writes, Reads;
  std::vector<int> RfOf;
  size_t NumLabels = 0;
  std::unordered_set<uint64_t> Failed;
};

} // namespace

MachineResult cats::machineAccepts(const Execution &Exe, const Model &M,
                                   uint64_t StateLimit, bool ExploreAll) {
  Explorer E(Exe, M, StateLimit, ExploreAll);
  return E.run();
}
