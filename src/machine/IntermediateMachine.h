//===- IntermediateMachine.h - The operational machine of Sec. 7 -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's intermediate machine (Fig. 30): an operational reformulation
/// of the axiomatic model as a transition system over labels
///
///   c(w)    commit write
///   cp(w)   write reaches coherence point
///   s(w,r)  satisfy read (from the angelically-guessed write w)
///   c(w,r)  commit read
///
/// with state (cw, cpw, sr, cr). Theorem 7.1 proves the machine equivalent
/// to the axiomatic model; the test suite checks this empirically on every
/// candidate execution of the figure catalogue.
///
/// Given a full candidate execution (rf and co fixed), acceptance asks
/// whether some total order of the labels fires every transition. Because
/// every premise of Fig. 30 depends only on the *sets* of already-fired
/// labels, the machine state is exactly that set, and acceptance is a
/// reachability search over subsets with memoisation of failed states.
///
/// The coRR-forbidding refinement from the end of Sec. 7.1 (cr records the
/// satisfying write and visibility checks consult it) is implemented.
///
/// This machine is also the operational cost baseline of Table IX: its
/// exploration is exponentially more expensive than the axiomatic checks,
/// which is the paper's argument for axiomatic simulation.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MACHINE_INTERMEDIATEMACHINE_H
#define CATS_MACHINE_INTERMEDIATEMACHINE_H

#include "event/Execution.h"
#include "model/Model.h"

#include <cstdint>

namespace cats {

/// Result of exploring the machine on one candidate.
struct MachineResult {
  /// True when some label path fires all transitions.
  bool Accepted = false;
  /// Number of distinct states visited (search effort; Table IX).
  uint64_t StatesVisited = 0;
  /// True when the search was abandoned at the state limit.
  bool HitLimit = false;
};

/// Explores the intermediate machine on candidate \p Exe under \p M (which
/// supplies ppo, fences and prop exactly as the axiomatic side does).
/// \p StateLimit bounds the number of visited states; 0 means unlimited.
/// With \p ExploreAll the search does not stop at the first accepting
/// path but visits the whole reachable state space, like an operational
/// simulator enumerating every behaviour (ppcmem's cost shape).
MachineResult machineAccepts(const Execution &Exe, const Model &M,
                             uint64_t StateLimit = 0,
                             bool ExploreAll = false);

} // namespace cats

#endif // CATS_MACHINE_INTERMEDIATEMACHINE_H
