//===- Catalog.cpp - The paper's litmus tests, with verdicts --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/Catalog.h"

#include "litmus/Parser.h"

#include <cassert>

using namespace cats;

namespace {

/// Builds one entry from litmus text; the text must parse.
CatalogEntry entry(const char *Figure, const char *PaperVerdict,
                   const char *Text,
                   std::map<std::string, bool> Expected,
                   const char *Notes = "") {
  auto Test = parseLitmus(Text);
  assert(Test && "catalogue test failed to parse");
  CatalogEntry E;
  E.Figure = Figure;
  E.PaperVerdict = PaperVerdict;
  E.Notes = Notes;
  E.Test = Test.take();
  E.Expected = std::move(Expected);
  return E;
}

std::vector<CatalogEntry> buildCatalog() {
  std::vector<CatalogEntry> C;

  //===------------------------------------------------------------------===//
  // Fig. 6: the five SC PER LOCATION patterns.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 6", "coWW forbidden everywhere", R"(
Power coWW
P0:
  st x, #1
  st x, #2
exists (x=1)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false},
                     {"ARM llh", false},
                     {"C++RA", false}}));

  C.push_back(entry("Fig. 6", "coRW1 forbidden everywhere", R"(
Power coRW1
P0:
  ld r1, x
  st x, #1
exists (0:r1=1)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false},
                     {"ARM llh", false}}));

  C.push_back(entry("Fig. 6", "coRW2 forbidden everywhere", R"(
Power coRW2
P0:
  ld r1, x
  st x, #1
P1:
  st x, #2
exists (0:r1=2 /\ x=2)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false},
                     {"ARM llh", false}},
                    "final x=2 pins Wx=1 co-before Wx=2, so the read takes "
                    "its value from a write co-after a po-later write"));

  C.push_back(entry("Fig. 6", "coWR forbidden everywhere", R"(
Power coWR
P0:
  st x, #1
  ld r1, x
P1:
  st x, #2
exists (0:r1=2 /\ x=1)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false},
                     {"ARM llh", false}}));

  C.push_back(entry("Fig. 6", "coRR forbidden; officially allowed by "
                              "RMO/pre-Power4; ARM llh tolerates it",
                    R"(
Power coRR
P0:
  ld r1, x
  ld r2, x
P1:
  st x, #1
exists (0:r1=1 /\ 0:r2=0)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false},
                     {"ARM llh", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 7: load buffering.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 7", "lb+addrs (lb+ppos) forbidden by NO THIN AIR",
                    R"(
Power lb+addrs
P0:
  ld r1, x
  xor r2, r1, r1
  st y[r2], #1
P1:
  ld r1, y
  xor r2, r1, r1
  st x[r2], #1
exists (0:r1=1 /\ 1:r1=1)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", false},
                     {"ARM", false}}));

  C.push_back(entry("Fig. 7 (variant)",
                    "lb without dependencies allowed on Power/ARM, "
                    "forbidden on TSO",
                    R"(
Power lb
P0:
  ld r1, x
  st y, #1
P1:
  ld r1, y
  st x, #1
exists (0:r1=1 /\ 1:r1=1)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", true},
                     {"ARM", true}}));

  C.push_back(entry("Fig. 7 (variant)", "lb+ctrls forbidden (ctrl to a "
                                        "write is preserved)",
                    R"(
Power lb+ctrls
P0:
  ld r1, x
  beq r1
  st y, #1
P1:
  ld r1, y
  beq r1
  st x, #1
exists (0:r1=1 /\ 1:r1=1)
)",
                    {{"Power", false}, {"ARM", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 8: message passing.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 8", "mp+lwsync+addr forbidden by OBSERVATION", R"(
Power mp+lwsync+addr
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)",
                    {{"SC", false}, {"TSO", false}, {"Power", false}}));

  C.push_back(entry("Fig. 8 (variant)",
                    "bare mp allowed on Power/ARM, forbidden on TSO", R"(
Power mp
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", true},
                     {"ARM", true},
                     {"C++RA", false}}));

  C.push_back(entry("Fig. 8 (variant)",
                    "mp+lwsync+po: no read-side order, allowed", R"(
Power mp+lwsync+po
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 8 (variant)",
                    "mp+addrs: no write-side fence, allowed on Power", R"(
Power mp+addrs
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 8 (variant)", "mp+syncs forbidden", R"(
Power mp+sync+addr
P0:
  st x, #1
  sync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)",
                    {{"Power", false}}));

  C.push_back(entry("Fig. 8 (ARM)", "mp+dmb+addr forbidden on ARM", R"(
ARM mp+dmb+addr
P0:
  st x, #1
  dmb
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 1:r3=0)
)",
                    {{"ARM", false}, {"Power-ARM", false},
                     {"ARM llh", false}}));

  C.push_back(entry("Fig. 8 (ARM)", "mp+dmb+ctrlisb forbidden on ARM", R"(
ARM mp+dmb+ctrlisb
P0:
  st x, #1
  dmb
  st y, #1
P1:
  ld r1, y
  beq r1
  isb
  ld r2, x
exists (1:r1=1 /\ 1:r2=0)
)",
                    {{"ARM", false}, {"ARM llh", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 11: write-to-read causality.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 11",
                    "wrc+lwsync+addr forbidden (A-cumulativity)", R"(
Power wrc+lwsync+addr
P0:
  st x, #1
P1:
  ld r1, x
  lwsync
  st y, #1
P2:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 2:r1=1 /\ 2:r3=0)
)",
                    {{"SC", false}, {"TSO", false}, {"Power", false}}));

  C.push_back(entry("Fig. 11 (variant)",
                    "wrc+addrs: no fence, allowed on Power", R"(
Power wrc+addrs
P0:
  st x, #1
P1:
  ld r1, x
  xor r2, r1, r1
  st y[r2], #1
P2:
  ld r1, y
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 2:r1=1 /\ 2:r3=0)
)",
                    {{"TSO", false}, {"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 12: isa2.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 12",
                    "isa2+lwsync+addr+addr forbidden (B-cumulativity)", R"(
Power isa2+lwsync+addrs
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  st z[r2], #1
P2:
  ld r1, z
  xor r2, r1, r1
  ld r3, x[r2]
exists (1:r1=1 /\ 2:r1=1 /\ 2:r3=0)
)",
                    {{"SC", false}, {"TSO", false}, {"Power", false}}));

  C.push_back(entry("Fig. 12 (variant)", "bare isa2 allowed on Power", R"(
Power isa2
P0:
  st x, #1
  st y, #1
P1:
  ld r1, y
  st z, #1
P2:
  ld r1, z
  ld r2, x
exists (1:r1=1 /\ 2:r1=1 /\ 2:r2=0)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 13: 2+2w and w+rw+2w.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 13(a)", "2+2w+lwsyncs forbidden (PROPAGATION)",
                    R"(
Power 2+2w+lwsyncs
P0:
  st x, #2
  lwsync
  st y, #1
P1:
  st y, #2
  lwsync
  st x, #1
exists (x=2 /\ y=2)
)",
                    {{"SC", false}, {"TSO", false}, {"Power", false}}));

  C.push_back(entry("Fig. 13(a) (variant)",
                    "bare 2+2w allowed on Power, forbidden on TSO; C++ R-A "
                    "allows it (HBVSMO is only irreflexive)",
                    R"(
Power 2+2w
P0:
  st x, #2
  st y, #1
P1:
  st y, #2
  st x, #1
exists (x=2 /\ y=2)
)",
                    {{"SC", false},
                     {"TSO", false},
                     {"Power", true},
                     {"ARM", true},
                     {"C++RA", true}}));

  C.push_back(entry("Fig. 13(b)", "w+rw+2w+lwsyncs forbidden", R"(
Power w+rw+2w+lwsyncs
P0:
  st x, #2
P1:
  ld r1, x
  lwsync
  st y, #1
P2:
  st y, #2
  lwsync
  st x, #1
exists (1:r1=2 /\ y=2 /\ x=2)
)",
                    {{"Power", false}}));

  C.push_back(entry("Fig. 13(b) (variant)", "bare w+rw+2w allowed on Power",
                    R"(
Power w+rw+2w
P0:
  st x, #2
P1:
  ld r1, x
  st y, #1
P2:
  st y, #2
  st x, #1
exists (1:r1=2 /\ y=2 /\ x=2)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 14: store buffering.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 14", "sb+ffences forbidden", R"(
Power sb+syncs
P0:
  st x, #1
  sync
  ld r1, y
P1:
  st y, #1
  sync
  ld r1, x
exists (0:r1=0 /\ 1:r1=0)
)",
                    {{"SC", false}, {"Power", false}}));

  C.push_back(entry("Fig. 14 (variant)",
                    "bare sb allowed even on TSO; forbidden on SC", R"(
TSO sb
P0:
  st x, #1
  ld r1, y
P1:
  st y, #1
  ld r1, x
exists (0:r1=0 /\ 1:r1=0)
)",
                    {{"SC", false},
                     {"TSO", true},
                     {"Power", true},
                     {"ARM", true},
                     {"C++RA", true}}));

  C.push_back(entry("Fig. 14 (variant)", "sb+mfences forbidden on TSO", R"(
TSO sb+mfences
P0:
  st x, #1
  mfence
  ld r1, y
P1:
  st y, #1
  mfence
  ld r1, x
exists (0:r1=0 /\ 1:r1=0)
)",
                    {{"TSO", false}}));

  C.push_back(entry("Fig. 14 (variant)",
                    "sb+lwsyncs allowed: lwsync does not order WR pairs",
                    R"(
Power sb+lwsyncs
P0:
  st x, #1
  lwsync
  ld r1, y
P1:
  st y, #1
  lwsync
  ld r1, x
exists (0:r1=0 /\ 1:r1=0)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 15: rwc.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 15", "rwc+ffences forbidden", R"(
Power rwc+syncs
P0:
  st x, #1
P1:
  ld r1, x
  sync
  ld r2, y
P2:
  st y, #1
  sync
  ld r1, x
exists (1:r1=1 /\ 1:r2=0 /\ 2:r1=0)
)",
                    {{"SC", false}, {"Power", false}}));

  C.push_back(entry("Fig. 15 (variant)",
                    "rwc+lwsyncs allowed: needs full fences", R"(
Power rwc+lwsyncs
P0:
  st x, #1
P1:
  ld r1, x
  lwsync
  ld r2, y
P2:
  st y, #1
  lwsync
  ld r1, x
exists (1:r1=1 /\ 1:r2=0 /\ 2:r1=0)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 16: r and s.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 16", "r+ffences forbidden", R"(
Power r+syncs
P0:
  st x, #1
  sync
  st y, #1
P1:
  st y, #2
  sync
  ld r1, x
exists (y=2 /\ 1:r1=0)
)",
                    {{"SC", false}, {"Power", false}}));

  C.push_back(entry("Fig. 16 (variant)",
                    "r+lwsync+sync allowed by the model (architect's "
                    "intent; unobserved on hardware)",
                    R"(
Power r+lwsync+sync
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  st y, #2
  sync
  ld r1, x
exists (y=2 /\ 1:r1=0)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 16", "s+lwfence+ppo forbidden", R"(
Power s+lwsync+addr
P0:
  st x, #2
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  st x[r2], #1
exists (1:r1=1 /\ x=2)
)",
                    {{"SC", false}, {"Power", false}}));

  C.push_back(entry("Fig. 39", "bare s allowed on Power", R"(
Power s
P0:
  st x, #2
  st y, #1
P1:
  ld r1, y
  st x, #1
exists (1:r1=1 /\ x=2)
)",
                    {{"SC", false}, {"Power", true}, {"ARM", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 19: w+rwc and eieio.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 19",
                    "w+rwc+eieio+addr+sync allowed: eieio only orders "
                    "write-write pairs, and the pattern has two fr steps",
                    R"(
Power w+rwc+eieio+addr+sync
P0:
  st x, #1
  eieio
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, z[r2]
P2:
  st z, #1
  sync
  ld r1, x
exists (1:r1=1 /\ 1:r3=0 /\ 2:r1=0)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 19 (variant)",
                    "w+rwc+sync+addr+sync forbidden: full fence restores "
                    "the ordering",
                    R"(
Power w+rwc+sync+addr+sync
P0:
  st x, #1
  sync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, z[r2]
P2:
  st z, #1
  sync
  ld r1, x
exists (1:r1=1 /\ 1:r3=0 /\ 2:r1=0)
)",
                    {{"Power", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 20: iriw.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 20", "iriw+ffences forbidden", R"(
Power iriw+syncs
P0:
  st x, #1
P1:
  ld r1, x
  sync
  ld r2, y
P2:
  st y, #1
P3:
  ld r1, y
  sync
  ld r2, x
exists (1:r1=1 /\ 1:r2=0 /\ 3:r1=1 /\ 3:r2=0)
)",
                    {{"SC", false}, {"Power", false}}));

  C.push_back(entry("Fig. 20 (variant)",
                    "iriw+lwsyncs allowed: the famous lwsync weakness", R"(
Power iriw+lwsyncs
P0:
  st x, #1
P1:
  ld r1, x
  lwsync
  ld r2, y
P2:
  st y, #1
P3:
  ld r1, y
  lwsync
  ld r2, x
exists (1:r1=1 /\ 1:r2=0 /\ 3:r1=1 /\ 3:r2=0)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 20 (ARM)", "iriw+dmbs forbidden on ARM", R"(
ARM iriw+dmbs
P0:
  st x, #1
P1:
  ld r1, x
  dmb
  ld r2, y
P2:
  st y, #1
P3:
  ld r1, y
  dmb
  ld r2, x
exists (1:r1=1 /\ 1:r2=0 /\ 3:r1=1 /\ 3:r2=0)
)",
                    {{"ARM", false}, {"ARM llh", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 29: lb+addrs+ww vs lb+datas+ww.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 29",
                    "lb+addrs+ww forbidden: addr;po is in cc0", R"(
Power lb+addrs+ww
P0:
  ld r1, x
  xor r2, r1, r1
  st y[r2], #1
  st z, #1
P1:
  ld r3, z
  xor r4, r3, r3
  st w[r4], #1
  st x, #1
exists (0:r1=1 /\ 1:r3=1)
)",
                    {{"Power", false}}));

  C.push_back(entry("Fig. 29 (variant)",
                    "lb+datas+ww allowed and observed: data;po is not in "
                    "cc0",
                    R"(
Power lb+datas+ww
P0:
  ld r1, x
  st y, r1
  st z, #1
P1:
  ld r3, z
  st w, r3
  st x, #1
exists (0:r1=1 /\ 1:r3=1)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 31/34: observed ARM anomalies (core patterns).
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 31", "coRSDWI: a coRR violation on z; forbidden "
                               "by ARM, tolerated by ARM llh",
                    R"(
ARM coRSDWI
P0:
  st z, #1
P1:
  ld r1, z
  ld r2, z
P2:
  st z, #2
exists (1:r1=2 /\ 1:r2=1 /\ z=2)
)",
                    {{"ARM", false}, {"ARM llh", true}},
                    "core coRR violation of the observed coRSDWI "
                    "behaviour"));

  C.push_back(entry("Fig. 34",
                    "moredetour0052: a coRW2 violation; forbidden even "
                    "under ARM llh",
                    R"(
ARM moredetour0052
P0:
  ld r1, y
  st y, #3
P1:
  st y, #4
exists (0:r1=4 /\ y=4)
)",
                    {{"ARM", false}, {"ARM llh", false}},
                    "core coRW2 violation of the observed moredetour0052 "
                    "behaviour"));

  //===------------------------------------------------------------------===//
  // Fig. 32/33: early-commit behaviours (Power-ARM vs proposed ARM).
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 32",
                    "mp+dmb+fri-rfi-ctrlisb: desired on ARM; the Power-ARM "
                    "model wrongly forbids it",
                    R"(
ARM mp+dmb+fri-rfi-ctrlisb
P0:
  st x, #1
  dmb
  st y, #1
P1:
  ld r1, y
  st y, #2
  ld r2, y
  beq r2
  isb
  ld r3, x
exists (1:r1=1 /\ 1:r2=2 /\ 1:r3=0)
)",
                    {{"ARM", true}, {"Power-ARM", false}}));

  C.push_back(entry("Fig. 33",
                    "lb+data+fri-rfi-ctrl: allowed by the proposed ARM "
                    "model",
                    R"(
ARM lb+data+fri-rfi-ctrl
P0:
  ld r1, x
  st y, r1
P1:
  ld r1, y
  st y, #2
  ld r2, y
  beq r2
  st x, #1
exists (0:r1=1 /\ 1:r1=1 /\ 1:r2=2)
)",
                    {{"ARM", true}, {"Power-ARM", false}}));

  C.push_back(entry("Fig. 33",
                    "s+dmb+fri-rfi-data: allowed by the proposed ARM model",
                    R"(
ARM s+dmb+fri-rfi-data
P0:
  st x, #2
  dmb
  st y, #1
P1:
  mov r5, #1
  ld r1, y
  st y, #2
  ld r2, y
  xor r3, r2, r2
  add r4, r3, r5
  st x, r4
exists (1:r1=1 /\ 1:r2=2 /\ x=2)
)",
                    {{"ARM", true}, {"Power-ARM", false}},
                    "the data dependency flows through xor+add so the "
                    "stored value stays 1"));

  C.push_back(entry("Fig. 33",
                    "lb+data+data-wsi-rfi-addr: allowed by the proposed "
                    "ARM model",
                    R"(
ARM lb+data+data-wsi-rfi-addr
P0:
  ld r1, x
  st y, r1
P1:
  ld r1, y
  st z, r1
  st z, #2
  ld r2, z
  xor r3, r2, r2
  st x[r3], #1
exists (0:r1=1 /\ 1:r1=1 /\ 1:r2=2)
)",
                    {{"ARM", true}, {"Power-ARM", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 35: OBSERVATION anomaly that survives llh.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 35",
                    "mp+dmb+pos-ctrlisb+bis: violates OBSERVATION; "
                    "observed only as a Tegra3 anomaly",
                    R"(
ARM mp+dmb+pos-ctrlisb+bis
P0:
  st x, #1
  dmb
  st y, #1
P1:
  ld r1, y
  ld r2, y
  beq r2
  isb
  ld r3, x
P2:
  st y, #2
exists (1:r1=1 /\ 1:r2=1 /\ 1:r3=0)
)",
                    {{"ARM", false}, {"ARM llh", false}}));

  //===------------------------------------------------------------------===//
  // Fig. 36/37: the tests separating our Power model from prior models.
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 36",
                    "mp+lwsync+addr-po-detour: observed on Power hardware; "
                    "wrongly forbidden by the PLDI'11 model, allowed by "
                    "ours",
                    R"(
Power mp+lwsync+addr-po-detour
P0:
  st x, #2
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, z[r2]
  ld r4, x
P2:
  st x, #1
  ld r5, x
exists (1:r1=1 /\ 1:r3=0 /\ 1:r4=0 /\ 2:r5=2 /\ x=2)
)",
                    {{"Power", true}}));

  C.push_back(entry("Fig. 37",
                    "mp+lwsync+addr-bigdetour-addr: allowed by our model, "
                    "forbidden by the CAV'12 model, unobserved",
                    R"(
Power mp+lwsync+addr-bigdetour-addr
P0:
  st x, #1
  lwsync
  st y, #1
P1:
  ld r1, y
  xor r2, r1, r1
  ld r3, z[r2]
  ld r4, w
  xor r5, r4, r4
  ld r6, x[r5]
P2:
  st z, #1
  lwsync
  st w, #1
exists (1:r1=1 /\ 1:r3=0 /\ 1:r4=1 /\ 1:r6=0)
)",
                    {{"Power", true}}));

  //===------------------------------------------------------------------===//
  // Fig. 39: ww+rw+r (extended s).
  //===------------------------------------------------------------------===//

  C.push_back(entry("Fig. 39",
                    "ww+rw+r: the s pattern with the reading thread made "
                    "explicit",
                    R"(
Power ww+rw+r
P0:
  st x, #2
  st y, #1
P1:
  ld r1, y
  st x, #1
P2:
  ld r2, x
exists (1:r1=1 /\ 2:r2=1 /\ x=2)
)",
                    {{"SC", false}, {"Power", true}}));

  return C;
}

} // namespace

const std::vector<CatalogEntry> &cats::figureCatalog() {
  static std::vector<CatalogEntry> C = buildCatalog();
  return C;
}

const CatalogEntry *cats::catalogEntry(const std::string &TestName) {
  for (const CatalogEntry &E : figureCatalog())
    if (E.Test.Name == TestName)
      return &E;
  return nullptr;
}
