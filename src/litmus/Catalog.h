//===- Catalog.h - The paper's litmus tests, with verdicts ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every litmus pattern that appears as a figure in the paper (Figs. 6-20,
/// 27-37, 39 and the named variants discussed in the text), encoded in the
/// pseudo-ISA, together with the verdict the paper assigns to it under each
/// relevant model. The catalogue powers both the unit tests (our models must
/// reproduce every documented verdict) and bench_figures (which prints the
/// paper-vs-measured table).
///
/// Tests observed only as hardware anomalies (Figs. 31/34) are encoded by
/// their core violation pattern; the entry's Notes field says so.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_CATALOG_H
#define CATS_LITMUS_CATALOG_H

#include "litmus/LitmusTest.h"

#include <map>
#include <string>
#include <vector>

namespace cats {

/// One catalogue entry.
struct CatalogEntry {
  /// Paper reference, e.g. "Fig. 8".
  std::string Figure;
  /// What the paper says, e.g. "forbidden on Power".
  std::string PaperVerdict;
  /// Free-form notes (substitutions, reconstruction caveats).
  std::string Notes;
  LitmusTest Test;
  /// Expected reachability of the final condition per model display name:
  /// true = Allow, false = Forbid. Only models with a documented verdict
  /// appear.
  std::map<std::string, bool> Expected;
};

/// The full figure catalogue, in paper order.
const std::vector<CatalogEntry> &figureCatalog();

/// Looks up a catalogue entry by test name; nullptr when absent.
const CatalogEntry *catalogEntry(const std::string &TestName);

} // namespace cats

#endif // CATS_LITMUS_CATALOG_H
