//===- Instruction.h - Pseudo-assembly for litmus tests -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The litmus pseudo-ISA. It abstracts over Power / ARM / x86 assembly the
/// way the paper's examples do (Sec. 5): loads, stores (optionally with an
/// index register creating an address dependency, true or false), register
/// arithmetic (xor for false dependencies), compare-and-branch (for control
/// dependencies), and the architecture's fences.
///
/// Control flow is straight-line: branches emit a branch decision (and hence
/// ctrl / ctrl+cfence dependencies per Fig. 22) but always fall through, as
/// in the paper's litmus idiom where the branch target is the sequentially
/// next instruction ("this applies even if the branch target is the
/// sequentially next instruction", Power ISA quote in Sec. 6).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_INSTRUCTION_H
#define CATS_LITMUS_INSTRUCTION_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace cats {

/// Register index, private to a thread. r0..r31.
using Register = int;

/// An instruction operand: either a register or an immediate.
struct Operand {
  enum class Kind : uint8_t { None, Reg, Imm };
  Kind OpKind = Kind::None;
  int Payload = 0;

  static Operand none() { return {}; }
  static Operand reg(Register R) { return {Kind::Reg, R}; }
  static Operand imm(int64_t V) {
    return {Kind::Imm, static_cast<int>(V)};
  }

  friend bool operator==(const Operand &A, const Operand &B) {
    return A.OpKind == B.OpKind && A.Payload == B.Payload;
  }
  friend bool operator!=(const Operand &A, const Operand &B) {
    return !(A == B);
  }

  bool isReg() const { return OpKind == Kind::Reg; }
  bool isImm() const { return OpKind == Kind::Imm; }
  Register asReg() const {
    assert(isReg() && "operand is not a register");
    return Payload;
  }
  int64_t asImm() const {
    assert(isImm() && "operand is not an immediate");
    return Payload;
  }
};

/// Instruction opcodes of the pseudo-ISA.
enum class Opcode : uint8_t {
  Load,      ///< Dst <- [Loc], optional AddrDep index register.
  Store,     ///< [Loc] <- Src1 (reg or imm), optional AddrDep register.
  Move,      ///< Dst <- Src1.
  Xor,       ///< Dst <- Src1 ^ Src2 (xor r,r yields 0: false dependencies).
  Add,       ///< Dst <- Src1 + Src2.
  CmpBranch, ///< Branch on Src1 (always falls through; emits branch event).
  Fence      ///< Memory or control fence named by FenceName.
};

/// One pseudo-assembly instruction.
struct Instruction {
  Opcode Op = Opcode::Fence;
  Register Dst = -1;
  Operand Src1 = Operand::none();
  Operand Src2 = Operand::none();
  /// Memory location name for Load/Store.
  std::string Loc;
  /// Index register participating in the address computation of a
  /// Load/Store (-1 if none). Creates an addr dependency from any load that
  /// taints it, even when the value cannot change the address (false
  /// dependency, Sec. 5.2.1).
  Register AddrDep = -1;
  /// Fence name for Opcode::Fence (see event/Execution.h fence namespace).
  std::string FenceName;

  //===--------------------------------------------------------------------===//
  // Convenience constructors
  //===--------------------------------------------------------------------===//

  static Instruction load(Register Dst, std::string Loc,
                          Register AddrDep = -1) {
    Instruction I;
    I.Op = Opcode::Load;
    I.Dst = Dst;
    I.Loc = std::move(Loc);
    I.AddrDep = AddrDep;
    return I;
  }

  static Instruction store(std::string Loc, Operand Src,
                           Register AddrDep = -1) {
    Instruction I;
    I.Op = Opcode::Store;
    I.Loc = std::move(Loc);
    I.Src1 = Src;
    I.AddrDep = AddrDep;
    return I;
  }

  static Instruction move(Register Dst, Operand Src) {
    Instruction I;
    I.Op = Opcode::Move;
    I.Dst = Dst;
    I.Src1 = Src;
    return I;
  }

  static Instruction xorOp(Register Dst, Register A, Register B) {
    Instruction I;
    I.Op = Opcode::Xor;
    I.Dst = Dst;
    I.Src1 = Operand::reg(A);
    I.Src2 = Operand::reg(B);
    return I;
  }

  static Instruction addOp(Register Dst, Register A, Register B) {
    Instruction I;
    I.Op = Opcode::Add;
    I.Dst = Dst;
    I.Src1 = Operand::reg(A);
    I.Src2 = Operand::reg(B);
    return I;
  }

  static Instruction cmpBranch(Register Src) {
    Instruction I;
    I.Op = Opcode::CmpBranch;
    I.Src1 = Operand::reg(Src);
    return I;
  }

  static Instruction fenceNamed(std::string Name) {
    Instruction I;
    I.Op = Opcode::Fence;
    I.FenceName = std::move(Name);
    return I;
  }

  /// True for control fences (isync on Power, isb on ARM): they take part
  /// in ctrl+cfence dependencies rather than the propagation order.
  bool isControlFence() const {
    return Op == Opcode::Fence && (FenceName == "isync" || FenceName == "isb");
  }

  /// Structural equality; the symmetry reduction uses it to detect
  /// threads with literally identical code.
  friend bool operator==(const Instruction &A, const Instruction &B) {
    return A.Op == B.Op && A.Dst == B.Dst && A.Src1 == B.Src1 &&
           A.Src2 == B.Src2 && A.Loc == B.Loc && A.AddrDep == B.AddrDep &&
           A.FenceName == B.FenceName;
  }
  friend bool operator!=(const Instruction &A, const Instruction &B) {
    return !(A == B);
  }

  /// Renders in the pseudo-assembly syntax accepted by the parser.
  std::string toString() const;
};

/// A straight-line thread body.
using ThreadCode = std::vector<Instruction>;

} // namespace cats

#endif // CATS_LITMUS_INSTRUCTION_H
