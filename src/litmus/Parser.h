//===- Parser.h - Text format for litmus tests ----------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the litmus text format. Example:
///
/// \code
///   Power mp+lwsync+addr
///   { x=0; y=0 }
///   P0:
///     st x, #1
///     lwsync
///     st y, #1
///   P1:
///     ld r1, y
///     xor r2, r1, r1
///     ld r3, x[r2]
///   exists (1:r1=1 /\ 1:r3=0)
/// \endcode
///
/// `//` starts a comment. Instructions: `ld rD, loc[rI]?`,
/// `st loc[rI]?, (#imm|rS)`, `mov rD, (#imm|rS)`, `xor|add rD, rA, rB`,
/// `beq rS`, or a bare fence name (`sync`, `lwsync`, `eieio`, `isync`,
/// `dmb`, `dsb`, `dmb.st`, `dsb.st`, `isb`, `mfence`).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_PARSER_H
#define CATS_LITMUS_PARSER_H

#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <string>

namespace cats {

/// Parses a litmus test from \p Text. Errors carry a line number.
Expected<LitmusTest> parseLitmus(const std::string &Text);

/// Reads and parses a litmus file from \p Path.
Expected<LitmusTest> parseLitmusFile(const std::string &Path);

} // namespace cats

#endif // CATS_LITMUS_PARSER_H
