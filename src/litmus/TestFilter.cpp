//===- TestFilter.cpp - Regex test selection for campaigns ----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/TestFilter.h"

#include "litmus/Catalog.h"
#include "litmus/Parser.h"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <regex>

using namespace cats;

Expected<std::regex> cats::compileFilterRegex(const std::string &Pattern) {
  using Fail = Expected<std::regex>;
  try {
    return std::regex(Pattern, std::regex::ECMAScript);
  } catch (const std::regex_error &E) {
    return Fail::error("bad filter regex '" + Pattern + "': " + E.what());
  }
}

Expected<std::vector<LitmusTest>>
cats::filterTestsByName(const std::vector<LitmusTest> &Tests,
                        const std::string &Pattern) {
  using Fail = Expected<std::vector<LitmusTest>>;
  if (Pattern.empty())
    return Tests;
  auto Re = compileFilterRegex(Pattern);
  if (!Re)
    return Fail::error(Re.message());
  std::vector<LitmusTest> Out;
  for (const LitmusTest &Test : Tests)
    if (std::regex_search(Test.Name, *Re))
      Out.push_back(Test);
  return Out;
}

Status cats::collectLitmusFiles(const std::string &Path,
                                std::vector<std::string> &Files) {
  namespace fs = std::filesystem;
  std::error_code Ec;
  if (fs::is_directory(Path, Ec)) {
    std::vector<std::string> Found;
    for (const auto &Entry : fs::directory_iterator(Path, Ec))
      if (Entry.path().extension() == ".litmus")
        Found.push_back(Entry.path().string());
    std::sort(Found.begin(), Found.end());
    Files.insert(Files.end(), Found.begin(), Found.end());
    return Status::success();
  }
  if (fs::is_regular_file(Path, Ec))
    Files.push_back(Path);
  else
    return Status::error("no such file or directory: " + Path);
  return Status::success();
}

Expected<CampaignTests>
cats::loadCampaignTests(const std::vector<std::string> &Paths,
                        bool UseCatalogue, const std::string &Filter,
                        std::vector<LitmusTest> Extra) {
  using Fail = Expected<CampaignTests>;
  std::vector<std::string> Files;
  for (const std::string &Path : Paths) {
    Status Collected = collectLitmusFiles(Path, Files);
    if (Collected.failed())
      return Fail::error(Collected.message());
  }

  CampaignTests Out;
  for (const std::string &File : Files) {
    auto Test = parseLitmusFile(File);
    if (!Test) {
      Out.Errors.push_back(File + ": " + Test.message());
      continue;
    }
    Out.Tests.push_back(Test.take());
  }
  if (UseCatalogue)
    for (const CatalogEntry &Entry : figureCatalog())
      Out.Tests.push_back(Entry.Test);
  for (LitmusTest &Test : Extra)
    Out.Tests.push_back(std::move(Test));

  auto Filtered = filterTestsByName(Out.Tests, Filter);
  if (!Filtered)
    return Fail::error(Filtered.message());
  Out.Tests = Filtered.take();
  return Out;
}

Expected<TestSource>
cats::streamCampaignTests(const std::vector<std::string> &Paths,
                          bool UseCatalogue, const std::string &Filter,
                          std::vector<std::string> *Errors) {
  using Fail = Expected<TestSource>;
  auto Files = std::make_shared<std::vector<std::string>>();
  for (const std::string &Path : Paths) {
    Status Collected = collectLitmusFiles(Path, *Files);
    if (Collected.failed())
      return Fail::error(Collected.message());
  }
  auto Re = std::make_shared<std::regex>();
  const bool HasFilter = !Filter.empty();
  if (HasFilter) {
    auto Compiled = compileFilterRegex(Filter);
    if (!Compiled)
      return Fail::error(Compiled.message());
    *Re = Compiled.take();
  }

  // Pull state: next file index, then next catalogue index.
  auto FileIdx = std::make_shared<size_t>(0);
  auto CatIdx = std::make_shared<size_t>(0);
  return TestSource([Files, Re, HasFilter, FileIdx, CatIdx, UseCatalogue,
                     Errors](LitmusTest &Out) -> bool {
    auto Keep = [&](const LitmusTest &Test) {
      return !HasFilter || std::regex_search(Test.Name, *Re);
    };
    while (*FileIdx < Files->size()) {
      const std::string &File = (*Files)[(*FileIdx)++];
      auto Test = parseLitmusFile(File);
      if (!Test) {
        if (Errors)
          Errors->push_back(File + ": " + Test.message());
        continue;
      }
      if (!Keep(*Test))
        continue;
      Out = Test.take();
      return true;
    }
    if (UseCatalogue) {
      const std::vector<CatalogEntry> &Catalog = figureCatalog();
      while (*CatIdx < Catalog.size()) {
        const CatalogEntry &Entry = Catalog[(*CatIdx)++];
        if (!Keep(Entry.Test))
          continue;
        Out = Entry.Test;
        return true;
      }
    }
    return false;
  });
}
