//===- LitmusTest.cpp - Litmus tests and final conditions -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/LitmusTest.h"

#include "event/Execution.h"
#include "obs/Metrics.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <set>

using namespace cats;

std::string Instruction::toString() const {
  switch (Op) {
  case Opcode::Load:
    if (AddrDep >= 0)
      return strFormat("ld r%d, %s[r%d]", Dst, Loc.c_str(), AddrDep);
    return strFormat("ld r%d, %s", Dst, Loc.c_str());
  case Opcode::Store: {
    std::string Target =
        AddrDep >= 0 ? strFormat("%s[r%d]", Loc.c_str(), AddrDep) : Loc;
    if (Src1.isImm())
      return strFormat("st %s, #%lld", Target.c_str(),
                       static_cast<long long>(Src1.asImm()));
    return strFormat("st %s, r%d", Target.c_str(), Src1.asReg());
  }
  case Opcode::Move:
    if (Src1.isImm())
      return strFormat("mov r%d, #%lld", Dst,
                       static_cast<long long>(Src1.asImm()));
    return strFormat("mov r%d, r%d", Dst, Src1.asReg());
  case Opcode::Xor:
    return strFormat("xor r%d, r%d, r%d", Dst, Src1.asReg(), Src2.asReg());
  case Opcode::Add:
    return strFormat("add r%d, r%d, r%d", Dst, Src1.asReg(), Src2.asReg());
  case Opcode::CmpBranch:
    return strFormat("beq r%d", Src1.asReg());
  case Opcode::Fence:
    return FenceName;
  }
  return "<bad instruction>";
}

bool cats::parseArch(const std::string &Name, Arch &Out) {
  // Case-insensitive: litmus headers write "Power"/"PPC", the CLIs take
  // "power".
  std::string Lower;
  for (char C : Name)
    Lower += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  if (Lower == "sc") {
    Out = Arch::SC;
    return true;
  }
  if (Lower == "tso" || Lower == "x86") {
    Out = Arch::TSO;
    return true;
  }
  if (Lower == "power" || Lower == "ppc") {
    Out = Arch::Power;
    return true;
  }
  if (Lower == "arm") {
    Out = Arch::ARM;
    return true;
  }
  if (Lower == "c++ra" || Lower == "cppra" || Lower == "ra") {
    Out = Arch::CppRA;
    return true;
  }
  return false;
}

std::string cats::archName(Arch A) {
  switch (A) {
  case Arch::SC:
    return "SC";
  case Arch::TSO:
    return "TSO";
  case Arch::Power:
    return "Power";
  case Arch::ARM:
    return "ARM";
  case Arch::CppRA:
    return "C++RA";
  }
  return "?";
}

bool cats::archHasFence(Arch A, const std::string &FenceName) {
  switch (A) {
  case Arch::SC:
  case Arch::CppRA:
    return false;
  case Arch::TSO:
    return FenceName == fence::MFence;
  case Arch::Power:
    return FenceName == fence::Sync || FenceName == fence::LwSync ||
           FenceName == fence::Eieio || FenceName == fence::ISync;
  case Arch::ARM:
    return FenceName == fence::Dmb || FenceName == fence::Dsb ||
           FenceName == fence::DmbSt || FenceName == fence::DsbSt ||
           FenceName == fence::Isb;
  }
  return false;
}

const char *cats::archControlFence(Arch A) {
  return A == Arch::ARM ? fence::Isb : fence::ISync;
}

std::string ConditionAtom::toString() const {
  if (AtomKind == Kind::RegEquals)
    return strFormat("%d:r%d=%lld", Thread, Reg,
                     static_cast<long long>(Val));
  return strFormat("%s=%lld", Loc.c_str(), static_cast<long long>(Val));
}

std::string Condition::toString() const {
  if (trivial())
    return "exists (true)";
  std::vector<std::string> DisjunctStrings;
  for (const auto &Conj : Disjuncts) {
    std::vector<std::string> AtomStrings;
    for (const auto &Atom : Conj)
      AtomStrings.push_back(Atom.toString());
    DisjunctStrings.push_back(joinStrings(AtomStrings, " /\\ "));
  }
  return "exists (" + joinStrings(DisjunctStrings, " \\/ ") + ")";
}

Value Outcome::reg(ThreadId T, Register R) const {
  if (T < 0 || static_cast<size_t>(T) >= Regs.size())
    return 0;
  auto It = Regs[T].find(R);
  return It == Regs[T].end() ? 0 : It->second;
}

Value Outcome::mem(const std::string &Loc) const {
  auto It = Memory.find(Loc);
  return It == Memory.end() ? 0 : It->second;
}

bool Outcome::satisfies(const Condition &Cond) const {
  if (Cond.trivial())
    return true;
  for (const auto &Conj : Cond.Disjuncts) {
    bool All = true;
    for (const auto &Atom : Conj) {
      Value Actual = Atom.AtomKind == ConditionAtom::Kind::RegEquals
                         ? reg(Atom.Thread, Atom.Reg)
                         : mem(Atom.Loc);
      if (Actual != Atom.Val) {
        All = false;
        break;
      }
    }
    if (All)
      return true;
  }
  return false;
}

namespace {

void appendInt(std::string &Out, long long V) {
  char Buf[24];
  char *End = Buf + sizeof(Buf);
  char *P = End;
  const bool Neg = V < 0;
  unsigned long long U =
      Neg ? ~static_cast<unsigned long long>(V) + 1 : static_cast<unsigned long long>(V);
  do {
    *--P = static_cast<char>('0' + U % 10);
    U /= 10;
  } while (U);
  if (Neg)
    *--P = '-';
  Out.append(P, End);
}

// Hot path: a key is built for every fresh outcome both backends
// materialize, so this formats digits directly instead of going through
// strFormat's double vsnprintf.
std::string buildOutcomeKey(const Outcome &O) {
  std::string Out;
  Out.reserve(64);
  for (size_t T = 0; T < O.Regs.size(); ++T)
    for (const auto &[R, V] : O.Regs[T]) {
      appendInt(Out, static_cast<long long>(T));
      Out += ":r";
      appendInt(Out, R);
      Out += '=';
      appendInt(Out, V);
      Out += ';';
    }
  for (const auto &[Loc, V] : O.Memory) {
    Out += Loc;
    Out += '=';
    appendInt(Out, V);
    Out += ';';
  }
  return Out;
}

} // namespace

std::string Outcome::key() const {
  return KeyCacheEnabled ? keyRef() : buildOutcomeKey(*this);
}

const std::string &Outcome::keyRef() const {
  // Static instrument handles: this runs per outcome-set comparison, so
  // each tick must stay a sharded relaxed add, not a registry lookup.
  static obs::Counter &Builds = obs::counter("memo.outcome_key_builds");
  static obs::Counter &Hits = obs::counter("memo.outcome_key_hits");
  if (!KeyCacheValid) {
    KeyCache = buildOutcomeKey(*this);
    KeyCacheValid = true;
    if (obs::metricsEnabled())
      Builds.add(1);
  } else if (obs::metricsEnabled()) {
    Hits.add(1);
  }
  return KeyCache;
}

bool Outcome::operator<(const Outcome &Other) const {
  // Compare via the caches when both sides have them (the common case in
  // outcome sets, where stored elements were inserted cache-warm).
  if (KeyCacheEnabled && Other.KeyCacheEnabled)
    return keyRef() < Other.keyRef();
  return key() < Other.key();
}

bool Outcome::operator==(const Outcome &Other) const {
  if (KeyCacheEnabled && Other.KeyCacheEnabled)
    return keyRef() == Other.keyRef();
  return key() == Other.key();
}

std::vector<std::string> LitmusTest::locations() const {
  std::vector<std::string> Out;
  std::set<std::string> Seen;
  auto Note = [&](const std::string &Loc) {
    if (!Loc.empty() && Seen.insert(Loc).second)
      Out.push_back(Loc);
  };
  for (const auto &Thread : Threads)
    for (const auto &Instr : Thread)
      Note(Instr.Loc);
  for (const auto &[Loc, _] : Init)
    Note(Loc);
  for (const auto &Conj : Final.Disjuncts)
    for (const auto &Atom : Conj)
      if (Atom.AtomKind == ConditionAtom::Kind::MemEquals)
        Note(Atom.Loc);
  return Out;
}

std::string LitmusTest::validate() const {
  for (size_t T = 0; T < Threads.size(); ++T) {
    for (size_t I = 0; I < Threads[T].size(); ++I) {
      const Instruction &Instr = Threads[T][I];
      auto Where = [&](const char *Problem) {
        return strFormat("P%zu instruction %zu (%s): %s", T, I,
                         Instr.toString().c_str(), Problem);
      };
      switch (Instr.Op) {
      case Opcode::Load:
        if (Instr.Dst < 0)
          return Where("load needs a destination register");
        if (Instr.Loc.empty())
          return Where("load needs a location");
        break;
      case Opcode::Store:
        if (Instr.Loc.empty())
          return Where("store needs a location");
        if (Instr.Src1.OpKind == Operand::Kind::None)
          return Where("store needs a source operand");
        break;
      case Opcode::Move:
        if (Instr.Dst < 0 || Instr.Src1.OpKind == Operand::Kind::None)
          return Where("mov needs a destination and a source");
        break;
      case Opcode::Xor:
      case Opcode::Add:
        if (Instr.Dst < 0 || !Instr.Src1.isReg() || !Instr.Src2.isReg())
          return Where("alu op needs a destination and two registers");
        break;
      case Opcode::CmpBranch:
        if (!Instr.Src1.isReg())
          return Where("branch needs a register");
        break;
      case Opcode::Fence:
        if (!archHasFence(TargetArch, Instr.FenceName) &&
            !Instr.isControlFence())
          return Where(strFormat("fence '%s' is not available on %s",
                                 Instr.FenceName.c_str(),
                                 archName(TargetArch).c_str())
                           .c_str());
        if (Instr.isControlFence() && !archHasFence(TargetArch,
                                                    Instr.FenceName))
          return Where(strFormat("control fence '%s' is not available on %s",
                                 Instr.FenceName.c_str(),
                                 archName(TargetArch).c_str())
                           .c_str());
        break;
      }
    }
  }
  return "";
}

std::string LitmusTest::toString() const {
  std::string Out = archName(TargetArch) + " " + Name + "\n{ ";
  bool First = true;
  for (const auto &[Loc, V] : Init) {
    if (!First)
      Out += "; ";
    First = false;
    Out += strFormat("%s=%lld", Loc.c_str(), static_cast<long long>(V));
  }
  Out += " }\n";
  for (size_t T = 0; T < Threads.size(); ++T) {
    Out += strFormat("P%zu:\n", T);
    for (const auto &Instr : Threads[T])
      Out += "  " + Instr.toString() + "\n";
  }
  Out += Final.toString() + "\n";
  return Out;
}
