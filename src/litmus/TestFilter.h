//===- TestFilter.h - Regex test selection for campaigns ------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based test selection shared by the campaign CLIs (cats_sweep
/// --filter, cats_repair --filter): keep the tests whose name matches an
/// ECMAScript regular expression (partial match, so "mp" selects every mp
/// variant and "^mp$" exactly one).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_TESTFILTER_H
#define CATS_LITMUS_TESTFILTER_H

#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <functional>
#include <regex>
#include <string>
#include <vector>

namespace cats {

/// Compiles a campaign --filter pattern (ECMAScript; callers match
/// partially via std::regex_search). Fails with the regex diagnostic on a
/// malformed pattern. An empty pattern compiles to a match-everything
/// regex, but callers usually special-case it to skip matching entirely.
Expected<std::regex> compileFilterRegex(const std::string &Pattern);

/// Returns the subset of \p Tests whose name matches \p Pattern, in the
/// original order. Fails with the regex diagnostic on a malformed pattern;
/// an empty pattern keeps everything.
Expected<std::vector<LitmusTest>>
filterTestsByName(const std::vector<LitmusTest> &Tests,
                  const std::string &Pattern);

/// Expands \p Path into litmus files: a regular file is taken as-is, a
/// directory contributes its *.litmus entries in sorted order. Appends to
/// \p Files; fails when the path is neither.
Status collectLitmusFiles(const std::string &Path,
                          std::vector<std::string> &Files);

/// The tests a campaign CLI gathered, plus the per-file diagnostics for
/// inputs that failed to parse (the campaign still runs on the rest, but
/// the tool should exit nonzero when Errors is non-empty).
struct CampaignTests {
  std::vector<LitmusTest> Tests;
  std::vector<std::string> Errors;
};

/// The shared input pipeline of cats_sweep and cats_repair: expand
/// \p Paths into .litmus files (sorted per directory) and parse them,
/// append the built-in figure catalogue when \p UseCatalogue and then any
/// \p Extra tests (e.g. a diy battery), and keep the names matching
/// \p Filter. A bad path or a malformed regex fails the whole call;
/// per-file parse failures only land in CampaignTests::Errors.
Expected<CampaignTests> loadCampaignTests(
    const std::vector<std::string> &Paths, bool UseCatalogue,
    const std::string &Filter, std::vector<LitmusTest> Extra = {});

/// A pull-based litmus test source for batched campaigns: fills \p Out
/// and returns true, or returns false at end of stream. Sources are
/// stateful single-pass generators; SweepEngine::runStreamed drains one
/// in batches so a corpus of thousands never materializes at once.
using TestSource = std::function<bool(LitmusTest &Out)>;

/// The streaming twin of loadCampaignTests: the same inputs (paths
/// expanded to sorted .litmus files, then the catalogue), but each file
/// is parsed lazily at pull time. Parse failures are skipped and, when
/// \p Errors is non-null, appended there as they are encountered. Fails
/// up front on a bad path or malformed \p Filter regex.
Expected<TestSource> streamCampaignTests(
    const std::vector<std::string> &Paths, bool UseCatalogue,
    const std::string &Filter, std::vector<std::string> *Errors = nullptr);

} // namespace cats

#endif // CATS_LITMUS_TESTFILTER_H
