//===- MicroSemantics.cpp - Instruction semantics as micro-events ----------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/MicroSemantics.h"

#include "support/StringUtils.h"

#include <map>

using namespace cats;

std::string MicroEvent::toString() const {
  switch (Kind) {
  case MicroKind::MemRead:
    return strFormat("R%s", Loc.c_str());
  case MicroKind::MemWrite:
    return strFormat("W%s", Loc.c_str());
  case MicroKind::RegRead:
    if (Reg == ConditionRegister)
      return "RCR0";
    return strFormat("Rr%d", Reg);
  case MicroKind::RegWrite:
    if (Reg == ConditionRegister)
      return "WCR0";
    return strFormat("Wr%d", Reg);
  case MicroKind::Branch:
    return "branch";
  case MicroKind::Fence:
    return FenceName;
  }
  return "?";
}

MicroGraph MicroGraph::build(const LitmusTest &Test, ThreadId Thread) {
  MicroGraph Graph;
  assert(Thread >= 0 &&
         static_cast<size_t>(Thread) < Test.Threads.size() &&
         "thread out of range");
  const ThreadCode &Code = Test.Threads[Thread];

  // First pass: create the events and the iico edges, remembering them as
  // (from, to) pairs since the universe size is unknown until the end.
  std::vector<std::pair<EventId, EventId>> IicoPairs;
  std::vector<std::vector<EventId>> PerInstr(Code.size());

  auto Add = [&](int Instr, MicroKind Kind, Register Reg,
                 const std::string &Loc, const std::string &Fence,
                 MicroPort Port) {
    MicroEvent E;
    E.Id = static_cast<EventId>(Graph.Events.size());
    E.Thread = Thread;
    E.InstrIndex = Instr;
    E.Kind = Kind;
    E.Reg = Reg;
    E.Loc = Loc;
    E.FenceName = Fence;
    E.Port = Port;
    Graph.Events.push_back(E);
    PerInstr[Instr].push_back(E.Id);
    return E.Id;
  };

  for (size_t I = 0; I < Code.size(); ++I) {
    const Instruction &Instr = Code[I];
    int Idx = static_cast<int>(I);
    switch (Instr.Op) {
    case Opcode::Load: {
      // "lwz r2,0(r1)": read the address register(s), read memory, write
      // the destination register (Sec. 5's load diagram).
      EventId Mem = Add(Idx, MicroKind::MemRead, -1, Instr.Loc, "",
                        MicroPort::None);
      if (Instr.AddrDep >= 0) {
        EventId AddrIn = Add(Idx, MicroKind::RegRead, Instr.AddrDep, "",
                             "", MicroPort::Address);
        IicoPairs.push_back({AddrIn, Mem});
      }
      EventId Out = Add(Idx, MicroKind::RegWrite, Instr.Dst, "", "",
                        MicroPort::None);
      IicoPairs.push_back({Mem, Out});
      break;
    }
    case Opcode::Store: {
      // "stw r1,0(r2)": read address and value registers, then write
      // memory.
      EventId Mem = Add(Idx, MicroKind::MemWrite, -1, Instr.Loc, "",
                        MicroPort::None);
      if (Instr.AddrDep >= 0) {
        EventId AddrIn = Add(Idx, MicroKind::RegRead, Instr.AddrDep, "",
                             "", MicroPort::Address);
        IicoPairs.push_back({AddrIn, Mem});
      }
      if (Instr.Src1.isReg()) {
        EventId ValIn = Add(Idx, MicroKind::RegRead, Instr.Src1.asReg(),
                            "", "", MicroPort::Value);
        IicoPairs.push_back({ValIn, Mem});
      }
      break;
    }
    case Opcode::Move: {
      EventId Out = Add(Idx, MicroKind::RegWrite, Instr.Dst, "", "",
                        MicroPort::None);
      if (Instr.Src1.isReg()) {
        EventId In = Add(Idx, MicroKind::RegRead, Instr.Src1.asReg(), "",
                         "", MicroPort::None);
        IicoPairs.push_back({In, Out});
      }
      break;
    }
    case Opcode::Xor:
    case Opcode::Add: {
      // "xor r9,r1,r1": two register reads feeding a register write.
      EventId Out = Add(Idx, MicroKind::RegWrite, Instr.Dst, "", "",
                        MicroPort::None);
      EventId A = Add(Idx, MicroKind::RegRead, Instr.Src1.asReg(), "",
                      "", MicroPort::None);
      EventId B = Add(Idx, MicroKind::RegRead, Instr.Src2.asReg(), "",
                      "", MicroPort::None);
      IicoPairs.push_back({A, Out});
      IicoPairs.push_back({B, Out});
      break;
    }
    case Opcode::CmpBranch: {
      // Faithful two-stage expansion: "cmpwi rS" writes CR0, "bne" reads
      // CR0 and emits the branching decision. Both stages live in this
      // fused instruction, chained through rf-reg on CR0.
      EventId CmpIn = Add(Idx, MicroKind::RegRead, Instr.Src1.asReg(),
                          "", "", MicroPort::Condition);
      EventId CmpOut = Add(Idx, MicroKind::RegWrite, ConditionRegister,
                           "", "", MicroPort::None);
      IicoPairs.push_back({CmpIn, CmpOut});
      EventId BrIn = Add(Idx, MicroKind::RegRead, ConditionRegister, "",
                         "", MicroPort::Condition);
      EventId Br =
          Add(Idx, MicroKind::Branch, -1, "", "", MicroPort::None);
      IicoPairs.push_back({BrIn, Br});
      break;
    }
    case Opcode::Fence:
      Add(Idx, MicroKind::Fence, -1, "", Instr.FenceName,
          MicroPort::None);
      break;
    }
  }

  unsigned N = static_cast<unsigned>(Graph.Events.size());
  Graph.Iico = Relation::fromPairs(N, IicoPairs);

  // Program order: all events of earlier instructions before all events
  // of later instructions.
  Graph.Po = Relation(N);
  for (size_t I = 0; I < Code.size(); ++I)
    for (size_t J = I + 1; J < Code.size(); ++J)
      for (EventId From : PerInstr[I])
        for (EventId To : PerInstr[J])
          Graph.Po.set(From, To);

  // rf-reg: each register read takes its value from the latest register
  // write to the same register that precedes it (iico within the
  // instruction decides "before" for same-instruction pairs: the branch's
  // CR0 read is iico-after the comparison's CR0 write).
  Graph.RfReg = Relation(N);
  for (const MicroEvent &Read : Graph.Events) {
    if (Read.Kind != MicroKind::RegRead)
      continue;
    int Latest = -1;
    for (const MicroEvent &Write : Graph.Events) {
      if (Write.Kind != MicroKind::RegWrite || Write.Reg != Read.Reg)
        continue;
      // "Before" is program order, or creation order within one
      // instruction (the comparison's CR0 write precedes the branch's
      // CR0 read inside the fused cmp+branch).
      auto Before = [&](EventId A, EventId B) {
        if (Graph.Po.test(A, B))
          return true;
        return Graph.Events[A].InstrIndex == Graph.Events[B].InstrIndex &&
               A < B;
      };
      if (!Before(Write.Id, Read.Id))
        continue;
      if (Latest < 0 || Before(static_cast<EventId>(Latest), Write.Id))
        Latest = static_cast<int>(Write.Id);
    }
    if (Latest >= 0)
      Graph.RfReg.set(static_cast<EventId>(Latest), Read.Id);
  }
  return Graph;
}

Relation MicroGraph::ddReg() const {
  // dd-reg = (rf-reg | iico)+ restricted to paths through registers and
  // ALU operations only: data-flow does not pass *through* a memory
  // access (Sec. 5.2), so memory events may appear only at the two ends
  // of a dd-reg path.
  unsigned N = static_cast<unsigned>(Events.size());
  EventSet NonMem(N);
  for (const MicroEvent &E : Events)
    if (!E.isMemory())
      NonMem.insert(E.Id);
  Relation Step = RfReg | Iico;
  Relation Inner = Step.restrict(NonMem, NonMem);
  return Step | Step.restrictRange(NonMem)
                    .compose(Inner.reflexiveTransitiveClosure())
                    .compose(Step.restrictDomain(NonMem));
}

std::string MicroGraph::toString() const {
  std::string Out;
  int CurrentInstr = -1;
  for (const MicroEvent &E : Events) {
    if (E.InstrIndex != CurrentInstr) {
      CurrentInstr = E.InstrIndex;
      Out += strFormat("instr %d:\n", CurrentInstr);
    }
    Out += strFormat("  e%u: %s\n", E.Id, E.toString().c_str());
  }
  Out += "iico: " + Iico.toString() + "\n";
  Out += "rf-reg: " + RfReg.toString() + "\n";
  return Out;
}

MicroDeps cats::deriveDependencies(const CompiledTest &Compiled) {
  const Execution &Skel = Compiled.skeleton();
  const LitmusTest &Test = Compiled.test();
  unsigned N = Skel.numEvents();
  MicroDeps Deps{Relation(N), Relation(N), Relation(N), Relation(N)};

  // Memory event of (thread, instruction index) in the skeleton.
  std::map<std::pair<ThreadId, int>, EventId> MemEventOf;
  for (const Event &E : Skel.events())
    if (E.Thread != InitThread)
      MemEventOf[{E.Thread, E.InstrIndex}] = E.Id;

  for (ThreadId T = 0; T < static_cast<ThreadId>(Test.numThreads()); ++T) {
    MicroGraph Graph = MicroGraph::build(Test, T);
    Relation Dd = Graph.ddReg();
    const auto &Micro = Graph.events();

    auto SkeletonMem = [&](const MicroEvent &E) -> int {
      auto It = MemEventOf.find({T, E.InstrIndex});
      return It == MemEventOf.end() ? -1 : static_cast<int>(It->second);
    };

    // addr/data: dd-reg from a memory read into the address/value entry
    // port of a po-later memory access.
    for (const MicroEvent &Src : Micro) {
      if (Src.Kind != MicroKind::MemRead)
        continue;
      int SrcMem = SkeletonMem(Src);
      if (SrcMem < 0)
        continue;
      for (const MicroEvent &PortRead : Micro) {
        if (PortRead.Kind != MicroKind::RegRead ||
            !Dd.test(Src.Id, PortRead.Id))
          continue;
        if (PortRead.Port != MicroPort::Address &&
            PortRead.Port != MicroPort::Value)
          continue;
        // The access fed by this port is the memory event of the same
        // instruction.
        for (const MicroEvent &Target : Micro) {
          if (Target.InstrIndex != PortRead.InstrIndex ||
              !Target.isMemory())
            continue;
          int DstMem = SkeletonMem(Target);
          if (DstMem < 0 || DstMem == SrcMem)
            continue;
          if (PortRead.Port == MicroPort::Address)
            Deps.Addr.set(static_cast<EventId>(SrcMem),
                          static_cast<EventId>(DstMem));
          else if (Target.Kind == MicroKind::MemWrite)
            Deps.Data.set(static_cast<EventId>(SrcMem),
                          static_cast<EventId>(DstMem));
        }
      }

      // ctrl = (dd-reg & RB); po and ctrl+cfence = (dd-reg & RB); cfence.
      for (const MicroEvent &Branch : Micro) {
        if (Branch.Kind != MicroKind::Branch ||
            !Dd.test(Src.Id, Branch.Id))
          continue;
        for (const MicroEvent &Target : Micro) {
          if (!Target.isMemory() ||
              !Graph.poMicro().test(Branch.Id, Target.Id))
            continue;
          int DstMem = SkeletonMem(Target);
          if (DstMem < 0 || DstMem == SrcMem)
            continue;
          Deps.Ctrl.set(static_cast<EventId>(SrcMem),
                        static_cast<EventId>(DstMem));
          // ctrl+cfence: a control fence between the branch and the
          // access.
          for (const MicroEvent &CFence : Micro) {
            if (CFence.Kind != MicroKind::Fence)
              continue;
            if (CFence.FenceName != "isync" && CFence.FenceName != "isb")
              continue;
            if (Graph.poMicro().test(Branch.Id, CFence.Id) &&
                Graph.poMicro().test(CFence.Id, Target.Id))
              Deps.CtrlCfence.set(static_cast<EventId>(SrcMem),
                                  static_cast<EventId>(DstMem));
          }
        }
      }
    }
  }
  return Deps;
}
