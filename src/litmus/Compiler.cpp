//===- Compiler.cpp - Litmus tests -> execution skeletons -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/Compiler.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace cats;

Expected<CompiledTest> CompiledTest::compile(const LitmusTest &Test) {
  std::string Problem = Test.validate();
  if (!Problem.empty())
    return Expected<CompiledTest>::error("invalid litmus test " + Test.Name +
                                         ": " + Problem);
  CompiledTest Out;
  Out.Source = Test;
  Out.buildEvents();
  Out.buildDependencies();
  Out.buildFences();
  return Out;
}

void CompiledTest::buildEvents() {
  // Initial writes first, one per location, with the initial value.
  for (const std::string &LocName : Source.locations()) {
    Location Loc = Skeleton.internLocation(LocName);
    Value Init = 0;
    auto It = Source.Init.find(LocName);
    if (It != Source.Init.end())
      Init = It->second;
    Skeleton.addEvent({.Thread = InitThread,
                       .Kind = EventKind::Write,
                       .Loc = Loc,
                       .Val = Init,
                       .IsInit = true});
  }

  // Then each thread's memory events, in program order.
  EventForInstr.assign(Source.numThreads(), {});
  for (ThreadId T = 0; T < static_cast<ThreadId>(Source.numThreads()); ++T) {
    const ThreadCode &Code = Source.Threads[T];
    EventForInstr[T].assign(Code.size(), -1);
    for (size_t I = 0; I < Code.size(); ++I) {
      const Instruction &Instr = Code[I];
      if (Instr.Op == Opcode::Load) {
        Location Loc = Skeleton.internLocation(Instr.Loc);
        EventId Id = Skeleton.addEvent({.Thread = T,
                                        .InstrIndex = static_cast<int>(I),
                                        .Kind = EventKind::Read,
                                        .Loc = Loc});
        EventForInstr[T][I] = static_cast<int>(Id);
      } else if (Instr.Op == Opcode::Store) {
        Location Loc = Skeleton.internLocation(Instr.Loc);
        Value StaticVal = Instr.Src1.isImm() ? Instr.Src1.asImm() : 0;
        EventId Id = Skeleton.addEvent({.Thread = T,
                                        .InstrIndex = static_cast<int>(I),
                                        .Kind = EventKind::Write,
                                        .Loc = Loc,
                                        .Val = StaticVal});
        EventForInstr[T][I] = static_cast<int>(Id);
      }
    }
  }

  Skeleton.finalizeStructure(Source.numThreads());

  // Canonical read order and their rf candidates.
  for (const Event &E : Skeleton.events()) {
    if (!E.isRead())
      continue;
    ReadEvents.push_back(E.Id);
    CandidateWritesPerRead.push_back(Skeleton.writesTo(E.Loc));
  }
}

void CompiledTest::buildDependencies() {
  // Register-taint rendering of Fig. 22. For each thread we walk the code
  // once, tracking for every register the set of po-previous memory reads
  // whose value flows into it through registers and ALU operations
  // (dd-reg = (rf-reg | iico)+, cut at memory accesses). Loads reset their
  // destination's taint to themselves; ALU ops union their sources' taints,
  // so xor r,r keeps false dependencies alive exactly as the architectures
  // specify.
  unsigned N = Skeleton.numEvents();
  for (ThreadId T = 0; T < static_cast<ThreadId>(Source.numThreads()); ++T) {
    const ThreadCode &Code = Source.Threads[T];
    std::map<Register, std::set<EventId>> Taint;
    // Branches seen so far: position and the reads tainting the condition.
    struct BranchInfo {
      size_t Pos;
      std::set<EventId> Sources;
    };
    std::vector<BranchInfo> Branches;
    // Control-fence (isync/isb) positions seen so far.
    std::vector<size_t> CFences;

    auto TaintOf = [&](Register R) -> std::set<EventId> {
      auto It = Taint.find(R);
      return It == Taint.end() ? std::set<EventId>{} : It->second;
    };

    for (size_t I = 0; I < Code.size(); ++I) {
      const Instruction &Instr = Code[I];
      int MemEvent = EventForInstr[T][I];

      // ctrl: any memory access po-after a branch whose condition is
      // tainted by a read (Fig. 22: (dd-reg & RB); po).
      if (MemEvent >= 0) {
        for (const BranchInfo &B : Branches)
          for (EventId Src : B.Sources)
            Skeleton.Ctrl.set(Src, static_cast<EventId>(MemEvent));
        // ctrl+cfence: ... with a control fence between branch and access.
        for (const BranchInfo &B : Branches)
          for (size_t F : CFences)
            if (F > B.Pos)
              for (EventId Src : B.Sources)
                Skeleton.CtrlCfence.set(Src,
                                        static_cast<EventId>(MemEvent));
      }

      switch (Instr.Op) {
      case Opcode::Load: {
        EventId Read = static_cast<EventId>(MemEvent);
        if (Instr.AddrDep >= 0)
          for (EventId Src : TaintOf(Instr.AddrDep))
            Skeleton.Addr.set(Src, Read);
        // The loaded register depends on this read only; dd-reg does not
        // pass through memory.
        Taint[Instr.Dst] = {Read};
        break;
      }
      case Opcode::Store: {
        EventId Write = static_cast<EventId>(MemEvent);
        if (Instr.AddrDep >= 0)
          for (EventId Src : TaintOf(Instr.AddrDep))
            Skeleton.Addr.set(Src, Write);
        if (Instr.Src1.isReg())
          for (EventId Src : TaintOf(Instr.Src1.asReg()))
            Skeleton.Data.set(Src, Write);
        break;
      }
      case Opcode::Move:
        Taint[Instr.Dst] =
            Instr.Src1.isReg() ? TaintOf(Instr.Src1.asReg())
                               : std::set<EventId>{};
        break;
      case Opcode::Xor:
      case Opcode::Add: {
        std::set<EventId> Union = TaintOf(Instr.Src1.asReg());
        auto Other = TaintOf(Instr.Src2.asReg());
        Union.insert(Other.begin(), Other.end());
        Taint[Instr.Dst] = std::move(Union);
        break;
      }
      case Opcode::CmpBranch:
        Branches.push_back({I, TaintOf(Instr.Src1.asReg())});
        break;
      case Opcode::Fence:
        if (Instr.isControlFence())
          CFences.push_back(I);
        break;
      }
    }
  }
  (void)N;
}

void CompiledTest::buildFences() {
  // For each fence instruction, relate every memory event po-before it to
  // every memory event po-after it (footnote 2: the relation records the
  // fence's position; whether it orders the pair is the model's business).
  for (ThreadId T = 0; T < static_cast<ThreadId>(Source.numThreads()); ++T) {
    const ThreadCode &Code = Source.Threads[T];
    for (size_t F = 0; F < Code.size(); ++F) {
      if (Code[F].Op != Opcode::Fence || Code[F].isControlFence())
        continue;
      const std::string &Name = Code[F].FenceName;
      auto [It, _] = Skeleton.Fences.try_emplace(Name,
                                                 Relation(
                                                     Skeleton.numEvents()));
      Relation &R = It->second;
      for (size_t I = 0; I < F; ++I) {
        if (EventForInstr[T][I] < 0)
          continue;
        for (size_t J = F + 1; J < Code.size(); ++J) {
          if (EventForInstr[T][J] < 0)
            continue;
          R.set(static_cast<EventId>(EventForInstr[T][I]),
                static_cast<EventId>(EventForInstr[T][J]));
        }
      }
    }
  }
  // ARM's .st fences are the corresponding full fence restricted to
  // write-write pairs (Sec. 4.7); we keep them as separate relations and
  // let the model apply the WW restriction.
}

std::vector<Relation> CompiledTest::allCoherenceOrders() const {
  // Per location: permutations of the program writes, the initial write
  // co-first. The cross product over locations yields all co candidates.
  std::vector<std::vector<std::vector<EventId>>> PerLocation;
  for (Location Loc = 0;
       Loc < static_cast<Location>(Skeleton.LocationNames.size()); ++Loc) {
    std::vector<EventId> Writes = Skeleton.writesTo(Loc);
    // Split off the initial write (present by construction).
    std::vector<EventId> Program;
    EventId Init = Writes.front();
    for (EventId W : Writes)
      if (!Skeleton.event(W).IsInit)
        Program.push_back(W);
      else
        Init = W;
    std::sort(Program.begin(), Program.end());
    std::vector<std::vector<EventId>> Orders;
    do {
      std::vector<EventId> Order;
      Order.push_back(Init);
      Order.insert(Order.end(), Program.begin(), Program.end());
      Orders.push_back(Order);
    } while (std::next_permutation(Program.begin(), Program.end()));
    PerLocation.push_back(std::move(Orders));
  }

  std::vector<Relation> Out;
  std::vector<size_t> Pick(PerLocation.size(), 0);
  while (true) {
    Relation Co(Skeleton.numEvents());
    for (size_t Loc = 0; Loc < PerLocation.size(); ++Loc) {
      const auto &Order = PerLocation[Loc][Pick[Loc]];
      for (size_t I = 0; I < Order.size(); ++I)
        for (size_t J = I + 1; J < Order.size(); ++J)
          Co.set(Order[I], Order[J]);
    }
    Out.push_back(std::move(Co));
    // Odometer step.
    size_t Loc = 0;
    for (; Loc < PerLocation.size(); ++Loc) {
      if (++Pick[Loc] < PerLocation[Loc].size())
        break;
      Pick[Loc] = 0;
    }
    if (Loc == PerLocation.size())
      break;
  }
  return Out;
}

unsigned long long CompiledTest::candidateCount() const {
  unsigned long long Count = 1;
  for (const auto &Writes : CandidateWritesPerRead)
    Count *= Writes.size();
  for (Location Loc = 0;
       Loc < static_cast<Location>(Skeleton.LocationNames.size()); ++Loc) {
    unsigned Program = 0;
    for (EventId W : Skeleton.writesTo(Loc))
      if (!Skeleton.event(W).IsInit)
        ++Program;
    unsigned long long Fact = 1;
    for (unsigned I = 2; I <= Program; ++I)
      Fact *= I;
    Count *= Fact;
  }
  return Count;
}

CompiledTest::RfConcretization
CompiledTest::concretizeRf(const std::vector<EventId> &WriteForRead) const {
  assert(WriteForRead.size() == ReadEvents.size() &&
         "rf choice arity mismatch");
  RfConcretization Out;
  unsigned N = Skeleton.numEvents();
  Out.EventVals.resize(N);
  for (EventId E = 0; E < N; ++E)
    Out.EventVals[E] = Skeleton.event(E).Val;
  // Dense read -> write map (-1 for non-reads).
  std::vector<int> RfOf(N, -1);
  for (size_t I = 0; I < ReadEvents.size(); ++I)
    RfOf[ReadEvents[I]] = static_cast<int>(WriteForRead[I]);

  // Value fixpoint: read values come from their rf write; write values are
  // recomputed from the register file. Iterate until stable (or give up:
  // an unstable value cycle, which we report as inconsistent). Only rf is
  // consulted — co never feeds a register value — which is what lets the
  // enumerator hoist this out of the coherence walk.
  Out.FinalRegs.resize(Source.numThreads());
  bool Changed = true;
  unsigned Rounds = 0;
  while (Changed && Rounds <= N + 2) {
    Changed = false;
    ++Rounds;
    for (ThreadId T = 0; T < static_cast<ThreadId>(Source.numThreads());
         ++T) {
      const ThreadCode &Code = Source.Threads[T];
      std::map<Register, Value> Regs;
      auto RegVal = [&](Register R) {
        auto It = Regs.find(R);
        return It == Regs.end() ? Value{0} : It->second;
      };
      auto OperandVal = [&](const Operand &O) {
        return O.isImm() ? O.asImm() : RegVal(O.asReg());
      };
      for (size_t I = 0; I < Code.size(); ++I) {
        const Instruction &Instr = Code[I];
        int MemEvent = EventForInstr[T][I];
        switch (Instr.Op) {
        case Opcode::Load: {
          EventId Read = static_cast<EventId>(MemEvent);
          Value V = Out.EventVals[RfOf[Read]];
          if (Out.EventVals[Read] != V) {
            Out.EventVals[Read] = V;
            Changed = true;
          }
          Regs[Instr.Dst] = V;
          break;
        }
        case Opcode::Store: {
          EventId Write = static_cast<EventId>(MemEvent);
          Value V = OperandVal(Instr.Src1);
          if (Out.EventVals[Write] != V) {
            Out.EventVals[Write] = V;
            Changed = true;
          }
          break;
        }
        case Opcode::Move:
          Regs[Instr.Dst] = OperandVal(Instr.Src1);
          break;
        case Opcode::Xor:
          Regs[Instr.Dst] =
              OperandVal(Instr.Src1) ^ OperandVal(Instr.Src2);
          break;
        case Opcode::Add:
          Regs[Instr.Dst] =
              OperandVal(Instr.Src1) + OperandVal(Instr.Src2);
          break;
        case Opcode::CmpBranch:
        case Opcode::Fence:
          break;
        }
      }
      Out.FinalRegs[T] = std::move(Regs);
    }
  }
  Out.Consistent = !Changed;
  return Out;
}

Candidate CompiledTest::concretize(const std::vector<EventId> &WriteForRead,
                                   const Relation &Co) const {
  Candidate Out;
  Out.Exe = Skeleton;
  Out.Exe.Co = Co;
  for (size_t I = 0; I < ReadEvents.size(); ++I)
    Out.Exe.Rf.set(WriteForRead[I], ReadEvents[I]);

  RfConcretization Values = concretizeRf(WriteForRead);
  for (EventId E = 0; E < Out.Exe.numEvents(); ++E)
    Out.Exe.event(E).Val = Values.EventVals[E];
  Out.Consistent = Values.Consistent;

  // Outcome: final registers plus the co-maximal write value per location.
  Out.Out.Regs = std::move(Values.FinalRegs);
  for (Location Loc = 0;
       Loc < static_cast<Location>(Out.Exe.LocationNames.size()); ++Loc) {
    std::vector<EventId> Writes = Out.Exe.writesTo(Loc);
    EventId Last = Writes.front();
    for (EventId W : Writes) {
      bool HasSuccessor = false;
      for (EventId Other : Writes)
        if (Other != W && Out.Exe.Co.test(W, Other))
          HasSuccessor = true;
      if (!HasSuccessor)
        Last = W;
    }
    Out.Out.Memory[Out.Exe.LocationNames[Loc]] = Out.Exe.event(Last).Val;
  }
  // The outcome is final: let set/map operations memoize its key.
  Out.Out.enableKeyCache();
  return Out;
}
