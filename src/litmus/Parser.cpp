//===- Parser.cpp - Text format for litmus tests --------------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "litmus/Parser.h"

#include "support/StringUtils.h"

#include <cctype>
#include <fstream>
#include <sstream>

using namespace cats;

namespace {

/// Parsing context with line-numbered error reporting.
class LitmusParser {
public:
  explicit LitmusParser(const std::string &Text) {
    for (const std::string &Line : splitString(Text, '\n')) {
      std::string Clean = Line;
      size_t Comment = Clean.find("//");
      if (Comment != std::string::npos)
        Clean = Clean.substr(0, Comment);
      Lines.push_back(trimString(Clean));
    }
  }

  Expected<LitmusTest> run() {
    LitmusTest Test;
    if (!parseHeader(Test))
      return fail();
    if (!parseInit(Test))
      return fail();
    while (atThreadHeader())
      if (!parseThread(Test))
        return fail();
    if (!parseFinal(Test))
      return fail();
    std::string Problem = Test.validate();
    if (!Problem.empty())
      return Expected<LitmusTest>::error("litmus validation: " + Problem);
    return Test;
  }

private:
  Expected<LitmusTest> fail() const {
    return Expected<LitmusTest>::error(
        strFormat("litmus parse error at line %u: %s", ErrorLine,
                  ErrorMessage.c_str()));
  }

  bool error(const std::string &Msg) {
    ErrorMessage = Msg;
    ErrorLine = static_cast<unsigned>(Cursor + 1);
    return false;
  }

  bool atEnd() const { return Cursor >= Lines.size(); }

  const std::string &current() const { return Lines[Cursor]; }

  void skipBlank() {
    while (!atEnd() && current().empty())
      ++Cursor;
  }

  bool atThreadHeader() {
    skipBlank();
    return !atEnd() && current().size() >= 3 && current()[0] == 'P' &&
           std::isdigit(static_cast<unsigned char>(current()[1]));
  }

  bool parseHeader(LitmusTest &Test) {
    skipBlank();
    if (atEnd())
      return error("expected '<arch> <name>' header");
    auto Parts = splitWhitespace(current());
    if (Parts.size() != 2)
      return error("expected '<arch> <name>' header");
    if (!parseArch(Parts[0], Test.TargetArch))
      return error("unknown architecture '" + Parts[0] + "'");
    Test.Name = Parts[1];
    ++Cursor;
    return true;
  }

  bool parseInit(LitmusTest &Test) {
    skipBlank();
    if (atEnd() || current().empty() || current()[0] != '{')
      return true; // Initial section is optional.
    // Gather until the closing brace (possibly on the same line).
    std::string Body;
    while (!atEnd()) {
      Body += current();
      bool Done = current().find('}') != std::string::npos;
      ++Cursor;
      if (Done)
        break;
    }
    size_t Open = Body.find('{');
    size_t Close = Body.find('}');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open)
      return error("malformed initial state section");
    for (std::string Field :
         splitString(Body.substr(Open + 1, Close - Open - 1), ';')) {
      Field = trimString(Field);
      if (Field.empty())
        continue;
      auto KV = splitString(Field, '=');
      if (KV.size() != 2)
        return error("malformed initialiser '" + Field + "'");
      std::string Loc = trimString(KV[0]);
      Value V = 0;
      if (Loc.empty() || !parseValueToken(KV[1], V))
        return error("malformed initialiser '" + Field + "'");
      Test.Init[Loc] = V;
    }
    return true;
  }

  bool parseThread(LitmusTest &Test) {
    // Current line is "P<k>:".
    std::string Header = current();
    if (Header.back() != ':')
      return error("thread header must end with ':'");
    long long Parsed = 0;
    if (!parseBoundedUnsigned(Header.substr(1, Header.size() - 2), 10000LL,
                              Parsed))
      return error("malformed thread header '" + Header + "'");
    unsigned Index = static_cast<unsigned>(Parsed);
    if (Index != Test.Threads.size())
      return error(strFormat("thread P%u out of order (expected P%zu)",
                             Index, Test.Threads.size()));
    ++Cursor;
    ThreadCode Code;
    while (!atEnd()) {
      skipBlank();
      if (atEnd() || atThreadHeaderNoSkip() || startsWith(current(),
                                                          "exists"))
        break;
      Instruction Instr;
      if (!parseInstruction(current(), Instr))
        return false;
      Code.push_back(Instr);
      ++Cursor;
    }
    Test.Threads.push_back(std::move(Code));
    return true;
  }

  bool atThreadHeaderNoSkip() const {
    return !atEnd() && current().size() >= 3 && current()[0] == 'P' &&
           std::isdigit(static_cast<unsigned char>(current()[1])) &&
           current().back() == ':';
  }

  /// All-digits decimal without sign; bounded so hostile inputs cannot
  /// overflow (the stdlib conversions throw instead of failing, which
  /// would crash the CLI on a malformed test).
  static bool parseBoundedUnsigned(const std::string &Digits, long long Max,
                                   long long &Out) {
    if (Digits.empty())
      return false;
    long long V = 0;
    for (char C : Digits) {
      if (!std::isdigit(static_cast<unsigned char>(C)))
        return false;
      V = V * 10 + (C - '0');
      if (V > Max)
        return false;
    }
    Out = V;
    return true;
  }

  /// A litmus value: optional sign plus digits, nothing else. Values in
  /// tests are small by construction; anything beyond +/-2^31 is a typo,
  /// not a test.
  static bool parseValueToken(const std::string &Token, Value &Out) {
    std::string Digits = trimString(Token);
    bool Negative = false;
    if (!Digits.empty() && (Digits[0] == '-' || Digits[0] == '+')) {
      Negative = Digits[0] == '-';
      Digits.erase(0, 1);
    }
    long long V = 0;
    if (!parseBoundedUnsigned(Digits, 2147483647LL, V))
      return false;
    Out = Negative ? -V : V;
    return true;
  }

  /// "r7" -> 7.
  bool parseRegister(const std::string &Token, Register &Out) {
    long long V = 0;
    if (Token.size() < 2 || Token[0] != 'r' ||
        !parseBoundedUnsigned(Token.substr(1), 1000000LL, V))
      return error("expected register, got '" + Token + "'");
    Out = static_cast<Register>(V);
    return true;
  }

  /// "#4" or "r2".
  bool parseOperand(const std::string &Token, Operand &Out) {
    if (!Token.empty() && Token[0] == '#') {
      Value V = 0;
      if (!parseValueToken(Token.substr(1), V))
        return error("malformed immediate '" + Token + "'");
      Out = Operand::imm(V);
      return true;
    }
    Register R;
    if (!parseRegister(Token, R))
      return false;
    Out = Operand::reg(R);
    return true;
  }

  /// "x" or "x[r2]" -> location + optional index register.
  bool parseLocation(const std::string &Token, std::string &Loc,
                     Register &AddrDep) {
    AddrDep = -1;
    size_t Bracket = Token.find('[');
    if (Bracket == std::string::npos) {
      Loc = Token;
      return true;
    }
    if (Token.back() != ']')
      return error("malformed address '" + Token + "'");
    Loc = Token.substr(0, Bracket);
    std::string RegTok =
        Token.substr(Bracket + 1, Token.size() - Bracket - 2);
    return parseRegister(RegTok, AddrDep);
  }

  bool parseInstruction(const std::string &Line, Instruction &Out) {
    // Tokenise on whitespace and commas.
    std::string Spaced;
    for (char C : Line)
      Spaced += (C == ',') ? ' ' : C;
    auto Tokens = splitWhitespace(Spaced);
    if (Tokens.empty())
      return error("empty instruction");
    const std::string &Op = Tokens[0];

    if (Op == "ld") {
      if (Tokens.size() != 3)
        return error("ld needs 'ld rD, loc'");
      Register Dst, AddrDep;
      std::string Loc;
      if (!parseRegister(Tokens[1], Dst) ||
          !parseLocation(Tokens[2], Loc, AddrDep))
        return false;
      Out = Instruction::load(Dst, Loc, AddrDep);
      return true;
    }
    if (Op == "st") {
      if (Tokens.size() != 3)
        return error("st needs 'st loc, src'");
      Register AddrDep;
      std::string Loc;
      Operand Src;
      if (!parseLocation(Tokens[1], Loc, AddrDep) ||
          !parseOperand(Tokens[2], Src))
        return false;
      Out = Instruction::store(Loc, Src, AddrDep);
      return true;
    }
    if (Op == "mov") {
      if (Tokens.size() != 3)
        return error("mov needs 'mov rD, src'");
      Register Dst;
      Operand Src;
      if (!parseRegister(Tokens[1], Dst) || !parseOperand(Tokens[2], Src))
        return false;
      Out = Instruction::move(Dst, Src);
      return true;
    }
    if (Op == "xor" || Op == "add") {
      if (Tokens.size() != 4)
        return error(Op + " needs '" + Op + " rD, rA, rB'");
      Register Dst, A, B;
      if (!parseRegister(Tokens[1], Dst) || !parseRegister(Tokens[2], A) ||
          !parseRegister(Tokens[3], B))
        return false;
      Out = Op == "xor" ? Instruction::xorOp(Dst, A, B)
                        : Instruction::addOp(Dst, A, B);
      return true;
    }
    if (Op == "beq") {
      if (Tokens.size() != 2)
        return error("beq needs 'beq rS'");
      Register Src;
      if (!parseRegister(Tokens[1], Src))
        return false;
      Out = Instruction::cmpBranch(Src);
      return true;
    }
    // Otherwise a fence name.
    if (Tokens.size() != 1)
      return error("unknown instruction '" + Line + "'");
    Out = Instruction::fenceNamed(Op);
    return true;
  }

  bool parseFinal(LitmusTest &Test) {
    skipBlank();
    if (atEnd())
      return true; // No final condition: trivially-true exists.
    std::string Line = current();
    if (!startsWith(Line, "exists"))
      return error("expected 'exists (...)' or end of file");
    size_t Open = Line.find('(');
    size_t Close = Line.rfind(')');
    if (Open == std::string::npos || Close == std::string::npos ||
        Close < Open)
      return error("malformed exists clause");
    std::string Body = Line.substr(Open + 1, Close - Open - 1);
    // DNF: split on \/ then /\.
    for (const std::string &DisjStr : splitOn(Body, "\\/")) {
      std::vector<ConditionAtom> Conj;
      for (std::string AtomStr : splitOn(DisjStr, "/\\")) {
        AtomStr = trimString(AtomStr);
        ConditionAtom Atom;
        if (!parseAtom(AtomStr, Atom))
          return false;
        Conj.push_back(Atom);
      }
      Test.Final.addConjunction(std::move(Conj));
    }
    ++Cursor;
    return true;
  }

  static std::vector<std::string> splitOn(const std::string &Text,
                                          const std::string &Sep) {
    std::vector<std::string> Out;
    size_t Pos = 0;
    while (true) {
      size_t Next = Text.find(Sep, Pos);
      if (Next == std::string::npos) {
        Out.push_back(Text.substr(Pos));
        return Out;
      }
      Out.push_back(Text.substr(Pos, Next - Pos));
      Pos = Next + Sep.size();
    }
  }

  bool parseAtom(const std::string &Text, ConditionAtom &Out) {
    auto Eq = splitString(Text, '=');
    if (Eq.size() != 2)
      return error("malformed condition atom '" + Text + "'");
    std::string Lhs = trimString(Eq[0]);
    Value V = 0;
    if (!parseValueToken(Eq[1], V))
      return error("malformed condition atom '" + Text + "'");
    size_t Colon = Lhs.find(':');
    if (Colon != std::string::npos) {
      long long T = 0;
      if (!parseBoundedUnsigned(Lhs.substr(0, Colon), 10000LL, T))
        return error("malformed thread id in '" + Text + "'");
      Register R;
      if (!parseRegister(Lhs.substr(Colon + 1), R))
        return false;
      Out = ConditionAtom::regEquals(static_cast<ThreadId>(T), R, V);
      return true;
    }
    if (Lhs.empty())
      return error("malformed condition atom '" + Text + "'");
    Out = ConditionAtom::memEquals(Lhs, V);
    return true;
  }

  std::vector<std::string> Lines;
  size_t Cursor = 0;
  std::string ErrorMessage = "unknown error";
  unsigned ErrorLine = 0;
};

} // namespace

Expected<LitmusTest> cats::parseLitmus(const std::string &Text) {
  return LitmusParser(Text).run();
}

Expected<LitmusTest> cats::parseLitmusFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Expected<LitmusTest>::error("cannot open litmus file " + Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseLitmus(Buffer.str());
}
