//===- Compiler.h - Litmus tests -> execution skeletons -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a litmus test into an execution skeleton: the control-flow
/// semantics of Sec. 3. The skeleton holds the memory events, program order,
/// dependency relations (addr/data/ctrl/ctrl+cfence derived per Fig. 22 by a
/// register-taint rendering of dd-reg = (rf-reg | iico)+), and fence
/// relations. Candidate executions (Sec. 3, data-flow semantics) are then
/// obtained by choosing an rf map and a coherence order and concretising the
/// register data-flow.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_COMPILER_H
#define CATS_LITMUS_COMPILER_H

#include "event/Execution.h"
#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <vector>

namespace cats {

/// One fully concretised candidate execution plus its observable outcome.
struct Candidate {
  Execution Exe;
  Outcome Out;
  /// False when the register data-flow failed to reach a fixpoint under the
  /// chosen rf (an unstable value cycle); such candidates are discarded.
  bool Consistent = true;
};

/// A compiled litmus test. The structural skeleton is shared by all
/// candidates of the test.
class CompiledTest {
public:
  /// Compiles \p Test; fails on validation errors.
  static Expected<CompiledTest> compile(const LitmusTest &Test);

  /// The source test.
  const LitmusTest &test() const { return Source; }

  /// Structural execution: events, po, dependencies and fences filled in;
  /// Rf and Co left empty.
  const Execution &skeleton() const { return Skeleton; }

  /// Program read events in a canonical order (thread-major, then po).
  const std::vector<EventId> &reads() const { return ReadEvents; }

  /// For each entry of reads(): the writes (same location, including the
  /// initial write) that the read may take its value from.
  const std::vector<std::vector<EventId>> &candidateWrites() const {
    return CandidateWritesPerRead;
  }

  /// All coherence orders: per location, every permutation of the program
  /// writes, with the initial write first (the paper's convention). Each
  /// result is a transitively-closed per-location total order.
  std::vector<Relation> allCoherenceOrders() const;

  /// Builds the candidate for rf choice \p WriteForRead (parallel to
  /// reads()) and coherence order \p Co, re-running the register data-flow
  /// to a fixpoint to compute read/write values and the outcome.
  Candidate concretize(const std::vector<EventId> &WriteForRead,
                       const Relation &Co) const;

  /// The co-independent part of concretize: the register/value data-flow
  /// fixpoint reads only rf, so event values, final register files and
  /// consistency are shared by every coherence order under one rf choice.
  /// The incremental enumerator runs this once per rf and reuses it across
  /// the whole coherence walk.
  struct RfConcretization {
    /// False when the data-flow failed to reach a fixpoint (unstable
    /// value cycle); such rf choices yield no consistent candidate.
    bool Consistent = true;
    /// Final value per event id; init writes keep their initial value.
    std::vector<Value> EventVals;
    /// Final register file per thread.
    std::vector<std::map<Register, Value>> FinalRegs;
  };
  RfConcretization
  concretizeRf(const std::vector<EventId> &WriteForRead) const;

  /// Number of candidate executions (product of rf choices times coherence
  /// permutations), before consistency filtering.
  unsigned long long candidateCount() const;

private:
  CompiledTest() = default;

  void buildEvents();
  void buildDependencies();
  void buildFences();

  LitmusTest Source;
  Execution Skeleton;
  /// EventForInstr[T][I]: memory event of instruction I of thread T, or -1.
  std::vector<std::vector<int>> EventForInstr;
  std::vector<EventId> ReadEvents;
  std::vector<std::vector<EventId>> CandidateWritesPerRead;
};

} // namespace cats

#endif // CATS_LITMUS_COMPILER_H
