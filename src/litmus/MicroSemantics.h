//===- MicroSemantics.h - Instruction semantics as micro-events -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction semantics of Sec. 5, explicit: each instruction expands
/// into register read/write events, memory events, branch and fence
/// events, related by the intra-instruction causality order iico. Register
/// reads take their value from the po-latest register write to the same
/// register (rf-reg), and the register data-flow relation
///
///   dd-reg = (rf-reg | iico)+
///
/// yields the Fig. 22 dependency relations:
///
///   addr        = dd-reg into the address entry port of a memory access
///   data        = dd-reg into the value entry port of a store
///   ctrl        = (dd-reg & RB); po
///   ctrl+cfence = (dd-reg & RB); cfence
///
/// Compare-and-branch expands faithfully through the condition register
/// (the paper's CR0): the comparison writes CR0, the branch reads it —
/// exercising rf-reg across instructions exactly as the Sec. 5 diagrams
/// show.
///
/// The CompiledTest dependency computation uses a register-taint rendering
/// of the same definitions; deriveDependencies() is the reference
/// implementation the tests validate it against.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_MICROSEMANTICS_H
#define CATS_LITMUS_MICROSEMANTICS_H

#include "litmus/Compiler.h"
#include "litmus/LitmusTest.h"
#include "relation/Relation.h"

#include <string>
#include <vector>

namespace cats {

/// The condition register written by comparisons and read by branches
/// (CR0 in the Power ISA).
constexpr Register ConditionRegister = 1000;

/// Kind of a micro-event.
enum class MicroKind : uint8_t {
  MemRead,  ///< Rx=v
  MemWrite, ///< Wx=v
  RegRead,  ///< Rr1=v
  RegWrite, ///< Wr1=v
  Branch,   ///< A branching decision.
  Fence     ///< A fence instruction's event.
};

/// Which port of its instruction a register read feeds.
enum class MicroPort : uint8_t {
  None,
  Address,  ///< The address entry port of a memory access.
  Value,    ///< The value entry port of a store.
  Condition ///< The condition input of a branch.
};

/// One micro-event.
struct MicroEvent {
  EventId Id = 0;
  ThreadId Thread = 0;
  int InstrIndex = 0;
  MicroKind Kind = MicroKind::Fence;
  Register Reg = -1;     ///< For register events.
  std::string Loc;       ///< For memory events.
  std::string FenceName; ///< For fence events.
  MicroPort Port = MicroPort::None;

  bool isMemory() const {
    return Kind == MicroKind::MemRead || Kind == MicroKind::MemWrite;
  }

  std::string toString() const;
};

/// The micro-event expansion of one thread.
class MicroGraph {
public:
  /// Expands thread \p Thread of \p Test.
  static MicroGraph build(const LitmusTest &Test, ThreadId Thread);

  const std::vector<MicroEvent> &events() const { return Events; }

  /// Intra-instruction causality (Sec. 5 diagrams).
  const Relation &iico() const { return Iico; }

  /// Program order over micro-events (instruction order; events of one
  /// instruction are unordered by po, only by iico).
  const Relation &poMicro() const { return Po; }

  /// Register read-from: each register read to the po-latest register
  /// write of the same register before it (reads of the initial register
  /// state have no edge).
  const Relation &rfReg() const { return RfReg; }

  /// dd-reg = (rf-reg | iico)+.
  Relation ddReg() const;

  /// Renders the thread's expansion in the style of the Sec. 5 figures.
  std::string toString() const;

private:
  std::vector<MicroEvent> Events;
  Relation Iico, Po, RfReg;
};

/// The Fig. 22 dependency relations of a whole test, over the *memory*
/// events of \p Compiled's skeleton (same universe as
/// CompiledTest::skeleton()).
struct MicroDeps {
  Relation Addr, Data, Ctrl, CtrlCfence;
};

/// Reference derivation of dependencies via micro-events.
MicroDeps deriveDependencies(const CompiledTest &Compiled);

} // namespace cats

#endif // CATS_LITMUS_MICROSEMANTICS_H
