//===- LitmusTest.h - Litmus tests and final conditions -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A litmus test: a small multi-threaded program with an initial state and a
/// final condition, in the diy tradition (Sec. 8.1). The condition is an
/// existential query over final register and memory values; a test's
/// interesting behaviour is "can the condition be reached".
///
//===----------------------------------------------------------------------===//

#ifndef CATS_LITMUS_LITMUSTEST_H
#define CATS_LITMUS_LITMUSTEST_H

#include "event/Event.h"
#include "litmus/Instruction.h"

#include <map>
#include <string>
#include <vector>

namespace cats {

/// Architectures a litmus test can target. The architecture constrains the
/// fences the test may use and selects the model instance the simulators
/// apply by default.
enum class Arch : uint8_t { SC, TSO, Power, ARM, CppRA };

/// Parses "SC" / "TSO" / "X86" / "Power" / "PPC" / "ARM" / "C++RA".
/// Returns false on unknown names.
bool parseArch(const std::string &Name, Arch &Out);

/// Canonical display name.
std::string archName(Arch A);

/// True if fence \p FenceName is available on \p A.
bool archHasFence(Arch A, const std::string &FenceName);

/// The control fence that completes a ctrl+cfence dependency on \p A
/// (isb on ARM, isync elsewhere). Whether the architecture actually has
/// it is a separate archHasFence check.
const char *archControlFence(Arch A);

/// One conjunct of a final condition.
struct ConditionAtom {
  enum class Kind : uint8_t {
    RegEquals, ///< Thread's register holds Value.
    MemEquals  ///< Memory location holds Value in the final state.
  };
  Kind AtomKind = Kind::RegEquals;
  ThreadId Thread = 0;
  Register Reg = 0;
  std::string Loc;
  Value Val = 0;

  static ConditionAtom regEquals(ThreadId T, Register R, Value V) {
    ConditionAtom A;
    A.AtomKind = Kind::RegEquals;
    A.Thread = T;
    A.Reg = R;
    A.Val = V;
    return A;
  }
  static ConditionAtom memEquals(std::string Loc, Value V) {
    ConditionAtom A;
    A.AtomKind = Kind::MemEquals;
    A.Loc = std::move(Loc);
    A.Val = V;
    return A;
  }

  std::string toString() const;
};

/// A final condition in disjunctive normal form: exists (C1 \/ C2 \/ ...)
/// where each Ci is a conjunction of atoms. An empty DNF is "exists true".
struct Condition {
  std::vector<std::vector<ConditionAtom>> Disjuncts;

  /// Adds one conjunction.
  void addConjunction(std::vector<ConditionAtom> Atoms) {
    Disjuncts.push_back(std::move(Atoms));
  }

  bool trivial() const { return Disjuncts.empty(); }
  std::string toString() const;
};

/// The observable final state of one program execution: per-thread register
/// files and the final memory contents.
struct Outcome {
  /// Final register values: Regs[Thread][Register]; registers not written
  /// read as 0.
  std::vector<std::map<Register, Value>> Regs;
  /// Final memory values by location name.
  std::map<std::string, Value> Memory;

  Value reg(ThreadId T, Register R) const;
  Value mem(const std::string &Loc) const;

  /// Evaluates \p Cond against this outcome.
  bool satisfies(const Condition &Cond) const;

  /// Canonical textual key, usable as a set element when collecting the
  /// distinct final states of a test.
  std::string key() const;

  /// Enables memoization of key(). Only call once the outcome is final
  /// (the litmus compiler enables it on every concretized candidate):
  /// mutating Regs/Memory afterwards yields a stale key. Set/map
  /// operations between cached outcomes then compare without rebuilding
  /// the key string each time.
  void enableKeyCache() const { KeyCacheEnabled = true; }

  bool operator<(const Outcome &Other) const;
  bool operator==(const Outcome &Other) const;

private:
  /// keyRef() fills KeyCache on first use when enabled; copies of the
  /// outcome (e.g. inside a std::set) carry the warm cache along.
  const std::string &keyRef() const;
  mutable std::string KeyCache;
  mutable bool KeyCacheEnabled = false;
  mutable bool KeyCacheValid = false;
};

/// A complete litmus test.
struct LitmusTest {
  std::string Name;
  Arch TargetArch = Arch::SC;
  std::vector<ThreadCode> Threads;
  /// Initial memory values; locations referenced by the code but absent
  /// here start at 0.
  std::map<std::string, Value> Init;
  Condition Final;

  unsigned numThreads() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// All location names used by loads/stores plus initialised ones, in
  /// first-use order.
  std::vector<std::string> locations() const;

  /// Sanity checks: fences legal for the architecture, registers in range,
  /// branch/arith operands defined. Returns an explanatory error otherwise.
  std::string validate() const;

  /// Renders in the text format understood by parseLitmus.
  std::string toString() const;
};

} // namespace cats

#endif // CATS_LITMUS_LITMUSTEST_H
