//===- Diy.h - Cycle-based litmus test generation -------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diy test generator (Sec. 8.1): synthesises a litmus test from a
/// cycle of relaxations. A cycle alternates:
///
///  * communication edges, which cross threads on the same location:
///      Rfe (write -> read), Fre (read -> write), Wse (write -> write,
///      i.e. external coherence);
///  * program-order edges, which stay on the thread and move to the next
///    location, carrying an ordering mechanism: plain po, a dependency
///    (addr, data, ctrl, ctrl+cfence) or a fence (sync, lwsync, dmb, ...).
///
/// From a cycle, the generator lays out threads and locations, emits the
/// pseudo-assembly with the requested dependency/fence machinery, assigns
/// write values, and derives the exists-condition that pins exactly the
/// cycle's communications (reads observe their rf source; final memory
/// values pin external coherence). Test names follow the paper's
/// conventions (Tab. III): classic family names where they exist, else the
/// systematic directions-based name, plus the mechanism suffixes.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_DIY_DIY_H
#define CATS_DIY_DIY_H

#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace cats {

/// Kind of a cycle edge.
enum class EdgeKind : uint8_t {
  Rfe, ///< External read-from: crosses threads, same location.
  Fre, ///< External from-read: crosses threads, same location.
  Wse, ///< External coherence: crosses threads, same location.
  Rfi, ///< Internal read-from: same thread, same location.
  Fri, ///< Internal from-read: same thread, same location.
  Wsi, ///< Internal coherence: same thread, same location.
  Po   ///< Program order: same thread, next location.
};

/// True for the edges that cross threads.
bool isExternalEdge(EdgeKind Kind);

/// True for the same-thread, same-location communication edges; together
/// with Po they extend a thread beyond two accesses, enabling the fri-rfi
/// and wsi-rfi shapes of Figs. 32/33.
bool isInternalComEdge(EdgeKind Kind);

/// Ordering mechanism carried by a Po edge.
enum class PoMech : uint8_t {
  None,       ///< Plain program order.
  Addr,       ///< Address dependency (false dep via xor).
  Data,       ///< Data dependency (only when the target is a write).
  Ctrl,       ///< Control dependency (compare + branch).
  CtrlCfence, ///< Control dependency followed by isync/isb.
  Fence       ///< A named fence between the accesses.
};

/// Access direction.
enum class Dir : uint8_t { R, W };

/// One cycle edge.
struct DiyEdge {
  EdgeKind Kind = EdgeKind::Po;
  /// For Po edges: source and target directions. Communication edges have
  /// fixed directions (Rfe: W->R, Fre: R->W, Wse: W->W).
  Dir Src = Dir::R;
  Dir Dst = Dir::R;
  PoMech Mech = PoMech::None;
  std::string FenceName; ///< For Mech == Fence.

  static DiyEdge rfe() { return {EdgeKind::Rfe, Dir::W, Dir::R, PoMech::None, ""}; }
  static DiyEdge fre() { return {EdgeKind::Fre, Dir::R, Dir::W, PoMech::None, ""}; }
  static DiyEdge wse() { return {EdgeKind::Wse, Dir::W, Dir::W, PoMech::None, ""}; }
  static DiyEdge rfi() { return {EdgeKind::Rfi, Dir::W, Dir::R, PoMech::None, ""}; }
  static DiyEdge fri() { return {EdgeKind::Fri, Dir::R, Dir::W, PoMech::None, ""}; }
  static DiyEdge wsi() { return {EdgeKind::Wsi, Dir::W, Dir::W, PoMech::None, ""}; }
  static DiyEdge po(Dir Src, Dir Dst, PoMech Mech = PoMech::None,
                    std::string Fence = "") {
    return {EdgeKind::Po, Src, Dst, Mech, std::move(Fence)};
  }

  /// diy-style edge name, e.g. "Rfe", "PodRR", "DpAddrdR", "FencedWW:sync".
  std::string toString() const;
};

/// A cycle of edges.
using DiyCycle = std::vector<DiyEdge>;

/// Synthesises the litmus test realising \p Cycle for \p Target. Fails if
/// the cycle is malformed: direction mismatches between consecutive edges,
/// no communication edge, or mechanisms unavailable on the architecture.
Expected<LitmusTest> synthesizeTest(const DiyCycle &Cycle, Arch Target,
                                    const std::string &NameOverride = "");

/// The canonical rotation of a cycle: classic families rotate to their
/// Tab. III convention (writer side first for mp); rotation-symmetric
/// cycles and systematic shapes pick the lexicographically-least rotation
/// that starts on a thread boundary. canonicalCycle(rotate(C)) ==
/// canonicalCycle(C) for every rotation, which is what enumeration dedup
/// keys on.
DiyCycle canonicalCycle(const DiyCycle &Cycle);

/// The name of a cycle (Tab. III style): the classic family name where one
/// matches, else the per-thread directions name, e.g. "ww+rr", with
/// mechanism suffixes appended, e.g. "mp+lwsync+addr". Computed on the
/// canonical rotation, so every rotation of a cycle gets the same name.
/// \p NameArch picks the architecture-specific suffix spellings
/// (ctrl+cfence is "ctrlisb" on ARM, "ctrlisync" elsewhere).
std::string cycleName(const DiyCycle &Cycle, Arch NameArch = Arch::Power);

/// Canonicalizes \p Cycle in place and returns its name — one
/// canonicalization scan where canonicalCycle + cycleName would do two.
/// The enumeration hot path uses this.
std::string canonicalizeCycle(DiyCycle &Cycle, Arch NameArch = Arch::Power);

/// The classic base cycles of Tab. III by family name: mp, sb (wr+wr),
/// lb (rw+rw), wrc, isa2, 2+2w, w+rw+2w, rwc, r, s, iriw.
/// Po edges carry no mechanism; callers substitute mechanisms.
std::vector<std::pair<std::string, DiyCycle>> classicFamilies();

/// Generates a battery of tests for \p Target: every classic family with
/// every combination of per-edge mechanisms drawn from the architecture's
/// vocabulary (plain po, dependencies where directions permit, and each
/// fence). \p MaxPerFamily caps the combinatorial blow-up per family
/// (0 = unlimited).
std::vector<LitmusTest> generateBattery(Arch Target,
                                        unsigned MaxPerFamily = 0);

} // namespace cats

#endif // CATS_DIY_DIY_H
