//===- Enumerate.cpp - Exhaustive critical-cycle enumeration --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Enumerate.h"

#include "event/Execution.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <map>
#include <memory>
#include <regex>
#include <set>

using namespace cats;

std::vector<DiyEdge> cats::edgeVocabulary(const EnumerateOptions &Opts) {
  std::vector<DiyEdge> Vocab;

  // Fence vocabulary, matching generateBattery: the ordering fences only
  // (control fences like isync/isb pair with ctrl, not with plain po).
  std::vector<std::string> Fences;
  if (Opts.Fences) {
    switch (Opts.Target) {
    case Arch::Power:
      Fences = {fence::Sync, fence::LwSync, fence::Eieio};
      break;
    case Arch::ARM:
      Fences = {fence::Dmb, fence::DmbSt};
      break;
    case Arch::TSO:
      Fences = {fence::MFence};
      break;
    case Arch::SC:
    case Arch::CppRA:
      break;
    }
  }
  const bool HasDeps =
      Opts.Dependencies &&
      (Opts.Target == Arch::Power || Opts.Target == Arch::ARM);

  // Po edges: every direction pair, every mechanism the options admit.
  for (Dir Src : {Dir::R, Dir::W})
    for (Dir Dst : {Dir::R, Dir::W}) {
      Vocab.push_back(DiyEdge::po(Src, Dst));
      for (const std::string &Fence : Fences)
        Vocab.push_back(DiyEdge::po(Src, Dst, PoMech::Fence, Fence));
      if (HasDeps && Src == Dir::R) {
        Vocab.push_back(DiyEdge::po(Src, Dst, PoMech::Addr));
        Vocab.push_back(DiyEdge::po(Src, Dst, PoMech::Ctrl));
        Vocab.push_back(DiyEdge::po(Src, Dst, PoMech::CtrlCfence));
        if (Dst == Dir::W)
          Vocab.push_back(DiyEdge::po(Src, Dst, PoMech::Data));
      }
    }

  // Communication edges: external always, internal on request.
  Vocab.push_back(DiyEdge::rfe());
  Vocab.push_back(DiyEdge::fre());
  Vocab.push_back(DiyEdge::wse());
  if (Opts.InternalCom) {
    Vocab.push_back(DiyEdge::rfi());
    Vocab.push_back(DiyEdge::fri());
    Vocab.push_back(DiyEdge::wsi());
  }
  return Vocab;
}

namespace {

/// Criticality check on a closed edge sequence (Sec. 8.1): simulate the
/// thread/location layout of synthesizeTest and enforce the per-thread
/// and per-location access caps. External-only cycles follow the paper's
/// critical-cycle definition (two accesses per thread, at most three per
/// location from distinct threads); internal detours relax the caps the
/// way Figs. 32/33 do.
bool isCritical(const DiyCycle &Cycle, unsigned NumPo, bool InternalCom) {
  // Layout, mirroring synthesizeTest: walk from a thread boundary (the
  // edge after the first external edge), po advances the location (mod
  // the po-edge count), external edges advance the thread. Starting at a
  // boundary matters: the DFS hands us an arbitrary rotation, and a
  // thread split across the wrap would otherwise be counted as two
  // fragments, each under the cap.
  size_t Start = 0;
  for (size_t I = 0; I < Cycle.size(); ++I)
    if (isExternalEdge(Cycle[I].Kind)) {
      Start = (I + 1) % Cycle.size();
      break;
    }
  std::map<int, unsigned> PerThread;
  std::map<int, std::set<int>> ThreadsPerLoc;
  std::map<int, unsigned> PerLoc;
  int Thread = 0, Loc = 0;
  for (size_t Step = 0; Step < Cycle.size(); ++Step) {
    const DiyEdge &Edge = Cycle[(Start + Step) % Cycle.size()];
    ++PerThread[Thread];
    ++PerLoc[Loc];
    ThreadsPerLoc[Loc].insert(Thread);
    if (Edge.Kind == EdgeKind::Po)
      Loc = (Loc + 1) % static_cast<int>(NumPo);
    else if (isExternalEdge(Edge.Kind))
      ++Thread;
  }
  const unsigned ThreadCap = InternalCom ? 4 : 2;
  for (const auto &[T, Count] : PerThread)
    if (Count > ThreadCap)
      return false;
  for (const auto &[L, Count] : PerLoc) {
    if (Count > 3)
      return false;
    // Without internal communication, a location's accesses must come
    // from distinct threads (the po edges of one thread change location).
    if (!InternalCom && ThreadsPerLoc[L].size() != Count)
      return false;
  }
  return true;
}

/// The recursive depth-first search over the edge vocabulary.
class CycleSearch {
public:
  CycleSearch(const EnumerateOptions &Opts,
              const std::function<bool(const EnumeratedCycle &)> &Fn)
      : Opts(Opts), Fn(Fn), Vocab(edgeVocabulary(Opts)) {}

  uint64_t run() {
    DiyCycle Prefix;
    extend(Prefix);
    obs::tick("diy.closures_tried", ClosuresTried);
    return Emitted;
  }

private:
  /// Closure checks on a complete candidate; emits when canonical-new.
  void tryClose(const DiyCycle &Cycle) {
    ++ClosuresTried; // plain local; flushed to the registry by run()
    const DiyEdge &Last = Cycle.back();
    const DiyEdge &First = Cycle.front();
    if (Last.Dst != First.Src)
      return;
    if (Last.Kind == EdgeKind::Po && First.Kind == EdgeKind::Po)
      return;
    unsigned NumExternal = 0, NumPo = 0;
    for (const DiyEdge &E : Cycle) {
      if (isExternalEdge(E.Kind))
        ++NumExternal;
      else if (E.Kind == EdgeKind::Po)
        ++NumPo;
    }
    // A critical cycle has at least two threads and spans at least two
    // locations.
    if (NumExternal < 2 || NumPo < 2)
      return;
    if (!isCritical(Cycle, NumPo, Opts.InternalCom))
      return;

    EnumeratedCycle Out;
    Out.Cycle = Cycle;
    Out.Name = canonicalizeCycle(Out.Cycle, Opts.Target);
    std::string Key;
    for (const DiyEdge &E : Out.Cycle)
      Key += E.toString() + "|";
    if (!SeenCycles.insert(Key).second)
      return;
    // Names are injective (internal communications spell fri/rfi/wsi into
    // the per-thread suffix chains), so this guard never fires in
    // practice; it stands as the backstop for the no-duplicate-names
    // invariant the tools and tests rely on.
    if (!SeenNames.insert(Out.Name).second)
      return;
    ++Emitted;
    if (!Fn(Out) || (Opts.Limit && Emitted >= Opts.Limit))
      Stopped = true;
  }

  void extend(DiyCycle &Prefix) {
    if (Stopped)
      return;
    if (Prefix.size() >= Opts.MaxEdges)
      return;
    for (const DiyEdge &Next : Vocab) {
      if (!Prefix.empty()) {
        const DiyEdge &Prev = Prefix.back();
        if (Prev.Dst != Next.Src)
          continue;
        if (Prev.Kind == EdgeKind::Po && Next.Kind == EdgeKind::Po)
          continue;
      }
      Prefix.push_back(Next);
      if (Prefix.size() >= Opts.MinEdges && Prefix.size() >= 3)
        tryClose(Prefix);
      extend(Prefix);
      Prefix.pop_back();
      if (Stopped)
        return;
    }
  }

  const EnumerateOptions &Opts;
  const std::function<bool(const EnumeratedCycle &)> &Fn;
  std::vector<DiyEdge> Vocab;
  std::set<std::string> SeenCycles;
  std::set<std::string> SeenNames;
  uint64_t Emitted = 0;
  uint64_t ClosuresTried = 0;
  bool Stopped = false;
};

} // namespace

uint64_t cats::enumerateCycles(
    const EnumerateOptions &Opts,
    const std::function<bool(const EnumeratedCycle &)> &Fn) {
  if (Opts.MaxEdges == 0)
    return 0;
  obs::Span EnumerateSpan("diy enumerate");
  const uint64_t Emitted = CycleSearch(Opts, Fn).run();
  obs::tick("diy.cycles_emitted", Emitted);
  return Emitted;
}

std::vector<EnumeratedCycle>
cats::enumerateAll(const EnumerateOptions &Opts) {
  std::vector<EnumeratedCycle> Out;
  enumerateCycles(Opts, [&](const EnumeratedCycle &Cycle) {
    Out.push_back(Cycle);
    return true;
  });
  return Out;
}

Expected<std::vector<EnumeratedCycle>>
cats::enumerateMatching(const EnumerateOptions &Opts,
                        const std::string &FilterRegex) {
  using Fail = Expected<std::vector<EnumeratedCycle>>;
  std::regex Re;
  const bool HasFilter = !FilterRegex.empty();
  if (HasFilter) {
    auto Compiled = compileFilterRegex(FilterRegex);
    if (!Compiled)
      return Fail::error(Compiled.message());
    Re = Compiled.take();
  }
  // The limit counts *matching* cycles, so a filter composed with a
  // limit yields the first N matches.
  std::vector<EnumeratedCycle> Cycles;
  EnumerateOptions Inner = Opts;
  Inner.Limit = 0;
  enumerateCycles(Inner, [&](const EnumeratedCycle &Cycle) {
    if (!HasFilter || std::regex_search(Cycle.Name, Re))
      Cycles.push_back(Cycle);
    return !Opts.Limit || Cycles.size() < Opts.Limit;
  });
  return Cycles;
}

Expected<TestSource>
cats::makeDiyTestSource(const EnumerateOptions &Opts,
                        const std::string &FilterRegex,
                        std::vector<std::string> *SynthesisErrors) {
  using Fail = Expected<TestSource>;
  // Cycles are tiny; materialize the descriptors and synthesize lazily,
  // one test per pull.
  auto Matching = enumerateMatching(Opts, FilterRegex);
  if (!Matching)
    return Fail::error(Matching.message());
  auto Cycles = std::make_shared<std::vector<EnumeratedCycle>>(
      Matching.take());

  auto Index = std::make_shared<size_t>(0);
  const Arch Target = Opts.Target;
  return TestSource(
      [Cycles, Index, Target, SynthesisErrors](LitmusTest &Out) -> bool {
        while (*Index < Cycles->size()) {
          const EnumeratedCycle &Next = (*Cycles)[(*Index)++];
          obs::tick("diy.tests_synthesized");
          auto Test = synthesizeTest(Next.Cycle, Target);
          if (!Test) {
            if (SynthesisErrors)
              SynthesisErrors->push_back(Next.Name + ": " + Test.message());
            continue;
          }
          Out = Test.take();
          return true;
        }
        return false;
      });
}
