//===- Diy.cpp - Cycle-based litmus test generation -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"

#include "event/Execution.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace cats;

bool cats::isExternalEdge(EdgeKind Kind) {
  return Kind == EdgeKind::Rfe || Kind == EdgeKind::Fre ||
         Kind == EdgeKind::Wse;
}

bool cats::isInternalComEdge(EdgeKind Kind) {
  return Kind == EdgeKind::Rfi || Kind == EdgeKind::Fri ||
         Kind == EdgeKind::Wsi;
}

std::string DiyEdge::toString() const {
  switch (Kind) {
  case EdgeKind::Rfe:
    return "Rfe";
  case EdgeKind::Fre:
    return "Fre";
  case EdgeKind::Wse:
    return "Wse";
  case EdgeKind::Rfi:
    return "Rfi";
  case EdgeKind::Fri:
    return "Fri";
  case EdgeKind::Wsi:
    return "Wsi";
  case EdgeKind::Po:
    break;
  }
  auto DirName = [](Dir D) { return D == Dir::R ? "R" : "W"; };
  switch (Mech) {
  case PoMech::None:
    return strFormat("Pod%s%s", DirName(Src), DirName(Dst));
  case PoMech::Addr:
    return strFormat("DpAddrd%s", DirName(Dst));
  case PoMech::Data:
    return "DpDatadW";
  case PoMech::Ctrl:
    return strFormat("DpCtrld%s", DirName(Dst));
  case PoMech::CtrlCfence:
    return strFormat("DpCtrlCfenced%s", DirName(Dst));
  case PoMech::Fence:
    return strFormat("Fenced%s%s:%s", DirName(Src), DirName(Dst),
                     FenceName.c_str());
  }
  return "?";
}

namespace {

/// One event of the laid-out cycle.
struct CycleEvent {
  Dir Direction;
  int Thread;
  int Loc;
  /// Index in the cycle.
  size_t Index;
  /// For writes: the assigned value (co position). For reads: the value
  /// the condition pins.
  Value Val = 0;
  /// For reads: the register receiving the value.
  Register Reg = -1;
};

/// Mechanism names for test naming.
std::string mechSuffix(const DiyEdge &E, Arch Target) {
  switch (E.Mech) {
  case PoMech::None:
    return "po";
  case PoMech::Addr:
    return "addr";
  case PoMech::Data:
    return "data";
  case PoMech::Ctrl:
    return "ctrl";
  case PoMech::CtrlCfence:
    return Target == Arch::ARM ? "ctrlisb" : "ctrlisync";
  case PoMech::Fence:
    return E.FenceName;
  }
  return "?";
}

} // namespace

namespace {

/// Per-edge signature tokens: directions and edge kinds only, no
/// mechanisms. Two cycles are the same shape iff their signatures match
/// under some rotation.
std::vector<std::string> edgeSignature(const DiyCycle &C) {
  std::vector<std::string> Sig;
  for (const DiyEdge &E : C) {
    switch (E.Kind) {
    case EdgeKind::Rfe:
      Sig.push_back("r");
      break;
    case EdgeKind::Fre:
      Sig.push_back("f");
      break;
    case EdgeKind::Wse:
      Sig.push_back("w");
      break;
    case EdgeKind::Rfi:
      Sig.push_back("ri");
      break;
    case EdgeKind::Fri:
      Sig.push_back("fi");
      break;
    case EdgeKind::Wsi:
      Sig.push_back("wi");
      break;
    case EdgeKind::Po:
      Sig.push_back(std::string("p") + (E.Src == Dir::R ? "R" : "W") +
                    (E.Dst == Dir::R ? "R" : "W"));
      break;
    }
  }
  return Sig;
}

/// True when \p Sig rotated left by \p Start equals \p Other.
bool rotationEquals(const std::vector<std::string> &Sig, size_t Start,
                    const std::vector<std::string> &Other) {
  if (Sig.size() != Other.size())
    return false;
  for (size_t I = 0; I < Sig.size(); ++I)
    if (Sig[(Start + I) % Sig.size()] != Other[I])
      return false;
  return true;
}

/// Rotation starts sitting on a thread boundary (the predecessor edge is
/// external), so a rotation started there renders threads whole. Cycles
/// with no external edge (malformed) fall back to every index.
std::vector<size_t> boundaryStarts(const DiyCycle &C) {
  std::vector<size_t> Starts;
  for (size_t I = 0; I < C.size(); ++I)
    if (isExternalEdge(C[(I + C.size() - 1) % C.size()].Kind))
      Starts.push_back(I);
  if (Starts.empty())
    for (size_t I = 0; I < C.size(); ++I)
      Starts.push_back(I);
  return Starts;
}

/// The canonical rotation start of a cycle, plus the classic family it
/// matches (empty when none). Classic-family alignment wins so that the
/// paper's conventional rotations (writer side first for mp) survive;
/// remaining ties — rotation-symmetric cycles like sb or iriw — break to
/// the lexicographically-least full-edge-token rotation.
struct CanonicalChoice {
  size_t Start = 0;
  std::string Family;
};

/// The classic families' signatures, computed once: canonicalChoice sits
/// on the enumeration hot path (every closed DFS candidate), so it must
/// not rebuild the family cycles per call.
const std::vector<std::pair<std::string, std::vector<std::string>>> &
familySignatures() {
  static const auto Sigs = [] {
    std::vector<std::pair<std::string, std::vector<std::string>>> Out;
    for (const auto &[Family, Cycle] : classicFamilies())
      Out.push_back({Family, edgeSignature(Cycle)});
    return Out;
  }();
  return Sigs;
}

CanonicalChoice canonicalChoice(const DiyCycle &Cycle) {
  CanonicalChoice Out;
  if (Cycle.empty())
    return Out;
  std::vector<size_t> Candidates = boundaryStarts(Cycle);
  const std::vector<std::string> Sig = edgeSignature(Cycle);
  for (const auto &[Family, FamilySig] : familySignatures()) {
    std::vector<size_t> Aligned;
    for (size_t S : Candidates)
      if (rotationEquals(Sig, S, FamilySig))
        Aligned.push_back(S);
    if (!Aligned.empty()) {
      Out.Family = Family;
      Candidates = std::move(Aligned);
      break;
    }
  }
  std::vector<std::string> Tokens;
  for (const DiyEdge &E : Cycle)
    Tokens.push_back(E.toString());
  auto Less = [&](size_t A, size_t B) {
    for (size_t I = 0; I < Tokens.size(); ++I) {
      const std::string &TA = Tokens[(A + I) % Tokens.size()];
      const std::string &TB = Tokens[(B + I) % Tokens.size()];
      if (TA != TB)
        return TA < TB;
    }
    return A < B;
  };
  Out.Start = Candidates.front();
  for (size_t S : Candidates)
    if (Less(S, Out.Start))
      Out.Start = S;
  return Out;
}

} // namespace

DiyCycle cats::canonicalCycle(const DiyCycle &Cycle) {
  if (Cycle.empty())
    return Cycle;
  DiyCycle Out = Cycle;
  std::rotate(Out.begin(), Out.begin() + canonicalChoice(Cycle).Start,
              Out.end());
  return Out;
}

std::string cats::cycleName(const DiyCycle &Orig, Arch NameArch) {
  if (Orig.empty())
    return "";
  DiyCycle Cycle = Orig;
  return canonicalizeCycle(Cycle, NameArch);
}

std::string cats::canonicalizeCycle(DiyCycle &Cycle, Arch NameArch) {
  if (Cycle.empty())
    return "";
  CanonicalChoice Choice = canonicalChoice(Cycle);
  std::rotate(Cycle.begin(), Cycle.begin() + Choice.Start, Cycle.end());

  std::string Base = Choice.Family;
  if (Base.empty()) {
    // Systematic name: per-thread direction strings (Tab. III). Internal
    // communication edges (rfi/fri/wsi) continue the thread; only
    // external edges end it.
    std::vector<std::string> Threads;
    std::string Current;
    for (const DiyEdge &E : Cycle) {
      if (!isExternalEdge(E.Kind)) {
        if (Current.empty())
          Current += E.Src == Dir::R ? 'r' : 'w';
        Current += E.Dst == Dir::R ? 'r' : 'w';
      } else {
        if (Current.empty())
          Current += E.Src == Dir::R ? 'r' : 'w';
        Threads.push_back(Current);
        Current.clear();
      }
    }
    if (!Current.empty())
      Threads.push_back(Current);
    Base = joinStrings(Threads, "+");
  }

  // Mechanism suffixes: one per-thread chain of the thread's non-external
  // edges, hyphen-joined in the paper's detour notation ("fri-rfi-ctrlisb"),
  // in cycle order. For external-only cycles every chain is a single po
  // mechanism, so this reads exactly as the classic one-suffix-per-po-edge
  // convention; internal communication edges spell fri/rfi/wsi into the
  // chain, keeping names injective (an rfi detour and a plain po thread
  // share a direction signature but not a name). All-plain external
  // cycles carry no suffix at all.
  bool AnyMech = false;
  for (const DiyEdge &E : Cycle)
    if ((E.Kind == EdgeKind::Po && E.Mech != PoMech::None) ||
        isInternalComEdge(E.Kind))
      AnyMech = true;
  if (!AnyMech)
    return Base;
  std::string Name = Base;
  std::string Chain;
  auto FlushChain = [&] {
    if (!Chain.empty())
      Name += "+" + Chain;
    Chain.clear();
  };
  for (const DiyEdge &E : Cycle) {
    if (isExternalEdge(E.Kind)) {
      FlushChain();
      continue;
    }
    if (!Chain.empty())
      Chain += "-";
    switch (E.Kind) {
    case EdgeKind::Rfi:
      Chain += "rfi";
      break;
    case EdgeKind::Fri:
      Chain += "fri";
      break;
    case EdgeKind::Wsi:
      Chain += "wsi";
      break;
    default:
      Chain += mechSuffix(E, NameArch);
      break;
    }
  }
  FlushChain();
  return Name;
}

std::vector<std::pair<std::string, DiyCycle>> cats::classicFamilies() {
  using E = DiyEdge;
  return {
      {"mp", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::R),
              E::fre()}},
      {"sb", {E::po(Dir::W, Dir::R), E::fre(), E::po(Dir::W, Dir::R),
              E::fre()}},
      {"lb", {E::po(Dir::R, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
              E::rfe()}},
      {"wrc", {E::rfe(), E::po(Dir::R, Dir::W), E::rfe(),
               E::po(Dir::R, Dir::R), E::fre()}},
      {"isa2", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
                E::rfe(), E::po(Dir::R, Dir::R), E::fre()}},
      {"2+2w", {E::po(Dir::W, Dir::W), E::wse(), E::po(Dir::W, Dir::W),
                E::wse()}},
      {"w+rw+2w", {E::rfe(), E::po(Dir::R, Dir::W), E::wse(),
                   E::po(Dir::W, Dir::W), E::wse()}},
      {"rwc", {E::rfe(), E::po(Dir::R, Dir::R), E::fre(),
               E::po(Dir::W, Dir::R), E::fre()}},
      {"r", {E::po(Dir::W, Dir::W), E::wse(), E::po(Dir::W, Dir::R),
             E::fre()}},
      {"s", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
             E::wse()}},
      {"iriw", {E::rfe(), E::po(Dir::R, Dir::R), E::fre(), E::rfe(),
                E::po(Dir::R, Dir::R), E::fre()}},
  };
}

Expected<LitmusTest> cats::synthesizeTest(const DiyCycle &Cycle,
                                          Arch Target,
                                          const std::string &NameOverride) {
  using Fail = Expected<LitmusTest>;
  if (Cycle.empty())
    return Fail::error("diy: empty cycle");

  // Direction coherence between consecutive edges, and counting.
  unsigned NumExternal = 0, NumInternal = 0;
  for (size_t I = 0; I < Cycle.size(); ++I) {
    const DiyEdge &Cur = Cycle[I];
    const DiyEdge &Next = Cycle[(I + 1) % Cycle.size()];
    if (Cur.Dst != Next.Src)
      return Fail::error(strFormat(
          "diy: direction mismatch between edge %zu (%s) and %zu (%s)", I,
          Cur.toString().c_str(), (I + 1) % Cycle.size(),
          Next.toString().c_str()));
    if (Cur.Kind == EdgeKind::Po) {
      ++NumInternal;
      if ((Cur.Mech == PoMech::Addr || Cur.Mech == PoMech::Data ||
           Cur.Mech == PoMech::Ctrl || Cur.Mech == PoMech::CtrlCfence) &&
          Cur.Src != Dir::R)
        return Fail::error("diy: dependencies must start at a read");
      if (Cur.Mech == PoMech::Data && Cur.Dst != Dir::W)
        return Fail::error("diy: data dependencies must target a write");
      if (Cur.Mech == PoMech::Fence) {
        if (Cur.FenceName.empty())
          return Fail::error(
              strFormat("diy: edge %zu has a fence mechanism but no fence "
                        "name", I));
        if (!archHasFence(Target, Cur.FenceName))
          return Fail::error(strFormat(
              "diy: fence '%s' is not in the %s fence vocabulary",
              Cur.FenceName.c_str(), archName(Target).c_str()));
      }
      if (Cur.Mech == PoMech::CtrlCfence &&
          !archHasFence(Target, archControlFence(Target)))
        return Fail::error(strFormat(
            "diy: ctrl+cfence needs the control fence '%s', which is not "
            "in the %s fence vocabulary",
            archControlFence(Target), archName(Target).c_str()));
    } else if (isExternalEdge(Cur.Kind)) {
      ++NumExternal;
    }
  }
  if (NumExternal < 2)
    return Fail::error("diy: a critical cycle needs at least two threads");
  if (NumInternal < 1)
    return Fail::error("diy: a critical cycle needs a po edge");
  // Consecutive po edges would put three same-thread accesses with
  // nothing pinning the middle one; internal communication edges are the
  // sanctioned way to extend a thread (Figs. 32/33).
  for (size_t I = 0; I < Cycle.size(); ++I)
    if (Cycle[I].Kind == EdgeKind::Po &&
        Cycle[(I + 1) % Cycle.size()].Kind == EdgeKind::Po)
      return Fail::error("diy: consecutive po edges are not supported");

  // Lay out events: rotate so the cycle starts right after an external
  // edge (a thread boundary).
  size_t Start = 0;
  for (size_t I = 0; I < Cycle.size(); ++I)
    if (isExternalEdge(Cycle[I].Kind)) {
      Start = (I + 1) % Cycle.size();
      break;
    }

  std::vector<CycleEvent> Events(Cycle.size());
  std::vector<const DiyEdge *> OutEdge(Cycle.size());
  int Thread = 0, Loc = 0;
  for (size_t Step = 0; Step < Cycle.size(); ++Step) {
    size_t I = (Start + Step) % Cycle.size();
    const DiyEdge &Edge = Cycle[I];
    CycleEvent &Ev = Events[Step];
    Ev.Direction = Edge.Src;
    Ev.Thread = Thread;
    Ev.Loc = Loc;
    Ev.Index = Step;
    OutEdge[Step] = &Edge;
    if (Edge.Kind == EdgeKind::Po) {
      Loc = (Loc + 1) % static_cast<int>(NumInternal);
    } else if (isExternalEdge(Edge.Kind)) {
      ++Thread;
    }
    // Internal communication edges keep both the thread and the location.
  }
  unsigned NumThreads = NumExternal;
  unsigned NumLocs = NumInternal;
  (void)NumLocs;

  // Location names x, y, z, w, a, b...
  auto LocName = [](int L) {
    static const char *Names[] = {"x", "y", "z", "w", "a", "b", "c", "d"};
    assert(L >= 0 && L < 8 && "too many locations");
    return std::string(Names[L]);
  };

  // Coherence values: per location, writes in cycle order; Wse edges give
  // src-co-before-dst, which cycle order already respects because a Wse
  // edge's target is laid out after its source (modulo the wrap, where the
  // wrapped-to write is co-last: it is the first event, so instead order
  // by "position in co chain". We simply topologically order the at most
  // two writes per location via the Wse edges, defaulting to cycle order.
  std::map<int, std::vector<size_t>> WritesPerLoc;
  for (const CycleEvent &Ev : Events)
    if (Ev.Direction == Dir::W)
      WritesPerLoc[Ev.Loc].push_back(Ev.Index);
  // Coherence constraints: ws edges order source before target; a read
  // that takes its value from one write (rf in) and is from-read to
  // another (fr out) pins its rf source co-before the fr target.
  std::vector<std::pair<size_t, size_t>> CoConstraints;
  for (size_t I = 0; I < Events.size(); ++I) {
    const DiyEdge &Out = *OutEdge[I];
    size_t Next = (I + 1) % Events.size();
    if (Out.Kind == EdgeKind::Wse || Out.Kind == EdgeKind::Wsi)
      CoConstraints.push_back({I, Next});
    if (Out.Kind == EdgeKind::Fre || Out.Kind == EdgeKind::Fri) {
      const DiyEdge &In =
          *OutEdge[(I + Events.size() - 1) % Events.size()];
      if (In.Kind == EdgeKind::Rfe || In.Kind == EdgeKind::Rfi)
        CoConstraints.push_back(
            {(I + Events.size() - 1) % Events.size(), Next});
    }
  }
  for (auto &[L, Writes] : WritesPerLoc) {
    // Topological order under the constraints, tie-broken by cycle index.
    std::vector<size_t> Order;
    std::vector<bool> Placed(Events.size(), false);
    while (Order.size() < Writes.size()) {
      bool Progress = false;
      for (size_t W : Writes) {
        if (Placed[W])
          continue;
        bool Ready = true;
        for (auto [A, B] : CoConstraints)
          if (B == W && !Placed[A] && Events[A].Loc == L &&
              Events[A].Direction == Dir::W)
            Ready = false;
        if (Ready) {
          Order.push_back(W);
          Placed[W] = true;
          Progress = true;
        }
      }
      if (!Progress)
        return Fail::error("diy: cyclic coherence constraints");
    }
    Value V = 1;
    for (size_t W : Order)
      Events[W].Val = V++;
  }

  // Read values: an Rfe pins the read to its source write's value; a read
  // whose outgoing edge is Fre reads the co-predecessor of the Fre target.
  for (size_t I = 0; I < Events.size(); ++I) {
    const DiyEdge &In = *OutEdge[(I + Events.size() - 1) % Events.size()];
    CycleEvent &Ev = Events[I];
    if (Ev.Direction != Dir::R)
      continue;
    if (In.Kind == EdgeKind::Rfe || In.Kind == EdgeKind::Rfi) {
      Ev.Val = Events[(I + Events.size() - 1) % Events.size()].Val;
      continue;
    }
    // Outgoing must determine the value: from-read to the next event.
    const DiyEdge &Out = *OutEdge[I];
    if (Out.Kind == EdgeKind::Fre || Out.Kind == EdgeKind::Fri) {
      const CycleEvent &Target = Events[(I + 1) % Events.size()];
      // Value of the co-predecessor of Target at that location (0 = init).
      Value Pred = 0;
      for (size_t W : WritesPerLoc[Target.Loc])
        if (Events[W].Val < Target.Val && Events[W].Val > Pred)
          Pred = Events[W].Val;
      Ev.Val = Pred;
      continue;
    }
    // A read with po in and po out cannot occur (two accesses per thread).
    return Fail::error("diy: read value is unconstrained by the cycle");
  }

  // Emit code.
  LitmusTest Test;
  Test.TargetArch = Target;
  Test.Threads.resize(NumThreads);
  std::vector<ConditionAtom> Atoms;
  std::vector<Register> NextReg(NumThreads, 1);

  for (size_t I = 0; I < Events.size(); ++I) {
    CycleEvent &Ev = Events[I];
    ThreadCode &Code = Test.Threads[Ev.Thread];
    // The mechanism on the incoming edge, when it is a po edge of the same
    // thread, is emitted before this access.
    const DiyEdge &In = *OutEdge[(I + Events.size() - 1) % Events.size()];
    bool HasInPo = In.Kind == EdgeKind::Po;
    Register SrcReg = -1;
    if (HasInPo) {
      const CycleEvent &Prev =
          Events[(I + Events.size() - 1) % Events.size()];
      SrcReg = Prev.Reg; // Reads record their register below.
      switch (In.Mech) {
      case PoMech::None:
        break;
      case PoMech::Fence:
        Code.push_back(Instruction::fenceNamed(In.FenceName));
        break;
      case PoMech::Ctrl:
        Code.push_back(Instruction::cmpBranch(SrcReg));
        break;
      case PoMech::CtrlCfence:
        Code.push_back(Instruction::cmpBranch(SrcReg));
        Code.push_back(Instruction::fenceNamed(archControlFence(Target)));
        break;
      case PoMech::Addr:
      case PoMech::Data:
        // Emitted as part of the access below.
        break;
      }
    }

    if (Ev.Direction == Dir::R) {
      Register Dst = NextReg[Ev.Thread]++;
      Ev.Reg = Dst;
      Register AddrDep = -1;
      if (HasInPo && In.Mech == PoMech::Addr) {
        AddrDep = NextReg[Ev.Thread]++;
        Code.push_back(Instruction::xorOp(AddrDep, SrcReg, SrcReg));
      }
      Code.push_back(Instruction::load(Dst, LocName(Ev.Loc), AddrDep));
      Atoms.push_back(ConditionAtom::regEquals(Ev.Thread, Dst, Ev.Val));
    } else {
      if (HasInPo && In.Mech == PoMech::Addr) {
        Register AddrDep = NextReg[Ev.Thread]++;
        Code.push_back(Instruction::xorOp(AddrDep, SrcReg, SrcReg));
        Code.push_back(Instruction::store(
            LocName(Ev.Loc), Operand::imm(Ev.Val), AddrDep));
      } else if (HasInPo && In.Mech == PoMech::Data) {
        // Value dependency preserving the assigned value: zero the source
        // register, add the constant.
        Register ImmReg = NextReg[Ev.Thread]++;
        Register ZeroReg = NextReg[Ev.Thread]++;
        Register ValReg = NextReg[Ev.Thread]++;
        // mov of the immediate is untainted and placed just before use.
        Code.push_back(Instruction::move(ImmReg, Operand::imm(Ev.Val)));
        Code.push_back(Instruction::xorOp(ZeroReg, SrcReg, SrcReg));
        Code.push_back(Instruction::addOp(ValReg, ZeroReg, ImmReg));
        Code.push_back(
            Instruction::store(LocName(Ev.Loc), Operand::reg(ValReg)));
      } else {
        Code.push_back(Instruction::store(LocName(Ev.Loc),
                                          Operand::imm(Ev.Val)));
      }
    }
  }

  // Final-state atoms pinning coherence for multi-write locations.
  for (const auto &[L, Writes] : WritesPerLoc) {
    if (Writes.size() < 2)
      continue;
    Value Max = 0;
    for (size_t W : Writes)
      Max = std::max(Max, Events[W].Val);
    Atoms.push_back(ConditionAtom::memEquals(LocName(L), Max));
  }
  Test.Final.addConjunction(std::move(Atoms));

  // Canonical name: cycleName rotates to the classic-family alignment (or
  // the least boundary rotation), so every rotation of the same cycle gets
  // the same name and enumeration dedup agrees with test naming.
  Test.Name = NameOverride.empty() ? cycleName(Cycle, Target) : NameOverride;

  std::string Problem = Test.validate();
  if (!Problem.empty())
    return Fail::error("diy: generated an invalid test: " + Problem);
  return Test;
}

std::vector<LitmusTest> cats::generateBattery(Arch Target,
                                              unsigned MaxPerFamily) {
  // Mechanism vocabulary per architecture.
  std::vector<std::pair<PoMech, std::string>> Mechs = {
      {PoMech::None, ""}};
  switch (Target) {
  case Arch::Power:
    Mechs.push_back({PoMech::Fence, fence::Sync});
    Mechs.push_back({PoMech::Fence, fence::LwSync});
    Mechs.push_back({PoMech::Fence, fence::Eieio});
    break;
  case Arch::ARM:
    Mechs.push_back({PoMech::Fence, fence::Dmb});
    Mechs.push_back({PoMech::Fence, fence::DmbSt});
    break;
  case Arch::TSO:
    Mechs.push_back({PoMech::Fence, fence::MFence});
    break;
  case Arch::SC:
  case Arch::CppRA:
    break;
  }
  bool HasDeps = Target == Arch::Power || Target == Arch::ARM;

  std::vector<LitmusTest> Battery;
  for (const auto &[Family, Base] : classicFamilies()) {
    // Indices of po edges in the base cycle.
    std::vector<size_t> PoEdges;
    for (size_t I = 0; I < Base.size(); ++I)
      if (Base[I].Kind == EdgeKind::Po)
        PoEdges.push_back(I);

    // Per-edge choices.
    std::vector<std::vector<DiyEdge>> Choices(PoEdges.size());
    for (size_t K = 0; K < PoEdges.size(); ++K) {
      const DiyEdge &E = Base[PoEdges[K]];
      for (const auto &[Mech, Fence] : Mechs)
        Choices[K].push_back(
            DiyEdge::po(E.Src, E.Dst, Mech, Fence));
      if (HasDeps && E.Src == Dir::R) {
        Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Addr));
        Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Ctrl));
        Choices[K].push_back(
            DiyEdge::po(E.Src, E.Dst, PoMech::CtrlCfence));
        if (E.Dst == Dir::W)
          Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Data));
      }
    }

    // Cross product. Rotation-symmetric families (sb, lb, 2+2w, iriw)
    // produce the same cycle twice under swapped mechanism assignments;
    // canonical names make those collisions visible, so dedup on the name.
    std::vector<size_t> Pick(PoEdges.size(), 0);
    std::set<std::string> SeenNames;
    unsigned Emitted = 0;
    while (true) {
      DiyCycle Cycle = Base;
      for (size_t K = 0; K < PoEdges.size(); ++K)
        Cycle[PoEdges[K]] = Choices[K][Pick[K]];
      auto Test = synthesizeTest(Cycle, Target);
      if (Test && SeenNames.insert(Test->Name).second) {
        Battery.push_back(Test.take());
        ++Emitted;
        if (MaxPerFamily && Emitted >= MaxPerFamily)
          break;
      }
      size_t K = 0;
      for (; K < PoEdges.size(); ++K) {
        if (++Pick[K] < Choices[K].size())
          break;
        Pick[K] = 0;
      }
      if (K == PoEdges.size())
        break;
    }
  }
  return Battery;
}
