//===- Diy.cpp - Cycle-based litmus test generation -----------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "diy/Diy.h"

#include "event/Execution.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace cats;

bool cats::isExternalEdge(EdgeKind Kind) {
  return Kind == EdgeKind::Rfe || Kind == EdgeKind::Fre ||
         Kind == EdgeKind::Wse;
}

bool cats::isInternalComEdge(EdgeKind Kind) {
  return Kind == EdgeKind::Rfi || Kind == EdgeKind::Fri ||
         Kind == EdgeKind::Wsi;
}

std::string DiyEdge::toString() const {
  switch (Kind) {
  case EdgeKind::Rfe:
    return "Rfe";
  case EdgeKind::Fre:
    return "Fre";
  case EdgeKind::Wse:
    return "Wse";
  case EdgeKind::Rfi:
    return "Rfi";
  case EdgeKind::Fri:
    return "Fri";
  case EdgeKind::Wsi:
    return "Wsi";
  case EdgeKind::Po:
    break;
  }
  auto DirName = [](Dir D) { return D == Dir::R ? "R" : "W"; };
  switch (Mech) {
  case PoMech::None:
    return strFormat("Pod%s%s", DirName(Src), DirName(Dst));
  case PoMech::Addr:
    return strFormat("DpAddrd%s", DirName(Dst));
  case PoMech::Data:
    return "DpDatadW";
  case PoMech::Ctrl:
    return strFormat("DpCtrld%s", DirName(Dst));
  case PoMech::CtrlCfence:
    return strFormat("DpCtrlCfenced%s", DirName(Dst));
  case PoMech::Fence:
    return strFormat("Fenced%s%s:%s", DirName(Src), DirName(Dst),
                     FenceName.c_str());
  }
  return "?";
}

namespace {

/// One event of the laid-out cycle.
struct CycleEvent {
  Dir Direction;
  int Thread;
  int Loc;
  /// Index in the cycle.
  size_t Index;
  /// For writes: the assigned value (co position). For reads: the value
  /// the condition pins.
  Value Val = 0;
  /// For reads: the register receiving the value.
  Register Reg = -1;
};

/// Mechanism names for test naming.
std::string mechSuffix(const DiyEdge &E, Arch Target) {
  switch (E.Mech) {
  case PoMech::None:
    return "po";
  case PoMech::Addr:
    return "addr";
  case PoMech::Data:
    return "data";
  case PoMech::Ctrl:
    return "ctrl";
  case PoMech::CtrlCfence:
    return Target == Arch::ARM ? "ctrlisb" : "ctrlisync";
  case PoMech::Fence:
    return E.FenceName;
  }
  return "?";
}

} // namespace

std::string cats::cycleName(const DiyCycle &Cycle) {
  // Classic family detection by rotation-invariant edge signature.
  auto Signature = [](const DiyCycle &C) {
    std::string Sig;
    for (const DiyEdge &E : C) {
      switch (E.Kind) {
      case EdgeKind::Rfe:
        Sig += "r";
        break;
      case EdgeKind::Fre:
        Sig += "f";
        break;
      case EdgeKind::Wse:
        Sig += "w";
        break;
      case EdgeKind::Rfi:
        Sig += "ri";
        break;
      case EdgeKind::Fri:
        Sig += "fi";
        break;
      case EdgeKind::Wsi:
        Sig += "wi";
        break;
      case EdgeKind::Po:
        Sig += (E.Src == Dir::R ? "pR" : "pW");
        Sig += (E.Dst == Dir::R ? "R" : "W");
        break;
      }
    }
    return Sig;
  };
  auto RotationsMatch = [&](const DiyCycle &A, const DiyCycle &B) {
    if (A.size() != B.size())
      return false;
    std::string SigB = Signature(B);
    DiyCycle Rot = A;
    for (size_t I = 0; I < A.size(); ++I) {
      if (Signature(Rot) == SigB)
        return true;
      std::rotate(Rot.begin(), Rot.begin() + 1, Rot.end());
    }
    return false;
  };

  std::string Base;
  for (const auto &[Family, FamilyCycle] : classicFamilies())
    if (RotationsMatch(Cycle, FamilyCycle)) {
      Base = Family;
      break;
    }
  if (Base.empty()) {
    // Systematic name: per-thread direction strings (Tab. III). Internal
    // communication edges (rfi/fri/wsi) continue the thread; only
    // external edges end it.
    std::vector<std::string> Threads;
    std::string Current;
    for (const DiyEdge &E : Cycle) {
      if (!isExternalEdge(E.Kind)) {
        if (Current.empty())
          Current += E.Src == Dir::R ? 'r' : 'w';
        Current += E.Dst == Dir::R ? 'r' : 'w';
      } else {
        if (Current.empty())
          Current += E.Src == Dir::R ? 'r' : 'w';
        Threads.push_back(Current);
        Current.clear();
      }
    }
    if (!Current.empty())
      Threads.push_back(Current);
    Base = joinStrings(Threads, "+");
  }

  // Mechanism suffixes, in cycle order, only when any is non-plain.
  bool AnyMech = false;
  for (const DiyEdge &E : Cycle)
    if (E.Kind == EdgeKind::Po && E.Mech != PoMech::None)
      AnyMech = true;
  if (!AnyMech)
    return Base;
  std::string Name = Base;
  for (const DiyEdge &E : Cycle)
    if (E.Kind == EdgeKind::Po)
      Name += "+" + mechSuffix(E, Arch::Power);
  return Name;
}

std::vector<std::pair<std::string, DiyCycle>> cats::classicFamilies() {
  using E = DiyEdge;
  return {
      {"mp", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::R),
              E::fre()}},
      {"sb", {E::po(Dir::W, Dir::R), E::fre(), E::po(Dir::W, Dir::R),
              E::fre()}},
      {"lb", {E::po(Dir::R, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
              E::rfe()}},
      {"wrc", {E::rfe(), E::po(Dir::R, Dir::W), E::rfe(),
               E::po(Dir::R, Dir::R), E::fre()}},
      {"isa2", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
                E::rfe(), E::po(Dir::R, Dir::R), E::fre()}},
      {"2+2w", {E::po(Dir::W, Dir::W), E::wse(), E::po(Dir::W, Dir::W),
                E::wse()}},
      {"w+rw+2w", {E::rfe(), E::po(Dir::R, Dir::W), E::wse(),
                   E::po(Dir::W, Dir::W), E::wse()}},
      {"rwc", {E::rfe(), E::po(Dir::R, Dir::R), E::fre(),
               E::po(Dir::W, Dir::R), E::fre()}},
      {"r", {E::po(Dir::W, Dir::W), E::wse(), E::po(Dir::W, Dir::R),
             E::fre()}},
      {"s", {E::po(Dir::W, Dir::W), E::rfe(), E::po(Dir::R, Dir::W),
             E::wse()}},
      {"iriw", {E::rfe(), E::po(Dir::R, Dir::R), E::fre(), E::rfe(),
                E::po(Dir::R, Dir::R), E::fre()}},
  };
}

Expected<LitmusTest> cats::synthesizeTest(const DiyCycle &Cycle,
                                          Arch Target,
                                          const std::string &NameOverride) {
  using Fail = Expected<LitmusTest>;
  if (Cycle.empty())
    return Fail::error("diy: empty cycle");

  // Direction coherence between consecutive edges, and counting.
  unsigned NumExternal = 0, NumInternal = 0;
  for (size_t I = 0; I < Cycle.size(); ++I) {
    const DiyEdge &Cur = Cycle[I];
    const DiyEdge &Next = Cycle[(I + 1) % Cycle.size()];
    if (Cur.Dst != Next.Src)
      return Fail::error(strFormat(
          "diy: direction mismatch between edge %zu (%s) and %zu (%s)", I,
          Cur.toString().c_str(), (I + 1) % Cycle.size(),
          Next.toString().c_str()));
    if (Cur.Kind == EdgeKind::Po) {
      ++NumInternal;
      if ((Cur.Mech == PoMech::Addr || Cur.Mech == PoMech::Data ||
           Cur.Mech == PoMech::Ctrl || Cur.Mech == PoMech::CtrlCfence) &&
          Cur.Src != Dir::R)
        return Fail::error("diy: dependencies must start at a read");
      if (Cur.Mech == PoMech::Data && Cur.Dst != Dir::W)
        return Fail::error("diy: data dependencies must target a write");
      if (Cur.Mech == PoMech::Fence) {
        if (Cur.FenceName.empty())
          return Fail::error(
              strFormat("diy: edge %zu has a fence mechanism but no fence "
                        "name", I));
        if (!archHasFence(Target, Cur.FenceName))
          return Fail::error(strFormat(
              "diy: fence '%s' is not in the %s fence vocabulary",
              Cur.FenceName.c_str(), archName(Target).c_str()));
      }
      if (Cur.Mech == PoMech::CtrlCfence &&
          !archHasFence(Target, archControlFence(Target)))
        return Fail::error(strFormat(
            "diy: ctrl+cfence needs the control fence '%s', which is not "
            "in the %s fence vocabulary",
            archControlFence(Target), archName(Target).c_str()));
    } else if (isExternalEdge(Cur.Kind)) {
      ++NumExternal;
    }
  }
  if (NumExternal < 2)
    return Fail::error("diy: a critical cycle needs at least two threads");
  if (NumInternal < 1)
    return Fail::error("diy: a critical cycle needs a po edge");
  // Consecutive po edges would put three same-thread accesses with
  // nothing pinning the middle one; internal communication edges are the
  // sanctioned way to extend a thread (Figs. 32/33).
  for (size_t I = 0; I < Cycle.size(); ++I)
    if (Cycle[I].Kind == EdgeKind::Po &&
        Cycle[(I + 1) % Cycle.size()].Kind == EdgeKind::Po)
      return Fail::error("diy: consecutive po edges are not supported");

  // Lay out events: rotate so the cycle starts right after an external
  // edge (a thread boundary).
  size_t Start = 0;
  for (size_t I = 0; I < Cycle.size(); ++I)
    if (isExternalEdge(Cycle[I].Kind)) {
      Start = (I + 1) % Cycle.size();
      break;
    }

  std::vector<CycleEvent> Events(Cycle.size());
  std::vector<const DiyEdge *> OutEdge(Cycle.size());
  int Thread = 0, Loc = 0;
  for (size_t Step = 0; Step < Cycle.size(); ++Step) {
    size_t I = (Start + Step) % Cycle.size();
    const DiyEdge &Edge = Cycle[I];
    CycleEvent &Ev = Events[Step];
    Ev.Direction = Edge.Src;
    Ev.Thread = Thread;
    Ev.Loc = Loc;
    Ev.Index = Step;
    OutEdge[Step] = &Edge;
    if (Edge.Kind == EdgeKind::Po) {
      Loc = (Loc + 1) % static_cast<int>(NumInternal);
    } else if (isExternalEdge(Edge.Kind)) {
      ++Thread;
    }
    // Internal communication edges keep both the thread and the location.
  }
  unsigned NumThreads = NumExternal;
  unsigned NumLocs = NumInternal;
  (void)NumLocs;

  // Location names x, y, z, w, a, b...
  auto LocName = [](int L) {
    static const char *Names[] = {"x", "y", "z", "w", "a", "b", "c", "d"};
    assert(L >= 0 && L < 8 && "too many locations");
    return std::string(Names[L]);
  };

  // Coherence values: per location, writes in cycle order; Wse edges give
  // src-co-before-dst, which cycle order already respects because a Wse
  // edge's target is laid out after its source (modulo the wrap, where the
  // wrapped-to write is co-last: it is the first event, so instead order
  // by "position in co chain". We simply topologically order the at most
  // two writes per location via the Wse edges, defaulting to cycle order.
  std::map<int, std::vector<size_t>> WritesPerLoc;
  for (const CycleEvent &Ev : Events)
    if (Ev.Direction == Dir::W)
      WritesPerLoc[Ev.Loc].push_back(Ev.Index);
  // Coherence constraints: ws edges order source before target; a read
  // that takes its value from one write (rf in) and is from-read to
  // another (fr out) pins its rf source co-before the fr target.
  std::vector<std::pair<size_t, size_t>> CoConstraints;
  for (size_t I = 0; I < Events.size(); ++I) {
    const DiyEdge &Out = *OutEdge[I];
    size_t Next = (I + 1) % Events.size();
    if (Out.Kind == EdgeKind::Wse || Out.Kind == EdgeKind::Wsi)
      CoConstraints.push_back({I, Next});
    if (Out.Kind == EdgeKind::Fre || Out.Kind == EdgeKind::Fri) {
      const DiyEdge &In =
          *OutEdge[(I + Events.size() - 1) % Events.size()];
      if (In.Kind == EdgeKind::Rfe || In.Kind == EdgeKind::Rfi)
        CoConstraints.push_back(
            {(I + Events.size() - 1) % Events.size(), Next});
    }
  }
  for (auto &[L, Writes] : WritesPerLoc) {
    // Topological order under the constraints, tie-broken by cycle index.
    std::vector<size_t> Order;
    std::vector<bool> Placed(Events.size(), false);
    while (Order.size() < Writes.size()) {
      bool Progress = false;
      for (size_t W : Writes) {
        if (Placed[W])
          continue;
        bool Ready = true;
        for (auto [A, B] : CoConstraints)
          if (B == W && !Placed[A] && Events[A].Loc == L &&
              Events[A].Direction == Dir::W)
            Ready = false;
        if (Ready) {
          Order.push_back(W);
          Placed[W] = true;
          Progress = true;
        }
      }
      if (!Progress)
        return Fail::error("diy: cyclic coherence constraints");
    }
    Value V = 1;
    for (size_t W : Order)
      Events[W].Val = V++;
  }

  // Read values: an Rfe pins the read to its source write's value; a read
  // whose outgoing edge is Fre reads the co-predecessor of the Fre target.
  for (size_t I = 0; I < Events.size(); ++I) {
    const DiyEdge &In = *OutEdge[(I + Events.size() - 1) % Events.size()];
    CycleEvent &Ev = Events[I];
    if (Ev.Direction != Dir::R)
      continue;
    if (In.Kind == EdgeKind::Rfe || In.Kind == EdgeKind::Rfi) {
      Ev.Val = Events[(I + Events.size() - 1) % Events.size()].Val;
      continue;
    }
    // Outgoing must determine the value: from-read to the next event.
    const DiyEdge &Out = *OutEdge[I];
    if (Out.Kind == EdgeKind::Fre || Out.Kind == EdgeKind::Fri) {
      const CycleEvent &Target = Events[(I + 1) % Events.size()];
      // Value of the co-predecessor of Target at that location (0 = init).
      Value Pred = 0;
      for (size_t W : WritesPerLoc[Target.Loc])
        if (Events[W].Val < Target.Val && Events[W].Val > Pred)
          Pred = Events[W].Val;
      Ev.Val = Pred;
      continue;
    }
    // A read with po in and po out cannot occur (two accesses per thread).
    return Fail::error("diy: read value is unconstrained by the cycle");
  }

  // Emit code.
  LitmusTest Test;
  Test.TargetArch = Target;
  Test.Threads.resize(NumThreads);
  std::vector<ConditionAtom> Atoms;
  std::vector<Register> NextReg(NumThreads, 1);

  for (size_t I = 0; I < Events.size(); ++I) {
    CycleEvent &Ev = Events[I];
    ThreadCode &Code = Test.Threads[Ev.Thread];
    // The mechanism on the incoming edge, when it is a po edge of the same
    // thread, is emitted before this access.
    const DiyEdge &In = *OutEdge[(I + Events.size() - 1) % Events.size()];
    bool HasInPo = In.Kind == EdgeKind::Po;
    Register SrcReg = -1;
    if (HasInPo) {
      const CycleEvent &Prev =
          Events[(I + Events.size() - 1) % Events.size()];
      SrcReg = Prev.Reg; // Reads record their register below.
      switch (In.Mech) {
      case PoMech::None:
        break;
      case PoMech::Fence:
        Code.push_back(Instruction::fenceNamed(In.FenceName));
        break;
      case PoMech::Ctrl:
        Code.push_back(Instruction::cmpBranch(SrcReg));
        break;
      case PoMech::CtrlCfence:
        Code.push_back(Instruction::cmpBranch(SrcReg));
        Code.push_back(Instruction::fenceNamed(archControlFence(Target)));
        break;
      case PoMech::Addr:
      case PoMech::Data:
        // Emitted as part of the access below.
        break;
      }
    }

    if (Ev.Direction == Dir::R) {
      Register Dst = NextReg[Ev.Thread]++;
      Ev.Reg = Dst;
      Register AddrDep = -1;
      if (HasInPo && In.Mech == PoMech::Addr) {
        AddrDep = NextReg[Ev.Thread]++;
        Code.push_back(Instruction::xorOp(AddrDep, SrcReg, SrcReg));
      }
      Code.push_back(Instruction::load(Dst, LocName(Ev.Loc), AddrDep));
      Atoms.push_back(ConditionAtom::regEquals(Ev.Thread, Dst, Ev.Val));
    } else {
      if (HasInPo && In.Mech == PoMech::Addr) {
        Register AddrDep = NextReg[Ev.Thread]++;
        Code.push_back(Instruction::xorOp(AddrDep, SrcReg, SrcReg));
        Code.push_back(Instruction::store(
            LocName(Ev.Loc), Operand::imm(Ev.Val), AddrDep));
      } else if (HasInPo && In.Mech == PoMech::Data) {
        // Value dependency preserving the assigned value: zero the source
        // register, add the constant.
        Register ImmReg = NextReg[Ev.Thread]++;
        Register ZeroReg = NextReg[Ev.Thread]++;
        Register ValReg = NextReg[Ev.Thread]++;
        // mov of the immediate is untainted and placed just before use.
        Code.push_back(Instruction::move(ImmReg, Operand::imm(Ev.Val)));
        Code.push_back(Instruction::xorOp(ZeroReg, SrcReg, SrcReg));
        Code.push_back(Instruction::addOp(ValReg, ZeroReg, ImmReg));
        Code.push_back(
            Instruction::store(LocName(Ev.Loc), Operand::reg(ValReg)));
      } else {
        Code.push_back(Instruction::store(LocName(Ev.Loc),
                                          Operand::imm(Ev.Val)));
      }
    }
  }

  // Final-state atoms pinning coherence for multi-write locations.
  for (const auto &[L, Writes] : WritesPerLoc) {
    if (Writes.size() < 2)
      continue;
    Value Max = 0;
    for (size_t W : Writes)
      Max = std::max(Max, Events[W].Val);
    Atoms.push_back(ConditionAtom::memEquals(LocName(L), Max));
  }
  Test.Final.addConjunction(std::move(Atoms));

  // Name from the cycle as given, so mechanism suffixes follow the
  // caller's edge order (the paper's convention: write side first for mp).
  Test.Name = NameOverride.empty() ? cycleName(Cycle) : NameOverride;

  std::string Problem = Test.validate();
  if (!Problem.empty())
    return Fail::error("diy: generated an invalid test: " + Problem);
  return Test;
}

std::vector<LitmusTest> cats::generateBattery(Arch Target,
                                              unsigned MaxPerFamily) {
  // Mechanism vocabulary per architecture.
  std::vector<std::pair<PoMech, std::string>> Mechs = {
      {PoMech::None, ""}};
  switch (Target) {
  case Arch::Power:
    Mechs.push_back({PoMech::Fence, fence::Sync});
    Mechs.push_back({PoMech::Fence, fence::LwSync});
    Mechs.push_back({PoMech::Fence, fence::Eieio});
    break;
  case Arch::ARM:
    Mechs.push_back({PoMech::Fence, fence::Dmb});
    Mechs.push_back({PoMech::Fence, fence::DmbSt});
    break;
  case Arch::TSO:
    Mechs.push_back({PoMech::Fence, fence::MFence});
    break;
  case Arch::SC:
  case Arch::CppRA:
    break;
  }
  bool HasDeps = Target == Arch::Power || Target == Arch::ARM;

  std::vector<LitmusTest> Battery;
  for (const auto &[Family, Base] : classicFamilies()) {
    // Indices of po edges in the base cycle.
    std::vector<size_t> PoEdges;
    for (size_t I = 0; I < Base.size(); ++I)
      if (Base[I].Kind == EdgeKind::Po)
        PoEdges.push_back(I);

    // Per-edge choices.
    std::vector<std::vector<DiyEdge>> Choices(PoEdges.size());
    for (size_t K = 0; K < PoEdges.size(); ++K) {
      const DiyEdge &E = Base[PoEdges[K]];
      for (const auto &[Mech, Fence] : Mechs)
        Choices[K].push_back(
            DiyEdge::po(E.Src, E.Dst, Mech, Fence));
      if (HasDeps && E.Src == Dir::R) {
        Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Addr));
        Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Ctrl));
        Choices[K].push_back(
            DiyEdge::po(E.Src, E.Dst, PoMech::CtrlCfence));
        if (E.Dst == Dir::W)
          Choices[K].push_back(DiyEdge::po(E.Src, E.Dst, PoMech::Data));
      }
    }

    // Cross product.
    std::vector<size_t> Pick(PoEdges.size(), 0);
    unsigned Emitted = 0;
    while (true) {
      DiyCycle Cycle = Base;
      for (size_t K = 0; K < PoEdges.size(); ++K)
        Cycle[PoEdges[K]] = Choices[K][Pick[K]];
      auto Test = synthesizeTest(Cycle, Target);
      if (Test) {
        Battery.push_back(Test.take());
        ++Emitted;
        if (MaxPerFamily && Emitted >= MaxPerFamily)
          break;
      }
      size_t K = 0;
      for (; K < PoEdges.size(); ++K) {
        if (++Pick[K] < Choices[K].size())
          break;
        Pick[K] = 0;
      }
      if (K == PoEdges.size())
        break;
    }
  }
  return Battery;
}
