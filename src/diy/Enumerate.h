//===- Enumerate.h - Exhaustive critical-cycle enumeration ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diycross layer (Sec. 8.1): instead of hand-picking the dozen
/// classic families, exhaustively enumerate every well-formed critical
/// cycle up to a configurable length over a per-architecture edge
/// vocabulary — program-order edges carrying each ordering mechanism
/// (plain po, dependencies, fences) in every direction pair, crossed with
/// the communication edges (Rfe/Fre/Wse, optionally the internal
/// rfi/fri/wsi detours of Figs. 32/33).
///
/// Cycles are canonicalized modulo rotation via diy::canonicalCycle /
/// diy::cycleName, so each shape is emitted exactly once, under the same
/// name its synthesized test will carry. Enumeration is streaming: the
/// callback sees one canonical cycle at a time, tests are synthesized on
/// demand (makeDiyTestSource), and the sweep engine consumes the corpus
/// in batches (SweepEngine::runStreamed) — thousands of scenarios without
/// thousands of LitmusTests in memory.
///
/// Well-formedness mirrors synthesizeTest plus the paper's criticality
/// conditions (Sec. 8.1): directions chain around the cycle, at least two
/// threads (external edges), no two consecutive po edges, at least two po
/// edges (so the cycle spans two locations), per-thread and per-location
/// access caps.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_DIY_ENUMERATE_H
#define CATS_DIY_ENUMERATE_H

#include "diy/Diy.h"
#include "litmus/TestFilter.h"

#include <functional>
#include <string>
#include <vector>

namespace cats {

/// Configuration of one enumeration.
struct EnumerateOptions {
  Arch Target = Arch::Power;
  /// Cycle length bounds, in edges (== events). Critical cycles need at
  /// least four edges (two po, two communications), so smaller minima are
  /// simply never reached.
  unsigned MinEdges = 3;
  unsigned MaxEdges = 4;
  /// Include dependency mechanisms (addr/ctrl/ctrl+cfence/data) on the
  /// architectures that have them (Power, ARM).
  bool Dependencies = true;
  /// Include the architecture's ordering fences (sync/lwsync/eieio on
  /// Power, dmb/dmb.st on ARM, mfence on TSO).
  bool Fences = true;
  /// Include the internal communication edges rfi/fri/wsi, enabling the
  /// extended detour shapes of Figs. 32/33 (threads up to four accesses).
  bool InternalCom = false;
  /// Stop after this many canonical cycles (0 = exhaustive).
  uint64_t Limit = 0;
};

/// One enumerated cycle, in canonical rotation, with its canonical name.
struct EnumeratedCycle {
  DiyCycle Cycle;
  std::string Name;
};

/// The edge vocabulary the enumeration draws from, in the deterministic
/// order the search explores: po edges (every direction pair x every
/// mechanism the options admit), then the communication edges.
std::vector<DiyEdge> edgeVocabulary(const EnumerateOptions &Opts);

/// Exhaustively enumerates the canonical critical cycles of at most
/// Opts.MaxEdges edges, invoking \p Fn once per canonical cycle in a
/// deterministic order. \p Fn returns false to stop early; Opts.Limit
/// caps the emission count. Returns the number of cycles emitted.
uint64_t
enumerateCycles(const EnumerateOptions &Opts,
                const std::function<bool(const EnumeratedCycle &)> &Fn);

/// Materializes the enumeration (cycles are a few dozen bytes each; this
/// is fine for bounded sizes — tests stay lazy either way).
std::vector<EnumeratedCycle> enumerateAll(const EnumerateOptions &Opts);

/// Materializes the cycles whose canonical name matches \p FilterRegex
/// (empty = all); Opts.Limit counts *matching* cycles, so a filter
/// composed with a limit yields the first N matches. The shared front
/// half of makeDiyTestSource and the cats_diy CLI. Fails on a malformed
/// regex.
Expected<std::vector<EnumeratedCycle>>
enumerateMatching(const EnumerateOptions &Opts,
                  const std::string &FilterRegex = "");

/// A streaming test source over the enumeration: cycles whose canonical
/// name matches \p FilterRegex (empty = all) are synthesized on demand,
/// one test per pull. Cycles that fail synthesis are skipped; when
/// \p SynthesisErrors is non-null each failure appends one diagnostic.
/// Fails on a malformed regex.
Expected<TestSource>
makeDiyTestSource(const EnumerateOptions &Opts,
                  const std::string &FilterRegex = "",
                  std::vector<std::string> *SynthesisErrors = nullptr);

} // namespace cats

#endif // CATS_DIY_ENUMERATE_H
