//===- SweepEngine.h - Parallel batch litmus sweeps -----------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign driver behind the paper's tables: run many litmus tests
/// against many models at once. Each job is one test plus a model set; the
/// engine compiles the test once, enumerates its candidate space once, and
/// checks every model of the set against each candidate in the same pass
/// (herd/Simulator's MultiModelChecker), instead of one full enumeration
/// per model as the legacy per-model simulate() loop does.
///
/// Jobs are distributed over a pool of std::thread workers. Results land in
/// a slot per job, so the report order equals submission order and is
/// byte-for-byte deterministic for any worker count.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SWEEP_SWEEPENGINE_H
#define CATS_SWEEP_SWEEPENGINE_H

#include "herd/Simulator.h"
#include "litmus/LitmusTest.h"
#include "litmus/TestFilter.h"
#include "model/Model.h"
#include "sweep/Json.h"

#include <string>
#include <vector>

namespace cats {

/// One unit of sweep work: a litmus test and the models to judge it under.
/// Model instances must be stateless (every registry model is) and outlive
/// the sweep.
struct SweepJob {
  LitmusTest Test;
  std::vector<const Model *> Models;
};

/// The outcome of one job.
struct SweepTestResult {
  std::string TestName;
  /// Non-empty when the test failed to validate/compile; Result is then
  /// empty and the sweep's exit status reflects the failure.
  std::string Error;
  MultiSimulationResult Result;
  /// Wall time of this job on its worker, seconds.
  double WallSeconds = 0;
};

/// Engine configuration.
struct SweepOptions {
  /// Worker threads; 0 means std::thread::hardware_concurrency(). Values
  /// above the hardware concurrency are clamped to it: sweep jobs are
  /// CPU-bound, so oversubscription only adds context switching.
  unsigned Jobs = 0;
  /// Judging backend for every job (docs/enumeration.md). Pruned is
  /// byte-identical to Naive; Bmc is opt-in (lower-bound allowed counts).
  JudgeBackend Backend = JudgeBackend::Pruned;
  /// Capture per-(test, model) witnesses (docs/explain.md). Off by
  /// default: the report rendering is then byte-identical to a
  /// witness-unaware build.
  bool Witness = false;
};

/// A completed sweep: per-job results in submission order.
struct SweepReport {
  std::vector<SweepTestResult> Tests;
  /// Wall time of the whole sweep, seconds.
  double WallSeconds = 0;
  /// Worker threads actually used.
  unsigned Jobs = 1;
  /// Result-cache statistics of a streamed run with cache hooks attached
  /// (campaign/ResultCache.h). CacheUsed stays false on plain runs and
  /// the JSON report then omits the "cache" stanza, keeping the
  /// rendering byte-compatible with pre-campaign reports.
  bool CacheUsed = false;
  unsigned long long CacheHits = 0;
  unsigned long long CacheMisses = 0;

  /// True when no job carries an error.
  bool allOk() const;
};

/// Optional instrumentation of a streamed campaign (runStreamed). All
/// members default to inert; the campaign layer (src/campaign/) supplies
/// them for caching and checkpoint/resume without the engine depending on
/// either subsystem.
struct StreamHooks {
  /// Consulted per pulled test before judging; return true and fill the
  /// result to skip the batch entirely (a cache hit). Hit results land in
  /// the report at the test's source position, exactly as if judged.
  std::function<bool(const LitmusTest &, SweepTestResult &)> CacheLookup;
  /// Offered every freshly judged result (cache population).
  std::function<void(const LitmusTest &, const SweepTestResult &)> CacheStore;
  /// Called after each completed batch with the cumulative report and the
  /// total number of source tests consumed so far — the checkpoint write
  /// point: everything in the report is final, nothing in flight.
  std::function<void(const SweepReport &SoFar, unsigned long long Consumed)>
      OnBatch;
  /// Pull and discard this many source tests before judging anything —
  /// how --resume skips the prefix a checkpoint already covers (synthesis
  /// is repaid, judging — the dominant cost — is not).
  unsigned long long SkipTests = 0;
};

/// Runs litmus sweeps over a worker pool.
class SweepEngine {
public:
  explicit SweepEngine(SweepOptions Opts = {});

  /// Worker threads this engine will use.
  unsigned workerCount() const { return Workers; }

  /// Runs every job and returns the report. Thread-safe for concurrent
  /// calls (the engine holds no mutable state).
  SweepReport run(const std::vector<SweepJob> &Jobs) const;

  /// Streamed campaign: pulls up to \p BatchSize tests from \p Source,
  /// judges the batch under \p Models as one run() pass, appends the
  /// results, and repeats until the source drains. Results keep source
  /// order; peak memory is one batch of tests plus the accumulated
  /// (test-free) results — this is how the diy enumeration feeds
  /// thousands of generated scenarios through the engine. \p Hooks adds
  /// the campaign-scale behaviours: result-cache lookup/store around each
  /// test, a per-batch checkpoint callback, and a resume skip count.
  SweepReport runStreamed(const TestSource &Source,
                          const std::vector<const Model *> &Models,
                          unsigned BatchSize = 64,
                          const StreamHooks &Hooks = {}) const;

private:
  unsigned Workers;
  JudgeBackend Backend;
  bool Witness;
};

/// Convenience: one job per test, all judged under the same \p Models.
std::vector<SweepJob> makeJobs(const std::vector<LitmusTest> &Tests,
                               const std::vector<const Model *> &Models);

/// Serializes \p Report to the cats-sweep-report/1 JSON schema
/// (docs/sweep.md documents every field). The rendering is deterministic:
/// two runs of the same sweep differ only in the wall-time fields.
JsonValue sweepReportToJson(const SweepReport &Report);

} // namespace cats

#endif // CATS_SWEEP_SWEEPENGINE_H
