//===- ReportIO.h - cats-sweep-report/1 (de)serialization -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Round-tripping sweep results through the cats-sweep-report/1 JSON
/// schema. The writer half has always lived behind sweepReportToJson; this
/// header adds the reader half — parsing a report (or one per-test entry)
/// back into the engine's structs — which is what makes reports
/// *composable*: the campaign layer's result cache replays stored entries
/// into live reports, checkpoint files reload an interrupted campaign's
/// prefix, and cats_merge folds shard reports into one.
///
/// Rendering a parsed entry is byte-identical to rendering the original:
/// outcome keys reparse into Outcomes whose key() rebuilds the same
/// string, and every count is integral (exact in the JSON number type).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SWEEP_REPORTIO_H
#define CATS_SWEEP_REPORTIO_H

#include "support/Error.h"
#include "sweep/SweepEngine.h"

#include <string>

namespace cats {

/// Parses an Outcome::key() string ("0:r1=1;x=2;...") back into an
/// Outcome. The rebuilt outcome's key() equals \p Key exactly.
Expected<Outcome> outcomeFromKey(const std::string &Key);

/// Renders one per-test entry of the "tests" array (the same rendering
/// sweepReportToJson uses).
JsonValue sweepTestResultToJson(const SweepTestResult &Result);

/// Parses one per-test entry. Unknown members are ignored (forward
/// compatibility within the /1 schema).
Expected<SweepTestResult> sweepTestResultFromJson(const JsonValue &Entry);

/// Parses a whole cats-sweep-report/1 document. Fails on a wrong or
/// missing "schema"; top-level members this reader does not know (e.g.
/// the "shard" stanza the campaign CLIs append) are ignored.
Expected<SweepReport> sweepReportFromJson(const JsonValue &Root);

} // namespace cats

#endif // CATS_SWEEP_REPORTIO_H
