//===- Json.h - Minimal JSON values, parser and writer --------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small self-contained JSON library for the sweep reports: a value type
/// over null/bool/number/string/array/object, a recursive-descent parser,
/// and a deterministic pretty-printer. Objects preserve insertion order so
/// emitted reports read in schema order and round-trip byte-identically.
///
/// No external dependency; numbers are stored as double (integral values
/// print without a decimal point), which covers every count the sweep
/// reports carry.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_SWEEP_JSON_H
#define CATS_SWEEP_JSON_H

#include "support/Error.h"

#include <string>
#include <utility>
#include <vector>

namespace cats {

/// One JSON value.
class JsonValue {
public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() : ValueKind(Kind::Null) {}
  JsonValue(bool B) : ValueKind(Kind::Bool), BoolValue(B) {}
  JsonValue(double N) : ValueKind(Kind::Number), NumberValue(N) {}
  JsonValue(int N) : ValueKind(Kind::Number), NumberValue(N) {}
  JsonValue(unsigned N) : ValueKind(Kind::Number), NumberValue(N) {}
  JsonValue(unsigned long long N)
      : ValueKind(Kind::Number), NumberValue(static_cast<double>(N)) {}
  JsonValue(std::string S)
      : ValueKind(Kind::String), StringValue(std::move(S)) {}
  JsonValue(const char *S) : ValueKind(Kind::String), StringValue(S) {}

  /// Creates an empty array / object.
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return ValueKind; }
  bool isNull() const { return ValueKind == Kind::Null; }
  bool isBool() const { return ValueKind == Kind::Bool; }
  bool isNumber() const { return ValueKind == Kind::Number; }
  bool isString() const { return ValueKind == Kind::String; }
  bool isArray() const { return ValueKind == Kind::Array; }
  bool isObject() const { return ValueKind == Kind::Object; }

  /// Scalar accessors; assert on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  const std::string &asString() const;

  /// Array access.
  const std::vector<JsonValue> &elements() const;
  void push(JsonValue V);

  /// Object access. Members keep insertion order; set() replaces in place
  /// when the key exists.
  const std::vector<std::pair<std::string, JsonValue>> &members() const;
  void set(const std::string &Key, JsonValue V);

  /// The member value for \p Key, or nullptr (also on non-objects).
  const JsonValue *get(const std::string &Key) const;

  /// Renders the value. \p Indent > 0 pretty-prints with that step;
  /// 0 emits the compact single-line form. Output is deterministic and
  /// reparses to an equal value.
  std::string dump(unsigned Indent = 2) const;

  bool operator==(const JsonValue &Other) const;
  bool operator!=(const JsonValue &Other) const { return !(*this == Other); }

  /// Parses \p Text as one JSON document (trailing whitespace allowed).
  /// Errors carry a byte offset and reason.
  static Expected<JsonValue> parse(const std::string &Text);

private:
  Kind ValueKind;
  bool BoolValue = false;
  double NumberValue = 0;
  std::string StringValue;
  std::vector<JsonValue> Elements;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

} // namespace cats

#endif // CATS_SWEEP_JSON_H
