//===- SweepEngine.cpp - Parallel batch litmus sweeps ---------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "sweep/SweepEngine.h"

#include "litmus/Compiler.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace cats;

bool SweepReport::allOk() const {
  for (const SweepTestResult &T : Tests)
    if (!T.Error.empty())
      return false;
  return true;
}

SweepEngine::SweepEngine(SweepOptions Opts)
    : Workers(Opts.Jobs), Backend(Opts.Backend), Witness(Opts.Witness) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  // Sweep jobs are CPU-bound, so oversubscribing cores only adds context
  // switching; clamp to the hardware (and default to it).
  if (Workers == 0 || Workers > Hw)
    Workers = Hw;
}

namespace {

SweepTestResult runOneJob(const SweepJob &Job, const SimulateOptions &Opts) {
  SweepTestResult Out;
  Out.TestName = Job.Test.Name;
  const auto Start = std::chrono::steady_clock::now();
  obs::Span JobSpan(obs::traceEnabled() ? "judge " + Job.Test.Name
                                        : std::string());

  std::string Invalid = Job.Test.validate();
  if (!Invalid.empty()) {
    Out.Error = Invalid;
  } else {
    auto Compiled = [&] {
      obs::Span CompileSpan("compile");
      return CompiledTest::compile(Job.Test);
    }();
    if (!Compiled) {
      Out.Error = Compiled.message();
    } else {
      obs::Span EnumerateSpan("enumerate+judge");
      Out.Result = simulateAll(*Compiled, Job.Models, Opts);
    }
  }
  if (!Out.Error.empty())
    obs::tick("sweep.errors");

  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  obs::recordSeconds("sweep.job_wall_us", Out.WallSeconds);
  return Out;
}

} // namespace

SweepReport SweepEngine::run(const std::vector<SweepJob> &Jobs) const {
  obs::Span RunSpan(obs::traceEnabled() ? "sweep run (" +
                                              std::to_string(Jobs.size()) +
                                              " jobs)"
                                        : std::string());
  SweepReport Report;
  Report.Tests.resize(Jobs.size());
  const unsigned Used =
      Jobs.empty()
          ? 1u
          : std::min<unsigned>(Workers, static_cast<unsigned>(Jobs.size()));
  Report.Jobs = Used;

  SimulateOptions SimOpts;
  SimOpts.Backend = Backend;
  SimOpts.Witness = Witness;

  const auto Start = std::chrono::steady_clock::now();

  // Work-stealing over a shared index: each worker claims the next
  // unclaimed job and writes into its pre-sized slot, so the result order
  // is the submission order regardless of scheduling.
  std::atomic<size_t> Next{0};
  auto Work = [&]() {
    while (true) {
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Jobs.size())
        return;
      Report.Tests[I] = runOneJob(Jobs[I], SimOpts);
    }
  };

  if (Used <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Used);
    for (unsigned W = 0; W < Used; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }

  Report.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
}

SweepReport
SweepEngine::runStreamed(const TestSource &Source,
                         const std::vector<const Model *> &Models,
                         unsigned BatchSize,
                         const StreamHooks &Hooks) const {
  if (BatchSize == 0)
    BatchSize = 1;
  SweepReport Report;
  // Jobs reports the workers actually used: the widest batch decides
  // (a drained source may never fill a batch up to the worker count).
  Report.Jobs = 1;
  Report.CacheUsed = static_cast<bool>(Hooks.CacheLookup);

  const auto Start = std::chrono::steady_clock::now();

  // Resume: burn the prefix a checkpoint already covers. The source must
  // still produce (and a diy source still synthesizes) each skipped test,
  // but none is judged — and judging dominates generation ~9:1.
  bool More = true;
  unsigned long long Consumed = 0;
  {
    LitmusTest Skipped;
    for (unsigned long long I = 0; More && I < Hooks.SkipTests; ++I)
      More = Source(Skipped);
  }

  // Generation-vs-judging wall split (the ~9:1 ratio from BENCH_diy),
  // accumulated per batch: source pulls (including diy synthesis and
  // cache lookups) vs the run() pass over the misses.
  const bool Metrics = obs::metricsEnabled();
  double SourceSeconds = 0, JudgeSeconds = 0;

  while (More) {
    obs::Span BatchSpan("sweep batch");
    // One batch = BatchSize source pulls. Cache hits resolve into their
    // slot immediately; misses become jobs judged in one run() pass and
    // scattered back, so the report keeps exact source order either way.
    std::vector<SweepTestResult> Slots;
    std::vector<SweepJob> Batch;
    std::vector<size_t> SlotOfJob;
    Slots.reserve(BatchSize);
    LitmusTest Test;
    const auto FillStart = std::chrono::steady_clock::now();
    {
      obs::Span FillSpan("pull batch");
      while (Slots.size() < BatchSize && (More = Source(Test))) {
        ++Consumed;
        SweepTestResult Hit;
        if (Hooks.CacheLookup && Hooks.CacheLookup(Test, Hit)) {
          ++Report.CacheHits;
          Slots.push_back(std::move(Hit));
          continue;
        }
        if (Report.CacheUsed)
          ++Report.CacheMisses;
        SlotOfJob.push_back(Slots.size());
        Slots.emplace_back();
        Batch.push_back(SweepJob{std::move(Test), Models});
      }
    }
    const auto FillEnd = std::chrono::steady_clock::now();
    if (Metrics) {
      SourceSeconds +=
          std::chrono::duration<double>(FillEnd - FillStart).count();
      obs::histogram("sweep.batch_size").record(Slots.size());
    }
    if (Slots.empty())
      break;
    if (!Batch.empty()) {
      SweepReport Part = run(Batch);
      Report.Jobs = std::max(Report.Jobs, Part.Jobs);
      for (size_t J = 0; J < Part.Tests.size(); ++J) {
        if (Hooks.CacheStore)
          Hooks.CacheStore(Batch[J].Test, Part.Tests[J]);
        Slots[SlotOfJob[J]] = std::move(Part.Tests[J]);
      }
    }
    if (Metrics) {
      const double BatchJudge =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        FillEnd)
              .count();
      JudgeSeconds += BatchJudge;
      obs::histogram("sweep.batch_wall_us")
          .record(static_cast<unsigned long long>(BatchJudge * 1e6));
    }
    for (SweepTestResult &T : Slots)
      Report.Tests.push_back(std::move(T));
    if (Hooks.OnBatch)
      Hooks.OnBatch(Report, Consumed);
  }
  Report.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  if (Metrics) {
    obs::counter("sweep.tests_consumed").add(Consumed);
    if (Report.CacheUsed) {
      obs::counter("sweep.cache_hits").add(Report.CacheHits);
      obs::counter("sweep.cache_misses").add(Report.CacheMisses);
    }
    obs::counter("sweep.generation_wall_us")
        .add(static_cast<unsigned long long>(SourceSeconds * 1e6));
    obs::counter("sweep.judge_wall_us")
        .add(static_cast<unsigned long long>(JudgeSeconds * 1e6));
  }
  return Report;
}

std::vector<SweepJob> cats::makeJobs(const std::vector<LitmusTest> &Tests,
                                     const std::vector<const Model *> &Models) {
  std::vector<SweepJob> Jobs;
  Jobs.reserve(Tests.size());
  for (const LitmusTest &Test : Tests)
    Jobs.push_back(SweepJob{Test, Models});
  return Jobs;
}

// The JSON rendering and parsing of the cats-sweep-report/1 schema live
// together in sweep/ReportIO.cpp.
