//===- SweepEngine.cpp - Parallel batch litmus sweeps ---------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "sweep/SweepEngine.h"

#include "litmus/Compiler.h"

#include <atomic>
#include <chrono>
#include <thread>

using namespace cats;

bool SweepReport::allOk() const {
  for (const SweepTestResult &T : Tests)
    if (!T.Error.empty())
      return false;
  return true;
}

SweepEngine::SweepEngine(SweepOptions Opts) : Workers(Opts.Jobs) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  // Sweep jobs are CPU-bound, so oversubscribing cores only adds context
  // switching; clamp to the hardware (and default to it).
  if (Workers == 0 || Workers > Hw)
    Workers = Hw;
}

namespace {

SweepTestResult runOneJob(const SweepJob &Job) {
  SweepTestResult Out;
  Out.TestName = Job.Test.Name;
  const auto Start = std::chrono::steady_clock::now();

  std::string Invalid = Job.Test.validate();
  if (!Invalid.empty()) {
    Out.Error = Invalid;
  } else {
    auto Compiled = CompiledTest::compile(Job.Test);
    if (!Compiled)
      Out.Error = Compiled.message();
    else
      Out.Result = simulateAll(*Compiled, Job.Models);
  }

  Out.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Out;
}

} // namespace

SweepReport SweepEngine::run(const std::vector<SweepJob> &Jobs) const {
  SweepReport Report;
  Report.Tests.resize(Jobs.size());
  const unsigned Used =
      Jobs.empty()
          ? 1u
          : std::min<unsigned>(Workers, static_cast<unsigned>(Jobs.size()));
  Report.Jobs = Used;

  const auto Start = std::chrono::steady_clock::now();

  // Work-stealing over a shared index: each worker claims the next
  // unclaimed job and writes into its pre-sized slot, so the result order
  // is the submission order regardless of scheduling.
  std::atomic<size_t> Next{0};
  auto Work = [&]() {
    while (true) {
      const size_t I = Next.fetch_add(1, std::memory_order_relaxed);
      if (I >= Jobs.size())
        return;
      Report.Tests[I] = runOneJob(Jobs[I]);
    }
  };

  if (Used <= 1) {
    Work();
  } else {
    std::vector<std::thread> Pool;
    Pool.reserve(Used);
    for (unsigned W = 0; W < Used; ++W)
      Pool.emplace_back(Work);
    for (std::thread &T : Pool)
      T.join();
  }

  Report.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
}

SweepReport
SweepEngine::runStreamed(const TestSource &Source,
                         const std::vector<const Model *> &Models,
                         unsigned BatchSize) const {
  if (BatchSize == 0)
    BatchSize = 1;
  SweepReport Report;
  // Jobs reports the workers actually used: the widest batch decides
  // (a drained source may never fill a batch up to the worker count).
  Report.Jobs = 1;

  const auto Start = std::chrono::steady_clock::now();
  bool More = true;
  while (More) {
    std::vector<SweepJob> Batch;
    Batch.reserve(BatchSize);
    LitmusTest Test;
    while (Batch.size() < BatchSize && (More = Source(Test)))
      Batch.push_back(SweepJob{std::move(Test), Models});
    if (Batch.empty())
      break;
    SweepReport Part = run(Batch);
    Report.Jobs = std::max(Report.Jobs, Part.Jobs);
    for (SweepTestResult &T : Part.Tests)
      Report.Tests.push_back(std::move(T));
  }
  Report.WallSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();
  return Report;
}

std::vector<SweepJob> cats::makeJobs(const std::vector<LitmusTest> &Tests,
                                     const std::vector<const Model *> &Models) {
  std::vector<SweepJob> Jobs;
  Jobs.reserve(Tests.size());
  for (const LitmusTest &Test : Tests)
    Jobs.push_back(SweepJob{Test, Models});
  return Jobs;
}

//===----------------------------------------------------------------------===//
// JSON rendering (cats-sweep-report/1, see docs/sweep.md)
//===----------------------------------------------------------------------===//

JsonValue cats::sweepReportToJson(const SweepReport &Report) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-sweep-report/1");
  Root.set("jobs", Report.Jobs);
  Root.set("wall_seconds", Report.WallSeconds);

  JsonValue Tests = JsonValue::array();
  for (const SweepTestResult &T : Report.Tests) {
    JsonValue Entry = JsonValue::object();
    Entry.set("name", T.TestName);
    Entry.set("wall_seconds", T.WallSeconds);
    if (!T.Error.empty()) {
      Entry.set("error", T.Error);
      Tests.push(std::move(Entry));
      continue;
    }
    Entry.set("candidates_total", T.Result.CandidatesTotal);
    Entry.set("candidates_consistent", T.Result.CandidatesConsistent);

    JsonValue States = JsonValue::array();
    for (const Outcome &O : T.Result.ConsistentOutcomes)
      States.push(O.key());
    Entry.set("consistent_states", std::move(States));

    JsonValue Models = JsonValue::array();
    for (const SimulationResult &R : T.Result.PerModel) {
      JsonValue M = JsonValue::object();
      M.set("model", R.ModelName);
      M.set("verdict", R.verdict());
      M.set("candidates_allowed", R.CandidatesAllowed);
      JsonValue Allowed = JsonValue::array();
      for (const Outcome &O : R.AllowedOutcomes)
        Allowed.push(O.key());
      M.set("allowed_states", std::move(Allowed));
      Models.push(std::move(M));
    }
    Entry.set("models", std::move(Models));
    Tests.push(std::move(Entry));
  }
  Root.set("tests", std::move(Tests));
  return Root;
}
