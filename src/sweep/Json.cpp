//===- Json.cpp - Minimal JSON values, parser and writer ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "sweep/Json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>

using namespace cats;

JsonValue JsonValue::array() {
  JsonValue V;
  V.ValueKind = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.ValueKind = Kind::Object;
  return V;
}

bool JsonValue::asBool() const {
  assert(isBool() && "not a bool");
  return BoolValue;
}

double JsonValue::asNumber() const {
  assert(isNumber() && "not a number");
  return NumberValue;
}

const std::string &JsonValue::asString() const {
  assert(isString() && "not a string");
  return StringValue;
}

const std::vector<JsonValue> &JsonValue::elements() const {
  assert(isArray() && "not an array");
  return Elements;
}

void JsonValue::push(JsonValue V) {
  assert(isArray() && "not an array");
  Elements.push_back(std::move(V));
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const {
  assert(isObject() && "not an object");
  return Members;
}

void JsonValue::set(const std::string &Key, JsonValue V) {
  assert(isObject() && "not an object");
  for (auto &[K, Existing] : Members)
    if (K == Key) {
      Existing = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const JsonValue *JsonValue::get(const std::string &Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &[K, V] : Members)
    if (K == Key)
      return &V;
  return nullptr;
}

bool JsonValue::operator==(const JsonValue &Other) const {
  if (ValueKind != Other.ValueKind)
    return false;
  switch (ValueKind) {
  case Kind::Null:
    return true;
  case Kind::Bool:
    return BoolValue == Other.BoolValue;
  case Kind::Number:
    return NumberValue == Other.NumberValue;
  case Kind::String:
    return StringValue == Other.StringValue;
  case Kind::Array:
    return Elements == Other.Elements;
  case Kind::Object:
    return Members == Other.Members;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void appendNumber(std::string &Out, double N) {
  // Integral values (all the sweep counts) print without a decimal point;
  // everything else gets enough digits to round-trip.
  if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", N);
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

} // namespace

std::string JsonValue::dump(unsigned Indent) const {
  std::string Out;
  // Recursive lambda over (value, current depth).
  std::function<void(const JsonValue &, unsigned)> Emit =
      [&](const JsonValue &V, unsigned Depth) {
        auto Newline = [&](unsigned D) {
          if (Indent == 0)
            return;
          Out += '\n';
          Out.append(static_cast<size_t>(Indent) * D, ' ');
        };
        switch (V.kind()) {
        case Kind::Null:
          Out += "null";
          break;
        case Kind::Bool:
          Out += V.BoolValue ? "true" : "false";
          break;
        case Kind::Number:
          appendNumber(Out, V.NumberValue);
          break;
        case Kind::String:
          appendEscaped(Out, V.StringValue);
          break;
        case Kind::Array: {
          if (V.Elements.empty()) {
            Out += "[]";
            break;
          }
          Out += '[';
          for (size_t I = 0; I < V.Elements.size(); ++I) {
            if (I)
              Out += ',';
            Newline(Depth + 1);
            Emit(V.Elements[I], Depth + 1);
          }
          Newline(Depth);
          Out += ']';
          break;
        }
        case Kind::Object: {
          if (V.Members.empty()) {
            Out += "{}";
            break;
          }
          Out += '{';
          for (size_t I = 0; I < V.Members.size(); ++I) {
            if (I)
              Out += ',';
            Newline(Depth + 1);
            appendEscaped(Out, V.Members[I].first);
            Out += Indent == 0 ? ":" : ": ";
            Emit(V.Members[I].second, Depth + 1);
          }
          Newline(Depth);
          Out += '}';
          break;
        }
        }
      };
  Emit(*this, 0);
  if (Indent != 0)
    Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  Expected<JsonValue> run() {
    auto V = parseValue();
    if (!V)
      return V;
    skipWs();
    if (Pos != Text.size())
      return fail("trailing characters after document");
    return V;
  }

private:
  Expected<JsonValue> fail(const std::string &Why) {
    return Expected<JsonValue>::error("JSON error at offset " +
                                      std::to_string(Pos) + ": " + Why);
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool consumeWord(const char *W) {
    size_t Len = std::strlen(W);
    if (Text.compare(Pos, Len, W) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  Expected<JsonValue> parseValue() {
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"') {
      auto S = parseString();
      if (!S)
        return Expected<JsonValue>::error(S.message());
      return JsonValue(S.take());
    }
    if (consumeWord("null"))
      return JsonValue();
    if (consumeWord("true"))
      return JsonValue(true);
    if (consumeWord("false"))
      return JsonValue(false);
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    return fail(std::string("unexpected character '") + C + "'");
  }

  Expected<std::string> parseString() {
    assert(Text[Pos] == '"');
    ++Pos;
    std::string Out;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        break;
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return Expected<std::string>::error("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code += H - '0';
          else if (H >= 'a' && H <= 'f')
            Code += H - 'a' + 10;
          else if (H >= 'A' && H <= 'F')
            Code += H - 'A' + 10;
          else
            return Expected<std::string>::error("bad \\u escape digit");
        }
        // UTF-8 encode (no surrogate-pair handling; the reports are ASCII).
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return Expected<std::string>::error("unknown escape");
      }
    }
    return Expected<std::string>::error("unterminated string");
  }

  Expected<JsonValue> parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
            Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
            Text[Pos] == '-'))
      ++Pos;
    const std::string Tok = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double N = std::strtod(Tok.c_str(), &End);
    if (End != Tok.c_str() + Tok.size())
      return fail("malformed number '" + Tok + "'");
    return JsonValue(N);
  }

  Expected<JsonValue> parseArray() {
    ++Pos; // '['
    JsonValue Out = JsonValue::array();
    skipWs();
    if (consume(']'))
      return Out;
    while (true) {
      auto V = parseValue();
      if (!V)
        return V;
      Out.push(V.take());
      skipWs();
      if (consume(']'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  Expected<JsonValue> parseObject() {
    ++Pos; // '{'
    JsonValue Out = JsonValue::object();
    skipWs();
    if (consume('}'))
      return Out;
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected string key in object");
      auto K = parseString();
      if (!K)
        return Expected<JsonValue>::error(K.message());
      skipWs();
      if (!consume(':'))
        return fail("expected ':' after object key");
      auto V = parseValue();
      if (!V)
        return V;
      Out.set(K.take(), V.take());
      skipWs();
      if (consume('}'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  const std::string &Text;
  size_t Pos = 0;
};

} // namespace

Expected<JsonValue> JsonValue::parse(const std::string &Text) {
  return Parser(Text).run();
}
