//===- ReportIO.cpp - cats-sweep-report/1 (de)serialization ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "sweep/ReportIO.h"

#include "obs/Witness.h"
#include "support/StringUtils.h"

#include <cstdlib>

using namespace cats;

//===----------------------------------------------------------------------===//
// Outcome keys
//===----------------------------------------------------------------------===//

namespace {

/// Parses the whole of \p Text as a signed decimal value.
bool parseValue(const std::string &Text, long long &Out) {
  if (Text.empty())
    return false;
  char *End = nullptr;
  Out = std::strtoll(Text.c_str(), &End, 10);
  return End && *End == '\0';
}

} // namespace

Expected<Outcome> cats::outcomeFromKey(const std::string &Key) {
  auto Bad = [&](const char *Why) {
    return Expected<Outcome>::error(
        strFormat("bad outcome key '%s': %s", Key.c_str(), Why));
  };
  Outcome Out;
  size_t Pos = 0;
  while (Pos < Key.size()) {
    const size_t End = Key.find(';', Pos);
    if (End == std::string::npos)
      return Bad("field without trailing ';'");
    const std::string Field = Key.substr(Pos, End - Pos);
    Pos = End + 1;
    const size_t Eq = Field.rfind('=');
    if (Eq == std::string::npos || Eq == 0)
      return Bad("field without '='");
    long long Val = 0;
    if (!parseValue(Field.substr(Eq + 1), Val))
      return Bad("unparsable value");
    const std::string Left = Field.substr(0, Eq);
    // "T:rR" is a register field; anything else is a memory location
    // (litmus location names cannot contain ':').
    const size_t Colon = Left.find(':');
    if (Colon != std::string::npos) {
      long long Thread = 0, Reg = 0;
      if (!parseValue(Left.substr(0, Colon), Thread) || Thread < 0 ||
          Colon + 1 >= Left.size() || Left[Colon + 1] != 'r' ||
          !parseValue(Left.substr(Colon + 2), Reg))
        return Bad("malformed register field");
      if (Out.Regs.size() <= static_cast<size_t>(Thread))
        Out.Regs.resize(static_cast<size_t>(Thread) + 1);
      Out.Regs[static_cast<size_t>(Thread)][static_cast<Register>(Reg)] =
          static_cast<Value>(Val);
    } else {
      Out.Memory[Left] = static_cast<Value>(Val);
    }
  }
  Out.enableKeyCache();
  return Out;
}

//===----------------------------------------------------------------------===//
// Writer (cats-sweep-report/1, see docs/report-schemas.md)
//===----------------------------------------------------------------------===//

JsonValue cats::sweepTestResultToJson(const SweepTestResult &T) {
  JsonValue Entry = JsonValue::object();
  Entry.set("name", T.TestName);
  Entry.set("wall_seconds", T.WallSeconds);
  if (!T.Error.empty()) {
    Entry.set("error", T.Error);
    return Entry;
  }
  Entry.set("candidates_total", T.Result.CandidatesTotal);
  Entry.set("candidates_consistent", T.Result.CandidatesConsistent);

  JsonValue States = JsonValue::array();
  for (const Outcome &O : T.Result.ConsistentOutcomes)
    States.push(O.key());
  Entry.set("consistent_states", std::move(States));

  JsonValue Models = JsonValue::array();
  for (const SimulationResult &R : T.Result.PerModel) {
    JsonValue M = JsonValue::object();
    M.set("model", R.ModelName);
    M.set("verdict", R.verdict());
    M.set("candidates_allowed", R.CandidatesAllowed);
    JsonValue Allowed = JsonValue::array();
    for (const Outcome &O : R.AllowedOutcomes)
      Allowed.push(O.key());
    M.set("allowed_states", std::move(Allowed));
    Models.push(std::move(M));
  }
  Entry.set("models", std::move(Models));
  return Entry;
}

JsonValue cats::sweepReportToJson(const SweepReport &Report) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-sweep-report/1");
  Root.set("jobs", Report.Jobs);
  Root.set("wall_seconds", Report.WallSeconds);
  if (Report.CacheUsed) {
    JsonValue Cache = JsonValue::object();
    Cache.set("hits", Report.CacheHits);
    Cache.set("misses", Report.CacheMisses);
    Root.set("cache", std::move(Cache));
  }

  JsonValue Tests = JsonValue::array();
  for (const SweepTestResult &T : Report.Tests)
    Tests.push(sweepTestResultToJson(T));
  Root.set("tests", std::move(Tests));

  // The witness section exists only when capture ran (--witness); plain
  // reports stay byte-identical to pre-witness renderings.
  std::vector<obs::Witness> Witnesses;
  for (const SweepTestResult &T : Report.Tests)
    Witnesses.insert(Witnesses.end(), T.Result.Witnesses.begin(),
                     T.Result.Witnesses.end());
  if (!Witnesses.empty())
    Root.set("witness", obs::witnessSectionToJson(Witnesses));
  return Root;
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

namespace {

/// The member as an integral count; 0 when absent.
unsigned long long countOf(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.get(Key);
  return V && V->isNumber() ? static_cast<unsigned long long>(V->asNumber())
                            : 0;
}

/// The member as a string; empty when absent.
std::string stringOf(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.get(Key);
  return V && V->isString() ? V->asString() : std::string();
}

Status parseOutcomeSet(const JsonValue *Array, std::set<Outcome> &Out) {
  if (!Array)
    return Status::success();
  if (!Array->isArray())
    return Status::error("state list is not an array");
  for (const JsonValue &Key : Array->elements()) {
    if (!Key.isString())
      return Status::error("state key is not a string");
    auto O = outcomeFromKey(Key.asString());
    if (!O)
      return Status::error(O.message());
    Out.insert(O.take());
  }
  return Status::success();
}

} // namespace

Expected<SweepTestResult> cats::sweepTestResultFromJson(const JsonValue &E) {
  using Ret = Expected<SweepTestResult>;
  if (!E.isObject())
    return Ret::error("test entry is not an object");
  SweepTestResult Out;
  Out.TestName = stringOf(E, "name");
  if (Out.TestName.empty())
    return Ret::error("test entry without a name");
  if (const JsonValue *W = E.get("wall_seconds"))
    Out.WallSeconds = W->isNumber() ? W->asNumber() : 0;
  Out.Error = stringOf(E, "error");
  if (!Out.Error.empty())
    return Out;

  Out.Result.TestName = Out.TestName;
  Out.Result.CandidatesTotal = countOf(E, "candidates_total");
  Out.Result.CandidatesConsistent = countOf(E, "candidates_consistent");
  if (Status S =
          parseOutcomeSet(E.get("consistent_states"), Out.Result.ConsistentOutcomes);
      S.failed())
    return Ret::error(Out.TestName + ": " + S.message());

  const JsonValue *Models = E.get("models");
  if (Models && !Models->isArray())
    return Ret::error(Out.TestName + ": 'models' is not an array");
  if (Models) {
    for (const JsonValue &M : Models->elements()) {
      if (!M.isObject())
        return Ret::error(Out.TestName + ": model entry is not an object");
      SimulationResult R;
      R.TestName = Out.TestName;
      R.ModelName = stringOf(M, "model");
      if (R.ModelName.empty())
        return Ret::error(Out.TestName + ": model entry without a name");
      R.ConditionReachable = stringOf(M, "verdict") == "Allow";
      R.CandidatesAllowed = countOf(M, "candidates_allowed");
      if (Status S = parseOutcomeSet(M.get("allowed_states"), R.AllowedOutcomes);
          S.failed())
        return Ret::error(Out.TestName + ": " + S.message());
      // Mirror the shared counts so every entry stands alone, exactly as
      // the live engine produces them (the shared ConsistentOutcomes set
      // stays on the multi result, matching MultiModelChecker::take()).
      R.CandidatesTotal = Out.Result.CandidatesTotal;
      R.CandidatesConsistent = Out.Result.CandidatesConsistent;
      Out.Result.PerModel.push_back(std::move(R));
    }
    if (Out.Result.PerModel.size() == 1)
      Out.Result.PerModel.front().ConsistentOutcomes =
          Out.Result.ConsistentOutcomes;
  }
  return Out;
}

Expected<SweepReport> cats::sweepReportFromJson(const JsonValue &Root) {
  using Ret = Expected<SweepReport>;
  if (!Root.isObject())
    return Ret::error("report is not a JSON object");
  if (stringOf(Root, "schema") != "cats-sweep-report/1")
    return Ret::error("not a cats-sweep-report/1 document");
  SweepReport Out;
  Out.Jobs = static_cast<unsigned>(countOf(Root, "jobs"));
  if (const JsonValue *W = Root.get("wall_seconds"))
    Out.WallSeconds = W->isNumber() ? W->asNumber() : 0;
  if (const JsonValue *Cache = Root.get("cache")) {
    if (!Cache->isObject())
      return Ret::error("'cache' is not an object");
    Out.CacheUsed = true;
    Out.CacheHits = countOf(*Cache, "hits");
    Out.CacheMisses = countOf(*Cache, "misses");
  }
  const JsonValue *Tests = Root.get("tests");
  if (!Tests || !Tests->isArray())
    return Ret::error("report without a 'tests' array");
  for (const JsonValue &E : Tests->elements()) {
    auto T = sweepTestResultFromJson(E);
    if (!T)
      return Ret::error(T.message());
    Out.Tests.push_back(T.take());
  }
  return Out;
}
