//===- Relation.cpp - Dense relation algebra over event ids ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "relation/Relation.h"

#include "support/StringUtils.h"

#include "support/Bits.h"

using namespace cats;

//===----------------------------------------------------------------------===//
// EventSet
//===----------------------------------------------------------------------===//

unsigned EventSet::count() const {
  unsigned Total = 0;
  for (uint64_t Word : Words)
    Total += popcount(Word);
  return Total;
}

bool EventSet::empty() const {
  for (uint64_t Word : Words)
    if (Word)
      return false;
  return true;
}

EventSet &EventSet::operator|=(const EventSet &Other) {
  assert(Universe == Other.Universe && "universe mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] |= Other.Words[I];
  return *this;
}

EventSet &EventSet::operator&=(const EventSet &Other) {
  assert(Universe == Other.Universe && "universe mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] &= Other.Words[I];
  return *this;
}

EventSet &EventSet::operator-=(const EventSet &Other) {
  assert(Universe == Other.Universe && "universe mismatch");
  for (size_t I = 0; I < Words.size(); ++I)
    Words[I] &= ~Other.Words[I];
  return *this;
}

EventSet EventSet::complement() const {
  EventSet Out(Universe);
  for (size_t I = 0; I < Words.size(); ++I)
    Out.Words[I] = ~Words[I];
  // Mask out the bits beyond the universe in the last word.
  if (Universe % 64 != 0 && !Out.Words.empty())
    Out.Words.back() &= (uint64_t{1} << (Universe % 64)) - 1;
  return Out;
}

void EventSet::forEach(const std::function<void(EventId)> &Fn) const {
  for (size_t WordIdx = 0; WordIdx < Words.size(); ++WordIdx) {
    uint64_t Word = Words[WordIdx];
    while (Word) {
      unsigned Bit = countrZero(Word);
      Fn(static_cast<EventId>(WordIdx * 64 + Bit));
      Word &= Word - 1;
    }
  }
}

std::vector<EventId> EventSet::toVector() const {
  std::vector<EventId> Out;
  forEach([&Out](EventId Id) { Out.push_back(Id); });
  return Out;
}

EventSet EventSet::all(unsigned UniverseSize) {
  EventSet Out(UniverseSize);
  for (EventId Id = 0; Id < UniverseSize; ++Id)
    Out.insert(Id);
  return Out;
}

//===----------------------------------------------------------------------===//
// Relation
//===----------------------------------------------------------------------===//

unsigned Relation::countPairs() const {
  unsigned Total = 0;
  for (uint64_t Word : Bits)
    Total += popcount(Word);
  return Total;
}

bool Relation::empty() const {
  for (uint64_t Word : Bits)
    if (Word)
      return false;
  return true;
}

Relation &Relation::operator|=(const Relation &Other) {
  assert(Size == Other.Size && "universe mismatch");
  for (size_t I = 0; I < Bits.size(); ++I)
    Bits[I] |= Other.Bits[I];
  return *this;
}

Relation &Relation::operator&=(const Relation &Other) {
  assert(Size == Other.Size && "universe mismatch");
  for (size_t I = 0; I < Bits.size(); ++I)
    Bits[I] &= Other.Bits[I];
  return *this;
}

Relation &Relation::operator-=(const Relation &Other) {
  assert(Size == Other.Size && "universe mismatch");
  for (size_t I = 0; I < Bits.size(); ++I)
    Bits[I] &= ~Other.Bits[I];
  return *this;
}

Relation Relation::compose(const Relation &Other) const {
  assert(Size == Other.Size && "universe mismatch");
  Relation Out(Size);
  for (EventId From = 0; From < Size; ++From) {
    uint64_t *OutRow = Out.row(From);
    const uint64_t *MidRow = row(From);
    for (unsigned WordIdx = 0; WordIdx < WordsPerRow; ++WordIdx) {
      uint64_t Word = MidRow[WordIdx];
      while (Word) {
        unsigned Bit = countrZero(Word);
        EventId Mid = static_cast<EventId>(WordIdx * 64 + Bit);
        const uint64_t *SrcRow = Other.row(Mid);
        for (unsigned K = 0; K < WordsPerRow; ++K)
          OutRow[K] |= SrcRow[K];
        Word &= Word - 1;
      }
    }
  }
  return Out;
}

Relation Relation::inverse() const {
  Relation Out(Size);
  for (EventId From = 0; From < Size; ++From) {
    const uint64_t *SrcRow = row(From);
    for (unsigned WordIdx = 0; WordIdx < WordsPerRow; ++WordIdx) {
      uint64_t Word = SrcRow[WordIdx];
      while (Word) {
        unsigned Bit = countrZero(Word);
        Out.set(static_cast<EventId>(WordIdx * 64 + Bit), From);
        Word &= Word - 1;
      }
    }
  }
  return Out;
}

Relation Relation::transitiveClosure() const {
  // Warshall with word-parallel row unions: if (I, K) then row(I) |= row(K).
  Relation Out = *this;
  // Buffer for the via row, hoisted out of the loop (heap only for
  // universes too wide for the inline capacity).
  WordStorage ViaCopy(WordsPerRow);
  for (EventId Via = 0; Via < Size; ++Via) {
    // Copy the via row since row(I) may alias it when I == Via.
    std::memcpy(ViaCopy.data(), Out.row(Via),
                WordsPerRow * sizeof(uint64_t));
    for (EventId From = 0; From < Size; ++From) {
      if (!Out.test(From, Via))
        continue;
      uint64_t *FromRow = Out.row(From);
      for (unsigned K = 0; K < WordsPerRow; ++K)
        FromRow[K] |= ViaCopy[K];
    }
  }
  return Out;
}

Relation Relation::reflexiveTransitiveClosure() const {
  return transitiveClosure() | identity(Size);
}

Relation Relation::restrictDomain(const EventSet &Domain) const {
  assert(Domain.universeSize() == Size && "universe mismatch");
  Relation Out(Size);
  for (EventId From = 0; From < Size; ++From) {
    if (!Domain.contains(From))
      continue;
    const uint64_t *SrcRow = row(From);
    uint64_t *DstRow = Out.row(From);
    for (unsigned K = 0; K < WordsPerRow; ++K)
      DstRow[K] = SrcRow[K];
  }
  return Out;
}

Relation Relation::restrictRange(const EventSet &Range) const {
  assert(Range.universeSize() == Size && "universe mismatch");
  Relation Out = *this;
  for (EventId From = 0; From < Size; ++From) {
    uint64_t *DstRow = Out.row(From);
    for (unsigned K = 0; K < WordsPerRow; ++K)
      DstRow[K] &= Range.Words[K];
  }
  return Out;
}

Relation Relation::restrict(const EventSet &Domain,
                            const EventSet &Range) const {
  return restrictDomain(Domain).restrictRange(Range);
}

EventSet Relation::domain() const {
  EventSet Out(Size);
  for (EventId From = 0; From < Size; ++From) {
    const uint64_t *SrcRow = row(From);
    for (unsigned K = 0; K < WordsPerRow; ++K)
      if (SrcRow[K]) {
        Out.insert(From);
        break;
      }
  }
  return Out;
}

EventSet Relation::range() const {
  EventSet Out(Size);
  for (EventId From = 0; From < Size; ++From) {
    const uint64_t *SrcRow = row(From);
    for (unsigned K = 0; K < WordsPerRow; ++K)
      Out.Words[K] |= SrcRow[K];
  }
  return Out;
}

bool Relation::isIrreflexive() const {
  for (EventId Id = 0; Id < Size; ++Id)
    if (test(Id, Id))
      return false;
  return true;
}

bool Relation::isAcyclic() const {
  // DFS with colours; cheaper than a full closure for the common case.
  enum Colour : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Colours(Size, White);
  std::vector<std::pair<EventId, unsigned>> Stack;
  for (EventId Root = 0; Root < Size; ++Root) {
    if (Colours[Root] != White)
      continue;
    Stack.clear();
    Stack.push_back({Root, 0});
    Colours[Root] = Grey;
    while (!Stack.empty()) {
      auto &[Node, Next] = Stack.back();
      bool Descended = false;
      for (EventId To = Next; To < Size; ++To) {
        if (!test(Node, To))
          continue;
        if (Colours[To] == Grey)
          return false;
        if (Colours[To] == White) {
          Next = To + 1;
          Stack.push_back({To, 0});
          Colours[To] = Grey;
          Descended = true;
          break;
        }
      }
      if (!Descended) {
        Colours[Node] = Black;
        Stack.pop_back();
      }
    }
  }
  return true;
}

std::vector<std::pair<EventId, EventId>> Relation::pairs() const {
  std::vector<std::pair<EventId, EventId>> Out;
  for (EventId From = 0; From < Size; ++From) {
    const uint64_t *SrcRow = row(From);
    for (unsigned WordIdx = 0; WordIdx < WordsPerRow; ++WordIdx) {
      uint64_t Word = SrcRow[WordIdx];
      while (Word) {
        unsigned Bit = countrZero(Word);
        Out.push_back({From, static_cast<EventId>(WordIdx * 64 + Bit)});
        Word &= Word - 1;
      }
    }
  }
  return Out;
}

EventSet Relation::successors(EventId From) const {
  EventSet Out(Size);
  const uint64_t *SrcRow = row(From);
  for (unsigned K = 0; K < WordsPerRow; ++K)
    Out.Words[K] = SrcRow[K];
  return Out;
}

Relation Relation::identity(unsigned NumEvents) {
  Relation Out(NumEvents);
  for (EventId Id = 0; Id < NumEvents; ++Id)
    Out.set(Id, Id);
  return Out;
}

Relation Relation::cross(const EventSet &Domain, const EventSet &Range) {
  assert(Domain.universeSize() == Range.universeSize() &&
         "universe mismatch");
  Relation Out(Domain.universeSize());
  Domain.forEach([&](EventId From) {
    uint64_t *DstRow = Out.row(From);
    for (size_t K = 0; K < Range.Words.size(); ++K)
      DstRow[K] = Range.Words[K];
  });
  return Out;
}

Relation
Relation::fromPairs(unsigned NumEvents,
                    const std::vector<std::pair<EventId, EventId>> &P) {
  Relation Out(NumEvents);
  for (auto [From, To] : P)
    Out.set(From, To);
  return Out;
}

std::vector<EventId> Relation::findCycle() const {
  // DFS; when a grey node is re-entered, unwind the stack to produce the
  // cycle witness.
  enum Colour : uint8_t { White, Grey, Black };
  std::vector<uint8_t> Colours(Size, White);
  std::vector<EventId> Path;

  std::function<std::vector<EventId>(EventId)> Visit =
      [&](EventId Node) -> std::vector<EventId> {
    Colours[Node] = Grey;
    Path.push_back(Node);
    for (EventId To = 0; To < Size; ++To) {
      if (!test(Node, To))
        continue;
      if (Colours[To] == Grey) {
        // Found a back edge: slice the path from To onwards.
        std::vector<EventId> Cycle;
        size_t Start = 0;
        while (Path[Start] != To)
          ++Start;
        for (size_t I = Start; I < Path.size(); ++I)
          Cycle.push_back(Path[I]);
        Cycle.push_back(To);
        return Cycle;
      }
      if (Colours[To] == White) {
        auto Cycle = Visit(To);
        if (!Cycle.empty())
          return Cycle;
      }
    }
    Colours[Node] = Black;
    Path.pop_back();
    return {};
  };

  for (EventId Root = 0; Root < Size; ++Root) {
    if (Colours[Root] != White)
      continue;
    auto Cycle = Visit(Root);
    if (!Cycle.empty())
      return Cycle;
  }
  return {};
}

std::vector<EventId> Relation::shortestPath(EventId From, EventId To) const {
  assert(From < Size && To < Size && "event id out of range");
  // Plain BFS over the adjacency bitset. To support From == To (shortest
  // nonempty loop) the start node is *not* marked visited up front; it is
  // only closed once expanded, so the search may come back around to it.
  constexpr EventId NoParent = ~EventId{0};
  std::vector<EventId> Parent(Size, NoParent);
  std::vector<uint8_t> Seen(Size, 0);
  std::vector<EventId> Queue;
  Queue.push_back(From);
  for (size_t Head = 0; Head < Queue.size(); ++Head) {
    const EventId Node = Queue[Head];
    for (EventId Succ = 0; Succ < Size; ++Succ) {
      if (!test(Node, Succ))
        continue;
      if (Succ == To) {
        std::vector<EventId> Path;
        Path.push_back(To);
        for (EventId Walk = Node;; Walk = Parent[Walk]) {
          Path.push_back(Walk);
          if (Walk == From)
            break;
        }
        std::reverse(Path.begin(), Path.end());
        return Path;
      }
      if (!Seen[Succ]) {
        Seen[Succ] = 1;
        Parent[Succ] = Node;
        Queue.push_back(Succ);
      }
    }
  }
  return {};
}

std::vector<EventId> Relation::minimalCycle() const {
  // A shortest cycle is a shortest nonempty loop through one of its nodes,
  // so one BFS per node suffices. Litmus universes are tiny; O(N * N^2)
  // is nothing next to the enumeration that produced the relation.
  std::vector<EventId> Best;
  for (EventId Node = 0; Node < Size; ++Node) {
    std::vector<EventId> Loop = shortestPath(Node, Node);
    if (Loop.empty())
      continue;
    if (Best.empty() || Loop.size() < Best.size())
      Best = std::move(Loop);
    if (Best.size() == 2) // self-loop; cannot do better
      break;
  }
  return Best;
}

std::string Relation::toString() const {
  std::string Out = "{";
  bool First = true;
  for (auto [From, To] : pairs()) {
    if (!First)
      Out += ",";
    First = false;
    Out += strFormat("(%u,%u)", From, To);
  }
  Out += "}";
  return Out;
}
