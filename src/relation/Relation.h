//===- Relation.h - Dense relation algebra over event ids -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Finite binary relations over event identifiers 0..N-1, stored as dense
/// bitsets. Everything in the axiomatic framework — the four axioms of the
/// model, the ppo fixpoint of Power, the cat interpreter — is computed with
/// this algebra: union, intersection, difference, sequence (relational
/// composition), inverse, transitive closures, restrictions, and the
/// acyclicity / irreflexivity checks of Fig. 5.
///
/// Litmus executions are tiny (tens of events), so the O(N^2) bitset
/// representation is both the simplest and the fastest choice; closures are
/// Warshall-style with word-parallel row unions.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_RELATION_RELATION_H
#define CATS_RELATION_RELATION_H

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cats {

/// Index of an event inside one Execution. Dense, starting at 0.
using EventId = uint32_t;

/// Inline-first storage for the bitset words of EventSet and Relation.
/// Litmus-sized universes — the overwhelmingly common case — fit in the
/// inline buffer, so the temporaries churned out by the relation algebra
/// (every |, ;, closure, restrict creates one) never touch the heap.
/// Larger universes (e.g. multi-event blow-ups) fall back to a heap
/// buffer transparently.
class WordStorage {
public:
  /// Words stored inline: 32 x 8 = 256 bytes, covering relations over up
  /// to 32 events at one word per row.
  static constexpr size_t InlineCapacity = 32;

  WordStorage() = default;
  /// Creates \p CountIn zeroed words.
  explicit WordStorage(size_t CountIn) { resizeZero(CountIn); }
  WordStorage(const WordStorage &Other) { copyFrom(Other); }
  WordStorage(WordStorage &&Other) noexcept { moveFrom(std::move(Other)); }
  WordStorage &operator=(const WordStorage &Other) {
    if (this != &Other) {
      Heap.reset();
      copyFrom(Other);
    }
    return *this;
  }
  WordStorage &operator=(WordStorage &&Other) noexcept {
    if (this != &Other) {
      Heap.reset();
      moveFrom(std::move(Other));
    }
    return *this;
  }

  size_t size() const { return Count; }
  bool empty() const { return Count == 0; }
  uint64_t *data() { return Heap ? Heap.get() : Inline; }
  const uint64_t *data() const { return Heap ? Heap.get() : Inline; }
  uint64_t &operator[](size_t I) { return data()[I]; }
  uint64_t operator[](size_t I) const { return data()[I]; }
  uint64_t &back() { return data()[Count - 1]; }
  const uint64_t *begin() const { return data(); }
  const uint64_t *end() const { return data() + Count; }

  bool operator==(const WordStorage &Other) const {
    return Count == Other.Count &&
           std::memcmp(data(), Other.data(), Count * sizeof(uint64_t)) == 0;
  }
  bool operator!=(const WordStorage &Other) const {
    return !(*this == Other);
  }

private:
  void resizeZero(size_t N) {
    Count = N;
    if (N > InlineCapacity)
      Heap.reset(new uint64_t[N]);
    std::fill_n(data(), N, uint64_t{0});
  }
  void copyFrom(const WordStorage &Other) {
    Count = Other.Count;
    if (Count > InlineCapacity)
      Heap.reset(new uint64_t[Count]);
    std::memcpy(data(), Other.data(), Count * sizeof(uint64_t));
  }
  void moveFrom(WordStorage &&Other) {
    Count = Other.Count;
    if (Other.Heap)
      Heap = std::move(Other.Heap);
    else
      std::memcpy(Inline, Other.Inline, Count * sizeof(uint64_t));
    Other.Count = 0;
  }

  size_t Count = 0;
  uint64_t Inline[InlineCapacity];
  std::unique_ptr<uint64_t[]> Heap;
};

/// A set of event ids, as a bitset of fixed universe size.
class EventSet {
public:
  EventSet() : Universe(0) {}

  /// Creates an empty set over a universe of \p UniverseSize ids.
  explicit EventSet(unsigned UniverseSize)
      : Universe(UniverseSize), Words((UniverseSize + 63) / 64) {}

  /// Number of ids in the universe (not the cardinality).
  unsigned universeSize() const { return Universe; }

  /// Inserts \p Id.
  void insert(EventId Id) {
    assert(Id < Universe && "event id out of range");
    Words[Id >> 6] |= (uint64_t{1} << (Id & 63));
  }

  /// Removes \p Id.
  void erase(EventId Id) {
    assert(Id < Universe && "event id out of range");
    Words[Id >> 6] &= ~(uint64_t{1} << (Id & 63));
  }

  /// True if \p Id is a member.
  bool contains(EventId Id) const {
    assert(Id < Universe && "event id out of range");
    return (Words[Id >> 6] >> (Id & 63)) & 1;
  }

  /// Cardinality of the set.
  unsigned count() const;

  /// True if no id is a member.
  bool empty() const;

  EventSet &operator|=(const EventSet &Other);
  EventSet &operator&=(const EventSet &Other);
  EventSet &operator-=(const EventSet &Other);

  friend EventSet operator|(EventSet A, const EventSet &B) { return A |= B; }
  friend EventSet operator&(EventSet A, const EventSet &B) { return A &= B; }
  friend EventSet operator-(EventSet A, const EventSet &B) { return A -= B; }

  /// The complement within the universe.
  EventSet complement() const;

  bool operator==(const EventSet &Other) const {
    return Universe == Other.Universe && Words == Other.Words;
  }
  bool operator!=(const EventSet &Other) const { return !(*this == Other); }

  /// Calls \p Fn for each member in increasing id order.
  void forEach(const std::function<void(EventId)> &Fn) const;

  /// Members in increasing id order.
  std::vector<EventId> toVector() const;

  /// Full universe set.
  static EventSet all(unsigned UniverseSize);

private:
  friend class Relation;
  unsigned Universe;
  WordStorage Words;
};

/// A binary relation over event ids 0..N-1 as an adjacency bitset.
/// Row A holds the successors of A: test(A, B) means (A, B) is in the
/// relation.
class Relation {
public:
  Relation() : Size(0), WordsPerRow(0) {}

  /// Creates the empty relation over \p NumEvents ids.
  explicit Relation(unsigned NumEvents)
      : Size(NumEvents), WordsPerRow((NumEvents + 63) / 64),
        Bits(static_cast<size_t>(Size) * WordsPerRow) {}

  /// Universe size.
  unsigned size() const { return Size; }

  /// Adds the pair (\p From, \p To).
  void set(EventId From, EventId To) {
    assert(From < Size && To < Size && "event id out of range");
    row(From)[To >> 6] |= (uint64_t{1} << (To & 63));
  }

  /// Removes the pair (\p From, \p To).
  void clear(EventId From, EventId To) {
    assert(From < Size && To < Size && "event id out of range");
    row(From)[To >> 6] &= ~(uint64_t{1} << (To & 63));
  }

  /// True if (\p From, \p To) is in the relation.
  bool test(EventId From, EventId To) const {
    assert(From < Size && To < Size && "event id out of range");
    return (row(From)[To >> 6] >> (To & 63)) & 1;
  }

  /// Number of pairs.
  unsigned countPairs() const;

  /// True if the relation has no pair.
  bool empty() const;

  Relation &operator|=(const Relation &Other);
  Relation &operator&=(const Relation &Other);
  Relation &operator-=(const Relation &Other);

  friend Relation operator|(Relation A, const Relation &B) { return A |= B; }
  friend Relation operator&(Relation A, const Relation &B) { return A &= B; }
  friend Relation operator-(Relation A, const Relation &B) { return A -= B; }

  bool operator==(const Relation &Other) const {
    return Size == Other.Size && Bits == Other.Bits;
  }
  bool operator!=(const Relation &Other) const { return !(*this == Other); }

  /// Relational composition: (A, C) iff exists B with (A, B) here and
  /// (B, C) in \p Other. Written r1;r2 in the paper.
  Relation compose(const Relation &Other) const;

  /// The inverse relation r^-1.
  Relation inverse() const;

  /// Transitive closure r+.
  Relation transitiveClosure() const;

  /// Reflexive-transitive closure r*.
  Relation reflexiveTransitiveClosure() const;

  /// Keeps only pairs whose source is in \p Domain.
  Relation restrictDomain(const EventSet &Domain) const;

  /// Keeps only pairs whose target is in \p Range.
  Relation restrictRange(const EventSet &Range) const;

  /// Keeps pairs with source in \p Domain and target in \p Range
  /// (the paper's r ∩ XY direction filters, e.g. ppo ∩ RR).
  Relation restrict(const EventSet &Domain, const EventSet &Range) const;

  /// Set of ids with at least one outgoing pair.
  EventSet domain() const;

  /// Set of ids with at least one incoming pair.
  EventSet range() const;

  /// True if no (X, X) pair is present.
  bool isIrreflexive() const;

  /// True if the relation, viewed as a digraph, has no cycle
  /// (i.e. its transitive closure is irreflexive).
  bool isAcyclic() const;

  /// All pairs in lexicographic order.
  std::vector<std::pair<EventId, EventId>> pairs() const;

  /// The successors of \p From.
  EventSet successors(EventId From) const;

  /// The identity relation over \p NumEvents ids.
  static Relation identity(unsigned NumEvents);

  /// The full cross product \p Domain x \p Range.
  static Relation cross(const EventSet &Domain, const EventSet &Range);

  /// Relation built from an explicit pair list.
  static Relation fromPairs(unsigned NumEvents,
                            const std::vector<std::pair<EventId, EventId>> &P);

  /// One cycle witness (sequence of ids, first == last) if the relation has
  /// a cycle; empty vector otherwise. Used for diagnostics.
  std::vector<EventId> findCycle() const;

  /// A shortest cycle (sequence of ids, first == last, minimal number of
  /// edges over all cycles) if the relation has one; empty otherwise.
  /// findCycle returns whatever the DFS stumbles on first; witnesses shown
  /// to humans want the minimal loop instead.
  std::vector<EventId> minimalCycle() const;

  /// A shortest edge path From -> ... -> To (BFS), or an empty vector if
  /// To is unreachable. From == To asks for a shortest nonempty loop
  /// through From. The result includes both endpoints.
  std::vector<EventId> shortestPath(EventId From, EventId To) const;

  /// Debug rendering as "{(0,1),(2,3)}".
  std::string toString() const;

private:
  uint64_t *row(EventId Id) {
    return Bits.data() + static_cast<size_t>(Id) * WordsPerRow;
  }
  const uint64_t *row(EventId Id) const {
    return Bits.data() + static_cast<size_t>(Id) * WordsPerRow;
  }

  unsigned Size;
  unsigned WordsPerRow;
  WordStorage Bits;
};

} // namespace cats

#endif // CATS_RELATION_RELATION_H
