//===- ResultCache.cpp - Content-addressed verdict cache ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "campaign/ResultCache.h"

#include "support/StringUtils.h"
#include "sweep/ReportIO.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <sstream>
#include <thread>

using namespace cats;

namespace {

/// Bumped whenever the entry format or the key recipe changes; part of
/// the hashed content, so old directories simply miss.
constexpr const char *CacheFormatVersion = "cats-cache/2";

/// 64-bit FNV-1a over \p Text, from \p Seed.
uint64_t fnv1a64(const std::string &Text, uint64_t Seed) {
  uint64_t H = Seed;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

} // namespace

std::string cats::resultCacheKey(const LitmusTest &Test,
                                 const std::vector<const Model *> &Models) {
  std::string Content = std::string(CacheFormatVersion) + "\n";
  Content += Test.toString();
  Content += "\nmodels:";
  for (const Model *M : Models)
    Content += M->name() + "=" + M->definitionFingerprint() + ";";
  // Two independently seeded 64-bit FNV-1a halves make a 128-bit key;
  // collisions at any realistic campaign scale are then negligible.
  const uint64_t Lo = fnv1a64(Content, 14695981039346656037ull);
  const uint64_t Hi = fnv1a64(Content, 0x9e3779b97f4a7c15ull);
  return strFormat("%016llx%016llx", static_cast<unsigned long long>(Hi),
                   static_cast<unsigned long long>(Lo));
}

Expected<ResultCache> cats::ResultCache::open(const std::string &Dir) {
  using Ret = Expected<ResultCache>;
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec)
    return Ret::error(strFormat("cannot create cache directory %s: %s",
                                Dir.c_str(), Ec.message().c_str()));
  return ResultCache(Dir);
}

std::string ResultCache::entryPath(const std::string &Key) const {
  return Root + "/" + Key.substr(0, 2) + "/" + Key + ".json";
}

bool ResultCache::lookup(const LitmusTest &Test,
                         const std::vector<const Model *> &Models,
                         SweepTestResult &Out) const {
  std::ifstream In(entryPath(resultCacheKey(Test, Models)));
  if (!In)
    return false;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  auto Doc = JsonValue::parse(Buf.str());
  if (!Doc)
    return false;
  const JsonValue *Entry = Doc->get("result");
  if (!Entry)
    return false;
  auto Parsed = sweepTestResultFromJson(*Entry);
  if (!Parsed)
    return false;
  // Guard against key collisions and hand-edited entries: the stored
  // result must belong to this very test.
  if (Parsed->TestName != Test.Name)
    return false;
  Out = Parsed.take();
  return true;
}

Status ResultCache::store(const LitmusTest &Test,
                          const std::vector<const Model *> &Models,
                          const SweepTestResult &Result) const {
  if (!Result.Error.empty())
    return Status::success();
  const std::string Key = resultCacheKey(Test, Models);
  const std::string Path = entryPath(Key);
  std::error_code Ec;
  std::filesystem::create_directories(Root + "/" + Key.substr(0, 2), Ec);
  if (Ec)
    return Status::error(strFormat("cannot create cache fan-out dir: %s",
                                   Ec.message().c_str()));
  JsonValue Doc = JsonValue::object();
  Doc.set("schema", "cats-cache-entry/1");
  Doc.set("key", Key);
  Doc.set("result", sweepTestResultToJson(Result));

  // Write-then-rename so concurrent shards sharing the directory never
  // observe a torn entry. The temp name carries a thread-id hash to keep
  // two same-key writers apart.
  const std::string Tmp =
      Path + strFormat(".tmp.%llu",
                       static_cast<unsigned long long>(
                           std::hash<std::thread::id>{}(
                               std::this_thread::get_id())));
  {
    std::ofstream OutFile(Tmp);
    if (!OutFile)
      return Status::error(strFormat("cannot write %s", Tmp.c_str()));
    OutFile << Doc.dump();
  }
  std::filesystem::rename(Tmp, Path, Ec);
  if (Ec) {
    std::filesystem::remove(Tmp, Ec);
    return Status::error(strFormat("cannot publish cache entry %s",
                                   Path.c_str()));
  }
  return Status::success();
}

StreamHooks
ResultCache::hooks(const std::vector<const Model *> &Models) const {
  StreamHooks Hooks;
  Hooks.CacheLookup = [this, Models](const LitmusTest &Test,
                                     SweepTestResult &Out) {
    return lookup(Test, Models, Out);
  };
  Hooks.CacheStore = [this, Models](const LitmusTest &Test,
                                    const SweepTestResult &Result) {
    Status S = store(Test, Models, Result);
    if (S.failed())
      std::fprintf(stderr, "result-cache: %s\n", S.message().c_str());
  };
  return Hooks;
}
