//===- ResultCache.h - Content-addressed verdict cache --------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The persistence half of the campaign layer: a content-addressed on-disk
/// cache of per-(test, model-set) sweep verdicts, so repeated campaigns —
/// the common case for CI and for any service front end — only pay for
/// what changed. The key is a 128-bit FNV-1a hash over the *concretized*
/// test text (LitmusTest::toString(), which includes the name, code,
/// initial state and final condition) plus the ordered model display
/// names, their definition fingerprints
/// (Model::definitionFingerprint(): the .cat source hash for cat-backed
/// models, the architecture-config identity for native ones) and a cache
/// format version; the value is the test's cats-sweep-report/1 entry.
/// Any edit to the test, the model list, its order, or a model's
/// *definition* therefore misses naturally — editing a .cat file or
/// changing a native model's configuration invalidates exactly the
/// entries that depended on it, with no epoch bookkeeping.
///
/// Layout: <dir>/<kk>/<key>.json, fanned out on the first two key hex
/// digits. Entries are written to a temp file and renamed into place, so
/// concurrent shards sharing one directory race benignly (last writer
/// wins with identical content).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAMPAIGN_RESULTCACHE_H
#define CATS_CAMPAIGN_RESULTCACHE_H

#include "model/Model.h"
#include "support/Error.h"
#include "sweep/SweepEngine.h"

#include <string>
#include <vector>

namespace cats {

/// The cache key of one (test, model-set) pair: 32 hex digits.
std::string resultCacheKey(const LitmusTest &Test,
                           const std::vector<const Model *> &Models);

/// A handle on one cache directory.
class ResultCache {
public:
  /// Opens (creating if needed) the cache rooted at \p Dir.
  static Expected<ResultCache> open(const std::string &Dir);

  /// Looks up the entry for (\p Test, \p Models). On a hit, fills \p Out
  /// with the stored result and returns true. Corrupt or unreadable
  /// entries behave as misses.
  bool lookup(const LitmusTest &Test,
              const std::vector<const Model *> &Models,
              SweepTestResult &Out) const;

  /// Stores \p Result for (\p Test, \p Models). Errored results are not
  /// cached (they are cheap to reproduce and their messages may change);
  /// write failures are reported but never fail a campaign.
  Status store(const LitmusTest &Test,
               const std::vector<const Model *> &Models,
               const SweepTestResult &Result) const;

  /// The cache root.
  const std::string &dir() const { return Root; }

  /// The lookup/store members packaged as engine hooks
  /// (SweepEngine::runStreamed). The cache must outlive the hooks.
  StreamHooks hooks(const std::vector<const Model *> &Models) const;

private:
  explicit ResultCache(std::string Dir) : Root(std::move(Dir)) {}
  std::string entryPath(const std::string &Key) const;
  std::string Root;
};

} // namespace cats

#endif // CATS_CAMPAIGN_RESULTCACHE_H
