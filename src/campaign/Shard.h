//===- Shard.h - Deterministic campaign partitioning ----------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharding half of the campaign layer (docs/campaigns.md): split one
/// enumeration range or corpus stream across N cooperating processes so
/// that the union of the shards is exactly the single-process run. A
/// shard spec is "K/N" (1-based shard K of N); assignment is round-robin
/// on the item's position in the stream — position Seq belongs to shard
/// ((Seq mod N) + 1) — which is deterministic, independent of timing and
/// worker counts, balanced to within one item, and trivially invertible:
/// cats_merge interleaves N shard reports back into source order by
/// taking one entry per shard per round.
///
/// The same spec shards anything positional: a pull-based TestSource
/// (shardTestSource), a materialized corpus vector, or the diy cycle
/// enumeration (cats_diy filters the enumerated records by index).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAMPAIGN_SHARD_H
#define CATS_CAMPAIGN_SHARD_H

#include "litmus/TestFilter.h"
#include "support/Error.h"
#include "sweep/Json.h"

#include <string>

namespace cats {

/// One shard of an N-way campaign. The default spec (1/1) is the whole
/// campaign; active() distinguishes real splits.
struct ShardSpec {
  /// 1-based shard index, 1 <= Index <= Count.
  unsigned Index = 1;
  /// Total number of shards.
  unsigned Count = 1;

  /// True when the spec actually splits the campaign.
  bool active() const { return Count > 1; }

  /// True when the item at 0-based stream position \p Seq belongs to
  /// this shard.
  bool owns(unsigned long long Seq) const {
    return Seq % Count == Index - 1;
  }

  /// "K/N" display form.
  std::string toString() const;
};

/// Parses a --shard value "K/N" with 1 <= K <= N. Fails with a
/// diagnostic on anything else.
Expected<ShardSpec> parseShardSpec(const std::string &Text);

/// Wraps \p Inner so only the positions \p Spec owns are yielded, in
/// their original relative order. The wrapper holds its own position
/// counter; like every TestSource it is single-pass.
TestSource shardTestSource(TestSource Inner, ShardSpec Spec);

/// The "shard" stanza the campaign CLIs append to their JSON reports —
/// {"index": K, "count": N} — which cats_merge reads to interleave shard
/// reports back into source order.
JsonValue shardToJson(const ShardSpec &Spec);

/// Parses a "shard" stanza back. Fails on malformed stanzas.
Expected<ShardSpec> shardFromJson(const JsonValue &Stanza);

} // namespace cats

#endif // CATS_CAMPAIGN_SHARD_H
