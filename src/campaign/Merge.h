//===- Merge.h - Folding shard reports back together ----------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The reduce step of a sharded campaign (docs/campaigns.md): cats_merge
/// reads the per-shard JSON reports and folds them into one document of
/// the same schema, as if a single process had swept the whole stream.
///
/// Sweep reports merge losslessly. Each shard report carries a "shard"
/// stanza ({"index":K,"count":N}); given the complete set 1..N the merge
/// round-robin-interleaves the per-shard tests arrays, exactly inverting
/// the `Seq % N == K-1` partition of campaign/Shard.h, so the merged
/// tests array reproduces single-process source order byte-for-byte.
/// Unsharded reports (no stanza) concatenate in argument order instead.
///
/// Mine reports merge by summing per-family aggregates (src/mole's
/// mergeMineReports); order inside a family is not recoverable from
/// aggregates, so merged test_names are sorted.
///
/// Wall-clock fields are the one part of a report that legitimately
/// differs between a sharded and a single-process run; zeroWallTimes
/// normalizes them away so CI can compare merged output to a reference
/// run with a plain byte cmp (docs/sweep.md's determinism contract).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAMPAIGN_MERGE_H
#define CATS_CAMPAIGN_MERGE_H

#include "support/Error.h"
#include "sweep/Json.h"

#include <vector>

namespace cats {

/// A copy of \p V with every numeric "wall_seconds" member, at any
/// nesting depth, replaced by 0.
JsonValue zeroWallTimes(const JsonValue &V);

/// Merges cats-sweep-report/1 documents. All inputs sharded (a complete
/// 1..N set, N == inputs) interleave back to source order; all inputs
/// unsharded concatenate in argument order; a mix is an error. jobs is
/// the max, wall_seconds the sum, cache hits/misses the sums (the stanza
/// appears iff any input carries one), and the "shard" stanza is dropped
/// from the merged document.
Expected<JsonValue> mergeSweepReports(const std::vector<JsonValue> &Inputs);

/// Merges cats-mine-report/1 documents (delegates to src/mole). Inputs
/// carrying static analyses are refused.
Expected<JsonValue> mergeMineReports(const std::vector<JsonValue> &Inputs);

/// Dispatches on the inputs' "schema" member (all inputs must share it).
Expected<JsonValue> mergeReports(const std::vector<JsonValue> &Inputs);

} // namespace cats

#endif // CATS_CAMPAIGN_MERGE_H
