//===- Shard.cpp - Deterministic campaign partitioning --------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "campaign/Shard.h"

#include "support/StringUtils.h"

#include <memory>

using namespace cats;

std::string ShardSpec::toString() const {
  return strFormat("%u/%u", Index, Count);
}

Expected<ShardSpec> cats::parseShardSpec(const std::string &Text) {
  using Ret = Expected<ShardSpec>;
  auto Bad = [&] {
    return Ret::error(strFormat(
        "bad shard spec '%s' (expected K/N with 1 <= K <= N)", Text.c_str()));
  };
  const size_t Slash = Text.find('/');
  if (Slash == std::string::npos)
    return Bad();
  ShardSpec Spec;
  if (!parseUnsignedArg(Text.substr(0, Slash).c_str(), Spec.Index) ||
      !parseUnsignedArg(Text.substr(Slash + 1).c_str(), Spec.Count) ||
      Spec.Index == 0 || Spec.Count == 0 || Spec.Index > Spec.Count)
    return Bad();
  return Spec;
}

TestSource cats::shardTestSource(TestSource Inner, ShardSpec Spec) {
  if (!Spec.active())
    return Inner;
  // The position counter lives on the heap so the returned std::function
  // stays copyable while all copies advance one shared stream.
  auto Seq = std::make_shared<unsigned long long>(0);
  return [Inner = std::move(Inner), Spec, Seq](LitmusTest &Out) -> bool {
    while (Inner(Out))
      if (Spec.owns((*Seq)++))
        return true;
    return false;
  };
}

JsonValue cats::shardToJson(const ShardSpec &Spec) {
  JsonValue Stanza = JsonValue::object();
  Stanza.set("index", Spec.Index);
  Stanza.set("count", Spec.Count);
  return Stanza;
}

Expected<ShardSpec> cats::shardFromJson(const JsonValue &Stanza) {
  using Ret = Expected<ShardSpec>;
  if (!Stanza.isObject())
    return Ret::error("'shard' stanza is not an object");
  const JsonValue *Index = Stanza.get("index");
  const JsonValue *Count = Stanza.get("count");
  if (!Index || !Index->isNumber() || !Count || !Count->isNumber())
    return Ret::error("'shard' stanza without numeric index/count");
  ShardSpec Spec;
  Spec.Index = static_cast<unsigned>(Index->asNumber());
  Spec.Count = static_cast<unsigned>(Count->asNumber());
  if (Spec.Index == 0 || Spec.Count == 0 || Spec.Index > Spec.Count)
    return Ret::error(strFormat("'shard' stanza %u/%u is out of range",
                                Spec.Index, Spec.Count));
  return Spec;
}
