//===- Checkpoint.cpp - Campaign checkpoint/resume files ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "campaign/Checkpoint.h"

#include "support/StringUtils.h"
#include "sweep/ReportIO.h"

#include <cstdio>
#include <fstream>

using namespace cats;

std::string cats::campaignId(const std::string &Spec) {
  // 64-bit FNV-1a; the id only needs to distinguish command lines, not
  // resist adversaries.
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Spec) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return strFormat("%016llx", static_cast<unsigned long long>(H));
}

Expected<CheckpointState> cats::loadCheckpoint(const std::string &Path,
                                               const std::string &CampaignId) {
  using Ret = Expected<CheckpointState>;
  std::ifstream In(Path);
  if (!In)
    return Ret::error(strFormat("cannot read checkpoint %s", Path.c_str()));

  std::string Line;
  if (!std::getline(In, Line))
    return Ret::error(strFormat("checkpoint %s is empty", Path.c_str()));
  auto Header = JsonValue::parse(Line);
  if (!Header || !Header->isObject())
    return Ret::error(strFormat("checkpoint %s: garbled header", Path.c_str()));
  const JsonValue *Schema = Header->get("schema");
  if (!Schema || !Schema->isString() ||
      Schema->asString() != "cats-checkpoint/1")
    return Ret::error(
        strFormat("checkpoint %s: not a cats-checkpoint/1 file", Path.c_str()));
  const JsonValue *Id = Header->get("campaign");
  if (!Id || !Id->isString() || Id->asString() != CampaignId)
    return Ret::error(strFormat(
        "checkpoint %s belongs to a different campaign (flags or inputs "
        "changed since it was written) — rerun without --resume to restart",
        Path.c_str()));

  // Collect entries, remembering the totals at the last progress line.
  // Anything after it — entries of an interrupted batch append, or a torn
  // final line — is trimmed: resume re-judges from the last completed
  // batch.
  CheckpointState State;
  std::vector<SweepTestResult> Entries;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    auto Doc = JsonValue::parse(Line);
    if (!Doc || !Doc->isObject())
      break; // torn tail
    if (const JsonValue *Entry = Doc->get("entry")) {
      auto T = sweepTestResultFromJson(*Entry);
      if (!T)
        break; // torn tail
      Entries.push_back(T.take());
      continue;
    }
    const JsonValue *Progress = Doc->get("progress");
    if (!Progress || !Progress->isObject())
      break; // unknown line kind: treat as torn
    auto Count = [&](const char *Key) -> unsigned long long {
      const JsonValue *V = Progress->get(Key);
      return V && V->isNumber()
                 ? static_cast<unsigned long long>(V->asNumber())
                 : 0;
    };
    const unsigned long long Consumed = Count("consumed");
    if (Consumed > Entries.size())
      break; // inconsistent: trust only what precedes it
    State.Consumed = Consumed;
    State.CacheHits = Count("hits");
    State.CacheMisses = Count("misses");
  }
  Entries.resize(static_cast<size_t>(State.Consumed));
  State.Tests = std::move(Entries);
  return State;
}

Expected<CheckpointWriter>
cats::CheckpointWriter::create(const std::string &Path,
                               const std::string &CampaignId) {
  using Ret = Expected<CheckpointWriter>;
  std::FILE *File = std::fopen(Path.c_str(), "w");
  if (!File)
    return Ret::error(strFormat("cannot write checkpoint %s", Path.c_str()));
  JsonValue Header = JsonValue::object();
  Header.set("schema", "cats-checkpoint/1");
  Header.set("campaign", CampaignId);
  const std::string Line = Header.dump(0) + "\n";
  if (std::fwrite(Line.data(), 1, Line.size(), File) != Line.size() ||
      std::fflush(File) != 0) {
    std::fclose(File);
    return Ret::error(strFormat("cannot write checkpoint %s", Path.c_str()));
  }
  return CheckpointWriter(File, Path);
}

Expected<CheckpointWriter>
cats::CheckpointWriter::append(const std::string &Path) {
  using Ret = Expected<CheckpointWriter>;
  std::FILE *File = std::fopen(Path.c_str(), "a");
  if (!File)
    return Ret::error(
        strFormat("cannot append to checkpoint %s", Path.c_str()));
  return CheckpointWriter(File, Path);
}

Status CheckpointWriter::appendBatch(const std::vector<SweepTestResult> &Batch,
                                     unsigned long long Consumed,
                                     unsigned long long Hits,
                                     unsigned long long Misses) {
  if (!File)
    return Status::error("checkpoint writer is closed");
  std::string Chunk;
  for (const SweepTestResult &T : Batch) {
    JsonValue Line = JsonValue::object();
    Line.set("entry", sweepTestResultToJson(T));
    Chunk += Line.dump(0) + "\n";
  }
  JsonValue Progress = JsonValue::object();
  JsonValue Totals = JsonValue::object();
  Totals.set("consumed", Consumed);
  Totals.set("hits", Hits);
  Totals.set("misses", Misses);
  Progress.set("progress", std::move(Totals));
  Chunk += Progress.dump(0) + "\n";
  if (std::fwrite(Chunk.data(), 1, Chunk.size(), File) != Chunk.size() ||
      std::fflush(File) != 0)
    return Status::error(strFormat("checkpoint write to %s failed",
                                   Path.c_str()));
  return Status::success();
}

void CheckpointWriter::remove(const std::string &Path) {
  std::remove(Path.c_str());
}

void CheckpointWriter::close() {
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}
