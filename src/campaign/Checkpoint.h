//===- Checkpoint.h - Campaign checkpoint/resume files --------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-tolerant progress files for long campaigns (docs/campaigns.md).
/// A checkpoint is an append-only JSONL file:
///
///   {"schema":"cats-checkpoint/1","campaign":"<id>"}     header, line 1
///   {"entry":{...cats-sweep-report/1 test entry...}}      one per test
///   {"progress":{"consumed":N,"hits":H,"misses":M}}       one per batch
///
/// The engine's OnBatch hook appends each batch's entries followed by one
/// progress line and flushes, so a kill at any moment loses at most the
/// in-flight batch: loading trims to the last progress line (entries past
/// it were appended by an interrupted batch write and are re-judged on
/// resume). Appending keeps the per-batch cost O(batch), not O(campaign)
/// — rewriting a whole-report snapshot every batch would be quadratic
/// over a million-test campaign.
///
/// The campaign id ties a checkpoint to the exact work it describes: a
/// hash of every flag that shapes the stream (inputs, filter, models,
/// shard, batch size, ...). --resume refuses a checkpoint whose id does
/// not match the current command line, so a resumed campaign can never
/// silently mix two different corpora.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAMPAIGN_CHECKPOINT_H
#define CATS_CAMPAIGN_CHECKPOINT_H

#include "support/Error.h"
#include "sweep/SweepEngine.h"

#include <cstdio>
#include <string>
#include <vector>

namespace cats {

/// Derives the campaign id from the determinism-relevant flag spec
/// \p Spec (a "key=value;..." string the CLI assembles).
std::string campaignId(const std::string &Spec);

/// What a checkpoint file holds after trimming to the last completed
/// batch.
struct CheckpointState {
  /// Source tests consumed (== Tests.size(); every consumed test yields
  /// exactly one report entry — judged, cache hit, or error).
  unsigned long long Consumed = 0;
  /// Cache counters at the last completed batch.
  unsigned long long CacheHits = 0;
  unsigned long long CacheMisses = 0;
  /// The completed entries, in source order.
  std::vector<SweepTestResult> Tests;
};

/// Loads and validates \p Path. Fails on a missing/garbled header or a
/// campaign-id mismatch; tolerates (and trims) a torn tail.
Expected<CheckpointState> loadCheckpoint(const std::string &Path,
                                         const std::string &CampaignId);

/// Appends batches to a checkpoint file.
class CheckpointWriter {
public:
  /// Starts a fresh checkpoint at \p Path (truncating any previous one).
  static Expected<CheckpointWriter> create(const std::string &Path,
                                           const std::string &CampaignId);

  /// Reopens \p Path for appending after a resume. The caller must have
  /// loadCheckpoint-validated it first.
  static Expected<CheckpointWriter> append(const std::string &Path);

  /// Appends \p Batch (the report entries the last batch added) and a
  /// progress line with the cumulative totals, then flushes.
  Status appendBatch(const std::vector<SweepTestResult> &Batch,
                     unsigned long long Consumed, unsigned long long Hits,
                     unsigned long long Misses);

  /// Removes the checkpoint file (campaign completed).
  static void remove(const std::string &Path);

  CheckpointWriter(CheckpointWriter &&Other) noexcept
      : File(Other.File), Path(std::move(Other.Path)) {
    Other.File = nullptr;
  }
  CheckpointWriter &operator=(CheckpointWriter &&Other) noexcept {
    if (this != &Other) {
      close();
      File = Other.File;
      Path = std::move(Other.Path);
      Other.File = nullptr;
    }
    return *this;
  }
  ~CheckpointWriter() { close(); }

private:
  explicit CheckpointWriter(std::FILE *File, std::string Path)
      : File(File), Path(std::move(Path)) {}
  void close();
  std::FILE *File = nullptr;
  std::string Path;
};

} // namespace cats

#endif // CATS_CAMPAIGN_CHECKPOINT_H
