//===- Merge.cpp - Folding shard reports back together --------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "campaign/Merge.h"

#include "campaign/Shard.h"
#include "mole/Mine.h"
#include "obs/Metrics.h"
#include "obs/Witness.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace cats;

JsonValue cats::zeroWallTimes(const JsonValue &V) {
  if (V.isArray()) {
    JsonValue Out = JsonValue::array();
    for (const JsonValue &E : V.elements())
      Out.push(zeroWallTimes(E));
    return Out;
  }
  if (V.isObject()) {
    JsonValue Out = JsonValue::object();
    for (const auto &[Key, Member] : V.members())
      Out.set(Key, Key == "wall_seconds" && Member.isNumber()
                       ? JsonValue(0)
                       : zeroWallTimes(Member));
    return Out;
  }
  return V;
}

namespace {

std::string schemaOf(const JsonValue &Doc) {
  const JsonValue *Schema = Doc.get("schema");
  return Schema && Schema->isString() ? Schema->asString() : std::string();
}

/// Folds the optional cats-metrics/1 sections of the inputs into \p Root
/// (counters sum, histograms merge), so a merged campaign report carries
/// fleet-wide totals. Reports without a metrics section contribute
/// nothing; when none carries one, \p Root stays metrics-free. Returns a
/// non-empty error string on a malformed section.
std::string foldMetricsSections(const std::vector<JsonValue> &Inputs,
                                JsonValue &Root) {
  JsonValue Merged;
  bool Any = false;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const JsonValue *Metrics = Inputs[I].get("metrics");
    if (!Metrics)
      continue;
    if (!Any) {
      Merged = *Metrics;
      Any = true;
      continue;
    }
    std::string Error;
    if (!obs::mergeMetricsJson(Merged, *Metrics, Error))
      return strFormat("input %zu: metrics: %s", I + 1, Error.c_str());
  }
  if (Any)
    Root.set("metrics", std::move(Merged));
  return std::string();
}

/// Folds the optional cats-witness/1 sections of the inputs into \p Root:
/// the witness lists simply concatenate in input order (each witness is
/// already tagged with its test and model). Reports without a witness
/// section contribute nothing; when none carries one, \p Root stays
/// witness-free. Returns a non-empty error string on a malformed section.
std::string foldWitnessSections(const std::vector<JsonValue> &Inputs,
                                JsonValue &Root) {
  JsonValue Merged = JsonValue::array();
  bool Any = false;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    const JsonValue *Section = Inputs[I].get("witness");
    if (!Section)
      continue;
    const JsonValue *Schema = Section->get("schema");
    const JsonValue *List = Section->get("witnesses");
    if (!Section->isObject() || !Schema || !Schema->isString() ||
        Schema->asString() != obs::WitnessSchema || !List || !List->isArray())
      return strFormat("input %zu: malformed witness section", I + 1);
    Any = true;
    for (const JsonValue &W : List->elements())
      Merged.push(W);
  }
  if (Any) {
    JsonValue Section = JsonValue::object();
    Section.set("schema", obs::WitnessSchema);
    Section.set("witnesses", std::move(Merged));
    Root.set("witness", std::move(Section));
  }
  return std::string();
}

/// What the sweep merge needs from one input document.
struct SweepInput {
  unsigned Jobs = 0;
  double WallSeconds = 0;
  bool CacheUsed = false;
  unsigned long long CacheHits = 0;
  unsigned long long CacheMisses = 0;
  const JsonValue *Tests = nullptr;
  bool HasShard = false;
  ShardSpec Shard;
};

} // namespace

Expected<JsonValue>
cats::mergeSweepReports(const std::vector<JsonValue> &Inputs) {
  using Ret = Expected<JsonValue>;
  if (Inputs.empty())
    return Ret::error("nothing to merge");

  std::vector<SweepInput> Parts;
  unsigned Sharded = 0;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    auto Where = [&](const std::string &Why) {
      return Ret::error(strFormat("input %zu: %s", I + 1, Why.c_str()));
    };
    const JsonValue &Doc = Inputs[I];
    if (schemaOf(Doc) != "cats-sweep-report/1")
      return Where("not a cats-sweep-report/1 document");
    SweepInput Part;
    if (const JsonValue *Jobs = Doc.get("jobs"))
      Part.Jobs = Jobs->isNumber() ? static_cast<unsigned>(Jobs->asNumber())
                                   : 0;
    if (const JsonValue *Wall = Doc.get("wall_seconds"))
      Part.WallSeconds = Wall->isNumber() ? Wall->asNumber() : 0;
    if (const JsonValue *Cache = Doc.get("cache")) {
      if (!Cache->isObject())
        return Where("'cache' is not an object");
      Part.CacheUsed = true;
      if (const JsonValue *Hits = Cache->get("hits"))
        Part.CacheHits = Hits->isNumber()
                             ? static_cast<unsigned long long>(Hits->asNumber())
                             : 0;
      if (const JsonValue *Misses = Cache->get("misses"))
        Part.CacheMisses =
            Misses->isNumber()
                ? static_cast<unsigned long long>(Misses->asNumber())
                : 0;
    }
    Part.Tests = Doc.get("tests");
    if (!Part.Tests || !Part.Tests->isArray())
      return Where("report without a 'tests' array");
    if (const JsonValue *Shard = Doc.get("shard")) {
      auto Spec = shardFromJson(*Shard);
      if (!Spec)
        return Where(Spec.message());
      Part.HasShard = true;
      Part.Shard = Spec.take();
      ++Sharded;
    }
    Parts.push_back(Part);
  }

  if (Sharded != 0 && Sharded != Parts.size())
    return Ret::error("cannot mix sharded and unsharded reports");

  // The merged tests array: either the exact inverse of the round-robin
  // partition, or plain concatenation for unsharded inputs.
  std::vector<const JsonValue *> Ordered;
  if (Sharded) {
    const unsigned N = Parts[0].Shard.Count;
    if (Parts.size() != N)
      return Ret::error(strFormat(
          "incomplete shard set: reports declare %u shards, got %zu", N,
          Parts.size()));
    std::vector<const SweepInput *> ByIndex(N, nullptr);
    for (const SweepInput &Part : Parts) {
      if (Part.Shard.Count != N)
        return Ret::error(strFormat(
            "shard counts disagree across reports (%u vs %u)", N,
            Part.Shard.Count));
      const SweepInput *&Slot = ByIndex[Part.Shard.Index - 1];
      if (Slot)
        return Ret::error(
            strFormat("duplicate shard %s", Part.Shard.toString().c_str()));
      Slot = &Part;
    }
    // Stream position Seq lived in shard (Seq % N) at offset Seq / N;
    // walking offsets round-robin over shards 1..N replays the stream.
    for (size_t Offset = 0;; ++Offset) {
      bool Appended = false;
      for (unsigned K = 0; K < N; ++K) {
        const auto &Tests = ByIndex[K]->Tests->elements();
        if (Offset < Tests.size()) {
          Ordered.push_back(&Tests[Offset]);
          Appended = true;
        }
      }
      if (!Appended)
        break;
    }
  } else {
    for (const SweepInput &Part : Parts)
      for (const JsonValue &Test : Part.Tests->elements())
        Ordered.push_back(&Test);
  }

  unsigned Jobs = 0;
  double WallSeconds = 0;
  bool CacheUsed = false;
  unsigned long long CacheHits = 0, CacheMisses = 0;
  for (const SweepInput &Part : Parts) {
    Jobs = std::max(Jobs, Part.Jobs);
    WallSeconds += Part.WallSeconds;
    CacheUsed = CacheUsed || Part.CacheUsed;
    CacheHits += Part.CacheHits;
    CacheMisses += Part.CacheMisses;
  }

  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-sweep-report/1");
  Root.set("jobs", Jobs);
  Root.set("wall_seconds", WallSeconds);
  if (CacheUsed) {
    JsonValue Cache = JsonValue::object();
    Cache.set("hits", CacheHits);
    Cache.set("misses", CacheMisses);
    Root.set("cache", std::move(Cache));
  }
  JsonValue Tests = JsonValue::array();
  for (const JsonValue *Test : Ordered)
    Tests.push(*Test);
  Root.set("tests", std::move(Tests));
  if (std::string Error = foldMetricsSections(Inputs, Root); !Error.empty())
    return Ret::error(Error);
  if (std::string Error = foldWitnessSections(Inputs, Root); !Error.empty())
    return Ret::error(Error);
  return Root;
}

Expected<JsonValue>
cats::mergeMineReports(const std::vector<JsonValue> &Inputs) {
  using Ret = Expected<JsonValue>;
  if (Inputs.empty())
    return Ret::error("nothing to merge");
  std::vector<MineReport> Parts;
  for (size_t I = 0; I < Inputs.size(); ++I) {
    auto Part = mineReportFromJson(Inputs[I]);
    if (!Part)
      return Ret::error(strFormat("input %zu: %s", I + 1,
                                  Part.message().c_str()));
    Parts.push_back(Part.take());
  }
  auto Merged = mergeMineReports(Parts);
  if (!Merged)
    return Ret::error(Merged.message());
  JsonValue Root = mineReportToJson(*Merged);
  if (std::string Error = foldMetricsSections(Inputs, Root); !Error.empty())
    return Ret::error(Error);
  return Root;
}

Expected<JsonValue> cats::mergeReports(const std::vector<JsonValue> &Inputs) {
  using Ret = Expected<JsonValue>;
  if (Inputs.empty())
    return Ret::error("nothing to merge");
  const std::string Schema = schemaOf(Inputs[0]);
  for (size_t I = 1; I < Inputs.size(); ++I)
    if (schemaOf(Inputs[I]) != Schema)
      return Ret::error(strFormat(
          "inputs mix schemas ('%s' vs '%s'); merge one report kind at a "
          "time",
          Schema.c_str(), schemaOf(Inputs[I]).c_str()));
  if (Schema == "cats-sweep-report/1")
    return mergeSweepReports(Inputs);
  if (Schema == "cats-mine-report/1")
    return mergeMineReports(Inputs);
  if (Schema.empty())
    return Ret::error("input 1 has no 'schema' member");
  return Ret::error(
      strFormat("schema '%s' is not mergeable (sweep and mine reports are)",
                Schema.c_str()));
}
