//===- Hardware.h - Simulated chips for litmus campaigns ------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hardware-testing substrate (substitution for the paper's Power and
/// ARM machines, per DESIGN.md). A HardwareProfile describes one chip: the
/// model it implements, the fraction of the architecture it actually
/// exploits (e.g. Power hardware does not implement load buffering,
/// Sec. 8.1.1), and the anomalies the paper observed:
///
///  * load-load hazards (coRR violations) — all tested ARM chips, the
///    acknowledged Cortex-A9 bug [arm 2011];
///  * early-commit behaviours (fri-rfi reordering, Figs. 32/33) — the
///    Qualcomm APQ8060/8064 feature the designers called desirable;
///  * OBSERVATION anomalies (Fig. 35) — observed on Tegra3 only.
///
/// runOnHardware samples a test's consistent candidates with a
/// deterministic PRNG, keeping those the chip's effective semantics can
/// produce, and returns observation counts — the raw material of
/// Tables V, VI and VIII.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HARDWARE_HARDWARE_H
#define CATS_HARDWARE_HARDWARE_H

#include "herd/Simulator.h"
#include "litmus/Compiler.h"
#include "model/Model.h"

#include <map>
#include <string>
#include <vector>

namespace cats {

/// One simulated chip.
struct HardwareProfile {
  std::string ChipName;
  Arch TargetArch = Arch::Power;
  /// Anomaly switches.
  bool LoadLoadHazard = false;
  bool EarlyCommit = false;
  bool ObservationAnomaly = false;
  /// Architecturally allowed features the implementation does not exploit:
  /// when false, load-buffering (read-before-po-earlier-write) behaviours
  /// are never produced, as on all tested Power chips.
  bool ImplementsLoadBuffering = true;
  /// Percentage of architecturally-allowed weak behaviours the micro-
  /// architecture actually exploits. The mask is deterministic per
  /// (architecture, test, outcome) and shared by the fleet — tested chips
  /// share cores — producing the "allowed but unseen" rows of Table V.
  unsigned ExploitPercent = 85;
  /// Sampling rate of weak (non-SC) behaviours, in [0, 100]: weaker
  /// behaviours are rarer on real chips.
  unsigned WeakBehaviourPercent = 50;
  /// How rare the anomaly behaviours are, as one observation in N samples.
  unsigned AnomalyRarity = 64;
  /// PRNG seed so campaigns are reproducible.
  uint64_t Seed = 1;

  //===--------------------------------------------------------------------===//
  // The paper's test fleet (Sec. 8.1).
  //===--------------------------------------------------------------------===//

  static HardwareProfile powerG5();
  static HardwareProfile power6();
  static HardwareProfile power7();
  static HardwareProfile tegra2();
  static HardwareProfile tegra3();
  static HardwareProfile apq8060();
  static HardwareProfile apq8064();
  static HardwareProfile exynos4412();
  static HardwareProfile exynos5250();
  static HardwareProfile appleA6X();

  /// All Power chips.
  static std::vector<HardwareProfile> powerFleet();
  /// All ARM chips.
  static std::vector<HardwareProfile> armFleet();
};

/// Result of running one litmus test on one simulated chip.
struct HardwareRun {
  std::string TestName;
  std::string ChipName;
  /// Distinct final states observed, with sample counts.
  std::map<Outcome, uint64_t> Observed;
  /// Total samples taken.
  uint64_t Samples = 0;
  /// True when some observed outcome satisfies the test's condition.
  bool ConditionObserved = false;
  /// Candidate executions that produced a condition-satisfying outcome,
  /// for later classification against a model (Table VIII).
  std::vector<Execution> ConditionWitnesses;
};

/// Decides whether the chip can produce candidate \p Cand of the test
/// named \p TestName: the chip's effective semantics is its architecture's
/// model, weakened by the profile's anomalies and strengthened by
/// unimplemented features (the lb gap, the exploitation mask).
bool chipCanProduce(const HardwareProfile &Chip, const Candidate &Cand,
                    const std::string &TestName = "");

/// Samples \p Test on \p Chip \p Samples times.
HardwareRun runOnHardware(const LitmusTest &Test,
                          const HardwareProfile &Chip, uint64_t Samples);

} // namespace cats

#endif // CATS_HARDWARE_HARDWARE_H
