//===- Hardware.cpp - Simulated chips for litmus campaigns ----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "hardware/Hardware.h"

#include "model/Registry.h"
#include "model/SimpleModels.h"
#include "support/Rng.h"

using namespace cats;

//===----------------------------------------------------------------------===//
// Profiles (Sec. 8.1's fleet)
//===----------------------------------------------------------------------===//

namespace {

HardwareProfile basePower(const char *Name, uint64_t Seed) {
  HardwareProfile P;
  P.ChipName = Name;
  P.TargetArch = Arch::Power;
  // The lb pattern is architecturally allowed but not implemented on any
  // tested Power generation (Sec. 8.1.1).
  P.ImplementsLoadBuffering = false;
  P.Seed = Seed;
  return P;
}

HardwareProfile baseArm(const char *Name, uint64_t Seed) {
  HardwareProfile P;
  P.ChipName = Name;
  P.TargetArch = Arch::ARM;
  // All tested ARM machines exhibited the read-after-read hazard bug.
  P.LoadLoadHazard = true;
  P.Seed = Seed;
  return P;
}

} // namespace

HardwareProfile HardwareProfile::powerG5() { return basePower("PowerG5", 11); }
HardwareProfile HardwareProfile::power6() { return basePower("Power6", 12); }
HardwareProfile HardwareProfile::power7() { return basePower("Power7", 13); }

HardwareProfile HardwareProfile::tegra2() { return baseArm("Tegra2", 21); }

HardwareProfile HardwareProfile::tegra3() {
  HardwareProfile P = baseArm("Tegra3", 22);
  // The OBSERVATION anomalies of Fig. 35 were seen on Tegra3 only.
  P.ObservationAnomaly = true;
  return P;
}

HardwareProfile HardwareProfile::apq8060() {
  HardwareProfile P = baseArm("APQ8060", 23);
  // The early-commit (fri-rfi) behaviours of Figs. 32/33.
  P.EarlyCommit = true;
  return P;
}

HardwareProfile HardwareProfile::apq8064() {
  HardwareProfile P = baseArm("APQ8064", 24);
  P.EarlyCommit = true;
  return P;
}

HardwareProfile HardwareProfile::exynos4412() {
  return baseArm("Exynos4412", 25);
}
HardwareProfile HardwareProfile::exynos5250() {
  return baseArm("Exynos5250", 26);
}
HardwareProfile HardwareProfile::appleA6X() {
  return baseArm("AppleA6X", 27);
}

std::vector<HardwareProfile> HardwareProfile::powerFleet() {
  return {powerG5(), power6(), power7()};
}

std::vector<HardwareProfile> HardwareProfile::armFleet() {
  return {tegra2(),     tegra3(),     apq8060(), apq8064(),
          exynos4412(), exynos5250(), appleA6X()};
}

//===----------------------------------------------------------------------===//
// Chip semantics
//===----------------------------------------------------------------------===//

namespace {

/// The chip's baseline model: Power chips implement the Power model;
/// ARM chips implement the proposed ARM model when they exhibit early
/// commit, and the stricter Power-ARM shape otherwise.
const Model &baselineModel(const HardwareProfile &Chip) {
  if (Chip.TargetArch == Arch::Power)
    return *modelByName("Power");
  return *modelByName(Chip.EarlyCommit ? "ARM" : "Power-ARM");
}

/// True when \p Exe shows a load-buffering shape: a cycle through po and
/// read-from, i.e. some read observes a write that depends on a po-later
/// event of the reader's own thread.
bool isLoadBufferingShape(const Execution &Exe) {
  return !(Exe.Po | Exe.Rf).isAcyclic();
}

/// Deterministic exploitation mask: whether the micro-architectural family
/// actually exhibits weak behaviour \p Out of test \p TestName. FNV-1a over
/// stable keys, shared by the whole fleet of an architecture.
bool fleetExploits(const HardwareProfile &Chip,
                   const std::string &TestName, const Outcome &Out) {
  uint64_t Hash = 1469598103934665603ULL;
  auto Mix = [&Hash](const std::string &Text) {
    for (char C : Text) {
      Hash ^= static_cast<unsigned char>(C);
      Hash *= 1099511628211ULL;
    }
  };
  Mix(archName(Chip.TargetArch));
  Mix(TestName);
  Mix(Out.key());
  return Hash % 100 < Chip.ExploitPercent;
}

/// Classifies a candidate against the chip's baseline: 0 = forbidden even
/// with anomalies, 1 = allowed and SC (strong), 2 = allowed and weak,
/// 3 = producible only through an anomaly.
int classify(const HardwareProfile &Chip, const Candidate &Cand,
             const std::string &TestName) {
  const Model &Base = baselineModel(Chip);
  Verdict V = Base.check(Cand.Exe);

  bool AllowedByBase = V.Allowed;
  if (AllowedByBase && !Chip.ImplementsLoadBuffering &&
      isLoadBufferingShape(Cand.Exe))
    return 0; // Architecturally fine, never produced by this chip.

  if (AllowedByBase) {
    if (isScReference(Cand.Exe))
      return 1;
    return fleetExploits(Chip, TestName, Cand.Out) ? 2 : 0;
  }

  // Anomaly paths: the violation set must be fully explained by enabled
  // anomalies.
  bool OnlyScPerLoc = V.Violated.size() == 1 &&
                      V.violates(Axiom::ScPerLocation);
  if (Chip.LoadLoadHazard && OnlyScPerLoc) {
    // Must be precisely a load-load hazard: tolerated by the llh check.
    const Model &Llh = *modelByName("ARM llh");
    AxiomStyle Style = Llh.style();
    Relation PoLoc = Cand.Exe.poLoc();
    PoLoc = PoLoc -
            PoLoc.restrict(Cand.Exe.reads(), Cand.Exe.reads());
    (void)Style;
    bool HazardOnly = (PoLoc | Cand.Exe.com()).isAcyclic();
    if (HazardOnly)
      return 3;
  }
  // The Tegra3 anomalies of Fig. 35 land in the O and OP classes of
  // Table VIII: OBSERVATION is violated, possibly together with
  // PROPAGATION, but never SC PER LOCATION or NO THIN AIR.
  bool ObservationClass =
      V.violates(Axiom::Observation) &&
      !V.violates(Axiom::ScPerLocation) && !V.violates(Axiom::NoThinAir);
  if (Chip.ObservationAnomaly && ObservationClass)
    return 3;
  return 0;
}

} // namespace

bool cats::chipCanProduce(const HardwareProfile &Chip,
                          const Candidate &Cand,
                          const std::string &TestName) {
  return Cand.Consistent && classify(Chip, Cand, TestName) != 0;
}

HardwareRun cats::runOnHardware(const LitmusTest &Test,
                                const HardwareProfile &Chip,
                                uint64_t Samples) {
  HardwareRun Run;
  Run.TestName = Test.Name;
  Run.ChipName = Chip.ChipName;

  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled)
    return Run;

  // Partition the candidates by strength.
  std::vector<Candidate> Strong, Weak, Anomalous;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent)
      return true;
    switch (classify(Chip, Cand, Test.Name)) {
    case 1:
      Strong.push_back(Cand);
      break;
    case 2:
      Weak.push_back(Cand);
      break;
    case 3:
      Anomalous.push_back(Cand);
      break;
    default:
      break;
    }
    return true;
  });
  if (Strong.empty() && Weak.empty() && Anomalous.empty())
    return Run;

  // Deterministic sampling: the seed mixes the chip and the test name so
  // campaigns are reproducible but decorrelated.
  uint64_t Mix = Chip.Seed;
  for (char C : Test.Name)
    Mix = Mix * 1099511628211ULL + static_cast<unsigned char>(C);
  Rng R(Mix);

  auto Record = [&](const Candidate &Cand) {
    ++Run.Observed[Cand.Out];
    if (Cand.Out.satisfies(Test.Final)) {
      if (!Run.ConditionObserved)
        Run.ConditionWitnesses.push_back(Cand.Exe);
      Run.ConditionObserved = true;
    }
  };

  for (uint64_t I = 0; I < Samples; ++I) {
    ++Run.Samples;
    if (!Anomalous.empty() && R.chance(1, Chip.AnomalyRarity)) {
      Record(Anomalous[R.nextBelow(Anomalous.size())]);
      continue;
    }
    if (!Weak.empty() && R.chance(Chip.WeakBehaviourPercent, 100)) {
      Record(Weak[R.nextBelow(Weak.size())]);
      continue;
    }
    if (!Strong.empty())
      Record(Strong[R.nextBelow(Strong.size())]);
    else if (!Weak.empty())
      Record(Weak[R.nextBelow(Weak.size())]);
  }
  return Run;
}
