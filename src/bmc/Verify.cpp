//===- Verify.cpp - Bounded verification of litmus programs ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "bmc/Verify.h"

#include "herd/MultiEvent.h"
#include "herd/Simulator.h"
#include "machine/IntermediateMachine.h"

#include <chrono>

using namespace cats;

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point Start) {
  return std::chrono::duration<double>(Clock::now() - Start).count();
}

} // namespace

VerifyResult cats::verifyAxiomatic(const LitmusTest &Test, const Model &M) {
  VerifyResult Result;
  Result.TestName = Test.Name;
  Result.Method = "axiomatic/" + M.name();
  auto Start = Clock::now();
  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled)
    return Result;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    ++Result.Work;
    if (!Cand.Consistent || !Cand.Out.satisfies(Test.Final))
      return true;
    if (M.allows(Cand.Exe)) {
      Result.Reachable = true;
      return false; // Witness found.
    }
    return true;
  });
  Result.Seconds = secondsSince(Start);
  return Result;
}

VerifyResult cats::verifyMultiEvent(const LitmusTest &Test, const Model &M) {
  VerifyResult Result;
  Result.TestName = Test.Name;
  Result.Method = "multi-event/" + M.name();
  auto Start = Clock::now();
  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled)
    return Result;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    ++Result.Work;
    if (!Cand.Consistent || !Cand.Out.satisfies(Test.Final))
      return true;
    if (multiEventCheck(Cand.Exe, M).Allowed) {
      Result.Reachable = true;
      return false;
    }
    return true;
  });
  Result.Seconds = secondsSince(Start);
  return Result;
}

VerifyResult cats::verifyOperational(const LitmusTest &Test, const Model &M,
                                     uint64_t StateLimit) {
  VerifyResult Result;
  Result.TestName = Test.Name;
  Result.Method = "operational/" + M.name();
  auto Start = Clock::now();
  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled)
    return Result;
  forEachCandidate(*Compiled, [&](const Candidate &Cand) {
    if (!Cand.Consistent || !Cand.Out.satisfies(Test.Final))
      return true;
    // Explore-all: the instrumented-operational pipeline pays for the
    // whole behaviour space of the encoding, not just one witness path.
    MachineResult Machine = machineAccepts(Cand.Exe, M, StateLimit,
                                           /*ExploreAll=*/true);
    Result.Work += Machine.StatesVisited;
    if (Machine.HitLimit)
      Result.Incomplete = true;
    if (Machine.Accepted) {
      Result.Reachable = true;
      return false;
    }
    return true;
  });
  Result.Seconds = secondsSince(Start);
  return Result;
}
