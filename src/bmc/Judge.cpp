//===- Judge.cpp - The bmc judging backend of the sweep path --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "bmc/Judge.h"

#include "herd/Enumerator.h"

#include <cassert>
#include <chrono>

using namespace cats;

MultiSimulationResult
cats::judgeBmc(const CompiledTest &Compiled,
               const std::vector<const Model *> &Models) {
  return simulateAll(Compiled, Models, JudgeBackend::Bmc);
}

MultiSimulationResult
cats::judgeBmc(const LitmusTest &Test,
               const std::vector<const Model *> &Models) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  return judgeBmc(*Compiled, Models);
}

VerifyResult cats::verifyAxiomaticBmc(const LitmusTest &Test,
                                      const Model &M) {
  auto Compiled = CompiledTest::compile(Test);
  assert(Compiled && "litmus test failed to compile");
  VerifyResult Out;
  Out.TestName = Test.Name;
  Out.Method = "axiomatic-bmc";
  auto Start = std::chrono::steady_clock::now();
  MultiModelChecker Checker(*Compiled, {&M});
  EnumerationStats Stats =
      enumerateIncremental(*Compiled, Checker, /*SkipKnownOutcomes=*/true);
  Checker.setEnumerationStats(Stats);
  MultiSimulationResult Result = Checker.take();
  Out.Seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - Start)
                    .count();
  Out.Reachable = Result.PerModel.front().ConditionReachable;
  Out.Work = Stats.JudgedCandidates;
  return Out;
}
