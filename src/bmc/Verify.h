//===- Verify.h - Bounded verification of litmus programs -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bounded-verification substrate standing in for CBMC (Tables X-XII,
/// see DESIGN.md). The question is always reachability of the program's
/// final condition under a model, answered three ways:
///
///  * axiomatic, single-event: enumerate candidates, check the four axioms
///    (this is the paper's "implement the model inside the verifier");
///  * axiomatic, multi-event: the same with CAV'12-style event explosion;
///  * operational: accept candidates by exploring the intermediate machine
///    (this is the goto-instrument + SC-tool pipeline's cost shape: an
///    operational search per behaviour).
///
/// Timings and work counters are returned so the benches can print the
/// paper's comparison rows.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_BMC_VERIFY_H
#define CATS_BMC_VERIFY_H

#include "litmus/LitmusTest.h"
#include "model/Model.h"

#include <string>

namespace cats {

/// Result of one verification run.
struct VerifyResult {
  std::string TestName;
  std::string Method;
  bool Reachable = false;
  /// Wall-clock seconds.
  double Seconds = 0;
  /// Work measure: candidates examined (axiomatic) or machine states
  /// visited (operational).
  uint64_t Work = 0;
  /// True when the operational search hit its state limit somewhere.
  bool Incomplete = false;
};

/// Axiomatic verification (single-event).
VerifyResult verifyAxiomatic(const LitmusTest &Test, const Model &M);

/// Axiomatic verification with multi-event cost.
VerifyResult verifyMultiEvent(const LitmusTest &Test, const Model &M);

/// Operational verification via the intermediate machine.
/// \p StateLimit bounds the per-candidate search (0 = unlimited).
VerifyResult verifyOperational(const LitmusTest &Test, const Model &M,
                               uint64_t StateLimit = 0);

} // namespace cats

#endif // CATS_BMC_VERIFY_H
