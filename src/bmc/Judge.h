//===- Judge.h - The bmc judging backend of the sweep path ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wires the bounded-verification leg into the campaign sweep path as an
/// opt-in judging backend behind the MultiModelChecker interface
/// (cats_sweep --backend bmc, docs/enumeration.md). The backend runs the
/// incremental pruned search and layers a bounded outcome memo on top: a
/// candidate whose outcome has already been proven allowed under every
/// model is not re-judged, mirroring how a bounded model checker stops
/// exploring a behaviour once its reachability question is answered.
///
/// Verdicts, allowed-outcome sets and consistent-outcome sets are exact;
/// CandidatesAllowed is a lower bound (the memo's whole point is to stop
/// counting proofs of the same fact).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_BMC_JUDGE_H
#define CATS_BMC_JUDGE_H

#include "bmc/Verify.h"
#include "herd/Simulator.h"

namespace cats {

/// Judges \p Compiled under \p Models with the bmc backend (equivalent to
/// simulateAll(Compiled, Models, JudgeBackend::Bmc)).
MultiSimulationResult judgeBmc(const CompiledTest &Compiled,
                               const std::vector<const Model *> &Models);

/// Convenience overload: compiles \p Test first; asserts on compile
/// errors.
MultiSimulationResult judgeBmc(const LitmusTest &Test,
                               const std::vector<const Model *> &Models);

/// Reachability of \p Test's final condition under \p M, answered by the
/// bmc backend; Work counts judged candidates (after pruning, symmetry
/// and the outcome memo), comparable with verifyAxiomatic's exhaustive
/// candidate count.
VerifyResult verifyAxiomaticBmc(const LitmusTest &Test, const Model &M);

} // namespace cats

#endif // CATS_BMC_JUDGE_H
