//===- MoleParser.h - Text format for mole mini-IR programs ---*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parser for the mole mini-IR, so users can mine their own programs:
///
/// \code
///   program rcu
///   fn foo_update_a {
///     write foo2_a
///     fence lwsync
///     write gbl_foo
///   }
///   fn foo_get_a {
///     read gbl_foo
///     read foo2_a
///   }
/// \endcode
///
/// `//` starts a comment. Statements: `read <var>`, `write <var>`,
/// `fence <name>`.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MOLE_MOLEPARSER_H
#define CATS_MOLE_MOLEPARSER_H

#include "mole/Mole.h"
#include "support/Error.h"

#include <string>

namespace cats {

/// Parses a mini-IR program from \p Text.
Expected<MoleProgram> parseMoleProgram(const std::string &Text);

/// Reads and parses a .mole file.
Expected<MoleProgram> parseMoleFile(const std::string &Path);

/// Renders a program back to the text format (round-trips through
/// parseMoleProgram).
std::string moleProgramToString(const MoleProgram &Program);

} // namespace cats

#endif // CATS_MOLE_MOLEPARSER_H
