//===- Mole.cpp - Static critical-cycle mining (Sec. 9) -------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "mole/Mole.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace cats;

std::map<std::string, unsigned> MoleReport::patternCounts() const {
  std::map<std::string, unsigned> Out;
  for (const MoleCycle &C : Cycles)
    ++Out[C.Pattern];
  return Out;
}

std::map<std::string, unsigned> MoleReport::axiomCounts() const {
  std::map<std::string, unsigned> Out;
  for (const MoleCycle &C : Cycles)
    ++Out[C.AxiomClass];
  return Out;
}

namespace {

/// One concurrent thread: a function instance with its memory accesses.
struct MoleThread {
  std::string FunctionName;
  /// Memory accesses only (fences dropped; they do not take part in the
  /// static cycle structure, cf. Sec. 9.1: mole records patterns, the
  /// fences are reported in the litmus-style naming elsewhere).
  std::vector<MoleAccess> Accesses;
};

/// A node of the cycle graph.
struct Node {
  unsigned Thread;
  unsigned Index; ///< Into MoleThread::Accesses.
};

bool isWrite(const MoleAccess &A) {
  return A.AccessKind == MoleAccess::Kind::Write;
}

/// Variables read or written by a function.
std::set<std::string> varsOf(const MoleFunction &F) {
  std::set<std::string> Out;
  for (const MoleAccess &A : F.Body)
    if (A.AccessKind != MoleAccess::Kind::Fence)
      Out.insert(A.Var);
  return Out;
}

/// Union-find grouping of functions by shared variables.
std::vector<std::vector<unsigned>>
groupFunctions(const MoleProgram &Program) {
  size_t N = Program.Functions.size();
  std::vector<unsigned> Parent(N);
  for (unsigned I = 0; I < N; ++I)
    Parent[I] = I;
  std::function<unsigned(unsigned)> Find = [&](unsigned X) {
    return Parent[X] == X ? X : Parent[X] = Find(Parent[X]);
  };
  std::vector<std::set<std::string>> Vars;
  for (const MoleFunction &F : Program.Functions)
    Vars.push_back(varsOf(F));
  for (unsigned I = 0; I < N; ++I)
    for (unsigned J = I + 1; J < N; ++J) {
      bool Shares = false;
      for (const std::string &V : Vars[I])
        if (Vars[J].count(V))
          Shares = true;
      if (Shares)
        Parent[Find(I)] = Find(J);
    }
  std::map<unsigned, std::vector<unsigned>> Buckets;
  for (unsigned I = 0; I < N; ++I)
    Buckets[Find(I)].push_back(I);
  std::vector<std::vector<unsigned>> Out;
  for (auto &[Root, Members] : Buckets)
    Out.push_back(std::move(Members));
  return Out;
}

/// The classic names of Tab. III by systematic signature.
std::string classicName(const std::string &Systematic) {
  static const std::map<std::string, std::string> Table = {
      {"ww+rr", "mp"},          {"wr+wr", "sb"},
      {"rw+rw", "lb"},          {"w+rw+rr", "wrc"},
      {"ww+rw+rr", "isa2"},     {"ww+ww", "2+2w"},
      {"w+rw+ww", "w+rw+2w"},   {"w+rr+wr", "rwc"},
      {"ww+wr", "r"},           {"ww+rw", "s"},
      {"w+rr+w+rr", "iriw"},    {"ww+rr+wr", "w+rwc"},
      {"w+rw+r", "ww+rw+r"},
  };
  auto It = Table.find(Systematic);
  return It == Table.end() ? Systematic : It->second;
}

/// Rotation-canonical pattern name from per-thread direction strings:
/// the classic name if any rotation matches the Tab. III table, else the
/// lexicographically smallest rotation of the systematic name.
std::string patternName(std::vector<std::string> ThreadSigs) {
  std::string Best;
  std::string Classic;
  for (size_t I = 0; I < ThreadSigs.size(); ++I) {
    std::string Candidate = joinStrings(ThreadSigs, "+");
    std::string Name = classicName(Candidate);
    if (Name != Candidate)
      Classic = Name;
    if (Best.empty() || Candidate < Best)
      Best = Candidate;
    std::rotate(ThreadSigs.begin(), ThreadSigs.begin() + 1,
                ThreadSigs.end());
  }
  return Classic.empty() ? Best : Classic;
}

/// Labels a cmp edge by the communication it denotes statically.
const char *cmpLabel(bool SrcWrite, bool DstWrite) {
  if (SrcWrite && DstWrite)
    return "co";
  if (SrcWrite)
    return "rf";
  return "fr";
}

/// Applies the reduction rules to consecutive cmp labels around
/// single-access threads: co;co = co, rf;fr = co, fr;co = fr. Returns
/// the reduced per-thread signatures and edge labels.
struct ReducedCycle {
  std::vector<std::string> ThreadSigs;
  std::vector<std::string> Edges;
};

ReducedCycle reduceCycle(const std::vector<std::string> &ThreadSigs,
                         const std::vector<std::string> &CmpLabels) {
  // ThreadSigs[i] is the direction string of thread i; CmpLabels[i] links
  // thread i to thread i+1 (mod n). A single-access thread whose incoming
  // and outgoing labels compose is dropped.
  ReducedCycle Out{ThreadSigs, CmpLabels};
  bool Changed = true;
  while (Changed && Out.ThreadSigs.size() > 2) {
    Changed = false;
    for (size_t I = 0; I < Out.ThreadSigs.size(); ++I) {
      if (Out.ThreadSigs[I].size() != 1)
        continue;
      size_t In = (I + Out.ThreadSigs.size() - 1) % Out.ThreadSigs.size();
      const std::string &A = Out.Edges[In];
      const std::string &B = Out.Edges[I];
      std::string Composed;
      if (A == "co" && B == "co")
        Composed = "co";
      else if (A == "rf" && B == "fr")
        Composed = "co";
      else if (A == "fr" && B == "co")
        Composed = "fr";
      if (Composed.empty())
        continue;
      Out.Edges[In] = Composed;
      Out.Edges.erase(Out.Edges.begin() + I);
      Out.ThreadSigs.erase(Out.ThreadSigs.begin() + I);
      Changed = true;
      break;
    }
  }
  return Out;
}

/// Classifies a reduced cycle against the SC instance of the model
/// (Sec. 9.1.3): S when everything is po-loc/com (single location), T when
/// the communications are read-from only, O when exactly one from-read
/// occurs and no coherence, else P.
std::string classifyCycle(const ReducedCycle &Cycle, bool SingleLocation) {
  if (SingleLocation)
    return "S";
  unsigned Fr = 0, Co = 0;
  for (const std::string &E : Cycle.Edges) {
    if (E == "fr")
      ++Fr;
    if (E == "co")
      ++Co;
  }
  if (Fr == 0 && Co == 0)
    return "T";
  if (Fr == 1 && Co == 0)
    return "O";
  return "P";
}

/// Enumerates the static critical cycles over \p Threads, appending to
/// \p Cycles with dedup via \p Seen.
void enumerateCriticalCycles(const std::vector<MoleThread> &Threads,
                             std::vector<MoleCycle> &Cycles,
                             std::set<std::string> &Seen) {
  size_t N = Threads.size();
  // Per-thread access choices: one access, or an ordered pair of accesses
  // with distinct variables.
  struct Choice {
    std::vector<unsigned> Accs;
  };
  std::vector<std::vector<Choice>> Choices(N);
  for (size_t T = 0; T < N; ++T) {
    const auto &Accs = Threads[T].Accesses;
    for (unsigned I = 0; I < Accs.size(); ++I)
      Choices[T].push_back({{I}});
    for (unsigned I = 0; I < Accs.size(); ++I)
      for (unsigned J = I + 1; J < Accs.size(); ++J)
        if (Accs[I].Var != Accs[J].Var)
          Choices[T].push_back({{I, J}});
  }

  // Thread sequences of length 2..4, first thread minimal to canonicalise
  // rotations.
  std::vector<unsigned> Sequence;
  std::function<void(size_t)> Extend = [&](size_t MaxLen) {
    if (Sequence.size() >= 2) {
      // Try every per-thread choice combination for this sequence.
      std::vector<size_t> Pick(Sequence.size(), 0);
      while (true) {
        // Check the chain: consecutive threads' boundary accesses must
        // compete (same variable, at least one write), wrapping around.
        bool Ok = true;
        unsigned NumThreads = static_cast<unsigned>(Sequence.size());
        for (unsigned K = 0; K < NumThreads && Ok; ++K) {
          unsigned TA = Sequence[K];
          unsigned TB = Sequence[(K + 1) % NumThreads];
          const Choice &CA = Choices[TA][Pick[K]];
          const Choice &CB = Choices[TB][Pick[(K + 1) % NumThreads]];
          const MoleAccess &A =
              Threads[TA].Accesses[CA.Accs.back()];
          const MoleAccess &B =
              Threads[TB].Accesses[CB.Accs.front()];
          if (A.Var != B.Var || (!isWrite(A) && !isWrite(B)))
            Ok = false;
        }
        // Location constraint: at most three accesses per variable, from
        // distinct threads.
        if (Ok) {
          std::map<std::string, std::set<unsigned>> PerVar;
          std::map<std::string, unsigned> VarCount;
          for (unsigned K = 0; K < NumThreads && Ok; ++K) {
            unsigned T = Sequence[K];
            for (unsigned AccIdx : Choices[T][Pick[K]].Accs) {
              const MoleAccess &A = Threads[T].Accesses[AccIdx];
              ++VarCount[A.Var];
              if (!PerVar[A.Var].insert(T).second)
                Ok = false; // Same thread twice on one location.
              if (VarCount[A.Var] > 3)
                Ok = false;
            }
          }
          // A critical cycle spans more than one location.
          if (Ok && PerVar.size() < 2)
            Ok = false;
        }
        if (Ok) {
          // Build signatures and labels.
          std::vector<std::string> Sigs;
          std::vector<std::string> Labels;
          unsigned NumThreadsU = NumThreads;
          for (unsigned K = 0; K < NumThreadsU; ++K) {
            unsigned T = Sequence[K];
            std::string Sig;
            for (unsigned AccIdx : Choices[T][Pick[K]].Accs)
              Sig += isWrite(Threads[T].Accesses[AccIdx]) ? 'w' : 'r';
            Sigs.push_back(Sig);
            unsigned TB = Sequence[(K + 1) % NumThreadsU];
            const MoleAccess &A =
                Threads[T].Accesses[Choices[T][Pick[K]].Accs.back()];
            const MoleAccess &B =
                Threads[TB]
                    .Accesses[Choices[TB][Pick[(K + 1) % NumThreadsU]]
                                  .Accs.front()];
            Labels.push_back(cmpLabel(isWrite(A), isWrite(B)));
          }
          // Dedup on the canonical (threads, accesses) footprint.
          std::string Key;
          for (unsigned K = 0; K < NumThreadsU; ++K) {
            Key += strFormat("T%u:", Sequence[K]);
            for (unsigned AccIdx : Choices[Sequence[K]][Pick[K]].Accs)
              Key += strFormat("%u,", AccIdx);
            Key += ";";
          }
          if (Seen.insert(Key).second) {
            ReducedCycle Reduced = reduceCycle(Sigs, Labels);
            MoleCycle Cycle;
            Cycle.Pattern = patternName(Reduced.ThreadSigs);
            Cycle.AxiomClass = classifyCycle(Reduced, false);
            std::string EdgeText;
            for (size_t K = 0; K < Reduced.ThreadSigs.size(); ++K) {
              if (Reduced.ThreadSigs[K].size() == 2)
                EdgeText += "po ";
              EdgeText += Reduced.Edges[K] + " ";
            }
            Cycle.Edges = trimString(EdgeText);
            Cycle.Threads = NumThreads;
            Cycles.push_back(std::move(Cycle));
          }
        }
        // Odometer over choices.
        size_t K = 0;
        for (; K < Sequence.size(); ++K) {
          if (++Pick[K] < Choices[Sequence[K]].size())
            break;
          Pick[K] = 0;
        }
        if (K == Sequence.size())
          break;
      }
    }
    if (Sequence.size() == MaxLen)
      return;
    for (unsigned T = 0; T < N; ++T) {
      bool Used = false;
      for (unsigned U : Sequence)
        if (U == T)
          Used = true;
      if (Used)
        continue;
      // Canonical: rotations start at the smallest thread id.
      if (!Sequence.empty() && T < Sequence.front())
        continue;
      Sequence.push_back(T);
      Extend(MaxLen);
      Sequence.pop_back();
    }
  };
  Extend(4);
}

/// Finds the five SC-per-location shapes (Fig. 6) statically.
void findScPerLocationCycles(const std::vector<MoleThread> &Threads,
                             std::vector<MoleCycle> &Cycles,
                             std::set<std::string> &Seen) {
  auto Emit = [&](const char *Pattern, const std::string &Key,
                  const char *Edges, unsigned NumThreads) {
    if (!Seen.insert(Key).second)
      return;
    MoleCycle Cycle;
    Cycle.Pattern = Pattern;
    Cycle.AxiomClass = "S";
    Cycle.Edges = Edges;
    Cycle.Threads = NumThreads;
    Cycles.push_back(std::move(Cycle));
  };

  for (unsigned T = 0; T < Threads.size(); ++T) {
    const auto &Accs = Threads[T].Accesses;
    for (unsigned I = 0; I < Accs.size(); ++I) {
      for (unsigned J = I + 1; J < Accs.size(); ++J) {
        if (Accs[I].Var != Accs[J].Var)
          continue;
        bool WI = isWrite(Accs[I]), WJ = isWrite(Accs[J]);
        std::string Base =
            strFormat("scloc:T%u:%u,%u", T, I, J);
        if (WI && WJ)
          Emit("coWW", Base + ":ww", "po-loc co", 1);
        if (!WI && WJ)
          Emit("coRW1", Base + ":rw1", "po-loc rf", 1);
        // The remaining shapes need another thread writing the variable.
        for (unsigned U = 0; U < Threads.size(); ++U) {
          if (U == T)
            continue;
          bool OtherWrites = false;
          for (const MoleAccess &A : Threads[U].Accesses)
            if (A.Var == Accs[I].Var && isWrite(A))
              OtherWrites = true;
          if (!OtherWrites)
            continue;
          std::string Key =
              Base + strFormat(":U%u", U);
          if (!WI && WJ)
            Emit("coRW2", Key + ":rw2", "po-loc co rf", 2);
          if (WI && !WJ)
            Emit("coWR", Key + ":wr", "po-loc fr co rf", 2);
          if (!WI && !WJ)
            Emit("coRR", Key + ":rr", "po-loc fr rf", 2);
        }
      }
    }
  }
}

} // namespace

MoleReport cats::analyzeProgram(const MoleProgram &Program) {
  MoleReport Report;
  Report.ProgramName = Program.Name;

  for (const auto &Group : groupFunctions(Program)) {
    std::vector<std::string> Names;
    for (unsigned F : Group)
      Names.push_back(Program.Functions[F].Name);
    Report.Groups.push_back(Names);

    // Threads: one instance per function; single-function groups get a
    // second copy (the paper spawns several instances per entry point).
    std::vector<MoleThread> Threads;
    for (unsigned F : Group) {
      MoleThread Thread;
      Thread.FunctionName = Program.Functions[F].Name;
      for (const MoleAccess &A : Program.Functions[F].Body)
        if (A.AccessKind != MoleAccess::Kind::Fence)
          Thread.Accesses.push_back(A);
      Threads.push_back(Thread);
    }
    if (Threads.size() == 1)
      Threads.push_back(Threads.front());

    std::set<std::string> Seen;
    enumerateCriticalCycles(Threads, Report.Cycles, Seen);
    findScPerLocationCycles(Threads, Report.Cycles, Seen);
  }
  return Report;
}

//===----------------------------------------------------------------------===//
// Case studies
//===----------------------------------------------------------------------===//

MoleProgram cats::rcuProgram() {
  // Fig. 40, with the macro noise compiled away: gbl_foo is the pointer,
  // foo1/foo2 the cells, a_value/new_val the channel back to main.
  MoleProgram P;
  P.Name = "RCU";
  P.Functions.push_back(
      {"foo_update_a",
       {MoleAccess::write("foo2_a"), MoleAccess::read("gbl_foo"),
        MoleAccess::read("foo1_a"), MoleAccess::write("foo2_a"),
        MoleAccess::fence("lwsync"), MoleAccess::write("gbl_foo")}});
  P.Functions.push_back({"foo_get_a",
                         {MoleAccess::read("gbl_foo"),
                          MoleAccess::read("foo2_a"),
                          MoleAccess::write("a_value")}});
  P.Functions.push_back(
      {"main",
       {MoleAccess::write("foo1_a"), MoleAccess::write("gbl_foo"),
        MoleAccess::write("new_val"), MoleAccess::read("a_value")}});
  return P;
}

MoleProgram cats::postgresProgram() {
  // The pgsql-hackers worker/latch idiom: each worker writes its work
  // flag, sets the latch of the peer, then reads its own latch and work
  // flag; plus a monitor scanning the latches.
  MoleProgram P;
  P.Name = "PostgreSQL";
  P.Functions.push_back(
      {"worker0",
       {MoleAccess::write("work0"), MoleAccess::fence("sync"),
        MoleAccess::write("latch1"), MoleAccess::read("latch0"),
        MoleAccess::read("work1"), MoleAccess::write("latch0")}});
  P.Functions.push_back(
      {"worker1",
       {MoleAccess::write("work1"), MoleAccess::fence("sync"),
        MoleAccess::write("latch0"), MoleAccess::read("latch1"),
        MoleAccess::read("work0"), MoleAccess::write("latch1")}});
  P.Functions.push_back({"monitor",
                         {MoleAccess::read("latch0"),
                          MoleAccess::read("latch1"),
                          MoleAccess::write("shutdown")}});
  P.Functions.push_back({"controller",
                         {MoleAccess::write("shutdown"),
                          MoleAccess::read("work0"),
                          MoleAccess::read("work1")}});
  return P;
}

MoleProgram cats::apacheProgram() {
  // The Apache fdqueue idiom: producers push onto a ring and bump the
  // count; consumers read the count and pop; a recycler reuses slots.
  MoleProgram P;
  P.Name = "Apache";
  P.Functions.push_back({"push",
                         {MoleAccess::write("slot"),
                          MoleAccess::fence("sync"),
                          MoleAccess::write("count")}});
  P.Functions.push_back({"pop",
                         {MoleAccess::read("count"),
                          MoleAccess::read("slot"),
                          MoleAccess::write("count")}});
  P.Functions.push_back({"recycle",
                         {MoleAccess::read("slot"),
                          MoleAccess::write("slot")}});
  return P;
}
