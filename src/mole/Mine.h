//===- Mine.h - Corpus data-mining over sweep results ---------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic half of the mole story (Sec. 9): where mole/Mole.h mines
/// *static* critical cycles out of program overapproximations, this layer
/// mines *observed-vs-forbidden outcome patterns* out of a swept litmus
/// corpus. Test names are folded to their cycle family (mechanism
/// suffixes stripped: "mp+lwsync+addr" -> "mp"), and per family the
/// Allow/Forbid verdicts of every model are aggregated — which is how the
/// paper's "is this idiom observable on this architecture" tables read.
///
/// A MineReport can also carry static mole analyses; the JSON rendering
/// (cats-mine-report/1, docs/mining.md) cross-references the two sides:
/// each statically mined pattern links to the corpus verdicts of the same
/// family when the corpus exercised it.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MOLE_MINE_H
#define CATS_MOLE_MINE_H

#include "mole/Mole.h"
#include "sweep/SweepEngine.h"

#include <map>
#include <string>
#include <vector>

namespace cats {

/// Strips the mechanism suffixes off a diy-style test name, leaving the
/// cycle-family base: "mp+lwsync+addr" -> "mp", "w+rw+2w+lwsyncs" ->
/// "w+rw+2w", "mp+dmb+fri-rfi-ctrlisb" -> "mp". Unknown trailing tokens
/// (direction strings, family parts like "2w") are kept.
std::string cycleFamilyOf(const std::string &TestName);

/// Aggregated verdicts of one model over one family.
struct FamilyModelStats {
  std::string Model;
  unsigned Allowed = 0;   ///< Tests of the family the model allows.
  unsigned Forbidden = 0; ///< Tests of the family the model forbids.
};

/// The empirical (native-run) column of one family: what a real machine
/// observed, next to what the models predict. Filled by
/// run/Verdict.h's attachEmpirical from a RunReport.
struct FamilyEmpirical {
  unsigned Tests = 0;    ///< Family tests executed natively.
  unsigned Observed = 0; ///< ... whose exists-clause was seen on hardware.
  unsigned long long Iterations = 0; ///< Total executions sampled.
  /// Unsound executions: outcomes the reference model forbids plus any
  /// the candidate enumeration cannot produce at all (the two counters
  /// are disjoint); 0 on a sound setup.
  unsigned long long OutsideModel = 0;
};

/// Observed-vs-forbidden statistics for one cycle family.
struct FamilyVerdicts {
  std::string Family;
  unsigned Tests = 0;
  /// One entry per swept model, in sweep order.
  std::vector<FamilyModelStats> PerModel;
  /// The family's test names, in sweep order.
  std::vector<std::string> TestNames;
  /// Hardware observations, when a native run was attached.
  bool HasEmpirical = false;
  FamilyEmpirical Empirical;

  const FamilyModelStats *forModel(const std::string &Name) const;
  /// True when the model allowed at least one test of the family.
  bool observedOn(const std::string &Model) const;
  /// True when the model forbade every test of the family.
  bool forbiddenUnder(const std::string &Model) const;
};

/// The full mining result: corpus statistics plus optional static
/// analyses.
struct MineReport {
  unsigned CorpusTests = 0;
  unsigned CorpusErrors = 0;
  /// Model display names, in sweep order.
  std::vector<std::string> Models;
  /// Families sorted by name.
  std::vector<FamilyVerdicts> Families;
  /// Static mole analyses to cross-reference (may be empty).
  std::vector<MoleReport> StaticReports;
  /// Set when a native run was attached (attachEmpirical): the reference
  /// model the hardware histograms were judged against and the host.
  bool HasEmpirical = false;
  std::string EmpiricalModel;
  std::string EmpiricalHost;

  const FamilyVerdicts *family(const std::string &Name) const;
};

/// Folds a sweep report into per-family observed-vs-forbidden statistics.
/// Jobs that errored count toward CorpusErrors and no family.
MineReport mineSweepReport(const SweepReport &Report);

/// Serializes to the cats-mine-report/1 schema (docs/mining.md). The
/// rendering is deterministic.
JsonValue mineReportToJson(const MineReport &Report);

/// Parses a cats-mine-report/1 document back into a MineReport. Refuses
/// documents whose "static" section is non-empty: static mole analyses
/// are whole-program results that cannot be merged shard-wise — re-run
/// cats_mine --mole over the merged corpus instead.
Expected<MineReport> mineReportFromJson(const JsonValue &Root);

/// Merges shard mine reports into one: corpus counters and per-family
/// per-model Allow/Forbid tallies are summed, observed_on /
/// forbidden_under fall out of the summed tallies, and empirical columns
/// add up (all parts must agree on the model list and, when present, the
/// empirical model and host). Shards cannot tell the merged report the
/// original sweep order of a family's tests, so merged TestNames are
/// sorted lexicographically — mergeMineReports(\{R\}) is therefore a
/// normal form, not the identity.
Expected<MineReport> mergeMineReports(const std::vector<MineReport> &Parts);

} // namespace cats

#endif // CATS_MOLE_MINE_H
