//===- Mine.cpp - Corpus data-mining over sweep results -------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "mole/Mine.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>

using namespace cats;

namespace {

/// True when \p Token names an ordering mechanism (or a detour qualifier)
/// in any of the suffix spellings the corpus uses: diy's canonical
/// singular forms, the catalogue's plural shorthands ("+lwsyncs"), and
/// the hyphenated detour chains ("fri-rfi-ctrlisb", "addr-po-detour").
bool isMechToken(const std::string &Token) {
  static const std::set<std::string> Vocab = {
      "po",        "pos",       "addr",    "addrs",   "data",
      "datas",     "ctrl",      "ctrls",   "ctrlisync", "ctrlisyncs",
      "ctrlisb",   "ctrlisbs",  "sync",    "syncs",   "lwsync",
      "lwsyncs",   "eieio",     "eieios",  "dmb",     "dmbs",
      "dmb.st",    "dsb",       "dsb.st",  "isync",   "isb",
      "mfence",    "mfences",   "fri",     "rfi",     "wsi",
      "detour",    "bigdetour", "bis"};
  if (Token.empty())
    return false;
  for (const std::string &Piece : splitString(Token, '-'))
    if (!Vocab.count(Piece))
      return false;
  return true;
}

} // namespace

std::string cats::cycleFamilyOf(const std::string &TestName) {
  std::vector<std::string> Tokens = splitString(TestName, '+');
  size_t Keep = Tokens.size();
  while (Keep > 1 && isMechToken(Tokens[Keep - 1]))
    --Keep;
  Tokens.resize(Keep);
  return joinStrings(Tokens, "+");
}

const FamilyModelStats *
FamilyVerdicts::forModel(const std::string &Name) const {
  for (const FamilyModelStats &S : PerModel)
    if (S.Model == Name)
      return &S;
  return nullptr;
}

bool FamilyVerdicts::observedOn(const std::string &Model) const {
  const FamilyModelStats *S = forModel(Model);
  return S && S->Allowed > 0;
}

bool FamilyVerdicts::forbiddenUnder(const std::string &Model) const {
  const FamilyModelStats *S = forModel(Model);
  return S && S->Allowed == 0 && S->Forbidden > 0;
}

const FamilyVerdicts *MineReport::family(const std::string &Name) const {
  for (const FamilyVerdicts &F : Families)
    if (F.Family == Name)
      return &F;
  return nullptr;
}

MineReport cats::mineSweepReport(const SweepReport &Report) {
  MineReport Out;
  std::map<std::string, FamilyVerdicts> ByFamily;
  for (const SweepTestResult &T : Report.Tests) {
    ++Out.CorpusTests;
    if (!T.Error.empty()) {
      ++Out.CorpusErrors;
      continue;
    }
    // The model list: first successful job defines it (every job of one
    // campaign judges the same set).
    if (Out.Models.empty())
      for (const SimulationResult &R : T.Result.PerModel)
        Out.Models.push_back(R.ModelName);

    const std::string Family = cycleFamilyOf(T.TestName);
    FamilyVerdicts &F = ByFamily[Family];
    if (F.Family.empty()) {
      F.Family = Family;
      for (const std::string &Model : Out.Models)
        F.PerModel.push_back(FamilyModelStats{Model, 0, 0});
    }
    ++F.Tests;
    F.TestNames.push_back(T.TestName);
    for (const SimulationResult &R : T.Result.PerModel) {
      for (FamilyModelStats &S : F.PerModel)
        if (S.Model == R.ModelName) {
          if (R.ConditionReachable)
            ++S.Allowed;
          else
            ++S.Forbidden;
          break;
        }
    }
  }
  for (auto &[Name, F] : ByFamily)
    Out.Families.push_back(std::move(F));
  return Out;
}

//===----------------------------------------------------------------------===//
// JSON rendering (cats-mine-report/1, see docs/mining.md)
//===----------------------------------------------------------------------===//

namespace {

JsonValue familyToJson(const FamilyVerdicts &F) {
  JsonValue Entry = JsonValue::object();
  Entry.set("family", F.Family);
  Entry.set("tests", F.Tests);
  JsonValue Models = JsonValue::array();
  JsonValue ObservedOn = JsonValue::array();
  JsonValue ForbiddenUnder = JsonValue::array();
  for (const FamilyModelStats &S : F.PerModel) {
    JsonValue M = JsonValue::object();
    M.set("model", S.Model);
    M.set("allowed", S.Allowed);
    M.set("forbidden", S.Forbidden);
    Models.push(std::move(M));
    if (S.Allowed > 0)
      ObservedOn.push(S.Model);
    else if (S.Forbidden > 0)
      ForbiddenUnder.push(S.Model);
  }
  Entry.set("models", std::move(Models));
  Entry.set("observed_on", std::move(ObservedOn));
  Entry.set("forbidden_under", std::move(ForbiddenUnder));
  if (F.HasEmpirical) {
    JsonValue Empirical = JsonValue::object();
    Empirical.set("tests", F.Empirical.Tests);
    Empirical.set("observed", F.Empirical.Observed);
    Empirical.set("iterations", F.Empirical.Iterations);
    Empirical.set("outside_model", F.Empirical.OutsideModel);
    Entry.set("empirical", std::move(Empirical));
  }
  JsonValue Names = JsonValue::array();
  for (const std::string &Name : F.TestNames)
    Names.push(Name);
  Entry.set("test_names", std::move(Names));
  return Entry;
}

JsonValue staticToJson(const MoleReport &R, const MineReport &Mine) {
  JsonValue Entry = JsonValue::object();
  Entry.set("program", R.ProgramName);
  JsonValue Groups = JsonValue::array();
  for (const auto &Group : R.Groups) {
    JsonValue G = JsonValue::array();
    for (const std::string &Name : Group)
      G.push(Name);
    Groups.push(std::move(G));
  }
  Entry.set("groups", std::move(Groups));
  Entry.set("cycles", static_cast<unsigned>(R.Cycles.size()));

  JsonValue Patterns = JsonValue::array();
  for (const auto &[Pattern, Count] : R.patternCounts()) {
    JsonValue P = JsonValue::object();
    P.set("pattern", Pattern);
    P.set("count", Count);
    // Cross-reference: what did the swept corpus say about this family?
    if (const FamilyVerdicts *F = Mine.family(Pattern)) {
      JsonValue ObservedOn = JsonValue::array();
      JsonValue ForbiddenUnder = JsonValue::array();
      for (const FamilyModelStats &S : F->PerModel) {
        if (S.Allowed > 0)
          ObservedOn.push(S.Model);
        else if (S.Forbidden > 0)
          ForbiddenUnder.push(S.Model);
      }
      P.set("corpus_tests", F->Tests);
      P.set("observed_on", std::move(ObservedOn));
      P.set("forbidden_under", std::move(ForbiddenUnder));
    }
    Patterns.push(std::move(P));
  }
  Entry.set("patterns", std::move(Patterns));

  JsonValue Axioms = JsonValue::object();
  for (const auto &[Class, Count] : R.axiomCounts())
    Axioms.set(Class, Count);
  Entry.set("axiom_counts", std::move(Axioms));
  return Entry;
}

} // namespace

//===----------------------------------------------------------------------===//
// Reader and shard merge
//===----------------------------------------------------------------------===//

namespace {

unsigned long long jsonCount(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.get(Key);
  return V && V->isNumber() ? static_cast<unsigned long long>(V->asNumber())
                            : 0;
}

std::string jsonString(const JsonValue &Obj, const char *Key) {
  const JsonValue *V = Obj.get(Key);
  return V && V->isString() ? V->asString() : std::string();
}

Expected<FamilyVerdicts> familyFromJson(const JsonValue &Entry) {
  using Ret = Expected<FamilyVerdicts>;
  if (!Entry.isObject())
    return Ret::error("family entry is not an object");
  FamilyVerdicts F;
  F.Family = jsonString(Entry, "family");
  if (F.Family.empty())
    return Ret::error("family entry without a name");
  F.Tests = static_cast<unsigned>(jsonCount(Entry, "tests"));
  const JsonValue *Models = Entry.get("models");
  if (!Models || !Models->isArray())
    return Ret::error(F.Family + ": family without a 'models' array");
  for (const JsonValue &M : Models->elements()) {
    if (!M.isObject())
      return Ret::error(F.Family + ": model entry is not an object");
    FamilyModelStats S;
    S.Model = jsonString(M, "model");
    if (S.Model.empty())
      return Ret::error(F.Family + ": model entry without a name");
    S.Allowed = static_cast<unsigned>(jsonCount(M, "allowed"));
    S.Forbidden = static_cast<unsigned>(jsonCount(M, "forbidden"));
    F.PerModel.push_back(std::move(S));
  }
  if (const JsonValue *Empirical = Entry.get("empirical")) {
    if (!Empirical->isObject())
      return Ret::error(F.Family + ": 'empirical' is not an object");
    F.HasEmpirical = true;
    F.Empirical.Tests = static_cast<unsigned>(jsonCount(*Empirical, "tests"));
    F.Empirical.Observed =
        static_cast<unsigned>(jsonCount(*Empirical, "observed"));
    F.Empirical.Iterations = jsonCount(*Empirical, "iterations");
    F.Empirical.OutsideModel = jsonCount(*Empirical, "outside_model");
  }
  if (const JsonValue *Names = Entry.get("test_names")) {
    if (!Names->isArray())
      return Ret::error(F.Family + ": 'test_names' is not an array");
    for (const JsonValue &Name : Names->elements())
      if (Name.isString())
        F.TestNames.push_back(Name.asString());
  }
  return F;
}

} // namespace

Expected<MineReport> cats::mineReportFromJson(const JsonValue &Root) {
  using Ret = Expected<MineReport>;
  if (!Root.isObject())
    return Ret::error("report is not a JSON object");
  if (jsonString(Root, "schema") != "cats-mine-report/1")
    return Ret::error("not a cats-mine-report/1 document");
  const JsonValue *Static = Root.get("static");
  if (Static && Static->isArray() && !Static->elements().empty())
    return Ret::error(
        "report carries static mole analyses, which cannot be merged "
        "shard-wise; re-run cats_mine --mole over the merged corpus");
  const JsonValue *Corpus = Root.get("corpus");
  if (!Corpus || !Corpus->isObject())
    return Ret::error("report without a 'corpus' object");

  MineReport Out;
  Out.CorpusTests = static_cast<unsigned>(jsonCount(*Corpus, "tests"));
  Out.CorpusErrors = static_cast<unsigned>(jsonCount(*Corpus, "errors"));
  if (const JsonValue *Models = Corpus->get("models")) {
    if (!Models->isArray())
      return Ret::error("'models' is not an array");
    for (const JsonValue &M : Models->elements())
      if (M.isString())
        Out.Models.push_back(M.asString());
  }
  Out.EmpiricalModel = jsonString(*Corpus, "empirical_model");
  Out.EmpiricalHost = jsonString(*Corpus, "empirical_host");
  Out.HasEmpirical = !Out.EmpiricalModel.empty();
  if (const JsonValue *Families = Corpus->get("families")) {
    if (!Families->isArray())
      return Ret::error("'families' is not an array");
    for (const JsonValue &Entry : Families->elements()) {
      auto F = familyFromJson(Entry);
      if (!F)
        return Ret::error(F.message());
      Out.Families.push_back(F.take());
    }
  }
  return Out;
}

Expected<MineReport>
cats::mergeMineReports(const std::vector<MineReport> &Parts) {
  using Ret = Expected<MineReport>;
  if (Parts.empty())
    return Ret::error("nothing to merge");

  MineReport Out;
  std::map<std::string, FamilyVerdicts> ByFamily;
  for (const MineReport &Part : Parts) {
    Out.CorpusTests += Part.CorpusTests;
    Out.CorpusErrors += Part.CorpusErrors;
    // A shard whose every test errored has no model list; any shard that
    // judged at least one test pins it, and the rest must agree.
    if (!Part.Models.empty()) {
      if (Out.Models.empty())
        Out.Models = Part.Models;
      else if (Out.Models != Part.Models)
        return Ret::error(
            "model lists differ across reports ('" +
            joinStrings(Out.Models, ",") + "' vs '" +
            joinStrings(Part.Models, ",") + "'); shards of one campaign "
            "must sweep the same models in the same order");
    }
    if (Part.HasEmpirical) {
      if (!Out.HasEmpirical) {
        Out.HasEmpirical = true;
        Out.EmpiricalModel = Part.EmpiricalModel;
        Out.EmpiricalHost = Part.EmpiricalHost;
      } else if (Out.EmpiricalModel != Part.EmpiricalModel ||
                 Out.EmpiricalHost != Part.EmpiricalHost) {
        return Ret::error("empirical columns were judged against different "
                          "references ('" + Out.EmpiricalModel + "' on '" +
                          Out.EmpiricalHost + "' vs '" + Part.EmpiricalModel +
                          "' on '" + Part.EmpiricalHost + "')");
      }
    }

    for (const FamilyVerdicts &F : Part.Families) {
      FamilyVerdicts &Merged = ByFamily[F.Family];
      if (Merged.Family.empty()) {
        Merged.Family = F.Family;
        Merged.PerModel = F.PerModel;
        for (FamilyModelStats &S : Merged.PerModel)
          S.Allowed = S.Forbidden = 0;
      }
      Merged.Tests += F.Tests;
      for (const FamilyModelStats &S : F.PerModel) {
        bool Found = false;
        for (FamilyModelStats &M : Merged.PerModel)
          if (M.Model == S.Model) {
            M.Allowed += S.Allowed;
            M.Forbidden += S.Forbidden;
            Found = true;
            break;
          }
        if (!Found)
          return Ret::error(F.Family + ": model '" + S.Model +
                            "' appears in only some shards");
      }
      Merged.TestNames.insert(Merged.TestNames.end(), F.TestNames.begin(),
                              F.TestNames.end());
      if (F.HasEmpirical) {
        Merged.HasEmpirical = true;
        Merged.Empirical.Tests += F.Empirical.Tests;
        Merged.Empirical.Observed += F.Empirical.Observed;
        Merged.Empirical.Iterations += F.Empirical.Iterations;
        Merged.Empirical.OutsideModel += F.Empirical.OutsideModel;
      }
    }
  }
  for (auto &[Name, F] : ByFamily) {
    std::sort(F.TestNames.begin(), F.TestNames.end());
    Out.Families.push_back(std::move(F));
  }
  return Out;
}

JsonValue cats::mineReportToJson(const MineReport &Report) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-mine-report/1");

  JsonValue Corpus = JsonValue::object();
  Corpus.set("tests", Report.CorpusTests);
  Corpus.set("errors", Report.CorpusErrors);
  JsonValue Models = JsonValue::array();
  for (const std::string &Model : Report.Models)
    Models.push(Model);
  Corpus.set("models", std::move(Models));
  if (Report.HasEmpirical) {
    Corpus.set("empirical_model", Report.EmpiricalModel);
    Corpus.set("empirical_host", Report.EmpiricalHost);
  }
  JsonValue Families = JsonValue::array();
  for (const FamilyVerdicts &F : Report.Families)
    Families.push(familyToJson(F));
  Corpus.set("families", std::move(Families));
  Root.set("corpus", std::move(Corpus));

  JsonValue Static = JsonValue::array();
  for (const MoleReport &R : Report.StaticReports)
    Static.push(staticToJson(R, Report));
  Root.set("static", std::move(Static));
  return Root;
}
