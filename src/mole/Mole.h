//===- Mole.h - Static critical-cycle mining (Sec. 9) ---------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mole analysis tool: finds the weak-memory idioms a concurrent
/// program uses, by enumerating *static critical cycles* over an
/// overapproximation of its shared-memory accesses (Sec. 9.1):
///
///  * cycles alternate program order po and competing accesses cmp
///    (cross-thread, same location, at least one write);
///  * at most two accesses per thread, with distinct locations;
///  * at most three accesses per location, from distinct threads;
///  * the reduction rules co;co = co, rf;fr = co, fr;co = fr collapse
///    intermediate threads, yielding the familiar pattern names;
///  * SC PER LOCATION shapes (coWW, coRW1, coRW2, coWR, coRR) are searched
///    separately.
///
/// Each cycle is classified against the axioms of the model instantiated
/// for SC, in the order S, T, O, P (Sec. 9.1.3), and named with the
/// Tab. III conventions.
///
/// The input is a mini-IR: straight-line functions of reads/writes/fences
/// over named shared variables — the substitution for goto-programs from a
/// Debian-scale C code base (see DESIGN.md). Function grouping by shared
/// variables follows the paper; every function is an entry-point candidate
/// and single-function groups are run against a second copy of themselves.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_MOLE_MOLE_H
#define CATS_MOLE_MOLE_H

#include <map>
#include <string>
#include <vector>

namespace cats {

/// One access of the mini-IR.
struct MoleAccess {
  enum class Kind : uint8_t { Read, Write, Fence };
  Kind AccessKind = Kind::Read;
  /// Shared variable name (empty for fences).
  std::string Var;
  /// Fence name for Kind::Fence.
  std::string FenceName;

  static MoleAccess read(std::string Var) {
    return {Kind::Read, std::move(Var), ""};
  }
  static MoleAccess write(std::string Var) {
    return {Kind::Write, std::move(Var), ""};
  }
  static MoleAccess fence(std::string Name) {
    return {Kind::Fence, "", std::move(Name)};
  }
};

/// A straight-line function body.
struct MoleFunction {
  std::string Name;
  std::vector<MoleAccess> Body;
};

/// A whole program.
struct MoleProgram {
  std::string Name;
  std::vector<MoleFunction> Functions;
};

/// One discovered cycle.
struct MoleCycle {
  /// Pattern name after reduction: classic where known (mp, sb, ...), else
  /// the systematic directions name (Tab. III).
  std::string Pattern;
  /// Which axiom classifies it: "S", "T", "O" or "P".
  std::string AxiomClass;
  /// Edge rendering for diagnostics, e.g. "po rf po fr".
  std::string Edges;
  /// Number of threads involved.
  unsigned Threads = 0;
};

/// Analysis result for one program.
struct MoleReport {
  std::string ProgramName;
  /// Function groups sharing variables (by function name).
  std::vector<std::vector<std::string>> Groups;
  /// All static critical cycles plus SC-per-location cycles.
  std::vector<MoleCycle> Cycles;

  /// Cycle counts by pattern name.
  std::map<std::string, unsigned> patternCounts() const;
  /// Cycle counts by axiom class.
  std::map<std::string, unsigned> axiomCounts() const;
};

/// Runs the full analysis.
MoleReport analyzeProgram(const MoleProgram &Program);

//===----------------------------------------------------------------------===//
// Bundled case studies (the paper's Sec. 8.4/9 examples, as mini-IR)
//===----------------------------------------------------------------------===//

/// Linux Read-Copy-Update (Fig. 40): updater, reader and init.
MoleProgram rcuProgram();

/// The PostgreSQL latch/worker idiom (the pgsql-hackers bug).
MoleProgram postgresProgram();

/// The Apache queue idiom.
MoleProgram apacheProgram();

} // namespace cats

#endif // CATS_MOLE_MOLE_H
