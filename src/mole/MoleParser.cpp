//===- MoleParser.cpp - Text format for mole mini-IR programs -------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "mole/MoleParser.h"

#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace cats;

Expected<MoleProgram> cats::parseMoleProgram(const std::string &Text) {
  using Fail = Expected<MoleProgram>;
  MoleProgram Program;
  MoleFunction *Current = nullptr;
  unsigned LineNo = 0;

  for (std::string Line : splitString(Text, '\n')) {
    ++LineNo;
    size_t Comment = Line.find("//");
    if (Comment != std::string::npos)
      Line = Line.substr(0, Comment);
    auto Tokens = splitWhitespace(Line);
    if (Tokens.empty())
      continue;
    auto Err = [&](const std::string &Msg) {
      return Fail::error(
          strFormat("mole parse error at line %u: %s", LineNo,
                    Msg.c_str()));
    };

    if (Tokens[0] == "program") {
      if (Tokens.size() != 2)
        return Err("expected 'program <name>'");
      Program.Name = Tokens[1];
      continue;
    }
    if (Tokens[0] == "fn") {
      // "fn name {" — the brace may be attached or separate.
      if (Tokens.size() < 2)
        return Err("expected 'fn <name> {'");
      std::string Name = Tokens[1];
      if (endsWith(Name, "{"))
        Name = Name.substr(0, Name.size() - 1);
      if (Name.empty())
        return Err("expected a function name");
      Program.Functions.push_back({Name, {}});
      Current = &Program.Functions.back();
      continue;
    }
    if (Tokens[0] == "}") {
      if (!Current)
        return Err("unmatched '}'");
      Current = nullptr;
      continue;
    }
    if (!Current)
      return Err("statement outside a function: '" + Tokens[0] + "'");
    if (Tokens.size() != 2)
      return Err("expected '<read|write|fence> <operand>'");
    if (Tokens[0] == "read")
      Current->Body.push_back(MoleAccess::read(Tokens[1]));
    else if (Tokens[0] == "write")
      Current->Body.push_back(MoleAccess::write(Tokens[1]));
    else if (Tokens[0] == "fence")
      Current->Body.push_back(MoleAccess::fence(Tokens[1]));
    else
      return Err("unknown statement '" + Tokens[0] + "'");
  }
  if (Current)
    return Fail::error("mole parse error: unterminated function " +
                       Current->Name);
  if (Program.Functions.empty())
    return Fail::error("mole parse error: no functions");
  if (Program.Name.empty())
    Program.Name = "anonymous";
  return Program;
}

Expected<MoleProgram> cats::parseMoleFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Expected<MoleProgram>::error("cannot open mole file " + Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  return parseMoleProgram(Buffer.str());
}

std::string cats::moleProgramToString(const MoleProgram &Program) {
  std::string Out = "program " + Program.Name + "\n";
  for (const MoleFunction &Fn : Program.Functions) {
    Out += "fn " + Fn.Name + " {\n";
    for (const MoleAccess &A : Fn.Body) {
      switch (A.AccessKind) {
      case MoleAccess::Kind::Read:
        Out += "  read " + A.Var + "\n";
        break;
      case MoleAccess::Kind::Write:
        Out += "  write " + A.Var + "\n";
        break;
      case MoleAccess::Kind::Fence:
        Out += "  fence " + A.FenceName + "\n";
        break;
      }
    }
    Out += "}\n";
  }
  return Out;
}
