//===- CatAdapter.cpp - cat files behind the Model interface --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "cat/CatAdapter.h"

#include "support/StringUtils.h"

#include <fstream>
#include <sstream>

using namespace cats;

namespace {

/// FNV-1a over the model source; collisions only risk a stale cache hit
/// on a hash-colliding edit, which 64 bits makes negligible.
std::string sourceHash(const std::string &Text) {
  uint64_t H = 14695981039346656037ull;
  for (unsigned char C : Text) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return strFormat("%016llx", static_cast<unsigned long long>(H));
}

} // namespace

CatAdapterModel::CatAdapterModel(cat::CatModel CatIn, std::string SourceIn)
    : Cat(std::make_shared<const cat::CatModel>(std::move(CatIn))),
      SourceHash(sourceHash(SourceIn)) {}

Expected<CatAdapterModel> CatAdapterModel::fromSource(
    const std::string &Source, const std::string &Name) {
  auto Compiled = cat::CatModel::fromSource(Source, Name);
  if (!Compiled)
    return Expected<CatAdapterModel>::error(Compiled.message());
  return CatAdapterModel(Compiled.take(), Source);
}

Expected<CatAdapterModel> CatAdapterModel::fromFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Expected<CatAdapterModel>::error("cannot open cat file: " + Path);
  std::ostringstream Text;
  Text << In.rdbuf();
  auto Compiled = cat::CatModel::fromFile(Path);
  if (!Compiled)
    return Expected<CatAdapterModel>::error(Compiled.message());
  return CatAdapterModel(Compiled.take(), Text.str());
}

std::string CatAdapterModel::name() const { return Cat->name(); }

Relation CatAdapterModel::ppo(const Execution &Exe) const {
  if (auto R = Cat->evaluate("ppo", Exe))
    return R.take();
  return Exe.Po;
}

Relation CatAdapterModel::fences(const Execution &Exe) const {
  if (auto R = Cat->evaluate("fence", Exe))
    return R.take();
  if (auto R = Cat->evaluate("fences", Exe))
    return R.take();
  return Relation(Exe.numEvents());
}

Relation CatAdapterModel::prop(const Execution &Exe) const {
  if (auto R = Cat->evaluate("prop", Exe))
    return R.take();
  return Relation(Exe.numEvents());
}

Verdict CatAdapterModel::check(const Execution &Exe) const {
  Verdict Out;
  for (const cat::CheckResult &C : Cat->check(Exe)) {
    if (C.Holds)
      continue;
    Out.Allowed = false;
    Axiom A;
    if (C.Name == "sc-per-location" || C.Name == "uniproc")
      A = Axiom::ScPerLocation;
    else if (C.Name == "no-thin-air" || C.Name == "thinair")
      A = Axiom::NoThinAir;
    else if (C.Name == "observation")
      A = Axiom::Observation;
    else if (C.Name == "propagation")
      A = Axiom::Propagation;
    else
      continue; // forbidden, but outside the four-axiom classification
    if (!Out.violates(A))
      Out.Violated.push_back(A);
  }
  return Out;
}

std::string CatAdapterModel::definitionFingerprint() const {
  return "cat:" + name() + ":" + SourceHash;
}
