//===- CatModel.h - Evaluating cat models over executions -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cat interpreter: given a parsed cat file and a candidate execution,
/// evaluates every definition to a Relation and every check to a boolean.
/// `let rec ... and ...` groups are solved as least fixpoints over the
/// finite relation lattice, exactly as the ii/ic/ci/cc equations of Fig. 25
/// require.
///
/// Builtin relations available to models (all derived from the Execution):
///
///   po po-loc rf rfe rfi co coe coi fr fre fri com
///   addr data ctrl ctrlisync ctrlisb
///   sync lwsync eieio dmb dsb dmb.st dsb.st mfence
///   id (identity over events)
///
/// Deviation from Fig. 38: the paper writes `ctrl+isync` for the
/// control+control-fence relation; since `+` is the closure operator here,
/// the builtin is spelled `ctrlisync` (and `ctrlisb` on ARM).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAT_CATMODEL_H
#define CATS_CAT_CATMODEL_H

#include "cat/CatAst.h"
#include "event/Execution.h"
#include "support/Error.h"

#include <string>
#include <vector>

namespace cats {
namespace cat {

/// Result of one named check on one execution.
struct CheckResult {
  std::string Name; ///< "as" label, or the check expression text.
  bool Holds = true;
};

/// A compiled cat model, ready to judge executions.
class CatModel {
public:
  /// Parses and semantically validates \p Source (all names resolvable,
  /// filters well-formed).
  static Expected<CatModel> fromSource(const std::string &Source,
                                       const std::string &Name);

  /// Loads a .cat file from disk.
  static Expected<CatModel> fromFile(const std::string &Path);

  /// Loads a model shipped in the repository's models/ directory by stem,
  /// e.g. "power" -> models/power.cat.
  static Expected<CatModel> builtin(const std::string &Stem);

  const std::string &name() const { return File.Name; }

  /// Evaluates all checks; the execution is allowed iff all hold.
  std::vector<CheckResult> check(const Execution &Exe) const;

  /// True when every check holds on \p Exe.
  bool allows(const Execution &Exe) const;

  /// Evaluates a defined or builtin relation by name on \p Exe (for tests
  /// and debugging); fails for unknown names.
  Expected<Relation> evaluate(const std::string &RelName,
                              const Execution &Exe) const;

private:
  explicit CatModel(CatFile File) : File(std::move(File)) {}

  CatFile File;
};

} // namespace cat
} // namespace cats

#endif // CATS_CAT_CATMODEL_H
