//===- CatParser.h - Lexer and parser for the cat language ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses cat model files (see CatAst.h for the grammar). Comments are
/// OCaml-style (* ... *) and may nest. Identifiers may contain '-' and '.'
/// (po-loc, prop-base, dmb.st); the postfix closure operators '+' and '*'
/// bind to the preceding expression.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAT_CATPARSER_H
#define CATS_CAT_CATPARSER_H

#include "cat/CatAst.h"
#include "support/Error.h"

namespace cats {
namespace cat {

/// Parses cat source text; \p Name is used for diagnostics and as the
/// model's display name.
Expected<CatFile> parseCat(const std::string &Source,
                           const std::string &Name);

} // namespace cat
} // namespace cats

#endif // CATS_CAT_CATPARSER_H
