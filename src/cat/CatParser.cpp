//===- CatParser.cpp - Lexer and parser for the cat language --------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "cat/CatParser.h"

#include "support/StringUtils.h"

#include <cctype>

using namespace cats;
using namespace cats::cat;

//===----------------------------------------------------------------------===//
// AST helpers
//===----------------------------------------------------------------------===//

std::unique_ptr<Expr> Expr::name(std::string N, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Name;
  E->Ident = std::move(N);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::empty(unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::Empty;
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::binary(ExprKind K, std::unique_ptr<Expr> L,
                                   std::unique_ptr<Expr> R, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = K;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::unary(ExprKind K, std::unique_ptr<Expr> L,
                                  unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = K;
  E->Lhs = std::move(L);
  E->Line = Line;
  return E;
}

std::unique_ptr<Expr> Expr::filter(std::string Dirs,
                                   std::unique_ptr<Expr> L, unsigned Line) {
  auto E = std::make_unique<Expr>();
  E->Kind = ExprKind::DirFilter;
  E->Ident = std::move(Dirs);
  E->Lhs = std::move(L);
  E->Line = Line;
  return E;
}

std::string Expr::toString() const {
  switch (Kind) {
  case ExprKind::Name:
    return Ident;
  case ExprKind::Empty:
    return "0";
  case ExprKind::Union:
    return "(" + Lhs->toString() + "|" + Rhs->toString() + ")";
  case ExprKind::Inter:
    return "(" + Lhs->toString() + "&" + Rhs->toString() + ")";
  case ExprKind::Diff:
    return "(" + Lhs->toString() + "\\" + Rhs->toString() + ")";
  case ExprKind::Seq:
    return "(" + Lhs->toString() + ";" + Rhs->toString() + ")";
  case ExprKind::Plus:
    return Lhs->toString() + "+";
  case ExprKind::Star:
    return Lhs->toString() + "*";
  case ExprKind::Inverse:
    return Lhs->toString() + "~";
  case ExprKind::DirFilter:
    return Ident + "(" + Lhs->toString() + ")";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

enum class TokKind : uint8_t {
  Ident,
  Zero,
  Pipe,
  Amp,
  Backslash,
  Semi,
  Plus,
  Star,
  Tilde,
  LParen,
  RParen,
  Equals,
  KwLet,
  KwRec,
  KwAnd,
  KwAcyclic,
  KwIrreflexive,
  KwEmpty,
  KwAs,
  Newline,
  End
};

struct Token {
  TokKind Kind;
  std::string Text;
  unsigned Line;
};

class Lexer {
public:
  Lexer(const std::string &Source) : Source(Source) {}

  Expected<std::vector<Token>> run() {
    std::vector<Token> Tokens;
    while (Pos < Source.size()) {
      char C = Source[Pos];
      if (C == '\n') {
        Tokens.push_back({TokKind::Newline, "\n", Line});
        ++Line;
        ++Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      if (C == '(' && Pos + 1 < Source.size() && Source[Pos + 1] == '*') {
        if (!skipComment())
          return Expected<std::vector<Token>>::error(
              strFormat("cat lexer: unterminated comment at line %u",
                        Line));
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
        Tokens.push_back(lexIdent());
        continue;
      }
      TokKind Kind;
      switch (C) {
      case '0':
        Kind = TokKind::Zero;
        break;
      case '|':
        Kind = TokKind::Pipe;
        break;
      case '&':
        Kind = TokKind::Amp;
        break;
      case '\\':
        Kind = TokKind::Backslash;
        break;
      case ';':
        Kind = TokKind::Semi;
        break;
      case '+':
        Kind = TokKind::Plus;
        break;
      case '*':
        Kind = TokKind::Star;
        break;
      case '~':
        Kind = TokKind::Tilde;
        break;
      case '(':
        Kind = TokKind::LParen;
        break;
      case ')':
        Kind = TokKind::RParen;
        break;
      case '=':
        Kind = TokKind::Equals;
        break;
      default:
        return Expected<std::vector<Token>>::error(
            strFormat("cat lexer: unexpected character '%c' at line %u", C,
                      Line));
      }
      Tokens.push_back({Kind, std::string(1, C), Line});
      ++Pos;
    }
    Tokens.push_back({TokKind::End, "", Line});
    return Tokens;
  }

private:
  bool skipComment() {
    unsigned Depth = 0;
    while (Pos + 1 < Source.size()) {
      if (Source[Pos] == '(' && Source[Pos + 1] == '*') {
        ++Depth;
        Pos += 2;
        continue;
      }
      if (Source[Pos] == '*' && Source[Pos + 1] == ')') {
        --Depth;
        Pos += 2;
        if (Depth == 0)
          return true;
        continue;
      }
      if (Source[Pos] == '\n')
        ++Line;
      ++Pos;
    }
    return false;
  }

  Token lexIdent() {
    size_t Start = Pos;
    auto IsIdentChar = [&](size_t I) {
      char C = Source[I];
      if (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
          C == '.')
        return true;
      // '-' continues an identifier only when followed by an identifier
      // character (po-loc, prop-base), so "a - b" still lexes as three
      // tokens if we ever add subtraction.
      if (C == '-' && I + 1 < Source.size() &&
          (std::isalnum(static_cast<unsigned char>(Source[I + 1])) ||
           Source[I + 1] == '_'))
        return true;
      return false;
    };
    while (Pos < Source.size() && IsIdentChar(Pos))
      ++Pos;
    std::string Text = Source.substr(Start, Pos - Start);
    TokKind Kind = TokKind::Ident;
    if (Text == "let")
      Kind = TokKind::KwLet;
    else if (Text == "rec")
      Kind = TokKind::KwRec;
    else if (Text == "and")
      Kind = TokKind::KwAnd;
    else if (Text == "acyclic")
      Kind = TokKind::KwAcyclic;
    else if (Text == "irreflexive")
      Kind = TokKind::KwIrreflexive;
    else if (Text == "empty")
      Kind = TokKind::KwEmpty;
    else if (Text == "as")
      Kind = TokKind::KwAs;
    return {Kind, Text, Line};
  }

  const std::string &Source;
  size_t Pos = 0;
  unsigned Line = 1;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

const char *DirFilterNames[] = {"RR", "RW", "RM", "WR",
                                "WW", "WM", "MR", "MW", "MM"};

bool isDirFilter(const std::string &Name) {
  for (const char *Dir : DirFilterNames)
    if (Name == Dir)
      return true;
  return false;
}

class Parser {
public:
  Parser(std::vector<Token> Tokens, std::string Name)
      : Tokens(std::move(Tokens)), ModelName(std::move(Name)) {}

  Expected<CatFile> run() {
    CatFile File;
    File.Name = ModelName;
    while (true) {
      skipNewlines();
      if (peek().Kind == TokKind::End)
        break;
      Stmt S;
      if (!parseStmt(S))
        return Expected<CatFile>::error(Error);
      File.Statements.push_back(std::move(S));
    }
    return File;
  }

private:
  const Token &peek() const { return Tokens[Cursor]; }
  Token take() { return Tokens[Cursor++]; }

  void skipNewlines() {
    while (peek().Kind == TokKind::Newline)
      ++Cursor;
  }

  bool fail(const std::string &Msg) {
    Error = strFormat("cat parse error (%s) at line %u: %s",
                      ModelName.c_str(), peek().Line, Msg.c_str());
    return false;
  }

  bool expect(TokKind Kind, const char *What) {
    if (peek().Kind != Kind)
      return fail(std::string("expected ") + What + ", got '" +
                  peek().Text + "'");
    ++Cursor;
    return true;
  }

  bool parseStmt(Stmt &Out) {
    Out.Line = peek().Line;
    switch (peek().Kind) {
    case TokKind::KwLet:
      return parseLet(Out);
    case TokKind::KwAcyclic:
      Out.Kind = StmtKind::Acyclic;
      take();
      return parseCheckTail(Out);
    case TokKind::KwIrreflexive:
      Out.Kind = StmtKind::Irreflexive;
      take();
      return parseCheckTail(Out);
    case TokKind::KwEmpty:
      Out.Kind = StmtKind::Empty;
      take();
      return parseCheckTail(Out);
    default:
      return fail("expected 'let' or a check");
    }
  }

  bool parseCheckTail(Stmt &Out) {
    auto E = parseExpr();
    if (!E)
      return false;
    Out.Check = std::move(E);
    if (peek().Kind == TokKind::KwAs) {
      take();
      if (peek().Kind != TokKind::Ident)
        return fail("expected a check name after 'as'");
      Out.CheckName = take().Text;
    }
    return expectEndOfStmt();
  }

  bool expectEndOfStmt() {
    if (peek().Kind == TokKind::Newline || peek().Kind == TokKind::End) {
      return true;
    }
    return fail("unexpected trailing tokens");
  }

  bool parseLet(Stmt &Out) {
    take(); // let
    Out.Kind = StmtKind::Let;
    if (peek().Kind == TokKind::KwRec) {
      take();
      Out.Kind = StmtKind::LetRec;
    }
    while (true) {
      Binding B;
      if (peek().Kind != TokKind::Ident)
        return fail("expected a binding name");
      B.Name = take().Text;
      if (!expect(TokKind::Equals, "'='"))
        return false;
      auto E = parseExpr();
      if (!E)
        return false;
      B.Body = std::move(E);
      Out.Bindings.push_back(std::move(B));
      // "and" continues the group; it may appear after a newline.
      size_t Save = Cursor;
      skipNewlines();
      if (peek().Kind == TokKind::KwAnd) {
        take();
        continue;
      }
      Cursor = Save;
      break;
    }
    return expectEndOfStmt();
  }

  //===--------------------------------------------------------------------===//
  // Expressions
  //===--------------------------------------------------------------------===//

  std::unique_ptr<Expr> parseExpr() { return parseUnion(); }

  std::unique_ptr<Expr> parseUnion() {
    auto L = parseInter();
    if (!L)
      return nullptr;
    while (peek().Kind == TokKind::Pipe) {
      unsigned Line = take().Line;
      auto R = parseInter();
      if (!R)
        return nullptr;
      L = Expr::binary(ExprKind::Union, std::move(L), std::move(R), Line);
    }
    return L;
  }

  std::unique_ptr<Expr> parseInter() {
    auto L = parseDiff();
    if (!L)
      return nullptr;
    while (peek().Kind == TokKind::Amp) {
      unsigned Line = take().Line;
      auto R = parseDiff();
      if (!R)
        return nullptr;
      L = Expr::binary(ExprKind::Inter, std::move(L), std::move(R), Line);
    }
    return L;
  }

  std::unique_ptr<Expr> parseDiff() {
    auto L = parseSeq();
    if (!L)
      return nullptr;
    while (peek().Kind == TokKind::Backslash) {
      unsigned Line = take().Line;
      auto R = parseSeq();
      if (!R)
        return nullptr;
      L = Expr::binary(ExprKind::Diff, std::move(L), std::move(R), Line);
    }
    return L;
  }

  std::unique_ptr<Expr> parseSeq() {
    auto L = parsePostfix();
    if (!L)
      return nullptr;
    while (peek().Kind == TokKind::Semi) {
      unsigned Line = take().Line;
      auto R = parsePostfix();
      if (!R)
        return nullptr;
      L = Expr::binary(ExprKind::Seq, std::move(L), std::move(R), Line);
    }
    return L;
  }

  std::unique_ptr<Expr> parsePostfix() {
    auto L = parsePrimary();
    if (!L)
      return nullptr;
    while (true) {
      if (peek().Kind == TokKind::Plus) {
        unsigned Line = take().Line;
        L = Expr::unary(ExprKind::Plus, std::move(L), Line);
      } else if (peek().Kind == TokKind::Star) {
        unsigned Line = take().Line;
        L = Expr::unary(ExprKind::Star, std::move(L), Line);
      } else if (peek().Kind == TokKind::Tilde) {
        unsigned Line = take().Line;
        L = Expr::unary(ExprKind::Inverse, std::move(L), Line);
      } else {
        return L;
      }
    }
  }

  std::unique_ptr<Expr> parsePrimary() {
    if (peek().Kind == TokKind::Zero)
      return Expr::empty(take().Line);
    if (peek().Kind == TokKind::LParen) {
      take();
      auto E = parseExpr();
      if (!E)
        return nullptr;
      if (!expect(TokKind::RParen, "')'"))
        return nullptr;
      return E;
    }
    if (peek().Kind == TokKind::Ident) {
      Token Tok = take();
      if (isDirFilter(Tok.Text) && peek().Kind == TokKind::LParen) {
        take();
        auto E = parseExpr();
        if (!E)
          return nullptr;
        if (!expect(TokKind::RParen, "')'"))
          return nullptr;
        return Expr::filter(Tok.Text, std::move(E), Tok.Line);
      }
      return Expr::name(Tok.Text, Tok.Line);
    }
    fail("expected an expression");
    return nullptr;
  }

  std::vector<Token> Tokens;
  std::string ModelName;
  size_t Cursor = 0;
  std::string Error;
};

} // namespace

Expected<CatFile> cats::cat::parseCat(const std::string &Source,
                                      const std::string &Name) {
  Lexer Lex(Source);
  auto Tokens = Lex.run();
  if (!Tokens)
    return Expected<CatFile>::error(Tokens.message());
  return Parser(Tokens.take(), Name).run();
}
