//===- CatAst.h - AST for the cat model language --------------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract syntax for the cat language of Sec. 8.3 / Fig. 38: a small
/// relational language in which whole memory models are written. A model is
/// a sequence of (possibly mutually recursive) relation definitions and
/// acyclicity / irreflexivity / emptiness checks.
///
/// Expression grammar (loosest to tightest):
///
///   expr   := inter ('|' inter)*                 union
///   inter  := diff ('&' diff)*                   intersection
///   diff   := seq ('\' seq)*                     difference
///   seq    := post (';' post)*                   sequence (composition)
///   post   := primary ('+' | '*' | '~')*         closures, inverse
///   primary:= name | '0' | name '(' expr ')' | '(' expr ')'
///
/// Direction filters are the function forms RR(e), RW(e), WR(e), WW(e),
/// RM(e), WM(e), MR(e), MW(e), MM(e).
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAT_CATAST_H
#define CATS_CAT_CATAST_H

#include <memory>
#include <string>
#include <vector>

namespace cats {
namespace cat {

/// Expression node kinds.
enum class ExprKind : uint8_t {
  Name,      ///< Reference to a builtin or defined relation.
  Empty,     ///< The literal 0.
  Union,     ///< a | b
  Inter,     ///< a & b
  Diff,      ///< a \ b
  Seq,       ///< a ; b
  Plus,      ///< a+
  Star,      ///< a*
  Inverse,   ///< a~ (written ^-1 in the paper)
  DirFilter, ///< RR(a), RW(a), ... restriction by endpoint directions.
};

/// One expression node.
struct Expr {
  ExprKind Kind;
  /// For Name: the identifier. For DirFilter: "RR".."MM".
  std::string Ident;
  std::unique_ptr<Expr> Lhs;
  std::unique_ptr<Expr> Rhs;
  /// Source line for diagnostics.
  unsigned Line = 0;

  static std::unique_ptr<Expr> name(std::string N, unsigned Line);
  static std::unique_ptr<Expr> empty(unsigned Line);
  static std::unique_ptr<Expr> binary(ExprKind K, std::unique_ptr<Expr> L,
                                      std::unique_ptr<Expr> R,
                                      unsigned Line);
  static std::unique_ptr<Expr> unary(ExprKind K, std::unique_ptr<Expr> L,
                                     unsigned Line);
  static std::unique_ptr<Expr> filter(std::string Dirs,
                                      std::unique_ptr<Expr> L,
                                      unsigned Line);

  /// Renders the expression back to cat syntax.
  std::string toString() const;
};

/// One name = expr binding.
struct Binding {
  std::string Name;
  std::unique_ptr<Expr> Body;
};

/// Kinds of top-level statements.
enum class StmtKind : uint8_t {
  Let,        ///< let (non-recursive) binding group.
  LetRec,     ///< let rec ... and ...: least fixpoint of the group.
  Acyclic,    ///< acyclic expr [as name]
  Irreflexive,///< irreflexive expr [as name]
  Empty       ///< empty expr [as name]
};

/// One top-level statement.
struct Stmt {
  StmtKind Kind;
  std::vector<Binding> Bindings; ///< For Let/LetRec.
  std::unique_ptr<Expr> Check;   ///< For the check statements.
  std::string CheckName;         ///< Optional "as" label.
  unsigned Line = 0;
};

/// A parsed cat model.
struct CatFile {
  /// Leading free-form model name (first (* comment *) or file name).
  std::string Name;
  std::vector<Stmt> Statements;
};

} // namespace cat
} // namespace cats

#endif // CATS_CAT_CATAST_H
