//===- CatAdapter.h - cat files behind the Model interface ----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Adapts a compiled cat model (src/cat/CatModel) to the native Model
/// interface, so .cat files plug into everything built over Model: the
/// multi-model checker, the sweep engine, the witness/provenance layer and
/// the campaign result cache. The adapter evaluates the cat checks for
/// verdicts and maps their "as" names onto the four framework axioms; the
/// architecture triple is recovered from the conventional definition names
/// (`ppo`, `fence`/`fences`, `prop`) the shipped models all use, which is
/// what lets the generic explainViolation machinery label witness edges
/// for cat-defined models too.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_CAT_CATADAPTER_H
#define CATS_CAT_CATADAPTER_H

#include "cat/CatModel.h"
#include "model/Model.h"

#include <memory>
#include <string>

namespace cats {

/// A Model backed by a cat file.
class CatAdapterModel : public Model {
public:
  /// Wraps \p Source compiled as a cat model; \p Name is the display name
  /// used when the file's own name is empty.
  static Expected<CatAdapterModel> fromSource(const std::string &Source,
                                              const std::string &Name);

  /// Loads and wraps a .cat file from disk.
  static Expected<CatAdapterModel> fromFile(const std::string &Path);

  std::string name() const override;

  /// The conventional `ppo` definition; falls back to po when the file
  /// does not define one (sc.cat's ppo is po by construction).
  Relation ppo(const Execution &Exe) const override;

  /// The conventional `fence` (or `fences`) definition; empty otherwise.
  Relation fences(const Execution &Exe) const override;

  /// The conventional `prop` definition; empty otherwise.
  Relation prop(const Execution &Exe) const override;

  /// Evaluates the file's own checks. Failing checks named after the four
  /// framework axioms ("sc-per-location", "uniproc", "no-thin-air",
  /// "observation", "propagation") are classified onto the Verdict's
  /// Violated list; any other failing check still forbids the execution.
  Verdict check(const Execution &Exe) const override;

  /// "cat:<name>:<hash of source text>" — editing the file's text
  /// invalidates cached campaign results.
  std::string definitionFingerprint() const override;

  const cat::CatModel &catModel() const { return *Cat; }

private:
  CatAdapterModel(cat::CatModel CatIn, std::string SourceIn);

  // Shared so the adapter stays copyable (Expected requires it); the
  // wrapped CatModel is immutable after construction.
  std::shared_ptr<const cat::CatModel> Cat;
  std::string SourceHash;
};

} // namespace cats

#endif // CATS_CAT_CATADAPTER_H
