//===- CatModel.cpp - Evaluating cat models over executions ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "cat/CatModel.h"

#include "cat/CatParser.h"
#include "support/StringUtils.h"

#include <fstream>
#include <map>
#include <sstream>

using namespace cats;
using namespace cats::cat;

namespace {

/// Evaluation environment: builtins computed lazily from the execution,
/// user definitions added as statements execute.
class Env {
public:
  explicit Env(const Execution &Exe) : Exe(Exe) {}

  /// Looks up \p Name; returns nullptr when unknown.
  const Relation *lookup(const std::string &Name) {
    auto It = Values.find(Name);
    if (It != Values.end())
      return &It->second;
    if (computeBuiltin(Name)) {
      return &Values.find(Name)->second;
    }
    return nullptr;
  }

  void define(const std::string &Name, Relation R) {
    Values[Name] = std::move(R);
  }

  const Execution &execution() const { return Exe; }

  /// Endpoint set by direction letter.
  EventSet dirSet(char Dir) const {
    switch (Dir) {
    case 'R':
      return Exe.reads();
    case 'W':
      return Exe.writes();
    default:
      return EventSet::all(Exe.numEvents());
    }
  }

private:
  bool computeBuiltin(const std::string &Name) {
    unsigned N = Exe.numEvents();
    Relation R(N);
    if (Name == "po")
      R = Exe.Po;
    else if (Name == "po-loc")
      R = Exe.poLoc();
    else if (Name == "rf")
      R = Exe.Rf;
    else if (Name == "rfe")
      R = Exe.rfe();
    else if (Name == "rfi")
      R = Exe.rfi();
    else if (Name == "co")
      R = Exe.Co;
    else if (Name == "coe")
      R = Exe.coe();
    else if (Name == "coi")
      R = Exe.coi();
    else if (Name == "fr")
      R = Exe.fr();
    else if (Name == "fre")
      R = Exe.fre();
    else if (Name == "fri")
      R = Exe.fri();
    else if (Name == "com")
      R = Exe.com();
    else if (Name == "addr")
      R = Exe.Addr;
    else if (Name == "data")
      R = Exe.Data;
    else if (Name == "ctrl")
      R = Exe.Ctrl;
    else if (Name == "ctrlisync" || Name == "ctrlisb")
      R = Exe.CtrlCfence;
    else if (Name == "id")
      R = Relation::identity(N);
    else if (Name == fence::Sync || Name == fence::LwSync ||
             Name == fence::Eieio || Name == fence::Dmb ||
             Name == fence::Dsb || Name == fence::DmbSt ||
             Name == fence::DsbSt || Name == fence::MFence)
      R = Exe.fenceRelation(Name);
    else
      return false;
    Values.emplace(Name, std::move(R));
    return true;
  }

  const Execution &Exe;
  std::map<std::string, Relation> Values;
};

/// Evaluates \p E in \p Env; unknown names evaluate to the empty relation
/// only inside fixpoint groups (handled by pre-defining them); otherwise
/// they are a hard error surfaced at validation time.
Relation evalExpr(const Expr &E, Env &Environment) {
  unsigned N = Environment.execution().numEvents();
  switch (E.Kind) {
  case ExprKind::Name: {
    const Relation *R = Environment.lookup(E.Ident);
    assert(R && "unresolved name should have been caught in validation");
    return *R;
  }
  case ExprKind::Empty:
    return Relation(N);
  case ExprKind::Union:
    return evalExpr(*E.Lhs, Environment) | evalExpr(*E.Rhs, Environment);
  case ExprKind::Inter:
    return evalExpr(*E.Lhs, Environment) & evalExpr(*E.Rhs, Environment);
  case ExprKind::Diff:
    return evalExpr(*E.Lhs, Environment) - evalExpr(*E.Rhs, Environment);
  case ExprKind::Seq:
    return evalExpr(*E.Lhs, Environment)
        .compose(evalExpr(*E.Rhs, Environment));
  case ExprKind::Plus:
    return evalExpr(*E.Lhs, Environment).transitiveClosure();
  case ExprKind::Star:
    return evalExpr(*E.Lhs, Environment).reflexiveTransitiveClosure();
  case ExprKind::Inverse:
    return evalExpr(*E.Lhs, Environment).inverse();
  case ExprKind::DirFilter: {
    Relation Inner = evalExpr(*E.Lhs, Environment);
    assert(E.Ident.size() == 2 && "direction filter arity");
    return Inner.restrict(Environment.dirSet(E.Ident[0]),
                          Environment.dirSet(E.Ident[1]));
  }
  }
  return Relation(N);
}

/// Collects free names of an expression.
void freeNames(const Expr &E, std::vector<std::string> &Out) {
  if (E.Kind == ExprKind::Name)
    Out.push_back(E.Ident);
  if (E.Lhs)
    freeNames(*E.Lhs, Out);
  if (E.Rhs)
    freeNames(*E.Rhs, Out);
}

/// Static validation: every name used must be a builtin, a previous
/// definition, or a member of the same let-rec group.
Status validate(const CatFile &File) {
  // The builtin vocabulary; must match Env::computeBuiltin.
  std::vector<std::string> Known = {
      "po",   "po-loc", "rf",        "rfe",     "rfi",   "co",
      "coe",  "coi",    "fr",        "fre",     "fri",   "com",
      "addr", "data",   "ctrl",      "ctrlisync", "ctrlisb", "id",
      fence::Sync,  fence::LwSync, fence::Eieio, fence::Dmb,
      fence::Dsb,   fence::DmbSt,  fence::DsbSt, fence::MFence};
  auto IsKnown = [&Known](const std::string &Name) {
    for (const std::string &K : Known)
      if (K == Name)
        return true;
    return false;
  };
  for (const Stmt &S : File.Statements) {
    std::vector<std::string> GroupNames;
    if (S.Kind == StmtKind::LetRec)
      for (const Binding &B : S.Bindings)
        GroupNames.push_back(B.Name);
    auto CheckExpr = [&](const Expr &E) -> Status {
      std::vector<std::string> Names;
      freeNames(E, Names);
      for (const std::string &Name : Names) {
        bool InGroup = false;
        for (const std::string &G : GroupNames)
          if (G == Name)
            InGroup = true;
        if (!InGroup && !IsKnown(Name))
          return Status::error(strFormat(
              "cat model %s: unknown relation '%s' at line %u",
              File.Name.c_str(), Name.c_str(), E.Line));
      }
      return Status::success();
    };
    for (const Binding &B : S.Bindings) {
      if (Status St = CheckExpr(*B.Body); St.failed())
        return St;
    }
    if (S.Check)
      if (Status St = CheckExpr(*S.Check); St.failed())
        return St;
    for (const Binding &B : S.Bindings)
      Known.push_back(B.Name);
  }
  return Status::success();
}

} // namespace

Expected<CatModel> CatModel::fromSource(const std::string &Source,
                                        const std::string &Name) {
  auto File = parseCat(Source, Name);
  if (!File)
    return Expected<CatModel>::error(File.message());
  Status St = validate(*File);
  if (St.failed())
    return Expected<CatModel>::error(St.message());
  return CatModel(File.take());
}

Expected<CatModel> CatModel::fromFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In)
    return Expected<CatModel>::error("cannot open cat file " + Path);
  std::ostringstream Buffer;
  Buffer << In.rdbuf();
  // Derive a display name from the file stem.
  std::string Name = Path;
  size_t Slash = Name.find_last_of('/');
  if (Slash != std::string::npos)
    Name = Name.substr(Slash + 1);
  if (endsWith(Name, ".cat"))
    Name = Name.substr(0, Name.size() - 4);
  return fromSource(Buffer.str(), Name);
}

Expected<CatModel> CatModel::builtin(const std::string &Stem) {
  return fromFile(std::string(CATS_MODELS_DIR) + "/" + Stem + ".cat");
}

std::vector<CheckResult> CatModel::check(const Execution &Exe) const {
  std::vector<CheckResult> Results;
  Env Environment(Exe);
  for (const Stmt &S : File.Statements) {
    switch (S.Kind) {
    case StmtKind::Let:
      for (const Binding &B : S.Bindings)
        Environment.define(B.Name, evalExpr(*B.Body, Environment));
      break;
    case StmtKind::LetRec: {
      // Least fixpoint: start the whole group at empty and iterate.
      unsigned N = Exe.numEvents();
      for (const Binding &B : S.Bindings)
        Environment.define(B.Name, Relation(N));
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (const Binding &B : S.Bindings) {
          Relation NewValue = evalExpr(*B.Body, Environment);
          const Relation *Old = Environment.lookup(B.Name);
          if (*Old != NewValue) {
            Environment.define(B.Name, std::move(NewValue));
            Changed = true;
          }
        }
      }
      break;
    }
    case StmtKind::Acyclic:
    case StmtKind::Irreflexive:
    case StmtKind::Empty: {
      Relation R = evalExpr(*S.Check, Environment);
      CheckResult Result;
      Result.Name =
          S.CheckName.empty() ? S.Check->toString() : S.CheckName;
      if (S.Kind == StmtKind::Acyclic)
        Result.Holds = R.isAcyclic();
      else if (S.Kind == StmtKind::Irreflexive)
        Result.Holds = R.isIrreflexive();
      else
        Result.Holds = R.empty();
      Results.push_back(std::move(Result));
      break;
    }
    }
  }
  return Results;
}

bool CatModel::allows(const Execution &Exe) const {
  for (const CheckResult &Result : check(Exe))
    if (!Result.Holds)
      return false;
  return true;
}

Expected<Relation> CatModel::evaluate(const std::string &RelName,
                                      const Execution &Exe) const {
  Env Environment(Exe);
  for (const Stmt &S : File.Statements) {
    if (S.Kind == StmtKind::Let) {
      for (const Binding &B : S.Bindings)
        Environment.define(B.Name, evalExpr(*B.Body, Environment));
    } else if (S.Kind == StmtKind::LetRec) {
      unsigned N = Exe.numEvents();
      for (const Binding &B : S.Bindings)
        Environment.define(B.Name, Relation(N));
      bool Changed = true;
      while (Changed) {
        Changed = false;
        for (const Binding &B : S.Bindings) {
          Relation NewValue = evalExpr(*B.Body, Environment);
          if (*Environment.lookup(B.Name) != NewValue) {
            Environment.define(B.Name, std::move(NewValue));
            Changed = true;
          }
        }
      }
    }
  }
  const Relation *R = Environment.lookup(RelName);
  if (!R)
    return Expected<Relation>::error("unknown relation " + RelName);
  return *R;
}
