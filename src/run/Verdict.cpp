//===- Verdict.cpp - Hardware-vs-model soundness checking -----------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "run/Verdict.h"

#include "herd/Simulator.h"
#include "litmus/Compiler.h"
#include "model/Registry.h"

#include <cassert>
#include <set>

using namespace cats;

const char *cats::hostArchName() {
#if defined(__x86_64__)
  return "x86_64";
#elif defined(__i386__)
  return "x86";
#elif defined(__aarch64__)
  return "aarch64";
#elif defined(__arm__)
  return "arm";
#elif defined(__powerpc64__)
  return "ppc64";
#elif defined(__powerpc__)
  return "ppc";
#else
  return "unknown";
#endif
}

const Model &cats::hostReferenceModel() {
#if defined(__x86_64__) || defined(__i386__)
  const Model *M = modelByName("TSO");
#elif defined(__aarch64__) || defined(__arm__)
  const Model *M = modelByName("ARM");
#else
  // Power is the weakest shipped hardware model: on hosts we cannot
  // classify, judging against it keeps the soundness check conservative.
  const Model *M = modelByName("Power");
#endif
  assert(M && "registry lost a built-in model");
  return *M;
}

namespace {

/// The shared judging core over precomputed simulation results. The
/// aggregate counters are disjoint: a bucket outside the enumeration is
/// counted only there (it is necessarily also outside every model's
/// allowed set — AllowedOutcomes is a subset of ConsistentOutcomes — and
/// counting it twice would misreport the violation magnitude).
void judgeWith(const LitmusTest &Test, const SimulationResult &Ref,
               const SimulationResult &Sc,
               const std::set<Outcome> &ConsistentOutcomes,
               RunTestResult &Result) {
  std::set<std::string> AllowedRef, AllowedSc, Consistent;
  for (const Outcome &O : Ref.AllowedOutcomes)
    AllowedRef.insert(O.key());
  for (const Outcome &O : Sc.AllowedOutcomes)
    AllowedSc.insert(O.key());
  for (const Outcome &O : ConsistentOutcomes)
    Consistent.insert(O.key());

  Result.ModelName = Ref.ModelName;
  Result.ConditionAllowedByModel = Ref.ConditionReachable;
  Result.ConditionAllowedBySc = Sc.ConditionReachable;
  Result.ConditionObserved = false;
  Result.OutsideModel = Result.OutsideSc = Result.OutsideEnumeration = 0;
  for (RunBucket &B : Result.Histogram) {
    B.AllowedByModel = AllowedRef.count(B.Key) != 0;
    B.AllowedBySc = AllowedSc.count(B.Key) != 0;
    B.Consistent = Consistent.count(B.Key) != 0;
    B.MatchesFinal = B.Out.satisfies(Test.Final);
    if (B.MatchesFinal)
      Result.ConditionObserved = true;
    if (!B.Consistent) {
      Result.OutsideEnumeration += B.Count;
      continue;
    }
    if (!B.AllowedByModel)
      Result.OutsideModel += B.Count;
    if (!B.AllowedBySc)
      Result.OutsideSc += B.Count;
  }
}

} // namespace

void cats::judgeHistogram(const LitmusTest &Test, const Model &Reference,
                          RunTestResult &Result) {
  auto Compiled = CompiledTest::compile(Test);
  if (!Compiled) {
    Result.Error = Compiled.message();
    return;
  }
  const Model *Sc = modelByName("SC");
  assert(Sc && "registry lost the SC model");
  std::vector<const Model *> Models{&Reference};
  if (Sc != &Reference)
    Models.push_back(Sc);
  MultiSimulationResult Sim = simulateAll(*Compiled, Models);
  const SimulationResult *Ref = Sim.forModel(Reference.name());
  const SimulationResult *ScRes = Sim.forModel(Sc->name());
  if (!ScRes)
    ScRes = Ref; // Reference is SC itself.
  judgeWith(Test, *Ref, *ScRes, Sim.ConsistentOutcomes, Result);
}

bool cats::judgeHistogramFromSimulation(const LitmusTest &Test,
                                        const Model &Reference,
                                        const MultiSimulationResult &Sim,
                                        RunTestResult &Result) {
  const SimulationResult *Ref = Sim.forModel(Reference.name());
  const SimulationResult *ScRes = Sim.forModel("SC");
  if (Reference.name() == "SC")
    ScRes = Ref;
  if (!Ref || !ScRes)
    return false;
  judgeWith(Test, *Ref, *ScRes, Sim.ConsistentOutcomes, Result);
  return true;
}

void cats::attachEmpirical(MineReport &Report, const RunReport &Run) {
  Report.HasEmpirical = true;
  Report.EmpiricalModel = Run.ModelName;
  Report.EmpiricalHost = Run.Host;
  for (const RunTestResult &T : Run.Tests) {
    if (!T.Error.empty())
      continue;
    const std::string Family = cycleFamilyOf(T.TestName);
    for (FamilyVerdicts &F : Report.Families) {
      if (F.Family != Family)
        continue;
      F.HasEmpirical = true;
      ++F.Empirical.Tests;
      F.Empirical.Iterations += T.Iterations;
      if (T.ConditionObserved)
        ++F.Empirical.Observed;
      F.Empirical.OutsideModel += T.OutsideModel + T.OutsideEnumeration;
      break;
    }
  }
}
