//===- Codegen.h - Litmus tests -> native concurrent code -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the litmus pseudo-ISA into code the host CPU actually executes:
/// every memory location becomes a cache-line-padded std::atomic cell,
/// plain loads/stores become relaxed atomic accesses, the architecture
/// fences become real host fences (mfence / atomic_thread_fence), and the
/// addr/data/ctrl dependency chains of Sec. 5 survive into the generated
/// address computations and branches, laundered through an empty asm so
/// the compiler cannot collapse them.
///
/// This is the repo's rendering of the paper's `litmus` tool (Sec. 8.1):
/// where herd *enumerates* the candidate executions of a test, the run
/// subsystem *samples* them on real hardware. The lowered form is a
/// compact per-thread op sequence executed by a tight dispatch loop; the
/// memory accesses, fences and dependent address/branch computations in
/// that loop are the genuine article, so the outcomes the harness
/// (RunEngine.h) collects are outcomes of real concurrent executions on
/// the host's memory model.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_RUN_CODEGEN_H
#define CATS_RUN_CODEGEN_H

#include "litmus/LitmusTest.h"
#include "support/Error.h"

#include <atomic>
#include <string>
#include <utility>
#include <vector>

namespace cats {

/// The host fence vocabulary the pseudo-ISA fences lower onto. The mapping
/// (docs/running.md) is:
///
///   sync, dmb, dsb, mfence        -> Full    (store-load ordering too)
///   lwsync, eieio, dmb.st, dsb.st -> Light   (acq_rel thread fence)
///   isync, isb                    -> Control (compiler barrier)
///
/// Full is `mfence` on x86-64 and a seq_cst thread fence elsewhere. The
/// mapping is at least as strong as each fence requires *for the soundness
/// direction the harness checks*: observed outcomes must fall inside the
/// host model's allowed set, and a too-strong fence only shrinks what is
/// observed.
enum class HostFence : uint8_t { None, Full, Light, Control };

/// Executes host fence \p F.
void hostFence(HostFence F);

/// Classifies a pseudo-ISA fence name; Control for isync/isb, Full/Light
/// per the table above, None for unknown names (validation rejects those
/// earlier).
HostFence classifyFence(const std::string &FenceName);

/// Identity the optimizer must treat as opaque. The generated address and
/// branch computations route dependency values through this, so e.g.
/// `opaqueValue(Dep) ^ Dep` is 0 at runtime yet cannot be constant-folded:
/// the resulting machine code genuinely reads the register, which is what
/// makes a false dependency (xor r,r) order loads on hardware that
/// respects addr dependencies.
///
/// The laundering requires the GNU inline-asm extension. On other
/// compilers the expression would fold and the emitted code would lose
/// its dependency chains — soundness reports would then blame the model
/// for harness artifacts — so refuse to build rather than run wrong.
inline Value opaqueValue(Value V) {
#if defined(__GNUC__) || defined(__clang__)
  asm volatile("" : "+r"(V));
#else
#error "run/Codegen needs GNU inline asm to preserve dependency chains"
#endif
  return V;
}

/// One shared-memory cell, alone on its cache line so distinct litmus
/// locations never exhibit false sharing.
struct alignas(64) PaddedCell {
  std::atomic<Value> V{0};
};

/// One lowered instruction. Register and location operands are dense
/// indices into the per-thread register bank / per-instance cell array.
struct NativeOp {
  Opcode Op = Opcode::Fence;
  HostFence Fence = HostFence::None;
  bool Src1IsImm = false;
  Value Imm = 0;
  int Dst = -1;     ///< Dense register index.
  int Src1 = -1;    ///< Dense register index (when !Src1IsImm).
  int Src2 = -1;    ///< Dense register index.
  int Loc = -1;     ///< Dense location index (Load/Store).
  int AddrDep = -1; ///< Dense register index feeding the address, or -1.
};

/// A litmus test lowered to native form. The lowering is structural and
/// deterministic; one NativeTest is shared read-only by all harness
/// threads.
class NativeTest {
public:
  /// Lowers \p Test; fails on validation errors (same checks as the
  /// simulator path, so a test that sweeps also runs).
  static Expected<NativeTest> compile(const LitmusTest &Test);

  const LitmusTest &test() const { return Source; }

  unsigned numThreads() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Locations in LitmusTest::locations() order — the same interning order
  /// the simulator uses, so outcome keys agree byte-for-byte.
  unsigned numLocations() const {
    return static_cast<unsigned>(LocNames.size());
  }
  const std::vector<std::string> &locationNames() const { return LocNames; }

  /// Initial value per location (0 when the init section is silent).
  const std::vector<Value> &initialValues() const { return InitVals; }

  /// Size of thread \p T's dense register bank.
  unsigned numRegisters(unsigned T) const { return RegBankSize[T]; }

  /// The registers of thread \p T that appear in outcomes — the Dst of
  /// every value-producing instruction, exactly the set the simulator's
  /// concretize() records — as (source register, dense index) pairs.
  const std::vector<std::pair<Register, unsigned>> &
  outcomeRegisters(unsigned T) const {
    return OutcomeRegs[T];
  }

  /// Stores every location's initial value into \p Cells (relaxed; the
  /// harness barrier publishes them).
  void initializeCells(PaddedCell *Cells) const;

  /// Executes thread \p T once over one instance: \p Cells points at the
  /// instance's numLocations() cells, \p Regs at the thread's
  /// numRegisters(T) bank (zeroed on entry — unwritten registers read 0,
  /// as in the data-flow semantics).
  void runThread(unsigned T, PaddedCell *Cells, Value *Regs) const;

  /// Reads one instance's final state: \p Regs[T] points at thread T's
  /// bank. The outcome has the same register/memory shape as the
  /// simulator's, so keys are directly comparable.
  Outcome collectOutcome(const PaddedCell *Cells,
                         const Value *const *Regs) const;

  /// Runs the whole test once in the calling thread, threads in index
  /// order over a private instance. The sequential interleaving is an SC
  /// execution, so the result always lies in the SC-allowed outcome set;
  /// the tests use it as the value-semantics oracle and bench_run as the
  /// harness's cost floor.
  Outcome replay() const;

private:
  NativeTest() = default;

  LitmusTest Source;
  std::vector<std::string> LocNames;
  std::vector<Value> InitVals;
  std::vector<std::vector<NativeOp>> Threads;
  std::vector<unsigned> RegBankSize;
  std::vector<std::vector<std::pair<Register, unsigned>>> OutcomeRegs;
};

} // namespace cats

#endif // CATS_RUN_CODEGEN_H
