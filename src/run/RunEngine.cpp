//===- RunEngine.cpp - litmus7-style native test harness ------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "run/RunEngine.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "run/Verdict.h"
#include "support/Rng.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <numeric>
#include <optional>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

using namespace cats;

const char *cats::scheduleName(ScheduleKind K) {
  switch (K) {
  case ScheduleKind::Shuffle:
    return "shuffle";
  case ScheduleKind::Stride:
    return "stride";
  case ScheduleKind::Sequential:
    return "seq";
  }
  return "?";
}

bool cats::parseScheduleKind(const std::string &Name, ScheduleKind &Out) {
  if (Name == "shuffle") {
    Out = ScheduleKind::Shuffle;
    return true;
  }
  if (Name == "stride") {
    Out = ScheduleKind::Stride;
    return true;
  }
  if (Name == "seq" || Name == "sequential") {
    Out = ScheduleKind::Sequential;
    return true;
  }
  return false;
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint64_t FnvOffset = 1469598103934665603ULL;
constexpr uint64_t FnvPrime = 1099511628211ULL;

uint64_t fnvStep(uint64_t H, uint64_t X) { return (H ^ X) * FnvPrime; }

/// Deterministic per-test seed: the campaign seed mixed with the name, so
/// every test draws a distinct but reproducible schedule stream.
uint64_t testSeed(uint64_t Seed, const std::string &Name) {
  uint64_t H = fnvStep(FnvOffset, Seed);
  for (char C : Name)
    H = fnvStep(H, static_cast<unsigned char>(C));
  return H;
}

/// Sense-free generation barrier. Workers spin briefly and then yield —
/// the harness must also behave on machines with fewer cores than the
/// test has threads (the run is then merely less provocative).
class SpinBarrier {
public:
  SpinBarrier(unsigned Total, unsigned SpinLimit)
      : Total(Total), SpinLimit(SpinLimit) {}

  void wait() {
    unsigned Gen = Generation.load(std::memory_order_acquire);
    if (Arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == Total) {
      Arrived.store(0, std::memory_order_relaxed);
      Generation.fetch_add(1, std::memory_order_acq_rel);
      return;
    }
    unsigned Spins = 0;
    while (Generation.load(std::memory_order_acquire) == Gen)
      if (++Spins >= SpinLimit) {
        Spins = 0;
        std::this_thread::yield();
      }
  }

private:
  std::atomic<unsigned> Arrived{0};
  std::atomic<unsigned> Generation{0};
  const unsigned Total;
  const unsigned SpinLimit;
};

void pinToCore(unsigned Core) {
#if defined(__linux__)
  cpu_set_t Set;
  CPU_ZERO(&Set);
  CPU_SET(Core, &Set);
  // Best-effort: sandboxes may forbid affinity changes.
  pthread_setaffinity_np(pthread_self(), sizeof(Set), &Set);
#else
  (void)Core;
#endif
}

/// The visiting order of one (round, worker): a permutation or stride
/// walk over [0, N), fully determined by the seed.
std::vector<uint32_t> makeSchedule(uint64_t Seed, size_t Round,
                                   unsigned Worker, unsigned N,
                                   ScheduleKind Kind) {
  std::vector<uint32_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  if (Kind == ScheduleKind::Sequential || N <= 1)
    return Order;
  Rng R(fnvStep(fnvStep(Seed, Round + 1), Worker + 0x9e3779b9ULL));
  if (Kind == ScheduleKind::Shuffle) {
    for (unsigned I = N - 1; I > 0; --I)
      std::swap(Order[I], Order[R.nextBelow(I + 1)]);
    return Order;
  }
  // Stride: start anywhere, step coprime to N so every instance is
  // visited exactly once.
  uint32_t Start = static_cast<uint32_t>(R.nextBelow(N));
  uint32_t Step = 1 + static_cast<uint32_t>(R.nextBelow(N - 1));
  while (std::gcd(Step, N) != 1)
    Step = Step % (N - 1) + 1;
  for (unsigned I = 0; I < N; ++I)
    Order[I] = (Start + static_cast<uint64_t>(I) * Step) % N;
  return Order;
}

} // namespace

RunEngine::RunEngine(RunOptions OptsIn) : Opts(OptsIn) {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 1;
  Cores = Opts.Jobs == 0 ? Hw : std::min(Opts.Jobs, Hw);
  if (Opts.BatchSize == 0)
    Opts.BatchSize = 1;
}

RunTestResult RunEngine::runTest(const LitmusTest &Test,
                                 const Model &Reference,
                                 const SimulationMemo &Memo) const {
  RunTestResult Result;
  Result.TestName = Test.Name;
  Result.ModelName = Reference.name();
  Result.Iterations = Opts.Iterations;

  obs::Span TestSpan(obs::traceEnabled() ? "run " + Test.Name
                                         : std::string());
  auto Native = [&] {
    obs::Span CodegenSpan("codegen");
    return NativeTest::compile(Test);
  }();
  if (!Native) {
    Result.Error = Native.message();
    return Result;
  }
  const unsigned NumThreads = Native->numThreads();
  const unsigned NumLocs = Native->numLocations();
  if (NumThreads == 0) {
    Result.Error = "test " + Test.Name + " has no threads";
    return Result;
  }

  const auto Start = Clock::now();
  const unsigned Batch = static_cast<unsigned>(
      std::min<unsigned long long>(Opts.BatchSize,
                                   std::max<unsigned long long>(
                                       Opts.Iterations, 1)));
  const uint64_t Seed = testSeed(Opts.Seed, Test.Name);

  // Warmup phase: the preallocation of every instance the rounds reuse.
  std::optional<obs::Span> WarmupSpan;
  if (obs::traceEnabled())
    WarmupSpan.emplace("warmup");
  // Shared instances: Batch x NumLocs padded cells; instance I's cells
  // are the contiguous run [I*NumLocs, (I+1)*NumLocs).
  std::vector<PaddedCell> Cells(static_cast<size_t>(Batch) *
                                std::max(NumLocs, 1u));
  // Per-worker register banks, Batch instances each. Written only by the
  // owning worker during run phases; read by worker 0 in collect phases
  // (the barriers order the two).
  std::vector<std::vector<Value>> Banks(NumThreads);
  std::vector<unsigned> BankStride(NumThreads);
  for (unsigned T = 0; T < NumThreads; ++T) {
    BankStride[T] = std::max(Native->numRegisters(T), 1u);
    Banks[T].assign(static_cast<size_t>(Batch) * BankStride[T], 0);
  }

  // Spin less before yielding when the machine cannot actually run every
  // worker at once.
  SpinBarrier Barrier(NumThreads, Cores >= NumThreads ? 4096 : 64);
  std::vector<uint64_t> WorkerHash(NumThreads, FnvOffset);
  std::map<std::string, RunBucket> Histogram;
  WarmupSpan.reset();

  auto Collect = [&](unsigned Count) {
    std::vector<const Value *> BankPtrs(NumThreads);
    for (unsigned I = 0; I < Count; ++I) {
      for (unsigned T = 0; T < NumThreads; ++T)
        BankPtrs[T] = &Banks[T][static_cast<size_t>(I) * BankStride[T]];
      Outcome Out = Native->collectOutcome(
          &Cells[static_cast<size_t>(I) * NumLocs], BankPtrs.data());
      std::string Key = Out.key();
      RunBucket &B = Histogram[Key];
      if (B.Count == 0) {
        B.Out = std::move(Out);
        B.Key = std::move(Key);
      }
      ++B.Count;
    }
  };

  auto Worker = [&](unsigned T) {
    if (Opts.Pin)
      pinToCore(T % Cores);
    unsigned long long Remaining = Opts.Iterations;
    size_t Round = 0;
    while (Remaining > 0) {
      const unsigned Count = static_cast<unsigned>(
          std::min<unsigned long long>(Batch, Remaining));
      if (T == 0)
        for (unsigned I = 0; I < Count; ++I)
          Native->initializeCells(&Cells[static_cast<size_t>(I) * NumLocs]);
      Barrier.wait();
      std::vector<uint32_t> Order =
          makeSchedule(Seed, Round, T, Count, Opts.Schedule);
      for (uint32_t I : Order)
        WorkerHash[T] = fnvStep(WorkerHash[T], I);
      for (uint32_t I : Order)
        Native->runThread(T, &Cells[static_cast<size_t>(I) * NumLocs],
                          &Banks[T][static_cast<size_t>(I) * BankStride[T]]);
      Barrier.wait();
      // Worker 0 folds the round while the rest idle at the next round's
      // first barrier; the second barrier made their writes visible.
      if (T == 0) {
        obs::Span CollectSpan("collect");
        Collect(Count);
      }
      Remaining -= Count;
      ++Round;
    }
  };

  {
    obs::Span RunSpan("run");
    std::vector<std::thread> Threads;
    Threads.reserve(NumThreads - 1);
    for (unsigned T = 1; T < NumThreads; ++T)
      Threads.emplace_back(Worker, T);
    Worker(0);
    for (std::thread &Th : Threads)
      Th.join();
  }

  uint64_t Hash = FnvOffset;
  for (uint64_t H : WorkerHash)
    Hash = fnvStep(Hash, H);
  Result.ScheduleHash = Hash;
  Result.Histogram.reserve(Histogram.size());
  for (auto &[Key, Bucket] : Histogram)
    Result.Histogram.push_back(std::move(Bucket));
  Result.WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();

  // Judge from an already-computed simulation when the caller has one
  // (the cats_mine --run pass just swept the same tests); otherwise
  // enumerate the candidate space here.
  {
    obs::Span JudgeSpan("judge");
    const MultiSimulationResult *Sim = Memo ? Memo(Test.Name) : nullptr;
    if (!Sim ||
        !judgeHistogramFromSimulation(Test, Reference, *Sim, Result))
      judgeHistogram(Test, Reference, Result);
  }
  if (obs::metricsEnabled()) {
    obs::counter("run.tests").add(1);
    obs::counter("run.iterations").add(Result.Iterations);
    obs::counter("run.outcome_buckets").add(Result.Histogram.size());
    obs::histogram("run.test_wall_us")
        .record(static_cast<unsigned long long>(Result.WallSeconds * 1e6));
  }
  return Result;
}

RunReport RunEngine::run(const std::vector<LitmusTest> &Tests,
                         const Model &Reference,
                         const SimulationMemo &Memo) const {
  RunReport Report;
  Report.ModelName = Reference.name();
  Report.Host = hostArchName();
  Report.Iterations = Opts.Iterations;
  Report.Seed = Opts.Seed;
  Report.BatchSize = Opts.BatchSize;
  Report.Schedule = Opts.Schedule;
  Report.Jobs = Cores;
  const auto Start = Clock::now();
  Report.Tests.reserve(Tests.size());
  for (const LitmusTest &Test : Tests) {
    Report.Tests.push_back(runTest(Test, Reference, Memo));
    if (Opts.OnTest)
      Opts.OnTest(Report.Tests.size(), Tests.size());
  }
  Report.WallSeconds =
      std::chrono::duration<double>(Clock::now() - Start).count();
  return Report;
}

bool RunReport::allSound() const {
  for (const RunTestResult &T : Tests)
    if (!T.sound())
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// JSON rendering (cats-run-report/1, see docs/running.md)
//===----------------------------------------------------------------------===//

JsonValue cats::runReportToJson(const RunReport &Report) {
  JsonValue Root = JsonValue::object();
  Root.set("schema", "cats-run-report/1");
  Root.set("host", Report.Host);
  Root.set("reference_model", Report.ModelName);
  Root.set("iterations", Report.Iterations);
  Root.set("seed", static_cast<unsigned long long>(Report.Seed));
  Root.set("batch", Report.BatchSize);
  Root.set("schedule", scheduleName(Report.Schedule));
  Root.set("jobs", Report.Jobs);
  Root.set("sound", Report.allSound());
  Root.set("wall_seconds", Report.WallSeconds);

  JsonValue Tests = JsonValue::array();
  for (const RunTestResult &T : Report.Tests) {
    JsonValue Entry = JsonValue::object();
    Entry.set("name", T.TestName);
    if (!T.Error.empty()) {
      Entry.set("error", T.Error);
      Tests.push(std::move(Entry));
      continue;
    }
    Entry.set("iterations", T.Iterations);
    Entry.set("wall_seconds", T.WallSeconds);
    Entry.set("schedule_hash", strFormat("%016llx",
                                         static_cast<unsigned long long>(
                                             T.ScheduleHash)));
    Entry.set("model_verdict",
              T.ConditionAllowedByModel ? "Allow" : "Forbid");
    Entry.set("sc_verdict", T.ConditionAllowedBySc ? "Allow" : "Forbid");
    Entry.set("condition_observed", T.ConditionObserved);
    Entry.set("outside_model", T.OutsideModel);
    Entry.set("outside_sc", T.OutsideSc);
    Entry.set("outside_enumeration", T.OutsideEnumeration);
    Entry.set("sound", T.sound());
    JsonValue Buckets = JsonValue::array();
    for (const RunBucket &B : T.Histogram) {
      JsonValue Bucket = JsonValue::object();
      Bucket.set("outcome", B.Key);
      Bucket.set("count", B.Count);
      Bucket.set("allowed_by_model", B.AllowedByModel);
      Bucket.set("allowed_by_sc", B.AllowedBySc);
      Bucket.set("consistent", B.Consistent);
      Bucket.set("matches_final", B.MatchesFinal);
      Buckets.push(std::move(Bucket));
    }
    Entry.set("histogram", std::move(Buckets));
    Tests.push(std::move(Entry));
  }
  Root.set("tests", std::move(Tests));
  return Root;
}
