//===- Codegen.cpp - Litmus tests -> native concurrent code ---------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "run/Codegen.h"

#include "event/Execution.h"

#include <map>

using namespace cats;

void cats::hostFence(HostFence F) {
  switch (F) {
  case HostFence::Full:
#if (defined(__x86_64__) || defined(__i386__)) &&                            \
    (defined(__GNUC__) || defined(__clang__))
    asm volatile("mfence" ::: "memory");
#else
    std::atomic_thread_fence(std::memory_order_seq_cst);
#endif
    break;
  case HostFence::Light:
    std::atomic_thread_fence(std::memory_order_acq_rel);
    break;
  case HostFence::Control:
    // isync/isb only discard speculation; at the source level that is a
    // compiler barrier (the ctrl+cfence ordering comes from the branch
    // the codegen emits before it).
#if defined(__GNUC__) || defined(__clang__)
    asm volatile("" ::: "memory");
#else
    std::atomic_thread_fence(std::memory_order_acquire);
#endif
    break;
  case HostFence::None:
    break;
  }
}

HostFence cats::classifyFence(const std::string &FenceName) {
  if (FenceName == fence::Sync || FenceName == fence::Dmb ||
      FenceName == fence::Dsb || FenceName == fence::MFence)
    return HostFence::Full;
  if (FenceName == fence::LwSync || FenceName == fence::Eieio ||
      FenceName == fence::DmbSt || FenceName == fence::DsbSt)
    return HostFence::Light;
  if (FenceName == fence::ISync || FenceName == fence::Isb)
    return HostFence::Control;
  return HostFence::None;
}

Expected<NativeTest> NativeTest::compile(const LitmusTest &Test) {
  std::string Problem = Test.validate();
  if (!Problem.empty())
    return Expected<NativeTest>::error("invalid litmus test " + Test.Name +
                                       ": " + Problem);

  NativeTest Out;
  Out.Source = Test;

  // Locations in the simulator's interning order, so outcome keys agree.
  Out.LocNames = Test.locations();
  std::map<std::string, int> LocIndex;
  for (const std::string &Name : Out.LocNames) {
    LocIndex[Name] = static_cast<int>(LocIndex.size());
    auto It = Test.Init.find(Name);
    Out.InitVals.push_back(It == Test.Init.end() ? 0 : It->second);
  }

  for (unsigned T = 0; T < Test.numThreads(); ++T) {
    const ThreadCode &Code = Test.Threads[T];
    std::map<Register, int> RegIndex;
    auto Dense = [&](Register R) {
      auto [It, _] = RegIndex.try_emplace(R,
                                          static_cast<int>(RegIndex.size()));
      return It->second;
    };

    std::vector<NativeOp> Ops;
    std::vector<std::pair<Register, unsigned>> Outcomes;
    Ops.reserve(Code.size());
    for (const Instruction &Instr : Code) {
      NativeOp Op;
      Op.Op = Instr.Op;
      switch (Instr.Op) {
      case Opcode::Load:
        Op.Loc = LocIndex.at(Instr.Loc);
        if (Instr.AddrDep >= 0)
          Op.AddrDep = Dense(Instr.AddrDep);
        Op.Dst = Dense(Instr.Dst);
        break;
      case Opcode::Store:
        Op.Loc = LocIndex.at(Instr.Loc);
        if (Instr.AddrDep >= 0)
          Op.AddrDep = Dense(Instr.AddrDep);
        if (Instr.Src1.isImm()) {
          Op.Src1IsImm = true;
          Op.Imm = Instr.Src1.asImm();
        } else {
          Op.Src1 = Dense(Instr.Src1.asReg());
        }
        break;
      case Opcode::Move:
        if (Instr.Src1.isImm()) {
          Op.Src1IsImm = true;
          Op.Imm = Instr.Src1.asImm();
        } else {
          Op.Src1 = Dense(Instr.Src1.asReg());
        }
        Op.Dst = Dense(Instr.Dst);
        break;
      case Opcode::Xor:
      case Opcode::Add:
        Op.Src1 = Dense(Instr.Src1.asReg());
        Op.Src2 = Dense(Instr.Src2.asReg());
        Op.Dst = Dense(Instr.Dst);
        break;
      case Opcode::CmpBranch:
        Op.Src1 = Dense(Instr.Src1.asReg());
        break;
      case Opcode::Fence:
        Op.Fence = classifyFence(Instr.FenceName);
        break;
      }
      // The outcome registers are the Dst of every value-producing
      // instruction — the same set concretize() records in its final
      // register file.
      if (Instr.Op == Opcode::Load || Instr.Op == Opcode::Move ||
          Instr.Op == Opcode::Xor || Instr.Op == Opcode::Add)
        Outcomes.push_back({Instr.Dst, static_cast<unsigned>(Op.Dst)});
      Ops.push_back(Op);
    }

    Out.Threads.push_back(std::move(Ops));
    Out.RegBankSize.push_back(static_cast<unsigned>(RegIndex.size()));
    // Deduplicate outcome registers (a register written twice appears once
    // in the final register file).
    std::map<Register, unsigned> Unique;
    for (const auto &[R, D] : Outcomes)
      Unique[R] = D;
    Out.OutcomeRegs.emplace_back(Unique.begin(), Unique.end());
  }
  return Out;
}

void NativeTest::initializeCells(PaddedCell *Cells) const {
  for (size_t L = 0; L < InitVals.size(); ++L)
    Cells[L].V.store(InitVals[L], std::memory_order_relaxed);
}

void NativeTest::runThread(unsigned T, PaddedCell *Cells, Value *Regs) const {
  // Unwritten registers read 0 (the data-flow semantics' default).
  const unsigned NumRegs = RegBankSize[T];
  for (unsigned R = 0; R < NumRegs; ++R)
    Regs[R] = 0;

  for (const NativeOp &Op : Threads[T]) {
    switch (Op.Op) {
    case Opcode::Load: {
      size_t Idx = static_cast<size_t>(Op.Loc);
      if (Op.AddrDep >= 0) {
        // opaqueValue(Dep) ^ Dep is 0 at runtime, but the compiler must
        // materialize the read of Dep into the address: a hardware addr
        // dependency, false or true exactly as in the test.
        Value Dep = Regs[Op.AddrDep];
        Idx += static_cast<size_t>(opaqueValue(Dep) ^ Dep);
      }
      Regs[Op.Dst] = Cells[Idx].V.load(std::memory_order_relaxed);
      break;
    }
    case Opcode::Store: {
      size_t Idx = static_cast<size_t>(Op.Loc);
      if (Op.AddrDep >= 0) {
        Value Dep = Regs[Op.AddrDep];
        Idx += static_cast<size_t>(opaqueValue(Dep) ^ Dep);
      }
      Value V = Op.Src1IsImm ? Op.Imm : Regs[Op.Src1];
      Cells[Idx].V.store(V, std::memory_order_relaxed);
      break;
    }
    case Opcode::Move:
      Regs[Op.Dst] = Op.Src1IsImm ? Op.Imm : Regs[Op.Src1];
      break;
    case Opcode::Xor:
      Regs[Op.Dst] = Regs[Op.Src1] ^ Regs[Op.Src2];
      break;
    case Opcode::Add:
      Regs[Op.Dst] = Regs[Op.Src1] + Regs[Op.Src2];
      break;
    case Opcode::CmpBranch: {
      // A real conditional branch on the register's value that always
      // falls through (the pseudo-ISA's branch targets the next
      // instruction) — the hardware still orders dependents behind it.
      Value V = Regs[Op.Src1];
      if (opaqueValue(V) != V)
        return;
      break;
    }
    case Opcode::Fence:
      hostFence(Op.Fence);
      break;
    }
  }
}

Outcome NativeTest::collectOutcome(const PaddedCell *Cells,
                                   const Value *const *Regs) const {
  Outcome Out;
  Out.Regs.resize(Threads.size());
  for (size_t T = 0; T < Threads.size(); ++T)
    for (const auto &[R, Dense] : OutcomeRegs[T])
      Out.Regs[T][R] = Regs[T][Dense];
  for (size_t L = 0; L < LocNames.size(); ++L)
    Out.Memory[LocNames[L]] = Cells[L].V.load(std::memory_order_relaxed);
  return Out;
}

Outcome NativeTest::replay() const {
  std::vector<PaddedCell> Cells(LocNames.empty() ? 1 : LocNames.size());
  initializeCells(Cells.data());
  std::vector<std::vector<Value>> Banks(Threads.size());
  std::vector<const Value *> BankPtrs(Threads.size());
  for (size_t T = 0; T < Threads.size(); ++T) {
    Banks[T].assign(RegBankSize[T] ? RegBankSize[T] : 1, 0);
    runThread(static_cast<unsigned>(T), Cells.data(), Banks[T].data());
    BankPtrs[T] = Banks[T].data();
  }
  return collectOutcome(Cells.data(), BankPtrs.data());
}
