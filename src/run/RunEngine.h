//===- RunEngine.h - litmus7-style native test harness --------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The high-throughput harness over run/Codegen, modelled on litmus7
/// (Sec. 8.1): a batch of preallocated test instances, one worker thread
/// per litmus thread pinned by affinity, rounds of
///
///   init all instances -> barrier -> every worker runs its thread over
///   the instances in a seeded per-worker order -> barrier -> fold the
///   final states into an outcome histogram
///
/// The per-worker visiting orders (shuffle by default, stride or
/// sequential on request) are what provoke relaxed outcomes: workers
/// collide on different instances at different times, so the window in
/// which e.g. a store buffer is visibly stale keeps moving.
///
/// Determinism guarantee (docs/running.md): for a fixed seed, iteration
/// count, batch size and schedule kind, the visiting orders — and hence
/// RunTestResult::ScheduleHash — are identical across runs, and the
/// histogram is always reported in sorted outcome-key order. The *counts*
/// are the hardware's answer and legitimately vary run to run.
///
/// The verdict layer (Verdict.h) judges each histogram against a
/// reference model: on a sound setup every observed outcome lies in the
/// model's allowed set.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_RUN_RUNENGINE_H
#define CATS_RUN_RUNENGINE_H

#include "litmus/LitmusTest.h"
#include "model/Model.h"
#include "run/Codegen.h"
#include "sweep/Json.h"

#include <functional>
#include <string>
#include <vector>

namespace cats {

struct MultiSimulationResult;

/// How each worker orders its visits to the instance batch.
enum class ScheduleKind : uint8_t {
  Shuffle,   ///< Per-round, per-worker Fisher-Yates permutation (default).
  Stride,    ///< Seeded start offset + step coprime to the batch size.
  Sequential ///< In-order; the least provocative, useful as a baseline.
};

/// "shuffle" / "stride" / "seq".
const char *scheduleName(ScheduleKind K);

/// Parses a --schedule value; false on unknown names.
bool parseScheduleKind(const std::string &Name, ScheduleKind &Out);

/// Harness configuration.
struct RunOptions {
  /// Executions sampled per test.
  unsigned long long Iterations = 100000;
  /// Cores used for affinity pinning; 0 means hardware concurrency.
  unsigned Jobs = 0;
  /// Seed for the shuffle/stride schedules (mixed with the test name, so
  /// each test draws a distinct but reproducible stream).
  uint64_t Seed = 42;
  /// Preallocated test instances per round.
  unsigned BatchSize = 512;
  ScheduleKind Schedule = ScheduleKind::Shuffle;
  /// Pin worker threads round-robin over the first Jobs cores.
  bool Pin = true;
  /// Progress hook: called after each test finishes with the counts done
  /// so far and the campaign size (cats_run --progress feeds its reporter
  /// from this).
  std::function<void(size_t Done, size_t Total)> OnTest;
};

/// One bucket of a test's outcome histogram. The verdict fields are
/// filled by judgeHistogram (Verdict.h).
struct RunBucket {
  Outcome Out;
  /// Outcome::key() — the histogram is sorted by this.
  std::string Key;
  unsigned long long Count = 0;
  /// Allowed by the reference model's simulation.
  bool AllowedByModel = false;
  /// Allowed under SC (outcomes observed outside SC are the interesting
  /// relaxations).
  bool AllowedBySc = false;
  /// Present in the candidate enumeration at all (an outcome outside it
  /// indicates a codegen/value bug, not a weak memory model).
  bool Consistent = false;
  /// Satisfies the test's exists-clause.
  bool MatchesFinal = false;
};

/// The native run of one test.
struct RunTestResult {
  std::string TestName;
  /// Non-empty when lowering or judging failed; the histogram is then
  /// empty.
  std::string Error;
  /// Reference model the histogram was judged against.
  std::string ModelName;
  unsigned long long Iterations = 0;
  /// Harness wall time (excludes the model-side simulation).
  double WallSeconds = 0;
  /// Deterministic digest of every worker's visiting orders; equal runs
  /// (same seed/iterations/batch/schedule) produce equal hashes.
  uint64_t ScheduleHash = 0;
  /// Buckets in sorted key order.
  std::vector<RunBucket> Histogram;
  /// The exists-clause was observed on hardware.
  bool ConditionObserved = false;
  /// ... and what the reference model / SC say about it.
  bool ConditionAllowedByModel = false;
  bool ConditionAllowedBySc = false;
  /// Iterations whose outcome the reference model forbids (soundness
  /// violations) / SC forbids (relaxations) / the enumeration lacks
  /// entirely (bugs). Disjoint: an outcome outside the enumeration is
  /// counted only in OutsideEnumeration, so OutsideModel +
  /// OutsideEnumeration is the total number of unsound executions.
  unsigned long long OutsideModel = 0;
  unsigned long long OutsideSc = 0;
  unsigned long long OutsideEnumeration = 0;

  /// True when every observed outcome is allowed by the reference model
  /// (and explained by the candidate enumeration).
  bool sound() const {
    return Error.empty() && OutsideModel == 0 && OutsideEnumeration == 0;
  }
};

/// A completed native-run campaign.
struct RunReport {
  std::vector<RunTestResult> Tests;
  /// Reference model display name and host architecture.
  std::string ModelName;
  std::string Host;
  /// Configuration echo.
  unsigned long long Iterations = 0;
  uint64_t Seed = 0;
  unsigned BatchSize = 0;
  ScheduleKind Schedule = ScheduleKind::Shuffle;
  unsigned Jobs = 1;
  double WallSeconds = 0;

  /// True when every test ran and was sound.
  bool allSound() const;
};

/// Runs litmus tests as native concurrent code.
class RunEngine {
public:
  explicit RunEngine(RunOptions Opts = {});

  const RunOptions &options() const { return Opts; }

  /// Cores the harness pins over.
  unsigned coreCount() const { return Cores; }

  /// A per-test lookup for already-computed simulations (a sweep pass's
  /// results): given a test name, the multi-model result to judge from,
  /// or nullptr to simulate afresh.
  using SimulationMemo =
      std::function<const MultiSimulationResult *(const std::string &)>;

  /// Runs \p Test for options().Iterations executions and judges the
  /// histogram against \p Reference. When \p Memo yields a usable
  /// simulation (carrying \p Reference and SC), the candidate space is
  /// not re-enumerated. Never throws; failures land in
  /// RunTestResult::Error.
  RunTestResult runTest(const LitmusTest &Test, const Model &Reference,
                        const SimulationMemo &Memo = nullptr) const;

  /// Runs every test in order (tests run one at a time — a hardware run
  /// wants the machine to itself).
  RunReport run(const std::vector<LitmusTest> &Tests, const Model &Reference,
                const SimulationMemo &Memo = nullptr) const;

private:
  RunOptions Opts;
  unsigned Cores;
};

/// Serializes to the cats-run-report/1 schema (docs/running.md). Apart
/// from wall times and the hardware-chosen bucket counts, the rendering
/// is deterministic.
JsonValue runReportToJson(const RunReport &Report);

} // namespace cats

#endif // CATS_RUN_RUNENGINE_H
