//===- Verdict.h - Hardware-vs-model soundness checking -------*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The judgement half of the run subsystem: the paper's empirical
/// validation loop (Sec. 8.1) asks whether everything *observed* on
/// hardware is *allowed* by the model. judgeHistogram enumerates a test's
/// candidate space once (shared with SC, via the multi-model checker) and
/// classifies every histogram bucket:
///
///   outside the reference model  -> a soundness violation (the model is
///                                   wrong for this hardware, or the run
///                                   setup leaks reorderings it must not)
///   outside SC, inside the model -> a genuine relaxation, the thing the
///                                   harness exists to provoke
///   outside the enumeration      -> a codegen/value bug: no candidate
///                                   execution at all produces it
///
/// attachEmpirical folds a run report into a mole mining report as the
/// "observed on this hardware" column next to the simulated verdicts —
/// turning the mining tables from model-vs-model into the paper's real
/// observed-vs-allowed experiment.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_RUN_VERDICT_H
#define CATS_RUN_VERDICT_H

#include "herd/Simulator.h"
#include "mole/Mine.h"
#include "run/RunEngine.h"

namespace cats {

/// The build host's architecture name ("x86_64", "aarch64", "ppc64",
/// "unknown").
const char *hostArchName();

/// The reference model native runs are judged against by default: TSO on
/// x86, ARM on aarch64, Power on ppc64 — and Power (the weakest shipped
/// hardware model) on unknown hosts, so the soundness check stays
/// conservative.
const Model &hostReferenceModel();

/// Judges \p Result's histogram against \p Reference (and SC): fills the
/// per-bucket flags and the aggregate verdict/violation fields. The
/// aggregate counters are disjoint — a bucket outside the candidate
/// enumeration counts only toward OutsideEnumeration, never also toward
/// OutsideModel/OutsideSc — so their sum is the number of unsound
/// executions. On simulation failure, sets Result.Error.
void judgeHistogram(const LitmusTest &Test, const Model &Reference,
                    RunTestResult &Result);

/// As judgeHistogram, but reuses an already-computed simulation of the
/// same test (e.g. a sweep pass's result) instead of enumerating the
/// candidate space a second time. Requires \p Sim to carry both
/// \p Reference and SC; returns false — leaving \p Result unjudged —
/// when it does not, and the caller falls back to judgeHistogram.
bool judgeHistogramFromSimulation(const LitmusTest &Test,
                                  const Model &Reference,
                                  const MultiSimulationResult &Sim,
                                  RunTestResult &Result);

/// Attaches \p Run as the empirical column of \p Report: per cycle
/// family, how many tests ran, how many observed their exists-clause on
/// hardware, and any soundness violations. Families the run exercised
/// but the corpus sweep did not are skipped (the column annotates the
/// existing table).
void attachEmpirical(MineReport &Report, const RunReport &Run);

} // namespace cats

#endif // CATS_RUN_VERDICT_H
