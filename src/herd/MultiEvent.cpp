//===- MultiEvent.cpp - Multi-event axiomatic checking --------------------===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//

#include "herd/MultiEvent.h"

#include <vector>

using namespace cats;

namespace {

/// Builds the multi-event expansion of \p Exe: every write gains one
/// propagation copy per thread (reads keep one event), and every relation
/// of the execution is blown up to the complete bipartite edges between
/// copies. All model operations (union, intersection, difference,
/// composition, closures, direction restrictions) commute with this
/// blow-up, so running the *whole* model — the ppo fixpoint included — on
/// the expansion returns exactly the single-event verdict while paying the
/// multi-event cost everywhere, which is the CAV'12 design point the paper
/// measures in Table IX.
class Expansion {
public:
  explicit Expansion(const Execution &Exe) {
    unsigned Threads = Exe.numThreads();
    Copies.resize(Exe.numEvents());
    Expanded.LocationNames = Exe.LocationNames;
    for (const Event &E : Exe.events()) {
      unsigned Count = E.isWrite() ? 1 + Threads : 1;
      for (unsigned I = 0; I < Count; ++I) {
        Event Copy = E;
        EventId Id = Expanded.addEvent(Copy);
        Copies[E.Id].push_back(Id);
      }
    }
    // Sizes the relations (and builds a po we immediately overwrite with
    // the blow-up: copies of one instruction are not po-ordered).
    Expanded.finalizeStructure(Threads);
    Expanded.Po = blowUp(Exe.Po);
    Expanded.Rf = blowUp(Exe.Rf);
    Expanded.Co = blowUp(Exe.Co);
    Expanded.Addr = blowUp(Exe.Addr);
    Expanded.Data = blowUp(Exe.Data);
    Expanded.Ctrl = blowUp(Exe.Ctrl);
    Expanded.CtrlCfence = blowUp(Exe.CtrlCfence);
    for (const auto &[Name, R] : Exe.Fences)
      Expanded.Fences[Name] = blowUp(R);
  }

  const Execution &execution() const { return Expanded; }

private:
  Relation blowUp(const Relation &Base) const {
    Relation Out(Expanded.numEvents());
    for (auto [From, To] : Base.pairs())
      for (EventId F : Copies[From])
        for (EventId T : Copies[To])
          Out.set(F, T);
    return Out;
  }

  std::vector<std::vector<EventId>> Copies;
  Execution Expanded;
};

} // namespace

MultiEventResult cats::multiEventCheck(const Execution &Exe,
                                       const Model &M) {
  Expansion Ex(Exe);
  MultiEventResult Result;
  Result.ExpandedEvents = Ex.execution().numEvents();
  Result.Allowed = M.check(Ex.execution()).Allowed;
  return Result;
}
