//===- Enumerator.h - Incremental pruned candidate search -----*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The incremental backtracking enumerator behind the Pruned and Bmc
/// judging backends (docs/enumeration.md). Instead of materialising every
/// rf x co candidate and judging it afterwards (forEachCandidate), the
/// search commits the rf map first, then one per-location coherence
/// permutation at a time, maintaining the partial po-loc | com graph and
/// abandoning a partial assignment the moment it acquires a cycle — a
/// violation of SC PER LOCATION that no completion and no model of the
/// framework can undo.
///
/// On top of the pruning, threads with literally identical code are
/// detected and only canonical representatives of each symmetry orbit are
/// judged; the orbit images are replayed onto the per-model tallies, so
/// every count and outcome set stays byte-identical to the naive backend.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HERD_ENUMERATOR_H
#define CATS_HERD_ENUMERATOR_H

#include "herd/Simulator.h"

namespace cats {

/// Runs the incremental search over \p Compiled, feeding \p Checker
/// through its bulk-accounting interface. With \p SkipKnownOutcomes the
/// bmc outcome memo additionally skips judging candidates whose outcome
/// has already been proven allowed under every model (the Bmc backend).
/// Returns the pass's counters; the caller hands them to
/// MultiModelChecker::setEnumerationStats before take().
EnumerationStats enumerateIncremental(const CompiledTest &Compiled,
                                      MultiModelChecker &Checker,
                                      bool SkipKnownOutcomes = false);

} // namespace cats

#endif // CATS_HERD_ENUMERATOR_H
