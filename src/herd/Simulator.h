//===- Simulator.h - Single-event axiomatic simulation (herd) -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The herd-style simulator (Sec. 8.3): enumerate the candidate executions
/// of a litmus test (every rf map times every coherence order), discard the
/// value-inconsistent ones, check each against a model, and collect the
/// allowed outcomes. A test's headline question — "is the final condition
/// observable under this model?" — is answered by whether any allowed
/// candidate satisfies it.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HERD_SIMULATOR_H
#define CATS_HERD_SIMULATOR_H

#include "litmus/Compiler.h"
#include "model/Model.h"

#include <array>
#include <functional>
#include <set>
#include <vector>

namespace cats {

/// Result of simulating one test under one model.
struct SimulationResult {
  std::string TestName;
  std::string ModelName;
  /// Raw candidate count (rf choices x coherence orders).
  unsigned long long CandidatesTotal = 0;
  /// Candidates surviving value-consistency.
  unsigned long long CandidatesConsistent = 0;
  /// Candidates allowed by the model.
  unsigned long long CandidatesAllowed = 0;
  /// Distinct outcomes of allowed candidates.
  std::set<Outcome> AllowedOutcomes;
  /// Distinct outcomes over all consistent candidates (any model).
  std::set<Outcome> ConsistentOutcomes;
  /// True if some allowed candidate satisfies the test's final condition.
  bool ConditionReachable = false;

  /// "Allow"/"Forbid" verdict string for the final condition.
  const char *verdict() const {
    return ConditionReachable ? "Allow" : "Forbid";
  }
};

/// Result of simulating one test under a set of models in a single
/// shared-enumeration pass. The candidate space of a test does not depend
/// on the model, so the model-independent fields live here, computed once,
/// while perModel() carries the verdict-specific counts.
struct MultiSimulationResult {
  std::string TestName;
  /// Raw candidate count (rf choices x coherence orders); shared.
  unsigned long long CandidatesTotal = 0;
  /// Candidates surviving value-consistency; shared.
  unsigned long long CandidatesConsistent = 0;
  /// Distinct outcomes over all consistent candidates; shared.
  std::set<Outcome> ConsistentOutcomes;
  /// One entry per requested model, in request order. The shared fields
  /// above are mirrored into each entry so every element is a complete
  /// SimulationResult, interchangeable with the single-model simulate().
  std::vector<SimulationResult> PerModel;

  /// The entry for model \p Name; nullptr when the model was not swept.
  const SimulationResult *forModel(const std::string &Name) const;
};

/// Visits every candidate execution of \p Compiled (consistent or not).
/// Return false from the callback to stop early.
void forEachCandidate(const CompiledTest &Compiled,
                      const std::function<bool(const Candidate &)> &Fn);

/// Accumulates per-model verdicts over a stream of candidates, computing
/// the model-independent work (consistency counts, outcome keys, final
/// condition evaluation) exactly once per candidate. Feed every candidate
/// of one compiled test, then call take().
///
/// This is the engine under both simulate() overloads and the sweep
/// subsystem; instances are single-use and not thread-safe (one checker
/// per worker).
class MultiModelChecker {
public:
  MultiModelChecker(const CompiledTest &Compiled,
                    std::vector<const Model *> Models);

  /// Accounts one candidate under every model.
  void feed(const Candidate &Cand);

  /// Finalizes and returns the result; the checker is spent afterwards.
  MultiSimulationResult take();

private:
  const Condition &Final;
  std::vector<const Model *> Models;
  MultiSimulationResult Result;
  /// Per-model, per-axiom counts of candidates each axiom killed,
  /// tallied in plain locals (the inner loop never touches an atomic)
  /// and flushed to the metrics registry by take(). Only maintained when
  /// metrics were enabled at construction.
  bool Metrics = false;
  std::vector<std::array<unsigned long long, 4>> AxiomKills;
};

/// Runs one shared candidate enumeration of \p Compiled and checks every
/// model in \p Models against each candidate.
MultiSimulationResult simulateAll(const CompiledTest &Compiled,
                                  const std::vector<const Model *> &Models);

/// Convenience overload: compiles \p Test first. Asserts on compile errors
/// (use CompiledTest::compile directly for fallible input).
MultiSimulationResult simulateAll(const LitmusTest &Test,
                                  const std::vector<const Model *> &Models);

/// Runs the full simulation of \p Compiled under \p M (the one-model case
/// of simulateAll).
SimulationResult simulate(const CompiledTest &Compiled, const Model &M);

/// Convenience overload: compiles \p Test first. Asserts on compile errors
/// (use CompiledTest::compile directly for fallible input).
SimulationResult simulate(const LitmusTest &Test, const Model &M);

/// True if the final condition of \p Test is reachable under \p M.
bool allowedBy(const LitmusTest &Test, const Model &M);

/// Renders \p Result in the classic herd output format:
///
///   Test mp Allowed
///   States 3
///   1:r1=0; 1:r2=0;
///   ...
///   Ok
///   Condition exists (1:r1=1 /\ 1:r2=0)
///
/// \p Final is the test's condition (echoed in the footer).
std::string herdStyleReport(const SimulationResult &Result,
                            const Condition &Final);

} // namespace cats

#endif // CATS_HERD_SIMULATOR_H
