//===- Simulator.h - Single-event axiomatic simulation (herd) -*- C++ -*-===//
//
// Part of the cats project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The herd-style simulator (Sec. 8.3): enumerate the candidate executions
/// of a litmus test (every rf map times every coherence order), discard the
/// value-inconsistent ones, check each against a model, and collect the
/// allowed outcomes. A test's headline question — "is the final condition
/// observable under this model?" — is answered by whether any allowed
/// candidate satisfies it.
///
//===----------------------------------------------------------------------===//

#ifndef CATS_HERD_SIMULATOR_H
#define CATS_HERD_SIMULATOR_H

#include "litmus/Compiler.h"
#include "model/Model.h"

#include <functional>
#include <set>
#include <vector>

namespace cats {

/// Result of simulating one test under one model.
struct SimulationResult {
  std::string TestName;
  std::string ModelName;
  /// Raw candidate count (rf choices x coherence orders).
  unsigned long long CandidatesTotal = 0;
  /// Candidates surviving value-consistency.
  unsigned long long CandidatesConsistent = 0;
  /// Candidates allowed by the model.
  unsigned long long CandidatesAllowed = 0;
  /// Distinct outcomes of allowed candidates.
  std::set<Outcome> AllowedOutcomes;
  /// Distinct outcomes over all consistent candidates (any model).
  std::set<Outcome> ConsistentOutcomes;
  /// True if some allowed candidate satisfies the test's final condition.
  bool ConditionReachable = false;

  /// "Allow"/"Forbid" verdict string for the final condition.
  const char *verdict() const {
    return ConditionReachable ? "Allow" : "Forbid";
  }
};

/// Visits every candidate execution of \p Compiled (consistent or not).
/// Return false from the callback to stop early.
void forEachCandidate(const CompiledTest &Compiled,
                      const std::function<bool(const Candidate &)> &Fn);

/// Runs the full simulation of \p Compiled under \p M.
SimulationResult simulate(const CompiledTest &Compiled, const Model &M);

/// Convenience overload: compiles \p Test first. Asserts on compile errors
/// (use CompiledTest::compile directly for fallible input).
SimulationResult simulate(const LitmusTest &Test, const Model &M);

/// True if the final condition of \p Test is reachable under \p M.
bool allowedBy(const LitmusTest &Test, const Model &M);

/// Renders \p Result in the classic herd output format:
///
///   Test mp Allowed
///   States 3
///   1:r1=0; 1:r2=0;
///   ...
///   Ok
///   Condition exists (1:r1=1 /\ 1:r2=0)
///
/// \p Final is the test's condition (echoed in the footer).
std::string herdStyleReport(const SimulationResult &Result,
                            const Condition &Final);

} // namespace cats

#endif // CATS_HERD_SIMULATOR_H
